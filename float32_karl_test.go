package karl

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bruteGaussian is the direct float64 oracle Σ w·exp(−γ·‖q−p‖²).
func bruteGaussian(gamma float64, pts [][]float64, q []float64) float64 {
	var s float64
	for _, p := range pts {
		var d2 float64
		for j := range q {
			d := q[j] - p[j]
			d2 += d * d
		}
		s += math.Exp(-gamma * d2)
	}
	return s
}

// TestWithLeafFloat32Engine: a float32-leaf engine answers within the
// documented rounding slack of the float64 engine over the same data, and
// its AggregateStats bounds bracket the float64 answer.
func TestWithLeafFloat32Engine(t *testing.T) {
	rng := rand.New(rand.NewSource(821))
	pts := cloud(rng, 600, 4)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, kind := range []IndexKind{KDTree, BallTree, VPTree} {
		e64, err := Build(pts, Gaussian(3), WithWeights(w), WithIndex(kind, 16))
		if err != nil {
			t.Fatal(err)
		}
		e32, err := Build(pts, Gaussian(3), WithWeights(w), WithIndex(kind, 16), WithLeafFloat32())
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			q := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			want, err := e64.Aggregate(q)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := e32.AggregateStats(q)
			if err != nil {
				t.Fatal(err)
			}
			if st.LB > want || want > st.UB {
				t.Fatalf("%v: float64 answer %v outside float32 bounds [%v, %v]", kind, want, st.LB, st.UB)
			}
			if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 1e-5 {
				t.Fatalf("%v: float32 aggregate %v too far from float64 %v", kind, got, want)
			}
			approx, err := e32.Approximate(q, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if want != 0 {
				if rel := math.Abs(approx-want) / math.Abs(want); rel > 0.05+1e-4 {
					t.Fatalf("%v: Approximate rel error %v on float32 path", kind, rel)
				}
			}
		}
	}
}

// TestWithRefineWorkersEngine: the option wires through Build, answers
// satisfy the same contracts as the sequential engine, and Aggregate is
// bitwise identical across worker counts.
func TestWithRefineWorkersEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(822))
	pts := cloud(rng, 3000, 5)
	seq, err := Build(pts, Gaussian(6))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(pts, Gaussian(6), WithRefineWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, 5)
		for j := range q {
			q[j] = rng.Float64()
		}
		a, err := seq.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Aggregate not bitwise stable across worker counts: %v vs %v", a, b)
		}
		for _, tau := range []float64{a * 0.8, a * 1.2} {
			sh, err := seq.Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			ph, err := par.Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			if sh != ph {
				t.Fatalf("Threshold verdicts diverged at τ=%v", tau)
			}
		}
	}
}

// TestLeafFloat32PersistRoundTrip: the v7 flag survives a static and a
// dynamic round trip; the tile block is rebuilt deterministically on load,
// so answers are bitwise identical, and a loaded dynamic engine builds
// float32 blocks for FUTURE seals too.
func TestLeafFloat32PersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(823))
	pts := cloud(rng, 300, 3)
	eng, err := Build(pts, Gaussian(2.5), WithLeafFloat32(), WithIndex(BallTree, 8))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.5, 0.6}
	want, err := eng.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.tree.Leaf32 == nil {
		t.Fatal("static load dropped the float32 leaf block")
	}
	if got, _ := loaded.Aggregate(q); got != want {
		t.Fatalf("static round trip not bitwise: %v vs %v", got, want)
	}

	d, err := NewDynamic(Gaussian(2.5), WithLeafFloat32(), WithSealSize(64), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := d.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	dwant, err := d.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dl, err := ReadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.sh.bcfg.Leaf32 {
		t.Fatal("dynamic load dropped the leaf-float32 build flag")
	}
	for i, s := range dl.sh.man.Segs {
		if s.Tree.Leaf32 == nil {
			t.Fatalf("segment %d loaded without its float32 leaf block", i)
		}
	}
	if got, _ := dl.Aggregate(q); got != dwant {
		t.Fatalf("dynamic round trip not bitwise: %v vs %v", got, dwant)
	}
	// A seal after the load must build the block too.
	sealsBefore := dl.Seals()
	for i := 0; i < 80; i++ {
		if err := dl.Insert([]float64{rng.Float64(), rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if dl.Seals() <= sealsBefore {
		t.Fatal("expected a seal after 80 inserts at seal size 64")
	}
	segs := dl.sh.man.Segs
	if segs[len(segs)-1].Tree.Leaf32 == nil {
		t.Fatal("post-load seal built a segment without its float32 leaf block")
	}
}

// TestFastPathBypassOnMutation is the mutation-vs-fast-path race gate (run
// under the race detector in CI): single-segment queries on clones run
// concurrently with a delete that creates a tombstone. The fast path must
// serve queries before the mutation, stop the moment tombstone mass enters
// the base term, and answers must reflect the delete exactly. A decaying
// engine (per-segment scales) must never take the fast path at all.
func TestFastPathBypassOnMutation(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(824))
	pts := cloud(rng, n, 2)
	d, err := NewDynamic(Gaussian(2), WithSealSize(n), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, n)
	for i, p := range pts {
		id, err := d.InsertID(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if d.Seals() != 1 || d.MemtableLen() != 0 || d.Tombstones() != 0 {
		t.Fatalf("want exactly one sealed segment and an empty memtable (seals=%d mem=%d)", d.Seals(), d.MemtableLen())
	}
	q := []float64{0.5, 0.5}
	want := bruteGaussian(2, pts, q)
	if got, _ := d.Aggregate(q); math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("pre-delete aggregate %v, brute force %v", got, want)
	}
	before := d.FastPathQueries()
	if _, err := d.Threshold(q, want*1.1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Approximate(q, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := d.FastPathQueries(); got != before+2 {
		t.Fatalf("clean single-segment queries took %d fast paths, want 2", got-before)
	}

	// Concurrent phase: clones hammer queries while the delete lands.
	clones := make([]*DynamicEngine, 4)
	for i := range clones {
		clones[i] = d.Clone()
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, c := range clones {
		wg.Add(1)
		go func(c *DynamicEngine) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := c.Approximate(q, 0.1); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	time.Sleep(2 * time.Millisecond)
	if err := d.Delete(ids[10]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if d.Tombstones() != 1 {
		t.Fatalf("delete of a sealed point must tombstone (tombs=%d)", d.Tombstones())
	}

	// With tombstone mass in the base term, nobody takes the fast path.
	for i, c := range clones {
		b := c.FastPathQueries()
		if _, err := c.Threshold(q, want*1.1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Approximate(q, 0.1); err != nil {
			t.Fatal(err)
		}
		if got := c.FastPathQueries(); got != b {
			t.Fatalf("clone %d took the fast path with a pending tombstone", i)
		}
	}
	wantAfter := want - bruteGaussian(2, pts[10:11], q)
	if got, _ := d.Aggregate(q); math.Abs(got-wantAfter) > 1e-9*(1+math.Abs(wantAfter)) {
		t.Fatalf("post-delete aggregate %v, brute force %v", got, wantAfter)
	}

	// Decay scales: always present on a decaying engine, so the fast path
	// must never run there — even with one clean segment.
	dd, err := NewDynamic(Gaussian(2), WithSealSize(n), WithAutoCompaction(false),
		WithDecayHalfLife(time.Hour), withClock(func() int64 { return 1_700_000_000_000_000_000 }))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := dd.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dd.Approximate(q, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := dd.FastPathQueries(); got != 0 {
		t.Fatalf("decaying engine took %d fast paths, want 0", got)
	}
}
