// Ablation benchmarks for the design choices DESIGN.md calls out: which
// side of KARL's bound pair drives the speedup, and how the three index
// structures compare under identical workloads.
package karl

import (
	"testing"
)

// ablationEngine builds one engine over the shared benchmark cloud.
func ablationEngine(b *testing.B, kind IndexKind, method Method) (*Engine, []float64, float64) {
	b.Helper()
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, Gaussian(20), WithIndex(kind, 40), WithMethod(method))
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	return eng, q, exact * 1.05
}

func runThresholdBench(b *testing.B, eng *Engine, q []float64, tau float64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Threshold(q, tau); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexKDTree / BallTree / VPTree: the same KARL TKAQ on each
// index structure (the Figure 7 / Table VIII ablation axis).
func BenchmarkIndexKDTree(b *testing.B) {
	eng, q, tau := ablationEngine(b, KDTree, MethodKARL)
	runThresholdBench(b, eng, q, tau)
}

func BenchmarkIndexBallTree(b *testing.B) {
	eng, q, tau := ablationEngine(b, BallTree, MethodKARL)
	runThresholdBench(b, eng, q, tau)
}

func BenchmarkIndexVPTree(b *testing.B) {
	eng, q, tau := ablationEngine(b, VPTree, MethodKARL)
	runThresholdBench(b, eng, q, tau)
}

// BenchmarkKernelGaussian / Epanechnikov / Quartic: identical TKAQ under
// different kernel profiles (the compact-support kernels prune harder).
func benchKernel(b *testing.B, k Kernel) {
	b.Helper()
	pts, q := benchCloud(20000, 8)
	eng, err := Build(pts, k)
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	runThresholdBench(b, eng, q, exact*1.05)
}

func BenchmarkKernelGaussian(b *testing.B)     { benchKernel(b, Gaussian(20)) }
func BenchmarkKernelEpanechnikov(b *testing.B) { benchKernel(b, Epanechnikov(20)) }
func BenchmarkKernelQuartic(b *testing.B)      { benchKernel(b, Quartic(20)) }

// BenchmarkBatchParallel measures the batch API fan-out (on a single-core
// host this mostly measures coordination overhead; on multi-core it
// scales).
func BenchmarkBatchParallel(b *testing.B) {
	pts, _ := benchCloud(10000, 6)
	eng, err := Build(pts, Gaussian(20))
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = pts[i*100]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchApproximate(queries, 0.2, 0); err != nil {
			b.Fatal(err)
		}
	}
}
