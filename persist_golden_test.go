package karl

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"karl/internal/shard"
)

// -update regenerates the golden persistence fixtures under
// testdata/persist/. Run it after an intentional format change; committed
// goldens from older versions must never be regenerated (they pin what
// real old files look like).
var updateGolden = flag.Bool("update", false, "regenerate golden persistence fixtures")

const goldenDir = "testdata/persist"

// goldenStaticEngine deterministically builds the static engine every
// static fixture serializes. Changing it invalidates the fixtures. The
// v7 fixture passes WithLeafFloat32 so the flag-bearing wire image is
// pinned too.
func goldenStaticEngine(t testing.TB, extra ...Option) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(613))
	pts := cloud(rng, 96, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = 0.25 + rng.Float64()
	}
	opts := append([]Option{WithWeights(w), WithIndex(BallTree, 16)}, extra...)
	eng, err := Build(pts, Gaussian(1.8), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// goldenDynamicEngine deterministically builds the dynamic engine the
// v5/v6/v7 dynamic fixtures serialize: several sealed segments, a partial
// memtable, and (for mutable true-ups) a fixed fake clock so timestamps
// are reproducible. v6+ additionally carries tombstones, a TTL window and
// a decay half-life.
func goldenDynamicEngine(t testing.TB, mutable bool) *DynamicEngine {
	t.Helper()
	opts := []Option{
		WithIndex(KDTree, 8),
		WithSealSize(32),
		WithAutoCompaction(false),
		withClock(func() int64 { return 1_700_000_000_000_000_000 }),
	}
	if mutable {
		opts = append(opts,
			WithTTL(time.Hour),
			WithDecayHalfLife(30*time.Minute),
		)
	}
	d, err := NewDynamic(Gaussian(2.2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(617))
	var ids []uint64
	for i := 0; i < 100; i++ {
		id, err := d.InsertID([]float64{rng.Float64(), rng.Float64()}, 0.5+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if mutable {
		// One memtable delete (physical) and two sealed deletes
		// (tombstones), so the fixture carries live mutability state.
		for _, id := range []uint64{ids[99], ids[3], ids[40]} {
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

// downgradeDynamicPayload strips a current dynamic payload to the v5 wire
// image: no sequence numbers, timestamps, tombstones, window/decay policy
// or leaf-float32 flag — exactly what a file written by the v5 release
// contains.
func downgradeDynamicPayload(p dynamicPayload) dynamicPayload {
	p = downgradeDynamicPayloadV6(p)
	p.Version = 5
	p.TTL, p.HalfLife, p.NextSeq, p.Deletes = 0, 0, 0, 0
	p.MemSeqs, p.MemTimes = nil, nil
	p.TombSeqs, p.TombW, p.TombRef, p.TombPts = nil, nil, nil, nil
	for i := range p.Segments {
		p.Segments[i].Seqs = nil
		p.Segments[i].Times = nil
		p.Segments[i].TimeRef = 0
	}
	return p
}

// downgradeDynamicPayloadV6 strips a v7 dynamic payload to the v6 wire
// image: same mutability state, no leaf-float32 flag (per segment or
// engine-wide).
func downgradeDynamicPayloadV6(p dynamicPayload) dynamicPayload {
	p.Version = 6
	p.LeafFloat32 = false
	segs := make([]segmentPayload, len(p.Segments))
	copy(segs, p.Segments)
	for i := range segs {
		segs[i].Engine.Version = 6
		segs[i].Engine.LeafFloat32 = false
	}
	p.Segments = segs
	return p
}

// goldenManifest deterministically builds the cluster manifest the
// frozen manifest_v1.bin fixture was generated from (when the format was
// version 1): a hash-routed membership taken through one split, so the
// wire image pins epoch, lineage and slot reassignment. Changing it
// invalidates the fixtures.
func goldenManifest(t testing.TB) *shard.Manifest {
	t.Helper()
	man, err := shard.NewManifest(shard.Hash, []shard.Member{
		{ID: 1, Name: "s0", Points: 128, WPos: 64.5},
		{ID: 2, Name: "s1", Points: 128, WPos: 63, WNeg: 1.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := man.MemberSlots(1)
	man, err = man.ApplySplit(1, shard.Member{ID: 3, Name: "s0/split-3", BaseSeq: 129, Points: 60, WPos: 30.25},
		shard.SplitRule{Kind: shard.Hash, NumSlots: man.NumSlots, Slots: slots[len(slots)/2:]})
	if err != nil {
		t.Fatal(err)
	}
	return man
}

// goldenManifestV2 extends the v1 builder with replication topology — a
// caught-up follower on one member, a catching-up one on the split child
// — pinning the manifest_v2 wire image (roles, replica sets, acked-seq
// watermarks).
func goldenManifestV2(t testing.TB) *shard.Manifest {
	t.Helper()
	man := goldenManifest(t)
	man.Members[1].Replicas = []shard.Replica{{Name: "s1-f0", Role: shard.RoleFollower, AckedSeq: 128}}
	man.Members[2].Replicas = []shard.Replica{{Name: "s0/split-3-f0", Role: shard.RoleCatchingUp, AckedSeq: 7}}
	return man
}

// goldenBytes renders every fixture from the deterministic builders.
func goldenBytes(t testing.TB) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	enc := func(name string, payload any) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}

	eng := goldenStaticEngine(t)
	for v := 1; v <= 3; v++ {
		enc(fmt.Sprintf("v%d_static.bin", v), legacyPayload(eng.payload(), v))
	}
	p4 := eng.payload()
	p4.Version = 4
	enc("v4_static.bin", p4)
	p6 := eng.payload()
	p6.Version = 6
	enc("v6_static.bin", p6)
	enc("v7_static.bin", goldenStaticEngine(t, WithLeafFloat32()).payload())

	dyn := goldenDynamicEngine(t, false)
	var buf bytes.Buffer
	if _, err := dyn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var dp dynamicPayload
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&dp); err != nil {
		t.Fatal(err)
	}
	enc("v5_dynamic.bin", downgradeDynamicPayload(dp))

	mdyn := goldenDynamicEngine(t, true)
	var mbuf bytes.Buffer
	if _, err := mdyn.WriteTo(&mbuf); err != nil {
		t.Fatal(err)
	}
	out["v7_dynamic.bin"] = mbuf.Bytes()
	var mdp dynamicPayload
	if err := gob.NewDecoder(bytes.NewReader(mbuf.Bytes())).Decode(&mdp); err != nil {
		t.Fatal(err)
	}
	enc("v6_dynamic.bin", downgradeDynamicPayloadV6(mdp))

	// manifest_v1.bin is NOT regenerated: it was written by the format-v1
	// build and is frozen to pin what real old files look like.
	var manBuf bytes.Buffer
	if _, err := goldenManifestV2(t).WriteTo(&manBuf); err != nil {
		t.Fatal(err)
	}
	out["manifest_v2.bin"] = manBuf.Bytes()
	return out
}

// TestGoldenFixturesCurrent regenerates the fixtures with -update and
// otherwise verifies the committed bytes still match what this build
// would write — catching accidental wire-format drift (field renames,
// encoding-order changes) that version-bump discipline would miss.
func TestGoldenFixturesCurrent(t *testing.T) {
	want := goldenBytes(t)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range want {
			if err := os.WriteFile(filepath.Join(goldenDir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("regenerated %d fixtures", len(want))
		return
	}
	for name, b := range want {
		got, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: %v (run: go test -run TestGoldenFixturesCurrent -update)", name, err)
		}
		if !bytes.Equal(got, b) {
			t.Errorf("%s: committed fixture differs from what this build writes (format drift without a version bump?)", name)
		}
	}
}

// TestGoldenStaticFixturesLoad pins backward compatibility end to end:
// every committed static fixture v1..v7 loads through ReadEngine and
// answers match the freshly built reference within tolerance (bitwise for
// v4+, which reconstruct the flat index instead of rebuilding). The v7
// fixture carries the leaf-float32 flag, so it is compared bitwise to a
// fresh WithLeafFloat32 build and must come back with its tile block
// rebuilt.
func TestGoldenStaticFixturesLoad(t *testing.T) {
	ref := goldenStaticEngine(t)
	q := []float64{0.45, 0.55, 0.5}
	want, err := ref.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	ref32 := goldenStaticEngine(t, WithLeafFloat32())
	want32, err := ref32.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"v1_static.bin", "v2_static.bin", "v3_static.bin",
		"v4_static.bin", "v6_static.bin", "v7_static.bin",
	} {
		raw, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng, err := ReadEngine(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
		if eng.Len() != ref.Len() || eng.Dims() != ref.Dims() || eng.Kernel() != ref.Kernel() {
			t.Fatalf("%s: shape/kernel changed", name)
		}
		got, err := eng.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantHere := want
		if name == "v7_static.bin" {
			if eng.tree.Leaf32 == nil {
				t.Fatalf("%s: leaf-float32 block not rebuilt on load", name)
			}
			wantHere = want32
		} else if eng.tree.Leaf32 != nil {
			t.Fatalf("%s: unexpected leaf-float32 block", name)
		}
		exact := name >= "v4" // v4+ reconstruct the index instead of rebuilding
		if exact && got != wantHere {
			t.Errorf("%s: not bitwise: %v vs %v", name, got, wantHere)
		}
		if math.Abs(got-wantHere) > 1e-9*(1+math.Abs(wantHere)) {
			t.Errorf("%s: diverged: %v vs %v", name, got, wantHere)
		}
	}
}

// TestGoldenManifestFixtureLoads pins the cluster-manifest wire format
// across versions. The frozen manifest_v1.bin (written by the format-v1
// build, before replication roles existed) must still load: roles
// default to leader, replica sets stay empty, and epoch/lineage/routing
// match the deterministic builder. The current manifest_v2.bin loads
// with its replication topology intact and rewrites bitwise.
func TestGoldenManifestFixtureLoads(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(goldenDir, "manifest_v1.bin"))
	if err != nil {
		t.Fatalf("%v (frozen fixture missing — it must never be regenerated)", err)
	}
	man, err := shard.ReadManifest(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("manifest_v1 fixture rejected: %v", err)
	}
	ref := goldenManifest(t)
	checkManifestMatches(t, "manifest_v1", man, ref)
	for _, mb := range man.Members {
		if mb.Role != shard.RoleLeader {
			t.Fatalf("v1 member %d loaded with role %v, want defaulted leader", mb.ID, mb.Role)
		}
		if len(mb.Replicas) != 0 {
			t.Fatalf("v1 member %d loaded with %d replicas, want none", mb.ID, len(mb.Replicas))
		}
	}
	// A v1 file rewrites in the current format; the upgrade must preserve
	// epoch, lineage and routing.
	var up bytes.Buffer
	if _, err := man.WriteTo(&up); err != nil {
		t.Fatal(err)
	}
	man2, err := shard.ReadManifest(bytes.NewReader(up.Bytes()))
	if err != nil {
		t.Fatalf("v1 fixture rewritten as current format rejected: %v", err)
	}
	checkManifestMatches(t, "manifest_v1 upgraded", man2, ref)

	raw2, err := os.ReadFile(filepath.Join(goldenDir, "manifest_v2.bin"))
	if err != nil {
		t.Fatalf("%v (run: go test -run TestGoldenFixturesCurrent -update)", err)
	}
	v2, err := shard.ReadManifest(bytes.NewReader(raw2))
	if err != nil {
		t.Fatalf("manifest_v2 fixture rejected: %v", err)
	}
	ref2 := goldenManifestV2(t)
	checkManifestMatches(t, "manifest_v2", v2, ref2)
	for i, mb := range ref2.Members {
		got := v2.Members[i]
		if len(got.Replicas) != len(mb.Replicas) {
			t.Fatalf("v2 member %d has %d replicas, want %d", mb.ID, len(got.Replicas), len(mb.Replicas))
		}
		for j, r := range mb.Replicas {
			if got.Replicas[j] != r {
				t.Fatalf("v2 member %d replica %d = %+v, want %+v", mb.ID, j, got.Replicas[j], r)
			}
		}
	}
	var rt bytes.Buffer
	if _, err := v2.WriteTo(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Bytes(), raw2) {
		t.Fatal("manifest_v2 fixture does not rewrite bitwise")
	}
}

// checkManifestMatches asserts the version-independent invariants of the
// golden manifest builders: shape, split lineage and routing.
func checkManifestMatches(t *testing.T, name string, man, ref *shard.Manifest) {
	t.Helper()
	if man.Epoch != ref.Epoch || man.Kind != ref.Kind || len(man.Members) != len(ref.Members) {
		t.Fatalf("%s shape drifted: %+v vs %+v", name, man, ref)
	}
	if got := man.Member(3); got == nil || got.Parent != 1 || got.BaseSeq != 129 {
		t.Fatalf("%s lineage drifted: %+v", name, got)
	}
	rng := rand.New(rand.NewSource(619))
	for i := 0; i < 200; i++ {
		p := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if man.Route(p) != ref.Route(p) {
			t.Fatalf("%s routes %v to %d, builder to %d", name, p, man.Route(p), ref.Route(p))
		}
	}
}

// TestGoldenDynamicFixturesLoad pins the dynamic stream: the v5 fixture
// (no mutability state) loads with synthesized sequence numbers and its
// points are deletable; the v6 and v7 fixtures restore tombstones, TTL and
// decay policy, and rewrite bitwise as the current format.
func TestGoldenDynamicFixturesLoad(t *testing.T) {
	q := []float64{0.5, 0.5}

	raw, err := os.ReadFile(filepath.Join(goldenDir, "v5_dynamic.bin"))
	if err != nil {
		t.Fatal(err)
	}
	d5, err := ReadDynamic(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v5 fixture rejected: %v", err)
	}
	ref := goldenDynamicEngine(t, false)
	want, _ := ref.Aggregate(q)
	got, err := d5.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v5 load not bitwise: %v vs %v", got, want)
	}
	// Synthesized IDs make legacy points deletable: ID 1 is the oldest
	// sealed point.
	before, _ := d5.Aggregate(q)
	if err := d5.Delete(1); err != nil {
		t.Fatalf("delete of synthesized id: %v", err)
	}
	after, _ := d5.Aggregate(q)
	if after >= before {
		t.Fatalf("delete had no effect: %v -> %v", before, after)
	}

	// The loaded engine has the default wall clock; pinning it back to the
	// fixture's instant is not possible, so mutability state is compared
	// through clock-independent values: counts, policy, and a fresh
	// WriteTo. The v6 fixture rewrites as the current (v7) format — which
	// must be byte-identical to the v7 fixture of the same engine — and
	// the v7 fixture round-trips bitwise.
	mref := goldenDynamicEngine(t, true)
	raw7, err := os.ReadFile(filepath.Join(goldenDir, "v7_dynamic.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"v6_dynamic.bin", "v7_dynamic.bin"} {
		raw, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		d, err := ReadDynamic(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
		if d.Len() != mref.Len() || d.Tombstones() != mref.Tombstones() ||
			d.Deletes() != mref.Deletes() || d.TTL() != mref.TTL() ||
			d.DecayHalfLife() != mref.DecayHalfLife() {
			t.Fatalf("%s load dropped mutability state: len %d/%d tombs %d/%d deletes %d/%d",
				name, d.Len(), mref.Len(), d.Tombstones(), mref.Tombstones(), d.Deletes(), mref.Deletes())
		}
		var rt bytes.Buffer
		if _, err := d.WriteTo(&rt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt.Bytes(), raw7) {
			t.Fatalf("%s does not rewrite to the current format bitwise", name)
		}
	}
}
