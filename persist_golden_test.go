package karl

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// -update regenerates the golden persistence fixtures under
// testdata/persist/. Run it after an intentional format change; committed
// goldens from older versions must never be regenerated (they pin what
// real old files look like).
var updateGolden = flag.Bool("update", false, "regenerate golden persistence fixtures")

const goldenDir = "testdata/persist"

// goldenStaticEngine deterministically builds the static engine every
// static fixture serializes. Changing it invalidates the fixtures.
func goldenStaticEngine(t testing.TB) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(613))
	pts := cloud(rng, 96, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = 0.25 + rng.Float64()
	}
	eng, err := Build(pts, Gaussian(1.8), WithWeights(w), WithIndex(BallTree, 16))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// goldenDynamicEngine deterministically builds the dynamic engine the
// v5/v6 dynamic fixtures serialize: several sealed segments, a partial
// memtable, and (for mutable true-ups) a fixed fake clock so timestamps
// are reproducible. v6 additionally carries tombstones, a TTL window and
// a decay half-life.
func goldenDynamicEngine(t testing.TB, mutable bool) *DynamicEngine {
	t.Helper()
	opts := []Option{
		WithIndex(KDTree, 8),
		WithSealSize(32),
		WithAutoCompaction(false),
		withClock(func() int64 { return 1_700_000_000_000_000_000 }),
	}
	if mutable {
		opts = append(opts,
			WithTTL(time.Hour),
			WithDecayHalfLife(30*time.Minute),
		)
	}
	d, err := NewDynamic(Gaussian(2.2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(617))
	var ids []uint64
	for i := 0; i < 100; i++ {
		id, err := d.InsertID([]float64{rng.Float64(), rng.Float64()}, 0.5+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if mutable {
		// One memtable delete (physical) and two sealed deletes
		// (tombstones), so the fixture carries live mutability state.
		for _, id := range []uint64{ids[99], ids[3], ids[40]} {
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

// downgradeDynamicPayload strips a v6 dynamic payload to the v5 wire
// image: no sequence numbers, timestamps, tombstones or window/decay
// policy — exactly what a file written by the previous release contains.
func downgradeDynamicPayload(p dynamicPayload) dynamicPayload {
	p.Version = 5
	p.TTL, p.HalfLife, p.NextSeq, p.Deletes = 0, 0, 0, 0
	p.MemSeqs, p.MemTimes = nil, nil
	p.TombSeqs, p.TombW, p.TombRef, p.TombPts = nil, nil, nil, nil
	for i := range p.Segments {
		p.Segments[i].Seqs = nil
		p.Segments[i].Times = nil
		p.Segments[i].TimeRef = 0
	}
	return p
}

// goldenBytes renders every fixture from the deterministic builders.
func goldenBytes(t testing.TB) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	enc := func(name string, payload any) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}

	eng := goldenStaticEngine(t)
	for v := 1; v <= 3; v++ {
		enc(fmt.Sprintf("v%d_static.bin", v), legacyPayload(eng.payload(), v))
	}
	p4 := eng.payload()
	p4.Version = 4
	enc("v4_static.bin", p4)
	enc("v6_static.bin", eng.payload())

	dyn := goldenDynamicEngine(t, false)
	var buf bytes.Buffer
	if _, err := dyn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var dp dynamicPayload
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&dp); err != nil {
		t.Fatal(err)
	}
	enc("v5_dynamic.bin", downgradeDynamicPayload(dp))

	mdyn := goldenDynamicEngine(t, true)
	var mbuf bytes.Buffer
	if _, err := mdyn.WriteTo(&mbuf); err != nil {
		t.Fatal(err)
	}
	out["v6_dynamic.bin"] = mbuf.Bytes()
	return out
}

// TestGoldenFixturesCurrent regenerates the fixtures with -update and
// otherwise verifies the committed bytes still match what this build
// would write — catching accidental wire-format drift (field renames,
// encoding-order changes) that version-bump discipline would miss.
func TestGoldenFixturesCurrent(t *testing.T) {
	want := goldenBytes(t)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range want {
			if err := os.WriteFile(filepath.Join(goldenDir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("regenerated %d fixtures", len(want))
		return
	}
	for name, b := range want {
		got, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: %v (run: go test -run TestGoldenFixturesCurrent -update)", name, err)
		}
		if !bytes.Equal(got, b) {
			t.Errorf("%s: committed fixture differs from what this build writes (format drift without a version bump?)", name)
		}
	}
}

// TestGoldenStaticFixturesLoad pins backward compatibility end to end:
// every committed static fixture v1..v6 loads through ReadEngine and
// answers match the freshly built reference within tolerance (bitwise for
// v4+, which reconstruct the flat index instead of rebuilding).
func TestGoldenStaticFixturesLoad(t *testing.T) {
	ref := goldenStaticEngine(t)
	q := []float64{0.45, 0.55, 0.5}
	want, err := ref.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"v1_static.bin", "v2_static.bin", "v3_static.bin",
		"v4_static.bin", "v6_static.bin",
	} {
		raw, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng, err := ReadEngine(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
		if eng.Len() != ref.Len() || eng.Dims() != ref.Dims() || eng.Kernel() != ref.Kernel() {
			t.Fatalf("%s: shape/kernel changed", name)
		}
		got, err := eng.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact := name >= "v4" // v4_static.bin and v6_static.bin
		if exact && got != want {
			t.Errorf("%s: not bitwise: %v vs %v", name, got, want)
		}
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: diverged: %v vs %v", name, got, want)
		}
	}
}

// TestGoldenDynamicFixturesLoad pins the dynamic stream: the v5 fixture
// (no mutability state) loads with synthesized sequence numbers and its
// points are deletable; the v6 fixture restores tombstones, TTL and decay
// policy and round-trips bitwise.
func TestGoldenDynamicFixturesLoad(t *testing.T) {
	q := []float64{0.5, 0.5}

	raw, err := os.ReadFile(filepath.Join(goldenDir, "v5_dynamic.bin"))
	if err != nil {
		t.Fatal(err)
	}
	d5, err := ReadDynamic(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v5 fixture rejected: %v", err)
	}
	ref := goldenDynamicEngine(t, false)
	want, _ := ref.Aggregate(q)
	got, err := d5.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v5 load not bitwise: %v vs %v", got, want)
	}
	// Synthesized IDs make legacy points deletable: ID 1 is the oldest
	// sealed point.
	before, _ := d5.Aggregate(q)
	if err := d5.Delete(1); err != nil {
		t.Fatalf("delete of synthesized id: %v", err)
	}
	after, _ := d5.Aggregate(q)
	if after >= before {
		t.Fatalf("delete had no effect: %v -> %v", before, after)
	}

	raw, err = os.ReadFile(filepath.Join(goldenDir, "v6_dynamic.bin"))
	if err != nil {
		t.Fatal(err)
	}
	d6, err := ReadDynamic(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v6 fixture rejected: %v", err)
	}
	mref := goldenDynamicEngine(t, true)
	if d6.Len() != mref.Len() || d6.Tombstones() != mref.Tombstones() ||
		d6.Deletes() != mref.Deletes() || d6.TTL() != mref.TTL() ||
		d6.DecayHalfLife() != mref.DecayHalfLife() {
		t.Fatalf("v6 load dropped mutability state: len %d/%d tombs %d/%d deletes %d/%d",
			d6.Len(), mref.Len(), d6.Tombstones(), mref.Tombstones(), d6.Deletes(), mref.Deletes())
	}
	// The loaded engine has the default wall clock; pin it back to the
	// fixture's instant via a round trip through a re-serialized engine is
	// not possible, so compare against the reference only through values
	// that are clock-independent at the fixture's frozen instant: a fresh
	// WriteTo must be byte-identical (same manifest, memtable, tombstones).
	var rt bytes.Buffer
	if _, err := d6.WriteTo(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt.Bytes(), raw) {
		t.Fatal("v6 fixture does not round-trip bitwise")
	}
}
