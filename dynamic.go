package karl

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/kernel"
	"karl/internal/segment"
	"karl/internal/vec"
)

// DynamicEngine serves kernel aggregation queries while the point set
// grows — the online scenario the paper's in-situ section motivates —
// without ever blocking a query on an index rebuild. It is organized like
// a small LSM tree:
//
//   - Inserts land in a fixed-capacity MEMTABLE that queries scan exactly.
//   - When the memtable fills it is SEALED: a small immutable flat-index
//     segment is built off the query path and appended to the MANIFEST,
//     and the memtable's backing storage is recycled (no allocation in
//     steady state).
//   - A geometric tiering policy merges segments in a BACKGROUND
//     goroutine; the merged segment replaces its inputs with one atomic
//     manifest swap, so queries keep refining over the old snapshot until
//     the swap lands.
//
// Queries refine over every segment through one shared global priority
// queue (core.Forest), with the memtable folded in as an exact base term
// on both global bounds — so Threshold and Approximate guarantees hold
// relative to the true total over ALL current points, including the
// mixed-sign case where memtable and indexed parts nearly cancel.
//
// A DynamicEngine value is not safe for concurrent QUERIES — like Engine,
// it owns per-query scratch. Clone once per goroutine: clones share the
// mutable dataset (inserts through any clone are visible to all) but own
// their query state. Insert, Compact and Close may be called from any
// goroutine concurrently with queries on other clones.
type DynamicEngine struct {
	sh *dynShared

	// f refines over the manifest snapshot of epoch fEpoch; fSet records
	// whether the forest has been armed at all. Query-only state, per
	// clone. fCfgGen is the sh.cfgGen the forest was built against: a
	// snapshot install can replace the engine's kernel configuration
	// under live views, and a forest carrying the old kernel parameters
	// would silently mix kernels within one answer — snapshot() rebuilds
	// it when the generations diverge.
	f       *core.Forest
	fEpoch  uint64
	fSet    bool
	fCfgGen uint64

	// scales is this clone's per-query decay-scale scratch, refilled by
	// snapshot for the query instant and retained by the forest; unused
	// (nil) when decay is off.
	scales []float64
}

// memtable is one reusable insert buffer: a fixed-capacity matrix plus
// parallel weights, sequence numbers and (on timed engines) insert
// timestamps, filled to n rows in insertion order. seq is ascending, so
// lookup by id is a binary search.
type memtable struct {
	m   *vec.Matrix
	w   []float64
	seq []uint64
	t   []int64 // nil on untimed engines (no TTL, no decay)
	n   int
}

func newMemtable(rows, dims int, timed bool) *memtable {
	mt := &memtable{m: vec.NewMatrix(rows, dims), w: make([]float64, rows), seq: make([]uint64, rows)}
	if timed {
		mt.t = make([]int64, rows)
	}
	return mt
}

// find returns the row holding the point with the given sequence number.
func (b *memtable) find(id uint64) (int, bool) {
	if b == nil || b.n == 0 {
		return 0, false
	}
	lo, hi := 0, b.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.seq[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= b.n || b.seq[lo] != id {
		return 0, false
	}
	return lo, true
}

// removeAt deletes row i, shifting the tail down to preserve insertion
// order (and therefore the ascending seq invariant). Only legal on the
// active memtable — the sealing buffer is scanned concurrently without
// the lock and must never be mutated.
func (b *memtable) removeAt(i int) {
	tail := b.n - i - 1
	if tail > 0 {
		d := b.m.Cols
		copy(b.m.Data[i*d:(i+tail)*d], b.m.Data[(i+1)*d:(i+1+tail)*d])
		copy(b.w[i:i+tail], b.w[i+1:b.n])
		copy(b.seq[i:i+tail], b.seq[i+1:b.n])
		if b.t != nil {
			copy(b.t[i:i+tail], b.t[i+1:b.n])
		}
	}
	b.n--
}

// run names the buffer's filled prefix for the segment layer.
func (b *memtable) run() segment.MemRun {
	if b == nil {
		return segment.MemRun{}
	}
	return segment.MemRun{M: b.m, W: b.w, N: b.n, Seqs: b.seq, Times: b.t}
}

// dynShared is the mutable dataset state shared by every clone of one
// dynamic engine. All fields are guarded by mu; cond broadcasts every
// state transition (seal finished, compaction finished, drain finished).
type dynShared struct {
	mu   sync.Mutex
	cond *sync.Cond

	kern          Kernel
	method        bound.Method
	maxDepth      int
	refineWorkers int
	bcfg          segment.BuildConfig
	policy        segment.Policy
	coldSeed      int64

	// batchExec routes the Batch* methods (dual.go); dualCtr is the
	// batch-executor telemetry shared by every clone. Both are immutable
	// after construction (dualCtr's fields are atomic), so they are read
	// without mu.
	batchExec BatchExecutor
	dualCtr   *dualCounters

	autoCompact bool

	// ttl > 0 expires points that many nanoseconds after insertion
	// (enforced lazily at seal/compaction); halfLife > 0 decays every
	// weight by half per that many nanoseconds. Either makes the engine
	// "timed": memtables then stamp per-row insert times from now().
	ttl      int64
	halfLife float64
	now      func() int64

	dims int // fixed by the first insert (or a load); 0 = undetermined

	man *segment.Manifest

	// nextSeq numbers every inserted point (ids start at 1); tombs holds
	// one tombstone per deleted-but-not-yet-compacted point, keyed by id.
	// Every live tombstone's point sits in exactly one manifest segment
	// (memtable deletes are physical; sealing-buffer deletes become
	// segment rows when the seal installs), so compactions consume them.
	nextSeq uint64
	tombs   map[uint64]tombstone
	deletes int

	// delLog is the bounded replication delete log: the seqs of the last
	// deletes in deletion order, so a follower polling DeletesSince can
	// replay them. delLogBase counts entries trimmed off the head (and
	// deletes that predate this process); a follower whose position aged
	// past it must full-resync.
	delLog     []uint64
	delLogBase uint64

	// mem receives inserts; sealing is non-nil while its rows are being
	// built into a segment (queries still scan it); spare is the recycled
	// buffer the next seal swap installs. The three rotate forever, so
	// steady-state Insert allocates nothing.
	mem     *memtable
	sealing *memtable
	spare   *memtable

	// draining blocks inserts and new compactions while a full Compact()
	// merge is in flight (queries proceed on the old snapshot).
	draining   bool
	compacting bool
	closed     bool

	nextID      uint64
	seals       int
	compactions int
	compactErr  error

	// cfgGen counts replacements of the query configuration (kernel,
	// bound method, depth) after construction — today only a replica
	// snapshot install. Views compare it against their forest's
	// generation and rebuild before answering.
	cfgGen uint64
}

// tombstone is the exact mass of one deleted point that still sits inside
// an immutable segment (or the sealing buffer): weight and coordinates as
// stored where it was found, plus the decay reference instant that weight
// is scaled to. Queries subtract w·2^(−(T−ref)/halfLife)·K(q,p) from both
// global bounds — the same algebra with which the live copy contributes,
// so the cancellation is exact at any query time and any compaction
// rebasing (rescaling a weight from ref to ref' multiplies both sides by
// the same factor).
type tombstone struct {
	w   float64
	ref int64
	p   []float64
}

// ErrPointNotFound is returned by Delete when no live point has the given
// id: it was never assigned, already deleted, expired away, or absorbed
// into a lossy coreset segment (whose rows are no longer addressable).
var ErrPointNotFound = errors.New("karl: point not found")

// timed reports whether rows carry insert timestamps.
func (sh *dynShared) timed() bool { return sh.ttl > 0 || sh.halfLife > 0 }

// decayAt returns the factor rebasing a weight scaled to ref onto query
// instant now: 2^(−(now−ref)/halfLife), or 1 when decay is off.
func (sh *dynShared) decayAt(now, ref int64) float64 {
	if sh.halfLife <= 0 {
		return 1
	}
	return math.Exp2(-float64(now-ref) / sh.halfLife)
}

// NewDynamic creates an empty dynamic engine. Index options (WithIndex,
// WithMethod) fix how segments are built; WithSealSize and
// WithCompactionFanout shape the LSM tiering; WithWeights is rejected —
// weights arrive with Insert.
func NewDynamic(kern Kernel, opts ...Option) (*DynamicEngine, error) {
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	cfg := defaultBuildConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.weights != nil {
		return nil, errors.New("karl: pass weights through Insert, not WithWeights")
	}
	if cfg.leafCap < 1 {
		return nil, fmt.Errorf("karl: leaf capacity %d out of range", cfg.leafCap)
	}
	policy := segment.DefaultPolicy()
	if cfg.sealSize != 0 {
		policy.SealSize = cfg.sealSize
	}
	if cfg.fanout != 0 {
		policy.Fanout = cfg.fanout
	}
	policy.ColdEps, policy.ColdMin = cfg.coldEps, cfg.coldMin
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.ttl < 0 {
		return nil, fmt.Errorf("karl: ttl must be non-negative, got %v", cfg.ttl)
	}
	if cfg.halfLife < 0 {
		return nil, fmt.Errorf("karl: decay half-life must be non-negative, got %v", cfg.halfLife)
	}
	sh := &dynShared{
		kern:          kern,
		method:        methodOf(cfg.method),
		maxDepth:      cfg.maxDepth,
		refineWorkers: cfg.refineWorkers,
		bcfg:          segment.BuildConfig{Kind: indexKindOf(cfg.kind), LeafCap: cfg.leafCap, Leaf32: cfg.leafFloat32},
		policy:        policy,
		coldSeed:      cfg.coresetSeed,
		autoCompact:   !cfg.noAutoCompact,
		batchExec:     cfg.batchExec,
		dualCtr:       &dualCounters{},
		ttl:           int64(cfg.ttl),
		halfLife:      float64(cfg.halfLife),
		now:           cfg.clock,
		man:           &segment.Manifest{},
		nextID:        1,
		nextSeq:       1,
		tombs:         map[uint64]tombstone{},
	}
	if sh.now == nil {
		sh.now = func() int64 { return time.Now().UnixNano() }
	}
	sh.cond = sync.NewCond(&sh.mu)
	return newDynamicView(sh)
}

// newDynamicView wraps shared state in a queryable engine view. The
// configuration is read under the lock: a clone can be created while a
// replica snapshot install replaces the kernel, and the generation
// recorded here is what lets snapshot() detect a forest built against
// the superseded config.
func newDynamicView(sh *dynShared) (*DynamicEngine, error) {
	sh.mu.Lock()
	params := kernel.Params(sh.kern)
	method, maxDepth := sh.method, sh.maxDepth
	workers := sh.refineWorkers
	gen := sh.cfgGen
	sh.mu.Unlock()
	f, err := core.NewForest(params, method, maxDepth)
	if err != nil {
		return nil, err
	}
	if workers > 1 {
		f.SetWorkers(workers)
	}
	return &DynamicEngine{sh: sh, f: f, fCfgGen: gen}, nil
}

// Clone returns a view of the same mutable dataset with independent query
// scratch, for use from another goroutine. Inserts through any clone are
// visible to all clones.
func (d *DynamicEngine) Clone() *DynamicEngine {
	c, _ := newDynamicView(d.sh) // kernel already validated
	return c
}

// Len returns the number of points currently represented: all segments
// plus buffered inserts, minus pending tombstones (each tombstone cancels
// exactly one stored row). TTL-expired points still count until a seal or
// compaction physically drops them.
func (d *DynamicEngine) Len() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.man.Len() + sh.mem.len() + sh.sealing.len() - len(sh.tombs)
}

// Dims returns the dataset dimensionality (0 before the first insert).
func (d *DynamicEngine) Dims() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.dims
}

// Kernel returns the engine's kernel.
func (d *DynamicEngine) Kernel() Kernel { return d.sh.kern }

// WeightMass returns the dataset's positive and negative weight mass
// (pos = Σ w_i over w_i ≥ 0, neg = Σ |w_i| over w_i < 0) across every
// segment plus the buffered inserts — the same contract as
// Engine.WeightMass, which the cluster layer relies on.
func (d *DynamicEngine) WeightMass() (pos, neg float64) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var nowT int64
	if sh.timed() {
		nowT = sh.now()
	}
	decayed := sh.halfLife > 0
	for _, s := range sh.man.Segs {
		r := s.Tree.Root()
		scale := 1.0
		if decayed {
			scale = sh.decayAt(nowT, s.TimeRef)
		}
		pos += r.Pos.W * scale
		neg += r.Neg.W * scale
	}
	for _, mt := range []*memtable{sh.mem, sh.sealing} {
		if mt == nil {
			continue
		}
		for i := 0; i < mt.n; i++ {
			w := mt.w[i]
			if decayed {
				w *= sh.decayAt(nowT, mt.t[i])
			}
			if w >= 0 {
				pos += w
			} else {
				neg -= w
			}
		}
	}
	// Tombstones cancel mass they still shadow inside segments.
	for _, tb := range sh.tombs {
		w := tb.w
		if decayed {
			w *= sh.decayAt(nowT, tb.ref)
		}
		if w >= 0 {
			pos -= w
		} else {
			neg += w
		}
	}
	return pos, neg
}

func (b *memtable) len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Epoch returns the current manifest epoch; it increases with every seal
// and compaction, so two equal epochs imply an identical segment set.
func (d *DynamicEngine) Epoch() uint64 {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.man.Epoch
}

// MemtableLen returns the number of buffered (not yet sealed) points.
func (d *DynamicEngine) MemtableLen() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mem.len() + sh.sealing.len()
}

// Seals reports how many memtable seals have happened.
func (d *DynamicEngine) Seals() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.seals
}

// Compactions reports how many segment merges have completed (background
// tiered merges plus explicit Compact calls).
func (d *DynamicEngine) Compactions() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.compactions
}

// Tombstones reports how many deletes are pending physical removal —
// points whose mass every query currently subtracts exactly, awaiting a
// compaction over their segment.
func (d *DynamicEngine) Tombstones() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.tombs)
}

// Deletes reports how many points have been deleted over the engine's
// lifetime (memtable removals and tombstones alike).
func (d *DynamicEngine) Deletes() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.deletes
}

// TTL returns the configured point lifetime (0 = points never expire).
func (d *DynamicEngine) TTL() time.Duration { return time.Duration(d.sh.ttl) }

// DecayHalfLife returns the configured weight-decay half-life (0 = no
// decay).
func (d *DynamicEngine) DecayHalfLife() time.Duration { return time.Duration(d.sh.halfLife) }

// SegmentInfo describes one immutable segment of the current manifest.
type SegmentInfo struct {
	// ID is the segment's stable identity (assigned at seal/merge time).
	ID uint64
	// Len is the number of points the segment stores.
	Len int
	// Coreset marks a lossy cold-compacted segment; Eps is its accumulated
	// normalized error bound.
	Coreset bool
	Eps     float64
}

// Segments returns a snapshot of the current manifest, oldest segment
// first.
func (d *DynamicEngine) Segments() []SegmentInfo {
	sh := d.sh
	sh.mu.Lock()
	man := sh.man
	sh.mu.Unlock()
	out := make([]SegmentInfo, len(man.Segs))
	for i, s := range man.Segs {
		out[i] = SegmentInfo{ID: s.ID, Len: s.Len(), Coreset: s.Coreset, Eps: s.Eps}
	}
	return out
}

// validateInsert rejects empty points and NaN or ±Inf coordinates and
// weights: a single non-finite value would silently poison every
// aggregate the engine answers afterwards.
func validateInsert(p []float64, w float64) error {
	if len(p) == 0 {
		return errors.New("karl: empty point")
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("karl: point coordinate %d is %v; coordinates must be finite", i, v)
		}
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("karl: weight is %v; weights must be finite", w)
	}
	return nil
}

// Insert adds one weighted point, discarding its id; use InsertID when
// the point may need deleting later. The first insert fixes the
// dimensionality. Steady-state inserts are allocation-free; an insert
// that fills the memtable builds the new segment synchronously (off the
// query path — concurrent queries are never blocked by it).
func (d *DynamicEngine) Insert(p []float64, w float64) error {
	_, err := d.InsertID(p, w)
	return err
}

// InsertID adds one weighted point and returns its id — a stable handle
// (ids start at 1 and never recycle) that Delete accepts for as long as
// the point lives.
func (d *DynamicEngine) InsertID(p []float64, w float64) (uint64, error) {
	if err := validateInsert(p, w); err != nil {
		return 0, err
	}
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.insertReadyLocked(len(p)); err != nil {
		return 0, err
	}
	return sh.insertRowLocked(p, w)
}

// InsertBulk adds many points with optional parallel weights (nil = unit)
// in one lock acquisition, returning their ids. Validation is
// all-or-nothing and happens BEFORE any buffer is touched: a NaN in the
// last point rejects the whole batch with the engine state unchanged,
// never with a prefix of the batch silently landed.
func (d *DynamicEngine) InsertBulk(points [][]float64, weights []float64) ([]uint64, error) {
	if len(points) == 0 {
		return nil, nil
	}
	if weights != nil && len(weights) != len(points) {
		return nil, fmt.Errorf("karl: %d weights for %d points", len(weights), len(points))
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("karl: point %d has %d dims, point 0 has %d", i, len(p), dims)
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if err := validateInsert(p, w); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
	}
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.insertReadyLocked(dims); err != nil {
		return nil, err
	}
	ids := make([]uint64, len(points))
	for i, p := range points {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		id, err := sh.insertRowLocked(p, w)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// insertReadyLocked performs the per-call insert gating: closed and
// background-error checks plus fixing or checking the dimensionality.
func (sh *dynShared) insertReadyLocked(dims int) error {
	if sh.closed {
		return errors.New("karl: engine is closed")
	}
	if err := sh.compactErrLocked(); err != nil {
		return err
	}
	if sh.dims == 0 {
		sh.dims = dims
	}
	if dims != sh.dims {
		return fmt.Errorf("karl: point has %d dims, engine has %d", dims, sh.dims)
	}
	return nil
}

// insertRowLocked lands one already-validated row in the memtable,
// sealing when it fills. Called with mu held; may release it while
// waiting for room or sealing.
func (sh *dynShared) insertRowLocked(p []float64, w float64) (uint64, error) {
	// Wait until the memtable has room (a seal may be draining it) and no
	// full compaction is snapshotting it.
	for sh.draining || (sh.mem != nil && sh.mem.n >= sh.policy.SealSize) {
		sh.cond.Wait()
		if sh.closed {
			return 0, errors.New("karl: engine is closed")
		}
	}
	if sh.mem == nil {
		sh.mem = newMemtable(sh.policy.SealSize, sh.dims, sh.timed())
	}
	id := sh.nextSeq
	sh.nextSeq++
	mt := sh.mem
	copy(mt.m.Row(mt.n), p)
	mt.w[mt.n] = w
	mt.seq[mt.n] = id
	if mt.t != nil {
		mt.t[mt.n] = sh.now()
	}
	mt.n++
	if mt.n >= sh.policy.SealSize {
		return id, sh.sealLocked()
	}
	return id, nil
}

// Delete removes the point with the given id (as returned by InsertID or
// InsertBulk) and returns ErrPointNotFound when no live point has it.
// A point still in the active memtable is removed physically; a point in
// the sealing buffer or a sealed segment gets a TOMBSTONE — its exact
// mass is subtracted from both global bounds of every query (so answers
// reflect the delete immediately and the ε/τ guarantees stay anchored to
// the true post-delete total) until a compaction touching its segment
// physically drops the row and consumes the tombstone.
func (d *DynamicEngine) Delete(id uint64) error {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return errors.New("karl: engine is closed")
	}
	if err := sh.compactErrLocked(); err != nil {
		return err
	}
	// A full compaction snapshots the memtable without the lock; wait it
	// out before mutating anything.
	for sh.draining {
		sh.cond.Wait()
		if sh.closed {
			return errors.New("karl: engine is closed")
		}
	}
	if id == 0 || id >= sh.nextSeq {
		return ErrPointNotFound
	}
	if _, dead := sh.tombs[id]; dead {
		return ErrPointNotFound // already deleted, tombstone pending
	}
	if i, ok := sh.mem.find(id); ok {
		sh.mem.removeAt(i)
		sh.deletes++
		sh.logDeleteLocked(id)
		return nil
	}
	if b := sh.sealing; b != nil {
		if i, ok := b.find(id); ok {
			// The sealing buffer is being indexed concurrently without the
			// lock: never mutate it. The row lands in a segment when the
			// seal installs; the tombstone keeps cancelling it exactly.
			var ref int64
			if b.t != nil {
				ref = b.t[i]
			}
			sh.tombs[id] = tombstone{w: b.w[i], ref: ref, p: append([]float64(nil), b.m.Row(i)...)}
			sh.deletes++
			sh.logDeleteLocked(id)
			return nil
		}
	}
	for _, s := range sh.man.Segs {
		if row, ok := s.Find(id); ok {
			w := 1.0
			if s.Tree.Weights != nil {
				w = s.Tree.Weights[row]
			}
			sh.tombs[id] = tombstone{w: w, ref: s.TimeRef, p: append([]float64(nil), s.Tree.Points.Row(row)...)}
			sh.deletes++
			sh.logDeleteLocked(id)
			return nil
		}
	}
	return ErrPointNotFound
}

// sealLocked drains the full memtable into a new immutable segment. It is
// called with mu held and releases it around the index build, so queries
// (which scan the sealing buffer as part of their base term) and inserts
// (which go to the freshly installed buffer) proceed while the segment is
// built. Returns with mu held.
func (sh *dynShared) sealLocked() error {
	for sh.mem.n >= sh.policy.SealSize {
		if sh.sealing != nil || sh.draining {
			// Another goroutine is sealing or a full compaction is
			// snapshotting; it will broadcast when done.
			sh.cond.Wait()
			continue
		}
		sh.sealing = sh.mem
		if sh.spare != nil {
			sh.mem = sh.spare
			sh.spare = nil
		} else {
			sh.mem = newMemtable(sh.policy.SealSize, sh.dims, sh.timed())
		}
		id := sh.nextID
		sh.nextID++
		buf := sh.sealing
		run := buf.run()
		var ref int64
		var dropped []uint64
		if sh.timed() {
			nowT := sh.now()
			if sh.halfLife > 0 {
				ref = nowT // the new segment's decay reference instant
			}
			run, dropped = sh.sealRunLocked(buf, nowT, ref)
		}
		sh.mu.Unlock()
		var seg *segment.Segment
		var err error
		if run.N > 0 {
			seg, err = segment.Seal(run, ref, sh.bcfg, id)
		}
		sh.mu.Lock()
		sh.sealing = nil
		if err != nil {
			// Unreachable with a validated build config; surface rather
			// than silently dropping the buffered points.
			sh.cond.Broadcast()
			return fmt.Errorf("karl: sealing memtable: %w", err)
		}
		if seg != nil {
			sh.man = sh.man.WithSealed(seg)
		}
		// Rows the seal expired away can carry tombstones placed while the
		// build ran; the row and its tombstone vanish together here, so
		// the subtraction never outlives the mass it cancels.
		for _, sq := range dropped {
			delete(sh.tombs, sq)
		}
		sh.seals++
		buf.n = 0
		sh.spare = buf
		sh.maybeCompactLocked()
		sh.cond.Broadcast()
	}
	return nil
}

// sealRunLocked prepares a timed seal's input: drops rows past the TTL
// cutoff and rescales surviving weights onto the decay reference ref,
// copying into fresh buffers when anything changes (the shared sealing
// buffer is scanned by concurrent queries and must stay untouched).
// Returns the run to seal and the seqs of the dropped rows. Called with
// mu held; the plain untimed path never reaches here and stays
// allocation-free.
func (sh *dynShared) sealRunLocked(buf *memtable, nowT, ref int64) (segment.MemRun, []uint64) {
	var cutoff int64
	if sh.ttl > 0 {
		cutoff = nowT - sh.ttl
	}
	kept := 0
	for i := 0; i < buf.n; i++ {
		if cutoff != 0 && buf.t[i] < cutoff {
			continue
		}
		kept++
	}
	if kept == buf.n && sh.halfLife <= 0 {
		return buf.run(), nil // nothing expired, no decay: zero-copy
	}
	var run segment.MemRun
	var dropped []uint64
	if kept > 0 {
		run = segment.MemRun{
			M: vec.NewMatrix(kept, buf.m.Cols), W: make([]float64, kept),
			Seqs: make([]uint64, kept), Times: make([]int64, kept), N: kept,
		}
	}
	j := 0
	for i := 0; i < buf.n; i++ {
		if cutoff != 0 && buf.t[i] < cutoff {
			dropped = append(dropped, buf.seq[i])
			continue
		}
		copy(run.M.Row(j), buf.m.Row(i))
		w := buf.w[i]
		if sh.halfLife > 0 {
			// Rebase the raw (as-inserted) weight from its own insert
			// instant onto the segment's shared reference.
			w *= sh.decayAt(ref, buf.t[i])
		}
		run.W[j] = w
		run.Seqs[j] = buf.seq[i]
		run.Times[j] = buf.t[i]
		j++
	}
	return run, dropped
}

// maybeCompactLocked starts one background tiered merge if the policy
// calls for it and none is running.
func (sh *dynShared) maybeCompactLocked() {
	if !sh.autoCompact || sh.compacting || sh.draining || sh.closed {
		return
	}
	ids := sh.policy.Plan(sh.man)
	if ids == nil {
		return
	}
	sh.compacting = true
	segs := sh.man.Select(ids)
	id := sh.nextID
	sh.nextID++
	opts, consumed := sh.mergeOptsLocked(segs)
	go sh.compactSegments(ids, segs, id, opts, consumed)
}

// mergeOptsLocked assembles, under the lock, the mutations a merge over
// the given input segments applies: the pending tombstones whose points
// live in one of the inputs (those rows are dropped and the tombstones
// consumed when the merge installs), the TTL expiry cutoff, and the decay
// rebase onto the merge instant. Tombstones placed after this snapshot
// stay pending — the merged output keeps their rows, so the subtraction
// still cancels live mass and a later compaction collects them.
func (sh *dynShared) mergeOptsLocked(segs []*segment.Segment) (segment.MergeOpts, []uint64) {
	var opts segment.MergeOpts
	var nowT int64
	if sh.timed() {
		nowT = sh.now()
	}
	if sh.ttl > 0 {
		opts.ExpireBefore = nowT - sh.ttl
	}
	if sh.halfLife > 0 {
		opts.HalfLife = sh.halfLife
		opts.NewRef = nowT
	}
	var consumed []uint64
	for seq := range sh.tombs {
		for _, s := range segs {
			if _, ok := s.Find(seq); ok {
				if opts.Drop == nil {
					opts.Drop = make(map[uint64]bool, len(sh.tombs))
				}
				opts.Drop[seq] = true
				consumed = append(consumed, seq)
				break
			}
		}
	}
	return opts, consumed
}

// compactSegments merges the planned segments off the query and insert
// paths and swaps the result in atomically. Queries started before the
// swap keep refining over the old snapshot.
func (sh *dynShared) compactSegments(ids []uint64, segs []*segment.Segment, id uint64, opts segment.MergeOpts, consumed []uint64) {
	merged, err := segment.Merge(segs, segment.MemRun{}, opts, sh.bcfg, id)
	if err == nil && merged != nil && sh.policy.ColdEps > 0 && merged.Len() >= sh.policy.ColdMin {
		// Cold tier: compress large merged segments into a provable-error
		// coreset. Mixed-sign segments are kept lossless (Compress rejects
		// Type III).
		if cold, cerr := segment.Compress(merged, kernel.Params(sh.kern), sh.policy.ColdEps, sh.coldSeed, sh.bcfg, id); cerr == nil {
			merged = cold
		}
	}
	sh.mu.Lock()
	sh.compacting = false
	if err != nil {
		sh.compactErr = err
	} else {
		sh.man = sh.man.WithReplaced(ids, merged)
		for _, seq := range consumed {
			delete(sh.tombs, seq)
		}
		sh.compactions++
		sh.maybeCompactLocked() // cascade into the next tier if due
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// compactErrLocked surfaces (once) an error from a background merge.
func (sh *dynShared) compactErrLocked() error {
	err := sh.compactErr
	sh.compactErr = nil
	if err != nil {
		return fmt.Errorf("karl: background compaction: %w", err)
	}
	return nil
}

// Compact merges every segment AND the memtable into one segment,
// restoring per-segment insertion order oldest-first, physically dropping
// every tombstoned and TTL-expired row, and (under decay) rebasing all
// weights onto the compaction instant. Without deletes, TTL or decay the
// result is bitwise identical to a from-scratch static build over the
// full insert stream; with deletes it is bitwise identical to a static
// build over the never-deleted survivors in insertion order. Inserts and
// deletes block for the duration; queries proceed on the old snapshot and
// switch to the compacted manifest atomically.
func (d *DynamicEngine) Compact() error {
	sh := d.sh
	sh.mu.Lock()
	for sh.compacting || sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if err := sh.compactErrLocked(); err != nil {
		sh.mu.Unlock()
		return err
	}
	memN := sh.mem.len()
	if sh.man.Len()+memN == 0 {
		sh.mu.Unlock()
		return nil // empty
	}
	if len(sh.man.Segs) == 1 && memN == 0 && len(sh.tombs) == 0 && sh.ttl == 0 {
		// One segment, nothing buffered, no pending deletes, no window to
		// enforce: already fully compact. (Pending tombstones or a TTL
		// force the merge so dead rows are physically dropped.)
		sh.mu.Unlock()
		return nil
	}
	sh.draining = true // blocks inserts, deletes, seals and background merges
	segs := sh.man.Segs
	run := sh.mem.run()
	id := sh.nextID
	sh.nextID++
	opts, consumed := sh.mergeOptsLocked(segs)
	sh.mu.Unlock()
	merged, err := segment.Merge(segs, run, opts, sh.bcfg, id)
	sh.mu.Lock()
	sh.draining = false
	if err == nil {
		man := &segment.Manifest{Epoch: sh.man.Epoch + 1}
		if merged != nil {
			man.Segs = []*segment.Segment{merged}
		}
		sh.man = man
		for _, seq := range consumed {
			delete(sh.tombs, seq)
		}
		sh.compactions++
		if sh.mem != nil {
			sh.mem.n = 0 // absorbed into the merged segment
		}
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
	return err
}

// Close prevents further inserts and waits for in-flight seals and
// compactions to finish. Queries on existing clones remain valid.
func (d *DynamicEngine) Close() error {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.closed = true
	sh.cond.Broadcast()
	for sh.compacting || sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	return sh.compactErrLocked()
}

// snapshot grabs, under the lock, everything one query needs: the current
// manifest, the exact contribution of the buffered points (memtable plus
// any buffer currently being sealed) MINUS the exact mass of every
// pending tombstone — both folded the same way into the base term that
// tightens both global bounds, so ε/τ certificates hold relative to the
// true post-delete total — together with how many points that scan
// covered. Under decay it also refills this clone's per-segment scale
// scratch for the query instant.
func (d *DynamicEngine) snapshot(q []float64) (man *segment.Manifest, base float64, scanned int, err error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	total := sh.man.Len() + sh.mem.len() + sh.sealing.len()
	if total == 0 {
		return nil, 0, 0, errors.New("karl: dynamic engine is empty")
	}
	if len(q) != sh.dims {
		return nil, 0, 0, fmt.Errorf("karl: query has %d dims, engine has %d", len(q), sh.dims)
	}
	if d.fCfgGen != sh.cfgGen {
		// The engine's kernel configuration was replaced (snapshot
		// install) after this view's forest was built: rebuild it so the
		// refinement side answers with the same kernel the base term
		// below is computed with.
		f, err := core.NewForest(kernel.Params(sh.kern), sh.method, sh.maxDepth)
		if err != nil {
			return nil, 0, 0, err
		}
		if sh.refineWorkers > 1 {
			f.SetWorkers(sh.refineWorkers)
		}
		d.f, d.fCfgGen, d.fSet = f, sh.cfgGen, false
	}
	p := kernel.Params(sh.kern)
	var nowT int64
	if sh.timed() {
		nowT = sh.now()
	}
	decayed := sh.halfLife > 0
	for _, b := range [2]*memtable{sh.mem, sh.sealing} {
		if b == nil {
			continue
		}
		for i := 0; i < b.n; i++ {
			w := b.w[i]
			if decayed {
				w *= sh.decayAt(nowT, b.t[i])
			}
			base += w * p.Eval(q, b.m.Row(i))
		}
		scanned += b.n
	}
	for _, tb := range sh.tombs {
		w := tb.w
		if decayed {
			w *= sh.decayAt(nowT, tb.ref)
		}
		base -= w * p.Eval(q, tb.p)
		scanned++
	}
	if decayed {
		d.scales = d.scales[:0]
		for _, s := range sh.man.Segs {
			d.scales = append(d.scales, sh.decayAt(nowT, s.TimeRef))
		}
	}
	return sh.man, base, scanned, nil
}

// arm points this clone's forest at the manifest snapshot, reusing the
// existing segment set when the epoch is unchanged (the steady-state path:
// no allocation, no re-validation). Under decay the per-segment scales
// are re-installed every query — the clock has moved — but the slice is
// this clone's reused scratch, so steady state still allocates nothing.
func (d *DynamicEngine) arm(man *segment.Manifest) error {
	if !d.fSet || d.fEpoch != man.Epoch {
		if err := d.f.SetTrees(man.Trees()); err != nil {
			return err
		}
		d.fEpoch, d.fSet = man.Epoch, true
	}
	if d.sh.halfLife > 0 {
		return d.f.SetScales(d.scales)
	}
	return d.f.SetScales(nil)
}

// Aggregate computes the exact aggregate over all current points.
func (d *DynamicEngine) Aggregate(q []float64) (float64, error) {
	v, _, err := d.AggregateStats(q)
	return v, err
}

// AggregateStats is Aggregate plus the work statistics (an exact
// aggregation scans every point, buffered and indexed).
func (d *DynamicEngine) AggregateStats(q []float64) (float64, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return 0, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return 0, Stats{}, err
	}
	v, st, err := d.f.Exact(q, base)
	st.PointsScanned += scanned
	return v, st, err
}

// Threshold answers the TKAQ over all current points: the buffered points
// contribute exactly to both global bounds, so the indexed segments still
// prune against the full-total threshold.
func (d *DynamicEngine) Threshold(q []float64, tau float64) (bool, error) {
	hot, _, err := d.ThresholdStats(q, tau)
	return hot, err
}

// ThresholdStats is Threshold plus the work statistics.
func (d *DynamicEngine) ThresholdStats(q []float64, tau float64) (bool, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return false, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return false, Stats{}, err
	}
	hot, st, err := d.f.Threshold(q, tau, base)
	st.PointsScanned += scanned
	return hot, st, err
}

// Approximate answers the eKAQ over all current points: a value within
// relative error eps of the TRUE total. The buffered points fold into
// both global bounds as an exact base term before refinement, so the
// guarantee holds even with mixed-sign weights where the buffered and
// indexed parts nearly cancel (refinement is then driven toward exact).
func (d *DynamicEngine) Approximate(q []float64, eps float64) (float64, error) {
	v, _, err := d.ApproximateStats(q, eps)
	return v, err
}

// ApproximateStats is Approximate plus the work statistics.
func (d *DynamicEngine) ApproximateStats(q []float64, eps float64) (float64, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return 0, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return 0, Stats{}, err
	}
	v, st, err := d.f.Approximate(q, eps, base)
	st.PointsScanned += scanned
	return v, st, err
}

// SegmentStats returns the per-segment work of the most recent query on
// THIS clone, index-aligned with the manifest the query ran over. The
// slice is scratch: valid until the next query.
func (d *DynamicEngine) SegmentStats() []Stats { return d.f.SegmentStats() }

// ArmedEpoch returns the manifest epoch this clone's executor is armed
// for — the epoch of the last query it ran — and whether it has run one.
// Comparing it with Epoch shows how far a pooled clone lags the dataset.
func (d *DynamicEngine) ArmedEpoch() (uint64, bool) { return d.fEpoch, d.fSet }

// FastPathQueries reports how many Threshold/Approximate queries on THIS
// clone ran through the single-segment fast path — the restored monolithic
// loop a query takes only when the manifest holds exactly one segment and
// no memtable points, tombstones or decay contribute (the base term and
// scales would otherwise change the algebra).
func (d *DynamicEngine) FastPathQueries() int64 { return d.f.FastPathQueries() }

// BatchThreshold answers the TKAQ for every query, fanning out over
// clones when workers > 1 (≤ 0 selects GOMAXPROCS).
func (d *DynamicEngine) BatchThreshold(queries [][]float64, tau float64, workers int) ([]bool, error) {
	out, _, err := d.BatchThresholdStats(queries, tau, workers)
	return out, err
}

// BatchThresholdStats is BatchThreshold plus summed work statistics.
func (d *DynamicEngine) BatchThresholdStats(queries [][]float64, tau float64, workers int) ([]bool, Stats, error) {
	if err := validateBatchQueries(queries, d.Dims()); err != nil {
		return nil, Stats{}, err
	}
	if d.useDual(len(queries)) {
		return d.dualThreshold(queries, tau, workers)
	}
	d.sh.dualCtr.noteSequential(len(queries))
	out := make([]bool, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.ThresholdStats(queries[i], tau)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchApproximate answers the eKAQ for every query, index-aligned.
func (d *DynamicEngine) BatchApproximate(queries [][]float64, eps float64, workers int) ([]float64, error) {
	out, _, err := d.BatchApproximateStats(queries, eps, workers)
	return out, err
}

// BatchApproximateStats is BatchApproximate plus summed work statistics.
func (d *DynamicEngine) BatchApproximateStats(queries [][]float64, eps float64, workers int) ([]float64, Stats, error) {
	if err := validateBatchQueries(queries, d.Dims()); err != nil {
		return nil, Stats{}, err
	}
	if eps > 0 && d.useDual(len(queries)) {
		return d.dualApproximate(queries, eps, workers)
	}
	d.sh.dualCtr.noteSequential(len(queries))
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.ApproximateStats(queries[i], eps)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchAggregate computes the exact aggregate for every query.
func (d *DynamicEngine) BatchAggregate(queries [][]float64, workers int) ([]float64, error) {
	out, _, err := d.BatchAggregateStats(queries, workers)
	return out, err
}

// BatchAggregateStats is BatchAggregate plus summed work statistics.
func (d *DynamicEngine) BatchAggregateStats(queries [][]float64, workers int) ([]float64, Stats, error) {
	if err := validateBatchQueries(queries, d.Dims()); err != nil {
		return nil, Stats{}, err
	}
	if d.sh.batchExec == BatchDualTree && len(queries) > 0 && d.Len() > 0 {
		return d.dualAggregate(queries, workers)
	}
	d.sh.dualCtr.noteSequential(len(queries))
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.AggregateStats(queries[i])
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}
