package karl

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// DynamicEngine supports the online kernel learning scenario the paper's
// in-situ section motivates: the point set grows while queries are being
// served. New points land in a side buffer that every query evaluates
// exactly; when the buffer outgrows a fraction of the indexed set, the
// index is rebuilt to absorb it. Answers are always exact with respect to
// the full current point set.
type DynamicEngine struct {
	kern Kernel
	opts []Option

	base *Engine // nil until the first rebuild

	buf  *vec.Matrix // pending points (grown geometrically)
	bufW []float64
	bufN int

	// rebuildFrac triggers a rebuild when bufN > rebuildFrac·base.Len()
	// (and bufN ≥ minRebuild).
	rebuildFrac float64
	rebuilds    int
}

// minRebuild is the smallest buffer that triggers an automatic rebuild;
// below it the exact buffer scan is cheaper than reindexing.
const minRebuild = 256

// NewDynamic creates an empty dynamic engine. opts are applied at every
// rebuild (WithWeights is rejected — weights arrive with Insert).
func NewDynamic(kern Kernel, opts ...Option) (*DynamicEngine, error) {
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	probe := buildConfig{}
	for _, opt := range opts {
		opt(&probe)
	}
	if probe.weights != nil {
		return nil, errors.New("karl: pass weights through Insert, not WithWeights")
	}
	return &DynamicEngine{kern: kern, opts: opts, rebuildFrac: 0.25}, nil
}

// Len returns the number of points currently represented (indexed plus
// buffered).
func (d *DynamicEngine) Len() int {
	n := d.bufN
	if d.base != nil {
		n += d.base.Len()
	}
	return n
}

// Rebuilds reports how many times the index has been rebuilt.
func (d *DynamicEngine) Rebuilds() int { return d.rebuilds }

// Insert adds one weighted point. The first insert fixes the
// dimensionality. NaN or ±Inf coordinates and weights are rejected: a
// single non-finite value would silently poison every aggregate the
// engine answers afterwards.
func (d *DynamicEngine) Insert(p []float64, w float64) error {
	if len(p) == 0 {
		return errors.New("karl: empty point")
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("karl: point coordinate %d is %v; coordinates must be finite", i, v)
		}
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("karl: weight is %v; weights must be finite", w)
	}
	if d.buf == nil {
		if d.base != nil && len(p) != d.base.Dims() {
			return fmt.Errorf("karl: point has %d dims, engine has %d", len(p), d.base.Dims())
		}
		d.buf = vec.NewMatrix(64, len(p))
	}
	if len(p) != d.buf.Cols {
		return fmt.Errorf("karl: point has %d dims, engine has %d", len(p), d.buf.Cols)
	}
	if d.bufN == d.buf.Rows {
		grown := vec.NewMatrix(d.buf.Rows*2, d.buf.Cols)
		copy(grown.Data, d.buf.Data)
		d.buf = grown
	}
	copy(d.buf.Row(d.bufN), p)
	d.bufW = append(d.bufW, w)
	d.bufN++
	if d.shouldRebuild() {
		return d.Rebuild()
	}
	return nil
}

func (d *DynamicEngine) shouldRebuild() bool {
	if d.bufN < minRebuild {
		return false
	}
	if d.base == nil {
		return true
	}
	return float64(d.bufN) > d.rebuildFrac*float64(d.base.Len())
}

// Rebuild absorbs the buffer into a fresh index immediately.
func (d *DynamicEngine) Rebuild() error {
	if d.bufN == 0 {
		return nil
	}
	total := d.bufN
	dims := d.buf.Cols
	if d.base != nil {
		total += d.base.Len()
	}
	m := vec.NewMatrix(total, dims)
	w := make([]float64, total)
	n := 0
	if d.base != nil {
		tree := d.base.tree
		for i := 0; i < tree.Len(); i++ {
			copy(m.Row(n), tree.Points.Row(i))
			w[n] = tree.Weight(i)
			n++
		}
	}
	for i := 0; i < d.bufN; i++ {
		copy(m.Row(n), d.buf.Row(i))
		w[n] = d.bufW[i]
		n++
	}
	opts := append(append([]Option{}, d.opts...), WithWeights(w))
	eng, err := buildMatrix(m, d.kern, opts...)
	if err != nil {
		return err
	}
	d.base = eng
	d.buf = vec.NewMatrix(64, dims)
	d.bufW = d.bufW[:0]
	d.bufN = 0
	d.rebuilds++
	return nil
}

// bufferAggregate evaluates the pending points exactly.
func (d *DynamicEngine) bufferAggregate(q []float64) float64 {
	var s float64
	p := kernel.Params(d.kern)
	for i := 0; i < d.bufN; i++ {
		s += d.bufW[i] * p.Eval(q, d.buf.Row(i))
	}
	return s
}

func (d *DynamicEngine) checkQuery(q []float64) error {
	if d.Len() == 0 {
		return errors.New("karl: dynamic engine is empty")
	}
	dims := 0
	if d.base != nil {
		dims = d.base.Dims()
	} else {
		dims = d.buf.Cols
	}
	if len(q) != dims {
		return fmt.Errorf("karl: query has %d dims, engine has %d", len(q), dims)
	}
	return nil
}

// Aggregate computes the exact aggregate over indexed plus buffered
// points.
func (d *DynamicEngine) Aggregate(q []float64) (float64, error) {
	if err := d.checkQuery(q); err != nil {
		return 0, err
	}
	s := d.bufferAggregate(q)
	if d.base != nil {
		base, err := d.base.Aggregate(q)
		if err != nil {
			return 0, err
		}
		s += base
	}
	return s, nil
}

// Threshold answers the TKAQ over the full current point set: the buffer
// is folded into the threshold, so the indexed part still prunes.
func (d *DynamicEngine) Threshold(q []float64, tau float64) (bool, error) {
	if err := d.checkQuery(q); err != nil {
		return false, err
	}
	bufSum := d.bufferAggregate(q)
	if d.base == nil {
		return bufSum > tau, nil
	}
	return d.base.Threshold(q, tau-bufSum)
}

// Approximate answers the eKAQ over the full current point set. With
// non-negative weights the relative-error guarantee carries over (the
// buffer contributes exactly); with mixed-sign weights the error is
// relative to the indexed portion, which can exceed eps relative to the
// total when the two parts nearly cancel.
func (d *DynamicEngine) Approximate(q []float64, eps float64) (float64, error) {
	if err := d.checkQuery(q); err != nil {
		return 0, err
	}
	bufSum := d.bufferAggregate(q)
	if d.base == nil {
		return bufSum, nil
	}
	base, err := d.base.Approximate(q, eps)
	if err != nil {
		return 0, err
	}
	return base + bufSum, nil
}
