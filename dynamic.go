package karl

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/kernel"
	"karl/internal/segment"
	"karl/internal/vec"
)

// DynamicEngine serves kernel aggregation queries while the point set
// grows — the online scenario the paper's in-situ section motivates —
// without ever blocking a query on an index rebuild. It is organized like
// a small LSM tree:
//
//   - Inserts land in a fixed-capacity MEMTABLE that queries scan exactly.
//   - When the memtable fills it is SEALED: a small immutable flat-index
//     segment is built off the query path and appended to the MANIFEST,
//     and the memtable's backing storage is recycled (no allocation in
//     steady state).
//   - A geometric tiering policy merges segments in a BACKGROUND
//     goroutine; the merged segment replaces its inputs with one atomic
//     manifest swap, so queries keep refining over the old snapshot until
//     the swap lands.
//
// Queries refine over every segment through one shared global priority
// queue (core.Forest), with the memtable folded in as an exact base term
// on both global bounds — so Threshold and Approximate guarantees hold
// relative to the true total over ALL current points, including the
// mixed-sign case where memtable and indexed parts nearly cancel.
//
// A DynamicEngine value is not safe for concurrent QUERIES — like Engine,
// it owns per-query scratch. Clone once per goroutine: clones share the
// mutable dataset (inserts through any clone are visible to all) but own
// their query state. Insert, Compact and Close may be called from any
// goroutine concurrently with queries on other clones.
type DynamicEngine struct {
	sh *dynShared

	// f refines over the manifest snapshot of epoch fEpoch; fSet records
	// whether the forest has been armed at all. Query-only state, per clone.
	f      *core.Forest
	fEpoch uint64
	fSet   bool
}

// memtable is one reusable insert buffer: a fixed-capacity matrix plus
// parallel weights, filled to n rows in insertion order.
type memtable struct {
	m *vec.Matrix
	w []float64
	n int
}

func newMemtable(rows, dims int) *memtable {
	return &memtable{m: vec.NewMatrix(rows, dims), w: make([]float64, rows)}
}

// dynShared is the mutable dataset state shared by every clone of one
// dynamic engine. All fields are guarded by mu; cond broadcasts every
// state transition (seal finished, compaction finished, drain finished).
type dynShared struct {
	mu   sync.Mutex
	cond *sync.Cond

	kern     Kernel
	method   bound.Method
	maxDepth int
	bcfg     segment.BuildConfig
	policy   segment.Policy
	coldSeed int64

	autoCompact bool

	dims int // fixed by the first insert (or a load); 0 = undetermined

	man *segment.Manifest

	// mem receives inserts; sealing is non-nil while its rows are being
	// built into a segment (queries still scan it); spare is the recycled
	// buffer the next seal swap installs. The three rotate forever, so
	// steady-state Insert allocates nothing.
	mem     *memtable
	sealing *memtable
	spare   *memtable

	// draining blocks inserts and new compactions while a full Compact()
	// merge is in flight (queries proceed on the old snapshot).
	draining   bool
	compacting bool
	closed     bool

	nextID      uint64
	seals       int
	compactions int
	compactErr  error
}

// NewDynamic creates an empty dynamic engine. Index options (WithIndex,
// WithMethod) fix how segments are built; WithSealSize and
// WithCompactionFanout shape the LSM tiering; WithWeights is rejected —
// weights arrive with Insert.
func NewDynamic(kern Kernel, opts ...Option) (*DynamicEngine, error) {
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	cfg := defaultBuildConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.weights != nil {
		return nil, errors.New("karl: pass weights through Insert, not WithWeights")
	}
	if cfg.leafCap < 1 {
		return nil, fmt.Errorf("karl: leaf capacity %d out of range", cfg.leafCap)
	}
	policy := segment.DefaultPolicy()
	if cfg.sealSize != 0 {
		policy.SealSize = cfg.sealSize
	}
	if cfg.fanout != 0 {
		policy.Fanout = cfg.fanout
	}
	policy.ColdEps, policy.ColdMin = cfg.coldEps, cfg.coldMin
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	sh := &dynShared{
		kern:        kern,
		method:      methodOf(cfg.method),
		maxDepth:    cfg.maxDepth,
		bcfg:        segment.BuildConfig{Kind: indexKindOf(cfg.kind), LeafCap: cfg.leafCap},
		policy:      policy,
		coldSeed:    cfg.coresetSeed,
		autoCompact: !cfg.noAutoCompact,
		man:         &segment.Manifest{},
		nextID:      1,
	}
	sh.cond = sync.NewCond(&sh.mu)
	return newDynamicView(sh)
}

// newDynamicView wraps shared state in a queryable engine view.
func newDynamicView(sh *dynShared) (*DynamicEngine, error) {
	f, err := core.NewForest(kernel.Params(sh.kern), sh.method, sh.maxDepth)
	if err != nil {
		return nil, err
	}
	return &DynamicEngine{sh: sh, f: f}, nil
}

// Clone returns a view of the same mutable dataset with independent query
// scratch, for use from another goroutine. Inserts through any clone are
// visible to all clones.
func (d *DynamicEngine) Clone() *DynamicEngine {
	c, _ := newDynamicView(d.sh) // kernel already validated
	return c
}

// Len returns the number of points currently represented (all segments
// plus buffered inserts).
func (d *DynamicEngine) Len() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.man.Len() + sh.mem.len() + sh.sealing.len()
	return n
}

// Dims returns the dataset dimensionality (0 before the first insert).
func (d *DynamicEngine) Dims() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.dims
}

// Kernel returns the engine's kernel.
func (d *DynamicEngine) Kernel() Kernel { return d.sh.kern }

// WeightMass returns the dataset's positive and negative weight mass
// (pos = Σ w_i over w_i ≥ 0, neg = Σ |w_i| over w_i < 0) across every
// segment plus the buffered inserts — the same contract as
// Engine.WeightMass, which the cluster layer relies on.
func (d *DynamicEngine) WeightMass() (pos, neg float64) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, s := range sh.man.Segs {
		r := s.Tree.Root()
		pos += r.Pos.W
		neg += r.Neg.W
	}
	for _, mt := range []*memtable{sh.mem, sh.sealing} {
		if mt == nil {
			continue
		}
		for i := 0; i < mt.n; i++ {
			if w := mt.w[i]; w >= 0 {
				pos += w
			} else {
				neg -= w
			}
		}
	}
	return pos, neg
}

func (b *memtable) len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Epoch returns the current manifest epoch; it increases with every seal
// and compaction, so two equal epochs imply an identical segment set.
func (d *DynamicEngine) Epoch() uint64 {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.man.Epoch
}

// MemtableLen returns the number of buffered (not yet sealed) points.
func (d *DynamicEngine) MemtableLen() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mem.len() + sh.sealing.len()
}

// Seals reports how many memtable seals have happened.
func (d *DynamicEngine) Seals() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.seals
}

// Compactions reports how many segment merges have completed (background
// tiered merges plus explicit Compact calls).
func (d *DynamicEngine) Compactions() int {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.compactions
}

// SegmentInfo describes one immutable segment of the current manifest.
type SegmentInfo struct {
	// ID is the segment's stable identity (assigned at seal/merge time).
	ID uint64
	// Len is the number of points the segment stores.
	Len int
	// Coreset marks a lossy cold-compacted segment; Eps is its accumulated
	// normalized error bound.
	Coreset bool
	Eps     float64
}

// Segments returns a snapshot of the current manifest, oldest segment
// first.
func (d *DynamicEngine) Segments() []SegmentInfo {
	sh := d.sh
	sh.mu.Lock()
	man := sh.man
	sh.mu.Unlock()
	out := make([]SegmentInfo, len(man.Segs))
	for i, s := range man.Segs {
		out[i] = SegmentInfo{ID: s.ID, Len: s.Len(), Coreset: s.Coreset, Eps: s.Eps}
	}
	return out
}

// Insert adds one weighted point. The first insert fixes the
// dimensionality. NaN or ±Inf coordinates and weights are rejected: a
// single non-finite value would silently poison every aggregate the
// engine answers afterwards. Steady-state inserts are allocation-free;
// an insert that fills the memtable builds the new segment synchronously
// (off the query path — concurrent queries are never blocked by it).
func (d *DynamicEngine) Insert(p []float64, w float64) error {
	if len(p) == 0 {
		return errors.New("karl: empty point")
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("karl: point coordinate %d is %v; coordinates must be finite", i, v)
		}
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("karl: weight is %v; weights must be finite", w)
	}
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return errors.New("karl: engine is closed")
	}
	if err := sh.compactErrLocked(); err != nil {
		return err
	}
	if sh.dims == 0 {
		sh.dims = len(p)
	}
	if len(p) != sh.dims {
		return fmt.Errorf("karl: point has %d dims, engine has %d", len(p), sh.dims)
	}
	// Wait until the memtable has room (a seal may be draining it) and no
	// full compaction is snapshotting it.
	for sh.draining || (sh.mem != nil && sh.mem.n >= sh.policy.SealSize) {
		sh.cond.Wait()
		if sh.closed {
			return errors.New("karl: engine is closed")
		}
	}
	if sh.mem == nil {
		sh.mem = newMemtable(sh.policy.SealSize, sh.dims)
	}
	copy(sh.mem.m.Row(sh.mem.n), p)
	sh.mem.w[sh.mem.n] = w
	sh.mem.n++
	if sh.mem.n >= sh.policy.SealSize {
		return sh.sealLocked()
	}
	return nil
}

// sealLocked drains the full memtable into a new immutable segment. It is
// called with mu held and releases it around the index build, so queries
// (which scan the sealing buffer as part of their base term) and inserts
// (which go to the freshly installed buffer) proceed while the segment is
// built. Returns with mu held.
func (sh *dynShared) sealLocked() error {
	for sh.mem.n >= sh.policy.SealSize {
		if sh.sealing != nil || sh.draining {
			// Another goroutine is sealing or a full compaction is
			// snapshotting; it will broadcast when done.
			sh.cond.Wait()
			continue
		}
		sh.sealing = sh.mem
		if sh.spare != nil {
			sh.mem = sh.spare
			sh.spare = nil
		} else {
			sh.mem = newMemtable(sh.policy.SealSize, sh.dims)
		}
		id := sh.nextID
		sh.nextID++
		buf := sh.sealing
		sh.mu.Unlock()
		seg, err := segment.Seal(buf.m, buf.w, buf.n, sh.bcfg, id)
		sh.mu.Lock()
		sh.sealing = nil
		if err != nil {
			// Unreachable with a validated build config; surface rather
			// than silently dropping the buffered points.
			sh.cond.Broadcast()
			return fmt.Errorf("karl: sealing memtable: %w", err)
		}
		sh.man = sh.man.WithSealed(seg)
		sh.seals++
		buf.n = 0
		sh.spare = buf
		sh.maybeCompactLocked()
		sh.cond.Broadcast()
	}
	return nil
}

// maybeCompactLocked starts one background tiered merge if the policy
// calls for it and none is running.
func (sh *dynShared) maybeCompactLocked() {
	if !sh.autoCompact || sh.compacting || sh.draining || sh.closed {
		return
	}
	ids := sh.policy.Plan(sh.man)
	if ids == nil {
		return
	}
	sh.compacting = true
	segs := sh.man.Select(ids)
	id := sh.nextID
	sh.nextID++
	go sh.compactSegments(ids, segs, id)
}

// compactSegments merges the planned segments off the query and insert
// paths and swaps the result in atomically. Queries started before the
// swap keep refining over the old snapshot.
func (sh *dynShared) compactSegments(ids []uint64, segs []*segment.Segment, id uint64) {
	merged, err := segment.Merge(segs, nil, nil, 0, sh.bcfg, id)
	if err == nil && sh.policy.ColdEps > 0 && merged.Len() >= sh.policy.ColdMin {
		// Cold tier: compress large merged segments into a provable-error
		// coreset. Mixed-sign segments are kept lossless (Compress rejects
		// Type III).
		if cold, cerr := segment.Compress(merged, kernel.Params(sh.kern), sh.policy.ColdEps, sh.coldSeed, sh.bcfg, id); cerr == nil {
			merged = cold
		}
	}
	sh.mu.Lock()
	sh.compacting = false
	if err != nil {
		sh.compactErr = err
	} else {
		sh.man = sh.man.WithReplaced(ids, merged)
		sh.compactions++
		sh.maybeCompactLocked() // cascade into the next tier if due
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// compactErrLocked surfaces (once) an error from a background merge.
func (sh *dynShared) compactErrLocked() error {
	err := sh.compactErr
	sh.compactErr = nil
	if err != nil {
		return fmt.Errorf("karl: background compaction: %w", err)
	}
	return nil
}

// Compact merges every segment AND the memtable into one segment,
// restoring per-segment insertion order oldest-first — the result is
// bitwise identical to a from-scratch static build over the full insert
// stream. Inserts block for the duration; queries proceed on the old
// snapshot and switch to the compacted manifest atomically.
func (d *DynamicEngine) Compact() error {
	sh := d.sh
	sh.mu.Lock()
	for sh.compacting || sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if err := sh.compactErrLocked(); err != nil {
		sh.mu.Unlock()
		return err
	}
	memN := sh.mem.len()
	if sh.man.Len()+memN == 0 || (len(sh.man.Segs) == 1 && memN == 0) {
		sh.mu.Unlock()
		return nil // already fully compact (or empty)
	}
	sh.draining = true // blocks inserts, seals and background merges
	segs := sh.man.Segs
	var memM *vec.Matrix
	var memW []float64
	if memN > 0 {
		memM, memW = sh.mem.m, sh.mem.w
	}
	id := sh.nextID
	sh.nextID++
	sh.mu.Unlock()
	merged, err := segment.Merge(segs, memM, memW, memN, sh.bcfg, id)
	sh.mu.Lock()
	sh.draining = false
	if err == nil {
		sh.man = &segment.Manifest{Epoch: sh.man.Epoch + 1, Segs: []*segment.Segment{merged}}
		sh.compactions++
		if sh.mem != nil {
			sh.mem.n = 0 // absorbed into the merged segment
		}
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
	return err
}

// Close prevents further inserts and waits for in-flight seals and
// compactions to finish. Queries on existing clones remain valid.
func (d *DynamicEngine) Close() error {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.closed = true
	sh.cond.Broadcast()
	for sh.compacting || sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	return sh.compactErrLocked()
}

// snapshot grabs, under the lock, everything one query needs: the current
// manifest and the exact contribution of the buffered points (memtable
// plus any buffer currently being sealed) together with how many points
// that scan covered.
func (d *DynamicEngine) snapshot(q []float64) (man *segment.Manifest, base float64, scanned int, err error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	total := sh.man.Len() + sh.mem.len() + sh.sealing.len()
	if total == 0 {
		return nil, 0, 0, errors.New("karl: dynamic engine is empty")
	}
	if len(q) != sh.dims {
		return nil, 0, 0, fmt.Errorf("karl: query has %d dims, engine has %d", len(q), sh.dims)
	}
	p := kernel.Params(sh.kern)
	for _, b := range [2]*memtable{sh.mem, sh.sealing} {
		if b == nil {
			continue
		}
		for i := 0; i < b.n; i++ {
			base += b.w[i] * p.Eval(q, b.m.Row(i))
		}
		scanned += b.n
	}
	return sh.man, base, scanned, nil
}

// arm points this clone's forest at the manifest snapshot, reusing the
// existing segment set when the epoch is unchanged (the steady-state path:
// no allocation, no re-validation).
func (d *DynamicEngine) arm(man *segment.Manifest) error {
	if d.fSet && d.fEpoch == man.Epoch {
		return nil
	}
	if err := d.f.SetTrees(man.Trees()); err != nil {
		return err
	}
	d.fEpoch, d.fSet = man.Epoch, true
	return nil
}

// Aggregate computes the exact aggregate over all current points.
func (d *DynamicEngine) Aggregate(q []float64) (float64, error) {
	v, _, err := d.AggregateStats(q)
	return v, err
}

// AggregateStats is Aggregate plus the work statistics (an exact
// aggregation scans every point, buffered and indexed).
func (d *DynamicEngine) AggregateStats(q []float64) (float64, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return 0, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return 0, Stats{}, err
	}
	v, st, err := d.f.Exact(q, base)
	st.PointsScanned += scanned
	return v, st, err
}

// Threshold answers the TKAQ over all current points: the buffered points
// contribute exactly to both global bounds, so the indexed segments still
// prune against the full-total threshold.
func (d *DynamicEngine) Threshold(q []float64, tau float64) (bool, error) {
	hot, _, err := d.ThresholdStats(q, tau)
	return hot, err
}

// ThresholdStats is Threshold plus the work statistics.
func (d *DynamicEngine) ThresholdStats(q []float64, tau float64) (bool, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return false, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return false, Stats{}, err
	}
	hot, st, err := d.f.Threshold(q, tau, base)
	st.PointsScanned += scanned
	return hot, st, err
}

// Approximate answers the eKAQ over all current points: a value within
// relative error eps of the TRUE total. The buffered points fold into
// both global bounds as an exact base term before refinement, so the
// guarantee holds even with mixed-sign weights where the buffered and
// indexed parts nearly cancel (refinement is then driven toward exact).
func (d *DynamicEngine) Approximate(q []float64, eps float64) (float64, error) {
	v, _, err := d.ApproximateStats(q, eps)
	return v, err
}

// ApproximateStats is Approximate plus the work statistics.
func (d *DynamicEngine) ApproximateStats(q []float64, eps float64) (float64, Stats, error) {
	man, base, scanned, err := d.snapshot(q)
	if err != nil {
		return 0, Stats{}, err
	}
	if err := d.arm(man); err != nil {
		return 0, Stats{}, err
	}
	v, st, err := d.f.Approximate(q, eps, base)
	st.PointsScanned += scanned
	return v, st, err
}

// SegmentStats returns the per-segment work of the most recent query on
// THIS clone, index-aligned with the manifest the query ran over. The
// slice is scratch: valid until the next query.
func (d *DynamicEngine) SegmentStats() []Stats { return d.f.SegmentStats() }

// ArmedEpoch returns the manifest epoch this clone's executor is armed
// for — the epoch of the last query it ran — and whether it has run one.
// Comparing it with Epoch shows how far a pooled clone lags the dataset.
func (d *DynamicEngine) ArmedEpoch() (uint64, bool) { return d.fEpoch, d.fSet }

// BatchThreshold answers the TKAQ for every query, fanning out over
// clones when workers > 1 (≤ 0 selects GOMAXPROCS).
func (d *DynamicEngine) BatchThreshold(queries [][]float64, tau float64, workers int) ([]bool, error) {
	out, _, err := d.BatchThresholdStats(queries, tau, workers)
	return out, err
}

// BatchThresholdStats is BatchThreshold plus summed work statistics.
func (d *DynamicEngine) BatchThresholdStats(queries [][]float64, tau float64, workers int) ([]bool, Stats, error) {
	out := make([]bool, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.ThresholdStats(queries[i], tau)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchApproximate answers the eKAQ for every query, index-aligned.
func (d *DynamicEngine) BatchApproximate(queries [][]float64, eps float64, workers int) ([]float64, error) {
	out, _, err := d.BatchApproximateStats(queries, eps, workers)
	return out, err
}

// BatchApproximateStats is BatchApproximate plus summed work statistics.
func (d *DynamicEngine) BatchApproximateStats(queries [][]float64, eps float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.ApproximateStats(queries[i], eps)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchAggregate computes the exact aggregate for every query.
func (d *DynamicEngine) BatchAggregate(queries [][]float64, workers int) ([]float64, error) {
	out, _, err := d.BatchAggregateStats(queries, workers)
	return out, err
}

// BatchAggregateStats is BatchAggregate plus summed work statistics.
func (d *DynamicEngine) BatchAggregateStats(queries [][]float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := runBatch(d, (*DynamicEngine).Clone, len(queries), workers, func(eng *DynamicEngine, i int) error {
		v, st, err := eng.AggregateStats(queries[i])
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}
