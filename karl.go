// Package karl is a Go implementation of KARL — the Kernel Aggregation
// Rapid Library of Chan, Yiu and U, "KARL: Fast Kernel Aggregation
// Queries" (ICDE 2019).
//
// KARL answers two query types over a weighted point set P:
//
//   - Threshold kernel aggregation (TKAQ): is F_P(q) = Σ w_i·K(q,p_i) > τ?
//   - Approximate kernel aggregation (eKAQ): return F_P(q) within relative
//     error ε.
//
// Both are served by best-first refinement over a hierarchical index
// (kd-tree or ball-tree) using KARL's linear bound functions, which are
// provably tighter than the classical min/max-distance bounds yet cost the
// same O(d) per node. All three weighting schemes of the paper are
// supported transparently: identical weights (kernel density estimation),
// positive weights (1-class SVM) and mixed-sign weights (2-class SVM).
//
// # Quick start
//
//	eng, err := karl.Build(points, karl.Gaussian(2.0))
//	hot, err := eng.Threshold(q, 150.0)   // TKAQ
//	est, err := eng.Approximate(q, 0.1)   // eKAQ, ±10%
//
// Use BuildAuto for the paper's offline index auto-tuning, InSitu for the
// online (in-situ) scenario, NewKDE for Scott's-rule density estimation,
// and TrainOneClassSVM / TrainTwoClassSVM to go from raw training data to
// an accelerated classifier in one call.
package karl

import (
	"errors"
	"fmt"
	"time"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// Kernel identifies a kernel function with its parameters.
type Kernel = kernel.Params

// Gaussian returns the Gaussian kernel exp(−γ·dist(q,p)²).
func Gaussian(gamma float64) Kernel { return kernel.NewGaussian(gamma) }

// Polynomial returns the polynomial kernel (γ·q·p + β)^degree.
func Polynomial(gamma, beta float64, degree int) Kernel {
	return kernel.NewPolynomial(gamma, beta, degree)
}

// Sigmoid returns the sigmoid kernel tanh(γ·q·p + β).
func Sigmoid(gamma, beta float64) Kernel { return kernel.NewSigmoid(gamma, beta) }

// Epanechnikov returns the compact-support kernel max(0, 1 − γ·dist²),
// the mean-square-optimal KDE kernel (an extension beyond the paper's
// three kernels; its piecewise-linear profile makes KARL's bounds exact
// whenever a node's distance interval avoids the support boundary).
func Epanechnikov(gamma float64) Kernel { return kernel.NewEpanechnikov(gamma) }

// Quartic returns the biweight kernel max(0, 1 − γ·dist²)².
func Quartic(gamma float64) Kernel { return kernel.NewQuartic(gamma) }

// IndexKind selects the index structure.
type IndexKind int

const (
	// KDTree indexes with axis-aligned rectangles (the default).
	KDTree IndexKind = iota
	// BallTree indexes with bounding hyperspheres.
	BallTree
	// VPTree indexes with vantage-point annuli — an extension beyond the
	// paper's two index structures, often strong on shell-shaped data.
	VPTree
)

// Method selects the bounding technique.
type Method int

const (
	// MethodKARL uses the paper's linear bound functions (the default).
	MethodKARL Method = iota
	// MethodSOTA uses the prior state-of-the-art bounds, kept for
	// comparison and benchmarking.
	MethodSOTA
)

// Stats reports the work performed by one query.
type Stats = core.Stats

// Option configures Build.
type Option func(*buildConfig)

type buildConfig struct {
	weights       []float64
	kind          IndexKind
	leafCap       int
	method        Method
	maxDepth      int
	batchExec     BatchExecutor
	leafFloat32   bool
	refineWorkers int

	// Coreset construction knobs, consulted only by BuildCoreset,
	// Engine.Sketch and KDE.Compress (coreset.go).
	coresetMethod  CoresetMethod
	coresetSeed    int64
	coresetMinSize int

	// Segmented-engine knobs, consulted only by NewDynamic (dynamic.go).
	// Zero values defer to segment.DefaultPolicy.
	sealSize      int
	fanout        int
	noAutoCompact bool
	coldEps       float64
	coldMin       int
	ttl           time.Duration
	halfLife      time.Duration
	clock         func() int64
}

// defaultBuildConfig is the configuration Build starts from.
func defaultBuildConfig() buildConfig {
	return buildConfig{kind: KDTree, leafCap: 80, method: MethodKARL}
}

// WithWeights attaches per-point weights w_i (any sign). Without it all
// weights are 1 (Type I).
func WithWeights(w []float64) Option { return func(c *buildConfig) { c.weights = w } }

// WithIndex selects the index structure and leaf capacity (default:
// kd-tree with leaf capacity 80).
func WithIndex(kind IndexKind, leafCap int) Option {
	return func(c *buildConfig) { c.kind, c.leafCap = kind, leafCap }
}

// WithMethod selects the bounding method (default MethodKARL).
func WithMethod(m Method) Option { return func(c *buildConfig) { c.method = m } }

// WithLeafFloat32 stores an additional float32 tiled mirror of the
// leaf-ordered points (8 rows × dim tiles) and routes leaf evaluation
// through it. Bounds, node aggregates and certificates stay float64: the
// single-precision rounding of the dot products is folded into the bound
// clamp as an explicit slack, so Threshold/Approximate answers still
// satisfy their ε/τ contracts relative to the exact float64 aggregate.
// Aggregate returns the deterministic tiled sum (within the same slack of
// the float64 value). Costs ~half the point storage again in memory; buys
// a denser, auto-vectorizable leaf scan. Applies to Build, NewDynamic and
// the engines loaded from files written by either.
func WithLeafFloat32() Option { return func(c *buildConfig) { c.leafFloat32 = true } }

// WithRefineWorkers enables intra-query parallel refinement: up to n
// priority-queue entries are expanded concurrently per refinement round
// (n ≤ 1, the default, keeps the sequential loop). Answers are
// deterministic for a fixed n — the certification decision is taken at a
// single merge point — and Aggregate is bitwise-identical across worker
// counts. Useful for long individual queries when GOMAXPROCS > 1; for
// many small queries prefer the Batch* methods, which parallelize across
// queries instead.
func WithRefineWorkers(n int) Option { return func(c *buildConfig) { c.refineWorkers = n } }

// withMaxDepth truncates refinement depth; used by the in-situ tuner.
func withMaxDepth(d int) Option { return func(c *buildConfig) { c.maxDepth = d } }

// WithSealSize sets the memtable capacity of a dynamic engine: inserts
// buffer until this many points, then seal into one immutable segment
// (default 512). Smaller values cut per-query scan cost; larger values
// amortize index builds further. Build ignores it.
func WithSealSize(n int) Option { return func(c *buildConfig) { c.sealSize = n } }

// WithCompactionFanout sets a dynamic engine's geometric tiering factor:
// every fanout same-tier segments merge into one segment of the next tier
// (default 4). Build ignores it.
func WithCompactionFanout(f int) Option { return func(c *buildConfig) { c.fanout = f } }

// WithAutoCompaction enables or disables a dynamic engine's background
// tiered merging (default enabled). With it off, segments accumulate one
// per seal until Compact is called explicitly. Build ignores it.
func WithAutoCompaction(on bool) Option {
	return func(c *buildConfig) { c.noAutoCompact = !on }
}

// WithTTL gives a dynamic engine a sliding time window: every point
// expires ttl after its insertion. Expiry is enforced lazily — expired
// points are physically dropped when their run is sealed or compacted,
// so enforcement cost is amortized into work the engine does anyway and
// queries between compactions may still see recently-expired points.
// Call Compact to force the window exact. Build ignores it.
func WithTTL(ttl time.Duration) Option {
	return func(c *buildConfig) { c.ttl = ttl }
}

// WithDecayHalfLife makes every point's weight decay exponentially with
// age: a point inserted at time t contributes w·2^(−(T−t)/halfLife) at
// query time T. Decay is evaluated lazily — sealed segments carry one
// decay reference instant and queries rescale their aggregates by a
// single per-segment scalar, so no index is ever rebuilt to age its
// weights (decayed sets are a positive-scaled Type II variant of their
// originals). Build ignores it.
func WithDecayHalfLife(halfLife time.Duration) Option {
	return func(c *buildConfig) { c.halfLife = halfLife }
}

// withClock overrides the engine's time source (UnixNano); tests use it
// to drive TTL expiry and decay deterministically.
func withClock(now func() int64) Option {
	return func(c *buildConfig) { c.clock = now }
}

// WithColdCompaction makes a dynamic engine's background compaction
// compress merged segments of at least minPts points into provable-error
// coresets with normalized error bound eps — trading exactness on old
// data for memory, in the spirit of Phillips & Tai's improved KDE
// coresets. Mixed-sign (Type III) segments are kept lossless. Build
// ignores it.
func WithColdCompaction(eps float64, minPts int) Option {
	return func(c *buildConfig) { c.coldEps, c.coldMin = eps, minPts }
}

// Engine answers kernel aggregation queries over one indexed dataset. An
// Engine is not safe for concurrent use; create one per goroutine with
// Clone (clones share the index).
type Engine struct {
	eng  *core.Engine
	tree *index.Tree
	kern Kernel
	// batchExec routes the Batch* methods (dual.go); dualCtr is the
	// batch-executor telemetry shared by every clone.
	batchExec BatchExecutor
	dualCtr   *dualCounters
	// sketch records coreset provenance when the engine indexes a reduced
	// set (BuildCoreset / Sketch); nil for full-set engines.
	sketch *SketchInfo
	// shardProv records partition provenance when the engine indexes one
	// shard of a split dataset (Engine.Shard); nil otherwise.
	shardProv *ShardProvenance
}

// Build indexes the points (rows of equal length) and returns a query
// engine. The point data is copied.
func Build(points [][]float64, kern Kernel, opts ...Option) (*Engine, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty point set")
	}
	return buildMatrix(vec.FromRows(points), kern, opts...)
}

// buildMatrix is the internal entry point used by the adapters that already
// hold a matrix.
func buildMatrix(m *vec.Matrix, kern Kernel, opts ...Option) (*Engine, error) {
	cfg := defaultBuildConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return buildMatrixCfg(m, kern, cfg)
}

// buildMatrixCfg builds from an already-resolved configuration.
func buildMatrixCfg(m *vec.Matrix, kern Kernel, cfg buildConfig) (*Engine, error) {
	if cfg.leafCap < 1 {
		return nil, fmt.Errorf("karl: leaf capacity %d out of range", cfg.leafCap)
	}
	var tree *index.Tree
	var err error
	switch cfg.kind {
	case KDTree:
		tree, err = kdtree.Build(m, cfg.weights, cfg.leafCap)
	case BallTree:
		tree, err = balltree.Build(m, cfg.weights, cfg.leafCap)
	case VPTree:
		tree, err = vptree.Build(m, cfg.weights, cfg.leafCap)
	default:
		return nil, fmt.Errorf("karl: unknown index kind %d", int(cfg.kind))
	}
	if err != nil {
		return nil, err
	}
	if cfg.leafFloat32 {
		tree.BuildLeaf32()
	}
	coreOpts := []core.Option{core.WithMethod(methodOf(cfg.method))}
	if cfg.maxDepth > 0 {
		coreOpts = append(coreOpts, core.WithMaxDepth(cfg.maxDepth))
	}
	if cfg.refineWorkers > 1 {
		coreOpts = append(coreOpts, core.WithWorkers(cfg.refineWorkers))
	}
	eng, err := core.New(tree, kern, coreOpts...)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, tree: tree, kern: kern, batchExec: cfg.batchExec, dualCtr: &dualCounters{}}, nil
}

// engineFromTree wraps an already-built (or reconstructed) index in an
// Engine without rebuilding it — the load path for format v4 files, which
// persist the flat index layout itself.
func engineFromTree(tree *index.Tree, kern Kernel, method Method) (*Engine, error) {
	eng, err := core.New(tree, kern, core.WithMethod(methodOf(method)))
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, tree: tree, kern: kern, dualCtr: &dualCounters{}}, nil
}

func methodOf(m Method) bound.Method {
	if m == MethodSOTA {
		return bound.SOTA
	}
	return bound.KARL
}

// indexKindOf maps the public index kind to the internal one.
func indexKindOf(k IndexKind) index.Kind {
	switch k {
	case BallTree:
		return index.BallTree
	case VPTree:
		return index.VPTree
	default:
		return index.KDTree
	}
}

// Len returns the number of indexed points.
func (e *Engine) Len() int { return e.tree.Len() }

// Dims returns the dataset dimensionality.
func (e *Engine) Dims() int { return e.tree.Dims() }

// Kernel returns the engine's kernel.
func (e *Engine) Kernel() Kernel { return e.kern }

// Clone returns an engine that shares the index but owns its scratch
// state, for use from another goroutine.
func (e *Engine) Clone() *Engine {
	return &Engine{eng: e.eng.Clone(), tree: e.tree, kern: e.kern, sketch: e.sketch, shardProv: e.shardProv,
		batchExec: e.batchExec, dualCtr: e.dualCtr}
}

// Aggregate computes F_P(q) exactly.
func (e *Engine) Aggregate(q []float64) (float64, error) { return e.eng.Exact(q) }

// AggregateStats is Aggregate plus the per-query work statistics. An exact
// aggregation scans every indexed point, so PointsScanned equals Len; the
// bounds equal the returned value except on the float32 leaf path, where
// they widen by the documented rounding slack.
func (e *Engine) AggregateStats(q []float64) (float64, Stats, error) {
	return e.eng.ExactStats(q)
}

// Threshold answers the TKAQ: whether F_P(q) > tau.
func (e *Engine) Threshold(q []float64, tau float64) (bool, error) {
	ok, _, err := e.eng.Threshold(q, tau)
	return ok, err
}

// ThresholdStats is Threshold plus the per-query work statistics.
func (e *Engine) ThresholdStats(q []float64, tau float64) (bool, Stats, error) {
	return e.eng.Threshold(q, tau)
}

// Approximate answers the eKAQ: a value within relative error eps of
// F_P(q).
func (e *Engine) Approximate(q []float64, eps float64) (float64, error) {
	v, _, err := e.eng.Approximate(q, eps)
	return v, err
}

// ApproximateStats is Approximate plus the per-query work statistics.
func (e *Engine) ApproximateStats(q []float64, eps float64) (float64, Stats, error) {
	return e.eng.Approximate(q, eps)
}
