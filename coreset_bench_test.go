// Benchmarks for the coreset sketch layer: construction cost per method,
// the size-vs-ε curve, and the end-to-end serving win — a tier query
// (sketch at ε_s = 0.05 refined with the remaining 0.05 budget) against
// the full index answering the same ε = 0.1 eKAQ.
package karl

import (
	"fmt"
	"testing"
)

const (
	coresetBenchN   = 20000
	coresetBenchDim = 8
	// The tier split of a client eps_norm = 0.1 normalized budget: sketch
	// bound 0.05, refinement remainder 0.05 — the same composition
	// karl-serve uses with -sketch-eps 0.05.
	coresetBenchEps = 0.1
	coresetTierEps  = 0.05
)

// BenchmarkCoresetQuery contrasts the two ways to answer an ε = 0.1
// approximate query: sub-benchmark "full" runs the eKAQ on the complete
// 20k-point index; "sketch" runs it on the ε_s = 0.05 coreset with the
// leftover budget. The ratio of the two ns/op figures is the end-to-end
// tier speedup.
func BenchmarkCoresetQuery(b *testing.B) {
	pts, q := benchCloud(coresetBenchN, coresetBenchDim)
	full, err := Build(pts, Gaussian(20))
	if err != nil {
		b.Fatal(err)
	}
	sketch, err := full.Sketch(coresetTierEps)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("sketch: %d of %d points", sketch.Len(), full.Len())

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := full.Approximate(q, coresetBenchEps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sketch", func(b *testing.B) {
		rem := coresetBenchEps - coresetTierEps
		for i := 0; i < b.N; i++ {
			if _, err := sketch.Approximate(q, rem); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoresetBuild measures one-time construction cost per method at
// ε = 0.1 on the 20k-point benchmark cloud (halving does the real work:
// spatial ordering plus anchored discrepancy rounds with validation).
func BenchmarkCoresetBuild(b *testing.B) {
	pts, _ := benchCloud(coresetBenchN, coresetBenchDim)
	for _, m := range []CoresetMethod{CoresetUniform, CoresetHalving, CoresetSensitivity} {
		b.Run(m.String(), func(b *testing.B) {
			opts := []Option{WithCoresetMethod(m)}
			if m == CoresetSensitivity {
				w := make([]float64, len(pts))
				for i := range w {
					w[i] = 1 + float64(i%7)
				}
				opts = append(opts, WithWeights(w))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildCoreset(pts, Gaussian(20), coresetBenchEps, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoresetSizeCurve builds sketches across ε and reports the
// resulting cardinality as the points_per_sketch metric — the measured
// size-vs-ε curve (halving saturates at its validation floor on this
// clusterable cloud; uniform follows the 1/ε² Hoeffding bound).
func BenchmarkCoresetSizeCurve(b *testing.B) {
	pts, _ := benchCloud(coresetBenchN, coresetBenchDim)
	for _, m := range []CoresetMethod{CoresetUniform, CoresetHalving} {
		for _, eps := range []float64{0.05, 0.1, 0.2, 0.3} {
			b.Run(fmt.Sprintf("%s/eps=%.2f", m, eps), func(b *testing.B) {
				var size int
				for i := 0; i < b.N; i++ {
					eng, err := BuildCoreset(pts, Gaussian(20), eps, WithCoresetMethod(m))
					if err != nil {
						b.Fatal(err)
					}
					size = eng.Len()
				}
				b.ReportMetric(float64(size), "points_per_sketch")
			})
		}
	}
}
