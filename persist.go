package karl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"karl/internal/index"
	"karl/internal/vec"
)

// persistVersion guards the on-disk format; bump on incompatible change.
const persistVersion = 1

// enginePayload is the gob wire format for an Engine: the data and build
// parameters, not the index itself — construction is deterministic, so the
// tree is rebuilt on load. This keeps files compact and the format stable
// across internal index changes.
type enginePayload struct {
	Version int
	Dims    int
	Points  []float64 // row-major Dims-wide rows
	Weights []float64 // nil for unit weights
	Kernel  Kernel
	Kind    IndexKind
	LeafCap int
	Method  Method
}

// svmPayload wraps an engine payload with the SVM decision threshold.
type svmPayload struct {
	Engine enginePayload
	Rho    float64
}

// payload flattens an engine for serialization.
func (e *Engine) payload() enginePayload {
	tree := e.tree
	kind := KDTree
	switch tree.Kind {
	case index.BallTree:
		kind = BallTree
	case index.VPTree:
		kind = VPTree
	}
	method := MethodKARL
	if e.eng.Method() == methodOf(MethodSOTA) {
		method = MethodSOTA
	}
	pts := make([]float64, len(tree.Points.Data))
	copy(pts, tree.Points.Data)
	var w []float64
	if tree.Weights != nil {
		w = make([]float64, len(tree.Weights))
		copy(w, tree.Weights)
	}
	return enginePayload{
		Version: persistVersion,
		Dims:    tree.Dims(),
		Points:  pts,
		Weights: w,
		Kernel:  e.kern,
		Kind:    kind,
		LeafCap: tree.LeafCap,
		Method:  method,
	}
}

// restore rebuilds an engine from a payload.
func (p enginePayload) restore() (*Engine, error) {
	if p.Version != persistVersion {
		return nil, fmt.Errorf("karl: unsupported engine format version %d", p.Version)
	}
	if p.Dims < 1 || len(p.Points) == 0 || len(p.Points)%p.Dims != 0 {
		return nil, errors.New("karl: corrupt engine payload")
	}
	m := &vec.Matrix{Data: p.Points, Rows: len(p.Points) / p.Dims, Cols: p.Dims}
	opts := []Option{WithIndex(p.Kind, p.LeafCap), WithMethod(p.Method)}
	if p.Weights != nil {
		if len(p.Weights) != m.Rows {
			return nil, errors.New("karl: corrupt engine payload (weights)")
		}
		opts = append(opts, WithWeights(p.Weights))
	}
	return buildMatrix(m, p.Kernel, opts...)
}

// WriteTo serializes the engine (points, weights, kernel and index
// configuration) to w. The index is rebuilt deterministically on load.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(e.payload()); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadEngine deserializes an engine written by Engine.WriteTo.
func ReadEngine(r io.Reader) (*Engine, error) {
	var p enginePayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return p.restore()
}

// WriteTo serializes a trained SVM (support vectors, weights, kernel, ρ).
func (s *SVM) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	payload := svmPayload{Engine: s.eng.payload(), Rho: s.Rho}
	if err := gob.NewEncoder(cw).Encode(payload); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSVM deserializes an SVM written by SVM.WriteTo.
func ReadSVM(r io.Reader) (*SVM, error) {
	var p svmPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	eng, err := p.Engine.restore()
	if err != nil {
		return nil, err
	}
	return &SVM{eng: eng, Rho: p.Rho, SupportVectors: eng.Len()}, nil
}

// countWriter tracks bytes written for the io.WriterTo-style signatures.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
