package karl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"karl/internal/index"
	"karl/internal/segment"
	"karl/internal/vec"
)

// persistVersion guards the on-disk format; bump on incompatible change.
// Version history:
//
//	1 — points, weights, kernel, index configuration.
//	2 — adds optional coreset sketch provenance (source size, total
//	    weight, ε, construction). Version-1 files still load (the
//	    provenance field is simply absent).
//	3 — sketch provenance additionally records the ε bound's basis and
//	    failure probability δ (SketchInfo.Basis / Delta). Version-2 files
//	    still load with SketchBasisUnknown and δ = 0.
//	4 — persists the built flat index itself: points and weights in leaf
//	    order, the original-row mapping, the preorder node arrays and the
//	    flattened bounding volumes. Loading reconstructs the exact tree
//	    instead of rebuilding it, so answers are bitwise identical across
//	    a round trip (a rebuilt vp-tree could not even recover its vantage
//	    points from reordered storage). Versions 1–3 still load by
//	    rebuilding from the stored points.
//	5 — adds the dynamic (segmented) engine stream: a manifest of
//	    per-segment v4-style index payloads plus the raw memtable rows and
//	    the LSM policy (DynamicEngine.WriteTo / ReadDynamic). Static
//	    single-engine files keep the exact v4 layout; versions 1–4 still
//	    load. Since the cluster layer, static payloads may additionally
//	    carry optional shard provenance (Engine.Shard) — gob leaves the
//	    field absent on old files and ignores it in old readers, so the
//	    version is unchanged.
//	6 — the dynamic stream gains mutability state: per-row sequence
//	    numbers and insert timestamps (per segment and for the memtable),
//	    pending delete tombstones, the point-id counter, and the TTL /
//	    decay configuration with each segment's decay reference instant.
//	    Static payloads are unchanged. v5 dynamic files still load with
//	    synthesized consecutive sequence numbers (their points become
//	    deletable); v1–v4 static files load as before.
//	7 — records the WithLeafFloat32 setting: static payloads (and each
//	    segment payload) carry a LeafFloat32 flag, and the dynamic stream
//	    additionally records it as build configuration for future seals.
//	    The float32 tile block itself is derived data — loading rebuilds
//	    it deterministically from the stored float64 points, so answers
//	    are identical to the saved engine's. v1–v6 files load with the
//	    flag off.
const persistVersion = 7

// oldestReadableVersion is the earliest format this build still decodes.
const oldestReadableVersion = 1

// sketchProvenance is the wire form of SketchInfo: a saved coreset engine
// records what it was reduced from and the error bound it carries.
type sketchProvenance struct {
	SourceLen    int
	SourceWeight float64
	Len          int
	Eps          float64
	Delta        float64
	Basis        string
	Method       int
}

// enginePayload is the gob wire format for an Engine. Since version 4 it
// carries the flat index layout itself (leaf-ordered points plus the node
// arrays below), so loading is a reconstruction, not a rebuild. Files from
// versions 1–3 carry only the data and build parameters; for those the node
// fields decode as nil and the tree is rebuilt deterministically.
type enginePayload struct {
	Version int
	Dims    int
	Points  []float64 // row-major Dims-wide rows; leaf-ordered since v4
	Weights []float64 // nil for unit weights; leaf-ordered since v4
	Kernel  Kernel
	Kind    IndexKind
	LeafCap int
	Method  Method
	Sketch  *sketchProvenance // nil for full-set engines
	Shard   *shardWire        // nil for unpartitioned engines

	// LeafFloat32 (v7+) records that the engine was built with
	// WithLeafFloat32. The tile block is derived data: loading rebuilds it
	// from the float64 points, so old readers simply ignore the flag.
	LeafFloat32 bool

	// Flat index layout (v4+): storage row -> original row, the DFS-preorder
	// node arrays, and every node's bounding-volume parameters packed by
	// index.FlattenVolumes. Norms and aggregates are derived data and are
	// recomputed on load.
	PointID   []int32
	NodeStart []int32
	NodeEnd   []int32
	NodeRight []int32
	NodeDepth []int32
	VolData   []float64
}

// shardWire is the wire form of ShardProvenance: a saved shard engine
// records which slice of which partition it indexes.
type shardWire struct {
	Index     int
	Of        int
	Partition int
	SourceLen int
}

// svmPayload wraps an engine payload with the SVM decision threshold.
type svmPayload struct {
	Engine enginePayload
	Rho    float64
}

// payload flattens an engine for serialization.
func (e *Engine) payload() enginePayload {
	method := MethodKARL
	if e.eng.Method() == methodOf(MethodSOTA) {
		method = MethodSOTA
	}
	p := treePayload(e.tree, e.kern, method)
	if e.sketch != nil {
		p.Sketch = &sketchProvenance{
			SourceLen:    e.sketch.SourceLen,
			SourceWeight: e.sketch.SourceWeight,
			Len:          e.sketch.Len,
			Eps:          e.sketch.Eps,
			Delta:        e.sketch.Delta,
			Basis:        string(e.sketch.Basis),
			Method:       int(e.sketch.Method),
		}
	}
	if e.shardProv != nil {
		p.Shard = &shardWire{
			Index:     e.shardProv.Index,
			Of:        e.shardProv.Of,
			Partition: int(e.shardProv.Partition),
			SourceLen: e.shardProv.SourceLen,
		}
	}
	return p
}

// treePayload flattens one built index (plus the kernel and bounding
// method it is queried with) into the v4 wire layout — the unit both the
// static engine format and every segment of the v5 dynamic format reuse.
func treePayload(tree *index.Tree, kern Kernel, method Method) enginePayload {
	kind := publicIndexKind(tree.Kind)
	pts := make([]float64, len(tree.Points.Data))
	copy(pts, tree.Points.Data)
	var w []float64
	if tree.Weights != nil {
		w = make([]float64, len(tree.Weights))
		copy(w, tree.Weights)
	}
	nn := tree.NodeCount()
	nodeStart := make([]int32, nn)
	nodeEnd := make([]int32, nn)
	nodeRight := make([]int32, nn)
	nodeDepth := make([]int32, nn)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		nodeStart[i], nodeEnd[i], nodeRight[i], nodeDepth[i] = n.Start, n.End, n.Right, n.Depth
	}
	pointID := make([]int32, len(tree.PointID))
	copy(pointID, tree.PointID)
	return enginePayload{
		Version:     persistVersion,
		Dims:        tree.Dims(),
		Points:      pts,
		Weights:     w,
		Kernel:      kern,
		Kind:        kind,
		LeafCap:     tree.LeafCap,
		Method:      method,
		LeafFloat32: tree.Leaf32 != nil,
		PointID:     pointID,
		NodeStart:   nodeStart,
		NodeEnd:     nodeEnd,
		NodeRight:   nodeRight,
		NodeDepth:   nodeDepth,
		VolData:     tree.FlattenVolumes(),
	}
}

// restoreTree validates a v4+ payload and reconstructs its flat index
// exactly.
func (p enginePayload) restoreTree() (*index.Tree, error) {
	if p.Dims < 1 || len(p.Points) == 0 || len(p.Points)%p.Dims != 0 {
		return nil, errors.New("karl: corrupt engine payload")
	}
	m := &vec.Matrix{Data: p.Points, Rows: len(p.Points) / p.Dims, Cols: p.Dims}
	if p.Weights != nil && len(p.Weights) != m.Rows {
		return nil, errors.New("karl: corrupt engine payload (weights)")
	}
	tree, err := index.Reconstruct(indexKindOf(p.Kind), m, p.Weights, p.PointID,
		p.NodeStart, p.NodeEnd, p.NodeRight, p.NodeDepth, p.VolData, p.LeafCap)
	if err != nil {
		return nil, fmt.Errorf("karl: corrupt engine payload: %w", err)
	}
	if p.LeafFloat32 {
		tree.BuildLeaf32()
	}
	return tree, nil
}

// restore rebuilds an engine from a payload.
func (p enginePayload) restore() (*Engine, error) {
	if p.Version < oldestReadableVersion || p.Version > persistVersion {
		return nil, fmt.Errorf("karl: unsupported engine format version %d (this build reads versions %d through %d)",
			p.Version, oldestReadableVersion, persistVersion)
	}
	if p.Version >= 5 && len(p.Points) == 0 {
		return nil, errors.New("karl: stream has no static engine payload (a dynamic engine file? use ReadDynamic)")
	}
	var eng *Engine
	var err error
	if p.Version >= 4 {
		// v4+: reconstruct the persisted flat index exactly.
		tree, rerr := p.restoreTree()
		if rerr != nil {
			return nil, rerr
		}
		eng, err = engineFromTree(tree, p.Kernel, p.Method)
	} else {
		// v1–v3 stored only the data and build parameters: rebuild.
		if p.Dims < 1 || len(p.Points) == 0 || len(p.Points)%p.Dims != 0 {
			return nil, errors.New("karl: corrupt engine payload")
		}
		m := &vec.Matrix{Data: p.Points, Rows: len(p.Points) / p.Dims, Cols: p.Dims}
		if p.Weights != nil && len(p.Weights) != m.Rows {
			return nil, errors.New("karl: corrupt engine payload (weights)")
		}
		opts := []Option{WithIndex(p.Kind, p.LeafCap), WithMethod(p.Method)}
		if p.Weights != nil {
			opts = append(opts, WithWeights(p.Weights))
		}
		eng, err = buildMatrix(m, p.Kernel, opts...)
	}
	if err != nil {
		return nil, err
	}
	if p.Sketch != nil {
		if p.Sketch.Len != eng.Len() || p.Sketch.SourceLen < eng.Len() {
			return nil, errors.New("karl: corrupt engine payload (sketch provenance)")
		}
		eng.sketch = &SketchInfo{
			SourceLen:    p.Sketch.SourceLen,
			SourceWeight: p.Sketch.SourceWeight,
			Len:          p.Sketch.Len,
			Eps:          p.Sketch.Eps,
			Delta:        p.Sketch.Delta,
			Basis:        SketchBasis(p.Sketch.Basis),
			Method:       CoresetMethod(p.Sketch.Method),
		}
	}
	if p.Shard != nil {
		if p.Shard.Of < 1 || p.Shard.Index < 0 || p.Shard.Index >= p.Shard.Of || p.Shard.SourceLen < eng.Len() {
			return nil, errors.New("karl: corrupt engine payload (shard provenance)")
		}
		eng.shardProv = &ShardProvenance{
			Index:     p.Shard.Index,
			Of:        p.Shard.Of,
			Partition: PartitionKind(p.Shard.Partition),
			SourceLen: p.Shard.SourceLen,
		}
	}
	return eng, nil
}

// WriteTo serializes the engine (points, weights, kernel and index
// configuration) to w. The index is rebuilt deterministically on load.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(e.payload()); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadEngine deserializes an engine written by Engine.WriteTo.
func ReadEngine(r io.Reader) (*Engine, error) {
	var p enginePayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return p.restore()
}

// WriteTo serializes a trained SVM (support vectors, weights, kernel, ρ).
func (s *SVM) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	payload := svmPayload{Engine: s.eng.payload(), Rho: s.Rho}
	if err := gob.NewEncoder(cw).Encode(payload); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSVM deserializes an SVM written by SVM.WriteTo.
func ReadSVM(r io.Reader) (*SVM, error) {
	var p svmPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	eng, err := p.Engine.restore()
	if err != nil {
		return nil, err
	}
	return &SVM{eng: eng, Rho: p.Rho, SupportVectors: eng.Len()}, nil
}

// segmentPayload is the wire form of one manifest segment: a v4-style
// flat-index payload plus the segment's identity and coreset provenance,
// and (v6) its per-row sequence numbers and insert timestamps in
// insertion order with the decay reference instant.
type segmentPayload struct {
	Engine  enginePayload
	ID      uint64
	Coreset bool
	Eps     float64
	Seqs    []uint64 // v6+; nil for coresets and legacy loads
	Times   []int64  // v6+; nil on untimed engines
	TimeRef int64    // v6+
}

// dynamicPayload is the gob wire format for a DynamicEngine (format v5):
// the LSM policy, the manifest as per-segment v4 payloads, and the raw
// memtable rows in insertion order.
type dynamicPayload struct {
	Version     int
	Dims        int
	Kernel      Kernel
	Kind        IndexKind
	LeafCap     int
	Method      Method
	SealSize    int
	Fanout      int
	AutoCompact bool
	ColdEps     float64
	ColdMin     int
	ColdSeed    int64
	Epoch       uint64
	NextID      uint64
	Seals       int
	Compactions int
	Segments    []segmentPayload
	MemPoints   []float64 // row-major Dims-wide memtable rows
	MemWeights  []float64 // parallel to MemPoints rows

	// Mutability state (v6+). Tombstones are stored sorted by sequence
	// number: TombPts holds their coordinates as Dims-wide rows parallel
	// to TombSeqs/TombW/TombRef.
	TTL      int64 // nanoseconds; 0 = no expiry
	HalfLife int64 // nanoseconds; 0 = no decay
	NextSeq  uint64
	Deletes  int
	MemSeqs  []uint64 // parallel to MemPoints rows
	MemTimes []int64  // parallel to MemPoints rows; nil on untimed engines
	TombSeqs []uint64
	TombW    []float64
	TombRef  []int64
	TombPts  []float64

	// LeafFloat32 (v7+): the engine was configured with WithLeafFloat32,
	// so future seals build float32 tile blocks too. Each segment payload
	// carries its own flag for reconstruction.
	LeafFloat32 bool
}

// WriteTo serializes the dynamic engine — manifest, memtable and policy —
// so a reload resumes with the identical segment layout and therefore
// bitwise-identical answers. It waits for an in-flight seal or full
// compaction to finish, then snapshots under the lock; a concurrent
// background merge does not block the write (the pre-merge manifest is a
// consistent snapshot).
func (d *DynamicEngine) WriteTo(w io.Writer) (int64, error) {
	sh := d.sh
	sh.mu.Lock()
	for sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	kind := publicIndexKind(sh.bcfg.Kind)
	method := MethodKARL
	if sh.method == methodOf(MethodSOTA) {
		method = MethodSOTA
	}
	p := dynamicPayload{
		Version:     persistVersion,
		Dims:        sh.dims,
		Kernel:      sh.kern,
		Kind:        kind,
		LeafCap:     sh.bcfg.LeafCap,
		Method:      method,
		SealSize:    sh.policy.SealSize,
		Fanout:      sh.policy.Fanout,
		AutoCompact: sh.autoCompact,
		ColdEps:     sh.policy.ColdEps,
		ColdMin:     sh.policy.ColdMin,
		ColdSeed:    sh.coldSeed,
		Epoch:       sh.man.Epoch,
		NextID:      sh.nextID,
		Seals:       sh.seals,
		Compactions: sh.compactions,
		TTL:         sh.ttl,
		HalfLife:    int64(sh.halfLife),
		NextSeq:     sh.nextSeq,
		Deletes:     sh.deletes,
		LeafFloat32: sh.bcfg.Leaf32,
	}
	p.Segments = make([]segmentPayload, len(sh.man.Segs))
	for i, s := range sh.man.Segs {
		p.Segments[i] = segmentPayload{
			Engine:  treePayload(s.Tree, sh.kern, method),
			ID:      s.ID,
			Coreset: s.Coreset,
			Eps:     s.Eps,
			Seqs:    append([]uint64(nil), s.Seqs...),
			Times:   append([]int64(nil), s.Times...),
			TimeRef: s.TimeRef,
		}
	}
	if n := sh.mem.len(); n > 0 {
		p.MemPoints = make([]float64, n*sh.dims)
		copy(p.MemPoints, sh.mem.m.Data[:n*sh.dims])
		p.MemWeights = make([]float64, n)
		copy(p.MemWeights, sh.mem.w[:n])
		p.MemSeqs = make([]uint64, n)
		copy(p.MemSeqs, sh.mem.seq[:n])
		if sh.mem.t != nil {
			p.MemTimes = make([]int64, n)
			copy(p.MemTimes, sh.mem.t[:n])
		}
	}
	if len(sh.tombs) > 0 {
		p.TombSeqs = make([]uint64, 0, len(sh.tombs))
		for seq := range sh.tombs {
			p.TombSeqs = append(p.TombSeqs, seq)
		}
		sort.Slice(p.TombSeqs, func(i, j int) bool { return p.TombSeqs[i] < p.TombSeqs[j] })
		p.TombW = make([]float64, len(p.TombSeqs))
		p.TombRef = make([]int64, len(p.TombSeqs))
		p.TombPts = make([]float64, 0, len(p.TombSeqs)*sh.dims)
		for i, seq := range p.TombSeqs {
			tb := sh.tombs[seq]
			p.TombW[i] = tb.w
			p.TombRef[i] = tb.ref
			p.TombPts = append(p.TombPts, tb.p...)
		}
	}
	sh.mu.Unlock()
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(p); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadDynamic deserializes a dynamic engine written by
// DynamicEngine.WriteTo. The manifest is reconstructed segment by segment
// (no rebuilding), so answers are bitwise identical across the round trip.
func ReadDynamic(r io.Reader) (*DynamicEngine, error) {
	var p dynamicPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	if p.Version < 5 || p.Version > persistVersion {
		return nil, fmt.Errorf("karl: unsupported dynamic engine format version %d (this build reads version 5 through %d; static engine files load with ReadEngine)",
			p.Version, persistVersion)
	}
	if p.SealSize == 0 && len(p.Segments) == 0 {
		// A static v5 engine stream decodes into these fields as zeroes.
		return nil, errors.New("karl: stream has no dynamic engine payload (a static engine file? use ReadEngine)")
	}
	policy := segment.Policy{
		SealSize: p.SealSize, Fanout: p.Fanout,
		ColdEps: p.ColdEps, ColdMin: p.ColdMin,
	}
	if err := policy.Validate(); err != nil {
		return nil, fmt.Errorf("karl: corrupt dynamic engine payload: %w", err)
	}
	if err := p.Kernel.Validate(); err != nil {
		return nil, fmt.Errorf("karl: corrupt dynamic engine payload: %w", err)
	}
	if p.TTL < 0 || p.HalfLife < 0 {
		return nil, errors.New("karl: corrupt dynamic engine payload (negative ttl or half-life)")
	}
	memN := 0
	if len(p.MemPoints) > 0 {
		if p.Dims < 1 || len(p.MemPoints)%p.Dims != 0 {
			return nil, errors.New("karl: corrupt dynamic engine payload (memtable)")
		}
		memN = len(p.MemPoints) / p.Dims
		if len(p.MemWeights) != memN {
			return nil, errors.New("karl: corrupt dynamic engine payload (memtable weights)")
		}
		if p.Version >= 6 && len(p.MemSeqs) != memN {
			return nil, errors.New("karl: corrupt dynamic engine payload (memtable seqs)")
		}
		if p.MemTimes != nil && len(p.MemTimes) != memN {
			return nil, errors.New("karl: corrupt dynamic engine payload (memtable times)")
		}
	}
	timed := p.TTL > 0 || p.HalfLife > 0
	if timed && memN > 0 && p.MemTimes == nil {
		return nil, errors.New("karl: corrupt dynamic engine payload (timed engine without memtable times)")
	}
	sh := &dynShared{
		kern:        p.Kernel,
		method:      methodOf(p.Method),
		bcfg:        segment.BuildConfig{Kind: indexKindOf(p.Kind), LeafCap: p.LeafCap, Leaf32: p.LeafFloat32},
		policy:      policy,
		coldSeed:    p.ColdSeed,
		autoCompact: p.AutoCompact,
		ttl:         p.TTL,
		halfLife:    float64(p.HalfLife),
		now:         func() int64 { return time.Now().UnixNano() },
		dims:        p.Dims,
		nextID:      p.NextID,
		nextSeq:     p.NextSeq,
		deletes:     p.Deletes,
		delLogBase:  uint64(p.Deletes),
		seals:       p.Seals,
		compactions: p.Compactions,
		tombs:       map[uint64]tombstone{},
	}
	sh.cond = sync.NewCond(&sh.mu)
	man := &segment.Manifest{Epoch: p.Epoch, Segs: make([]*segment.Segment, len(p.Segments))}
	// v5 files predate sequence numbers: synthesize consecutive ids over
	// the stored stream (segments oldest-first, memtable last), making the
	// loaded points deletable.
	synth := uint64(0)
	for i, sp := range p.Segments {
		tree, err := sp.Engine.restoreTree()
		if err != nil {
			return nil, fmt.Errorf("karl: segment %d: %w", i, err)
		}
		if p.Dims != 0 && tree.Dims() != p.Dims {
			return nil, fmt.Errorf("karl: corrupt dynamic engine payload: segment %d has %d dims, engine has %d", i, tree.Dims(), p.Dims)
		}
		seqs, times := sp.Seqs, sp.Times
		if p.Version < 6 && !sp.Coreset {
			seqs = make([]uint64, tree.Len())
			for j := range seqs {
				synth++
				seqs[j] = synth
			}
			times = nil
		}
		if seqs != nil {
			if len(seqs) != tree.Len() {
				return nil, fmt.Errorf("karl: corrupt dynamic engine payload: segment %d has %d seqs for %d points", i, len(seqs), tree.Len())
			}
			for j := 1; j < len(seqs); j++ {
				if seqs[j] <= seqs[j-1] {
					return nil, fmt.Errorf("karl: corrupt dynamic engine payload: segment %d seqs not ascending", i)
				}
			}
		}
		if times != nil && len(times) != tree.Len() {
			return nil, fmt.Errorf("karl: corrupt dynamic engine payload: segment %d has %d times for %d points", i, len(times), tree.Len())
		}
		if times != nil && seqs == nil {
			return nil, fmt.Errorf("karl: corrupt dynamic engine payload: segment %d has times without seqs", i)
		}
		man.Segs[i] = segment.New(tree, sp.ID, sp.Coreset, sp.Eps, seqs, times, sp.TimeRef)
	}
	sh.man = man
	if memN > 0 {
		rows := sh.policy.SealSize
		if memN > rows {
			rows = memN
		}
		sh.mem = newMemtable(rows, p.Dims, timed)
		copy(sh.mem.m.Data, p.MemPoints)
		copy(sh.mem.w, p.MemWeights)
		if p.Version >= 6 {
			copy(sh.mem.seq, p.MemSeqs)
		} else {
			for j := 0; j < memN; j++ {
				synth++
				sh.mem.seq[j] = synth
			}
		}
		if sh.mem.t != nil && p.MemTimes != nil {
			copy(sh.mem.t, p.MemTimes)
		}
		for j := 1; j < memN; j++ {
			if sh.mem.seq[j] <= sh.mem.seq[j-1] {
				return nil, errors.New("karl: corrupt dynamic engine payload (memtable seqs not ascending)")
			}
		}
		sh.mem.n = memN
	}
	if p.Version < 6 {
		sh.nextSeq = synth + 1
	}
	if sh.nextSeq == 0 {
		sh.nextSeq = 1
	}
	// Tombstones (v6+): parallel arrays sorted by seq.
	nt := len(p.TombSeqs)
	if len(p.TombW) != nt || len(p.TombRef) != nt || len(p.TombPts) != nt*p.Dims {
		return nil, errors.New("karl: corrupt dynamic engine payload (tombstones)")
	}
	for i := 0; i < nt; i++ {
		seq := p.TombSeqs[i]
		if seq == 0 || seq >= sh.nextSeq {
			return nil, errors.New("karl: corrupt dynamic engine payload (tombstone seq out of range)")
		}
		if _, dup := sh.tombs[seq]; dup {
			return nil, errors.New("karl: corrupt dynamic engine payload (duplicate tombstone)")
		}
		pt := append([]float64(nil), p.TombPts[i*p.Dims:(i+1)*p.Dims]...)
		sh.tombs[seq] = tombstone{w: p.TombW[i], ref: p.TombRef[i], p: pt}
	}
	return newDynamicView(sh)
}

// countWriter tracks bytes written for the io.WriterTo-style signatures.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
