package karl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"karl/internal/index"
	"karl/internal/vec"
)

// persistVersion guards the on-disk format; bump on incompatible change.
// Version history:
//
//	1 — points, weights, kernel, index configuration.
//	2 — adds optional coreset sketch provenance (source size, total
//	    weight, ε, construction). Version-1 files still load (the
//	    provenance field is simply absent).
//	3 — sketch provenance additionally records the ε bound's basis and
//	    failure probability δ (SketchInfo.Basis / Delta). Version-2 files
//	    still load with SketchBasisUnknown and δ = 0.
//	4 — persists the built flat index itself: points and weights in leaf
//	    order, the original-row mapping, the preorder node arrays and the
//	    flattened bounding volumes. Loading reconstructs the exact tree
//	    instead of rebuilding it, so answers are bitwise identical across
//	    a round trip (a rebuilt vp-tree could not even recover its vantage
//	    points from reordered storage). Versions 1–3 still load by
//	    rebuilding from the stored points.
const persistVersion = 4

// oldestReadableVersion is the earliest format this build still decodes.
const oldestReadableVersion = 1

// sketchProvenance is the wire form of SketchInfo: a saved coreset engine
// records what it was reduced from and the error bound it carries.
type sketchProvenance struct {
	SourceLen    int
	SourceWeight float64
	Len          int
	Eps          float64
	Delta        float64
	Basis        string
	Method       int
}

// enginePayload is the gob wire format for an Engine. Since version 4 it
// carries the flat index layout itself (leaf-ordered points plus the node
// arrays below), so loading is a reconstruction, not a rebuild. Files from
// versions 1–3 carry only the data and build parameters; for those the node
// fields decode as nil and the tree is rebuilt deterministically.
type enginePayload struct {
	Version int
	Dims    int
	Points  []float64 // row-major Dims-wide rows; leaf-ordered since v4
	Weights []float64 // nil for unit weights; leaf-ordered since v4
	Kernel  Kernel
	Kind    IndexKind
	LeafCap int
	Method  Method
	Sketch  *sketchProvenance // nil for full-set engines

	// Flat index layout (v4+): storage row -> original row, the DFS-preorder
	// node arrays, and every node's bounding-volume parameters packed by
	// index.FlattenVolumes. Norms and aggregates are derived data and are
	// recomputed on load.
	PointID   []int32
	NodeStart []int32
	NodeEnd   []int32
	NodeRight []int32
	NodeDepth []int32
	VolData   []float64
}

// svmPayload wraps an engine payload with the SVM decision threshold.
type svmPayload struct {
	Engine enginePayload
	Rho    float64
}

// payload flattens an engine for serialization.
func (e *Engine) payload() enginePayload {
	tree := e.tree
	kind := KDTree
	switch tree.Kind {
	case index.BallTree:
		kind = BallTree
	case index.VPTree:
		kind = VPTree
	}
	method := MethodKARL
	if e.eng.Method() == methodOf(MethodSOTA) {
		method = MethodSOTA
	}
	pts := make([]float64, len(tree.Points.Data))
	copy(pts, tree.Points.Data)
	var w []float64
	if tree.Weights != nil {
		w = make([]float64, len(tree.Weights))
		copy(w, tree.Weights)
	}
	var sk *sketchProvenance
	if e.sketch != nil {
		sk = &sketchProvenance{
			SourceLen:    e.sketch.SourceLen,
			SourceWeight: e.sketch.SourceWeight,
			Len:          e.sketch.Len,
			Eps:          e.sketch.Eps,
			Delta:        e.sketch.Delta,
			Basis:        string(e.sketch.Basis),
			Method:       int(e.sketch.Method),
		}
	}
	nn := tree.NodeCount()
	nodeStart := make([]int32, nn)
	nodeEnd := make([]int32, nn)
	nodeRight := make([]int32, nn)
	nodeDepth := make([]int32, nn)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		nodeStart[i], nodeEnd[i], nodeRight[i], nodeDepth[i] = n.Start, n.End, n.Right, n.Depth
	}
	pointID := make([]int32, len(tree.PointID))
	copy(pointID, tree.PointID)
	return enginePayload{
		Version:   persistVersion,
		Dims:      tree.Dims(),
		Points:    pts,
		Weights:   w,
		Kernel:    e.kern,
		Kind:      kind,
		LeafCap:   tree.LeafCap,
		Method:    method,
		Sketch:    sk,
		PointID:   pointID,
		NodeStart: nodeStart,
		NodeEnd:   nodeEnd,
		NodeRight: nodeRight,
		NodeDepth: nodeDepth,
		VolData:   tree.FlattenVolumes(),
	}
}

// restore rebuilds an engine from a payload.
func (p enginePayload) restore() (*Engine, error) {
	if p.Version < oldestReadableVersion || p.Version > persistVersion {
		return nil, fmt.Errorf("karl: unsupported engine format version %d (this build reads versions %d through %d)",
			p.Version, oldestReadableVersion, persistVersion)
	}
	if p.Dims < 1 || len(p.Points) == 0 || len(p.Points)%p.Dims != 0 {
		return nil, errors.New("karl: corrupt engine payload")
	}
	m := &vec.Matrix{Data: p.Points, Rows: len(p.Points) / p.Dims, Cols: p.Dims}
	if p.Weights != nil && len(p.Weights) != m.Rows {
		return nil, errors.New("karl: corrupt engine payload (weights)")
	}
	var eng *Engine
	var err error
	if p.Version >= 4 {
		// v4+: reconstruct the persisted flat index exactly.
		tree, rerr := index.Reconstruct(indexKindOf(p.Kind), m, p.Weights, p.PointID,
			p.NodeStart, p.NodeEnd, p.NodeRight, p.NodeDepth, p.VolData, p.LeafCap)
		if rerr != nil {
			return nil, fmt.Errorf("karl: corrupt engine payload: %w", rerr)
		}
		eng, err = engineFromTree(tree, p.Kernel, p.Method)
	} else {
		// v1–v3 stored only the data and build parameters: rebuild.
		opts := []Option{WithIndex(p.Kind, p.LeafCap), WithMethod(p.Method)}
		if p.Weights != nil {
			opts = append(opts, WithWeights(p.Weights))
		}
		eng, err = buildMatrix(m, p.Kernel, opts...)
	}
	if err != nil {
		return nil, err
	}
	if p.Sketch != nil {
		if p.Sketch.Len != m.Rows || p.Sketch.SourceLen < m.Rows {
			return nil, errors.New("karl: corrupt engine payload (sketch provenance)")
		}
		eng.sketch = &SketchInfo{
			SourceLen:    p.Sketch.SourceLen,
			SourceWeight: p.Sketch.SourceWeight,
			Len:          p.Sketch.Len,
			Eps:          p.Sketch.Eps,
			Delta:        p.Sketch.Delta,
			Basis:        SketchBasis(p.Sketch.Basis),
			Method:       CoresetMethod(p.Sketch.Method),
		}
	}
	return eng, nil
}

// WriteTo serializes the engine (points, weights, kernel and index
// configuration) to w. The index is rebuilt deterministically on load.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(e.payload()); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadEngine deserializes an engine written by Engine.WriteTo.
func ReadEngine(r io.Reader) (*Engine, error) {
	var p enginePayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return p.restore()
}

// WriteTo serializes a trained SVM (support vectors, weights, kernel, ρ).
func (s *SVM) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	payload := svmPayload{Engine: s.eng.payload(), Rho: s.Rho}
	if err := gob.NewEncoder(cw).Encode(payload); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSVM deserializes an SVM written by SVM.WriteTo.
func ReadSVM(r io.Reader) (*SVM, error) {
	var p svmPayload
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	eng, err := p.Engine.restore()
	if err != nil {
		return nil, err
	}
	return &SVM{eng: eng, Rho: p.Rho, SupportVectors: eng.Len()}, nil
}

// countWriter tracks bytes written for the io.WriterTo-style signatures.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
