package karl

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := cloud(rng, 800, 3)
	eng, err := Build(pts, Gaussian(4))
	if err != nil {
		t.Fatal(err)
	}
	queries := cloud(rng, 50, 3)
	exact, err := eng.BatchAggregate(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := eng.BatchAggregate(queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != exact[i] {
				t.Fatalf("workers=%d query %d: %v vs %v", workers, i, got[i], exact[i])
			}
		}
		th, err := eng.BatchThreshold(queries, exact[0], workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range th {
			if want := exact[i] > exact[0]; th[i] != want && math.Abs(exact[i]-exact[0]) > 1e-9 {
				t.Fatalf("workers=%d query %d: threshold %v want %v", workers, i, th[i], want)
			}
		}
		ap, err := eng.BatchApproximate(queries, 0.1, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ap {
			if exact[i] == 0 {
				continue
			}
			if rel := math.Abs(ap[i]-exact[i]) / exact[i]; rel > 0.1+1e-9 {
				t.Fatalf("workers=%d query %d: rel error %v", workers, i, rel)
			}
		}
	}
}

func TestBatchEmptyAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := cloud(rng, 50, 2)
	eng, _ := Build(pts, Gaussian(1))
	if out, err := eng.BatchThreshold(nil, 1, 4); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	// A dimension mismatch inside the batch surfaces as an error.
	bad := [][]float64{{0.1, 0.2}, {0.1}}
	if _, err := eng.BatchAggregate(bad, 2); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := eng.BatchApproximate(bad, 0.1, 1); err == nil {
		t.Fatal("bad query accepted sequentially")
	}
}

// TestBatchWorkerError pins the first-error-aborts contract: an invalid
// query in the middle of a batch surfaces as an error naming that index,
// for every worker-count regime.
func TestBatchWorkerError(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := cloud(rng, 200, 2)
	eng, err := Build(pts, Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := cloud(rng, 40, 2)
	queries[17] = []float64{0.5} // dimension mismatch mid-batch
	for _, workers := range []int{1, 4, 64} {
		if _, err := eng.BatchAggregate(queries, workers); err == nil {
			t.Fatalf("workers=%d: bad query accepted", workers)
		} else if !strings.Contains(err.Error(), "query 17") {
			t.Fatalf("workers=%d: error does not name the failing index: %v", workers, err)
		}
		if _, err := eng.BatchThreshold(queries, 1, workers); err == nil {
			t.Fatalf("workers=%d: threshold bad query accepted", workers)
		}
		if _, err := eng.BatchApproximate(queries, 0.1, workers); err == nil {
			t.Fatalf("workers=%d: approximate bad query accepted", workers)
		}
	}
}

// TestBatchWorkerClamping checks that workers ≤ 0 (GOMAXPROCS fallback)
// and workers > len(queries) (clamped to the batch size) both complete
// with results identical to the sequential path.
func TestBatchWorkerClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := cloud(rng, 150, 2)
	eng, err := Build(pts, Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := cloud(rng, 5, 2)
	want, err := eng.BatchAggregate(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -2, 100} {
		got, err := eng.BatchAggregate(queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(queries) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(got), len(queries))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: %v want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestBatchStatsAccumulate checks the summed work statistics of the
// Stats-returning batch variants.
func TestBatchStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := cloud(rng, 300, 2)
	eng, err := Build(pts, Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := cloud(rng, 6, 2)
	_, st, err := eng.BatchAggregateStats(queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(queries) * eng.Len(); st.PointsScanned != want {
		t.Fatalf("aggregate batch scanned %d points, want %d", st.PointsScanned, want)
	}
	_, st, err = eng.BatchApproximateStats(queries, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations+st.PointsScanned == 0 {
		t.Fatalf("approximate batch reports no work: %+v", st)
	}
	if st.LB != 0 || st.UB != 0 {
		t.Fatalf("summed stats must leave per-query LB/UB zero: %+v", st)
	}
	// A tau equal to one query's exact value forces real refinement (a
	// far-off tau can be decided at the root with zero iterations).
	exact0, err := eng.Aggregate(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	_, st, err = eng.BatchThresholdStats(queries, exact0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations+st.PointsScanned == 0 {
		t.Fatalf("threshold batch reports no work: %+v", st)
	}
}

func TestRegressionRecoversFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 3000
	pts := make([][]float64, n)
	targets := make([]float64, n)
	for i := range pts {
		x := rng.Float64() * math.Pi
		pts[i] = []float64{x}
		targets[i] = math.Sin(2*x) + rng.NormFloat64()*0.05
	}
	r, err := NewRegression(pts, targets, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.4, 1.1, 2.0, 2.7} {
		approx, err := r.Predict([]float64{x}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := r.PredictExact([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-math.Sin(2*x)) > 0.12 {
			t.Fatalf("exact prediction at %v = %v, want ≈ %v", x, exact, math.Sin(2*x))
		}
		// The eKAQ-served prediction tracks the exact ratio within ~2ε.
		if math.Abs(approx-exact) > 0.15*(1+math.Abs(exact)) {
			t.Fatalf("approx %v far from exact %v at %v", approx, exact, x)
		}
	}
}

func TestRegressionValidation(t *testing.T) {
	if _, err := NewRegression(nil, nil, 1); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewRegression([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Fatal("target mismatch accepted")
	}
	if _, err := NewRegression([][]float64{{1}, {2}}, []float64{1, 2}, -5); err == nil {
		t.Fatal("bad gamma accepted")
	}
}

func TestRegressionFarQueryPrior(t *testing.T) {
	r, err := NewRegression([][]float64{{0}, {1}}, []float64{2, 4}, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{1e6}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("far prediction %v, want prior 3", got)
	}
}

func TestMultiSVM(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}, {3, 3}}
	n := 400
	pts := make([][]float64, n)
	labels := make([]int, n)
	for i := range pts {
		c := i % 4
		labels[i] = 100 - c*10 // descending, non-contiguous labels
		pts[i] = []float64{
			centers[c][0] + rng.NormFloat64()*0.3,
			centers[c][1] + rng.NormFloat64()*0.3,
		}
	}
	mm, err := TrainMultiClassSVM(pts, labels, SVMConfig{Kernel: Gaussian(1), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Classes) != 4 {
		t.Fatalf("classes = %v", mm.Classes)
	}
	for i := 1; i < len(mm.Classes); i++ {
		if mm.Classes[i] < mm.Classes[i-1] {
			t.Fatalf("classes not sorted: %v", mm.Classes)
		}
	}
	var correct int
	for i := range pts {
		got, err := mm.Predict(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if got == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.96 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestMultiSVMValidation(t *testing.T) {
	if _, err := TrainMultiClassSVM(nil, nil, SVMConfig{}); err == nil {
		t.Fatal("empty accepted")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := TrainMultiClassSVM(pts, []int{1}, SVMConfig{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainMultiClassSVM(pts, []int{1, 1}, SVMConfig{}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestPairIdxUnique(t *testing.T) {
	for k := 2; k <= 7; k++ {
		seen := map[int]bool{}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				idx := pairIdx(a, b, k)
				if idx < 0 || idx >= k*(k-1)/2 || seen[idx] {
					t.Fatalf("k=%d (%d,%d) → %d invalid or duplicate", k, a, b, idx)
				}
				seen[idx] = true
			}
		}
	}
}
