package karl

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// replicaPump pulls leader batches into the follower until the follower's
// fence and delete position reach the leader's counters.
func replicaPump(t *testing.T, leader, follower *DynamicEngine, fence, delPos uint64) (uint64, uint64) {
	t.Helper()
	for {
		b, err := leader.PullBatch(fence, delPos)
		if err != nil {
			t.Fatalf("pull at fence %d: %v", fence, err)
		}
		newFence, err := follower.ApplyBatch(b)
		if err != nil {
			t.Fatalf("apply at fence %d: %v", fence, err)
		}
		fence, delPos = newFence, b.DeletePos
		if fence >= b.NextSeq-1 && delPos == b.DeletePos {
			return fence, delPos
		}
	}
}

// checkReplicaConverged asserts the follower answers queries identically
// to the leader up to float summation order (tombstone mass accumulates
// over a map, so even one engine is not bitwise-reproducible across
// calls): same point count, same mass and same aggregates within 1e-9
// relative.
func checkReplicaConverged(t *testing.T, leader, follower *DynamicEngine, qs [][]float64) {
	t.Helper()
	close9 := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if lg, fg := leader.Len(), follower.Len(); lg != fg {
		t.Fatalf("len diverged: leader %d follower %d", lg, fg)
	}
	lp, ln := leader.WeightMass()
	fp, fn := follower.WeightMass()
	if !close9(lp, fp) || !close9(ln, fn) {
		t.Fatalf("mass diverged: leader %v/%v follower %v/%v", lp, ln, fp, fn)
	}
	for _, q := range qs {
		want, err := leader.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := follower.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !close9(want, got) {
			t.Fatalf("aggregate diverged at %v: leader %v follower %v", q, want, got)
		}
	}
}

// TestReplicaIncrementalCatchUp drives a fresh follower to convergence
// purely through PullBatch/ApplyBatch — sealed segments ship whole, the
// memtable tail ships as rows, deletes replay from the log — then keeps
// it converged across further inserts, deletes, and rows that are
// inserted and deleted again between two pulls.
func TestReplicaIncrementalCatchUp(t *testing.T) {
	mk := func() *DynamicEngine {
		d, err := NewDynamic(Gaussian(1.5), WithSealSize(32), WithAutoCompaction(false))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	leader, follower := mk(), mk()
	rng := rand.New(rand.NewSource(71))
	var ids []uint64
	for i := 0; i < 150; i++ {
		id, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 0.5+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i += 7 {
		if err := leader.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	qs := [][]float64{{0.3, 0.3}, {0.8, 0.2}, {0.5, 0.9}}
	fence, delPos := replicaPump(t, leader, follower, 0, 0)
	checkReplicaConverged(t, leader, follower, qs)

	// Steady state: more inserts and deletes, including a row deleted
	// before the follower ever saw it (ships only as a delete-log entry).
	for i := 0; i < 40; i++ {
		id, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ephemeral, err := leader.InsertID([]float64{0.1, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Delete(ephemeral); err != nil {
		t.Fatal(err)
	}
	if err := leader.Delete(ids[len(ids)-3]); err != nil {
		t.Fatal(err)
	}
	fence, delPos = replicaPump(t, leader, follower, fence, delPos)
	checkReplicaConverged(t, leader, follower, qs)
	if want := leader.NextSeq() - 1; fence != want {
		t.Fatalf("fence %d after ephemeral delete, want %d", fence, want)
	}

	// Redelivering the same batch is a no-op (idempotent apply).
	b, err := leader.PullBatch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	checkReplicaConverged(t, leader, follower, qs)
	_ = delPos
}

// TestReplicaSnapshotThenTail covers the fresh-follower bootstrap path:
// full snapshot install (delete position captured before serialization),
// then incremental pulls from the snapshot's fence.
func TestReplicaSnapshotThenTail(t *testing.T) {
	leader, err := NewDynamic(Gaussian(2), WithSealSize(16), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	var ids []uint64
	for i := 0; i < 70; i++ {
		id, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, i := range []int{2, 20, 45} {
		if err := leader.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	delPos := leader.DeletePos()
	var buf bytes.Buffer
	if _, err := leader.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	follower, err := NewDynamic(Gaussian(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{0.4, 0.6}, {0.9, 0.1}}
	checkReplicaConverged(t, leader, follower, qs)

	// A second install must refuse: the follower is no longer empty.
	var buf2 bytes.Buffer
	if _, err := leader.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallSnapshot(&buf2); err == nil {
		t.Fatal("snapshot install onto a non-empty engine accepted")
	}

	// Incremental pulls continue from the snapshot fence.
	for i := 0; i < 25; i++ {
		if _, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Delete(ids[60]); err != nil {
		t.Fatal(err)
	}
	replicaPump(t, leader, follower, follower.NextSeq()-1, delPos)
	checkReplicaConverged(t, leader, follower, qs)
}

// TestReplicaTimedEngineTail checks replication of TTL/decay engines
// through the memtable tail (timestamps travel with the rows) and that a
// fence straddling a sealed segment of a timed engine forces a full
// resync instead of a wrong-decay per-row replay.
func TestReplicaTimedEngineTail(t *testing.T) {
	clock := int64(1_700_000_000_000_000_000)
	mk := func() *DynamicEngine {
		d, err := NewDynamic(Gaussian(1), WithSealSize(32), WithAutoCompaction(false),
			WithDecayHalfLife(30*time.Minute), withClock(func() int64 { return clock }))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	leader, follower := mk(), mk()
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 40; i++ {
		if _, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
		clock += int64(time.Second)
	}
	fence, delPos := replicaPump(t, leader, follower, 0, 0)
	checkReplicaConverged(t, leader, follower, [][]float64{{0.5, 0.5}})
	_, _ = fence, delPos

	// Fence 5 falls inside the leader's first sealed segment: per-row
	// replay cannot reproduce decay state, so the pull demands a resync.
	if _, err := leader.PullBatch(5, 0); !errors.Is(err, ErrReplicaResync) {
		t.Fatalf("straddling pull on a timed engine: got %v, want ErrReplicaResync", err)
	}
}

// TestReplicaDeleteLogBounds pins the delete-log error surface: a
// position ahead of the log is corruption, a position behind the trimmed
// head demands a resync.
func TestReplicaDeleteLogBounds(t *testing.T) {
	d, err := NewDynamic(Gaussian(1), WithSealSize(8), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.DeletesSince(3); err == nil {
		t.Fatal("position ahead of the log accepted")
	}
	id, err := d.InsertID([]float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(id); err != nil {
		t.Fatal(err)
	}
	dels, pos, err := d.DeletesSince(0)
	if err != nil || len(dels) != 1 || dels[0] != id || pos != 1 {
		t.Fatalf("DeletesSince(0) = %v, %d, %v", dels, pos, err)
	}
	// Simulate a trimmed head: a reloaded engine's pre-existing deletes
	// are not in the log, so position 0 is unrecoverable.
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.DeletesSince(0); !errors.Is(err, ErrReplicaResync) {
		t.Fatalf("pre-log position: got %v, want ErrReplicaResync", err)
	}
	if _, _, err := d2.DeletesSince(d2.DeletePos()); err != nil {
		t.Fatalf("current position rejected: %v", err)
	}
}

// TestReplicaStraddlerSegmentOrder pins two subtle catch-up bugs in one
// deterministic scenario: the follower's fence lands INSIDE a sealed
// segment while newer sealed segments exist, so one batch carries loose
// rows extracted from the straddler (low seqs), a whole segment (middle
// seqs) and the memtable tail (high seqs). The extraction must map each
// seq through the tree's leaf permutation (Seqs is insertion-ordered,
// rows are stored in leaf order), and the apply must land the straddler
// rows BEFORE installing the whole segment — installing first advances
// the idempotency fence past them and they would be dropped as
// duplicates.
func TestReplicaStraddlerSegmentOrder(t *testing.T) {
	mk := func() *DynamicEngine {
		// LeafCap 4 forces a real leaf permutation inside each 32-row
		// segment, so misindexing insertion order against leaf order
		// ships wrong points and the convergence check below catches it.
		d, err := NewDynamic(Gaussian(1.2), WithIndex(KDTree, 4), WithSealSize(32), WithAutoCompaction(false))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	leader, follower := mk(), mk()
	rng := rand.New(rand.NewSource(97))
	insert := func(n int) []uint64 {
		ids := make([]uint64, n)
		for i := range ids {
			id, err := leader.InsertID([]float64{rng.NormFloat64(), rng.NormFloat64()}, 0.2+rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return ids
	}

	// Sync mid-memtable: fence 20, with every row still loose.
	ids := insert(20)
	fence, delPos := replicaPump(t, leader, follower, 0, 0)

	// Grow the leader past two seal boundaries: segment 1 (seqs 1..32)
	// straddles the fence, segment 2 (33..64) ships whole, the rest stays
	// in the memtable. Delete a couple of pre-fence rows so the straddler
	// extraction also has tombstones to skip.
	ids = append(ids, insert(76)...)
	if err := leader.Delete(ids[4]); err != nil {
		t.Fatal(err)
	}
	if err := leader.Delete(ids[25]); err != nil {
		t.Fatal(err)
	}

	b, err := leader.PullBatch(fence, delPos)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Segments) == 0 || len(b.Rows) == 0 {
		t.Fatalf("scenario must mix whole segments with loose rows: %d segments, %d rows", len(b.Segments), len(b.Rows))
	}
	if b.Rows[0].Seq >= 33 {
		t.Fatalf("scenario must extract straddler rows below the whole segment: first row seq %d", b.Rows[0].Seq)
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	checkReplicaConverged(t, leader, follower, [][]float64{{0.3, 0.3}, {-0.8, 0.2}, {0.5, -0.9}})
}
