package karl

import (
	"errors"
	"fmt"
)

// Regression is a Nadaraya–Watson kernel regressor served by two KARL
// engines: the prediction E[y|q] = Σ y_i·K(q,p_i) / Σ K(q,p_i) is a ratio
// of two kernel aggregations, each answered as an eKAQ. Kernel regression
// is one of the future-work directions named in the paper's conclusion.
type Regression struct {
	num   *Engine // weights y_i (any sign → Type III machinery)
	den   *Engine // unit weights
	prior float64 // mean of y, returned when the denominator vanishes
}

// NewRegression builds a Gaussian kernel regressor over (points, targets)
// with smoothing γ.
func NewRegression(points [][]float64, targets []float64, gamma float64, opts ...Option) (*Regression, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty point set")
	}
	if len(targets) != len(points) {
		return nil, fmt.Errorf("karl: %d targets for %d points", len(targets), len(points))
	}
	numOpts := append(append([]Option{}, opts...), WithWeights(targets))
	num, err := Build(points, Gaussian(gamma), numOpts...)
	if err != nil {
		return nil, err
	}
	den, err := Build(points, Gaussian(gamma), opts...)
	if err != nil {
		return nil, err
	}
	var prior float64
	for _, y := range targets {
		prior += y
	}
	prior /= float64(len(targets))
	return &Regression{num: num, den: den, prior: prior}, nil
}

// Predict estimates E[y|q], computing numerator and denominator each
// within relative error eps (so the ratio's error is ≈ 2·eps for small
// eps). When the local density underflows to zero the prior (mean target)
// is returned.
func (r *Regression) Predict(q []float64, eps float64) (float64, error) {
	den, err := r.den.Approximate(q, eps)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return r.prior, nil
	}
	num, err := r.num.Approximate(q, eps)
	if err != nil {
		return 0, err
	}
	return num / den, nil
}

// PredictExact computes the regression estimate with exact aggregations.
func (r *Regression) PredictExact(q []float64) (float64, error) {
	den, err := r.den.Aggregate(q)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return r.prior, nil
	}
	num, err := r.num.Aggregate(q)
	if err != nil {
		return 0, err
	}
	return num / den, nil
}

// MultiSVM is a one-vs-one multi-class kernel SVM whose pairwise votes are
// KARL-accelerated TKAQs — the paper's other named future-work direction.
type MultiSVM struct {
	// Classes lists the distinct labels in ascending order.
	Classes []int
	// models[pairIdx(a,b)] decides class a (true) vs class b.
	models []*SVM
}

// pairIdx maps unordered class-index pairs (a<b) over k classes to a flat
// index in the strictly-upper-triangular enumeration.
func pairIdx(a, b, k int) int { return a*(2*k-a-1)/2 + (b - a - 1) }

// TrainMultiClassSVM trains a one-vs-one ensemble on integer labels.
func TrainMultiClassSVM(points [][]float64, labels []int, cfg SVMConfig) (*MultiSVM, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty training set")
	}
	if len(labels) != len(points) {
		return nil, fmt.Errorf("karl: %d labels for %d points", len(labels), len(points))
	}
	seen := map[int]bool{}
	var classes []int
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			classes = append(classes, l)
		}
	}
	if len(classes) < 2 {
		return nil, errors.New("karl: need at least two classes")
	}
	// Ascending order for deterministic pair indexing.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] < classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	k := len(classes)
	mm := &MultiSVM{Classes: classes, models: make([]*SVM, k*(k-1)/2)}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			var sub [][]float64
			var y []float64
			for i, l := range labels {
				switch l {
				case classes[a]:
					sub = append(sub, points[i])
					y = append(y, 1)
				case classes[b]:
					sub = append(sub, points[i])
					y = append(y, -1)
				}
			}
			m, err := TrainTwoClassSVM(sub, y, cfg)
			if err != nil {
				return nil, fmt.Errorf("karl: pair (%d,%d): %w", classes[a], classes[b], err)
			}
			mm.models[pairIdx(a, b, k)] = m
		}
	}
	return mm, nil
}

// Predict returns the majority-vote class; ties break toward the smaller
// label, matching LibSVM.
func (mm *MultiSVM) Predict(q []float64) (int, error) {
	k := len(mm.Classes)
	votes := make([]int, k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			positive, err := mm.models[pairIdx(a, b, k)].Classify(q)
			if err != nil {
				return 0, err
			}
			if positive {
				votes[a]++
			} else {
				votes[b]++
			}
		}
	}
	best := 0
	for c := 1; c < k; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return mm.Classes[best], nil
}
