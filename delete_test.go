package karl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeleteMetamorphicGate is the PR's acceptance gate for deletes:
// across every index kind, weighting type, and kernel, an engine that
// inserted a stream and then deleted a third of it must be equivalent to
// an engine that never saw the deleted points — within floating-point
// reordering tolerance while tombstones are live (their mass is
// subtracted exactly from both refinement bounds), and BITWISE once a
// full compaction has physically dropped the dead rows (the merge
// restores surviving rows to insertion order, so both histories build
// the identical tree).
func TestDeleteMetamorphicGate(t *testing.T) {
	kinds := []IndexKind{KDTree, BallTree, VPTree}
	kernels := map[string]func() Kernel{
		"gaussian":     func() Kernel { return Gaussian(4) },
		"epanechnikov": func() Kernel { return Epanechnikov(2) },
		"quartic":      func() Kernel { return Quartic(2) },
	}
	weightTypes := []string{"typeI", "typeII", "typeIII"}
	const n = 300

	for _, kind := range kinds {
		for kname, mk := range kernels {
			for _, wt := range weightTypes {
				name := map[IndexKind]string{KDTree: "kd", BallTree: "ball", VPTree: "vp"}[kind] +
					"/" + kname + "/" + wt
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(len(name))*37 + 11))
					pts := cloud(rng, n, 2)
					ws := weightsFor(rng, wt, n)
					weightAt := func(i int) float64 {
						if ws == nil {
							return 1
						}
						return ws[i]
					}
					victim := func(i int) bool { return i%3 == 1 }

					build := func() *DynamicEngine {
						d, err := NewDynamic(mk(), WithIndex(kind, 16),
							WithSealSize(64), WithCompactionFanout(2))
						if err != nil {
							t.Fatal(err)
						}
						return d
					}

					// History A: insert everything, then delete the victims
					// (sealed ones become tombstones, memtable ones vanish
					// physically).
					a := build()
					ids := make([]uint64, n)
					for i, p := range pts {
						id, err := a.InsertID(p, weightAt(i))
						if err != nil {
							t.Fatal(err)
						}
						ids[i] = id
					}
					deleted := 0
					for i := range pts {
						if victim(i) {
							if err := a.Delete(ids[i]); err != nil {
								t.Fatal(err)
							}
							deleted++
						}
					}

					// History B: the victims were never inserted.
					b := build()
					for i, p := range pts {
						if victim(i) {
							continue
						}
						if err := b.Insert(p, weightAt(i)); err != nil {
							t.Fatal(err)
						}
					}
					if a.Len() != b.Len() {
						t.Fatalf("Len %d after deletes, want %d", a.Len(), b.Len())
					}
					if a.Deletes() != deleted {
						t.Fatalf("Deletes() = %d, want %d", a.Deletes(), deleted)
					}

					queries := cloud(rng, 20, 2)

					// Live equivalence: tombstone mass is subtracted exactly,
					// so the two histories agree to floating-point reordering.
					for _, q := range queries {
						want, err := b.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						got, err := a.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
							t.Fatalf("live Aggregate %v, never-inserted %v", got, want)
						}
						if math.Abs(want) > 1e-6 {
							approx, err := a.Approximate(q, 0.1)
							if err != nil {
								t.Fatal(err)
							}
							if math.Abs(approx-want) > 0.1*math.Abs(want)+1e-9 {
								t.Fatalf("live Approximate %v, want %v ± 10%%", approx, want)
							}
						}
					}

					// Post-compaction: dead rows are physically gone and the
					// survivors rebuild in insertion order — bitwise equal to
					// the never-inserted history however its manifest looked.
					if err := a.Compact(); err != nil {
						t.Fatal(err)
					}
					if err := b.Compact(); err != nil {
						t.Fatal(err)
					}
					if a.Tombstones() != 0 {
						t.Fatalf("%d tombstones survived a full compaction", a.Tombstones())
					}
					apos, aneg := a.WeightMass()
					bpos, bneg := b.WeightMass()
					if apos != bpos || aneg != bneg {
						t.Fatalf("weight mass (%v,%v) want (%v,%v)", apos, aneg, bpos, bneg)
					}
					for _, q := range queries {
						want, _ := b.Aggregate(q)
						got, err := a.Aggregate(q)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("post-Compact Aggregate %v not bitwise-equal to never-inserted %v", got, want)
						}
					}
				})
			}
		}
	}
}

// TestDeleteErrors pins the failure modes: unknown IDs, double deletes,
// and deletes on a closed engine all fail cleanly, and ErrPointNotFound
// is detectable with errors.Is.
func TestDeleteErrors(t *testing.T) {
	d, err := NewDynamic(Gaussian(2), WithSealSize(8), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ids := make([]uint64, 20)
	for i := range ids {
		id, err := d.InsertID([]float64{rng.Float64(), rng.Float64()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	if err := d.Delete(0); !errors.Is(err, ErrPointNotFound) {
		t.Fatalf("Delete(0) = %v, want ErrPointNotFound", err)
	}
	if err := d.Delete(ids[19] + 1); !errors.Is(err, ErrPointNotFound) {
		t.Fatalf("Delete(beyond nextSeq) = %v, want ErrPointNotFound", err)
	}

	// Double delete of a sealed point (tombstoned) and a memtable point
	// (physically removed).
	for _, id := range []uint64{ids[0], ids[19]} {
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := d.Delete(id); !errors.Is(err, ErrPointNotFound) {
			t.Fatalf("double Delete(%d) = %v, want ErrPointNotFound", id, err)
		}
	}

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(ids[1]); err == nil {
		t.Fatal("Delete on closed engine succeeded")
	}
}

// TestDeleteEverythingThenCompact drives the 100%-tombstoned edge case:
// with every point deleted the engine still answers (aggregate ~ 0, the
// exact tombstone algebra cancels the index mass), and a full compaction
// produces an EMPTY manifest rather than a zero-point segment. The
// engine must remain usable for new inserts afterwards.
func TestDeleteEverythingThenCompact(t *testing.T) {
	d, err := NewDynamic(Gaussian(2), WithSealSize(16), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 50
	ids := make([]uint64, n)
	for i := range ids {
		id, err := d.InsertID([]float64{rng.Float64(), rng.Float64()}, 1+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", d.Len())
	}

	// All mass is tombstoned but rows still exist physically: queries
	// answer ~0 instead of erroring.
	q := []float64{0.5, 0.5}
	v, err := d.Aggregate(q)
	if err != nil {
		t.Fatalf("query on fully-tombstoned engine: %v", err)
	}
	if math.Abs(v) > 1e-9 {
		t.Fatalf("fully-deleted aggregate = %v, want ~0", v)
	}
	pos, neg := d.WeightMass()
	if math.Abs(pos) > 1e-9 || math.Abs(neg) > 1e-9 {
		t.Fatalf("weight mass (%v,%v) after deleting everything", pos, neg)
	}

	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if segs := d.Segments(); len(segs) != 0 {
		t.Fatalf("compaction of fully-tombstoned manifest left %d segments", len(segs))
	}
	if d.Tombstones() != 0 {
		t.Fatalf("%d tombstones survived", d.Tombstones())
	}
	// Physically empty now: queries error like a fresh engine.
	if _, err := d.Aggregate(q); err == nil {
		t.Fatal("query on physically empty engine succeeded")
	}

	// And the engine accepts new points.
	if err := d.Insert([]float64{0.3, 0.3}, 2); err != nil {
		t.Fatal(err)
	}
	v, err = d.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * Gaussian(2).Eval(q, []float64{0.3, 0.3})
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("aggregate after refill = %v, want %v", v, want)
	}
}

// TestInsertBulkAllOrNothing is the regression test for the
// partial-batch state leak: a bulk insert with an invalid point anywhere
// in the batch must validate BEFORE mutating the rotating buffer, so the
// valid prefix does not land.
func TestInsertBulkAllOrNothing(t *testing.T) {
	d, err := NewDynamic(Gaussian(1), WithSealSize(8))
	if err != nil {
		t.Fatal(err)
	}
	good := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if ids, err := d.InsertBulk(good, nil); err != nil || len(ids) != 3 {
		t.Fatalf("valid bulk: ids %v err %v", ids, err)
	}

	for name, batch := range map[string]struct {
		pts [][]float64
		ws  []float64
	}{
		"NaN mid-batch":        {pts: [][]float64{{7, 8}, {math.NaN(), 1}, {9, 10}}},
		"Inf mid-batch":        {pts: [][]float64{{7, 8}, {math.Inf(1), 1}}},
		"dims change mid-way":  {pts: [][]float64{{7, 8}, {1}}},
		"bad weight mid-batch": {pts: [][]float64{{7, 8}, {9, 10}}, ws: []float64{1, math.NaN()}},
		"weight count":         {pts: [][]float64{{7, 8}, {9, 10}}, ws: []float64{1}},
	} {
		before := d.Len()
		ids, err := d.InsertBulk(batch.pts, batch.ws)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if ids != nil {
			t.Fatalf("%s: returned ids %v with error", name, ids)
		}
		if got := d.Len(); got != before {
			t.Fatalf("%s: leaked %d points into the memtable", name, got-before)
		}
	}

	// IDs keep ascending contiguously after rejected batches — nothing
	// consumed sequence numbers.
	ids, err := d.InsertBulk([][]float64{{11, 12}}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 4 {
		t.Fatalf("next id = %d, want 4 (rejected batches must not burn ids)", ids[0])
	}
}

// TestConcurrentInsertDeleteQueryOracle stress-tests the full mutable
// path under -race: one writer interleaves inserts and deletes while
// reader goroutines aggregate concurrently. Every observed value must
// match (to refinement tolerance) the exact oracle value of SOME state
// the engine passed through during the read — queries serve from an
// atomic manifest snapshot, so a torn read that mixes two states is a
// bug even when each half is individually plausible.
func TestConcurrentInsertDeleteQueryOracle(t *testing.T) {
	const (
		ops     = 1500
		readers = 4
	)
	d, err := NewDynamic(Gaussian(8), WithSealSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	kern := Gaussian(8)
	q := []float64{0.4, 0.6}

	// oracle[i] is the exact F(q) after the first i write operations.
	// Two counters bracket each op: started is bumped BEFORE the engine
	// mutation (op i may now be visible to readers), applied AFTER its
	// oracle entry is written (oracle[i] may now be read). A reader's
	// observation window is [applied-before-read, started-after-read] —
	// using applied on both ends would let an insert land in the engine
	// an instant before its oracle entry publishes, making the reader
	// reject a perfectly consistent state.
	oracle := make([]float64, 1, ops+1)
	var started, applied atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(17))
		type livePoint struct {
			id uint64
			v  float64
		}
		var live []livePoint
		f := 0.0
		for i := 0; i < ops; i++ {
			started.Store(int64(i + 1))
			if i%4 == 3 && len(live) > 1 {
				j := rng.Intn(len(live))
				if err := d.Delete(live[j].id); err != nil {
					errc <- err
					return
				}
				f -= live[j].v
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				p := []float64{rng.Float64(), rng.Float64()}
				w := 0.5 + rng.Float64()
				id, err := d.InsertID(p, w)
				if err != nil {
					errc <- err
					return
				}
				v := w * kern.Eval(q, p)
				live = append(live, livePoint{id, v})
				f += v
			}
			oracle = append(oracle, f)
			applied.Store(int64(i + 1))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Clones are the concurrency unit for queries: they share the
			// dataset, manifest and tombstones but own refinement scratch
			// (the server pool works the same way).
			c := d.Clone()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := applied.Load()
				got, err := c.Aggregate(q)
				if err != nil {
					// Only acceptable before anything landed.
					if lo == 0 {
						continue
					}
					errc <- err
					return
				}
				hi := started.Load()
				// oracle[hi] may not be written yet; wait for the writer to
				// publish it. If the writer bailed out mid-op (stop closed
				// with applied stuck below hi), its last oracle entry will
				// never arrive — cap the window at what was published.
				for applied.Load() < hi {
					select {
					case <-stop:
						if a := applied.Load(); a < hi {
							hi = a
						}
					default:
						runtime.Gosched()
					}
				}
				ok := false
				best := math.Inf(1)
				for i := lo; i <= hi; i++ {
					diff := math.Abs(got - oracle[i])
					if diff < best {
						best = diff
					}
					if diff <= 1e-6*(1+math.Abs(oracle[i])) {
						ok = true
						break
					}
				}
				if !ok {
					errc <- fmt.Errorf("observed %v matches no state in window [%d,%d] (closest off by %v)",
						got, lo, hi, best)
					return
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestSealRacingClose drives the seal/Close race under -race: inserts
// that trigger seals while another goroutine closes the engine must not
// panic or deadlock — inserts either land before the close or fail with
// the closed-engine error.
func TestSealRacingClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		d, err := NewDynamic(Gaussian(2), WithSealSize(16))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				<-start
				for i := 0; i < 200; i++ {
					p := []float64{rng.Float64(), rng.Float64()}
					if err := d.Insert(p, 1); err != nil {
						return // closed under us: expected
					}
					if i%8 == 3 {
						_, _ = d.Aggregate(p)
					}
				}
			}(int64(round*10 + w))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := d.Close(); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
		if err := d.Insert([]float64{0, 0}, 1); err == nil {
			t.Fatal("insert after close succeeded")
		}
	}
}

// TestNoStopTheWorldDeletes is the latency acceptance gate: a sustained
// insert+delete workload must not degrade query p99 beyond 3× an
// insert-free baseline on the same dataset shape — deletes are memtable
// row removals or O(1) tombstones plus an exact per-tombstone
// subtraction at query time, never an index rebuild.
func TestNoStopTheWorldDeletes(t *testing.T) {
	if testing.Short() {
		t.Skip("latency gate skipped in -short")
	}
	const (
		seedN   = 4000
		churn   = 2000
		queries = 4000
	)
	rng := rand.New(rand.NewSource(23))
	mkPoint := func() []float64 {
		return []float64{rng.NormFloat64()*0.2 + 0.5, rng.NormFloat64()*0.2 + 0.5}
	}
	q := []float64{0.5, 0.5}

	// Baseline: frozen engine, queries only.
	base, err := NewDynamic(Gaussian(10), WithSealSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	for i := 0; i < seedN; i++ {
		if err := base.Insert(mkPoint(), 1); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(d *DynamicEngine, churning bool) time.Duration {
		ids := make([]uint64, 0, churn)
		lat := make([]time.Duration, 0, queries)
		for i := 0; i < queries; i++ {
			if churning && i%2 == 0 {
				id, err := d.InsertID(mkPoint(), 1)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
				if len(ids) > 8 {
					victim := ids[0]
					ids = ids[1:]
					if err := d.Delete(victim); err != nil {
						t.Fatal(err)
					}
				}
			}
			t0 := time.Now()
			if _, err := d.Approximate(q, 0.1); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}
	// Warm both paths once to stabilize clone/alloc effects.
	measure(base, false)
	baseP99 := measure(base, false)

	work, err := NewDynamic(Gaussian(10), WithSealSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer work.Close()
	for i := 0; i < seedN; i++ {
		if err := work.Insert(mkPoint(), 1); err != nil {
			t.Fatal(err)
		}
	}
	measure(work, true)
	workP99 := measure(work, true)

	if workP99 > 3*baseP99 {
		t.Fatalf("insert+delete workload query p99 %v exceeds 3× insert-free baseline %v", workP99, baseP99)
	}
	t.Logf("query p99: baseline %v, under churn %v (%.2fx)", baseP99, workP99,
		float64(workP99)/float64(baseP99))
}
