package karl

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// cloud generates n clustered points in [0,1]^d.
func cloud(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		base := float64(i%3) * 0.3
		for j := range pts[i] {
			pts[i][j] = base + rng.Float64()*0.2
		}
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Gaussian(1)); err == nil {
		t.Fatal("empty points accepted")
	}
	pts := [][]float64{{0, 0}, {1, 1}}
	if _, err := Build(pts, Gaussian(-1)); err == nil {
		t.Fatal("bad kernel accepted")
	}
	if _, err := Build(pts, Gaussian(1), WithIndex(KDTree, 0)); err == nil {
		t.Fatal("leafCap 0 accepted")
	}
	if _, err := Build(pts, Gaussian(1), WithIndex(IndexKind(9), 10)); err == nil {
		t.Fatal("unknown index kind accepted")
	}
	if _, err := Build(pts, Gaussian(1), WithWeights([]float64{1})); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}

func TestEngineBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := cloud(rng, 500, 4)
	eng, err := Build(pts, Gaussian(3))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 500 || eng.Dims() != 4 {
		t.Fatalf("Len/Dims = %d/%d", eng.Len(), eng.Dims())
	}
	q := []float64{0.3, 0.3, 0.3, 0.3}
	exact, err := eng.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatalf("Aggregate = %v", exact)
	}
	over, err := eng.Threshold(q, exact*0.9)
	if err != nil || !over {
		t.Fatalf("Threshold below exact: %v %v", over, err)
	}
	under, err := eng.Threshold(q, exact*1.1)
	if err != nil || under {
		t.Fatalf("Threshold above exact: %v %v", under, err)
	}
	approx, err := eng.Approximate(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(approx-exact) / exact; rel > 0.1 {
		t.Fatalf("Approximate rel error %v", rel)
	}
}

func TestEngineStatsVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := cloud(rng, 300, 3)
	eng, _ := Build(pts, Gaussian(5))
	q := []float64{0.3, 0.3, 0.3}
	exact, _ := eng.Aggregate(q)
	_, st, err := eng.ThresholdStats(q, exact)
	if err != nil {
		t.Fatal(err)
	}
	if st.UB < st.LB {
		t.Fatal("stats bounds inverted")
	}
	v, st2, err := eng.ApproximateStats(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if v < st2.LB-1e-9 || v > st2.UB+1e-9 {
		t.Fatal("approximate value outside its own bounds")
	}
}

func TestAllKernelsAndIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := cloud(rng, 200, 3)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	kernels := []Kernel{Gaussian(2), Polynomial(0.5, 1, 3), Sigmoid(0.5, 0), Epanechnikov(2), Quartic(2)}
	for _, kern := range kernels {
		for _, kind := range []IndexKind{KDTree, BallTree, VPTree} {
			eng, err := Build(pts, kern, WithWeights(w), WithIndex(kind, 16))
			if err != nil {
				t.Fatal(err)
			}
			q := []float64{0.4, 0.4, 0.4}
			exact, err := eng.Aggregate(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Threshold(q, exact-0.01)
			if err != nil || !got {
				t.Fatalf("%v/%v: threshold failed: %v %v", kern.Kind, kind, got, err)
			}
		}
	}
}

func TestMethodOption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := cloud(rng, 2000, 4)
	q := []float64{0.35, 0.35, 0.35, 0.35}
	karlEng, _ := Build(pts, Gaussian(8), WithMethod(MethodKARL))
	sotaEng, _ := Build(pts, Gaussian(8), WithMethod(MethodSOTA))
	exact, _ := karlEng.Aggregate(q)
	tau := exact * 1.05
	_, ks, _ := karlEng.ThresholdStats(q, tau)
	okSOTA, ss, _ := sotaEng.ThresholdStats(q, tau)
	okKARL, _, _ := karlEng.ThresholdStats(q, tau)
	if okKARL != okSOTA {
		t.Fatal("methods disagree on the answer")
	}
	if ks.Iterations > ss.Iterations {
		t.Fatalf("KARL iterations %d exceed SOTA %d", ks.Iterations, ss.Iterations)
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := cloud(rng, 100, 2)
	eng, _ := Build(pts, Gaussian(2))
	c := eng.Clone()
	q := []float64{0.3, 0.3}
	a, _ := eng.Aggregate(q)
	b, _ := c.Aggregate(q)
	if a != b {
		t.Fatal("clone disagrees")
	}
}

func TestBuildAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := cloud(rng, 1500, 3)
	sample := cloud(rng, 30, 3)
	eng, rep, err := BuildAuto(pts, Gaussian(4), Workload{Threshold: true, Tau: 50}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeafCap < 10 || rep.LeafCap > 640 {
		t.Fatalf("tuned leaf capacity %d outside the grid", rep.LeafCap)
	}
	if rep.SampleThroughput <= 0 {
		t.Fatalf("sample throughput %v", rep.SampleThroughput)
	}
	q := []float64{0.3, 0.3, 0.3}
	if _, err := eng.Threshold(q, 50); err != nil {
		t.Fatal(err)
	}
	// Validation.
	if _, _, err := BuildAuto(nil, Gaussian(1), Workload{}, sample); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, _, err := BuildAuto(pts, Gaussian(1), Workload{}, nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestTuneDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := cloud(rng, 400, 2)
	sample := cloud(rng, 10, 2)
	d, rep, err := TuneDynamic(pts, Gaussian(4), Workload{Threshold: true, Tau: 10}, sample, 2,
		WithIndex(BallTree, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SealSize < 1 || rep.Fanout < 2 || rep.Throughput <= 0 {
		t.Fatalf("report %+v", rep)
	}
	// The returned engine is empty, uses the winning policy, and serves.
	if d.Len() != 0 {
		t.Fatalf("tuned engine not empty: %d points", d.Len())
	}
	for _, p := range pts[:50] {
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Threshold(sample[0], 10); err != nil {
		t.Fatal(err)
	}
	// Validation.
	if _, _, err := TuneDynamic(nil, Gaussian(1), Workload{}, sample, 1); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, _, err := TuneDynamic(pts, Gaussian(1), Workload{}, nil, 1); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := TuneDynamic(pts, Gaussian(1), Workload{}, sample, 1, WithWeights(make([]float64, len(pts)))); err == nil {
		t.Fatal("explicit weights accepted")
	}
}

func TestInSitu(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := cloud(rng, 1000, 3)
	queries := cloud(rng, 60, 3)
	rep, err := InSitu(pts, Gaussian(4), Workload{Threshold: true, Tau: 30}, queries, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	if _, err := InSitu(nil, Gaussian(1), Workload{}, queries, 0.1); err == nil {
		t.Fatal("empty points accepted")
	}
}

func TestKDEAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := cloud(rng, 800, 2)
	k, err := NewKDE(pts)
	if err != nil {
		t.Fatal(err)
	}
	if k.Gamma() <= 0 {
		t.Fatalf("Gamma = %v", k.Gamma())
	}
	dense, err := k.Density([]float64{0.35, 0.35}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := k.Density([]float64{5, 5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if dense <= sparse {
		t.Fatalf("density inside cloud (%v) should exceed far outside (%v)", dense, sparse)
	}
	over, err := k.DensityExceeds([]float64{0.35, 0.35}, sparse)
	if err != nil || !over {
		t.Fatalf("DensityExceeds: %v %v", over, err)
	}
	if _, err := NewKDE(nil); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := NewKDEWithGamma(pts, -1); err == nil {
		t.Fatal("bad gamma accepted")
	}
}

// TestNewKDEZeroVariance: Scott's rule divides by the mean per-dimension
// std, so a dataset of identical points must fail with an error that names
// the problem and the workaround rather than yielding gamma = +Inf.
func TestNewKDEZeroVariance(t *testing.T) {
	pts := [][]float64{{3, 7}, {3, 7}, {3, 7}, {3, 7}}
	_, err := NewKDE(pts)
	if err == nil {
		t.Fatal("zero-variance data accepted")
	}
	msg := err.Error()
	for _, want := range []string{"zero variance", "NewKDEWithGamma"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	// The escape hatch the error suggests must actually work.
	k, err := NewKDEWithGamma(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := k.Density([]float64{3, 7}, 0.1); err != nil || d != 1 {
		t.Fatalf("density at the atom = %v, %v (want 1)", d, err)
	}
}

func TestSVMAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	pts := make([][]float64, n)
	labels := make([]float64, n)
	for i := range pts {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		labels[i] = sign
		pts[i] = []float64{sign + rng.NormFloat64()*0.3, sign + rng.NormFloat64()*0.3}
	}
	two, err := TrainTwoClassSVM(pts, labels, SVMConfig{Kernel: Gaussian(1), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if two.SupportVectors == 0 {
		t.Fatal("no support vectors")
	}
	var correct int
	for i := range pts {
		got, err := two.Classify(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if got == (labels[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("2-class accuracy %v", acc)
	}
	// Classify must agree with the sign of Decision.
	for _, q := range [][]float64{{1, 1}, {-1, -1}, {0.2, -0.1}} {
		c, _ := two.Classify(q)
		d, _ := two.Decision(q)
		if c != (d > 0) {
			t.Fatalf("Classify(%v)=%v disagrees with Decision=%v", q, c, d)
		}
	}

	// One-class: inliers around origin.
	inliers := make([][]float64, 300)
	for i := range inliers {
		inliers[i] = []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}
	}
	one, err := TrainOneClassSVM(inliers, SVMConfig{Kernel: Gaussian(5), Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := one.Classify([]float64{0, 0}); !ok {
		t.Fatal("center rejected")
	}
	if ok, _ := one.Classify([]float64{4, 4}); ok {
		t.Fatal("distant outlier accepted")
	}
	// Validation.
	if _, err := TrainTwoClassSVM(pts, labels[:10], SVMConfig{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainOneClassSVM(nil, SVMConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainTwoClassSVM(nil, nil, SVMConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestNewSVMWrapsExternalModel(t *testing.T) {
	// A hand-made "model": one positive SV at the origin, ρ = 0.5, so the
	// decision region is a ball around the origin.
	m, err := NewSVM([][]float64{{0, 0}}, []float64{1}, 0.5, Gaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	if in, _ := m.Classify([]float64{0.1, 0}); !in {
		t.Fatal("near point rejected")
	}
	if in, _ := m.Classify([]float64{3, 0}); in {
		t.Fatal("far point accepted")
	}
	if _, err := NewSVM(nil, nil, 0, Gaussian(1)); err == nil {
		t.Fatal("empty SVs accepted")
	}
	if _, err := NewSVM([][]float64{{0}}, []float64{1, 2}, 0, Gaussian(1)); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}

func TestSVMDefaultKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := make([][]float64, 100)
	labels := make([]float64, 100)
	for i := range pts {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		labels[i] = sign
		pts[i] = []float64{sign*2 + rng.NormFloat64()*0.2, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	// Zero-value config: γ must default to 1/d.
	m, err := TrainTwoClassSVM(pts, labels, SVMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Engine().Kernel().Gamma; math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("default gamma %v, want 1/d = 0.25", g)
	}
}
