package karl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// dualPair builds two engines over the same data, one forced through the
// dual-tree batch executor and one forced sequential, so their batch
// answers can be compared under identical ε/τ contracts.
func dualPair(t testing.TB, pts [][]float64, kern Kernel, opts ...Option) (dual, seq *Engine) {
	t.Helper()
	dual, err := Build(pts, kern, append(append([]Option{}, opts...), WithBatchExecutor(BatchDualTree))...)
	if err != nil {
		t.Fatalf("build dual: %v", err)
	}
	seq, err = Build(pts, kern, append(append([]Option{}, opts...), WithBatchExecutor(BatchSequential))...)
	if err != nil {
		t.Fatalf("build sequential: %v", err)
	}
	return dual, seq
}

// TestBatchDualMatchesSequential is the equivalence gate for the dual-tree
// batch executor: across every index kind × weighting type × kernel it
// must return bitwise-identical Aggregate answers, Approximate answers
// within the same ε-of-exact contract, and Threshold verdicts identical
// away from ties.
func TestBatchDualMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	kinds := []struct {
		name string
		kind IndexKind
	}{{"kd", KDTree}, {"ball", BallTree}, {"vp", VPTree}}
	weightTypes := []string{"typeI", "typeII", "typeIII"}
	kernels := []struct {
		name string
		k    Kernel
	}{
		{"gaussian", Gaussian(4)},
		{"epanechnikov", Epanechnikov(2)},
		{"polynomial", Polynomial(0.5, 1, 2)},
	}
	const n, nq, dim, eps = 400, 80, 3, 0.05
	for _, ik := range kinds {
		for _, wt := range weightTypes {
			for _, kn := range kernels {
				t.Run(ik.name+"/"+wt+"/"+kn.name, func(t *testing.T) {
					pts := cloud(rng, n, dim)
					ws := weightsFor(rng, wt, n)
					opts := []Option{WithIndex(ik.kind, 32), WithWeights(ws)}
					dual, seq := dualPair(t, pts, kn.k, opts...)
					queries := cloud(rng, nq, dim)
					// Duplicate queries must not confuse the query tree.
					queries[nq-1] = queries[0]
					queries[nq-2] = queries[1]

					exact, err := seq.BatchAggregate(queries, 1)
					if err != nil {
						t.Fatal(err)
					}
					dv, err := dual.BatchAggregate(queries, 1)
					if err != nil {
						t.Fatal(err)
					}
					for i := range dv {
						if dv[i] != exact[i] {
							t.Fatalf("aggregate query %d: dual %v != sequential %v", i, dv[i], exact[i])
						}
					}

					da, err := dual.BatchApproximate(queries, eps, 1)
					if err != nil {
						t.Fatal(err)
					}
					for i := range da {
						if d, tol := math.Abs(da[i]-exact[i]), eps*math.Abs(exact[i])+1e-12; d > tol {
							t.Fatalf("approximate query %d: |%v - %v| = %v exceeds eps %v", i, da[i], exact[i], d, eps)
						}
					}

					// A mid-range τ; skip queries whose exact value sits on it.
					tau := exact[len(exact)/2]
					dov, err := dual.BatchThreshold(queries, tau, 1)
					if err != nil {
						t.Fatal(err)
					}
					sov, err := seq.BatchThreshold(queries, tau, 1)
					if err != nil {
						t.Fatal(err)
					}
					for i := range dov {
						if math.Abs(exact[i]-tau) <= 1e-9*math.Abs(tau) {
							continue
						}
						if dov[i] != sov[i] {
							t.Fatalf("threshold query %d (exact %v, tau %v): dual %v != sequential %v",
								i, exact[i], tau, dov[i], sov[i])
						}
					}
				})
			}
		}
	}
}

// TestBatchDualDegenerateBatch covers the pathological query tree: a batch
// that is one point repeated. Every answer must match the sequential
// executor's.
func TestBatchDualDegenerateBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := cloud(rng, 500, 4)
	dual, seq := dualPair(t, pts, Gaussian(3))
	q := []float64{0.3, 0.3, 0.3, 0.3}
	queries := make([][]float64, 128)
	for i := range queries {
		queries[i] = q
	}
	exact, err := seq.BatchAggregate(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := dual.BatchAggregate(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	da, err := dual.BatchApproximate(queries, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dov, err := dual.BatchThreshold(queries, exact[0]*0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if dv[i] != exact[0] {
			t.Fatalf("aggregate %d: %v != %v", i, dv[i], exact[0])
		}
		if d := math.Abs(da[i] - exact[0]); d > 0.1*math.Abs(exact[0])+1e-12 {
			t.Fatalf("approximate %d: error %v", i, d)
		}
		if !dov[i] {
			t.Fatalf("threshold %d: want over", i)
		}
	}
}

// heatmapWorkload builds the Figure-1-style KDE grid workload: n clustered
// points in dim dimensions plus res×res grid queries sweeping dimensions 0
// and 1 with every other coordinate held at the data mean — the query
// shape cmd/karl-kde feeds BatchApproximate.
func heatmapWorkload(rng *rand.Rand, n, dim, res int) (pts, queries [][]float64) {
	return heatmapWorkloadSigma(rng, n, dim, res, 0.05)
}

func heatmapWorkloadSigma(rng *rand.Rand, n, dim, res int, sigma float64) (pts, queries [][]float64) {
	pts = make([][]float64, n)
	mean := make([]float64, dim)
	for i := range pts {
		p := make([]float64, dim)
		base := float64(i%5) * 0.18
		for j := range p {
			p[j] = base + rng.NormFloat64()*sigma
			mean[j] += p[j]
		}
		pts[i] = p
	}
	lo := [2]float64{math.Inf(1), math.Inf(1)}
	hi := [2]float64{math.Inf(-1), math.Inf(-1)}
	for _, p := range pts {
		for j := 0; j < 2; j++ {
			lo[j] = math.Min(lo[j], p[j])
			hi[j] = math.Max(hi[j], p[j])
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	queries = make([][]float64, 0, res*res)
	for iy := 0; iy < res; iy++ {
		y := lo[1] + (hi[1]-lo[1])*float64(iy)/float64(res-1)
		for ix := 0; ix < res; ix++ {
			q := append([]float64(nil), mean...)
			q[1] = y
			q[0] = lo[0] + (hi[0]-lo[0])*float64(ix)/float64(res-1)
			queries = append(queries, q)
		}
	}
	return pts, queries
}

// batchSeconds times reps runs of an N-query approximate batch and returns
// the fastest wall time, single worker.
func batchSeconds(t testing.TB, eng *Engine, queries [][]float64, eps float64, reps int) float64 {
	t.Helper()
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := eng.BatchApproximate(queries, eps, 1); err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// TestBatchDualSpeedupGate pins the headline performance claim: on the
// 10k-query Gaussian-KDE heatmap workload, the dual-tree executor must
// clear 3× the sequential executor's single-core queries/sec.
//
// The workload sits in the regime the executor targets: a sharp kernel
// over a fine-grained index, where sequential per-query refinement is
// dominated by node-bound computations that neighboring grid queries
// repeat nearly verbatim. Sharing that work lets the dual traversal refine
// several levels deeper for the same cost and scan ~4× fewer rows; on
// scan-dominated configurations (coarse leaves, diffuse kernels) the two
// executors converge instead, which is what the automatic cutover
// heuristic is for.
func TestBatchDualSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped with -short")
	}
	rng := rand.New(rand.NewSource(73))
	pts, queries := heatmapWorkload(rng, 16000, 8, 100)
	dual, seq := dualPair(t, pts, Gaussian(400), WithIndex(KDTree, 12))
	const eps = 0.05
	// One untimed pass each to warm allocator and caches.
	batchSeconds(t, dual, queries, eps, 1)
	batchSeconds(t, seq, queries, eps, 1)
	dualSec := batchSeconds(t, dual, queries, eps, 3)
	seqSec := batchSeconds(t, seq, queries, eps, 3)
	speedup := seqSec / dualSec
	t.Logf("heatmap %d queries over %d points: sequential %.3fs, dual %.3fs, speedup %.2fx",
		len(queries), len(pts), seqSec, dualSec, speedup)
	if speedup < 3 {
		t.Fatalf("dual-tree speedup %.2fx below the 3x gate (sequential %.3fs, dual %.3fs)",
			speedup, seqSec, dualSec)
	}
}

// BenchmarkBatchDualVsSequential is the batch-size × kernel × index-kind
// executor matrix behind BENCH_7.json. Single-worker throughout, so the
// numbers isolate shared bound refinement from clone parallelism.
func BenchmarkBatchDualVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(74))
	pts, queries := heatmapWorkload(rng, 8000, 8, 64) // 4096 grid queries
	kinds := []struct {
		name string
		kind IndexKind
	}{{"kd", KDTree}, {"ball", BallTree}, {"vp", VPTree}}
	kernels := []struct {
		name string
		k    Kernel
	}{{"gaussian", Gaussian(400)}, {"epanechnikov", Epanechnikov(100)}}
	execs := []struct {
		name string
		exec BatchExecutor
	}{{"sequential", BatchSequential}, {"dual", BatchDualTree}}
	for _, ik := range kinds {
		for _, kn := range kernels {
			for _, ex := range execs {
				eng, err := Build(pts, kn.k, WithIndex(ik.kind, 16), WithBatchExecutor(ex.exec))
				if err != nil {
					b.Fatal(err)
				}
				for _, size := range []int{256, 1024, 4096} {
					qs := queries[:size]
					b.Run(fmt.Sprintf("%s/%s/%s/batch=%d", ik.name, kn.name, ex.name, size), func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							if _, err := eng.BatchApproximate(qs, 0.05, 1); err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
					})
				}
			}
		}
	}
}

// TestBatchAutoIndexKindRouting pins the cutover heuristic's index-kind
// term: BENCH_7 measured the vp-tree/Gaussian cell at ~1.0–1.4× over
// sequential (shell bounds rarely certify query groups for the
// fast-decaying Gaussian), so BatchAuto keeps that cell on the clone-pool
// executor while kd/Gaussian and vp/Epanechnikov still cut over — and an
// explicit BatchDualTree override still forces the dual executor anywhere.
func TestBatchAutoIndexKindRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pts, queries := heatmapWorkload(rng, 2000, 4, 10) // 100 queries ≥ min batch
	cases := []struct {
		name     string
		kind     IndexKind
		kern     Kernel
		wantDual bool
	}{
		{"vp-gaussian", VPTree, Gaussian(100), false},
		{"kd-gaussian", KDTree, Gaussian(100), true},
		{"vp-epanechnikov", VPTree, Epanechnikov(50), true},
	}
	for _, c := range cases {
		eng, err := Build(pts, c.kern, WithIndex(c.kind, 16)) // default: BatchAuto
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.BatchApproximate(queries, 0.1, 1); err != nil {
			t.Fatal(err)
		}
		st := eng.DualTreeStats()
		if gotDual := st.DualBatches > 0; gotDual != c.wantDual {
			t.Fatalf("%s: BatchAuto routed dual=%v, want dual=%v (%+v)", c.name, gotDual, c.wantDual, st)
		}
	}
	forced, err := Build(pts, Gaussian(100), WithIndex(VPTree, 16), WithBatchExecutor(BatchDualTree))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := forced.BatchApproximate(queries, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if st := forced.DualTreeStats(); st.DualBatches == 0 {
		t.Fatalf("BatchDualTree must force the dual executor on vp/gaussian (%+v)", st)
	}

	// The dynamic engine routes with the same heuristic.
	d, err := NewDynamic(Gaussian(100), WithIndex(VPTree, 16), WithSealSize(512), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.BatchApproximate(queries, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if st := d.DualTreeStats(); st.DualBatches != 0 {
		t.Fatalf("dynamic BatchAuto must keep vp/gaussian sequential (%+v)", st)
	}
}

// BenchmarkBatchAutoVPGaussian is the regression bench for the heuristic's
// index-kind term: BatchAuto on the vp/gaussian cell (sequential by
// default) against the forced dual-tree executor on the same workload. If
// the dual executor ever becomes clearly faster here, the exclusion in
// dualEligible should be revisited.
func BenchmarkBatchAutoVPGaussian(b *testing.B) {
	rng := rand.New(rand.NewSource(76))
	pts, queries := heatmapWorkload(rng, 8000, 8, 16) // 256 queries
	for _, ex := range []struct {
		name string
		exec BatchExecutor
	}{{"auto", BatchAuto}, {"dual", BatchDualTree}} {
		eng, err := Build(pts, Gaussian(400), WithIndex(VPTree, 12), WithBatchExecutor(ex.exec))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ex.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.BatchApproximate(queries, 0.05, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
