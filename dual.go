package karl

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"karl/internal/dualtree"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/vec"
)

// BatchExecutor selects how the Batch* methods evaluate a query batch.
type BatchExecutor int

const (
	// BatchAuto (the default) picks per batch: large batches over large
	// indexes run the dual-tree executor, everything else fans out over
	// engine clones query-by-query.
	BatchAuto BatchExecutor = iota
	// BatchSequential always evaluates queries independently over clones.
	BatchSequential
	// BatchDualTree always runs the dual-tree executor (exact aggregation
	// included, where it matches the sequential results bitwise).
	BatchDualTree
)

// WithBatchExecutor fixes the batch execution strategy (default BatchAuto).
// Build and NewDynamic both honor it.
func WithBatchExecutor(x BatchExecutor) Option {
	return func(c *buildConfig) { c.batchExec = x }
}

// Auto-cutover thresholds: below either, the per-batch cost of building a
// query tree and scoring node pairs is not worth amortizing and the
// clone-pool fan-out wins.
const (
	dualTreeMinBatch  = 64  // queries per batch
	dualTreeMinPoints = 256 // indexed reference points
	dualTreeMinChunk  = 32  // min queries per worker chunk
)

// DualTreeStats is an engine's cumulative batch-executor telemetry: how
// batches were routed and, for dual-tree batches, how the traversal spent
// its work. Counters accumulate across the engine's lifetime and are shared
// by every clone.
type DualTreeStats struct {
	// DualBatches and SequentialBatches count non-empty batches by the
	// executor that served them.
	DualBatches       int
	SequentialBatches int
	// Queries counts queries answered by the dual-tree executor.
	Queries int
	// NodePairs counts (query node × reference node) group-bound
	// computations.
	NodePairs int
	// GroupCertified counts queries answered purely by group bound
	// certificates; Fallbacks counts queries the traversal handed back to
	// the sequential engine.
	GroupCertified int
	Fallbacks      int
}

// dualCounters is the shared atomic backing of DualTreeStats.
type dualCounters struct {
	dualBatches    atomic.Int64
	seqBatches     atomic.Int64
	queries        atomic.Int64
	nodePairs      atomic.Int64
	groupCertified atomic.Int64
	fallbacks      atomic.Int64
}

func (c *dualCounters) noteSequential(n int) {
	if c == nil || n == 0 {
		return
	}
	c.seqBatches.Add(1)
}

func (c *dualCounters) noteDual(st dualtree.Stats) {
	if c == nil {
		return
	}
	c.dualBatches.Add(1)
	c.queries.Add(int64(st.Queries))
	c.nodePairs.Add(int64(st.NodePairs))
	c.groupCertified.Add(int64(st.GroupCertified))
	c.fallbacks.Add(int64(st.Fallbacks))
}

func (c *dualCounters) snapshot() DualTreeStats {
	if c == nil {
		return DualTreeStats{}
	}
	return DualTreeStats{
		DualBatches:       int(c.dualBatches.Load()),
		SequentialBatches: int(c.seqBatches.Load()),
		Queries:           int(c.queries.Load()),
		NodePairs:         int(c.nodePairs.Load()),
		GroupCertified:    int(c.groupCertified.Load()),
		Fallbacks:         int(c.fallbacks.Load()),
	}
}

// DualTreeStats reports the engine's cumulative batch-executor telemetry.
func (e *Engine) DualTreeStats() DualTreeStats { return e.dualCtr.snapshot() }

// DualTreeStats reports the dynamic engine's cumulative batch-executor
// telemetry (shared across clones).
func (d *DynamicEngine) DualTreeStats() DualTreeStats { return d.sh.dualCtr.snapshot() }

// validateBatchQueries fail-fasts a whole batch before any evaluation
// starts, mirroring InsertBulk's all-or-nothing contract: a bad row rejects
// the batch naming the offending query, with no partial results computed.
// dims ≤ 0 (an empty dynamic engine) checks internal consistency against
// the first row instead.
func validateBatchQueries(queries [][]float64, dims int) error {
	if len(queries) == 0 {
		return nil
	}
	if dims <= 0 {
		dims = len(queries[0])
	}
	for i, q := range queries {
		if len(q) != dims {
			return fmt.Errorf("karl: batch query %d: query has %d dims, batch expects %d", i, len(q), dims)
		}
		for j, v := range q {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("karl: batch query %d: coordinate %d is %v; coordinates must be finite", i, j, v)
			}
		}
	}
	return nil
}

// dualEligible is the cutover heuristic shared by both engines. Besides
// the size floors, BatchAuto considers the index kind: BENCH_7 measured
// vp-tree/Gaussian batches at only ~1.0–1.4× over sequential — shell
// (annulus) bounds rarely certify whole query groups for the fast-decaying
// Gaussian — so that cell stays on the clone-pool executor by default.
// BatchDualTree still forces the dual-tree executor everywhere.
func dualEligible(exec BatchExecutor, n, points int, kind index.Kind, kern kernel.Params) bool {
	switch exec {
	case BatchSequential:
		return false
	case BatchDualTree:
		return n > 0
	default:
		if n < dualTreeMinBatch || points < dualTreeMinPoints {
			return false
		}
		if kind == index.VPTree && kern.Kind == kernel.Gaussian {
			return false
		}
		return true
	}
}

// dualCoreStats folds dual-tree traversal work into the public batch Stats
// shape (LB/UB are per-query quantities and stay zero, as in sumStats).
func dualCoreStats(st dualtree.Stats) Stats {
	return Stats{Iterations: st.Iterations, NodesExpanded: st.NodesExpanded, PointsScanned: st.PointsScanned}
}

// runDual copies the (already validated) batch into one matrix, splits it
// into contiguous per-worker chunks, and runs each chunk through its own
// dual-tree executor created by run. Chunks are large enough that each
// query tree amortizes its setup; workers ≤ 0 selects GOMAXPROCS.
func runDual(queries [][]float64, workers int,
	run func(chunk *vec.Matrix, lo int) (dualtree.Stats, error)) (dualtree.Stats, error) {
	n := len(queries)
	m := vec.FromRows(queries)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxW := (n + dualTreeMinChunk - 1) / dualTreeMinChunk; workers > maxW {
		workers = maxW
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		return run(m, 0)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    dualtree.Stats
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			chunk := &vec.Matrix{Data: m.Data[lo*m.Cols : hi*m.Cols], Rows: hi - lo, Cols: m.Cols}
			st, err := run(chunk, lo)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			total.Queries += st.Queries
			total.NodePairs += st.NodePairs
			total.GroupCertified += st.GroupCertified
			total.Fallbacks += st.Fallbacks
			total.Iterations += st.Iterations
			total.NodesExpanded += st.NodesExpanded
			total.PointsScanned += st.PointsScanned
		}(lo, hi)
	}
	wg.Wait()
	return total, firstErr
}

// dualConfig builds the executor configuration matching this engine's
// sequential contract exactly.
func (e *Engine) dualConfig() dualtree.Config {
	return dualtree.Config{Kernel: kernel.Params(e.kern), Method: e.eng.Method(), MaxDepth: e.eng.MaxDepth()}
}

func (e *Engine) useDual(n int) bool {
	return dualEligible(e.batchExec, n, e.Len(), e.tree.Kind, kernel.Params(e.kern))
}

func (e *Engine) dualThreshold(queries [][]float64, tau float64, workers int) ([]bool, Stats, error) {
	out := make([]bool, len(queries))
	st, err := runDual(queries, workers, func(chunk *vec.Matrix, lo int) (dualtree.Stats, error) {
		x, err := dualtree.New(e.dualConfig(), []*index.Tree{e.tree})
		if err != nil {
			return dualtree.Stats{}, err
		}
		return x.Threshold(chunk, tau, nil, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("karl: dual-tree batch: %w", err)
	}
	e.dualCtr.noteDual(st)
	return out, dualCoreStats(st), nil
}

func (e *Engine) dualApproximate(queries [][]float64, eps float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	st, err := runDual(queries, workers, func(chunk *vec.Matrix, lo int) (dualtree.Stats, error) {
		x, err := dualtree.New(e.dualConfig(), []*index.Tree{e.tree})
		if err != nil {
			return dualtree.Stats{}, err
		}
		return x.Approximate(chunk, eps, nil, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("karl: dual-tree batch: %w", err)
	}
	e.dualCtr.noteDual(st)
	return out, dualCoreStats(st), nil
}

func (e *Engine) dualAggregate(queries [][]float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	st, err := runDual(queries, workers, func(chunk *vec.Matrix, lo int) (dualtree.Stats, error) {
		x, err := dualtree.New(e.dualConfig(), []*index.Tree{e.tree})
		if err != nil {
			return dualtree.Stats{}, err
		}
		return x.Aggregate(chunk, nil, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("karl: dual-tree batch: %w", err)
	}
	e.dualCtr.noteDual(st)
	return out, dualCoreStats(st), nil
}

// dynBatchSnap is the one-lock snapshot a dynamic dual-tree batch runs
// over: the manifest's segment trees with their decay scales, plus every
// buffered point (memtable and sealing buffer) and every pending tombstone
// flattened into one copied point block with signed, pre-decayed weights
// (tombstones negative). Each query's exact base term is then computed
// outside the lock, so queries never hold mu while scanning.
type dynBatchSnap struct {
	trees  []*index.Tree
	scales []float64
	pts    *vec.Matrix
	ws     []float64
}

// batchSnapshot captures the dataset state for one batch at one instant.
// Decay is evaluated once for the whole batch — the same way a single
// sequential query evaluates it once for all segments.
func (d *DynamicEngine) batchSnapshot(dims int) (*dynBatchSnap, error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	total := sh.man.Len() + sh.mem.len() + sh.sealing.len()
	if total == 0 {
		return nil, fmt.Errorf("karl: dynamic engine is empty")
	}
	if dims != sh.dims {
		return nil, fmt.Errorf("karl: query has %d dims, engine has %d", dims, sh.dims)
	}
	var nowT int64
	if sh.timed() {
		nowT = sh.now()
	}
	decayed := sh.halfLife > 0
	snap := &dynBatchSnap{trees: sh.man.Trees()}
	extra := sh.mem.len() + sh.sealing.len() + len(sh.tombs)
	if extra > 0 {
		snap.pts = vec.NewMatrix(extra, sh.dims)
		snap.ws = make([]float64, 0, extra)
		row := 0
		for _, b := range [2]*memtable{sh.mem, sh.sealing} {
			if b == nil {
				continue
			}
			for i := 0; i < b.n; i++ {
				copy(snap.pts.Row(row), b.m.Row(i))
				w := b.w[i]
				if decayed {
					w *= sh.decayAt(nowT, b.t[i])
				}
				snap.ws = append(snap.ws, w)
				row++
			}
		}
		for _, tb := range sh.tombs {
			copy(snap.pts.Row(row), tb.p)
			w := tb.w
			if decayed {
				w *= sh.decayAt(nowT, tb.ref)
			}
			snap.ws = append(snap.ws, -w)
			row++
		}
	}
	if decayed {
		snap.scales = make([]float64, len(sh.man.Segs))
		for i, s := range sh.man.Segs {
			snap.scales[i] = sh.decayAt(nowT, s.TimeRef)
		}
	}
	return snap, nil
}

// bases computes the exact per-query base terms of the snapshot's buffered
// mass for one chunk (nil when the snapshot has no buffered points).
func (s *dynBatchSnap) bases(kern kernel.Params, chunk *vec.Matrix) []float64 {
	if len(s.ws) == 0 {
		return nil
	}
	base := make([]float64, chunk.Rows)
	for i := 0; i < chunk.Rows; i++ {
		q := chunk.Row(i)
		var b float64
		for j, w := range s.ws {
			b += w * kern.Eval(q, s.pts.Row(j))
		}
		base[i] = b
	}
	return base
}

func (d *DynamicEngine) useDual(n int) bool {
	if n == 0 {
		return false
	}
	points := d.Len()
	if points == 0 {
		// Keep the sequential path's "dynamic engine is empty" contract.
		return false
	}
	return dualEligible(d.sh.batchExec, n, points, d.sh.bcfg.Kind, kernel.Params(d.sh.kern))
}

func (d *DynamicEngine) dualConfig() dualtree.Config {
	sh := d.sh
	return dualtree.Config{Kernel: kernel.Params(sh.kern), Method: sh.method, MaxDepth: sh.maxDepth}
}

// runDualDyn is the dynamic-engine chunk runner: one snapshot for the whole
// batch, one executor plus exact base scan per chunk.
func (d *DynamicEngine) runDualDyn(queries [][]float64, workers int,
	serve func(x *dualtree.Executor, chunk *vec.Matrix, base []float64, lo int) (dualtree.Stats, error)) (Stats, error) {
	snap, err := d.batchSnapshot(len(queries[0]))
	if err != nil {
		return Stats{}, err
	}
	kern := kernel.Params(d.sh.kern)
	st, err := runDual(queries, workers, func(chunk *vec.Matrix, lo int) (dualtree.Stats, error) {
		x, err := dualtree.New(d.dualConfig(), snap.trees)
		if err != nil {
			return dualtree.Stats{}, err
		}
		if err := x.SetScales(snap.scales); err != nil {
			return dualtree.Stats{}, err
		}
		base := snap.bases(kern, chunk)
		cst, err := serve(x, chunk, base, lo)
		// The buffered-mass scan is real per-query work, mirrored into the
		// same counter the sequential snapshot charges it to.
		cst.PointsScanned += chunk.Rows * len(snap.ws)
		return cst, err
	})
	if err != nil {
		return Stats{}, fmt.Errorf("karl: dual-tree batch: %w", err)
	}
	d.sh.dualCtr.noteDual(st)
	return dualCoreStats(st), nil
}

func (d *DynamicEngine) dualThreshold(queries [][]float64, tau float64, workers int) ([]bool, Stats, error) {
	out := make([]bool, len(queries))
	st, err := d.runDualDyn(queries, workers, func(x *dualtree.Executor, chunk *vec.Matrix, base []float64, lo int) (dualtree.Stats, error) {
		return x.Threshold(chunk, tau, base, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}

func (d *DynamicEngine) dualApproximate(queries [][]float64, eps float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	st, err := d.runDualDyn(queries, workers, func(x *dualtree.Executor, chunk *vec.Matrix, base []float64, lo int) (dualtree.Stats, error) {
		return x.Approximate(chunk, eps, base, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}

func (d *DynamicEngine) dualAggregate(queries [][]float64, workers int) ([]float64, Stats, error) {
	out := make([]float64, len(queries))
	st, err := d.runDualDyn(queries, workers, func(x *dualtree.Executor, chunk *vec.Matrix, base []float64, lo int) (dualtree.Stats, error) {
		return x.Aggregate(chunk, base, out[lo:lo+chunk.Rows])
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}
