package karl

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchThreshold answers the TKAQ for every query. workers > 1 evaluates
// in parallel over engine clones (workers ≤ 0 selects GOMAXPROCS). The
// result slice is index-aligned with queries; the first error aborts the
// batch.
func (e *Engine) BatchThreshold(queries [][]float64, tau float64, workers int) ([]bool, error) {
	out, _, err := e.BatchThresholdStats(queries, tau, workers)
	return out, err
}

// BatchThresholdStats is BatchThreshold plus the summed work statistics of
// the whole batch (Iterations, NodesExpanded and PointsScanned accumulate
// across queries; the LB/UB fields are per-query quantities and stay zero).
func (e *Engine) BatchThresholdStats(queries [][]float64, tau float64, workers int) ([]bool, Stats, error) {
	if err := validateBatchQueries(queries, e.Dims()); err != nil {
		return nil, Stats{}, err
	}
	if e.useDual(len(queries)) {
		return e.dualThreshold(queries, tau, workers)
	}
	e.dualCtr.noteSequential(len(queries))
	out := make([]bool, len(queries))
	per := make([]Stats, len(queries))
	err := e.batch(queries, workers, func(eng *Engine, i int) error {
		v, st, err := eng.ThresholdStats(queries[i], tau)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchApproximate answers the eKAQ for every query, index-aligned.
func (e *Engine) BatchApproximate(queries [][]float64, eps float64, workers int) ([]float64, error) {
	out, _, err := e.BatchApproximateStats(queries, eps, workers)
	return out, err
}

// BatchApproximateStats is BatchApproximate plus the summed work
// statistics of the whole batch.
func (e *Engine) BatchApproximateStats(queries [][]float64, eps float64, workers int) ([]float64, Stats, error) {
	if err := validateBatchQueries(queries, e.Dims()); err != nil {
		return nil, Stats{}, err
	}
	// eps ≤ 0 keeps the sequential path so its validation error surfaces
	// with the historical per-query shape.
	if eps > 0 && e.useDual(len(queries)) {
		return e.dualApproximate(queries, eps, workers)
	}
	e.dualCtr.noteSequential(len(queries))
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := e.batch(queries, workers, func(eng *Engine, i int) error {
		v, st, err := eng.ApproximateStats(queries[i], eps)
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// BatchAggregate computes the exact aggregate for every query.
func (e *Engine) BatchAggregate(queries [][]float64, workers int) ([]float64, error) {
	out, _, err := e.BatchAggregateStats(queries, workers)
	return out, err
}

// BatchAggregateStats is BatchAggregate plus the summed work statistics of
// the whole batch (every query scans all points, so PointsScanned is
// len(queries)·Len for a successful batch).
func (e *Engine) BatchAggregateStats(queries [][]float64, workers int) ([]float64, Stats, error) {
	if err := validateBatchQueries(queries, e.Dims()); err != nil {
		return nil, Stats{}, err
	}
	// Exact aggregation scans every point per query regardless of grouping,
	// so the dual path runs only when explicitly forced (where it matches
	// the sequential results bitwise).
	if e.batchExec == BatchDualTree && len(queries) > 0 {
		return e.dualAggregate(queries, workers)
	}
	e.dualCtr.noteSequential(len(queries))
	out := make([]float64, len(queries))
	per := make([]Stats, len(queries))
	err := e.batch(queries, workers, func(eng *Engine, i int) error {
		v, st, err := eng.AggregateStats(queries[i])
		out[i], per[i] = v, st
		return err
	})
	return out, sumStats(per), err
}

// sumStats folds per-query statistics into batch totals. The LB/UB fields
// are meaningless summed across queries and are left zero.
func sumStats(per []Stats) Stats {
	var total Stats
	for _, st := range per {
		total.Iterations += st.Iterations
		total.NodesExpanded += st.NodesExpanded
		total.PointsScanned += st.PointsScanned
	}
	return total
}

// batch fans queries across worker clones. Each worker owns a clone, so
// the engines' scratch state is never shared.
func (e *Engine) batch(queries [][]float64, workers int, fn func(eng *Engine, i int) error) error {
	return runBatch(e, (*Engine).Clone, len(queries), workers, fn)
}

// runBatch is the shared work-stealing fan-out behind the Engine and
// DynamicEngine batch APIs: n items are claimed one at a time by workers
// that each query through their own clone of self, so no query scratch is
// ever shared. The first error aborts the batch.
func runBatch[E any](self E, clone func(E) E, n, workers int, fn func(eng E, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(self, i); err != nil {
				return fmt.Errorf("karl: batch query %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("karl: batch query %d: %w", i, err)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := clone(self)
			for {
				i := claim()
				if i < 0 {
					return
				}
				if err := fn(eng, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
