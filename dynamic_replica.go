package karl

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"karl/internal/segment"
)

// This file is the engine half of the replication subsystem: a leader
// exports its state as (a) whole sealed segments, each re-encoded as a
// self-contained persistence-v7 stream, and (b) a row tail above a fence
// sequence number, plus a bounded delete log; a follower installs the
// segments atomically and replays the rows and deletes. Because sealed
// segments are immutable and carry their sequence numbers, a follower
// that applies every segment and row above its fence and replays the
// delete log holds exactly the leader's live mass — the ε/τ certificate
// contracts survive failover verbatim. The internal/replica package
// drives these primitives over HTTP.

// ErrReplicaResync reports that incremental catch-up from the follower's
// fence is impossible — the leader has compacted the needed history away
// (coreset segments and decayed straddlers lose per-row identity, and the
// delete log is bounded) — so the follower must take a full snapshot.
var ErrReplicaResync = errors.New("karl: replica incremental catch-up unavailable (full resync required)")

// replicaDelLogCap bounds the in-memory delete log. When it overflows,
// the oldest half is trimmed and followers whose delete position aged
// past the trim get ErrReplicaResync.
const replicaDelLogCap = 1 << 16

// TailRow is one live memtable row shipped from leader to follower: the
// point, its weight, its cluster-visible sequence number and (on timed
// engines) its absolute insert timestamp in unix nanoseconds.
type TailRow struct {
	P   []float64
	W   float64
	Seq uint64
	T   int64
}

// ReplicaBatch is one consistent pull of everything a follower at
// (fence, delete-pos) is missing: whole sealed segments encoded as
// self-contained v7 streams, loose rows (memtable tail plus rows
// extracted from segments that straddle the fence), and the seqs deleted
// since the follower's delete position. NextSeq and DeletePos are the
// leader's counters at capture time — the follower's new fence is
// NextSeq−1 once the batch is applied, which also covers ids that were
// inserted and deleted again between two pulls (those ship as neither
// row nor segment, only as a delete-log entry).
type ReplicaBatch struct {
	Segments  [][]byte
	Rows      []TailRow
	Deletes   []uint64
	NextSeq   uint64
	DeletePos uint64
}

// logDeleteLocked appends one deleted seq to the bounded delete log,
// trimming the oldest half on overflow. Called with mu held on every
// successful Delete.
func (sh *dynShared) logDeleteLocked(seq uint64) {
	if len(sh.delLog) >= replicaDelLogCap {
		trim := len(sh.delLog) / 2
		kept := make([]uint64, len(sh.delLog)-trim)
		copy(kept, sh.delLog[trim:])
		sh.delLog = kept
		sh.delLogBase += uint64(trim)
	}
	sh.delLog = append(sh.delLog, seq)
}

// DeletePos returns the leader's current delete-log position — the total
// number of deletes ever applied. A fresh follower records it before
// taking a snapshot so its first incremental pull starts exactly where
// the snapshot's state ends.
func (d *DynamicEngine) DeletePos() uint64 {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.delLogBase + uint64(len(sh.delLog))
}

// DeletesSince returns the seqs deleted at or after position pos (in
// deletion order) and the new position. It fails with ErrReplicaResync
// when pos predates the bounded log's trimmed head — the follower missed
// deletes it can never recover incrementally.
func (d *DynamicEngine) DeletesSince(pos uint64) ([]uint64, uint64, error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.deletesSinceLocked(pos)
}

func (sh *dynShared) deletesSinceLocked(pos uint64) ([]uint64, uint64, error) {
	cur := sh.delLogBase + uint64(len(sh.delLog))
	if pos > cur {
		return nil, 0, fmt.Errorf("karl: delete position %d is ahead of the log (at %d)", pos, cur)
	}
	if pos < sh.delLogBase {
		return nil, 0, fmt.Errorf("%w: delete log trimmed past position %d (oldest retained %d)", ErrReplicaResync, pos, sh.delLogBase)
	}
	out := append([]uint64(nil), sh.delLog[pos-sh.delLogBase:]...)
	return out, cur, nil
}

// replicaSegment is one sealed segment selected for whole shipping,
// captured under the lock and encoded outside it (segments are
// immutable; only the tombstone subset needs copying).
type replicaSegment struct {
	seg   *segment.Segment
	tombs []uint64 // sorted seqs of tombstones shadowing rows of this segment
}

// replicaExportLocked classifies every sealed segment against the fence:
// fully below → skip, fully above → ship whole, straddling → extract the
// rows above the fence individually. Coreset segments have no per-row
// seqs, so they ship whole at fence 0 and force a resync otherwise;
// straddlers on timed engines force a resync too (per-row replay cannot
// reproduce decay state anchored to the segment's time reference).
// Called with mu held and sealing/draining waited out.
func (sh *dynShared) replicaExportLocked(fence uint64) ([]replicaSegment, []TailRow, error) {
	var segs []replicaSegment
	var rows []TailRow
	for _, s := range sh.man.Segs {
		if s.Seqs == nil {
			if fence != 0 {
				return nil, nil, fmt.Errorf("%w: segment %d is a coreset (no per-row seqs)", ErrReplicaResync, s.ID)
			}
			segs = append(segs, replicaSegment{seg: s})
			continue
		}
		minSeq, maxSeq := s.Seqs[0], s.Seqs[len(s.Seqs)-1]
		if maxSeq <= fence {
			continue // follower already has every row of this segment
		}
		if minSeq > fence {
			rs := replicaSegment{seg: s}
			for seq := range sh.tombs {
				if _, ok := s.Find(seq); ok {
					rs.tombs = append(rs.tombs, seq)
				}
			}
			sort.Slice(rs.tombs, func(i, j int) bool { return rs.tombs[i] < rs.tombs[j] })
			segs = append(segs, rs)
			continue
		}
		// Straddler: the follower holds a prefix of this segment's rows.
		if sh.timed() {
			return nil, nil, fmt.Errorf("%w: segment %d straddles fence %d on a timed engine", ErrReplicaResync, s.ID, fence)
		}
		lo := sort.Search(len(s.Seqs), func(i int) bool { return s.Seqs[i] > fence })
		for i := lo; i < len(s.Seqs); i++ {
			seq := s.Seqs[i]
			if _, dead := sh.tombs[seq]; dead {
				continue
			}
			// Seqs is insertion-ordered while the tree stores rows in leaf
			// order; Find maps the seq to its storage row — indexing the
			// tree with i would ship the wrong point under this seq.
			row, ok := s.Find(seq)
			if !ok {
				return nil, nil, fmt.Errorf("karl: segment %d does not store its own seq %d", s.ID, seq)
			}
			w := 1.0
			if s.Tree.Weights != nil {
				w = s.Tree.Weights[row]
			}
			rows = append(rows, TailRow{
				P:   append([]float64(nil), s.Tree.Points.Row(row)...),
				W:   w,
				Seq: seq,
			})
		}
	}
	return segs, rows, nil
}

// segmentStreamPayload re-encodes one sealed segment (plus the
// tombstones still shadowing its rows) as a self-contained v7 dynamic
// payload: the same stream format a full WriteTo produces, restricted to
// a single segment and an empty memtable, so InstallSegmentStream can
// reuse ReadDynamic's full validation. Safe to call without the lock on
// the captured replicaSegment (segments are immutable); tombSnap maps
// seq → tombstone and must be a copy taken under the lock.
func (sh *dynShared) segmentStreamPayload(rs replicaSegment, tombSnap map[uint64]tombstone, kind IndexKind, method Method) dynamicPayload {
	s := rs.seg
	p := dynamicPayload{
		Version:     persistVersion,
		Dims:        s.Tree.Dims(),
		Kernel:      sh.kern,
		Kind:        kind,
		LeafCap:     sh.bcfg.LeafCap,
		Method:      method,
		SealSize:    sh.policy.SealSize,
		Fanout:      sh.policy.Fanout,
		AutoCompact: sh.autoCompact,
		ColdEps:     sh.policy.ColdEps,
		ColdMin:     sh.policy.ColdMin,
		ColdSeed:    sh.coldSeed,
		Epoch:       1,
		NextID:      s.ID + 1,
		TTL:         sh.ttl,
		HalfLife:    int64(sh.halfLife),
		Deletes:     len(rs.tombs),
		LeafFloat32: sh.bcfg.Leaf32,
	}
	p.Segments = []segmentPayload{{
		Engine:  treePayload(s.Tree, sh.kern, method),
		ID:      s.ID,
		Coreset: s.Coreset,
		Eps:     s.Eps,
		Seqs:    append([]uint64(nil), s.Seqs...),
		Times:   append([]int64(nil), s.Times...),
		TimeRef: s.TimeRef,
	}}
	if s.Seqs != nil {
		p.NextSeq = s.Seqs[len(s.Seqs)-1] + 1
	} else {
		p.NextSeq = 1
	}
	if len(rs.tombs) > 0 {
		p.TombSeqs = append([]uint64(nil), rs.tombs...)
		p.TombW = make([]float64, len(rs.tombs))
		p.TombRef = make([]int64, len(rs.tombs))
		p.TombPts = make([]float64, 0, len(rs.tombs)*p.Dims)
		for i, seq := range rs.tombs {
			tb := tombSnap[seq]
			p.TombW[i] = tb.w
			p.TombRef[i] = tb.ref
			p.TombPts = append(p.TombPts, tb.p...)
		}
	}
	return p
}

// exportConfigLocked snapshots the pieces of shared state the encoders
// need after the lock is released.
func (sh *dynShared) exportConfigLocked() (kind IndexKind, method Method, tombSnap map[uint64]tombstone) {
	kind = publicIndexKind(sh.bcfg.Kind)
	method = MethodKARL
	if sh.method == methodOf(MethodSOTA) {
		method = MethodSOTA
	}
	tombSnap = make(map[uint64]tombstone, len(sh.tombs))
	for seq, tb := range sh.tombs {
		tombSnap[seq] = tb
	}
	return kind, method, tombSnap
}

func encodeSegmentStreams(sh *dynShared, segs []replicaSegment, tombSnap map[uint64]tombstone, kind IndexKind, method Method) ([][]byte, error) {
	out := make([][]byte, len(segs))
	for i, rs := range segs {
		var buf bytes.Buffer
		p := sh.segmentStreamPayload(rs, tombSnap, kind, method)
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			return nil, fmt.Errorf("karl: encode replica segment %d: %w", rs.seg.ID, err)
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// SegmentsSince returns every sealed segment the follower at fence is
// missing, each encoded as a self-contained v7 stream, plus loose rows
// extracted from segments that straddle the fence. It waits out an
// in-flight seal so the memtable is the only state not covered.
func (d *DynamicEngine) SegmentsSince(fence uint64) ([][]byte, []TailRow, error) {
	sh := d.sh
	sh.mu.Lock()
	for sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		return nil, nil, errors.New("karl: engine is closed")
	}
	segs, rows, err := sh.replicaExportLocked(fence)
	if err != nil {
		sh.mu.Unlock()
		return nil, nil, err
	}
	kind, method, tombSnap := sh.exportConfigLocked()
	sh.mu.Unlock()
	streams, err := encodeSegmentStreams(sh, segs, tombSnap, kind, method)
	if err != nil {
		return nil, nil, err
	}
	return streams, rows, nil
}

// TailSince returns the live memtable rows above the fence — the tail a
// follower replays after installing every sealed segment.
func (d *DynamicEngine) TailSince(fence uint64) ([]TailRow, error) {
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if sh.closed {
		return nil, errors.New("karl: engine is closed")
	}
	return sh.memTailLocked(fence), nil
}

func (sh *dynShared) memTailLocked(fence uint64) []TailRow {
	mt := sh.mem
	if mt == nil {
		return nil
	}
	var rows []TailRow
	for i := 0; i < mt.n; i++ {
		if mt.seq[i] <= fence {
			continue
		}
		r := TailRow{
			P:   append([]float64(nil), mt.m.Row(i)...),
			W:   mt.w[i],
			Seq: mt.seq[i],
		}
		if mt.t != nil {
			r.T = mt.t[i]
		}
		rows = append(rows, r)
	}
	return rows
}

// PullBatch captures, in one consistent snapshot, everything a follower
// at (fence, delPos) is missing: missing sealed segments, the loose-row
// tail, and the delete log since delPos. The follower applies segments,
// then rows, then deletes, then advances its fence to NextSeq−1 and its
// delete position to DeletePos.
func (d *DynamicEngine) PullBatch(fence, delPos uint64) (*ReplicaBatch, error) {
	sh := d.sh
	sh.mu.Lock()
	for sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		return nil, errors.New("karl: engine is closed")
	}
	segs, rows, err := sh.replicaExportLocked(fence)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	dels, newPos, err := sh.deletesSinceLocked(delPos)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	rows = append(rows, sh.memTailLocked(fence)...)
	nextSeq := sh.nextSeq
	kind, method, tombSnap := sh.exportConfigLocked()
	sh.mu.Unlock()
	streams, err := encodeSegmentStreams(sh, segs, tombSnap, kind, method)
	if err != nil {
		return nil, err
	}
	return &ReplicaBatch{
		Segments:  streams,
		Rows:      rows,
		Deletes:   dels,
		NextSeq:   nextSeq,
		DeletePos: newPos,
	}, nil
}

// decodedSegment is one replica segment stream after the validation
// decode: the segment itself plus the source state carrying its
// tombstones and configuration.
type decodedSegment struct {
	src *dynShared
	seg *segment.Segment
}

// minSeq is the segment's lowest row seq; 0 for coresets (which only
// ever ship to an empty follower and therefore sort first).
func (ds *decodedSegment) minSeq() uint64 {
	if ds.seg.Seqs == nil {
		return 0
	}
	return ds.seg.Seqs[0]
}

// decodeReplicaSegment validates one self-contained segment stream (as
// produced by SegmentsSince / PullBatch) without touching the follower.
func decodeReplicaSegment(data []byte) (*decodedSegment, error) {
	d2, err := ReadDynamic(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("karl: replica segment stream: %w", err)
	}
	src := d2.sh
	if len(src.man.Segs) != 1 || src.mem.len() != 0 {
		return nil, fmt.Errorf("karl: replica segment stream must carry exactly one segment and no memtable (got %d segments, %d memtable rows)", len(src.man.Segs), src.mem.len())
	}
	return &decodedSegment{src: src, seg: src.man.Segs[0]}, nil
}

// InstallSegmentStream installs one self-contained segment stream (as
// produced by SegmentsSince / PullBatch) into the follower: the segment
// is re-identified under the follower's id counter, its tombstones are
// adopted, and the seq counter jumps past the segment's rows. A stream
// whose rows the follower already holds is skipped silently (idempotent
// redelivery); a partial overlap is corruption and fails.
func (d *DynamicEngine) InstallSegmentStream(data []byte) error {
	ds, err := decodeReplicaSegment(data)
	if err != nil {
		return err
	}
	return d.installReplicaSegment(ds)
}

func (d *DynamicEngine) installReplicaSegment(ds *decodedSegment) error {
	src, seg := ds.src, ds.seg
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.sealing != nil || sh.draining {
		sh.cond.Wait()
	}
	if sh.closed {
		return errors.New("karl: engine is closed")
	}
	if err := sh.compactErrLocked(); err != nil {
		return err
	}
	if sh.kern != src.kern {
		return fmt.Errorf("karl: replica segment stream kernel %+v differs from engine kernel %+v", src.kern, sh.kern)
	}
	if sh.dims != 0 && seg.Tree.Dims() != sh.dims {
		return fmt.Errorf("karl: replica segment has %d dims, engine has %d", seg.Tree.Dims(), sh.dims)
	}
	if seg.Seqs != nil {
		minSeq, maxSeq := seg.Seqs[0], seg.Seqs[len(seg.Seqs)-1]
		if maxSeq < sh.nextSeq {
			return nil // already installed: idempotent redelivery
		}
		if minSeq < sh.nextSeq {
			return fmt.Errorf("karl: replica segment seqs [%d,%d] partially overlap applied prefix (next seq %d)", minSeq, maxSeq, sh.nextSeq)
		}
		sh.nextSeq = maxSeq + 1
	} else if sh.man.Len() != 0 || sh.mem.len() != 0 || sh.nextSeq > 1 {
		return fmt.Errorf("%w: coreset segment stream onto a non-empty follower", ErrReplicaResync)
	}
	if sh.dims == 0 {
		sh.dims = seg.Tree.Dims()
	}
	id := sh.nextID
	sh.nextID++
	installed := segment.New(seg.Tree, id, seg.Coreset, seg.Eps, seg.Seqs, seg.Times, seg.TimeRef)
	for seq, tb := range src.tombs {
		if _, dup := sh.tombs[seq]; dup {
			return fmt.Errorf("karl: replica segment stream repeats tombstone %d", seq)
		}
		sh.tombs[seq] = tb
		sh.deletes++
		sh.delLogBase++ // pre-snapshot deletes: never replayed incrementally
	}
	sh.man = sh.man.WithSealed(installed)
	sh.seals++
	sh.maybeCompactLocked()
	return nil
}

// ApplyRows replays leader rows on the follower with their original
// sequence numbers and timestamps. Rows at or below the follower's seq
// counter are skipped (idempotent redelivery); the applied count is
// returned. Rows must arrive in ascending seq order.
func (d *DynamicEngine) ApplyRows(rows []TailRow) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	dims := 0
	for i, r := range rows {
		if err := validateInsert(r.P, r.W); err != nil {
			return 0, err
		}
		if r.Seq == 0 {
			return 0, fmt.Errorf("karl: replica row %d has seq 0", i)
		}
		if i > 0 && r.Seq <= rows[i-1].Seq {
			return 0, fmt.Errorf("karl: replica rows not ascending (seq %d after %d)", r.Seq, rows[i-1].Seq)
		}
		if dims == 0 {
			dims = len(r.P)
		} else if len(r.P) != dims {
			return 0, fmt.Errorf("karl: replica row %d has %d dims, batch has %d", i, len(r.P), dims)
		}
	}
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.insertReadyLocked(dims); err != nil {
		return 0, err
	}
	applied := 0
	for _, r := range rows {
		if r.Seq < sh.nextSeq {
			continue
		}
		if err := sh.applyRowLocked(r); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// applyRowLocked lands one leader row with an explicit seq and time —
// the replication twin of insertRowLocked. Called with mu held; may
// release it while waiting for room or sealing.
func (sh *dynShared) applyRowLocked(r TailRow) error {
	for sh.draining || (sh.mem != nil && sh.mem.n >= sh.policy.SealSize) {
		sh.cond.Wait()
		if sh.closed {
			return errors.New("karl: engine is closed")
		}
	}
	if sh.mem == nil {
		sh.mem = newMemtable(sh.policy.SealSize, sh.dims, sh.timed())
	}
	sh.nextSeq = r.Seq + 1
	mt := sh.mem
	copy(mt.m.Row(mt.n), r.P)
	mt.w[mt.n] = r.W
	mt.seq[mt.n] = r.Seq
	if mt.t != nil {
		if r.T != 0 {
			mt.t[mt.n] = r.T
		} else {
			mt.t[mt.n] = sh.now()
		}
	}
	mt.n++
	if mt.n >= sh.policy.SealSize {
		return sh.sealLocked()
	}
	return nil
}

// ApplyBatch applies one PullBatch — segments and rows interleaved in
// global seq order, then deletes — and reports the follower's new fence.
// Order matters: installing a segment advances the idempotent-redelivery
// fence past every lower seq, so loose rows extracted from an OLDER
// straddling segment must land before any newer whole segment or they
// would be skipped as duplicates and lost. Deletes of ids the follower
// never held (inserted and deleted between two pulls, or physically
// dropped memtable rows) are ignored.
func (d *DynamicEngine) ApplyBatch(b *ReplicaBatch) (fence uint64, err error) {
	segs := make([]*decodedSegment, 0, len(b.Segments))
	for _, data := range b.Segments {
		ds, err := decodeReplicaSegment(data)
		if err != nil {
			return 0, err
		}
		segs = append(segs, ds)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].minSeq() < segs[j].minSeq() })
	rows := b.Rows
	for _, ds := range segs {
		cut := sort.Search(len(rows), func(i int) bool { return rows[i].Seq >= ds.minSeq() })
		if _, err := d.ApplyRows(rows[:cut]); err != nil {
			return 0, err
		}
		rows = rows[cut:]
		if err := d.installReplicaSegment(ds); err != nil {
			return 0, err
		}
	}
	if _, err := d.ApplyRows(rows); err != nil {
		return 0, err
	}
	for _, seq := range b.Deletes {
		if err := d.Delete(seq); err != nil && !errors.Is(err, ErrPointNotFound) {
			return 0, err
		}
	}
	// The leader's seq counter may be ahead of the last shipped row (rows
	// inserted then deleted ship only as delete-log entries); adopt it so
	// the next pull's fence doesn't re-request them.
	sh := d.sh
	sh.mu.Lock()
	if b.NextSeq > sh.nextSeq {
		sh.nextSeq = b.NextSeq
	}
	fence = sh.nextSeq - 1
	sh.mu.Unlock()
	return fence, nil
}

// InstallSnapshot replaces an EMPTY follower engine's state with a full
// leader snapshot (a WriteTo stream): configuration, manifest, memtable,
// tombstones and counters are adopted wholesale; only runtime plumbing
// (clock, batch executor, worker counts) is kept. The follower's delete
// position after installation is the leader's DeletePos captured before
// the snapshot was taken.
func (d *DynamicEngine) InstallSnapshot(r io.Reader) error {
	d2, err := ReadDynamic(r)
	if err != nil {
		return fmt.Errorf("karl: replica snapshot: %w", err)
	}
	src := d2.sh
	sh := d.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return errors.New("karl: engine is closed")
	}
	if sh.man.Len() != 0 || sh.mem.len() != 0 || sh.nextSeq > 1 || len(sh.tombs) > 0 ||
		sh.sealing != nil || sh.draining || sh.compacting {
		return errors.New("karl: snapshot install requires an empty, idle engine")
	}
	sh.kern = src.kern
	sh.method = src.method
	sh.bcfg = src.bcfg
	sh.policy = src.policy
	sh.coldSeed = src.coldSeed
	sh.autoCompact = src.autoCompact
	sh.ttl = src.ttl
	sh.halfLife = src.halfLife
	sh.dims = src.dims
	sh.man = src.man
	sh.mem = src.mem
	sh.nextSeq = src.nextSeq
	sh.nextID = src.nextID
	sh.seals = src.seals
	sh.compactions = src.compactions
	sh.deletes = src.deletes
	sh.delLog = nil
	sh.delLogBase = src.delLogBase
	sh.tombs = src.tombs
	// The kernel configuration above may differ from what this engine
	// was constructed with; bumping the generation makes every live view
	// (and pooled clone) rebuild its forest before the next answer
	// instead of refining with the superseded kernel.
	sh.cfgGen++
	return nil
}
