// Command karl-sketch builds and inspects error-bounded coresets offline,
// so the expensive reduction runs once and the small engine ships to the
// serving fleet.
//
// Build a coreset engine file from raw vectors:
//
//	karl-sketch -points data.txt -gamma 2 -eps 0.1 -out sketch.karl
//	karl-sketch -points data.txt -scott -eps 0.1 -method halving -out sketch.karl
//	karl-sketch -points data.txt -weights w.txt -gamma 2 -eps 0.1 -out sketch.karl
//
// Inspect any saved engine (full or sketched — provenance is printed when
// present):
//
//	karl-sketch -inspect sketch.karl
//
// Print the size-vs-ε curve for a dataset without writing anything:
//
//	karl-sketch -points data.txt -gamma 2 -curve 0.05,0.1,0.2,0.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"karl"
)

func main() {
	var (
		points  = flag.String("points", "", "whitespace-separated vectors, one per line")
		weights = flag.String("weights", "", "optional per-point weights, one per line (Type II)")
		gamma   = flag.Float64("gamma", 1, "Gaussian kernel gamma")
		scott   = flag.Bool("scott", false, "derive gamma from Scott's rule instead of -gamma")
		eps     = flag.Float64("eps", 0.1, "normalized error bound ε of the sketch")
		method  = flag.String("method", "auto", "construction: auto, uniform, halving or sensitivity")
		seed    = flag.Int64("seed", 1, "construction seed (reproducible sketches)")
		out     = flag.String("out", "", "write the coreset engine to this file")
		inspect = flag.String("inspect", "", "print a saved engine's shape and sketch provenance")
		curve   = flag.String("curve", "", "comma-separated ε list: print the size-vs-ε curve and exit")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := runInspect(*inspect); err != nil {
			log.Fatalf("karl-sketch: %v", err)
		}
	case *points != "":
		if err := runBuild(*points, *weights, *gamma, *scott, *eps, *method, *seed, *out, *curve); err != nil {
			log.Fatalf("karl-sketch: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "karl-sketch: need -points or -inspect")
		flag.Usage()
		os.Exit(2)
	}
}

func runInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	eng, err := karl.ReadEngine(f)
	if err != nil {
		return err
	}
	k := eng.Kernel()
	fmt.Printf("points:  %d\n", eng.Len())
	fmt.Printf("dims:    %d\n", eng.Dims())
	fmt.Printf("kernel:  %v (gamma %g)\n", k.Kind, k.Gamma)
	if info, ok := eng.SketchInfo(); ok {
		fmt.Printf("sketch:  %s coreset of %d source points (total weight %g)\n",
			info.Method, info.SourceLen, info.SourceWeight)
		fmt.Printf("         ε = %g, reduction %.1fx\n",
			info.Eps, float64(info.SourceLen)/float64(info.Len))
		switch info.Basis {
		case karl.SketchBasisHoeffding:
			fmt.Printf("         basis: hoeffding (per-query probability ≥ 1−δ, δ = %g)\n", info.Delta)
		case karl.SketchBasisExact:
			fmt.Println("         basis: exact (identity sketch, zero error)")
		case karl.SketchBasisEmpirical:
			fmt.Println("         basis: empirical (validation-backed, not a theorem)")
		default:
			fmt.Println("         basis: unknown (file predates basis recording)")
		}
	} else {
		fmt.Println("sketch:  none (full-set engine)")
	}
	return nil
}

func runBuild(pointsPath, weightsPath string, gamma float64, scott bool, eps float64, methodName string, seed int64, out, curve string) error {
	rows, err := readVectors(pointsPath)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no vectors in %s", pointsPath)
	}
	method, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	opts := []karl.Option{karl.WithCoresetMethod(method), karl.WithCoresetSeed(seed)}
	if weightsPath != "" {
		w, err := readScalars(weightsPath)
		if err != nil {
			return err
		}
		if len(w) != len(rows) {
			return fmt.Errorf("%d weights for %d points", len(w), len(rows))
		}
		opts = append(opts, karl.WithWeights(w))
	}
	kern := karl.Gaussian(gamma)
	if scott {
		k, err := karl.NewKDE(rows)
		if err != nil {
			return err
		}
		kern = karl.Gaussian(k.Gamma())
	}

	if curve != "" {
		return runCurve(rows, kern, curve, opts)
	}

	eng, err := karl.BuildCoreset(rows, kern, eps, opts...)
	if err != nil {
		return err
	}
	info, _ := eng.SketchInfo()
	fmt.Printf("sketched %d -> %d points (%.1fx) with %s at ε=%g\n",
		info.SourceLen, info.Len, float64(info.SourceLen)/float64(info.Len), info.Method, info.Eps)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := eng.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, n)
	return nil
}

func runCurve(rows [][]float64, kern karl.Kernel, curve string, opts []karl.Option) error {
	fmt.Printf("%10s %10s %12s\n", "eps", "points", "reduction")
	for _, field := range strings.Split(curve, ",") {
		eps, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return fmt.Errorf("bad curve entry %q: %w", field, err)
		}
		eng, err := karl.BuildCoreset(rows, kern, eps, opts...)
		if err != nil {
			return err
		}
		info, _ := eng.SketchInfo()
		fmt.Printf("%10.3f %10d %11.1fx\n", eps, info.Len, float64(info.SourceLen)/float64(info.Len))
	}
	return nil
}

func parseMethod(s string) (karl.CoresetMethod, error) {
	switch s {
	case "auto":
		return karl.CoresetAuto, nil
	case "uniform":
		return karl.CoresetUniform, nil
	case "halving":
		return karl.CoresetHalving, nil
	case "sensitivity":
		return karl.CoresetSensitivity, nil
	}
	return 0, fmt.Errorf("unknown method %q (want auto, uniform, halving or sensitivity)", s)
}

func readVectors(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for i, fv := range fields {
			v, err := strconv.ParseFloat(fv, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", fv, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

func readScalars(path string) ([]float64, error) {
	rows, err := readVectors(path)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		if len(r) != 1 {
			return nil, fmt.Errorf("weight line %d has %d fields, want 1", i+1, len(r))
		}
		out[i] = r[0]
	}
	return out, nil
}
