// Command karl-train trains an SVM (1-class or 2-class) on labelled
// vectors and reports the resulting kernel aggregation model: support
// vector count, ρ, and training/holdout accuracy. Input rows are
// whitespace-separated; for 2-class training the first column is the ±1
// label.
//
// Usage:
//
//	karl-train -mode 2class -in train.txt -c 1 -gamma 0.5
//	karl-train -mode 1class -in points.txt -nu 0.1
//	karl-train -mode 2class -demo          # built-in synthetic demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"karl"
	"karl/internal/kernel"
	"karl/internal/svm"
	"karl/internal/vec"
)

func main() {
	var (
		mode  = flag.String("mode", "2class", "1class or 2class")
		in    = flag.String("in", "", "input file (default stdin)")
		demo  = flag.Bool("demo", false, "train on a built-in synthetic problem")
		c     = flag.Float64("c", 1, "2-class soft margin C")
		nu    = flag.Float64("nu", 0.5, "1-class nu")
		gamma = flag.Float64("gamma", 0, "Gaussian gamma (default 1/d)")
		out   = flag.String("out", "", "write the trained model (KARL engine + rho) to this file")
	)
	flag.Parse()

	var x *vec.Matrix
	var y []float64
	var err error
	if *demo {
		x, y = demoData(*mode)
	} else {
		x, y, err = loadData(*in, *mode == "2class")
		if err != nil {
			fatal(err)
		}
	}
	g := *gamma
	if g <= 0 {
		g = 1 / float64(x.Cols)
	}
	cfg := svm.Config{Kernel: kernel.NewGaussian(g), C: *c, Nu: *nu}

	var model *svm.Model
	switch *mode {
	case "2class":
		model, err = svm.TrainTwoClass(x, y, cfg)
	case "1class":
		model, err = svm.TrainOneClass(x, cfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := saveModel(*out, model); err != nil {
			fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
	}
	fmt.Printf("trained %s SVM: n=%d d=%d gamma=%.6g\n", *mode, x.Rows, x.Cols, g)
	fmt.Printf("support vectors: %d (%.1f%% of training set)\n",
		model.SV.Rows, 100*float64(model.SV.Rows)/float64(x.Rows))
	fmt.Printf("rho: %.6g   SMO iterations: %d   kernel evals: %d\n",
		model.Rho, model.Iters, model.KernelEvals)
	if *mode == "2class" {
		var correct int
		for i := 0; i < x.Rows; i++ {
			if float64(model.Predict(x.Row(i))) == y[i] {
				correct++
			}
		}
		fmt.Printf("training accuracy: %.2f%%\n", 100*float64(correct)/float64(x.Rows))
	} else {
		var inliers int
		for i := 0; i < x.Rows; i++ {
			if model.Predict(x.Row(i)) == 1 {
				inliers++
			}
		}
		fmt.Printf("training inlier rate: %.2f%% (1−ν ≈ %.2f%%)\n",
			100*float64(inliers)/float64(x.Rows), 100*(1-*nu))
	}
}

func demoData(mode string) (*vec.Matrix, []float64) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	x := vec.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sign := 1.0
		if mode == "2class" && i%2 == 1 {
			sign = -1
		}
		y[i] = sign
		for j := 0; j < 3; j++ {
			x.Row(i)[j] = sign + rng.NormFloat64()*0.4
		}
	}
	return x, y
}

func loadData(in string, labelled bool) (*vec.Matrix, []float64, error) {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	var rows [][]float64
	var labels []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("parse %q: %w", f, err)
			}
			vals[i] = v
		}
		if labelled {
			labels = append(labels, vals[0])
			rows = append(rows, vals[1:])
		} else {
			rows = append(rows, vals)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no input rows")
	}
	return vec.FromRows(rows), labels, nil
}

// saveModel persists the trained model as a KARL SVM file readable by
// karl.ReadSVM (and karl-predict).
func saveModel(path string, model *svm.Model) error {
	rows := make([][]float64, model.SV.Rows)
	for i := range rows {
		rows[i] = model.SV.Row(i)
	}
	s, err := karl.NewSVM(rows, model.Weights, model.Rho, model.Kernel)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := s.WriteTo(f); err != nil {
		return err
	}
	return f.Sync()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karl-train: %v\n", err)
	os.Exit(1)
}
