// Command karl-predict classifies vectors with a saved SVM model (from
// karl-train -out). Input rows are whitespace-separated vectors on stdin
// or -in; each output line is the predicted label (+1/-1), optionally with
// the decision value.
//
// Usage:
//
//	karl-train -mode 2class -demo -out model.karl
//	karl-predict -model model.karl -values < queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"karl"
)

func main() {
	var (
		modelPath = flag.String("model", "", "saved SVM model file (required)")
		in        = flag.String("in", "", "input vectors (default stdin)")
		values    = flag.Bool("values", false, "also print decision values")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "karl-predict: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := karl.ReadSVM(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		inf, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer inf.Close()
		r = inf
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		q := make([]float64, len(fields))
		for i, fv := range fields {
			v, err := strconv.ParseFloat(fv, 64)
			if err != nil {
				fatal(fmt.Errorf("line %d: parse %q: %w", line, fv, err))
			}
			q[i] = v
		}
		positive, err := model.Classify(q)
		if err != nil {
			fatal(fmt.Errorf("line %d: %w", line, err))
		}
		label := -1
		if positive {
			label = 1
		}
		if *values {
			d, err := model.Decision(q)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%+d %.6g\n", label, d)
		} else {
			fmt.Fprintf(w, "%+d\n", label)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karl-predict: %v\n", err)
	os.Exit(1)
}
