// Command karl-kde renders the kernel density surface of a dataset over
// two chosen dimensions (the paper's Figure 1), reading points as
// whitespace-separated vectors from a file or stdin and writing either an
// ASCII heatmap or CSV.
//
// Usage:
//
//	karl-kde -in points.txt -dimx 0 -dimy 1 -res 40 -format csv
//	karl-kde -synthetic miniboone -res 32
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"karl/internal/dataset"
	"karl/internal/kde"
	"karl/internal/vec"
)

func main() {
	var (
		in        = flag.String("in", "", "input file of whitespace-separated vectors (default stdin)")
		synthetic = flag.String("synthetic", "", "use a synthetic stand-in dataset by name instead of -in")
		dimX      = flag.Int("dimx", 0, "first grid dimension")
		dimY      = flag.Int("dimy", 1, "second grid dimension")
		res       = flag.Int("res", 32, "grid resolution per axis")
		format    = flag.String("format", "ascii", "output format: ascii or csv")
		gamma     = flag.Float64("gamma", 0, "Gaussian gamma (default: Scott's rule)")
	)
	flag.Parse()

	pts, err := loadPoints(*in, *synthetic)
	if err != nil {
		fatal(err)
	}
	g := *gamma
	if g <= 0 {
		if g, err = kde.ScottGamma(pts); err != nil {
			fatal(err)
		}
	}
	est, err := kde.NewEstimator(pts, g)
	if err != nil {
		fatal(err)
	}
	lo, hi := columnRange(pts, *dimX)
	loY, hiY := columnRange(pts, *dimY)
	grid, err := est.Grid2D(*dimX, *dimY, *res, lo, hi, loY, hiY)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for iy := 0; iy < *res; iy++ {
			cells := make([]string, *res)
			for ix := 0; ix < *res; ix++ {
				cells[ix] = strconv.FormatFloat(grid[iy**res+ix], 'g', 6, 64)
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
		}
	case "ascii":
		printASCII(os.Stdout, grid, *res)
		fmt.Printf("gamma=%.6g dims=(%d,%d) n=%d\n", g, *dimX, *dimY, pts.Rows)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func loadPoints(in, synthetic string) (*vec.Matrix, error) {
	if synthetic != "" {
		spec, err := dataset.ByName(synthetic)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, dataset.Options{})
		if err != nil {
			return nil, err
		}
		return ds.Points, nil
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no input points")
	}
	return vec.FromRows(rows), nil
}

func columnRange(m *vec.Matrix, col int) (lo, hi float64) {
	lo, hi = m.Row(0)[col], m.Row(0)[col]
	for i := 1; i < m.Rows; i++ {
		v := m.Row(i)[col]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func printASCII(w io.Writer, grid []float64, res int) {
	var max float64
	for _, v := range grid {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	shades := []byte(" .:-=+*#%@")
	for iy := res - 1; iy >= 0; iy-- {
		line := make([]byte, res)
		for ix := 0; ix < res; ix++ {
			line[ix] = shades[int(grid[iy*res+ix]/max*float64(len(shades)-1))]
		}
		fmt.Fprintf(w, "%s\n", line)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karl-kde: %v\n", err)
	os.Exit(1)
}
