// Command karl-kde renders the kernel density surface of a dataset over
// two chosen dimensions (the paper's Figure 1), reading points as
// whitespace-separated vectors from a file or stdin and writing either an
// ASCII heatmap or CSV.
//
// Usage:
//
//	karl-kde -in points.txt -dimx 0 -dimy 1 -res 40 -format csv
//	karl-kde -synthetic miniboone -res 32
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"karl"
	"karl/internal/dataset"
	"karl/internal/kde"
	"karl/internal/vec"
)

func main() {
	var (
		in        = flag.String("in", "", "input file of whitespace-separated vectors (default stdin)")
		synthetic = flag.String("synthetic", "", "use a synthetic stand-in dataset by name instead of -in")
		dimX      = flag.Int("dimx", 0, "first grid dimension")
		dimY      = flag.Int("dimy", 1, "second grid dimension")
		res       = flag.Int("res", 32, "grid resolution per axis")
		format    = flag.String("format", "ascii", "output format: ascii or csv")
		gamma     = flag.Float64("gamma", 0, "Gaussian gamma (default: Scott's rule)")
		eps       = flag.Float64("eps", 0.05, "relative error budget for grid evaluation through the indexed batch engine (0 = exact direct summation)")
	)
	flag.Parse()

	pts, err := loadPoints(*in, *synthetic)
	if err != nil {
		fatal(err)
	}
	g := *gamma
	if g <= 0 {
		if g, err = kde.ScottGamma(pts); err != nil {
			fatal(err)
		}
	}
	est, err := kde.NewEstimator(pts, g)
	if err != nil {
		fatal(err)
	}
	lo, hi := columnRange(pts, *dimX)
	loY, hiY := columnRange(pts, *dimY)
	var grid []float64
	if *eps > 0 {
		// Indexed evaluation: the whole grid goes through one batch call, so
		// the engine's dual-tree executor shares bound refinement across the
		// (spatially coherent) grid queries instead of answering each cell
		// independently.
		grid, err = approxGrid(pts, g, *dimX, *dimY, *res, lo, hi, loY, hiY, *eps)
	} else {
		grid, err = est.Grid2D(*dimX, *dimY, *res, lo, hi, loY, hiY)
	}
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for iy := 0; iy < *res; iy++ {
			cells := make([]string, *res)
			for ix := 0; ix < *res; ix++ {
				cells[ix] = strconv.FormatFloat(grid[iy**res+ix], 'g', 6, 64)
			}
			fmt.Fprintln(w, strings.Join(cells, ","))
		}
	case "ascii":
		printASCII(os.Stdout, grid, *res)
		fmt.Printf("gamma=%.6g dims=(%d,%d) n=%d\n", g, *dimX, *dimY, pts.Rows)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

// approxGrid renders the same row-major res×res density grid as
// Estimator.Grid2D, but each cell within relative error eps through the
// batch query engine (grid density values are 1/n-scaled aggregates, so the
// relative guarantee survives the scaling).
func approxGrid(pts *vec.Matrix, gamma float64, dimX, dimY, res int, loX, hiX, loY, hiY, eps float64) ([]float64, error) {
	d := pts.Cols
	if dimX < 0 || dimX >= d || dimY < 0 || dimY >= d || dimX == dimY {
		return nil, fmt.Errorf("bad grid dims %d,%d for %d-dimensional data", dimX, dimY, d)
	}
	if res < 2 {
		return nil, fmt.Errorf("grid resolution must be >= 2, got %d", res)
	}
	rows := make([][]float64, pts.Rows)
	for i := range rows {
		rows[i] = pts.Row(i)
	}
	eng, err := karl.Build(rows, karl.Gaussian(gamma))
	if err != nil {
		return nil, err
	}
	mean, _ := pts.ColumnStats()
	queries := make([][]float64, 0, res*res)
	for iy := 0; iy < res; iy++ {
		y := loY + (hiY-loY)*float64(iy)/float64(res-1)
		for ix := 0; ix < res; ix++ {
			q := vec.Clone(mean)
			q[dimY] = y
			q[dimX] = loX + (hiX-loX)*float64(ix)/float64(res-1)
			queries = append(queries, q)
		}
	}
	grid, err := eng.BatchApproximate(queries, eps, 0)
	if err != nil {
		return nil, err
	}
	w := 1 / float64(pts.Rows)
	for i := range grid {
		grid[i] *= w
	}
	return grid, nil
}

func loadPoints(in, synthetic string) (*vec.Matrix, error) {
	if synthetic != "" {
		spec, err := dataset.ByName(synthetic)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, dataset.Options{})
		if err != nil {
			return nil, err
		}
		return ds.Points, nil
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no input points")
	}
	return vec.FromRows(rows), nil
}

func columnRange(m *vec.Matrix, col int) (lo, hi float64) {
	lo, hi = m.Row(0)[col], m.Row(0)[col]
	for i := 1; i < m.Rows; i++ {
		v := m.Row(i)[col]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func printASCII(w io.Writer, grid []float64, res int) {
	var max float64
	for _, v := range grid {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	shades := []byte(" .:-=+*#%@")
	for iy := res - 1; iy >= 0; iy-- {
		line := make([]byte, res)
		for ix := 0; ix < res; ix++ {
			line[ix] = shades[int(grid[iy*res+ix]/max*float64(len(shades)-1))]
		}
		fmt.Fprintf(w, "%s\n", line)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karl-kde: %v\n", err)
	os.Exit(1)
}
