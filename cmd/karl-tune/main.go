// Command karl-tune reports the throughput of every (index, leaf capacity)
// candidate for a workload on a synthetic stand-in dataset — the data
// behind Figure 7 and Table VIII — and prints the configuration the
// offline tuner would pick.
//
// Usage:
//
//	karl-tune -dataset home -tau-mode mu
//	karl-tune -dataset nsl-kdd -queries 200
package main

import (
	"flag"
	"fmt"
	"os"

	"karl/internal/bound"
	"karl/internal/dataset"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/tuning"
)

func main() {
	var (
		name    = flag.String("dataset", "home", "synthetic stand-in dataset name")
		queries = flag.Int("queries", 100, "sampled query count")
		maxN    = flag.Int("maxn", 20000, "dataset size cap")
		scale   = flag.Float64("scale", 1.0/64, "dataset scale")
		seed    = flag.Int64("seed", 1, "generator seed")
		eps     = flag.Float64("eps", 0, "run an eKAQ workload with this relative error instead of TKAQ")
		method  = flag.String("method", "karl", "bounding method: karl or sota")
	)
	flag.Parse()

	spec, err := dataset.ByName(*name)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.Generate(spec, dataset.Options{Scale: *scale, MaxN: *maxN, Queries: *queries, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	kern := kernel.NewGaussian(ds.Gamma)
	w := tuning.Workload{Kernel: kern, Method: bound.KARL}
	if *method == "sota" {
		w.Method = bound.SOTA
	}
	if *eps > 0 {
		w.Mode = tuning.Approximate
		w.Eps = *eps
	} else {
		w.Mode = tuning.Threshold
		w.Tau = ds.Tau
		if ds.Tau == 0 { // Type I: τ = μ over the query set
			sc, err := scan.NewScanner(ds.Points, ds.Weights, kern)
			if err != nil {
				fatal(err)
			}
			var mu float64
			for i := 0; i < ds.Queries.Rows; i++ {
				mu += sc.Aggregate(ds.Queries.Row(i))
			}
			w.Tau = mu / float64(ds.Queries.Rows)
		}
	}

	results, err := tuning.Offline(ds.Points, ds.Weights, w, ds.Queries, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset=%s n=%d d=%d method=%v workload=%s\n",
		*name, ds.Points.Rows, ds.Points.Cols, w.Method, workloadString(w))
	fmt.Printf("%-10s %8s %14s %12s\n", "index", "leaf", "queries/sec", "build")
	for _, r := range results {
		fmt.Printf("%-10s %8d %14.1f %12v\n",
			r.Candidate.Kind, r.Candidate.LeafCap, r.Throughput, r.BuildTime.Round(1000))
	}
	best := results[0]
	fmt.Printf("\nrecommended: %s with leaf capacity %d (%.1f queries/sec)\n",
		best.Candidate.Kind, best.Candidate.LeafCap, best.Throughput)
}

func workloadString(w tuning.Workload) string {
	if w.Mode == tuning.Approximate {
		return fmt.Sprintf("eKAQ(eps=%.3g)", w.Eps)
	}
	return fmt.Sprintf("TKAQ(tau=%.5g)", w.Tau)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "karl-tune: %v\n", err)
	os.Exit(1)
}
