package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"karl"
)

// TestSplitInspectRoundTrip drives the command's core paths: split a
// saved engine into shard files plus manifest, reload every shard, and
// check the pieces sum back to the whole.
func TestSplitInspectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	eng, err := karl.Build(pts, karl.Gaussian(0.8))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "engine.karl")
	f, err := os.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	f.Close()

	outDir := filepath.Join(dir, "shards")
	if err := runSplit(src, outDir, "kd", 4); err != nil {
		t.Fatalf("runSplit: %v", err)
	}

	doc, err := os.ReadFile(filepath.Join(outDir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var mf manifestFile
	if err := json.Unmarshal(doc, &mf); err != nil {
		t.Fatalf("manifest JSON: %v", err)
	}
	if mf.Partition != "kd" || mf.Shards != 4 || mf.SourceLen != 300 || len(mf.Files) != 4 {
		t.Fatalf("manifest mismatch: %+v", mf)
	}

	q := []float64{0.2, -0.4}
	want, _ := eng.Aggregate(q)
	var sum float64
	total := 0
	for i, name := range mf.Files {
		sf, err := os.Open(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		se, err := karl.ReadEngine(sf)
		sf.Close()
		if err != nil {
			t.Fatalf("ReadEngine(%s): %v", name, err)
		}
		prov, ok := se.ShardInfo()
		if !ok || prov.Index != i || prov.Of != 4 || prov.SourceLen != 300 {
			t.Fatalf("shard %d provenance: ok=%v %+v", i, ok, prov)
		}
		if se.Len() != mf.Meta[i].Points {
			t.Fatalf("shard %d: %d points, manifest says %d", i, se.Len(), mf.Meta[i].Points)
		}
		total += se.Len()
		v, err := se.Aggregate(q)
		if err != nil {
			t.Fatalf("shard %d aggregate: %v", i, err)
		}
		sum += v

		if err := runInspect(filepath.Join(outDir, name)); err != nil {
			t.Fatalf("runInspect(%s): %v", name, err)
		}
	}
	if total != 300 {
		t.Fatalf("shards hold %d points, want 300", total)
	}
	if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("shard sum %v, want %v", sum, want)
	}
}

// TestSplitRejectsBadPartition covers the up-front argument check.
func TestSplitRejectsBadPartition(t *testing.T) {
	if err := runSplit("nonexistent.karl", t.TempDir(), "banana", 4); err == nil {
		t.Fatal("unknown partition strategy should fail")
	}
}
