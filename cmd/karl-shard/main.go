// Command karl-shard splits a saved engine into per-shard engine files
// for sharded serving, and inspects the provenance of shard files.
//
// Usage:
//
//	karl-shard -split engine.karl -n 4 -out shards/          # hash partition
//	karl-shard -split engine.karl -n 4 -partition kd -out shards/
//	karl-shard -inspect shards/shard-2.karl
//
// -split writes shard-<i>.karl engine files (same persisted format as the
// source, loadable by karl-serve -model) plus a manifest.json recording
// the partition strategy and each shard's cardinality and weight masses.
// Every shard file carries its provenance (index i of n, strategy, source
// cardinality), so -inspect can identify a stray file, and a cluster
// coordinator can sanity-check its shard set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"karl"
)

// manifestFile is the JSON document written next to the shard files.
type manifestFile struct {
	Partition string           `json:"partition"`
	Shards    int              `json:"shards"`
	SourceLen int              `json:"source_len"`
	Files     []string         `json:"files"`
	Meta      []karl.ShardMeta `json:"meta"`
}

func main() {
	var (
		split     = flag.String("split", "", "saved engine file to split into shards")
		n         = flag.Int("n", 4, "number of shards for -split")
		partition = flag.String("partition", "hash", "partition strategy for -split: hash or kd")
		out       = flag.String("out", ".", "output directory for -split")
		inspect   = flag.String("inspect", "", "shard (or any saved) engine file to describe")
	)
	flag.Parse()

	switch {
	case (*split != "") == (*inspect != ""):
		fmt.Fprintln(os.Stderr, "karl-shard: need exactly one of -split or -inspect")
		flag.Usage()
		os.Exit(2)
	case *split != "":
		if err := runSplit(*split, *out, *partition, *n); err != nil {
			log.Fatalf("karl-shard: %v", err)
		}
	default:
		if err := runInspect(*inspect); err != nil {
			log.Fatalf("karl-shard: %v", err)
		}
	}
}

func parsePartition(s string) (karl.PartitionKind, error) {
	switch s {
	case "hash":
		return karl.HashPartition, nil
	case "kd", "kd-split":
		return karl.KDPartition, nil
	default:
		return 0, fmt.Errorf("unknown partition strategy %q (want hash or kd)", s)
	}
}

func runSplit(src, outDir, partition string, n int) error {
	kind, err := parsePartition(partition)
	if err != nil {
		return err
	}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	eng, err := karl.ReadEngine(f)
	f.Close()
	if err != nil {
		return err
	}
	shards, man, err := eng.Shard(n, kind)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	mf := manifestFile{
		Partition: kind.String(),
		Shards:    n,
		SourceLen: eng.Len(),
		Meta:      man.Shards,
	}
	for i, se := range shards {
		name := fmt.Sprintf("shard-%d.karl", i)
		path := filepath.Join(outDir, name)
		sf, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := se.WriteTo(sf); err != nil {
			sf.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := sf.Close(); err != nil {
			return err
		}
		mf.Files = append(mf.Files, name)
		log.Printf("wrote %s: %d points, W⁺=%.6g W⁻=%.6g",
			path, man.Shards[i].Points, man.Shards[i].WeightPos, man.Shards[i].WeightNeg)
	}

	manPath := filepath.Join(outDir, "manifest.json")
	doc, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manPath, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%s partition, %d points over %d shards)", manPath, kind, eng.Len(), n)
	return nil
}

func runInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	eng, err := karl.ReadEngine(f)
	f.Close()
	if err != nil {
		return err
	}
	k := eng.Kernel()
	wpos, wneg := eng.WeightMass()
	fmt.Printf("%s: %d points, %d dims, %v kernel (γ=%v), W⁺=%.6g W⁻=%.6g\n",
		path, eng.Len(), eng.Dims(), k.Kind, k.Gamma, wpos, wneg)
	if prov, ok := eng.ShardInfo(); ok {
		fmt.Printf("  shard %d of %d (%s partition) from a %d-point dataset\n",
			prov.Index, prov.Of, prov.Partition, prov.SourceLen)
	} else {
		fmt.Println("  not a shard: no partition provenance recorded")
	}
	if sk, ok := eng.SketchInfo(); ok {
		fmt.Printf("  coreset sketch: %d → %d points, eps=%v\n", sk.SourceLen, eng.Len(), sk.Eps)
	}
	return nil
}
