package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"karl"
	"karl/internal/cluster"
	"karl/internal/replica"
	"karl/internal/shard"
)

// replicaBenchConfig bundles the -replica workload knobs.
type replicaBenchConfig struct {
	n, sealSize, fanout int
	seed                int64
}

// errKilled simulates a crashed member in the failover phase.
var errKilled = errors.New("karl-bench: member killed")

// killableShard wraps a mutable shard client with a kill switch: once
// down, every call fails — the in-process stand-in for a crashed
// karl-serve leader.
type killableShard struct {
	inner cluster.MutableShardClient
	down  atomic.Bool
}

func (k *killableShard) Name() string { return k.inner.Name() }

func (k *killableShard) Info(ctx context.Context) (cluster.ShardInfo, error) {
	if k.down.Load() {
		return cluster.ShardInfo{}, errKilled
	}
	return k.inner.Info(ctx)
}

func (k *killableShard) Healthy(ctx context.Context) error {
	if k.down.Load() {
		return errKilled
	}
	return k.inner.Healthy(ctx)
}

func (k *killableShard) Aggregate(ctx context.Context, q []float64) (float64, error) {
	if k.down.Load() {
		return 0, errKilled
	}
	return k.inner.Aggregate(ctx, q)
}

func (k *killableShard) Bounds(ctx context.Context, q []float64, eps float64) (cluster.Bounds, error) {
	if k.down.Load() {
		return cluster.Bounds{}, errKilled
	}
	return k.inner.Bounds(ctx, q, eps)
}

func (k *killableShard) Insert(ctx context.Context, points [][]float64, weights []float64) ([]uint64, error) {
	if k.down.Load() {
		return nil, errKilled
	}
	return k.inner.Insert(ctx, points, weights)
}

func (k *killableShard) Delete(ctx context.Context, id uint64) error {
	if k.down.Load() {
		return errKilled
	}
	return k.inner.Delete(ctx, id)
}

func (k *killableShard) SplitOut(ctx context.Context, rule shard.SplitRule, auto bool) (cluster.SplitResult, error) {
	if k.down.Load() {
		return cluster.SplitResult{}, errKilled
	}
	return k.inner.SplitOut(ctx, rule, auto)
}

// runReplicaBench measures the replication subsystem's three headline
// numbers on in-process engines (no HTTP, so the figures isolate the
// subsystem itself from network cost):
//
//  1. catch-up throughput — a fresh follower pulling a loaded leader's
//     sealed segments and memtable tail to convergence, in points/sec;
//  2. steady-state lag — the follower's seq lag sampled while the
//     leader absorbs a sustained insert stream with the pull loop at a
//     5ms interval;
//  3. failover time — a two-member writable cluster loses a leader with
//     a caught-up follower attached: the time from the kill to the
//     first successfully routed insert (the write path detects the dead
//     member, promotes the follower and retries internally) and from
//     there to a full-coverage aggregate.
func runReplicaBench(cfg replicaBenchConfig) error {
	if cfg.n < 64 {
		return fmt.Errorf("-maxn %d too small for -replica", cfg.n)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, cfg.n, dim)
	mk := func() (*karl.DynamicEngine, error) {
		return karl.NewDynamic(karl.Gaussian(20),
			karl.WithSealSize(cfg.sealSize), karl.WithCompactionFanout(cfg.fanout))
	}

	// --- Phase 1: catch-up throughput over sealed segments + tail.
	leader, err := mk()
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := leader.Insert(p, 1); err != nil {
			return err
		}
	}
	follower, err := mk()
	if err != nil {
		return err
	}
	ctx := context.Background()
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})
	start := time.Now()
	if err := a.CatchUp(ctx); err != nil {
		return err
	}
	catchUp := time.Since(start)
	fmt.Printf("replica bench: n=%d dim=%d seal=%d fanout=%d seed=%d\n",
		cfg.n, dim, cfg.sealSize, cfg.fanout, cfg.seed)
	fmt.Printf("catch-up: %d points in %v  (%.0f points/sec, %d segments, %d sync rounds)\n",
		follower.Len(), catchUp.Round(time.Microsecond),
		float64(follower.Len())/catchUp.Seconds(), len(follower.Segments()), a.Syncs())

	// --- Phase 2: steady-state lag under a sustained insert stream.
	runCtx, cancel := context.WithCancel(ctx)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = a.Run(runCtx, 5*time.Millisecond)
	}()
	var lags []uint64
	writeFor := 500 * time.Millisecond
	writeStart := time.Now()
	inserted := 0
	for time.Since(writeStart) < writeFor {
		for i := 0; i < 64; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * 0.3
			}
			if err := leader.Insert(p, 1); err != nil {
				cancel()
				return err
			}
			inserted++
		}
		// Status().Lag() is relative to the leader seq captured at the
		// follower's last pull; sampling against the leader's live
		// counter measures the true in-flight backlog.
		st := a.Status()
		if ls := leader.NextSeq(); ls > st.NextSeq {
			lags = append(lags, ls-st.NextSeq)
		} else {
			lags = append(lags, 0)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Drain: how long until the follower covers the final watermark.
	drainStart := time.Now()
	target := leader.NextSeq()
	for a.Status().NextSeq < target {
		time.Sleep(time.Millisecond)
	}
	drain := time.Since(drainStart)
	cancel()
	<-runDone
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	var sum uint64
	for _, l := range lags {
		sum += l
	}
	fmt.Printf("steady-state lag: %d inserts over %v with 5ms pulls — mean %.0f seqs, p50 %d, max %d; drain to lag 0 in %v\n",
		inserted, writeFor, float64(sum)/float64(len(lags)),
		lags[len(lags)/2], lags[len(lags)-1], drain.Round(time.Microsecond))

	// --- Phase 3: leader kill → promotion → first answer.
	lead1, err := mk()
	if err != nil {
		return err
	}
	lead2, err := mk()
	if err != nil {
		return err
	}
	fol1, err := mk()
	if err != nil {
		return err
	}
	half := cfg.n / 2
	for i, p := range pts {
		eng := lead1
		if i >= half {
			eng = lead2
		}
		if err := eng.Insert(p, 1); err != nil {
			return err
		}
	}
	fa := replica.NewApplier(fol1, replica.EngineSource{Eng: lead1})
	if err := fa.CatchUp(ctx); err != nil {
		return err
	}
	killable := &killableShard{inner: cluster.NewLocalMutableShard("m1", lead1)}
	wco, err := cluster.NewWritable(ctx, shard.Hash, []cluster.WritableShard{
		{Name: "m1", Client: killable, Followers: []cluster.FollowerClient{
			cluster.NewLocalFollower("m1-replica", fa),
		}},
		{Name: "m2", Client: cluster.NewLocalMutableShard("m2", lead2)},
	}, nil, cluster.WritableConfig{Config: cluster.Config{Timeout: time.Second}})
	if err != nil {
		return err
	}
	batch := make([][]float64, 64)
	for i := range batch {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 0.3
		}
		batch[i] = p
	}
	killable.down.Store(true)
	killStart := time.Now()
	if _, err := wco.Insert(ctx, batch, nil); err != nil {
		return fmt.Errorf("insert after kill (auto-failover): %w", err)
	}
	firstWrite := time.Since(killStart)
	q := make([]float64, dim)
	for j := range q {
		q[j] = 0.2
	}
	res, err := wco.Aggregate(ctx, q)
	if err != nil {
		return err
	}
	firstRead := time.Since(killStart)
	if res.Partial {
		return fmt.Errorf("aggregate still partial after promotion (covered %.3f)", res.Covered)
	}
	if wco.Promotions() != 1 {
		return fmt.Errorf("promotions = %d, want 1", wco.Promotions())
	}
	fmt.Printf("failover: leader killed with caught-up follower — first routed write in %v (includes promotion), full-coverage read in %v\n",
		firstWrite.Round(time.Microsecond), firstRead.Round(time.Microsecond))
	return nil
}
