// Command karl-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	karl-bench -list
//	karl-bench -run tab7
//	karl-bench -run all -scale 0.05 -queries 500 -maxn 50000
//
// Experiment IDs follow DESIGN.md §4 (fig1, fig6, fig7, fig9..fig13, tab7,
// tab8, tab9, tab10). Larger -scale/-queries values approach the paper's
// setting at the cost of runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"karl/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1.0/64, "dataset scale relative to the paper's sizes")
		maxN    = flag.Int("maxn", 20000, "cap on generated dataset cardinality")
		queries = flag.Int("queries", 100, "measured query-set size (paper: 10000)")
		sample  = flag.Int("tunesample", 50, "offline tuning sample size (paper: 1000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dims    = flag.String("dims", "", "comma-separated Fig.12 dimensionality sweep (e.g. 32,64,128,256)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale:      *scale,
		MaxN:       *maxN,
		Queries:    *queries,
		TuneSample: *sample,
		Seed:       *seed,
	}
	if *dims != "" {
		for _, part := range strings.Split(*dims, ",") {
			var d int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &d); err != nil || d < 1 {
				fmt.Fprintf(os.Stderr, "karl-bench: bad -dims entry %q\n", part)
				os.Exit(2)
			}
			cfg.DimSweep = append(cfg.DimSweep, d)
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
