// Command karl-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	karl-bench -list
//	karl-bench -run tab7
//	karl-bench -run all -scale 0.05 -queries 500 -maxn 50000
//	karl-bench -mutable -maxn 20000 -mixratio 9
//	karl-bench -mutable -maxn 20000 -delevery 10 -window 1h -decay-halflife 30m
//	karl-bench -batch 4096 -maxn 20000
//	karl-bench -batch 4096 -mutable -seal 512
//
// Experiment IDs follow DESIGN.md §4 (fig1, fig6, fig7, fig9..fig13, tab7,
// tab8, tab9, tab10). Larger -scale/-queries values approach the paper's
// setting at the cost of runtime.
//
// -mutable runs the segmented-engine serving benchmark instead: it seeds
// half the dataset into a dynamic engine, replays a mixed stream over the
// other half (-mixratio queries per insert, default 9 for a 90/10
// query/insert mix), and reports p50/p99 latency per operation class plus
// overall throughput — sealing and background compaction included.
// -delevery mixes one delete of a random live point per that many inserts
// (tombstone + compaction reclamation on the hot path); -window and
// -decay-halflife exercise sliding-window TTL expiry and exponential
// weight decay.
//
// -batch N times one N-query approximate batch through the sequential and
// dual-tree batch executors side by side, reporting amortized per-query
// p50/p99 latency and batch throughput for each; add -mutable to run the
// comparison against the segmented dynamic engine instead of a static
// index.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"karl"
	"karl/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1.0/64, "dataset scale relative to the paper's sizes")
		maxN    = flag.Int("maxn", 20000, "cap on generated dataset cardinality")
		queries = flag.Int("queries", 100, "measured query-set size (paper: 10000)")
		sample  = flag.Int("tunesample", 50, "offline tuning sample size (paper: 1000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dims    = flag.String("dims", "", "comma-separated Fig.12 dimensionality sweep (e.g. 32,64,128,256)")

		mutable  = flag.Bool("mutable", false, "run the mutable-serving mixed-workload benchmark instead of a paper experiment")
		batch    = flag.Int("batch", 0, "benchmark N-query batches through the sequential and dual-tree executors (combine with -mutable for the segmented engine)")
		mixRatio = flag.Int("mixratio", 9, "queries per insert in the -mutable stream (9 = 90/10 query/insert)")
		sealSize = flag.Int("seal", 512, "memtable seal threshold for -mutable")
		fanout   = flag.Int("fanout", 4, "compaction fanout for -mutable")
		eps      = flag.Float64("eps", 0.1, "relative error budget for -mutable/-batch approximate queries")
		delEvery = flag.Int("delevery", 0, "issue one delete of a random live point per this many -mutable inserts (0 = no deletes)")
		window   = flag.Duration("window", 0, "sliding-window TTL for -mutable: points older than this expire at seal/compaction (0 = keep forever)")
		halfLife = flag.Duration("decay-halflife", 0, "exponential weight-decay half-life for -mutable points (0 = no decay)")
	)
	flag.Parse()

	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *batch != 0 {
		cfg := batchBenchConfig{
			n: *maxN, batch: *batch, sealSize: *sealSize, fanout: *fanout,
			eps: *eps, seed: *seed, mutable: *mutable, window: *window, halfLife: *halfLife,
		}
		if err := runBatchBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mutable {
		cfg := mutableBenchConfig{
			n: *maxN, mixRatio: *mixRatio, sealSize: *sealSize, fanout: *fanout,
			eps: *eps, seed: *seed, delEvery: *delEvery, window: *window, halfLife: *halfLife,
		}
		if err := runMutableBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{
		Scale:      *scale,
		MaxN:       *maxN,
		Queries:    *queries,
		TuneSample: *sample,
		Seed:       *seed,
	}
	if *dims != "" {
		for _, part := range strings.Split(*dims, ",") {
			var d int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &d); err != nil || d < 1 {
				fmt.Fprintf(os.Stderr, "karl-bench: bad -dims entry %q\n", part)
				os.Exit(2)
			}
			cfg.DimSweep = append(cfg.DimSweep, d)
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// validateFlags rejects contradictory invocations up front, before any
// dataset generation: exactly one mode (-run, -list, -mutable), and no
// flags that belong to a different mode — a typo'd invocation fails in
// milliseconds instead of after minutes of benchmarking the wrong thing.
func validateFlags() error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	modes := 0
	for _, m := range []string{"run", "list", "mutable", "batch"} {
		if set[m] {
			modes++
		}
	}
	if set["mutable"] && set["batch"] {
		modes-- // -batch composes with -mutable: batch queries against the segmented engine
	}
	if modes == 0 {
		return errors.New("pick a mode: -run <id>, -list, -mutable, or -batch <n>")
	}
	if modes > 1 {
		return errors.New("-run, -list, -mutable and -batch are mutually exclusive: pick one mode (-batch may combine with -mutable)")
	}

	var wrong []string
	reject := func(mode string, names ...string) {
		for _, name := range names {
			if set[name] {
				wrong = append(wrong, fmt.Sprintf("-%s only applies to %s", name, mode))
			}
		}
	}
	switch {
	case set["list"]:
		reject("-run", "scale", "maxn", "queries", "tunesample", "seed", "dims")
		reject("-mutable", "mixratio", "seal", "fanout", "eps", "delevery", "window", "decay-halflife")
	case set["batch"]:
		reject("-run", "scale", "queries", "tunesample", "dims")
		reject("a -mutable stream", "mixratio", "delevery")
		if !set["mutable"] {
			reject("-mutable", "seal", "fanout", "window", "decay-halflife")
		}
	case set["mutable"]:
		reject("-run", "scale", "queries", "tunesample", "dims")
	default: // -run
		reject("-mutable", "mixratio", "seal", "fanout", "eps", "delevery", "window", "decay-halflife")
	}
	if len(wrong) > 0 {
		return errors.New(strings.Join(wrong, "; "))
	}
	return nil
}

// quantile returns the q-quantile of a sorted latency slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// clusterPoints generates the mutable/batch benchmarks' synthetic n×dim
// dataset: five Gaussian clusters spaced 0.18 apart along the diagonal.
func clusterPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		base := float64(i%5) * 0.18
		for j := range p {
			p[j] = base + rng.NormFloat64()*0.04
		}
		pts[i] = p
	}
	return pts
}

// batchBenchConfig bundles the -batch workload knobs.
type batchBenchConfig struct {
	n, batch, sealSize, fanout int
	eps                        float64
	seed                       int64
	mutable                    bool
	window, halfLife           time.Duration
}

// runBatchBench answers the same N-query approximate batch through the
// forced-sequential and forced-dual-tree executors and reports amortized
// per-query latency quantiles plus batch throughput, so the dual-tree
// cutover can be judged on the target workload shape. Both executors run
// single-worker: the comparison isolates shared bound refinement from
// clone parallelism.
func runBatchBench(cfg batchBenchConfig) error {
	if cfg.batch < 1 {
		return fmt.Errorf("-batch %d: batch size must be positive", cfg.batch)
	}
	if cfg.n < 2 {
		return fmt.Errorf("-maxn %d too small", cfg.n)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, cfg.n, dim)
	queries := make([][]float64, cfg.batch)
	for i := range queries {
		q := make([]float64, dim)
		for j := range q {
			q[j] = 0.2 + rng.Float64()*0.2
		}
		queries[i] = q
	}

	type batcher interface {
		BatchApproximate(queries [][]float64, eps float64, workers int) ([]float64, error)
	}
	build := func(exec karl.BatchExecutor) (batcher, error) {
		if !cfg.mutable {
			return karl.Build(pts, karl.Gaussian(20), karl.WithBatchExecutor(exec))
		}
		opts := []karl.Option{
			karl.WithSealSize(cfg.sealSize), karl.WithCompactionFanout(cfg.fanout),
			karl.WithBatchExecutor(exec),
		}
		if cfg.window > 0 {
			opts = append(opts, karl.WithTTL(cfg.window))
		}
		if cfg.halfLife > 0 {
			opts = append(opts, karl.WithDecayHalfLife(cfg.halfLife))
		}
		d, err := karl.NewDynamic(karl.Gaussian(20), opts...)
		if err != nil {
			return nil, err
		}
		if _, err := d.InsertBulk(pts, nil); err != nil {
			return nil, err
		}
		return d, nil
	}

	const rounds = 7
	kind := "static"
	if cfg.mutable {
		kind = "segmented"
	}
	fmt.Printf("batch executor benchmark (%s engine): n=%d dim=%d batch=%d eps=%g rounds=%d workers=1\n",
		kind, cfg.n, dim, cfg.batch, cfg.eps, rounds)
	var tput [2]float64
	for i, ex := range []struct {
		name string
		exec karl.BatchExecutor
	}{
		{"sequential", karl.BatchSequential},
		{"dual-tree", karl.BatchDualTree},
	} {
		eng, err := build(ex.exec)
		if err != nil {
			return err
		}
		if _, err := eng.BatchApproximate(queries, cfg.eps, 1); err != nil { // warmup
			return err
		}
		lat := make([]time.Duration, 0, rounds)
		var total time.Duration
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			if _, err := eng.BatchApproximate(queries, cfg.eps, 1); err != nil {
				return err
			}
			elapsed := time.Since(t0)
			total += elapsed
			lat = append(lat, elapsed/time.Duration(cfg.batch))
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		tput[i] = float64(rounds*cfg.batch) / total.Seconds()
		fmt.Printf("  %-10s per-query p50=%v p99=%v  throughput: %.0f queries/sec (batch wall %v)\n",
			ex.name, quantile(lat, 0.50), quantile(lat, 0.99), tput[i],
			(total / rounds).Round(time.Microsecond))
	}
	fmt.Printf("  dual-tree speedup: %.2fx\n", tput[1]/tput[0])
	return nil
}

// mutableBenchConfig bundles the -mutable workload knobs.
type mutableBenchConfig struct {
	n, mixRatio, sealSize, fanout, delEvery int
	eps                                     float64
	seed                                    int64
	window, halfLife                        time.Duration
}

// runMutableBench replays a mixed insert/delete/query stream against a
// segmented dynamic engine and prints per-class latency quantiles plus
// throughput.
func runMutableBench(cfg mutableBenchConfig) error {
	n, mixRatio := cfg.n, cfg.mixRatio
	if n < 2 {
		return fmt.Errorf("-maxn %d too small", n)
	}
	if mixRatio < 0 {
		mixRatio = 0
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, n, dim)
	opts := []karl.Option{karl.WithSealSize(cfg.sealSize), karl.WithCompactionFanout(cfg.fanout)}
	if cfg.window > 0 {
		opts = append(opts, karl.WithTTL(cfg.window))
	}
	if cfg.halfLife > 0 {
		opts = append(opts, karl.WithDecayHalfLife(cfg.halfLife))
	}
	d, err := karl.NewDynamic(karl.Gaussian(20), opts...)
	if err != nil {
		return err
	}
	half := n / 2
	live := make([]uint64, 0, n)
	for _, p := range pts[:half] {
		id, err := d.InsertID(p, 1)
		if err != nil {
			return err
		}
		live = append(live, id)
	}
	queryAt := func() []float64 {
		q := make([]float64, dim)
		for j := range q {
			q[j] = 0.2 + rng.Float64()*0.2
		}
		return q
	}
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = queryAt()
	}

	insertLat := make([]time.Duration, 0, n-half)
	queryLat := make([]time.Duration, 0, (n-half)*mixRatio)
	var deleteLat []time.Duration
	qi := 0
	start := time.Now()
	for i, p := range pts[half:] {
		t0 := time.Now()
		id, err := d.InsertID(p, 1)
		if err != nil {
			return err
		}
		insertLat = append(insertLat, time.Since(t0))
		live = append(live, id)
		if cfg.delEvery > 0 && (i+1)%cfg.delEvery == 0 && len(live) > 1 {
			j := rng.Intn(len(live))
			t0 = time.Now()
			if err := d.Delete(live[j]); err != nil {
				return fmt.Errorf("delete id %d: %w", live[j], err)
			}
			deleteLat = append(deleteLat, time.Since(t0))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for k := 0; k < mixRatio; k++ {
			q := queries[qi%len(queries)]
			qi++
			t0 = time.Now()
			if _, err := d.Approximate(q, cfg.eps); err != nil {
				return err
			}
			queryLat = append(queryLat, time.Since(t0))
		}
	}
	elapsed := time.Since(start)

	sort.Slice(insertLat, func(i, j int) bool { return insertLat[i] < insertLat[j] })
	sort.Slice(queryLat, func(i, j int) bool { return queryLat[i] < queryLat[j] })
	sort.Slice(deleteLat, func(i, j int) bool { return deleteLat[i] < deleteLat[j] })
	ops := len(insertLat) + len(queryLat) + len(deleteLat)
	fmt.Printf("mutable serving benchmark: n=%d (seeded %d), %d queries per insert, seal=%d fanout=%d eps=%g",
		n, half, mixRatio, cfg.sealSize, cfg.fanout, cfg.eps)
	if cfg.delEvery > 0 {
		fmt.Printf(" delevery=%d", cfg.delEvery)
	}
	if cfg.window > 0 {
		fmt.Printf(" window=%v", cfg.window)
	}
	if cfg.halfLife > 0 {
		fmt.Printf(" halflife=%v", cfg.halfLife)
	}
	fmt.Println()
	fmt.Printf("  inserts: %d  p50=%v  p99=%v\n",
		len(insertLat), quantile(insertLat, 0.50), quantile(insertLat, 0.99))
	if len(deleteLat) > 0 {
		fmt.Printf("  deletes: %d  p50=%v  p99=%v\n",
			len(deleteLat), quantile(deleteLat, 0.50), quantile(deleteLat, 0.99))
	}
	fmt.Printf("  queries: %d  p50=%v  p99=%v\n",
		len(queryLat), quantile(queryLat, 0.50), quantile(queryLat, 0.99))
	fmt.Printf("  throughput: %.0f ops/sec over %v (final: %d points, %d segments, %d seals, %d compactions, %d tombstones)\n",
		float64(ops)/elapsed.Seconds(), elapsed.Round(time.Millisecond),
		d.Len(), len(d.Segments()), d.Seals(), d.Compactions(), d.Tombstones())
	return nil
}
