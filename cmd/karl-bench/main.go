// Command karl-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	karl-bench -list
//	karl-bench -run tab7
//	karl-bench -run all -scale 0.05 -queries 500 -maxn 50000
//	karl-bench -mutable -maxn 20000 -mixratio 9
//	karl-bench -mutable -maxn 20000 -delevery 10 -window 1h -decay-halflife 30m
//	karl-bench -batch 4096 -maxn 20000
//	karl-bench -batch 4096 -mutable -seal 512
//	karl-bench -matrix -maxn 50000 -queries 200
//
// Experiment IDs follow DESIGN.md §4 (fig1, fig6, fig7, fig9..fig13, tab7,
// tab8, tab9, tab10). Larger -scale/-queries values approach the paper's
// setting at the cost of runtime.
//
// -mutable runs the segmented-engine serving benchmark instead: it seeds
// half the dataset into a dynamic engine, replays a mixed stream over the
// other half (-mixratio queries per insert, default 9 for a 90/10
// query/insert mix), and reports p50/p99 latency per operation class plus
// overall throughput — sealing and background compaction included.
// -delevery mixes one delete of a random live point per that many inserts
// (tombstone + compaction reclamation on the hot path); -window and
// -decay-halflife exercise sliding-window TTL expiry and exponential
// weight decay.
//
// -batch N times one N-query approximate batch through the sequential and
// dual-tree batch executors side by side, reporting amortized per-query
// p50/p99 latency and batch throughput for each; add -mutable to run the
// comparison against the segmented dynamic engine instead of a static
// index.
//
// -matrix sweeps the raw-speed knobs: GOMAXPROCS ∈ {1,2,4,8} × float32
// blocked leaves on/off × three kernel families, rebuilding the engine per
// cell (WithRefineWorkers follows GOMAXPROCS) and reporting exact and
// approximate latency quantiles with allocs/op for each. -leaf-float32
// enables float32 blocked leaves in the -mutable and -batch modes; in
// -matrix it is a sweep dimension and the flag is rejected.
//
// All modes report steady-state allocs/op next to the latency quantiles.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"karl"
	"karl/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1.0/64, "dataset scale relative to the paper's sizes")
		maxN    = flag.Int("maxn", 20000, "cap on generated dataset cardinality")
		queries = flag.Int("queries", 100, "measured query-set size (paper: 10000)")
		sample  = flag.Int("tunesample", 50, "offline tuning sample size (paper: 1000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dims    = flag.String("dims", "", "comma-separated Fig.12 dimensionality sweep (e.g. 32,64,128,256)")

		mutable  = flag.Bool("mutable", false, "run the mutable-serving mixed-workload benchmark instead of a paper experiment")
		repl     = flag.Bool("replica", false, "benchmark the replication subsystem: follower catch-up throughput, steady-state lag under writes, leader-kill failover time")
		batch    = flag.Int("batch", 0, "benchmark N-query batches through the sequential and dual-tree executors (combine with -mutable for the segmented engine)")
		matrix   = flag.Bool("matrix", false, "sweep GOMAXPROCS × float32-leaves × kernel family on single-query latency")
		leaf32   = flag.Bool("leaf-float32", false, "store leaf points as float32 tiles in the -mutable/-batch engines")
		mixRatio = flag.Int("mixratio", 9, "queries per insert in the -mutable stream (9 = 90/10 query/insert)")
		sealSize = flag.Int("seal", 512, "memtable seal threshold for -mutable")
		fanout   = flag.Int("fanout", 4, "compaction fanout for -mutable")
		eps      = flag.Float64("eps", 0.1, "relative error budget for -mutable/-batch approximate queries")
		delEvery = flag.Int("delevery", 0, "issue one delete of a random live point per this many -mutable inserts (0 = no deletes)")
		window   = flag.Duration("window", 0, "sliding-window TTL for -mutable: points older than this expire at seal/compaction (0 = keep forever)")
		halfLife = flag.Duration("decay-halflife", 0, "exponential weight-decay half-life for -mutable points (0 = no decay)")
	)
	flag.Parse()

	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *matrix {
		cfg := matrixBenchConfig{n: *maxN, queries: *queries, eps: *eps, seed: *seed}
		if err := runMatrixBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *repl {
		cfg := replicaBenchConfig{n: *maxN, sealSize: *sealSize, fanout: *fanout, seed: *seed}
		if err := runReplicaBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *batch != 0 {
		cfg := batchBenchConfig{
			n: *maxN, batch: *batch, sealSize: *sealSize, fanout: *fanout,
			eps: *eps, seed: *seed, mutable: *mutable, window: *window, halfLife: *halfLife,
			leaf32: *leaf32,
		}
		if err := runBatchBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mutable {
		cfg := mutableBenchConfig{
			n: *maxN, mixRatio: *mixRatio, sealSize: *sealSize, fanout: *fanout,
			eps: *eps, seed: *seed, delEvery: *delEvery, window: *window, halfLife: *halfLife,
			leaf32: *leaf32,
		}
		if err := runMutableBench(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{
		Scale:      *scale,
		MaxN:       *maxN,
		Queries:    *queries,
		TuneSample: *sample,
		Seed:       *seed,
	}
	if *dims != "" {
		for _, part := range strings.Split(*dims, ",") {
			var d int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &d); err != nil || d < 1 {
				fmt.Fprintf(os.Stderr, "karl-bench: bad -dims entry %q\n", part)
				os.Exit(2)
			}
			cfg.DimSweep = append(cfg.DimSweep, d)
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "karl-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// validateFlags rejects contradictory invocations up front, before any
// dataset generation: exactly one mode (-run, -list, -mutable), and no
// flags that belong to a different mode — a typo'd invocation fails in
// milliseconds instead of after minutes of benchmarking the wrong thing.
func validateFlags() error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	modes := 0
	for _, m := range []string{"run", "list", "mutable", "batch", "matrix", "replica"} {
		if set[m] {
			modes++
		}
	}
	if set["mutable"] && set["batch"] {
		modes-- // -batch composes with -mutable: batch queries against the segmented engine
	}
	if modes == 0 {
		return errors.New("pick a mode: -run <id>, -list, -mutable, -batch <n>, -matrix, or -replica")
	}
	if modes > 1 {
		return errors.New("-run, -list, -mutable, -batch, -matrix and -replica are mutually exclusive: pick one mode (-batch may combine with -mutable)")
	}

	var wrong []string
	reject := func(mode string, names ...string) {
		for _, name := range names {
			if set[name] {
				wrong = append(wrong, fmt.Sprintf("-%s only applies to %s", name, mode))
			}
		}
	}
	switch {
	case set["list"]:
		reject("-run", "scale", "maxn", "queries", "tunesample", "seed", "dims")
		reject("-mutable", "mixratio", "seal", "fanout", "eps", "delevery", "window", "decay-halflife", "leaf-float32")
	case set["matrix"]:
		reject("-run", "scale", "tunesample", "dims")
		reject("-mutable", "mixratio", "seal", "fanout", "delevery", "window", "decay-halflife")
		if set["leaf-float32"] {
			wrong = append(wrong, "-leaf-float32 is a -matrix sweep dimension, not a flag there")
		}
	case set["batch"]:
		reject("-run", "scale", "queries", "tunesample", "dims")
		reject("a -mutable stream", "mixratio", "delevery")
		if !set["mutable"] {
			reject("-mutable", "seal", "fanout", "window", "decay-halflife")
		}
	case set["mutable"]:
		reject("-run", "scale", "queries", "tunesample", "dims")
	case set["replica"]:
		reject("-run", "scale", "queries", "tunesample", "dims")
		reject("a -mutable stream", "mixratio", "delevery", "eps",
			"window", "decay-halflife", "leaf-float32")
	default: // -run
		reject("-mutable", "mixratio", "seal", "fanout", "eps", "delevery", "window", "decay-halflife", "leaf-float32")
	}
	if len(wrong) > 0 {
		return errors.New(strings.Join(wrong, "; "))
	}
	return nil
}

// quantile returns the q-quantile of a sorted latency slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// mallocs reads the cumulative heap-allocation counter; the delta across a
// measured section divided by its operation count is the allocs/op figure
// every mode reports next to its latency quantiles.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// allocsPerOp formats a mallocs delta over an op count.
func allocsPerOp(delta uint64, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(delta) / float64(ops)
}

// clusterPoints generates the mutable/batch benchmarks' synthetic n×dim
// dataset: five Gaussian clusters spaced 0.18 apart along the diagonal.
func clusterPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		base := float64(i%5) * 0.18
		for j := range p {
			p[j] = base + rng.NormFloat64()*0.04
		}
		pts[i] = p
	}
	return pts
}

// batchBenchConfig bundles the -batch workload knobs.
type batchBenchConfig struct {
	n, batch, sealSize, fanout int
	eps                        float64
	seed                       int64
	mutable, leaf32            bool
	window, halfLife           time.Duration
}

// runBatchBench answers the same N-query approximate batch through the
// forced-sequential and forced-dual-tree executors and reports amortized
// per-query latency quantiles plus batch throughput, so the dual-tree
// cutover can be judged on the target workload shape. Both executors run
// single-worker: the comparison isolates shared bound refinement from
// clone parallelism.
func runBatchBench(cfg batchBenchConfig) error {
	if cfg.batch < 1 {
		return fmt.Errorf("-batch %d: batch size must be positive", cfg.batch)
	}
	if cfg.n < 2 {
		return fmt.Errorf("-maxn %d too small", cfg.n)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, cfg.n, dim)
	queries := make([][]float64, cfg.batch)
	for i := range queries {
		q := make([]float64, dim)
		for j := range q {
			q[j] = 0.2 + rng.Float64()*0.2
		}
		queries[i] = q
	}

	type batcher interface {
		BatchApproximate(queries [][]float64, eps float64, workers int) ([]float64, error)
	}
	build := func(exec karl.BatchExecutor) (batcher, error) {
		if !cfg.mutable {
			opts := []karl.Option{karl.WithBatchExecutor(exec)}
			if cfg.leaf32 {
				opts = append(opts, karl.WithLeafFloat32())
			}
			return karl.Build(pts, karl.Gaussian(20), opts...)
		}
		opts := []karl.Option{
			karl.WithSealSize(cfg.sealSize), karl.WithCompactionFanout(cfg.fanout),
			karl.WithBatchExecutor(exec),
		}
		if cfg.leaf32 {
			opts = append(opts, karl.WithLeafFloat32())
		}
		if cfg.window > 0 {
			opts = append(opts, karl.WithTTL(cfg.window))
		}
		if cfg.halfLife > 0 {
			opts = append(opts, karl.WithDecayHalfLife(cfg.halfLife))
		}
		d, err := karl.NewDynamic(karl.Gaussian(20), opts...)
		if err != nil {
			return nil, err
		}
		if _, err := d.InsertBulk(pts, nil); err != nil {
			return nil, err
		}
		return d, nil
	}

	const rounds = 7
	kind := "static"
	if cfg.mutable {
		kind = "segmented"
	}
	fmt.Printf("batch executor benchmark (%s engine): n=%d dim=%d batch=%d eps=%g rounds=%d workers=1 leaf-float32=%v\n",
		kind, cfg.n, dim, cfg.batch, cfg.eps, rounds, cfg.leaf32)
	var tput [2]float64
	for i, ex := range []struct {
		name string
		exec karl.BatchExecutor
	}{
		{"sequential", karl.BatchSequential},
		{"dual-tree", karl.BatchDualTree},
	} {
		eng, err := build(ex.exec)
		if err != nil {
			return err
		}
		if _, err := eng.BatchApproximate(queries, cfg.eps, 1); err != nil { // warmup
			return err
		}
		lat := make([]time.Duration, 0, rounds)
		var total time.Duration
		m0 := mallocs()
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			if _, err := eng.BatchApproximate(queries, cfg.eps, 1); err != nil {
				return err
			}
			elapsed := time.Since(t0)
			total += elapsed
			lat = append(lat, elapsed/time.Duration(cfg.batch))
		}
		allocs := allocsPerOp(mallocs()-m0, rounds*cfg.batch)
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		tput[i] = float64(rounds*cfg.batch) / total.Seconds()
		fmt.Printf("  %-10s per-query p50=%v p99=%v allocs/op=%.1f  throughput: %.0f queries/sec (batch wall %v)\n",
			ex.name, quantile(lat, 0.50), quantile(lat, 0.99), allocs, tput[i],
			(total / rounds).Round(time.Microsecond))
	}
	fmt.Printf("  dual-tree speedup: %.2fx\n", tput[1]/tput[0])
	return nil
}

// mutableBenchConfig bundles the -mutable workload knobs.
type mutableBenchConfig struct {
	n, mixRatio, sealSize, fanout, delEvery int
	eps                                     float64
	seed                                    int64
	window, halfLife                        time.Duration
	leaf32                                  bool
}

// runMutableBench replays a mixed insert/delete/query stream against a
// segmented dynamic engine and prints per-class latency quantiles plus
// throughput.
func runMutableBench(cfg mutableBenchConfig) error {
	n, mixRatio := cfg.n, cfg.mixRatio
	if n < 2 {
		return fmt.Errorf("-maxn %d too small", n)
	}
	if mixRatio < 0 {
		mixRatio = 0
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, n, dim)
	opts := []karl.Option{karl.WithSealSize(cfg.sealSize), karl.WithCompactionFanout(cfg.fanout)}
	if cfg.leaf32 {
		opts = append(opts, karl.WithLeafFloat32())
	}
	if cfg.window > 0 {
		opts = append(opts, karl.WithTTL(cfg.window))
	}
	if cfg.halfLife > 0 {
		opts = append(opts, karl.WithDecayHalfLife(cfg.halfLife))
	}
	d, err := karl.NewDynamic(karl.Gaussian(20), opts...)
	if err != nil {
		return err
	}
	half := n / 2
	live := make([]uint64, 0, n)
	for _, p := range pts[:half] {
		id, err := d.InsertID(p, 1)
		if err != nil {
			return err
		}
		live = append(live, id)
	}
	queryAt := func() []float64 {
		q := make([]float64, dim)
		for j := range q {
			q[j] = 0.2 + rng.Float64()*0.2
		}
		return q
	}
	queries := make([][]float64, 256)
	for i := range queries {
		queries[i] = queryAt()
	}

	insertLat := make([]time.Duration, 0, n-half)
	queryLat := make([]time.Duration, 0, (n-half)*mixRatio)
	var deleteLat []time.Duration
	qi := 0
	m0 := mallocs()
	start := time.Now()
	for i, p := range pts[half:] {
		t0 := time.Now()
		id, err := d.InsertID(p, 1)
		if err != nil {
			return err
		}
		insertLat = append(insertLat, time.Since(t0))
		live = append(live, id)
		if cfg.delEvery > 0 && (i+1)%cfg.delEvery == 0 && len(live) > 1 {
			j := rng.Intn(len(live))
			t0 = time.Now()
			if err := d.Delete(live[j]); err != nil {
				return fmt.Errorf("delete id %d: %w", live[j], err)
			}
			deleteLat = append(deleteLat, time.Since(t0))
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for k := 0; k < mixRatio; k++ {
			q := queries[qi%len(queries)]
			qi++
			t0 = time.Now()
			if _, err := d.Approximate(q, cfg.eps); err != nil {
				return err
			}
			queryLat = append(queryLat, time.Since(t0))
		}
	}
	elapsed := time.Since(start)
	streamMallocs := mallocs() - m0

	sort.Slice(insertLat, func(i, j int) bool { return insertLat[i] < insertLat[j] })
	sort.Slice(queryLat, func(i, j int) bool { return queryLat[i] < queryLat[j] })
	sort.Slice(deleteLat, func(i, j int) bool { return deleteLat[i] < deleteLat[j] })
	ops := len(insertLat) + len(queryLat) + len(deleteLat)
	fmt.Printf("mutable serving benchmark: n=%d (seeded %d), %d queries per insert, seal=%d fanout=%d eps=%g",
		n, half, mixRatio, cfg.sealSize, cfg.fanout, cfg.eps)
	if cfg.delEvery > 0 {
		fmt.Printf(" delevery=%d", cfg.delEvery)
	}
	if cfg.window > 0 {
		fmt.Printf(" window=%v", cfg.window)
	}
	if cfg.halfLife > 0 {
		fmt.Printf(" halflife=%v", cfg.halfLife)
	}
	if cfg.leaf32 {
		fmt.Printf(" leaf-float32")
	}
	fmt.Println()
	fmt.Printf("  inserts: %d  p50=%v  p99=%v\n",
		len(insertLat), quantile(insertLat, 0.50), quantile(insertLat, 0.99))
	if len(deleteLat) > 0 {
		fmt.Printf("  deletes: %d  p50=%v  p99=%v\n",
			len(deleteLat), quantile(deleteLat, 0.50), quantile(deleteLat, 0.99))
	}
	fmt.Printf("  queries: %d  p50=%v  p99=%v\n",
		len(queryLat), quantile(queryLat, 0.50), quantile(queryLat, 0.99))
	fmt.Printf("  throughput: %.0f ops/sec, %.1f allocs/op over %v (final: %d points, %d segments, %d seals, %d compactions, %d tombstones)\n",
		float64(ops)/elapsed.Seconds(), allocsPerOp(streamMallocs, ops),
		elapsed.Round(time.Millisecond),
		d.Len(), len(d.Segments()), d.Seals(), d.Compactions(), d.Tombstones())
	return nil
}

// matrixBenchConfig bundles the -matrix sweep knobs.
type matrixBenchConfig struct {
	n, queries int
	eps        float64
	seed       int64
}

// runMatrixBench rebuilds one static engine per cell of the raw-speed
// matrix — GOMAXPROCS ∈ {1,2,4,8} × float32 blocked leaves on/off × three
// kernel families — and reports exact (full leaf scan) and approximate
// (best-first refinement) per-query latency quantiles with allocs/op.
// WithRefineWorkers follows the GOMAXPROCS value so the parallel
// refinement pool matches the processors it may use; exact queries never
// parallelize, so their column isolates the float32 scan speedup. On a
// single-vCPU host the procs>1 rows measure scheduling overhead, not
// speedup — read them next to runtime.NumCPU.
func runMatrixBench(cfg matrixBenchConfig) error {
	if cfg.n < 2 {
		return fmt.Errorf("-maxn %d too small", cfg.n)
	}
	if cfg.queries < 1 {
		return fmt.Errorf("-queries %d too small", cfg.queries)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const dim = 8
	pts := clusterPoints(rng, cfg.n, dim)
	queries := make([][]float64, cfg.queries)
	for i := range queries {
		q := make([]float64, dim)
		for j := range q {
			q[j] = 0.2 + rng.Float64()*0.2
		}
		queries[i] = q
	}
	kernels := []struct {
		name string
		k    karl.Kernel
	}{
		{"gaussian", karl.Gaussian(20)},
		{"epanechnikov", karl.Epanechnikov(6)},
		{"polynomial", karl.Polynomial(0.5, 1, 2)},
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	fmt.Printf("raw-speed matrix: n=%d dim=%d queries=%d eps=%g (host NumCPU=%d)\n",
		cfg.n, dim, cfg.queries, cfg.eps, runtime.NumCPU())
	for _, procs := range []int{1, 2, 4, 8} {
		for _, leaf32 := range []bool{false, true} {
			for _, kn := range kernels {
				opts := []karl.Option{}
				if leaf32 {
					opts = append(opts, karl.WithLeafFloat32())
				}
				if procs > 1 {
					opts = append(opts, karl.WithRefineWorkers(procs))
				}
				eng, err := karl.Build(pts, kn.k, opts...)
				if err != nil {
					return err
				}
				runtime.GOMAXPROCS(procs)
				measure := func(op func(q []float64) error) ([2]time.Duration, float64, error) {
					for i := 0; i < 3; i++ { // warmup grows scratch once
						if err := op(queries[i%len(queries)]); err != nil {
							return [2]time.Duration{}, 0, err
						}
					}
					lat := make([]time.Duration, 0, len(queries))
					m0 := mallocs()
					for _, q := range queries {
						t0 := time.Now()
						if err := op(q); err != nil {
							return [2]time.Duration{}, 0, err
						}
						lat = append(lat, time.Since(t0))
					}
					allocs := allocsPerOp(mallocs()-m0, len(queries))
					sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
					return [2]time.Duration{quantile(lat, 0.50), quantile(lat, 0.99)}, allocs, nil
				}
				exactQ, exactAllocs, err := measure(func(q []float64) error {
					_, err := eng.Aggregate(q)
					return err
				})
				if err != nil {
					return err
				}
				approxQ, approxAllocs, err := measure(func(q []float64) error {
					_, err := eng.Approximate(q, cfg.eps)
					return err
				})
				runtime.GOMAXPROCS(prevProcs)
				if err != nil {
					return err
				}
				leaf := "float64"
				if leaf32 {
					leaf = "float32"
				}
				fmt.Printf("  procs=%d leaf=%s kernel=%-12s exact p50=%v p99=%v allocs/op=%.1f  approx p50=%v p99=%v allocs/op=%.1f\n",
					procs, leaf, kn.name,
					exactQ[0], exactQ[1], exactAllocs,
					approxQ[0], approxQ[1], approxAllocs)
			}
		}
	}
	return nil
}
