// The exec spawn backend: -coordinator -mutable -spawn grows the
// cluster by process. A shard split hands spawnExec the moved half as a
// persistence stream; it re-execs this binary as a fresh
// `karl-serve -mutable` child seeded from that stream, discovers the
// child's listen address through the -addr-file handshake, and returns
// an HTTP client once the child answers health checks — so the member
// the manifest records is a real, independently restartable process.
package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"karl/internal/cluster"
	"karl/internal/shard"
)

// spawnStartTimeout bounds how long a spawned child may take to bind
// its listener and pass its first health check.
const spawnStartTimeout = 30 * time.Second

// spawnedProcs tracks the children the exec backend started, so tests
// (and operators debugging a wedged split) can find and stop them. The
// children deliberately do NOT die with the coordinator: they hold
// shard data and are re-attached by URL on the next -manifest resume.
var spawnedProcs struct {
	mu    sync.Mutex
	procs []*os.Process
}

// killSpawned terminates every child the exec backend started. Test
// teardown only — production children outlive the coordinator.
func killSpawned() {
	spawnedProcs.mu.Lock()
	defer spawnedProcs.mu.Unlock()
	for _, p := range spawnedProcs.procs {
		_ = p.Kill()
	}
	spawnedProcs.procs = nil
}

// spawnExec is the cluster.SpawnFunc behind -spawn. The moved stream
// travels through a temp -model file (deleted once the child is up:
// ReadDynamic has fully loaded it by the time the health check passes),
// and the child binds 127.0.0.1:0 so concurrent splits never race over
// a port. The returned client's name is the child's base URL — the
// coordinator adopts it as the member's manifest name, which is what a
// later ResumeWritable re-attaches by.
func spawnExec(ctx context.Context, member shard.Member, moved []byte) (cluster.MutableShardClient, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("spawn: %w", err)
	}
	dir, err := os.MkdirTemp("", "karl-spawn-")
	if err != nil {
		return nil, fmt.Errorf("spawn: %w", err)
	}
	model := filepath.Join(dir, "moved.karl")
	if err := os.WriteFile(model, moved, 0o600); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("spawn: %w", err)
	}
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(exe, "-mutable", "-model", model, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	// KARL_SERVE_REEXEC lets the test binary's TestMain dispatch into
	// main(); the real karl-serve binary ignores it.
	cmd.Env = append(os.Environ(), "KARL_SERVE_REEXEC=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("spawn: starting %s: %w", exe, err)
	}
	spawnedProcs.mu.Lock()
	spawnedProcs.procs = append(spawnedProcs.procs, cmd.Process)
	spawnedProcs.mu.Unlock()
	go func() { _ = cmd.Wait() }() // reap on exit

	fail := func(err error) (cluster.MutableShardClient, error) {
		_ = cmd.Process.Kill()
		os.RemoveAll(dir)
		return nil, err
	}
	addr, err := waitForAddrFile(ctx, addrFile, spawnStartTimeout)
	if err != nil {
		return fail(fmt.Errorf("spawn: member %s: %w", member.Name, err))
	}
	hs := cluster.NewHTTPShard("http://" + addr)
	deadline := time.Now().Add(spawnStartTimeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		err = hs.Healthy(hctx)
		cancel()
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return fail(fmt.Errorf("spawn: member %s: %w", member.Name, ctx.Err()))
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("spawn: member %s at %s never became healthy: %w", member.Name, addr, err))
		}
		time.Sleep(50 * time.Millisecond)
	}
	os.RemoveAll(dir)
	return hs, nil
}

// waitForAddrFile polls for the child's address publication. The file
// appears atomically (write+rename on the child side), so any non-empty
// read is complete.
func waitForAddrFile(ctx context.Context, path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		if b, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr, nil
			}
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("child did not publish its address within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
