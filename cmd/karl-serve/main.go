// Command karl-serve exposes a KARL engine over HTTP/JSON.
//
// Usage:
//
//	karl-serve -model engine.karl -addr :8080        # saved engine file
//	karl-serve -points data.txt -gamma 2 -addr :8080 # build from vectors
//	karl-serve -mutable -gamma 2 -addr :8080         # empty dynamic engine
//	karl-serve -mutable -model dyn.karl -addr :8080  # saved dynamic engine
//
// Endpoints:
//
//	GET  /v1/info
//	GET  /v1/stats
//	POST /v1/aggregate   {"q":[...]}
//	POST /v1/threshold   {"q":[...],"tau":1.5}
//	POST /v1/approximate {"q":[...],"eps":0.1}        # relative error
//	POST /v1/approximate {"q":[...],"eps_norm":0.1}   # normalized error
//	POST /v1/batch       {"kind":"approximate","queries":[[...],...],"eps":0.1}
//	POST /v1/insert      {"p":[...],"w":2.0}          # -mutable only
//	POST /v1/insert      {"points":[[...],...],"weights":[...]}
//	DELETE /v1/point     {"id":7}                     # -mutable only
//	DELETE /v1/point     {"ids":[7,8,9]}
//
// Approximate queries pick one of two error models: "eps" bounds the
// relative error |v−F| ≤ eps·F, "eps_norm" bounds the normalized error
// |v−F| ≤ eps_norm·W (W = total weight). Only eps_norm traffic is
// eligible for the -sketch-eps coreset tier.
//
// Requests are served concurrently over a pool of engine clones sharing
// one immutable index; SIGINT/SIGTERM drain in-flight requests before
// exiting.
//
// With -mutable the server wraps a segmented dynamic engine: POST
// /v1/insert appends points (returning their IDs) and DELETE /v1/point
// removes them by ID while queries keep serving, background compaction
// maintains the segment manifest, and no request ever waits on an index
// rebuild. Start empty (just -mutable, with -gamma for the kernel), seed
// from a dynamic engine file (-model, written by DynamicEngine.WriteTo),
// or replay vectors from -points as inserts. Streaming retention is
// configured at startup: -window expires points older than the given age
// (a sliding window, enforced lazily at seal/compaction), and
// -decay-halflife down-weights every point exponentially with age so
// recent data dominates without ever rebuilding. The -sketch-eps tier
// requires an immutable engine and is rejected.
//
// With -coordinator the process serves no data itself: it scatter-gathers
// over remote karl-serve shards (split a saved engine with karl-shard):
//
//	karl-serve -coordinator -shards http://s0:8080,http://s1:8080 -addr :9090
//
// Each -shards entry may carry replicas after "|"
// (http://s0:8080|http://s0b:8080); replicas serve hedged and retried
// requests. The coordinator exposes the same /v1/* query surface plus
// per-shard latency/error/retry/hedge counters in GET /v1/stats, and
// degrades to explicit partial results ("partial": true with the
// covered-weight fraction) when shards are unreachable.
//
// Combining -coordinator with -mutable serves a writable cluster: each
// shard must itself be a -mutable karl-serve, and the coordinator routes
// POST /v1/insert and DELETE /v1/point to the owning shard through a
// -partition manifest (hash slots over any shard count, or kd which must
// start from exactly one shard). Returned point ids are cluster-global.
// -manifest persists the epoch-versioned routing table: when the file
// already exists at startup the coordinator resumes from it — epoch,
// routing and split lineage carry over, the -shards clients re-attach to
// the persisted members by URL, and previously issued point ids keep
// resolving; a fresh epoch-1 cluster is founded only when the file is
// absent:
//
//	karl-serve -coordinator -mutable -partition hash \
//	    -shards http://s0:8080,http://s1:8080 -manifest cluster.manifest
//
// In writable mode a |url replica names a REPLICATION FOLLOWER of its
// shard — a karl-serve started with -replica-of pointing at the leader:
//
//	karl-serve -mutable -replica-of http://s0:8080 -addr :8081   # follower
//	karl-serve -coordinator -mutable \
//	    -shards 'http://s0:8080|http://s0b:8081' -manifest cluster.manifest
//
// The follower bootstraps from the leader's snapshot, then pulls sealed
// segments and the memtable tail continuously, converging to a
// bounded-lag live copy; it refuses writes (409) until promoted. The
// coordinator hedges and fails over reads onto caught-up followers and
// promotes one into the member's place when its leader dies — the
// member keeps its id, so previously issued cluster-global point ids
// keep resolving across the failover.
//
// With -spawn the writable coordinator grows by process: a shard split
// execs a fresh `karl-serve -mutable` child seeded with the moved half,
// discovers its address via -addr-file, and registers it in the
// manifest under its base URL.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"karl"
	"karl/internal/cluster"
	"karl/internal/replica"
	"karl/internal/server"
	"karl/internal/shard"
)

func main() {
	var (
		model    = flag.String("model", "", "saved engine file (from Engine.WriteTo / karl-train)")
		points   = flag.String("points", "", "whitespace-separated vectors to index directly")
		gamma    = flag.Float64("gamma", 1, "Gaussian gamma when building from -points")
		addr     = flag.String("addr", ":8080", "listen address")
		poolSize = flag.Int("pool", 0, "max idle engine clones retained (0 = 2·GOMAXPROCS)")
		sketch   = flag.Float64("sketch-eps", 0, "enable the coreset tier: serve normalized-budget (eps_norm ≥ this bound) approximate queries from a sketch (0 = off)")
		mutable  = flag.Bool("mutable", false, "serve a segmented dynamic engine with POST /v1/insert and DELETE /v1/point (see -seal-size, -fanout)")
		sealSize = flag.Int("seal-size", 0, "memtable seal threshold for -mutable (0 = library default)")
		fanout   = flag.Int("fanout", 0, "compaction fanout for -mutable (0 = library default)")
		window   = flag.Duration("window", 0, "sliding-window TTL for -mutable: points older than this expire at seal/compaction (0 = keep forever)")
		halfLife = flag.Duration("decay-halflife", 0, "exponential weight-decay half-life for -mutable: a point's weight halves every interval (0 = no decay)")
		refine   = flag.Int("refine-workers", 0, "intra-query parallel refinement width per request (0/1 = sequential); usage is reported under \"refine\" in GET /v1/stats")
		readTO   = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "HTTP idle-connection timeout")
		headerTO = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read timeout (slowloris guard)")
		drainTO  = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain timeout")

		coordinator = flag.Bool("coordinator", false, "serve as a scatter-gather coordinator over remote shards (-shards); add -mutable for routed writes")
		shardAddrs  = flag.String("shards", "", "comma-separated shard base URLs for -coordinator; append |url replicas per shard (hedged reads; replication followers with -mutable)")
		shardTO     = flag.Duration("shard-timeout", 2*time.Second, "per-shard attempt timeout for -coordinator")
		partition   = flag.String("partition", "hash", "write-routing partitioner for -coordinator -mutable: hash or kd")
		manifest    = flag.String("manifest", "", "manifest persistence path for -coordinator -mutable (epoch-versioned; empty = in-memory only)")

		replicaOf = flag.String("replica-of", "", "serve as a replication follower of the given leader base URL (-mutable only): pull segments and tail continuously, refuse writes until promoted")
		spawnKids = flag.Bool("spawn", false, "enable the process spawn backend for -coordinator -mutable: shard splits exec a fresh karl-serve -mutable child")
		addrFile  = flag.String("addr-file", "", "write the actual listen address (after binding, useful with -addr :0) to this file")
	)
	flag.Parse()
	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "karl-serve: %v\n", err)
		os.Exit(2)
	}

	if *coordinator {
		if *mutable {
			serveWritableCoordinator(*shardAddrs, *addr, *partition, *manifest, *addrFile,
				flagWasSet("partition"), *spawnKids,
				*shardTO, *readTO, *writeTO, *idleTO, *headerTO, *drainTO)
		} else {
			serveCoordinator(*shardAddrs, *addr, *addrFile, *shardTO, *readTO, *writeTO, *idleTO, *headerTO, *drainTO)
		}
		return
	}

	var opts []server.Option
	if *poolSize > 0 {
		opts = append(opts, server.WithPoolSize(*poolSize))
	}
	if *sketch > 0 {
		opts = append(opts, server.WithSketchTier(*sketch))
	}
	if *refine > 1 {
		opts = append(opts, server.WithRefineWorkers(*refine))
	}

	var srv *server.Server
	var banner string
	if *mutable {
		d, err := buildDynamic(*model, *points, *gamma, *sealSize, *fanout, *window, *halfLife)
		if err != nil {
			log.Fatalf("karl-serve: %v", err)
		}
		if *replicaOf != "" {
			// Follower mode: the engine starts empty (validateFlags
			// rejects -model/-points), bootstraps from the leader's
			// snapshot, and converges through the continuous pull loop.
			// The applier's snapshot install adopts the leader's kernel
			// and maintenance config wholesale, so -gamma etc. need not
			// match the leader. Writes answer 409 until promotion.
			leader := strings.TrimRight(*replicaOf, "/")
			a := replica.NewApplier(d, replica.NewHTTPSource(leader))
			// The local engine was configured by this process's flags,
			// not the leader's: bootstrap from the leader's snapshot so
			// its kernel and maintenance config are adopted wholesale.
			a.BootstrapFromSnapshot()
			srv, err = server.NewMutable(d, append(opts, server.WithReplicaApplier(a))...)
			if err != nil {
				log.Fatalf("karl-serve: %v", err)
			}
			go func() {
				// Run exits nil on promotion; the background context
				// never ends, so any return with an error is fatal news.
				if err := a.Run(context.Background(), 0); err != nil {
					log.Printf("karl-serve: replication pull loop stopped: %v", err)
				}
			}()
			banner = fmt.Sprintf("serving replication follower of %s on %s", leader, *addr)
			run(srv, banner, *addr, *addrFile, *readTO, *writeTO, *idleTO, *headerTO, *drainTO)
			return
		}
		srv, err = server.NewMutable(d, opts...)
		if err != nil {
			log.Fatalf("karl-serve: %v", err)
		}
		banner = fmt.Sprintf("serving mutable engine: %d points (%d dims, %v kernel, %d segments) on %s",
			d.Len(), d.Dims(), d.Kernel().Kind, len(d.Segments()), *addr)
	} else {
		var eng *karl.Engine
		var err error
		switch {
		case *model != "":
			f, err2 := os.Open(*model)
			if err2 != nil {
				log.Fatalf("karl-serve: %v", err2)
			}
			eng, err = karl.ReadEngine(f)
			f.Close()
		case *points != "":
			eng, err = buildFromFile(*points, *gamma)
		default:
			fmt.Fprintln(os.Stderr, "karl-serve: need -model or -points (or -mutable)")
			flag.Usage()
			os.Exit(2)
		}
		if err != nil {
			log.Fatalf("karl-serve: %v", err)
		}
		srv, err = server.New(eng, opts...)
		if err != nil {
			log.Fatalf("karl-serve: %v", err)
		}
		banner = fmt.Sprintf("serving %d points (%d dims, %v kernel) on %s",
			eng.Len(), eng.Dims(), eng.Kernel().Kind, *addr)
	}

	run(srv, banner, *addr, *addrFile, *readTO, *writeTO, *idleTO, *headerTO, *drainTO)
}

// flagWasSet reports whether a flag appeared explicitly on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	found := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// validateFlags rejects contradictory invocations up front: flags that
// belong to a different serving mode fail immediately with an error
// naming the owner, instead of being silently ignored (or failing deep
// inside engine construction).
func validateFlags() error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return validateFlagSet(set)
}

// validateFlagSet holds the flag-ownership table: given the set of flags
// present on the command line, it returns an error naming every flag
// that belongs to a different serving mode.
func validateFlagSet(set map[string]bool) error {

	var wrong []string
	reject := func(mode string, names ...string) {
		for _, name := range names {
			if set[name] {
				wrong = append(wrong, fmt.Sprintf("-%s only applies to %s", name, mode))
			}
		}
	}
	switch {
	case set["coordinator"]:
		// The coordinator serves no data itself; engine-shaping flags
		// belong on the shard processes (writable mode included — each
		// shard is its own -mutable karl-serve).
		reject("a shard process, not -coordinator",
			"model", "points", "gamma", "pool", "sketch-eps",
			"seal-size", "fanout", "window", "decay-halflife", "refine-workers",
			"replica-of")
		if !set["mutable"] {
			reject("-coordinator -mutable", "partition", "manifest", "spawn")
		}
	default:
		reject("-coordinator", "shards", "shard-timeout", "partition", "manifest")
		reject("-coordinator -mutable", "spawn")
		if !set["mutable"] {
			reject("-mutable", "seal-size", "fanout", "window", "decay-halflife", "replica-of")
		}
		if set["mutable"] {
			reject("an immutable engine (-model/-points without -mutable)", "sketch-eps")
		}
		if set["replica-of"] {
			// A follower bootstraps from its leader's snapshot; local
			// seeding would fork it before the first pull.
			reject("a leader shard, not a -replica-of follower", "model", "points")
		}
	}
	if len(wrong) > 0 {
		return errors.New(strings.Join(wrong, "; "))
	}
	return nil
}

// run serves the handler until SIGINT/SIGTERM, then drains. When
// addrFile is non-empty the actual bound address is published there
// (atomic write+rename, so a polling parent never reads a partial
// file) — the discovery handshake for -addr :0 children started by the
// exec spawn backend.
func run(handler http.Handler, banner, addr, addrFile string, readTO, writeTO, idleTO, headerTO, drainTO time.Duration) {
	httpSrv := &http.Server{
		Handler:           handler,
		ReadTimeout:       readTO,
		WriteTimeout:      writeTO,
		IdleTimeout:       idleTO,
		ReadHeaderTimeout: headerTO,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("karl-serve: %v", err)
	}
	if addrFile != "" {
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("karl-serve: writing -addr-file: %v", err)
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			log.Fatalf("karl-serve: writing -addr-file: %v", err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("%s (listening on %s)", banner, ln.Addr())

	select {
	case err := <-errc:
		log.Fatalf("karl-serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down, draining for up to %v", drainTO)
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Fatalf("karl-serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("karl-serve: %v", err)
		}
	}
}

// serveCoordinator builds the scatter-gather front end over remote
// shards and serves its HTTP surface.
func serveCoordinator(shardAddrs, addr, addrFile string, shardTO, readTO, writeTO, idleTO, headerTO, drainTO time.Duration) {
	specs, err := parseShards(shardAddrs)
	if err != nil {
		log.Fatalf("karl-serve: %v", err)
	}
	co, err := cluster.New(context.Background(), specs, cluster.Config{Timeout: shardTO})
	if err != nil {
		log.Fatalf("karl-serve: %v", err)
	}
	banner := fmt.Sprintf("coordinating %d points (%d dims, %s kernel) across %d shards on %s",
		co.Points(), co.Dims(), co.KernelName(), co.NumShards(), addr)
	run(cluster.NewHTTPServer(co), banner, addr, addrFile, readTO, writeTO, idleTO, headerTO, drainTO)
}

// serveWritableCoordinator builds the write-routing front end over
// remote mutable shards and serves its HTTP surface. With -spawn,
// shard splits exec fresh karl-serve -mutable child processes
// (spawnExec); without it a static -shards list cannot provide new
// processes, so splitting is disabled. Membership persists through
// -manifest either way.
//
// A |url replica on a -shards entry names a karl-serve -replica-of
// follower of that shard: the coordinator hedges and fails over reads
// onto it while it is caught up, and promotes it into the member's
// place when the leader dies.
//
// When -manifest names an existing file, the coordinator RESUMES from
// it: the persisted epoch, routing and lineage carry over and the
// -shards clients re-attach to the manifest's members by URL (members
// without a reachable shard serve as unreachable, degrading answers to
// the explicit partial contract). Only when the file is absent is a
// fresh epoch-1 cluster founded — founding over an existing file would
// be refused as a stale-epoch write anyway.
func serveWritableCoordinator(shardAddrs, addr, partition, manifestPath, addrFile string, partitionSet, spawnKids bool, shardTO, readTO, writeTO, idleTO, headerTO, drainTO time.Duration) {
	kind, err := shard.ParseKind(partition)
	if err != nil {
		log.Fatalf("karl-serve: -partition: %v", err)
	}
	specs, err := parseShards(shardAddrs)
	if err != nil {
		log.Fatalf("karl-serve: %v", err)
	}
	shards := make([]cluster.WritableShard, len(specs))
	for i, spec := range specs {
		hs, ok := spec.Client.(*cluster.HTTPShard)
		if !ok {
			log.Fatalf("karl-serve: writable coordinator needs HTTP shards")
		}
		shards[i] = cluster.WritableShard{Name: hs.Name(), Client: hs}
		for _, rep := range spec.Replicas {
			rhs, ok := rep.(*cluster.HTTPShard)
			if !ok {
				log.Fatalf("karl-serve: writable coordinator needs HTTP shards")
			}
			shards[i].Followers = append(shards[i].Followers, rhs)
		}
	}
	var spawn cluster.SpawnFunc
	if spawnKids {
		spawn = spawnExec
	}
	cfg := cluster.WritableConfig{
		Config:       cluster.Config{Timeout: shardTO},
		ManifestPath: manifestPath,
	}

	var co *cluster.WritableCoordinator
	verb := "coordinating"
	if manifestPath != "" {
		man, err := cluster.LoadManifest(manifestPath)
		switch {
		case err == nil:
			if partitionSet && man.Kind != kind {
				log.Fatalf("karl-serve: -partition %s disagrees with the persisted manifest's %s routing; drop the flag to resume, or point -manifest elsewhere to found fresh", kind, man.Kind)
			}
			kind = man.Kind
			co, err = cluster.ResumeWritable(context.Background(), man, shards, spawn, cfg)
			if err != nil {
				log.Fatalf("karl-serve: resuming from %s: %v", manifestPath, err)
			}
			verb = "resuming"
		case errors.Is(err, os.ErrNotExist):
			// No manifest yet: found fresh below.
		default:
			log.Fatalf("karl-serve: loading manifest %s: %v", manifestPath, err)
		}
	}
	if co == nil {
		co, err = cluster.NewWritable(context.Background(), kind, shards, spawn, cfg)
		if err != nil {
			log.Fatalf("karl-serve: %v", err)
		}
	}
	banner := fmt.Sprintf("%s writable cluster: %d points (%d dims, %s kernel) across %d shards (%s partition, epoch %d) on %s",
		verb, co.Points(), co.Dims(), co.KernelName(), co.NumShards(), kind, co.Epoch(), addr)
	run(cluster.NewWritableHTTPServer(co), banner, addr, addrFile, readTO, writeTO, idleTO, headerTO, drainTO)
}

// parseShards parses "-shards url[|replica...],url[|replica...]".
func parseShards(s string) ([]cluster.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-coordinator needs -shards url1,url2,...")
	}
	var specs []cluster.Shard
	for _, entry := range strings.Split(s, ",") {
		urls := strings.Split(strings.TrimSpace(entry), "|")
		if urls[0] == "" {
			return nil, fmt.Errorf("empty shard entry in -shards %q", s)
		}
		spec := cluster.Shard{Client: cluster.NewHTTPShard(strings.TrimRight(urls[0], "/"))}
		for _, rep := range urls[1:] {
			if rep = strings.TrimSpace(rep); rep != "" {
				spec.Replicas = append(spec.Replicas, cluster.NewHTTPShard(strings.TrimRight(rep, "/")))
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// buildDynamic assembles the engine behind a -mutable server: a saved
// dynamic engine (-model, which carries its own kernel and policy), an
// empty engine, or an empty engine seeded by replaying -points as
// inserts.
func buildDynamic(model, points string, gamma float64, sealSize, fanout int, window, halfLife time.Duration) (*karl.DynamicEngine, error) {
	if model != "" {
		if points != "" {
			return nil, fmt.Errorf("-model and -points are mutually exclusive with -mutable")
		}
		if window != 0 || halfLife != 0 {
			return nil, fmt.Errorf("-window and -decay-halflife are baked into a saved dynamic engine; they cannot be overridden with -model")
		}
		f, err := os.Open(model)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return karl.ReadDynamic(f)
	}
	var opts []karl.Option
	if sealSize > 0 {
		opts = append(opts, karl.WithSealSize(sealSize))
	}
	if fanout > 0 {
		opts = append(opts, karl.WithCompactionFanout(fanout))
	}
	if window > 0 {
		opts = append(opts, karl.WithTTL(window))
	}
	if halfLife > 0 {
		opts = append(opts, karl.WithDecayHalfLife(halfLife))
	}
	d, err := karl.NewDynamic(karl.Gaussian(gamma), opts...)
	if err != nil {
		return nil, err
	}
	if points == "" {
		return d, nil
	}
	rows, err := readRows(points)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if err := d.Insert(row, 1); err != nil {
			return nil, fmt.Errorf("insert row %d: %w", i, err)
		}
	}
	return d, nil
}

func buildFromFile(path string, gamma float64) (*karl.Engine, error) {
	rows, err := readRows(path)
	if err != nil {
		return nil, err
	}
	return karl.Build(rows, karl.Gaussian(gamma))
}

func readRows(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for i, fv := range fields {
			v, err := strconv.ParseFloat(fv, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", fv, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
