package main

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"karl"
	"karl/internal/cluster"
	"karl/internal/shard"
)

// TestMain doubles as the spawned child's entry point: spawnExec execs
// the test binary with KARL_SERVE_REEXEC=1 and real karl-serve flags,
// and we dispatch into main() before the testing framework parses the
// command line.
func TestMain(m *testing.M) {
	if os.Getenv("KARL_SERVE_REEXEC") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestSpawnExecSplit exercises the exec spawn backend end to end: a
// writable cluster founded over one real child process splits, the
// spawner execs a second `karl-serve -mutable` child seeded with the
// moved half, and the persisted manifest records that child under its
// base URL — with the total kernel mass conserved across the split.
func TestSpawnExecSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes")
	}
	t.Cleanup(killSpawned)
	ctx := context.Background()

	d, err := karl.NewDynamic(karl.Gaussian(0.8), karl.WithSealSize(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		p := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if err := d.Insert(p, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	q := []float64{0.25, -0.4}
	want, err := d.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	var seedStream bytes.Buffer
	if _, err := d.WriteTo(&seedStream); err != nil {
		t.Fatal(err)
	}

	// Found the cluster over a child process started by the same spawn
	// path a split uses, so the whole test runs against real processes.
	seed, err := spawnExec(ctx, shard.Member{ID: 1, Name: "seed"}, seedStream.Bytes())
	if err != nil {
		t.Fatalf("spawning founding shard: %v", err)
	}
	manPath := filepath.Join(t.TempDir(), "cluster.manifest")
	wco, err := cluster.NewWritable(ctx, shard.Hash,
		[]cluster.WritableShard{{Client: seed}}, spawnExec,
		cluster.WritableConfig{
			Config:       cluster.Config{Timeout: 5 * time.Second},
			ManifestPath: manPath,
		})
	if err != nil {
		t.Fatalf("NewWritable: %v", err)
	}

	if err := wco.Split(ctx, 1); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if n := wco.NumShards(); n != 2 {
		t.Fatalf("NumShards = %d after split, want 2", n)
	}

	// The spawned member must be in the PERSISTED manifest under its
	// base URL (what a later resume re-attaches by), not under the
	// placeholder name the coordinator invented before the child's
	// address was known.
	man, err := cluster.LoadManifest(manPath)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	mb := man.Member(2)
	if mb == nil {
		t.Fatalf("spawned member 2 missing from persisted manifest (members: %+v)", man.Members)
	}
	if !strings.HasPrefix(mb.Name, "http://127.0.0.1:") {
		t.Fatalf("spawned member name = %q, want its base URL", mb.Name)
	}

	// Both members are live OS processes.
	spawnedProcs.mu.Lock()
	procs := append([]*os.Process(nil), spawnedProcs.procs...)
	spawnedProcs.mu.Unlock()
	if len(procs) != 2 {
		t.Fatalf("spawned %d processes, want 2", len(procs))
	}
	for i, p := range procs {
		if err := p.Signal(syscall.Signal(0)); err != nil {
			t.Fatalf("spawned process %d (pid %d) not alive: %v", i, p.Pid, err)
		}
	}

	// Mass conservation: the split moved half the points into the new
	// child; the cluster aggregate over both processes must equal the
	// pre-split monolithic value.
	res, err := wco.Aggregate(ctx, q)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if res.Partial {
		t.Fatalf("aggregate partial after split: %+v", res)
	}
	if math.Abs(res.Value-want) > 1e-9*math.Abs(want) {
		t.Fatalf("post-split aggregate = %v, want %v", res.Value, want)
	}

	// The child answers direct deletes routed by the coordinator too:
	// insert through the cluster and delete the returned global ids.
	pts := [][]float64{{0.1, 0.2}, {-0.3, 0.7}, {1.1, -0.2}}
	ids, err := wco.Insert(ctx, pts, nil)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for _, id := range ids {
		if err := wco.Delete(ctx, id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
}

// spawnServe execs the test binary as a karl-serve process with the
// given flags (plus -addr 127.0.0.1:0 and the -addr-file handshake) and
// returns its base URL once the address is published.
func spawnServe(t *testing.T, args ...string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe, append(args, "-addr", "127.0.0.1:0", "-addr-file", addrFile)...)
	cmd.Env = append(os.Environ(), "KARL_SERVE_REEXEC=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	addr, err := waitForAddrFile(context.Background(), addrFile, spawnStartTimeout)
	if err != nil {
		t.Fatalf("child never published its address: %v", err)
	}
	return "http://" + addr
}

// TestReplicaOfProcess runs the -replica-of serving mode end to end
// across two real processes: the follower bootstraps from the leader's
// snapshot, converges through the pull loop, refuses writes until
// promoted over HTTP, and accepts them afterwards.
func TestReplicaOfProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes")
	}
	ctx := context.Background()

	leaderURL := spawnServe(t, "-mutable", "-gamma", "0.9", "-seal-size", "64")
	leader := cluster.NewHTTPShard(leaderURL)
	if err := waitHealthy(ctx, leader); err != nil {
		t.Fatalf("leader never healthy: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	ids, err := leader.Insert(ctx, pts, nil)
	if err != nil {
		t.Fatalf("leader insert: %v", err)
	}
	for i, id := range ids {
		if i%9 == 2 {
			if err := leader.Delete(ctx, id); err != nil {
				t.Fatalf("leader delete: %v", err)
			}
		}
	}

	followerURL := spawnServe(t, "-mutable", "-replica-of", leaderURL)
	follower := cluster.NewHTTPShard(followerURL)
	if err := waitHealthy(ctx, follower); err != nil {
		t.Fatalf("follower never healthy: %v", err)
	}

	// Converge: the pull loop ticks every 100ms. Lag() alone is not
	// convergence — deletes advance the delete position, not the seq
	// watermark — so compare both counters against the now-quiescent
	// leader's status.
	leaderSt, err := leader.ReplicaStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(spawnStartTimeout)
	for {
		st, err := follower.ReplicaStatus(ctx)
		if err == nil && st.State == "live" &&
			st.NextSeq == leaderSt.NextSeq && st.DeletePos == leaderSt.DeletePos {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up (last status %+v, err %v; leader %+v)", st, err, leaderSt)
		}
		time.Sleep(50 * time.Millisecond)
	}
	q := []float64{0.4, -0.15}
	want, err := leader.Aggregate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.Aggregate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("follower aggregate = %v, leader = %v", got, want)
	}

	// An unpromoted follower refuses writes — a misrouted insert must
	// not fork it from its leader.
	if _, err := follower.Insert(ctx, [][]float64{{0, 0}}, nil); err == nil {
		t.Fatal("insert on unpromoted follower should fail")
	}

	if _, err := follower.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := follower.Insert(ctx, [][]float64{{0.2, 0.2}}, nil); err != nil {
		t.Fatalf("insert on promoted follower: %v", err)
	}
}

func waitHealthy(ctx context.Context, s *cluster.HTTPShard) error {
	deadline := time.Now().Add(spawnStartTimeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		err := s.Healthy(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}
