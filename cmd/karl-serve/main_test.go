package main

import (
	"strings"
	"testing"
)

func TestParseShards(t *testing.T) {
	specs, err := parseShards("http://a:8080, http://b:8080|http://b2:8080 ,http://c:8080/")
	if err != nil {
		t.Fatalf("parseShards: %v", err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d shards, want 3", len(specs))
	}
	if specs[0].Client.Name() != "http://a:8080" || len(specs[0].Replicas) != 0 {
		t.Fatalf("shard 0: %q %d replicas", specs[0].Client.Name(), len(specs[0].Replicas))
	}
	if len(specs[1].Replicas) != 1 || specs[1].Replicas[0].Name() != "http://b2:8080" {
		t.Fatalf("shard 1 replicas wrong: %+v", specs[1].Replicas)
	}
	if specs[2].Client.Name() != "http://c:8080" {
		t.Fatalf("trailing slash not trimmed: %q", specs[2].Client.Name())
	}

	if _, err := parseShards(""); err == nil {
		t.Fatal("empty -shards should fail")
	}
	if _, err := parseShards("http://a:8080,,http://c:8080"); err == nil {
		t.Fatal("empty entry should fail")
	}
}

// TestValidateFlagSet pins the flag-ownership table: every serving mode
// rejects flags owned by a different mode with an error naming the
// owner, and accepts its own flags.
func TestValidateFlagSet(t *testing.T) {
	cases := []struct {
		name string
		set  []string
		want []string // substrings the error must contain; empty = no error
	}{
		{"plain model", []string{"model", "addr", "pool"}, nil},
		{"mutable", []string{"mutable", "gamma", "seal-size", "window"}, nil},
		{"coordinator", []string{"coordinator", "shards", "shard-timeout"}, nil},
		{"writable coordinator", []string{"coordinator", "mutable", "shards", "partition", "manifest"}, nil},
		{"engine flags on coordinator", []string{"coordinator", "shards", "gamma", "refine-workers"},
			[]string{"-gamma only applies to a shard process", "-refine-workers only applies to a shard process"}},
		{"partition without mutable", []string{"coordinator", "shards", "partition"},
			[]string{"-partition only applies to -coordinator -mutable"}},
		{"shards without coordinator", []string{"model", "shards"},
			[]string{"-shards only applies to -coordinator"}},
		{"mutable flags without mutable", []string{"model", "seal-size", "decay-halflife"},
			[]string{"-seal-size only applies to -mutable", "-decay-halflife only applies to -mutable"}},
		{"sketch tier on mutable", []string{"mutable", "sketch-eps"},
			[]string{"-sketch-eps only applies to an immutable engine"}},
		{"replication follower", []string{"mutable", "replica-of", "addr-file"}, nil},
		{"spawning writable coordinator", []string{"coordinator", "mutable", "shards", "spawn", "manifest"}, nil},
		{"replica-of without mutable", []string{"model", "replica-of"},
			[]string{"-replica-of only applies to -mutable"}},
		{"replica-of on coordinator", []string{"coordinator", "mutable", "shards", "replica-of"},
			[]string{"-replica-of only applies to a shard process"}},
		{"follower with local seed", []string{"mutable", "replica-of", "model"},
			[]string{"-model only applies to a leader shard"}},
		{"spawn without coordinator", []string{"mutable", "spawn"},
			[]string{"-spawn only applies to -coordinator -mutable"}},
		{"spawn on read-only coordinator", []string{"coordinator", "shards", "spawn"},
			[]string{"-spawn only applies to -coordinator -mutable"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			err := validateFlagSet(set)
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %v", tc.want)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q missing %q", err, sub)
				}
			}
		})
	}
}
