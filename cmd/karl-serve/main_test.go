package main

import "testing"

func TestParseShards(t *testing.T) {
	specs, err := parseShards("http://a:8080, http://b:8080|http://b2:8080 ,http://c:8080/")
	if err != nil {
		t.Fatalf("parseShards: %v", err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d shards, want 3", len(specs))
	}
	if specs[0].Client.Name() != "http://a:8080" || len(specs[0].Replicas) != 0 {
		t.Fatalf("shard 0: %q %d replicas", specs[0].Client.Name(), len(specs[0].Replicas))
	}
	if len(specs[1].Replicas) != 1 || specs[1].Replicas[0].Name() != "http://b2:8080" {
		t.Fatalf("shard 1 replicas wrong: %+v", specs[1].Replicas)
	}
	if specs[2].Client.Name() != "http://c:8080" {
		t.Fatalf("trailing slash not trimmed: %q", specs[2].Client.Name())
	}

	if _, err := parseShards(""); err == nil {
		t.Fatal("empty -shards should fail")
	}
	if _, err := parseShards("http://a:8080,,http://c:8080"); err == nil {
		t.Fatal("empty entry should fail")
	}
}
