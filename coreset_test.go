package karl

import (
	"math"
	"math/rand"
	"testing"
)

// TestBuildCoresetTypeI checks the public entry point: the coreset engine
// is much smaller than the source, carries provenance, and its normalized
// aggregates track the full engine's within ε at ≥ 99% of queries.
func TestBuildCoresetTypeI(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 5000
	if testing.Short() {
		n = 1500
	}
	pts := cloud(rng, n, 3)
	full, err := Build(pts, Gaussian(25))
	if err != nil {
		t.Fatal(err)
	}
	small, err := BuildCoreset(pts, Gaussian(25), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := small.SketchInfo()
	if !ok {
		t.Fatal("no sketch info")
	}
	if info.Method != CoresetHalving {
		t.Fatalf("auto method on Type I = %v", info.Method)
	}
	if small.Len() >= full.Len()/4 {
		t.Fatalf("coreset %d of %d points: no meaningful reduction", small.Len(), full.Len())
	}
	if info.SourceLen != n || info.Len != small.Len() || info.Eps != 0.1 {
		t.Fatalf("bad provenance %+v", info)
	}
	bad := 0
	const nq = 300
	for i := 0; i < nq; i++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		exact, _ := full.Aggregate(q)
		approx, _ := small.Aggregate(q)
		if math.Abs(exact-approx)/info.SourceWeight > info.Eps {
			bad++
		}
	}
	if float64(bad)/nq > 0.01 {
		t.Fatalf("ε violated at %d of %d queries", bad, nq)
	}
}

// TestEngineSketchInheritsLayout checks Sketch keeps the source engine's
// index structure, leaf capacity and bounding method unless overridden.
func TestEngineSketchInheritsLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := cloud(rng, 2500, 3)
	full, err := Build(pts, Gaussian(15), WithIndex(BallTree, 24), WithMethod(MethodSOTA))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := full.Sketch(0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.tree.Kind.String(); got != "ball-tree" {
		t.Fatalf("index kind not inherited: %v", got)
	}
	if sk.tree.LeafCap != 24 {
		t.Fatalf("leaf capacity not inherited: %d", sk.tree.LeafCap)
	}
	if sk.eng.Method() != methodOf(MethodSOTA) {
		t.Fatal("bounding method not inherited")
	}
	if _, ok := sk.SketchInfo(); !ok {
		t.Fatal("sketch info missing")
	}
	// Override on derivation.
	sk2, err := full.Sketch(0.15, WithIndex(KDTree, 8), WithCoresetMethod(CoresetUniform), WithCoresetSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := sk2.tree.Kind.String(); got != "kd-tree" {
		t.Fatalf("index override ignored: %v", got)
	}
	info, _ := sk2.SketchInfo()
	if info.Method != CoresetUniform {
		t.Fatalf("method override ignored: %v", info.Method)
	}
}

// TestEngineSketchTypeII checks weighted sources flow through sensitivity
// sampling with the weight total preserved.
func TestEngineSketchTypeII(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := cloud(rng, 3000, 2)
	w := make([]float64, len(pts))
	var total float64
	for i := range w {
		w[i] = 0.5 + rng.Float64()*2
		total += w[i]
	}
	full, err := Build(pts, Gaussian(12), WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := full.Sketch(0.1)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := sk.SketchInfo()
	if info.Method != CoresetSensitivity {
		t.Fatalf("auto method on Type II = %v", info.Method)
	}
	if math.Abs(info.SourceWeight-total) > 1e-6*total {
		t.Fatalf("source weight %v, want %v", info.SourceWeight, total)
	}
}

// TestSketchRejectsTypeIII: mixed-sign engines have no normalized-error
// sketch; the error must say why.
func TestSketchRejectsTypeIII(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := cloud(rng, 500, 2)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	full, err := Build(pts, Gaussian(5), WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Sketch(0.1); err == nil {
		t.Fatal("Type III sketch accepted")
	}
	if _, err := BuildCoreset(pts, Gaussian(5), 0.1, WithWeights(w)); err == nil {
		t.Fatal("Type III BuildCoreset accepted")
	}
	// Non-distance kernels are rejected too.
	if _, err := BuildCoreset(pts, Polynomial(1, 1, 2), 0.1); err == nil {
		t.Fatal("polynomial-kernel coreset accepted")
	}
	// Bad eps values.
	for _, eps := range []float64{0, -0.1, 1, math.NaN()} {
		if _, err := BuildCoreset(pts, Gaussian(5), eps); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
	if _, err := BuildCoreset(nil, Gaussian(5), 0.1); err == nil {
		t.Fatal("empty point set accepted")
	}
}

// TestKDECompress checks the density-level contract: compressed densities
// stay within ε of the exact full-set densities (density is the
// normalized aggregate, so the coreset bound transfers one-to-one).
func TestKDECompress(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	n := 4000
	if testing.Short() {
		n = 1200
	}
	pts := cloud(rng, n, 2)
	k, err := NewKDE(pts)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := k.Compress(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Gamma() != k.Gamma() {
		t.Fatalf("bandwidth changed: %v vs %v", ck.Gamma(), k.Gamma())
	}
	info, ok := ck.Engine().SketchInfo()
	if !ok {
		t.Fatal("compressed KDE has no sketch info")
	}
	if info.SourceLen != n {
		t.Fatalf("provenance source %d, want %d", info.SourceLen, n)
	}
	bad := 0
	const nq = 200
	for i := 0; i < nq; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		exact, err := k.Engine().Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ck.Density(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact/float64(n)) > info.Eps {
			bad++
		}
	}
	if float64(bad)/nq > 0.01 {
		t.Fatalf("density ε violated at %d of %d queries", bad, nq)
	}
}

// TestCoresetCloneCarriesProvenance: server pools clone coreset engines;
// the provenance must follow the clone.
func TestCoresetCloneCarriesProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	pts := cloud(rng, 1000, 2)
	eng, err := BuildCoreset(pts, Gaussian(10), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := eng.Clone().SketchInfo()
	if !ok {
		t.Fatal("clone lost sketch info")
	}
	oi, _ := eng.SketchInfo()
	if ci != oi {
		t.Fatalf("clone provenance %+v differs from %+v", ci, oi)
	}
}
