package karl

import (
	"errors"
	"fmt"

	"karl/internal/svm"
	"karl/internal/vec"
)

// SVM is a trained support vector machine whose decision function is
// served by KARL's threshold kernel aggregation: Classify(q) evaluates
// F_SV(q) > ρ with the engine's pruned refinement instead of a full scan
// over the support vectors.
type SVM struct {
	eng *Engine
	// Rho is the decision threshold.
	Rho float64
	// SupportVectors is the number of support vectors retained.
	SupportVectors int
}

// SVMConfig carries the training hyperparameters.
type SVMConfig struct {
	// Kernel defaults to Gaussian(1/d) — LibSVM's default γ.
	Kernel Kernel
	// C is the 2-class soft-margin parameter (default 1).
	C float64
	// Nu is the 1-class ν in (0,1] (default 0.5).
	Nu float64
	// Index configures the engine over the support vectors (defaults match
	// Build).
	Index   IndexKind
	LeafCap int
}

func (c SVMConfig) kernelOrDefault(d int) Kernel {
	if c.Kernel.Gamma > 0 {
		return c.Kernel
	}
	return Gaussian(1 / float64(d))
}

func (c SVMConfig) leafCapOrDefault() int {
	if c.LeafCap > 0 {
		return c.LeafCap
	}
	return 80
}

// TrainOneClassSVM trains a ν-one-class SVM (Type II weighting) and wraps
// it in a KARL engine. Classify returns true for inliers.
func TrainOneClassSVM(points [][]float64, cfg SVMConfig) (*SVM, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty training set")
	}
	m := vec.FromRows(points)
	model, err := svm.TrainOneClass(m, svm.Config{
		Kernel: cfg.kernelOrDefault(m.Cols),
		Nu:     cfg.Nu,
	})
	if err != nil {
		return nil, err
	}
	return wrapModel(model, cfg)
}

// TrainTwoClassSVM trains a 2-class C-SVM (Type III weighting) on labels
// in {−1,+1} and wraps it in a KARL engine. Classify returns true for the
// +1 class.
func TrainTwoClassSVM(points [][]float64, labels []float64, cfg SVMConfig) (*SVM, error) {
	if len(points) == 0 {
		return nil, errors.New("karl: empty training set")
	}
	if len(labels) != len(points) {
		return nil, fmt.Errorf("karl: %d labels for %d points", len(labels), len(points))
	}
	m := vec.FromRows(points)
	model, err := svm.TrainTwoClass(m, labels, svm.Config{
		Kernel: cfg.kernelOrDefault(m.Cols),
		C:      cfg.C,
	})
	if err != nil {
		return nil, err
	}
	return wrapModel(model, cfg)
}

// NewSVM wraps an externally trained kernel decision function — support
// vectors, weights w_i (= α_i·y_i), and threshold ρ, e.g. imported from a
// LibSVM model file — in a KARL-accelerated classifier.
func NewSVM(supportVectors [][]float64, weights []float64, rho float64, kern Kernel, opts ...Option) (*SVM, error) {
	if len(supportVectors) == 0 {
		return nil, errors.New("karl: no support vectors")
	}
	if len(weights) != len(supportVectors) {
		return nil, fmt.Errorf("karl: %d weights for %d support vectors", len(weights), len(supportVectors))
	}
	allOpts := append(append([]Option{}, opts...), WithWeights(weights))
	eng, err := Build(supportVectors, kern, allOpts...)
	if err != nil {
		return nil, err
	}
	return &SVM{eng: eng, Rho: rho, SupportVectors: len(supportVectors)}, nil
}

// wrapModel indexes a trained model's support vectors.
func wrapModel(model *svm.Model, cfg SVMConfig) (*SVM, error) {
	eng, err := buildMatrix(model.SV, model.Kernel,
		WithWeights(model.Weights),
		WithIndex(cfg.Index, cfg.leafCapOrDefault()))
	if err != nil {
		return nil, err
	}
	return &SVM{eng: eng, Rho: model.Rho, SupportVectors: model.SV.Rows}, nil
}

// Classify answers the SVM prediction for q as a TKAQ: F_SV(q) > ρ.
func (s *SVM) Classify(q []float64) (bool, error) {
	return s.eng.Threshold(q, s.Rho)
}

// Decision returns the exact decision value F_SV(q) − ρ.
func (s *SVM) Decision(q []float64) (float64, error) {
	f, err := s.eng.Aggregate(q)
	if err != nil {
		return 0, err
	}
	return f - s.Rho, nil
}

// Engine exposes the underlying KARL engine over the support vectors.
func (s *SVM) Engine() *Engine { return s.eng }
