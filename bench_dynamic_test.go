package karl

import (
	"testing"
)

// BenchmarkInsertHeavy measures the segmented engine under a 90/10
// query/insert steady state: every tenth operation streams a new point in
// (absorbing seal and background-compaction cost), the rest are
// approximate queries over the live manifest. This is the workload the
// LSM-style architecture exists for — a stop-the-world rebuild anywhere
// in the maintenance path shows up directly in the per-op time.
func BenchmarkInsertHeavy(b *testing.B) {
	pts, q := benchCloud(20000, 8)
	d, err := NewDynamic(Gaussian(20), WithSealSize(512), WithCompactionFanout(4))
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pts[:10000] {
		if err := d.Insert(p, 1); err != nil {
			b.Fatal(err)
		}
	}
	next := 10000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10 == 9 {
			if err := d.Insert(pts[next%len(pts)], 1); err != nil {
				b.Fatal(err)
			}
			next++
		} else {
			if _, err := d.Approximate(q, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDynamicInsert isolates the write path: appends into the
// memtable with periodic seals, no queries.
func BenchmarkDynamicInsert(b *testing.B) {
	pts, _ := benchCloud(20000, 8)
	d, err := NewDynamic(Gaussian(20), WithSealSize(512), WithCompactionFanout(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Insert(pts[i%len(pts)], 1); err != nil {
			b.Fatal(err)
		}
	}
}
