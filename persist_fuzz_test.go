package karl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedCorpus loads every committed golden fixture plus a few
// hand-written degenerate inputs, so both fuzzers start from valid
// streams of every format version and mutate from there.
//
// Note for interactive use: gob streams minimize poorly (nearly every
// byte is load-bearing), so run with a bounded minimization budget or
// the default 60s-per-interesting-input stalls all visible progress:
//
//	go test -fuzz FuzzRead -fuzztime 30s -fuzzminimizetime 100x
func fuzzSeedCorpus(f *testing.F) {
	f.Helper()
	names, err := filepath.Glob(filepath.Join(goldenDir, "*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob"))
	// A gob stream whose type section is valid but whose value is cut off.
	if len(names) > 0 {
		raw, _ := os.ReadFile(names[0])
		if len(raw) > 40 {
			f.Add(raw[:len(raw)/2])
		}
	}
}

// FuzzRead hammers the static decode path: arbitrary bytes must either
// load into a usable engine or fail with a clean error — never panic,
// never return a broken engine that panics on first use.
func FuzzRead(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		eng, err := ReadEngine(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded engine must survive basic use.
		q := make([]float64, eng.Dims())
		if _, err := eng.Aggregate(q); err != nil {
			t.Logf("aggregate on decoded engine: %v", err)
		}
		var sink bytes.Buffer
		if _, err := eng.WriteTo(&sink); err != nil {
			t.Fatalf("re-serialize decoded engine: %v", err)
		}
	})
}

// FuzzReadDynamic hammers the dynamic decode path, which has far more
// cross-field invariants to validate (per-segment sequence numbers,
// tombstone references, memtable parallel arrays): arbitrary bytes must
// never panic, and a stream that decodes must yield an engine whose
// query, mutation and re-serialization paths work.
func FuzzReadDynamic(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		d, err := ReadDynamic(bytes.NewReader(data))
		if err != nil {
			return
		}
		defer d.Close()
		q := make([]float64, d.Dims())
		if _, err := d.Aggregate(q); err != nil {
			t.Logf("aggregate on decoded engine: %v", err)
		}
		// Exercise the mutability surfaces the decoder is supposed to have
		// validated: delete an early ID (either outcome is fine, panics are
		// not) and round-trip.
		_ = d.Delete(1)
		var sink bytes.Buffer
		if _, err := d.WriteTo(&sink); err != nil {
			t.Fatalf("re-serialize decoded engine: %v", err)
		}
	})
}
