package karl

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"karl/internal/shard"
)

// TestReadEngineRejectsTruncated checks every truncation point of a valid
// static engine stream fails with an error instead of a panic or a
// silently short engine.
func TestReadEngineRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	eng, err := Build(cloud(rng, 200, 3), Gaussian(1), WithIndex(BallTree, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		cut := int(frac * float64(len(full)))
		if _, err := ReadEngine(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("stream truncated to %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := ReadEngine(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("stream short by one byte accepted")
	}
	// The untruncated original still loads (the harness is sound).
	if _, err := ReadEngine(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadDynamicRejectsTruncated covers truncated manifest streams: a
// multi-segment dynamic engine cut mid-stream must fail loudly at every
// truncation point.
func TestReadDynamicRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d, err := NewDynamic(Gaussian(2), WithSealSize(32), WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := d.Insert([]float64{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.Segments()); got < 2 {
		t.Fatalf("want a multi-segment manifest, got %d segments", got)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		cut := int(frac * float64(len(full)))
		if _, err := ReadDynamic(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("stream truncated to %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := ReadDynamic(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadDynamicRejectsBadVersionAndGarbage pins the dynamic reader's
// error quality: a wrong version names itself and the readable range, and
// non-gob bytes fail outright.
func TestReadDynamicRejectsBadVersionAndGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dynamicPayload{Version: 99, SealSize: 64}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadDynamic(&buf)
	if err == nil {
		t.Fatal("version 99 accepted")
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version error %q does not name the version", err)
	}

	if _, err := ReadDynamic(bytes.NewReader([]byte("KARLv99 this is not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadDynamic(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestClusterManifestRejectsTruncated puts the dynamic cluster manifest
// (the writable coordinator's routing/membership file) through the same
// truncation gauntlet as the engine streams: every prefix of a valid
// stream must fail loudly, and the full stream must load back with the
// epoch intact.
func TestClusterManifestRejectsTruncated(t *testing.T) {
	man, err := shard.NewManifest(shard.Hash, []shard.Member{
		{ID: 1, Name: "a", Points: 90, WPos: 45.5},
		{ID: 2, Name: "b", Points: 110, WPos: 54, WNeg: 1.5},
		{ID: 3, Name: "c", Points: 70, WPos: 36},
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := man.MemberSlots(2)
	man, err = man.ApplySplit(2, shard.Member{ID: 4, Name: "b/split-4", BaseSeq: 111},
		shard.SplitRule{Kind: shard.Hash, NumSlots: man.NumSlots, Slots: slots[len(slots)/2:]})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := man.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		cut := int(frac * float64(len(full)))
		if _, err := shard.ReadManifest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("manifest truncated to %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := shard.ReadManifest(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("manifest short by one byte accepted")
	}
	loaded, err := shard.ReadManifest(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("full manifest rejected: %v", err)
	}
	if loaded.Epoch != man.Epoch || len(loaded.Members) != len(man.Members) {
		t.Fatalf("manifest round trip drifted: epoch %d/%d, members %d/%d",
			loaded.Epoch, man.Epoch, len(loaded.Members), len(man.Members))
	}
}

// TestClusterManifestV2RejectsCorrupt puts a replica-bearing manifest
// (format v2) through the truncation gauntlet, then checks the reader's
// replica validation: bad roles, empty or duplicate replica names, and
// non-leader top-level members must all fail loudly.
func TestClusterManifestV2RejectsCorrupt(t *testing.T) {
	build := func() *shard.Manifest {
		man, err := shard.NewManifest(shard.Hash, []shard.Member{
			{ID: 1, Name: "a", Points: 90, WPos: 45.5},
			{ID: 2, Name: "b", Points: 110, WPos: 54},
		})
		if err != nil {
			t.Fatal(err)
		}
		man.Members[0].Replicas = []shard.Replica{{Name: "a-f0", Role: shard.RoleFollower, AckedSeq: 90}}
		man.Members[1].Replicas = []shard.Replica{{Name: "b-f0", Role: shard.RoleCatchingUp, AckedSeq: 12}}
		return man
	}
	var buf bytes.Buffer
	if _, err := build().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		cut := int(frac * float64(len(full)))
		if _, err := shard.ReadManifest(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("v2 manifest truncated to %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := shard.ReadManifest(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("v2 manifest short by one byte accepted")
	}
	loaded, err := shard.ReadManifest(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("full v2 manifest rejected: %v", err)
	}
	if len(loaded.Members[0].Replicas) != 1 || loaded.Members[0].Replicas[0].AckedSeq != 90 {
		t.Fatalf("v2 manifest round trip dropped replicas: %+v", loaded.Members[0])
	}

	corrupt := func(name string, mutate func(*shard.Manifest), wantSub string) {
		t.Helper()
		man := build()
		mutate(man)
		var b bytes.Buffer
		if _, err := man.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		_, err := shard.ReadManifest(bytes.NewReader(b.Bytes()))
		if err == nil {
			t.Fatalf("%s: corrupt manifest accepted", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	corrupt("bad replica role",
		func(m *shard.Manifest) { m.Members[0].Replicas[0].Role = shard.Role(9) }, "role")
	corrupt("leader-role replica",
		func(m *shard.Manifest) { m.Members[0].Replicas[0].Role = shard.RoleLeader }, "role")
	corrupt("empty replica name",
		func(m *shard.Manifest) { m.Members[0].Replicas[0].Name = "" }, "empty name")
	corrupt("replica name collides with member",
		func(m *shard.Manifest) { m.Members[0].Replicas[0].Name = "b" }, "reuses")
	corrupt("replica name collides across members",
		func(m *shard.Manifest) { m.Members[1].Replicas[0].Name = "a-f0" }, "reuses")
	corrupt("non-leader member",
		func(m *shard.Manifest) { m.Members[1].Role = shard.RoleFollower }, "must be leaders")
}

// TestShardProvenanceRoundTrip checks a shard engine persists its
// partition provenance and the manifest masses agree with the reloaded
// engines.
func TestShardProvenanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pts := cloud(rng, 240, 2)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	eng, err := Build(pts, Gaussian(1), WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	shards, man, err := eng.Shard(3, KDPartition)
	if err != nil {
		t.Fatal(err)
	}
	for i, se := range shards {
		var buf bytes.Buffer
		if _, err := se.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadEngine(&buf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		prov, ok := loaded.ShardInfo()
		if !ok {
			t.Fatalf("shard %d lost provenance", i)
		}
		want := ShardProvenance{Index: i, Of: 3, Partition: KDPartition, SourceLen: 240}
		if prov != want {
			t.Fatalf("shard %d provenance = %+v, want %+v", i, prov, want)
		}
		wpos, wneg := loaded.WeightMass()
		if wpos != man.Shards[i].WeightPos || wneg != man.Shards[i].WeightNeg {
			t.Fatalf("shard %d masses %v/%v, manifest says %v/%v",
				i, wpos, wneg, man.Shards[i].WeightPos, man.Shards[i].WeightNeg)
		}
	}
	// A non-shard engine stays provenance-free across a round trip.
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.ShardInfo(); ok {
		t.Fatal("full engine grew shard provenance across round trip")
	}
}

// TestRestoreRejectsCorruptShardProvenance covers the validation of the
// optional shard-provenance block: out-of-range indices and impossible
// source sizes must fail with an error naming the problem.
func TestRestoreRejectsCorruptShardProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	eng, err := Build(cloud(rng, 120, 2), Gaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	shards, _, err := eng.Shard(2, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(*shardWire)) error {
		p := shards[0].payload()
		mutate(p.Shard)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			t.Fatal(err)
		}
		_, err := ReadEngine(&buf)
		return err
	}
	cases := map[string]func(*shardWire){
		"index ≥ of":        func(s *shardWire) { s.Index = 5 },
		"negative index":    func(s *shardWire) { s.Index = -1 },
		"zero of":           func(s *shardWire) { s.Of = 0 },
		"source too small":  func(s *shardWire) { s.SourceLen = 1 },
		"negative leftover": func(s *shardWire) { s.Of = -3; s.Index = -4 },
	}
	for name, mutate := range cases {
		err := corrupt(mutate)
		if err == nil {
			t.Fatalf("%s: corrupt provenance accepted", name)
		}
		if !strings.Contains(err.Error(), "shard provenance") {
			t.Fatalf("%s: error %q does not name shard provenance", name, err)
		}
	}
	// Unmutated payloads still load (the harness is sound).
	if err := corrupt(func(*shardWire) {}); err != nil {
		t.Fatalf("valid provenance rejected: %v", err)
	}
}
