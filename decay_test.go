package karl

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// decayRelDiff is the relative-difference helper for the decay suite.
// The lazy path composes Exp2 factors (insert→seal, seal→compaction,
// compaction→query) where the eager reference uses a single factor, so
// answers agree only up to a few ulps per composition — 1e-9 relative
// is orders of magnitude above that and still far below any behavioral
// difference.
func decayRelDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(math.Abs(a), math.Abs(b))
}

// TestDecayLazyRescaleMatchesEagerReweight is the decay property test:
// the engine never rewrites stored weights on the query path — it folds
// one 2^(−Δt/halfLife) scalar per segment into the traversal lazily —
// yet every answer must equal the eager reference that reweights each
// live point individually:
//
//	F(q, T) = Σ_live w_i · 2^(−(T−t_i)/halfLife) · K(q, p_i)
//
// The test drives a fake clock through inserts, deletes, seals, long
// idle stretches (where only the lazy scalars change — no mutation, no
// rebuild), and an explicit compaction (which rebases stored weights to
// a new epoch), checking the identity at every stage. Deletes are mixed
// in deliberately: tombstone mass must decay on exactly the same
// schedule as the live mass it cancels.
func TestDecayLazyRescaleMatchesEagerReweight(t *testing.T) {
	const (
		n   = 240
		dim = 3
	)
	halfLife := time.Hour
	rng := rand.New(rand.NewSource(99))
	var now atomic.Int64
	now.Store(1_700_000_000_000_000_000)

	d, err := NewDynamic(Gaussian(2.5),
		WithDecayHalfLife(halfLife),
		WithSealSize(32),
		WithCompactionFanout(2),
		withClock(func() int64 { return now.Load() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	type row struct {
		p    []float64
		w    float64
		t    int64
		id   uint64
		dead bool
	}
	rows := make([]row, 0, n)
	kern := Gaussian(2.5)
	queries := [][]float64{
		{0.3, 0.3, 0.3},
		{0.8, 0.1, 0.5},
		{-0.2, 0.6, 0.9},
	}

	eager := func(q []float64) float64 {
		T := now.Load()
		sum := 0.0
		for _, r := range rows {
			if r.dead {
				continue
			}
			sum += r.w * math.Exp2(-float64(T-r.t)/float64(halfLife)) * kern.Eval(q, r.p)
		}
		return sum
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			got, err := d.Aggregate(q)
			if err != nil {
				t.Fatalf("%s: Aggregate: %v", stage, err)
			}
			want := eager(q)
			if rel := decayRelDiff(got, want); rel > 1e-9 {
				t.Fatalf("%s: Aggregate(%v) = %.15g, eager reweight = %.15g (rel %.3g)",
					stage, q, got, want, rel)
			}
		}
	}

	for i := 0; i < n; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		w := 0.1 + rng.Float64()
		// Irregular arrival times: seconds to minutes apart, so segments
		// sealed at different instants carry genuinely different scalars.
		now.Add(int64(time.Second) * int64(1+rng.Intn(180)))
		id, err := d.InsertID(p, w)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row{p: p, w: w, t: now.Load(), id: id})

		if i > 20 && i%7 == 3 {
			j := rng.Intn(len(rows))
			if !rows[j].dead {
				if err := d.Delete(rows[j].id); err != nil {
					t.Fatal(err)
				}
				rows[j].dead = true
			}
		}
		if i%60 == 59 {
			check(fmt.Sprintf("mid-stream after %d inserts", i+1))
		}
	}
	check("after all inserts")

	// Idle decay: the clock moves seven half-lives with no mutation at
	// all. Nothing seals, nothing rebuilds — only the per-segment lazy
	// scalars installed at query time can account for the change.
	now.Add(int64(7 * time.Hour))
	check("after 7h idle")

	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.Tombstones(); got != 0 {
		t.Fatalf("tombstones after compaction = %d, want 0", got)
	}
	check("after compaction")

	// Compaction rebased every surviving weight to the compaction epoch;
	// further idle decay must still match the eager reference.
	now.Add(int64(3 * time.Hour))
	check("after compaction + 3h idle")
}

// TestTTLExpiryWithFakeClock pins the sliding-window contract: points
// older than the TTL are expired lazily — dropped when their rows pass
// through a seal or a compaction — and Compact forces the window exact.
// After compaction the engine must be indistinguishable from one that
// only ever held the still-live batch.
func TestTTLExpiryWithFakeClock(t *testing.T) {
	const dim = 2
	rng := rand.New(rand.NewSource(4))
	var now atomic.Int64
	now.Store(1_700_000_000_000_000_000)

	d, err := NewDynamic(Gaussian(3),
		WithTTL(time.Hour),
		WithSealSize(64),
		withClock(func() int64 { return now.Load() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	kern := Gaussian(3)
	insert := func(k int) [][]float64 {
		batch := make([][]float64, k)
		for i := range batch {
			p := []float64{rng.Float64(), rng.Float64()}
			if err := d.Insert(p, 1); err != nil {
				t.Fatal(err)
			}
			batch[i] = p
		}
		return batch
	}

	insert(90) // batch A at t0
	now.Add(int64(30 * time.Minute))
	liveBatch := insert(70) // batch B at t0+30m
	if got := d.Len(); got != 160 {
		t.Fatalf("Len before expiry = %d, want 160", got)
	}

	// t0+75m: batch A is beyond the 1h window, batch B is 45m old.
	// Expiry is lazy, so nothing changes until a seal or compaction
	// touches the rows; Compact forces the window exact.
	now.Add(int64(45 * time.Minute))
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got != len(liveBatch) {
		t.Fatalf("Len after expiring compaction = %d, want %d", got, len(liveBatch))
	}
	q := []float64{0.4, 0.6}
	got, err := d.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, p := range liveBatch {
		want += kern.Eval(q, p)
	}
	if rel := decayRelDiff(got, want); rel > 1e-9 {
		t.Fatalf("post-expiry Aggregate = %.15g, sum over live batch = %.15g (rel %.3g)",
			got, want, rel)
	}

	// Another hour and the second batch expires too: the window slides
	// to empty and compaction reclaims every row.
	now.Add(int64(time.Hour))
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got != 0 {
		t.Fatalf("Len after full expiry = %d, want 0", got)
	}
	if got := len(d.Segments()); got != 0 {
		t.Fatalf("segments after full expiry = %d, want 0", got)
	}
}

// TestTTLExpiryAtSeal pins the other half of the lazy-expiry contract:
// a seal (not just an explicit compaction) drops expired memtable rows
// instead of freezing them into the new segment.
func TestTTLExpiryAtSeal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var now atomic.Int64
	now.Store(1_700_000_000_000_000_000)

	d, err := NewDynamic(Gaussian(3),
		WithTTL(time.Hour),
		WithSealSize(64),
		withClock(func() int64 { return now.Load() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// 40 stale rows sit in the memtable (below the seal threshold), age
	// past the TTL, then 64 fresh inserts push the memtable over the
	// threshold. The seal must carry only unexpired rows forward.
	stale := make([][]float64, 40)
	for i := range stale {
		p := []float64{rng.Float64(), rng.Float64()}
		if err := d.Insert(p, 1); err != nil {
			t.Fatal(err)
		}
		stale[i] = p
	}
	now.Add(int64(2 * time.Hour))
	for i := 0; i < 64; i++ {
		if err := d.Insert([]float64{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Seals() == 0 {
		t.Fatal("expected at least one seal after crossing the threshold")
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got != 64 {
		t.Fatalf("Len after seal+compaction = %d, want 64 (stale rows must not survive)", got)
	}
}

// TestDecayedQuerySteadyStateZeroAlloc extends the zero-alloc hot-path
// gate to decayed queries: installing the per-segment lazy scalars every
// query (the clock has moved, so they are always recomputed) must reuse
// the engine's scratch — steady-state Aggregate stays allocation-free
// even with a half-life configured.
func TestDecayedQuerySteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var now atomic.Int64
	now.Store(1_700_000_000_000_000_000)

	d, err := NewDynamic(Gaussian(2),
		WithDecayHalfLife(time.Hour),
		WithSealSize(128),
		withClock(func() int64 { return now.Load() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 300; i++ {
		now.Add(int64(time.Second))
		if err := d.Insert([]float64{rng.Float64(), rng.Float64()}, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}

	q := []float64{0.5, 0.5}
	for i := 0; i < 50; i++ { // warm the traversal scratch
		now.Add(int64(time.Millisecond))
		if _, err := d.Aggregate(q); err != nil {
			t.Fatal(err)
		}
	}
	var aggErr error
	allocs := testing.AllocsPerRun(100, func() {
		now.Add(int64(time.Millisecond)) // force fresh scalars each run
		if _, err := d.Aggregate(q); err != nil {
			aggErr = err
		}
	})
	if aggErr != nil {
		t.Fatal(aggErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state decayed Aggregate allocates %v objects/op, want 0", allocs)
	}
}
