package tuning

import (
	"testing"

	"karl/internal/bound"
	"karl/internal/dataset"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/vec"
)

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	spec, err := dataset.ByName("home")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.GenerateSized(spec, 3000, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) != 14 {
		t.Fatalf("grid size %d, want 2 kinds × 7 capacities", len(grid))
	}
	seen := map[Candidate]bool{}
	for _, c := range grid {
		if seen[c] {
			t.Fatalf("duplicate candidate %+v", c)
		}
		seen[c] = true
		if c.LeafCap < 10 || c.LeafCap > 640 {
			t.Fatalf("leaf capacity %d outside the paper's sweep", c.LeafCap)
		}
	}
}

func TestOfflineValidation(t *testing.T) {
	ds := smallDataset(t)
	w := Workload{Kernel: kernel.NewGaussian(ds.Gamma), Method: bound.KARL, Mode: Threshold, Tau: 1}
	if _, err := Offline(nil, nil, w, ds.Queries, nil); err == nil {
		t.Fatal("nil points accepted")
	}
	if _, err := Offline(ds.Points, nil, w, nil, nil); err == nil {
		t.Fatal("nil sample accepted")
	}
}

func TestOfflinePicksFromGrid(t *testing.T) {
	ds := smallDataset(t)
	w := Workload{Kernel: kernel.NewGaussian(ds.Gamma), Method: bound.KARL, Mode: Threshold, Tau: 50}
	grid := []Candidate{
		{Kind: index.KDTree, LeafCap: 20},
		{Kind: index.KDTree, LeafCap: 320},
		{Kind: index.BallTree, LeafCap: 80},
		{Kind: index.VPTree, LeafCap: 80},
	}
	results, err := Offline(ds.Points, nil, w, ds.Queries, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(grid) {
		t.Fatalf("%d results for %d candidates", len(results), len(grid))
	}
	// Sorted best-first.
	for i := 1; i < len(results); i++ {
		if results[i].Throughput > results[i-1].Throughput {
			t.Fatal("results not sorted best-first")
		}
	}
	for _, r := range results {
		if r.Tree == nil {
			t.Fatal("result missing its tree")
		}
		if r.Throughput <= 0 {
			t.Fatalf("non-positive throughput %v", r.Throughput)
		}
		if r.Tree.Kind != r.Candidate.Kind || r.Tree.LeafCap != r.Candidate.LeafCap {
			t.Fatal("tree does not match its candidate")
		}
	}
}

func TestOfflineApproximateMode(t *testing.T) {
	ds := smallDataset(t)
	w := Workload{Kernel: kernel.NewGaussian(ds.Gamma), Method: bound.KARL, Mode: Approximate, Eps: 0.2}
	grid := []Candidate{{Kind: index.KDTree, LeafCap: 40}, {Kind: index.BallTree, LeafCap: 40}}
	results, err := Offline(ds.Points, nil, w, ds.Queries, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
}

func TestOnlineEndToEnd(t *testing.T) {
	ds := smallDataset(t)
	w := Workload{Kernel: kernel.NewGaussian(ds.Gamma), Method: bound.KARL, Mode: Threshold, Tau: 50}
	rep, err := Online(ds.Points, nil, w, ds.Queries, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueriesRun != ds.Queries.Rows {
		t.Fatalf("ran %d of %d queries", rep.QueriesRun, ds.Queries.Rows)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	if rep.BuildTime <= 0 {
		t.Fatal("build time missing")
	}
	if rep.ChosenDepth < 0 {
		t.Fatalf("chosen depth %d", rep.ChosenDepth)
	}
}

func TestOnlineValidation(t *testing.T) {
	ds := smallDataset(t)
	w := Workload{Kernel: kernel.NewGaussian(1), Method: bound.KARL, Mode: Threshold}
	if _, err := Online(nil, nil, w, ds.Queries, 0.1); err == nil {
		t.Fatal("nil points accepted")
	}
	if _, err := Online(ds.Points, nil, w, nil, 0.1); err == nil {
		t.Fatal("nil queries accepted")
	}
	// Out-of-range sampleFrac falls back to the default rather than erroring.
	if _, err := Online(ds.Points, nil, w, ds.Queries, 5); err != nil {
		t.Fatalf("sampleFrac fallback failed: %v", err)
	}
}

func TestOnlineTypeIIIWeights(t *testing.T) {
	spec, _ := dataset.ByName("ijcnn1")
	ds, err := dataset.GenerateSized(spec, 1500, 40, 21)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Kernel: kernel.NewGaussian(ds.Gamma), Method: bound.KARL, Mode: Threshold, Tau: ds.Tau}
	rep, err := Online(ds.Points, ds.Weights, w, ds.Queries, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueriesRun != 40 {
		t.Fatalf("ran %d queries", rep.QueriesRun)
	}
}

func TestCandidateBuildUnknownKind(t *testing.T) {
	c := Candidate{Kind: index.Kind(9), LeafCap: 10}
	if _, err := c.build(vec.NewMatrix(4, 2), nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
