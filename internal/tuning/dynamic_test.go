package tuning

import (
	"errors"
	"testing"
	"time"

	"karl/internal/bound"
	"karl/internal/kernel"
)

// fakeMutable counts replayed operations and can charge an artificial
// per-operation cost so throughput ordering is observable.
type fakeMutable struct {
	inserts, queries int
	perOp            time.Duration
	failAt           int // op index to fail at; -1 = never
}

func (f *fakeMutable) op() error {
	if f.failAt >= 0 && f.inserts+f.queries == f.failAt {
		return errors.New("boom")
	}
	if f.perOp > 0 {
		time.Sleep(f.perOp)
	}
	return nil
}

func (f *fakeMutable) Insert(p []float64, w float64) error {
	if err := f.op(); err != nil {
		return err
	}
	f.inserts++
	return nil
}

func (f *fakeMutable) Threshold(q []float64, tau float64) (bool, error) {
	if err := f.op(); err != nil {
		return false, err
	}
	f.queries++
	return true, nil
}

func (f *fakeMutable) Approximate(q []float64, eps float64) (float64, error) {
	if err := f.op(); err != nil {
		return 0, err
	}
	f.queries++
	return 1, nil
}

func thresholdWorkload() Workload {
	return Workload{Kernel: kernel.NewGaussian(1), Method: bound.KARL, Mode: Threshold, Tau: 1}
}

func TestMixedTrace(t *testing.T) {
	points := [][]float64{{1}, {2}, {3}}
	sample := [][]float64{{10}, {20}}
	trace := MixedTrace(points, []float64{5, 6, 7}, sample, 2)
	if len(trace) != 9 {
		t.Fatalf("trace length %d, want 3 inserts + 6 queries", len(trace))
	}
	if !trace[0].Insert || trace[0].W != 5 {
		t.Fatalf("trace must lead with the first weighted insert, got %+v", trace[0])
	}
	// Queries cycle through the sample: after insert {1} come {10},{20}.
	if trace[1].Insert || trace[1].Q[0] != 10 || trace[2].Q[0] != 20 {
		t.Fatalf("queries do not cycle the sample: %+v %+v", trace[1], trace[2])
	}
	// Unit weights when none are supplied; zero queriesPerInsert = pure inserts.
	pure := MixedTrace(points, nil, sample, 0)
	if len(pure) != 3 || pure[2].W != 1 {
		t.Fatalf("pure insert trace %+v", pure)
	}
}

func TestOfflineDynamicValidation(t *testing.T) {
	w := thresholdWorkload()
	trace := MixedTrace([][]float64{{1}}, nil, [][]float64{{2}}, 1)
	if _, err := OfflineDynamic(nil, w, trace, nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	build := func(DynamicCandidate) (MutableEngine, error) { return &fakeMutable{failAt: -1}, nil }
	if _, err := OfflineDynamic(build, w, nil, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	queryOnly := []DynamicOp{{Q: []float64{1}}}
	if _, err := OfflineDynamic(build, w, queryOnly, nil); err == nil {
		t.Fatal("insert-free trace accepted")
	}
}

func TestOfflineDynamicReplaysAndSorts(t *testing.T) {
	w := thresholdWorkload()
	trace := MixedTrace([][]float64{{1}, {2}}, nil, [][]float64{{3}}, 2)
	grid := []DynamicCandidate{
		{SealSize: 128, Fanout: 2}, // slow candidate
		{SealSize: 256, Fanout: 4}, // fast candidate
	}
	engines := map[DynamicCandidate]*fakeMutable{}
	build := func(c DynamicCandidate) (MutableEngine, error) {
		f := &fakeMutable{failAt: -1}
		if c.SealSize == 128 {
			f.perOp = 2 * time.Millisecond
		}
		engines[c] = f
		return f, nil
	}
	results, err := OfflineDynamic(build, w, trace, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Candidate.SealSize != 256 {
		t.Fatalf("slow candidate won: %+v", results[0])
	}
	if results[0].Throughput < results[1].Throughput {
		t.Fatal("results not sorted best-first")
	}
	for c, f := range engines {
		if f.inserts != 2 || f.queries != 4 {
			t.Fatalf("candidate %+v replayed %d inserts / %d queries, want 2/4", c, f.inserts, f.queries)
		}
	}
}

func TestOfflineDynamicSurfacesEngineErrors(t *testing.T) {
	// Approximate mode, so runMutable's eKAQ arm is exercised too.
	w := Workload{Kernel: kernel.NewGaussian(1), Method: bound.KARL, Mode: Approximate, Eps: 0.1}
	trace := MixedTrace([][]float64{{1}, {2}}, nil, [][]float64{{3}}, 1)
	build := func(DynamicCandidate) (MutableEngine, error) { return &fakeMutable{failAt: 2}, nil }
	if _, err := OfflineDynamic(build, w, trace, []DynamicCandidate{{SealSize: 64, Fanout: 2}}); err == nil {
		t.Fatal("engine error swallowed")
	}
	buildErr := func(DynamicCandidate) (MutableEngine, error) { return nil, errors.New("no engine") }
	if _, err := OfflineDynamic(buildErr, w, trace, nil); err == nil {
		t.Fatal("builder error swallowed")
	}
}

func TestDefaultDynamicGrid(t *testing.T) {
	grid := DefaultDynamicGrid()
	if len(grid) != 15 {
		t.Fatalf("grid size %d, want 5 seal sizes × 3 fanouts", len(grid))
	}
	seen := map[DynamicCandidate]bool{}
	for _, c := range grid {
		if seen[c] {
			t.Fatalf("duplicate candidate %+v", c)
		}
		seen[c] = true
		if c.SealSize < 1 || c.Fanout < 2 {
			t.Fatalf("candidate %+v violates policy bounds", c)
		}
	}
}
