package tuning

import (
	"errors"
	"fmt"
	"time"
)

// MutableEngine is the slice of a segmented dynamic engine that
// OfflineDynamic drives. This package sits below the public API (which
// owns the dynamic engine), so candidates are built through a caller
// closure rather than a direct dependency.
type MutableEngine interface {
	Insert(p []float64, w float64) error
	Threshold(q []float64, tau float64) (bool, error)
	Approximate(q []float64, eps float64) (float64, error)
}

// DynamicCandidate is one maintenance-policy configuration in the dynamic
// tuning grid: how large the memtable grows before sealing, and how many
// segments a compaction merges.
type DynamicCandidate struct {
	SealSize int
	Fanout   int
}

// DefaultDynamicGrid sweeps seal sizes exponentially around the library
// default crossed with the useful fanout range. Small seals keep the
// exact memtable scan cheap but fragment the manifest; large seals do the
// opposite — the sweet spot depends on the insert/query mix, which is why
// it is tuned rather than fixed.
func DefaultDynamicGrid() []DynamicCandidate {
	seals := []int{128, 256, 512, 1024, 2048}
	fanouts := []int{2, 4, 8}
	grid := make([]DynamicCandidate, 0, len(seals)*len(fanouts))
	for _, s := range seals {
		for _, f := range fanouts {
			grid = append(grid, DynamicCandidate{SealSize: s, Fanout: f})
		}
	}
	return grid
}

// DynamicOp is one step of a mixed replay trace: an insert when Insert is
// true (P, W), a query otherwise (Q).
type DynamicOp struct {
	Insert bool
	P      []float64
	W      float64
	Q      []float64
}

// MixedTrace interleaves a query sample through an insert stream the way
// a steady-state mutable workload arrives: queriesPerInsert queries are
// drawn (cycling through the sample) after each insert, so sealing and
// compaction costs are charged against the queries that ride behind
// them. The trace always leads with an insert so no query ever sees an
// empty engine. A nil/empty weights slice inserts unit weights.
func MixedTrace(points [][]float64, weights []float64, sample [][]float64, queriesPerInsert int) []DynamicOp {
	if queriesPerInsert < 0 {
		queriesPerInsert = 0
	}
	trace := make([]DynamicOp, 0, len(points)*(1+queriesPerInsert))
	qi := 0
	for i, p := range points {
		w := 1.0
		if len(weights) > i {
			w = weights[i]
		}
		trace = append(trace, DynamicOp{Insert: true, P: p, W: w})
		for k := 0; k < queriesPerInsert && len(sample) > 0; k++ {
			trace = append(trace, DynamicOp{Q: sample[qi%len(sample)]})
			qi++
		}
	}
	return trace
}

// DynamicResult reports one candidate's measured performance on the
// replayed trace.
type DynamicResult struct {
	Candidate  DynamicCandidate
	Throughput float64 // operations (inserts + queries) per second
	Elapsed    time.Duration
}

// OfflineDynamic replays the same mixed insert/query trace against every
// candidate policy and returns results sorted best-first by operation
// throughput. The build closure constructs a fresh empty engine for a
// candidate (the public API wraps this around NewDynamic with the
// candidate's WithSealSize/WithCompactionFanout options). The trace
// should mirror the live mix — e.g. 90/10 query/insert for read-heavy
// serving — and is replayed in order so sealing and compaction costs land
// where they would in production.
func OfflineDynamic(build func(DynamicCandidate) (MutableEngine, error), w Workload, trace []DynamicOp, grid []DynamicCandidate) ([]DynamicResult, error) {
	if build == nil {
		return nil, errors.New("tuning: nil engine builder")
	}
	if len(trace) == 0 {
		return nil, errors.New("tuning: empty trace")
	}
	hasInsert := false
	for _, op := range trace {
		if op.Insert {
			hasInsert = true
			break
		}
	}
	if !hasInsert {
		return nil, errors.New("tuning: trace has no inserts (use Offline for static workloads)")
	}
	if len(grid) == 0 {
		grid = DefaultDynamicGrid()
	}
	results := make([]DynamicResult, 0, len(grid))
	for _, cand := range grid {
		eng, err := build(cand)
		if err != nil {
			return nil, fmt.Errorf("tuning: building seal=%d fanout=%d: %w", cand.SealSize, cand.Fanout, err)
		}
		start := time.Now()
		for i, op := range trace {
			if op.Insert {
				err = eng.Insert(op.P, op.W)
			} else {
				err = w.runMutable(eng, op.Q)
			}
			if err != nil {
				return nil, fmt.Errorf("tuning: seal=%d fanout=%d op %d: %w", cand.SealSize, cand.Fanout, i, err)
			}
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		results = append(results, DynamicResult{
			Candidate:  cand,
			Throughput: float64(len(trace)) / elapsed.Seconds(),
			Elapsed:    elapsed,
		})
	}
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && results[j].Throughput > results[j-1].Throughput; j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
	return results, nil
}

// runMutable executes one query of the workload against a mutable engine.
// Queries before the first insert would see an empty engine; trace
// builders always lead with an insert, and the empty-engine error is
// surfaced as fatal like every other programmer mistake.
func (w Workload) runMutable(e MutableEngine, q []float64) error {
	switch w.Mode {
	case Threshold:
		_, err := e.Threshold(q, w.Tau)
		return err
	case Approximate:
		_, err := e.Approximate(q, w.Eps)
		return err
	default:
		return fmt.Errorf("tuning: unknown mode %d", int(w.Mode))
	}
}
