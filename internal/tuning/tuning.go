// Package tuning implements KARL's automatic index tuning (Section III-C):
// the offline scenario, which builds every candidate (index type, leaf
// capacity) pair and measures sampled-query throughput, and the in-situ
// online scenario, which builds a single full-depth kd-tree and selects the
// best simulated tree height by spending a small fraction of the live query
// stream on each candidate level.
package tuning

import (
	"errors"
	"fmt"
	"time"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// Mode selects the query variant being tuned for.
type Mode int

const (
	// Threshold tunes TKAQ workloads.
	Threshold Mode = iota
	// Approximate tunes eKAQ workloads.
	Approximate
)

// Workload describes the query mix the index must serve.
type Workload struct {
	Kernel kernel.Params
	Method bound.Method
	Mode   Mode
	// Tau is the TKAQ threshold (Threshold mode).
	Tau float64
	// Eps is the eKAQ relative error (Approximate mode).
	Eps float64
}

// run executes one query against an engine; errors only on programmer
// mistakes (dimension mismatch), which tuning treats as fatal.
func (w Workload) run(e *core.Engine, q []float64) error {
	switch w.Mode {
	case Threshold:
		_, _, err := e.Threshold(q, w.Tau)
		return err
	case Approximate:
		_, _, err := e.Approximate(q, w.Eps)
		return err
	default:
		return fmt.Errorf("tuning: unknown mode %d", int(w.Mode))
	}
}

// Candidate is one index configuration in the tuning grid.
type Candidate struct {
	Kind    index.Kind
	LeafCap int
}

// DefaultGrid reproduces the paper's exponential sweep over both supported
// index structures: {kd-tree, ball-tree} × {10,20,40,80,160,320,640}.
func DefaultGrid() []Candidate {
	caps := []int{10, 20, 40, 80, 160, 320, 640}
	grid := make([]Candidate, 0, 2*len(caps))
	for _, kind := range []index.Kind{index.KDTree, index.BallTree} {
		for _, lc := range caps {
			grid = append(grid, Candidate{Kind: kind, LeafCap: lc})
		}
	}
	return grid
}

// build constructs the candidate's index.
func (c Candidate) build(points *vec.Matrix, weights []float64) (*index.Tree, error) {
	switch c.Kind {
	case index.KDTree:
		return kdtree.Build(points, weights, c.LeafCap)
	case index.BallTree:
		return balltree.Build(points, weights, c.LeafCap)
	case index.VPTree:
		return vptree.Build(points, weights, c.LeafCap)
	default:
		return nil, fmt.Errorf("tuning: unknown index kind %d", int(c.Kind))
	}
}

// Result reports one candidate's measured performance.
type Result struct {
	Candidate  Candidate
	Throughput float64 // sampled queries per second
	BuildTime  time.Duration
	Tree       *index.Tree
}

// Offline measures every candidate on the query sample and returns results
// sorted best-first (the paper samples |Q| = 1000 queries). The winning
// Result's Tree is ready to serve queries.
func Offline(points *vec.Matrix, weights []float64, w Workload, sample *vec.Matrix, grid []Candidate) ([]Result, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("tuning: empty point set")
	}
	if sample == nil || sample.Rows == 0 {
		return nil, errors.New("tuning: empty query sample")
	}
	if len(grid) == 0 {
		grid = DefaultGrid()
	}
	results := make([]Result, 0, len(grid))
	for _, cand := range grid {
		start := time.Now()
		tree, err := cand.build(points, weights)
		if err != nil {
			return nil, fmt.Errorf("tuning: building %v/%d: %w", cand.Kind, cand.LeafCap, err)
		}
		buildTime := time.Since(start)
		eng, err := core.New(tree, w.Kernel, core.WithMethod(w.Method))
		if err != nil {
			return nil, err
		}
		qStart := time.Now()
		for i := 0; i < sample.Rows; i++ {
			if err := w.run(eng, sample.Row(i)); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(qStart)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		results = append(results, Result{
			Candidate:  cand,
			Throughput: float64(sample.Rows) / elapsed.Seconds(),
			BuildTime:  buildTime,
			Tree:       tree,
		})
	}
	// Sort best-first (insertion sort; the grid is tiny).
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && results[j].Throughput > results[j-1].Throughput; j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
	return results, nil
}

// OnlineReport describes an in-situ tuning run end to end.
type OnlineReport struct {
	// ChosenDepth is the selected simulated tree height (0 = full tree).
	ChosenDepth int
	// BuildTime, TuneTime and QueryTime decompose the end-to-end cost.
	BuildTime, TuneTime, QueryTime time.Duration
	// QueriesRun counts all queries executed (tuning sample + remainder).
	QueriesRun int
	// Throughput is end-to-end: all queries over build+tune+query time.
	Throughput float64
}

// onlineLeafCap is the leaf capacity of the single kd-tree the in-situ
// scenario builds; small enough that depth truncation spans the useful
// range of effective leaf sizes.
const onlineLeafCap = 8

// Online answers the whole query stream with in-situ tuning (Section
// III-C): it builds one kd-tree, spends sampleFrac of the stream measuring
// candidate depth limits, then serves the remainder with the winner.
// Every query in the stream is answered exactly once.
func Online(points *vec.Matrix, weights []float64, w Workload, queries *vec.Matrix, sampleFrac float64) (OnlineReport, error) {
	var rep OnlineReport
	if points == nil || points.Rows == 0 {
		return rep, errors.New("tuning: empty point set")
	}
	if queries == nil || queries.Rows == 0 {
		return rep, errors.New("tuning: empty query stream")
	}
	if sampleFrac <= 0 || sampleFrac >= 1 {
		sampleFrac = 0.01
	}
	start := time.Now()
	tree, err := kdtree.Build(points, weights, onlineLeafCap)
	if err != nil {
		return rep, err
	}
	rep.BuildTime = time.Since(start)

	// Candidate depths: every level of the tree, root-only excluded (depth
	// 1 is the shallowest useful truncation), full tree included as 0.
	depths := []int{0}
	for d := 1; d < tree.Height; d++ {
		depths = append(depths, d)
	}
	sampleTotal := int(float64(queries.Rows) * sampleFrac)
	if sampleTotal < len(depths) {
		sampleTotal = len(depths)
	}
	if sampleTotal > queries.Rows {
		sampleTotal = queries.Rows
	}
	perDepth := sampleTotal / len(depths)
	if perDepth < 1 {
		perDepth = 1
	}

	tuneStart := time.Now()
	bestDepth, bestRate := 0, -1.0
	qi := 0
	for _, depth := range depths {
		if qi >= sampleTotal {
			break
		}
		eng, err := core.New(tree, w.Kernel, core.WithMethod(w.Method), core.WithMaxDepth(depth))
		if err != nil {
			return rep, err
		}
		groupStart := time.Now()
		count := 0
		for ; count < perDepth && qi < sampleTotal; count++ {
			if err := w.run(eng, queries.Row(qi)); err != nil {
				return rep, err
			}
			qi++
		}
		elapsed := time.Since(groupStart)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		if rate := float64(count) / elapsed.Seconds(); rate > bestRate {
			bestRate, bestDepth = rate, depth
		}
	}
	rep.TuneTime = time.Since(tuneStart)
	rep.ChosenDepth = bestDepth

	queryStart := time.Now()
	eng, err := core.New(tree, w.Kernel, core.WithMethod(w.Method), core.WithMaxDepth(bestDepth))
	if err != nil {
		return rep, err
	}
	for ; qi < queries.Rows; qi++ {
		if err := w.run(eng, queries.Row(qi)); err != nil {
			return rep, err
		}
	}
	rep.QueryTime = time.Since(queryStart)
	rep.QueriesRun = queries.Rows
	total := rep.BuildTime + rep.TuneTime + rep.QueryTime
	if total <= 0 {
		total = time.Nanosecond
	}
	rep.Throughput = float64(queries.Rows) / total.Seconds()
	return rep, nil
}
