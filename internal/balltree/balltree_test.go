package balltree

import (
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, nil, 4); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Build(vec.NewMatrix(3, 2), nil, -1); err == nil {
		t.Fatal("negative leafCap accepted")
	}
	if _, err := Build(vec.NewMatrix(3, 2), []float64{1}, 2); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	m := vec.FromRows([][]float64{{4, 5}})
	tr, err := Build(m, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() || tr.Kind != index.BallTree {
		t.Fatal("unexpected structure for single point")
	}
	ball := tr.Root().Vol.(*geom.Ball)
	if ball.Radius != 0 {
		t.Fatalf("radius = %v want 0", ball.Radius)
	}
}

func TestBuildAllDuplicatesTerminates(t *testing.T) {
	m := vec.NewMatrix(50, 2)
	for i := 0; i < 50; i++ {
		copy(m.Row(i), []float64{3, 3})
	}
	tr, err := Build(m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() {
		t.Fatal("duplicates should form one oversized leaf")
	}
}

func TestBuildStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(6)
		leafCap := 1 + rng.Intn(20)
		m := randMatrix(rng, n, d)
		var w []float64
		if trial%2 == 1 {
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		tr, err := Build(m, w, leafCap)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Aggregate counts at the root must cover all points.
		if tr.Root().Pos.Count+tr.Root().Neg.Count != n {
			t.Fatalf("trial %d: root covers %d of %d points",
				trial, tr.Root().Pos.Count+tr.Root().Neg.Count, n)
		}
	}
}

func TestSplitSeparatesClusters(t *testing.T) {
	// Two well-separated clusters must be split apart at the root.
	rng := rand.New(rand.NewSource(8))
	m := vec.NewMatrix(100, 2)
	for i := 0; i < 50; i++ {
		m.Row(i)[0] = rng.Float64()
		m.Row(i)[1] = rng.Float64()
	}
	for i := 50; i < 100; i++ {
		m.Row(i)[0] = 100 + rng.Float64()
		m.Row(i)[1] = 100 + rng.Float64()
	}
	tr, err := Build(m, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root.IsLeaf() {
		t.Fatal("root should split")
	}
	lb := tr.Node(tr.Left(0)).Vol.(*geom.Ball)
	rb := tr.Node(root.Right).Vol.(*geom.Ball)
	// Each child ball should be much smaller than the root ball.
	rootR := root.Vol.(*geom.Ball).Radius
	if lb.Radius > rootR/2 || rb.Radius > rootR/2 {
		t.Fatalf("split failed to separate clusters: radii %v %v vs root %v",
			lb.Radius, rb.Radius, rootR)
	}
}

func TestAncestorBallsContainDescendantPoints(t *testing.T) {
	// Centroid balls are not nested (a child's radius may exceed its
	// parent's), but every ancestor ball must still contain every point in
	// its subtree — that is the invariant pruning relies on.
	rng := rand.New(rand.NewSource(29))
	m := randMatrix(rng, 256, 4)
	tr, err := Build(m, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *index.Node) {
		for i := int(n.Start); i < int(n.End); i++ {
			if !n.Vol.Contains(tr.Points.Row(i), 1e-9) {
				t.Fatalf("node at depth %d does not contain storage row %d", n.Depth, i)
			}
		}
	})
}
