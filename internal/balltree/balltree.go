// Package balltree builds the ball-tree variant of KARL's hierarchical
// index (Uhlmann's metric tree / Moore's anchors construction as used by
// Scikit-learn): nodes are bounded by centroid balls and split by the
// farthest-pair heuristic. Nodes are emitted directly into the flat
// DFS-preorder array of index.Tree; the point matrix is reordered into leaf
// order when the build finishes.
package balltree

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

// Build constructs a ball-tree over points with the given per-point weights
// (nil for unit weights) and leaf capacity. The input matrix is read during
// construction but not retained: the tree owns a leaf-ordered copy.
func Build(points *vec.Matrix, weights []float64, leafCap int) (*index.Tree, error) {
	if points == nil || points.Rows == 0 {
		return nil, fmt.Errorf("balltree: empty point set")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("balltree: leaf capacity must be >= 1, got %d", leafCap)
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("balltree: %d weights for %d points", len(weights), points.Rows)
	}
	t := &index.Tree{
		Kind:    index.BallTree,
		Points:  points,
		Weights: weights,
		LeafCap: leafCap,
	}
	b := builder{t: t, pts: points, idx: make([]int, points.Rows)}
	for i := range b.idx {
		b.idx[i] = i
	}
	b.build(0, points.Rows, 0)
	t.Finish(b.idx)
	return t, nil
}

type builder struct {
	t   *index.Tree
	pts *vec.Matrix
	idx []int // working permutation: position -> original row
}

// build emits the subtree over idx[start:end) in DFS preorder and returns
// the position of its root node.
func (b *builder) build(start, end, depth int) int32 {
	ball := geom.BoundRowsBall(b.pts, b.idx, start, end)
	ni := b.t.AppendNode(ball, start, end, depth)
	if end-start <= b.t.LeafCap || ball.Radius == 0 {
		// Zero radius means all points coincide; splitting cannot help.
		return ni
	}
	mid := b.partition(start, end, ball.Center)
	if mid == start || mid == end {
		// Degenerate split (e.g. heavy duplication); keep an oversized leaf
		// rather than recurse forever.
		return ni
	}
	b.build(start, mid, depth+1)
	right := b.build(mid, end, depth+1)
	b.t.SetRight(ni, right)
	return ni
}

// partition implements the farthest-pair split: pick the point a farthest
// from the node centroid, then the point c farthest from a, and route every
// point to whichever anchor is closer. Returns the boundary position; the
// range [start,mid) holds the points closer to a.
func (b *builder) partition(start, end int, centroid []float64) int {
	idx := b.idx
	row := func(i int) []float64 { return b.pts.Row(idx[i]) }
	far := func(from []float64) int {
		best, bestD := start, -1.0
		for i := start; i < end; i++ {
			if d := vec.Dist2(from, row(i)); d > bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	a := vec.Clone(row(far(centroid)))
	c := vec.Clone(row(far(a)))
	lo, hi := start, end-1
	for lo <= hi {
		for lo <= hi && vec.Dist2(a, row(lo)) <= vec.Dist2(c, row(lo)) {
			lo++
		}
		for lo <= hi && vec.Dist2(a, row(hi)) > vec.Dist2(c, row(hi)) {
			hi--
		}
		if lo < hi {
			idx[lo], idx[hi] = idx[hi], idx[lo]
			lo++
			hi--
		}
	}
	return lo
}
