// Package balltree builds the ball-tree variant of KARL's hierarchical
// index (Uhlmann's metric tree / Moore's anchors construction as used by
// Scikit-learn): nodes are bounded by centroid balls and split by the
// farthest-pair heuristic.
package balltree

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

// Build constructs a ball-tree over points with the given per-point weights
// (nil for unit weights) and leaf capacity. The matrix is referenced, not
// copied.
func Build(points *vec.Matrix, weights []float64, leafCap int) (*index.Tree, error) {
	if points == nil || points.Rows == 0 {
		return nil, fmt.Errorf("balltree: empty point set")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("balltree: leaf capacity must be >= 1, got %d", leafCap)
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("balltree: %d weights for %d points", len(weights), points.Rows)
	}
	t := &index.Tree{
		Kind:    index.BallTree,
		Points:  points,
		Weights: weights,
		Idx:     make([]int, points.Rows),
		LeafCap: leafCap,
	}
	for i := range t.Idx {
		t.Idx[i] = i
	}
	b := builder{t: t}
	t.Root = b.build(0, points.Rows, 0)
	t.Height = b.height
	t.Nodes = b.nodes
	t.ComputeAggregates()
	return t, nil
}

type builder struct {
	t      *index.Tree
	height int
	nodes  int
}

func (b *builder) build(start, end, depth int) *index.Node {
	b.nodes++
	if depth+1 > b.height {
		b.height = depth + 1
	}
	t := b.t
	ball := geom.BoundRowsBall(t.Points, t.Idx, start, end)
	n := &index.Node{Vol: ball, Start: start, End: end, Depth: depth}
	if end-start <= t.LeafCap || ball.Radius == 0 {
		// Zero radius means all points coincide; splitting cannot help.
		return n
	}
	mid := b.partition(start, end, ball.Center)
	if mid == start || mid == end {
		// Degenerate split (e.g. heavy duplication); keep an oversized leaf
		// rather than recurse forever.
		return n
	}
	n.Left = b.build(start, mid, depth+1)
	n.Right = b.build(mid, end, depth+1)
	return n
}

// partition implements the farthest-pair split: pick the point a farthest
// from the node centroid, then the point c farthest from a, and route every
// point to whichever anchor is closer. Returns the boundary position; the
// range [start,mid) holds the points closer to a.
func (b *builder) partition(start, end int, centroid []float64) int {
	t := b.t
	row := func(i int) []float64 { return t.Points.Row(t.Idx[i]) }
	far := func(from []float64) int {
		best, bestD := start, -1.0
		for i := start; i < end; i++ {
			if d := vec.Dist2(from, row(i)); d > bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	a := vec.Clone(row(far(centroid)))
	c := vec.Clone(row(far(a)))
	lo, hi := start, end-1
	for lo <= hi {
		for lo <= hi && vec.Dist2(a, row(lo)) <= vec.Dist2(c, row(lo)) {
			lo++
		}
		for lo <= hi && vec.Dist2(a, row(hi)) > vec.Dist2(c, row(hi)) {
			hi--
		}
		if lo < hi {
			t.Idx[lo], t.Idx[hi] = t.Idx[hi], t.Idx[lo]
			lo++
			hi--
		}
	}
	return lo
}
