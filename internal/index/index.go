// Package index defines the hierarchical index representation shared by the
// kd-tree, ball-tree and vp-tree builders (Figure 2 of the paper). The
// logical structure is a binary tree whose nodes carry a bounding volume, a
// contiguous range of point rows, and the precomputed weighted aggregates
// (Lemmas 2 and 5) that let KARL evaluate its linear bound functions in O(d)
// per node.
//
// The physical representation is cache-conscious and flat:
//
//   - Nodes live in one slice in DFS preorder. A node's left child is the
//     next slice element (implicit i+1); only the right child is stored, as
//     an int32 index. Refinement therefore walks a contiguous array instead
//     of chasing per-node heap pointers.
//   - Every node's aggregate vectors (Agg.A) are sub-slices of one packed
//     backing block, not one heap allocation per node per sign class.
//   - After construction the point matrix and weights are physically
//     reordered into leaf order, so a leaf scans rows [Start,End) of the
//     matrix directly — no permutation gather. PointID retains the mapping
//     back to the caller's original row numbering.
//   - Norms caches ‖p‖² per stored row, enabling the fused distance form
//     ‖q−p‖² = ‖q‖² − 2·q·p + ‖p‖² in leaf evaluation.
package index

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/vec"
)

// Agg holds the per-node weighted aggregates for one sign class of weights.
// For the positive class, W = Σ w_i, A = Σ w_i·p_i, B = Σ w_i·‖p_i‖² over
// points with w_i > 0; the negative class aggregates |w_i| over points with
// w_i < 0 (Section IV-A's P⁺/P⁻ decomposition). These are exactly the terms
// a_P, b_P, w_P of Lemma 5, which make FL_P(q, Lin_{m,c}) an O(d)
// computation. A is a view into the tree's packed aggregate block (or a
// private slice for hand-built aggregates in tests).
type Agg struct {
	Count int       // number of points in this sign class
	W     float64   // Σ |w_i|
	A     []float64 // Σ |w_i|·p_i
	B     float64   // Σ |w_i|·‖p_i‖²
}

// Add accumulates one weighted point (w already made non-negative).
func (a *Agg) Add(w float64, p []float64) {
	a.Count++
	a.W += w
	if a.A == nil {
		a.A = make([]float64, len(p))
	}
	vec.Axpy(a.A, w, p)
	a.B += w * vec.Norm2(p)
}

// merge accumulates another aggregate (child into parent).
func (a *Agg) merge(b *Agg) {
	a.Count += b.Count
	a.W += b.W
	a.B += b.B
	if b.Count == 0 || b.A == nil {
		return
	}
	if a.A == nil {
		a.A = make([]float64, len(b.A))
	}
	vec.AddTo(a.A, b.A)
}

// WeightedDist2Sum returns Σ |w_i|·dist(q, p_i)² over the class in O(d)
// using the expansion ‖q−p‖² = ‖q‖² − 2q·p + ‖p‖² (Lemma 2). qNorm2 is the
// caller-computed ‖q‖², hoisted because it is shared across every node a
// query touches.
func (a *Agg) WeightedDist2Sum(q []float64, qNorm2 float64) float64 {
	if a.Count == 0 {
		return 0
	}
	return a.W*qNorm2 - 2*vec.Dot(q, a.A) + a.B
}

// WeightedDotSum returns Σ |w_i|·(q·p_i) over the class in O(d), the
// analogous primitive for dot-product kernels (Section IV-B).
func (a *Agg) WeightedDotSum(q []float64) float64 {
	if a.Count == 0 {
		return 0
	}
	return vec.Dot(q, a.A)
}

// NoRight marks a leaf node's Right field.
const NoRight = int32(-1)

// Node is one entry of the flat node array. Leaf nodes have Right == NoRight
// and own the matrix rows [Start,End); internal nodes own the union of their
// children's ranges. The left child of the node at position i is always at
// i+1 (DFS preorder); the right child index is stored explicitly.
type Node struct {
	Vol        geom.Volume
	Start, End int32 // row range into the tree's leaf-ordered matrix
	Right      int32 // right-child position, NoRight for leaves
	Depth      int32
	Pos, Neg   Agg
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Right == NoRight }

// Count returns the number of points under the node.
func (n *Node) Count() int { return int(n.End - n.Start) }

// Kind identifies the index structure family.
type Kind int

const (
	// KDTree splits on the widest dimension at the median and bounds nodes
	// with rectangles.
	KDTree Kind = iota
	// BallTree splits on a farthest-pair heuristic and bounds nodes with
	// balls.
	BallTree
	// VPTree splits at the median distance to a vantage point and bounds
	// nodes with spherical annuli (an extension beyond the paper's two
	// index structures).
	VPTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KDTree:
		return "kd-tree"
	case BallTree:
		return "ball-tree"
	case VPTree:
		return "vp-tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tree is a built index over a weighted point set. Points and Weights are
// the tree's private, leaf-ordered copies: row i of Points is the i-th point
// in leaf-scan order and PointID[i] is its row number in the matrix the
// builder was given. Weights may be nil (unit weights, Type I with w=1).
type Tree struct {
	Kind    Kind
	Points  *vec.Matrix // leaf-contiguous storage order
	Weights []float64   // parallel to Points rows; nil = unit weights
	PointID []int32     // storage row -> original row id
	Norms   []float64   // ‖p‖² per storage row (fused-distance cache)
	Nodes   []Node      // DFS preorder; Nodes[0] is the root
	LeafCap int
	Height  int // number of levels; a single root-leaf tree has height 1

	// Leaf32, when non-nil, is the tiled float32 mirror of Points built by
	// BuildLeaf32. Leaf evaluation streams through it on the opt-in
	// single-precision path; bounds, aggregates and Norms stay float64. It
	// is derived data: persistence stores only a flag and rebuilds it.
	Leaf32 *vec.Block32

	// aggBlock is the packed backing array for every node's Pos.A (first
	// half) and, when negative weights exist, Neg.A (second half).
	aggBlock []float64
}

// BuildLeaf32 builds (or rebuilds) the tiled float32 mirror of the tree's
// leaf-ordered points. Call after Finish or Reconstruct; the conversion is
// deterministic, so rebuilding on load reproduces the block bitwise.
func (t *Tree) BuildLeaf32() { t.Leaf32 = vec.NewBlock32(t.Points) }

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// Node returns the node at position i of the preorder array.
func (t *Tree) Node(i int32) *Node { return &t.Nodes[i] }

// Left returns the position of the left child of the node at position i
// (valid only for internal nodes: the left child is the next preorder slot).
func (t *Tree) Left(i int32) int32 { return i + 1 }

// Weight returns the weight of storage row i (1 when Weights is nil).
func (t *Tree) Weight(i int) float64 {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[i]
}

// Dims returns the dataset dimensionality.
func (t *Tree) Dims() int { return t.Points.Cols }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.Points.Rows }

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int { return len(t.Nodes) }

// AppendNode appends a node in DFS preorder (initially a leaf) and returns
// its position. Builders call it for a node before recursing into its
// children, then patch Right via SetRight once the left subtree is emitted.
func (t *Tree) AppendNode(vol geom.Volume, start, end, depth int) int32 {
	t.Nodes = append(t.Nodes, Node{
		Vol:   vol,
		Start: int32(start),
		End:   int32(end),
		Right: NoRight,
		Depth: int32(depth),
	})
	if depth+1 > t.Height {
		t.Height = depth + 1
	}
	return int32(len(t.Nodes) - 1)
}

// SetRight records the right-child position of the node at i, turning it
// into an internal node.
func (t *Tree) SetRight(i, right int32) { t.Nodes[i].Right = right }

// Finish seals a freshly built tree: it physically reorders the points (and
// weights) into the builder's leaf-order permutation idx, records the
// original-ID mapping, caches per-row squared norms, and computes every
// node's aggregates into one packed block. idx[i] is the original row of
// the point that leaf order places at storage row i. The builder's input
// matrix is left untouched; the tree owns a reordered copy from here on.
func (t *Tree) Finish(idx []int) {
	src := t.Points
	pts := vec.NewMatrix(src.Rows, src.Cols)
	t.PointID = make([]int32, len(idx))
	for i, pi := range idx {
		copy(pts.Row(i), src.Row(pi))
		t.PointID[i] = int32(pi)
	}
	t.Points = pts
	if t.Weights != nil {
		w := make([]float64, len(idx))
		for i, pi := range idx {
			w[i] = t.Weights[pi]
		}
		t.Weights = w
	}
	t.Norms = make([]float64, pts.Rows)
	for i := 0; i < pts.Rows; i++ {
		t.Norms[i] = vec.Norm2(pts.Row(i))
	}
	t.ComputeAggregates()
}

// hasNegative reports whether any weight is negative (Type III).
func (t *Tree) hasNegative() bool {
	for _, w := range t.Weights {
		if w < 0 {
			return true
		}
	}
	return false
}

// ComputeAggregates fills every node's Pos/Neg aggregates bottom-up into a
// packed backing block. Points and weights must already be in storage
// (leaf) order. In DFS preorder both children of node i sit at positions
// greater than i, so one reverse sweep visits children before parents.
func (t *Tree) ComputeAggregates() {
	d := t.Dims()
	neg := t.hasNegative()
	blockLen := len(t.Nodes) * d
	if neg {
		blockLen *= 2
	}
	t.aggBlock = make([]float64, blockLen)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.Pos = Agg{A: t.aggBlock[i*d : (i+1)*d : (i+1)*d]}
		if neg {
			j := len(t.Nodes) + i
			n.Neg = Agg{A: t.aggBlock[j*d : (j+1)*d : (j+1)*d]}
		} else {
			n.Neg = Agg{}
		}
	}
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			for r := int(n.Start); r < int(n.End); r++ {
				w := t.Weight(r)
				p := t.Points.Row(r)
				if w >= 0 {
					n.Pos.Add(w, p)
				} else {
					n.Neg.Add(-w, p)
				}
			}
			continue
		}
		l, r := &t.Nodes[i+1], &t.Nodes[n.Right]
		n.Pos.merge(&l.Pos)
		n.Pos.merge(&r.Pos)
		n.Neg.merge(&l.Neg)
		n.Neg.merge(&r.Neg)
	}
}

// Walk visits every node in pre-order — a linear pass over the node array.
func (t *Tree) Walk(fn func(*Node)) {
	for i := range t.Nodes {
		fn(&t.Nodes[i])
	}
}

// LevelNodes returns the nodes that form the frontier of the simulated tree
// T_level — every node at exactly the given depth plus any shallower leaf.
// Level 0 is the root alone. This implements the in-situ tuning view of
// Section III-C, where the top-i-level tree is simulated on the full tree.
// Any node deeper than level is strictly below some frontier node, so a
// linear filter over the flat array yields exactly the frontier.
func (t *Tree) LevelNodes(level int) []*Node {
	var out []*Node
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if int(n.Depth) == level || (n.IsLeaf() && int(n.Depth) < level) {
			out = append(out, n)
		}
	}
	return out
}

// validateNode checks one node's structural invariants.
func (t *Tree) validateNode(i int32, tol float64) error {
	n := &t.Nodes[i]
	if n.Start >= n.End {
		return fmt.Errorf("index: node with empty range [%d,%d)", n.Start, n.End)
	}
	for r := n.Start; r < n.End; r++ {
		if !n.Vol.Contains(t.Points.Row(int(r)), tol) {
			return fmt.Errorf("index: point %d escapes its node volume", r)
		}
	}
	if n.IsLeaf() {
		return nil
	}
	if n.Right <= i+1 || int(n.Right) >= len(t.Nodes) {
		return fmt.Errorf("index: node %d has right child %d outside (%d,%d)",
			i, n.Right, i+1, len(t.Nodes))
	}
	l, r := &t.Nodes[i+1], &t.Nodes[n.Right]
	if l.Start != n.Start || l.End != r.Start || r.End != n.End {
		return fmt.Errorf("index: child ranges [%d,%d)+[%d,%d) do not tile [%d,%d)",
			l.Start, l.End, r.Start, r.End, n.Start, n.End)
	}
	if l.Depth != n.Depth+1 || r.Depth != n.Depth+1 {
		return fmt.Errorf("index: child depth %d/%d under depth %d", l.Depth, r.Depth, n.Depth)
	}
	return nil
}

// Validate checks the structural invariants of the whole tree: preorder
// child placement, child ranges tiling parents, every point inside its node
// volumes, the root covering all rows, and PointID being a permutation.
func (t *Tree) Validate(tol float64) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("index: empty node array")
	}
	root := t.Root()
	if root.Start != 0 || int(root.End) != t.Points.Rows {
		return fmt.Errorf("index: root range [%d,%d) does not cover %d points",
			root.Start, root.End, t.Points.Rows)
	}
	if len(t.PointID) != t.Points.Rows {
		return fmt.Errorf("index: %d point IDs for %d rows", len(t.PointID), t.Points.Rows)
	}
	seen := make([]bool, t.Points.Rows)
	for _, pi := range t.PointID {
		if int(pi) < 0 || int(pi) >= len(seen) || seen[pi] {
			return fmt.Errorf("index: point id %d out of range or duplicated", pi)
		}
		seen[pi] = true
	}
	for i := range t.Nodes {
		if err := t.validateNode(int32(i), tol); err != nil {
			return err
		}
	}
	return nil
}

// volStride returns the number of float64 parameters one bounding volume of
// this tree kind flattens to: Rect is Lo‖Hi (2d), Ball is center‖radius
// (d+1), Shell is center‖rmin‖rmax (d+2).
func (t *Tree) volStride() int {
	switch t.Kind {
	case BallTree:
		return t.Dims() + 1
	case VPTree:
		return t.Dims() + 2
	default:
		return 2 * t.Dims()
	}
}

// FlattenVolumes packs every node's bounding-volume parameters into one
// float64 block (node-major, volStride values per node) for persistence.
func (t *Tree) FlattenVolumes() []float64 {
	d := t.Dims()
	stride := t.volStride()
	out := make([]float64, len(t.Nodes)*stride)
	for i := range t.Nodes {
		dst := out[i*stride : (i+1)*stride]
		switch v := t.Nodes[i].Vol.(type) {
		case *geom.Rect:
			copy(dst[:d], v.Lo)
			copy(dst[d:], v.Hi)
		case *geom.Ball:
			copy(dst[:d], v.Center)
			dst[d] = v.Radius
		case *geom.Shell:
			copy(dst[:d], v.Center)
			dst[d] = v.RMin
			dst[d+1] = v.RMax
		default:
			panic(fmt.Sprintf("index: cannot flatten volume %T", v))
		}
	}
	return out
}

// unflattenVolume rebuilds one bounding volume from its packed parameters.
func unflattenVolume(kind Kind, d int, src []float64) geom.Volume {
	switch kind {
	case BallTree:
		return &geom.Ball{Center: vec.Clone(src[:d]), Radius: src[d]}
	case VPTree:
		return &geom.Shell{Center: vec.Clone(src[:d]), RMin: src[d], RMax: src[d+1]}
	default:
		return &geom.Rect{Lo: vec.Clone(src[:d]), Hi: vec.Clone(src[d : 2*d])}
	}
}

// Reconstruct rebuilds a flat tree from its persisted parts: leaf-ordered
// points and weights, the original-ID mapping, the preorder node structure
// and the packed volume parameters produced by FlattenVolumes. Norms and
// aggregates are derived data and are recomputed. The reconstructed tree is
// validated structurally before it is returned.
func Reconstruct(kind Kind, points *vec.Matrix, weights []float64, pointID []int32,
	start, end, right, depth []int32, volData []float64, leafCap int) (*Tree, error) {
	nn := len(start)
	if nn == 0 || len(end) != nn || len(right) != nn || len(depth) != nn {
		return nil, fmt.Errorf("index: inconsistent node arrays (%d/%d/%d/%d)",
			len(start), len(end), len(right), len(depth))
	}
	t := &Tree{Kind: kind, Points: points, Weights: weights, PointID: pointID, LeafCap: leafCap}
	if len(volData) != nn*t.volStride() {
		return nil, fmt.Errorf("index: volume block has %d values, want %d", len(volData), nn*t.volStride())
	}
	// Pre-validate the raw arrays before ComputeAggregates dereferences
	// them: child indices must point forward inside the array and row
	// ranges must stay inside the matrix.
	for i := 0; i < nn; i++ {
		if start[i] < 0 || end[i] > int32(points.Rows) || start[i] >= end[i] {
			return nil, fmt.Errorf("index: node %d range [%d,%d) outside %d rows", i, start[i], end[i], points.Rows)
		}
		if right[i] != NoRight && (right[i] <= int32(i)+1 || int(right[i]) >= nn) {
			return nil, fmt.Errorf("index: node %d right child %d outside (%d,%d)", i, right[i], i+1, nn)
		}
	}
	d := points.Cols
	stride := t.volStride()
	t.Nodes = make([]Node, nn)
	for i := 0; i < nn; i++ {
		t.Nodes[i] = Node{
			Vol:   unflattenVolume(kind, d, volData[i*stride:(i+1)*stride]),
			Start: start[i],
			End:   end[i],
			Right: right[i],
			Depth: depth[i],
		}
		if int(depth[i])+1 > t.Height {
			t.Height = int(depth[i]) + 1
		}
	}
	t.Norms = make([]float64, points.Rows)
	for i := 0; i < points.Rows; i++ {
		t.Norms[i] = vec.Norm2(points.Row(i))
	}
	t.ComputeAggregates()
	// Volumes were computed from the same points, so containment holds with
	// zero tolerance up to the float rounding of the original build.
	if err := t.Validate(1e-9); err != nil {
		return nil, err
	}
	return t, nil
}
