// Package index defines the hierarchical index representation shared by the
// kd-tree and ball-tree builders (Figure 2 of the paper): binary trees whose
// nodes carry a bounding volume, a contiguous range of point indices, and
// the precomputed weighted aggregates (Lemmas 2 and 5) that let KARL
// evaluate its linear bound functions in O(d) per node.
package index

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/vec"
)

// Agg holds the per-node weighted aggregates for one sign class of weights.
// For the positive class, W = Σ w_i, A = Σ w_i·p_i, B = Σ w_i·‖p_i‖² over
// points with w_i > 0; the negative class aggregates |w_i| over points with
// w_i < 0 (Section IV-A's P⁺/P⁻ decomposition). These are exactly the terms
// a_P, b_P, w_P of Lemma 5, which make FL_P(q, Lin_{m,c}) an O(d)
// computation.
type Agg struct {
	Count int       // number of points in this sign class
	W     float64   // Σ |w_i|
	A     []float64 // Σ |w_i|·p_i
	B     float64   // Σ |w_i|·‖p_i‖²
}

// add accumulates one weighted point (w already made non-negative).
func (a *Agg) add(w float64, p []float64) {
	a.Count++
	a.W += w
	if a.A == nil {
		a.A = make([]float64, len(p))
	}
	vec.Axpy(a.A, w, p)
	a.B += w * vec.Norm2(p)
}

// merge accumulates another aggregate (child into parent).
func (a *Agg) merge(b *Agg) {
	a.Count += b.Count
	a.W += b.W
	a.B += b.B
	if b.A == nil {
		return
	}
	if a.A == nil {
		a.A = make([]float64, len(b.A))
	}
	vec.AddTo(a.A, b.A)
}

// WeightedDist2Sum returns Σ |w_i|·dist(q, p_i)² over the class in O(d)
// using the expansion ‖q−p‖² = ‖q‖² − 2q·p + ‖p‖² (Lemma 2). qNorm2 is the
// caller-computed ‖q‖², hoisted because it is shared across every node a
// query touches.
func (a *Agg) WeightedDist2Sum(q []float64, qNorm2 float64) float64 {
	if a.Count == 0 {
		return 0
	}
	return a.W*qNorm2 - 2*vec.Dot(q, a.A) + a.B
}

// WeightedDotSum returns Σ |w_i|·(q·p_i) over the class in O(d), the
// analogous primitive for dot-product kernels (Section IV-B).
func (a *Agg) WeightedDotSum(q []float64) float64 {
	if a.Count == 0 {
		return 0
	}
	return vec.Dot(q, a.A)
}

// Node is one entry of the hierarchical index. Leaf nodes have nil children
// and own the points idx[Start:End]; internal nodes own the union of their
// children's ranges.
type Node struct {
	Vol         geom.Volume
	Start, End  int // range into Tree.Idx
	Left, Right *Node
	Depth       int
	Pos, Neg    Agg
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Count returns the number of points under the node.
func (n *Node) Count() int { return n.End - n.Start }

// Kind identifies the index structure family.
type Kind int

const (
	// KDTree splits on the widest dimension at the median and bounds nodes
	// with rectangles.
	KDTree Kind = iota
	// BallTree splits on a farthest-pair heuristic and bounds nodes with
	// balls.
	BallTree
	// VPTree splits at the median distance to a vantage point and bounds
	// nodes with spherical annuli (an extension beyond the paper's two
	// index structures).
	VPTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KDTree:
		return "kd-tree"
	case BallTree:
		return "ball-tree"
	case VPTree:
		return "vp-tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tree is a built index over a weighted point set. Points is referenced,
// not copied; Idx is the permutation that makes every node's points
// contiguous. Weights may be nil (unit weights, Type I with w=1).
type Tree struct {
	Kind    Kind
	Points  *vec.Matrix
	Weights []float64
	Idx     []int
	Root    *Node
	LeafCap int
	Height  int // number of levels; a single root-leaf tree has height 1
	Nodes   int
}

// Weight returns the weight of point i (1 when Weights is nil).
func (t *Tree) Weight(i int) float64 {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[i]
}

// Dims returns the dataset dimensionality.
func (t *Tree) Dims() int { return t.Points.Cols }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.Points.Rows }

// ComputeAggregates fills every node's Pos/Neg aggregates bottom-up.
// Builders call it once after the structure is in place.
func (t *Tree) ComputeAggregates() { t.computeAggregates(t.Root) }

// computeAggregates fills Pos/Neg for the subtree rooted at n, leaf-up.
func (t *Tree) computeAggregates(n *Node) {
	if n.IsLeaf() {
		for i := n.Start; i < n.End; i++ {
			pi := t.Idx[i]
			w := t.Weight(pi)
			p := t.Points.Row(pi)
			if w >= 0 {
				n.Pos.add(w, p)
			} else {
				n.Neg.add(-w, p)
			}
		}
		return
	}
	t.computeAggregates(n.Left)
	t.computeAggregates(n.Right)
	n.Pos.merge(&n.Left.Pos)
	n.Pos.merge(&n.Right.Pos)
	n.Neg.merge(&n.Left.Neg)
	n.Neg.merge(&n.Right.Neg)
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		fn(n)
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
}

// LevelNodes returns the nodes that form the frontier of the simulated tree
// T_level — every node at exactly the given depth plus any shallower leaf.
// Level 0 is the root alone. This implements the in-situ tuning view of
// Section III-C, where the top-i-level tree is simulated on the full tree.
func (t *Tree) LevelNodes(level int) []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		if n.Depth == level || n.IsLeaf() && n.Depth < level {
			out = append(out, n)
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
	return out
}

// validateNode recursively checks structural invariants; used by tests and
// by the builders' debug mode.
func (t *Tree) validate(n *Node, tol float64) error {
	if n == nil {
		return nil
	}
	if n.Start >= n.End {
		return fmt.Errorf("index: node with empty range [%d,%d)", n.Start, n.End)
	}
	for i := n.Start; i < n.End; i++ {
		if !n.Vol.Contains(t.Points.Row(t.Idx[i]), tol) {
			return fmt.Errorf("index: point %d escapes its node volume", t.Idx[i])
		}
	}
	if n.IsLeaf() {
		if n.Right != nil {
			return fmt.Errorf("index: half-internal node")
		}
		return nil
	}
	if n.Right == nil {
		return fmt.Errorf("index: half-internal node")
	}
	if n.Left.Start != n.Start || n.Left.End != n.Right.Start || n.Right.End != n.End {
		return fmt.Errorf("index: child ranges [%d,%d)+[%d,%d) do not tile [%d,%d)",
			n.Left.Start, n.Left.End, n.Right.Start, n.Right.End, n.Start, n.End)
	}
	if err := t.validate(n.Left, tol); err != nil {
		return err
	}
	return t.validate(n.Right, tol)
}

// Validate checks the structural invariants of the whole tree: child ranges
// tile parents, every point lies inside its node volumes, and the root
// covers the full permutation.
func (t *Tree) Validate(tol float64) error {
	if t.Root == nil {
		return fmt.Errorf("index: nil root")
	}
	if t.Root.Start != 0 || t.Root.End != t.Points.Rows {
		return fmt.Errorf("index: root range [%d,%d) does not cover %d points",
			t.Root.Start, t.Root.End, t.Points.Rows)
	}
	seen := make([]bool, t.Points.Rows)
	for _, pi := range t.Idx {
		if seen[pi] {
			return fmt.Errorf("index: point %d appears twice in permutation", pi)
		}
		seen[pi] = true
	}
	return t.validate(t.Root, tol)
}
