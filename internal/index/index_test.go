package index

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/vec"
)

func TestKindString(t *testing.T) {
	if KDTree.String() != "kd-tree" || BallTree.String() != "ball-tree" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(5).String() != "Kind(5)" {
		t.Fatal("unknown Kind.String mismatch")
	}
}

func TestAggAddMerge(t *testing.T) {
	var a Agg
	a.Add(2, []float64{1, 0})
	a.Add(3, []float64{0, 2})
	if a.Count != 2 || a.W != 5 {
		t.Fatalf("Count/W = %d/%v", a.Count, a.W)
	}
	if !vec.Equal(a.A, []float64{2, 6}, 1e-12) {
		t.Fatalf("A = %v", a.A)
	}
	if want := 2*1.0 + 3*4.0; math.Abs(a.B-want) > 1e-12 {
		t.Fatalf("B = %v want %v", a.B, want)
	}
	var b Agg
	b.Add(1, []float64{1, 1})
	a.merge(&b)
	if a.Count != 3 || a.W != 6 || !vec.Equal(a.A, []float64{3, 7}, 1e-12) {
		t.Fatalf("merge: %+v", a)
	}
	// Merging an empty aggregate is a no-op.
	before := a
	var empty Agg
	a.merge(&empty)
	if a.Count != before.Count || a.W != before.W {
		t.Fatal("merging empty changed aggregate")
	}
}

func TestWeightedSumsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		d := 1 + rng.Intn(5)
		var a Agg
		pts := make([][]float64, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64()
			}
			ws[i] = rng.Float64() + 0.01
			a.Add(ws[i], pts[i])
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		var wantDist, wantDot float64
		for i := range pts {
			wantDist += ws[i] * vec.Dist2(q, pts[i])
			wantDot += ws[i] * vec.Dot(q, pts[i])
		}
		gotDist := a.WeightedDist2Sum(q, vec.Norm2(q))
		if math.Abs(gotDist-wantDist) > 1e-9*(1+math.Abs(wantDist)) {
			t.Fatalf("trial %d: WeightedDist2Sum = %v want %v", trial, gotDist, wantDist)
		}
		gotDot := a.WeightedDotSum(q)
		if math.Abs(gotDot-wantDot) > 1e-9*(1+math.Abs(wantDot)) {
			t.Fatalf("trial %d: WeightedDotSum = %v want %v", trial, gotDot, wantDot)
		}
	}
}

func TestEmptyAggSumsAreZero(t *testing.T) {
	var a Agg
	if a.WeightedDist2Sum([]float64{1}, 1) != 0 || a.WeightedDotSum([]float64{1}) != 0 {
		t.Fatal("empty aggregate should contribute zero")
	}
}

// buildManualTree constructs a small two-leaf tree by hand, the way the
// builders do (preorder emission + Finish), so the Tree helpers can be
// tested without pulling in a builder package.
func buildManualTree() *Tree {
	m := vec.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}})
	idx := []int{0, 1, 2, 3}
	tr := &Tree{Kind: KDTree, Points: m, LeafCap: 2}
	root := tr.AppendNode(geom.BoundRows(m, idx, 0, 4), 0, 4, 0)
	tr.AppendNode(geom.BoundRows(m, idx, 0, 2), 0, 2, 1)
	right := tr.AppendNode(geom.BoundRows(m, idx, 2, 4), 2, 4, 1)
	tr.SetRight(root, right)
	tr.Finish(idx)
	return tr
}

func TestComputeAggregatesUnitWeights(t *testing.T) {
	tr := buildManualTree()
	root := tr.Root()
	if root.Pos.Count != 4 || root.Pos.W != 4 {
		t.Fatalf("root agg = %+v", root.Pos)
	}
	if !vec.Equal(root.Pos.A, []float64{22, 0}, 1e-12) {
		t.Fatalf("root A = %v", root.Pos.A)
	}
	if root.Neg.Count != 0 {
		t.Fatal("unit weights should have empty Neg")
	}
	left := tr.Node(tr.Left(0))
	if left.Pos.Count != 2 {
		t.Fatalf("left count = %d", left.Pos.Count)
	}
}

func TestComputeAggregatesSignedWeights(t *testing.T) {
	m := vec.FromRows([][]float64{{1, 0}, {0, 1}, {2, 2}})
	idx := []int{0, 1, 2}
	tr := &Tree{Kind: KDTree, Points: m, Weights: []float64{2, -3, 1}, LeafCap: 4}
	tr.AppendNode(geom.BoundRows(m, idx, 0, 3), 0, 3, 0)
	tr.Finish(idx)
	root := tr.Root()
	if root.Pos.Count != 2 || root.Pos.W != 3 {
		t.Fatalf("Pos = %+v", root.Pos)
	}
	if root.Neg.Count != 1 || root.Neg.W != 3 {
		t.Fatalf("Neg = %+v", root.Neg)
	}
	if !vec.Equal(root.Neg.A, []float64{0, 3}, 1e-12) {
		t.Fatalf("Neg.A = %v", root.Neg.A)
	}
}

func TestFinishReordersIntoLeafOrder(t *testing.T) {
	orig := vec.FromRows([][]float64{{3, 3}, {1, 1}, {2, 2}, {0, 0}})
	idx := []int{3, 1, 2, 0} // leaf order = sorted by coordinate
	tr := &Tree{Kind: KDTree, Points: orig, Weights: []float64{30, 10, 20, 0}, LeafCap: 4}
	tr.AppendNode(geom.BoundRows(orig, idx, 0, 4), 0, 4, 0)
	tr.Finish(idx)
	if tr.Points == orig {
		t.Fatal("Finish must copy, not alias, the input matrix")
	}
	for i := 0; i < 4; i++ {
		want := float64(i)
		if tr.Points.Row(i)[0] != want {
			t.Fatalf("storage row %d = %v, want first coord %v", i, tr.Points.Row(i), want)
		}
		if tr.Weights[i] != want*10 {
			t.Fatalf("weight %d = %v not reordered with its point", i, tr.Weights[i])
		}
		if int(tr.PointID[i]) != idx[i] {
			t.Fatalf("PointID[%d] = %d want %d", i, tr.PointID[i], idx[i])
		}
		if got := tr.Norms[i]; math.Abs(got-2*want*want) > 1e-12 {
			t.Fatalf("Norms[%d] = %v want %v", i, got, 2*want*want)
		}
	}
	// The input matrix must be untouched.
	if orig.Row(0)[0] != 3 {
		t.Fatal("Finish mutated the builder's input matrix")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	tr := buildManualTree()
	var count int
	tr.Walk(func(n *Node) { count++ })
	if count != 3 {
		t.Fatalf("Walk visited %d nodes, want 3", count)
	}
}

func TestLevelNodes(t *testing.T) {
	tr := buildManualTree()
	if got := tr.LevelNodes(0); len(got) != 1 || got[0] != tr.Root() {
		t.Fatalf("level 0 = %v", got)
	}
	if got := tr.LevelNodes(1); len(got) != 2 {
		t.Fatalf("level 1 has %d nodes, want 2", len(got))
	}
	// Deeper than the tree: leaves are returned once each.
	if got := tr.LevelNodes(5); len(got) != 2 {
		t.Fatalf("level 5 has %d nodes, want 2 leaves", len(got))
	}
	// Frontier counts must always cover all points exactly once.
	for level := 0; level < 6; level++ {
		var total int
		for _, n := range tr.LevelNodes(level) {
			total += n.Count()
		}
		if total != tr.Len() {
			t.Fatalf("level %d frontier covers %d points, want %d", level, total, tr.Len())
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := buildManualTree()
	if err := tr.Validate(1e-12); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Corrupt the permutation: duplicate an ID.
	tr.PointID[0] = tr.PointID[1]
	if err := tr.Validate(1e-12); err == nil {
		t.Fatal("duplicate point ID accepted")
	}
	tr = buildManualTree()
	// Corrupt a child range: node 1 is the left child of the root.
	tr.Nodes[1].End = 3
	if err := tr.Validate(1e-9); err == nil {
		t.Fatal("non-tiling child ranges accepted")
	}
	tr = buildManualTree()
	// Corrupt preorder: right child pointing backwards.
	tr.Nodes[0].Right = 0
	if err := tr.Validate(1e-12); err == nil {
		t.Fatal("backward right-child index accepted")
	}
	tr = buildManualTree()
	tr.Nodes = nil
	if err := tr.Validate(1e-12); err == nil {
		t.Fatal("empty node array accepted")
	}
}

func TestWeightHelper(t *testing.T) {
	tr := buildManualTree()
	if tr.Weight(2) != 1 {
		t.Fatal("nil weights should read as 1")
	}
	tr.Weights = []float64{5, 6, 7, 8}
	if tr.Weight(2) != 7 {
		t.Fatal("Weight should read the slice")
	}
	if tr.Dims() != 2 || tr.Len() != 4 {
		t.Fatalf("Dims/Len = %d/%d", tr.Dims(), tr.Len())
	}
}

func TestAggBlockIsPacked(t *testing.T) {
	tr := buildManualTree()
	// Every node's Pos.A must be a view into one backing array: the slices
	// of consecutive nodes are adjacent in memory.
	d := tr.Dims()
	if len(tr.aggBlock) != tr.NodeCount()*d {
		t.Fatalf("aggBlock has %d values, want %d", len(tr.aggBlock), tr.NodeCount()*d)
	}
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if &n.Pos.A[0] != &tr.aggBlock[i*d] {
			t.Fatalf("node %d Pos.A is not a view into the packed block", i)
		}
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KDTree, BallTree, VPTree} {
		tr := manualTreeOfKind(kind)
		nn := tr.NodeCount()
		start := make([]int32, nn)
		end := make([]int32, nn)
		right := make([]int32, nn)
		depth := make([]int32, nn)
		for i, n := range tr.Nodes {
			start[i], end[i], right[i], depth[i] = n.Start, n.End, n.Right, n.Depth
		}
		got, err := Reconstruct(kind, tr.Points, tr.Weights, tr.PointID,
			start, end, right, depth, tr.FlattenVolumes(), tr.LeafCap)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got.Height != tr.Height || got.NodeCount() != nn || got.Len() != tr.Len() {
			t.Fatalf("%v: shape mismatch after reconstruct", kind)
		}
		for i := range tr.Nodes {
			a, b := &tr.Nodes[i], &got.Nodes[i]
			if a.Pos.Count != b.Pos.Count || math.Abs(a.Pos.W-b.Pos.W) > 1e-12 ||
				math.Abs(a.Pos.B-b.Pos.B) > 1e-9 || !vec.Equal(a.Pos.A, b.Pos.A, 1e-9) {
				t.Fatalf("%v: node %d aggregates differ after reconstruct", kind, i)
			}
		}
	}
}

func TestReconstructRejectsCorruptInput(t *testing.T) {
	tr := buildManualTree()
	nn := tr.NodeCount()
	start := make([]int32, nn)
	end := make([]int32, nn)
	right := make([]int32, nn)
	depth := make([]int32, nn)
	for i, n := range tr.Nodes {
		start[i], end[i], right[i], depth[i] = n.Start, n.End, n.Right, n.Depth
	}
	vols := tr.FlattenVolumes()
	if _, err := Reconstruct(KDTree, tr.Points, nil, tr.PointID,
		start[:1], end, right, depth, vols, 2); err == nil {
		t.Fatal("inconsistent node arrays accepted")
	}
	if _, err := Reconstruct(KDTree, tr.Points, nil, tr.PointID,
		start, end, right, depth, vols[:3], 2); err == nil {
		t.Fatal("short volume block accepted")
	}
	badRight := append([]int32(nil), right...)
	badRight[0] = 0
	if _, err := Reconstruct(KDTree, tr.Points, nil, tr.PointID,
		start, end, badRight, depth, vols, 2); err == nil {
		t.Fatal("corrupt right-child array accepted")
	}
}

// manualTreeOfKind builds the two-leaf manual tree with the bounding-volume
// family of the given kind, so volume flattening is exercised per shape.
func manualTreeOfKind(kind Kind) *Tree {
	m := vec.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}})
	idx := []int{0, 1, 2, 3}
	vol := func(start, end int) geom.Volume {
		switch kind {
		case BallTree:
			return geom.BoundRowsBall(m, idx, start, end)
		case VPTree:
			return geom.BoundRowsShell(m.Row(idx[start]), m, idx, start, end)
		default:
			return geom.BoundRows(m, idx, start, end)
		}
	}
	tr := &Tree{Kind: kind, Points: m, Weights: []float64{1, 2, -3, 4}, LeafCap: 2}
	root := tr.AppendNode(vol(0, 4), 0, 4, 0)
	tr.AppendNode(vol(0, 2), 0, 2, 1)
	right := tr.AppendNode(vol(2, 4), 2, 4, 1)
	tr.SetRight(root, right)
	tr.Finish(idx)
	return tr
}

// TestBuildLeaf32 pins the derived float32 tile block: it mirrors the
// leaf-ordered storage exactly (every coordinate is float32(v) of the
// stored float64), carries the tree's maximum squared norm, and rebuilding
// it is deterministic (the persistence layer relies on that to reconstruct
// a WithLeafFloat32 engine bitwise from the stored float64 points).
func TestBuildLeaf32(t *testing.T) {
	tr := buildManualTree()
	tr.BuildLeaf32()
	if tr.Leaf32 == nil {
		t.Fatal("BuildLeaf32 left Leaf32 nil")
	}
	blk := tr.Leaf32
	if blk.Rows != tr.Len() || blk.Cols != tr.Dims() {
		t.Fatalf("block shape %dx%d, tree %dx%d", blk.Rows, blk.Cols, tr.Len(), tr.Dims())
	}
	wantMax := 0.0
	for r := 0; r < tr.Len(); r++ {
		if tr.Norms[r] > wantMax {
			wantMax = tr.Norms[r]
		}
		for j := 0; j < tr.Dims(); j++ {
			if got, want := blk.At(r, j), float32(tr.Points.Row(r)[j]); got != want {
				t.Fatalf("Leaf32.At(%d,%d) = %v, want %v", r, j, got, want)
			}
		}
	}
	if blk.MaxNorm2 != wantMax {
		t.Fatalf("MaxNorm2 = %v, want %v", blk.MaxNorm2, wantMax)
	}
	first := append([]float32(nil), blk.Data...)
	tr.BuildLeaf32()
	for i, v := range tr.Leaf32.Data {
		if v != first[i] {
			t.Fatalf("rebuild not deterministic at %d", i)
		}
	}
}
