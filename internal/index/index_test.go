package index

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/vec"
)

func TestKindString(t *testing.T) {
	if KDTree.String() != "kd-tree" || BallTree.String() != "ball-tree" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(5).String() != "Kind(5)" {
		t.Fatal("unknown Kind.String mismatch")
	}
}

func TestAggAddMerge(t *testing.T) {
	var a Agg
	a.add(2, []float64{1, 0})
	a.add(3, []float64{0, 2})
	if a.Count != 2 || a.W != 5 {
		t.Fatalf("Count/W = %d/%v", a.Count, a.W)
	}
	if !vec.Equal(a.A, []float64{2, 6}, 1e-12) {
		t.Fatalf("A = %v", a.A)
	}
	if want := 2*1.0 + 3*4.0; math.Abs(a.B-want) > 1e-12 {
		t.Fatalf("B = %v want %v", a.B, want)
	}
	var b Agg
	b.add(1, []float64{1, 1})
	a.merge(&b)
	if a.Count != 3 || a.W != 6 || !vec.Equal(a.A, []float64{3, 7}, 1e-12) {
		t.Fatalf("merge: %+v", a)
	}
	// Merging an empty aggregate is a no-op.
	before := a
	var empty Agg
	a.merge(&empty)
	if a.Count != before.Count || a.W != before.W {
		t.Fatal("merging empty changed aggregate")
	}
}

func TestWeightedSumsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		d := 1 + rng.Intn(5)
		var a Agg
		pts := make([][]float64, n)
		ws := make([]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64()
			}
			ws[i] = rng.Float64() + 0.01
			a.add(ws[i], pts[i])
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		var wantDist, wantDot float64
		for i := range pts {
			wantDist += ws[i] * vec.Dist2(q, pts[i])
			wantDot += ws[i] * vec.Dot(q, pts[i])
		}
		gotDist := a.WeightedDist2Sum(q, vec.Norm2(q))
		if math.Abs(gotDist-wantDist) > 1e-9*(1+math.Abs(wantDist)) {
			t.Fatalf("trial %d: WeightedDist2Sum = %v want %v", trial, gotDist, wantDist)
		}
		gotDot := a.WeightedDotSum(q)
		if math.Abs(gotDot-wantDot) > 1e-9*(1+math.Abs(wantDot)) {
			t.Fatalf("trial %d: WeightedDotSum = %v want %v", trial, gotDot, wantDot)
		}
	}
}

func TestEmptyAggSumsAreZero(t *testing.T) {
	var a Agg
	if a.WeightedDist2Sum([]float64{1}, 1) != 0 || a.WeightedDotSum([]float64{1}) != 0 {
		t.Fatal("empty aggregate should contribute zero")
	}
}

// buildManualTree constructs a small two-leaf tree by hand so the Tree
// helpers can be tested without a builder.
func buildManualTree() *Tree {
	m := vec.FromRows([][]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}})
	t := &Tree{
		Kind:   KDTree,
		Points: m,
		Idx:    []int{0, 1, 2, 3},
	}
	left := &Node{Vol: geom.BoundRows(m, t.Idx, 0, 2), Start: 0, End: 2, Depth: 1}
	right := &Node{Vol: geom.BoundRows(m, t.Idx, 2, 4), Start: 2, End: 4, Depth: 1}
	root := &Node{Vol: geom.BoundRows(m, t.Idx, 0, 4), Start: 0, End: 4, Left: left, Right: right}
	t.Root = root
	t.Height = 2
	t.Nodes = 3
	t.ComputeAggregates()
	return t
}

func TestComputeAggregatesUnitWeights(t *testing.T) {
	tr := buildManualTree()
	if tr.Root.Pos.Count != 4 || tr.Root.Pos.W != 4 {
		t.Fatalf("root agg = %+v", tr.Root.Pos)
	}
	if !vec.Equal(tr.Root.Pos.A, []float64{22, 0}, 1e-12) {
		t.Fatalf("root A = %v", tr.Root.Pos.A)
	}
	if tr.Root.Neg.Count != 0 {
		t.Fatal("unit weights should have empty Neg")
	}
	if tr.Root.Left.Pos.Count != 2 {
		t.Fatalf("left count = %d", tr.Root.Left.Pos.Count)
	}
}

func TestComputeAggregatesSignedWeights(t *testing.T) {
	m := vec.FromRows([][]float64{{1, 0}, {0, 1}, {2, 2}})
	tr := &Tree{
		Kind:    KDTree,
		Points:  m,
		Weights: []float64{2, -3, 1},
		Idx:     []int{0, 1, 2},
	}
	tr.Root = &Node{Vol: geom.BoundRows(m, tr.Idx, 0, 3), Start: 0, End: 3}
	tr.ComputeAggregates()
	if tr.Root.Pos.Count != 2 || tr.Root.Pos.W != 3 {
		t.Fatalf("Pos = %+v", tr.Root.Pos)
	}
	if tr.Root.Neg.Count != 1 || tr.Root.Neg.W != 3 {
		t.Fatalf("Neg = %+v", tr.Root.Neg)
	}
	if !vec.Equal(tr.Root.Neg.A, []float64{0, 3}, 1e-12) {
		t.Fatalf("Neg.A = %v", tr.Root.Neg.A)
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	tr := buildManualTree()
	var count int
	tr.Walk(func(n *Node) { count++ })
	if count != 3 {
		t.Fatalf("Walk visited %d nodes, want 3", count)
	}
}

func TestLevelNodes(t *testing.T) {
	tr := buildManualTree()
	if got := tr.LevelNodes(0); len(got) != 1 || got[0] != tr.Root {
		t.Fatalf("level 0 = %v", got)
	}
	if got := tr.LevelNodes(1); len(got) != 2 {
		t.Fatalf("level 1 has %d nodes, want 2", len(got))
	}
	// Deeper than the tree: leaves are returned once each.
	if got := tr.LevelNodes(5); len(got) != 2 {
		t.Fatalf("level 5 has %d nodes, want 2 leaves", len(got))
	}
	// Frontier counts must always cover all points exactly once.
	for level := 0; level < 6; level++ {
		var total int
		for _, n := range tr.LevelNodes(level) {
			total += n.Count()
		}
		if total != tr.Len() {
			t.Fatalf("level %d frontier covers %d points, want %d", level, total, tr.Len())
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := buildManualTree()
	if err := tr.Validate(1e-12); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Corrupt the permutation: duplicate an index.
	tr.Idx[0] = tr.Idx[1]
	if err := tr.Validate(1e-12); err == nil {
		t.Fatal("duplicate permutation entry accepted")
	}
	tr = buildManualTree()
	// Corrupt a child range.
	tr.Root.Left.End = 3
	if err := tr.Validate(1e-9); err == nil {
		t.Fatal("non-tiling child ranges accepted")
	}
	tr = buildManualTree()
	tr.Root = nil
	if err := tr.Validate(1e-12); err == nil {
		t.Fatal("nil root accepted")
	}
}

func TestWeightHelper(t *testing.T) {
	tr := buildManualTree()
	if tr.Weight(2) != 1 {
		t.Fatal("nil weights should read as 1")
	}
	tr.Weights = []float64{5, 6, 7, 8}
	if tr.Weight(2) != 7 {
		t.Fatal("Weight should read the slice")
	}
	if tr.Dims() != 2 || tr.Len() != 4 {
		t.Fatalf("Dims/Len = %d/%d", tr.Dims(), tr.Len())
	}
}
