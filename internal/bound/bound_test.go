package bound

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/vec"
)

func TestMethodString(t *testing.T) {
	if SOTA.String() != "SOTA" || KARL.String() != "KARL" || Method(9).String() != "Method(9)" {
		t.Fatal("Method.String mismatch")
	}
}

// testCase bundles a random node (points, positive weights, aggregate,
// volume) with a query.
type testCase struct {
	pts  *vec.Matrix
	w    []float64
	agg  index.Agg
	rect *geom.Rect
	ball *geom.Ball
	q    []float64
	qc   *QueryCtx
}

func makeCase(rng *rand.Rand, n, d int, spread float64) *testCase {
	tc := &testCase{pts: vec.NewMatrix(n, d), w: make([]float64, n)}
	center := make([]float64, d)
	for j := range center {
		center[j] = rng.NormFloat64()
	}
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		idx[i] = i
		row := tc.pts.Row(i)
		for j := range row {
			row[j] = center[j] + rng.NormFloat64()*spread
		}
		tc.w[i] = rng.Float64()*2 + 0.01
	}
	for i := 0; i < n; i++ {
		tc.agg = addAgg(tc.agg, tc.w[i], tc.pts.Row(i))
	}
	tc.rect = geom.BoundRows(tc.pts, idx, 0, n)
	tc.ball = geom.BoundRowsBall(tc.pts, idx, 0, n)
	tc.q = make([]float64, d)
	for j := range tc.q {
		tc.q[j] = rng.NormFloat64() * 2
	}
	tc.qc = NewQueryCtx(tc.q)
	return tc
}

// addAgg mirrors index.Agg accumulation without exporting its add method.
func addAgg(a index.Agg, w float64, p []float64) index.Agg {
	a.Count++
	a.W += w
	if a.A == nil {
		a.A = make([]float64, len(p))
	}
	vec.Axpy(a.A, w, p)
	a.B += w * vec.Norm2(p)
	return a
}

func (tc *testCase) exact(k kernel.Params) float64 {
	return kernel.Aggregate(k, tc.q, tc.pts, tc.w)
}

var allKernels = []kernel.Params{
	kernel.NewGaussian(0.8),
	kernel.NewGaussian(5),
	kernel.NewPolynomial(0.5, 1, 2),
	kernel.NewPolynomial(0.5, 0.3, 3),
	kernel.NewPolynomial(0.3, -0.2, 4),
	kernel.NewPolynomial(0.4, 0, 5),
	kernel.NewSigmoid(0.5, 0.1),
	kernel.NewSigmoid(1.2, -0.4),
}

// TestBoundValidity is the central soundness property: for every kernel,
// method and volume type, lb ≤ Σ w_i·K(q,p_i) ≤ ub on random clustered
// data.
func TestBoundValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(30)
		d := 1 + rng.Intn(6)
		spread := math.Pow(10, rng.Float64()*3-2) // 0.01 .. 10
		tc := makeCase(rng, n, d, spread)
		for _, k := range allKernels {
			exact := tc.exact(k)
			tol := 1e-7 * (1 + math.Abs(exact))
			for _, vol := range []geom.Volume{tc.rect, tc.ball} {
				for _, m := range []Method{SOTA, KARL} {
					lb, ub := ClassBounds(m, k, tc.qc, vol, &tc.agg)
					if lb > exact+tol || ub < exact-tol {
						t.Fatalf("trial %d %v %v %T: bounds [%v,%v] exclude exact %v",
							trial, m, k.Kind, vol, lb, ub, exact)
					}
					if lb > ub+tol {
						t.Fatalf("trial %d %v %v: lb %v > ub %v", trial, m, k.Kind, lb, ub)
					}
				}
			}
		}
	}
}

// TestKARLTighterThanSOTA checks Lemmas 3 and 4 (and their dot-product
// analogues): KARL's bounds are never looser than SOTA's.
func TestKARLTighterThanSOTA(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(30)
		d := 1 + rng.Intn(6)
		spread := math.Pow(10, rng.Float64()*3-2)
		tc := makeCase(rng, n, d, spread)
		for _, k := range allKernels {
			for _, vol := range []geom.Volume{tc.rect, tc.ball} {
				sLB, sUB := ClassBounds(SOTA, k, tc.qc, vol, &tc.agg)
				kLB, kUB := ClassBounds(KARL, k, tc.qc, vol, &tc.agg)
				tol := 1e-9 * (1 + math.Abs(sUB) + math.Abs(sLB))
				if kLB < sLB-tol {
					t.Fatalf("trial %d %v %T: KARL lb %v looser than SOTA %v",
						trial, k.Kind, vol, kLB, sLB)
				}
				if kUB > sUB+tol {
					t.Fatalf("trial %d %v %T: KARL ub %v looser than SOTA %v",
						trial, k.Kind, vol, kUB, sUB)
				}
			}
		}
	}
}

// TestKARLStrictlyTighterOnSpreadData demonstrates the speedup source: on a
// node with real spread, KARL's gap (ub−lb) is materially smaller than
// SOTA's for the Gaussian kernel.
func TestKARLStrictlyTighterOnSpreadData(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	k := kernel.NewGaussian(1)
	var karlWins int
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		tc := makeCase(rng, 40, 4, 1.0)
		sLB, sUB := ClassBounds(SOTA, k, tc.qc, tc.rect, &tc.agg)
		kLB, kUB := ClassBounds(KARL, k, tc.qc, tc.rect, &tc.agg)
		if kUB-kLB < (sUB-sLB)*0.9 {
			karlWins++
		}
	}
	if karlWins < trials*3/4 {
		t.Fatalf("KARL materially tighter in only %d/%d trials", karlWins, trials)
	}
}

func TestEmptyClassBounds(t *testing.T) {
	qc := NewQueryCtx([]float64{0, 0})
	var empty index.Agg
	rect := &geom.Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	for _, m := range []Method{SOTA, KARL} {
		lb, ub := ClassBounds(m, kernel.NewGaussian(1), qc, rect, &empty)
		if lb != 0 || ub != 0 {
			t.Fatalf("%v: empty class bounds [%v,%v], want [0,0]", m, lb, ub)
		}
	}
}

func TestIntervalGaussian(t *testing.T) {
	k := kernel.NewGaussian(2)
	qc := NewQueryCtx([]float64{3, 0})
	rect := &geom.Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	a, b := Interval(k, qc, rect)
	if math.Abs(a-2*4) > 1e-12 {
		t.Fatalf("a = %v want 8", a)
	}
	if math.Abs(b-2*10) > 1e-12 {
		t.Fatalf("b = %v want 20", b)
	}
}

func TestIntervalDotKernel(t *testing.T) {
	k := kernel.NewPolynomial(2, 1, 3)
	qc := NewQueryCtx([]float64{1, 1})
	rect := &geom.Rect{Lo: []float64{0, 0}, Hi: []float64{1, 2}}
	a, b := Interval(k, qc, rect)
	if math.Abs(a-1) > 1e-12 { // 2·0+1
		t.Fatalf("a = %v want 1", a)
	}
	if math.Abs(b-7) > 1e-12 { // 2·3+1
		t.Fatalf("b = %v want 7", b)
	}
}

func TestDegenerateInterval(t *testing.T) {
	// All points identical → zero-width interval; both bounds must equal
	// the exact value.
	pts := vec.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	w := []float64{1, 2, 3}
	idx := []int{0, 1, 2}
	rect := geom.BoundRows(pts, idx, 0, 3)
	var agg index.Agg
	for i := 0; i < 3; i++ {
		agg = addAgg(agg, w[i], pts.Row(i))
	}
	q := []float64{2, 2}
	qc := NewQueryCtx(q)
	for _, k := range allKernels {
		exact := kernel.Aggregate(k, q, pts, w)
		lb, ub := ClassBounds(KARL, k, qc, rect, &agg)
		tol := 1e-9 * (1 + math.Abs(exact))
		if math.Abs(lb-exact) > tol || math.Abs(ub-exact) > tol {
			t.Fatalf("%v: degenerate bounds [%v,%v] want %v", k.Kind, lb, ub, exact)
		}
	}
}

// TestNodeBoundsTypeIII validates the P⁺/P⁻ decomposition of Section IV-A:
// node bounds with signed weights must bracket the exact signed sum.
func TestNodeBoundsTypeIII(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(30)
		d := 1 + rng.Intn(5)
		pts := vec.NewMatrix(n, d)
		w := make([]float64, n)
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			idx[i] = i
			for j := 0; j < d; j++ {
				pts.Row(i)[j] = rng.NormFloat64()
			}
			w[i] = rng.NormFloat64() // mixed signs
		}
		node := &index.Node{Vol: geom.BoundRows(pts, idx, 0, n), Start: 0, End: int32(n), Right: index.NoRight}
		for i := 0; i < n; i++ {
			if w[i] >= 0 {
				node.Pos = addAgg(node.Pos, w[i], pts.Row(i))
			} else {
				node.Neg = addAgg(node.Neg, -w[i], pts.Row(i))
			}
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		qc := NewQueryCtx(q)
		for _, k := range allKernels {
			exact := kernel.Aggregate(k, q, pts, w)
			tol := 1e-7 * (1 + math.Abs(exact))
			for _, m := range []Method{SOTA, KARL} {
				lb, ub := NodeBounds(m, k, qc, node)
				if lb > exact+tol || ub < exact-tol {
					t.Fatalf("trial %d %v %v: [%v,%v] excludes %v", trial, m, k.Kind, lb, ub, exact)
				}
			}
		}
	}
}

// TestScalarLinearBoundsPointwise hammers the scalar-level construction:
// for each kernel the lower line must sit below the outer function and the
// upper line above it across the whole interval, not just at x̄. We verify
// by evaluating the construction at many x̄ positions and comparing against
// f at that same position — for a valid linear bound L_l(x) ≤ f(x) ≤ L_u(x)
// pointwise.
func TestScalarLinearBoundsPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 200; trial++ {
		a := rng.NormFloat64() * 3
		b := a + rng.Float64()*6 + 1e-6
		for _, k := range allKernels {
			if k.DistanceBased() && a < 0 {
				continue // γ·dist² is never negative
			}
			for s := 0; s <= 20; s++ {
				x := a + (b-a)*float64(s)/20
				lo, hi := linearBoundsAt(k, a, b, x)
				fx := k.Outer(x)
				tol := 1e-8 * (1 + math.Abs(fx) + math.Abs(lo) + math.Abs(hi))
				if lo > fx+tol {
					t.Fatalf("%v on [%v,%v]: lower line %v above f(%v)=%v", k.Kind, a, b, lo, x, fx)
				}
				if hi < fx-tol {
					t.Fatalf("%v on [%v,%v]: upper line %v below f(%v)=%v", k.Kind, a, b, hi, x, fx)
				}
			}
		}
	}
}

// TestGaussianKnownBounds checks the closed forms on a hand-computed case.
func TestGaussianKnownBounds(t *testing.T) {
	// Two unit-weight points at distance 1 and 3 from q, γ=1:
	// exact = e⁻¹ + e⁻⁹. x̄ = (1+9)/2 = 5.
	pts := vec.FromRows([][]float64{{1}, {3}})
	idx := []int{0, 1}
	rect := geom.BoundRows(pts, idx, 0, 2)
	var agg index.Agg
	agg = addAgg(agg, 1, pts.Row(0))
	agg = addAgg(agg, 1, pts.Row(1))
	q := []float64{0}
	qc := NewQueryCtx(q)
	k := kernel.NewGaussian(1)
	lb, ub := ClassBounds(KARL, k, qc, rect, &agg)
	// Jensen: 2·exp(−5).
	wantLB := 2 * math.Exp(-5)
	if math.Abs(lb-wantLB) > 1e-12 {
		t.Fatalf("lb = %v want %v", lb, wantLB)
	}
	// Chord over [1,9] evaluated at 5 is the midpoint of e⁻¹,e⁻⁹ times 2.
	wantUB := math.Exp(-1) + math.Exp(-9)
	if math.Abs(ub-wantUB) > 1e-12 {
		t.Fatalf("ub = %v want %v", ub, wantUB)
	}
	sLB, sUB := ClassBounds(SOTA, k, qc, rect, &agg)
	if math.Abs(sLB-2*math.Exp(-9)) > 1e-12 || math.Abs(sUB-2*math.Exp(-1)) > 1e-12 {
		t.Fatalf("SOTA = [%v,%v]", sLB, sUB)
	}
}

// TestLargeGammaUnderflow ensures numerical robustness when exp underflows.
func TestLargeGammaUnderflow(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	tc := makeCase(rng, 10, 3, 5)
	k := kernel.NewGaussian(1e6)
	lb, ub := ClassBounds(KARL, k, tc.qc, tc.rect, &tc.agg)
	if math.IsNaN(lb) || math.IsNaN(ub) || lb < 0 || lb > ub {
		t.Fatalf("underflow bounds broken: [%v,%v]", lb, ub)
	}
}

func BenchmarkClassBoundsKARLGaussian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tc := makeCase(rng, 100, 32, 1)
	k := kernel.NewGaussian(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassBounds(KARL, k, tc.qc, tc.rect, &tc.agg)
	}
}

func BenchmarkClassBoundsSOTAGaussian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tc := makeCase(rng, 100, 32, 1)
	k := kernel.NewGaussian(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassBounds(SOTA, k, tc.qc, tc.rect, &tc.agg)
	}
}
