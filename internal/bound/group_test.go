package bound

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kernel"
)

func groupTestKernels() []kernel.Params {
	return []kernel.Params{
		{Kind: kernel.Gaussian, Gamma: 0.8},
		{Kind: kernel.Epanechnikov, Gamma: 0.6},
		{Kind: kernel.Quartic, Gamma: 0.5},
		{Kind: kernel.Polynomial, Gamma: 0.7, Beta: 0.2, Degree: 2},
		{Kind: kernel.Polynomial, Gamma: 0.7, Beta: -0.1, Degree: 3},
		{Kind: kernel.Sigmoid, Gamma: 0.5, Beta: 0.1},
	}
}

// TestGroupNodeBoundsContainExact is the soundness gate for the dual-tree
// group bounds: for random query rectangles and reference nodes, the group
// bounds must contain the exact signed aggregate of every sampled query in
// the rectangle, for every method.
func TestGroupNodeBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	methods := []Method{SOTA, KARL, KARLLowerOnly, KARLUpperOnly}
	for _, k := range groupTestKernels() {
		for trial := 0; trial < 120; trial++ {
			dim := 1 + rng.Intn(4)

			// Reference points with mixed-sign weights.
			npts := 2 + rng.Intn(10)
			pts := make([][]float64, npts)
			ws := make([]float64, npts)
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for j := range lo {
				lo[j] = math.Inf(1)
				hi[j] = math.Inf(-1)
			}
			var n index.Node
			n.Pos.A = make([]float64, dim)
			n.Neg.A = make([]float64, dim)
			for i := range pts {
				p := make([]float64, dim)
				for j := range p {
					p[j] = rng.Float64()*2 - 1
					lo[j] = math.Min(lo[j], p[j])
					hi[j] = math.Max(hi[j], p[j])
				}
				pts[i] = p
				w := rng.Float64() + 0.05
				if trial%2 == 1 && rng.Intn(3) == 0 {
					w = -w
				}
				ws[i] = w
				if w >= 0 {
					n.Pos.Add(w, p)
				} else {
					n.Neg.Add(-w, p)
				}
			}
			n.Vol = &geom.Rect{Lo: lo, Hi: hi}

			// Query rectangle, sometimes overlapping the reference region.
			qlo := make([]float64, dim)
			qhi := make([]float64, dim)
			for j := range qlo {
				a := rng.Float64()*3 - 1.5
				qlo[j] = a
				qhi[j] = a + rng.Float64()
			}
			qrect := &geom.Rect{Lo: qlo, Hi: qhi}

			for _, m := range methods {
				lb, ub := GroupNodeBounds(m, k, qrect, &n)
				if lb > ub+1e-9 {
					t.Fatalf("%v/%v: lb %v > ub %v", k.Kind, m, lb, ub)
				}
				for s := 0; s < 25; s++ {
					q := make([]float64, dim)
					for j := range q {
						q[j] = qlo[j] + rng.Float64()*(qhi[j]-qlo[j])
					}
					var exact float64
					for i, p := range pts {
						exact += ws[i] * k.Eval(q, p)
					}
					tol := 1e-9 * (1 + math.Abs(exact))
					if exact < lb-tol || exact > ub+tol {
						t.Fatalf("%v/%v trial %d: exact %v outside group bounds [%v, %v]",
							k.Kind, m, trial, exact, lb, ub)
					}
				}
			}
		}
	}
}

// TestGroupBoundsDegenerateRectMatchPointBounds checks that when the query
// rectangle collapses to a single point, the group bounds are at least as
// tight as SOTA point bounds and still contain the per-query KARL bounds'
// certified range.
func TestGroupBoundsDegenerateRectMatchPointBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range groupTestKernels() {
		for trial := 0; trial < 60; trial++ {
			dim := 1 + rng.Intn(3)
			var n index.Node
			n.Pos.A = make([]float64, dim)
			n.Neg.A = make([]float64, dim)
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for j := range lo {
				lo[j] = math.Inf(1)
				hi[j] = math.Inf(-1)
			}
			for i := 0; i < 6; i++ {
				p := make([]float64, dim)
				for j := range p {
					p[j] = rng.Float64()*2 - 1
					lo[j] = math.Min(lo[j], p[j])
					hi[j] = math.Max(hi[j], p[j])
				}
				n.Pos.Add(0.1+rng.Float64(), p)
			}
			n.Vol = &geom.Rect{Lo: lo, Hi: hi}

			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()*2 - 1
			}
			qrect := &geom.Rect{Lo: append([]float64(nil), q...), Hi: append([]float64(nil), q...)}
			qc := NewQueryCtx(q)

			glb, gub := GroupNodeBounds(KARL, k, qrect, &n)
			plb, pub := NodeBounds(KARL, k, qc, &n)
			// Group bounds for a point rectangle must contain the true value,
			// which the per-query bounds bracket; so the intervals must
			// intersect and the group interval must cover [plb, pub]'s center.
			if glb > pub+1e-9 || gub < plb-1e-9 {
				t.Fatalf("%v trial %d: point-rect group bounds [%v, %v] disjoint from per-query [%v, %v]",
					k.Kind, trial, glb, gub, plb, pub)
			}
			slb, sub := NodeBounds(SOTA, k, qc, &n)
			if glb < slb-1e-9*(1+math.Abs(slb)) || gub > sub+1e-9*(1+math.Abs(sub)) {
				t.Fatalf("%v trial %d: point-rect group bounds [%v, %v] looser than SOTA [%v, %v]",
					k.Kind, trial, glb, gub, slb, sub)
			}
		}
	}
}
