package bound

import (
	"math"
	"testing"
	"testing/quick"

	"karl/internal/kernel"
)

// TestQuickScalarBoundsGaussian drives the scalar-level linear bounds with
// quick-generated intervals and evaluation points: the lower bound value
// never exceeds exp(−x) and the upper bound never falls below it, anywhere
// in the interval.
func TestQuickScalarBoundsGaussian(t *testing.T) {
	k := kernel.NewGaussian(1)
	f := func(aRaw, widthRaw, posRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 50))
		width := math.Abs(math.Mod(widthRaw, 50))
		pos := math.Abs(math.Mod(posRaw, 1))
		b := a + width
		if width == 0 {
			b = a + 1e-9
		}
		x := a + (b-a)*pos
		lo, hi := linearBoundsAt(k, a, b, x)
		fx := math.Exp(-x)
		tol := 1e-9 * (1 + fx)
		return lo <= fx+tol && hi >= fx-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScalarBoundsOddPoly does the same for the degree-3 polynomial
// over intervals that may straddle the inflection point.
func TestQuickScalarBoundsOddPoly(t *testing.T) {
	k := kernel.NewPolynomial(1, 0, 3)
	f := func(aRaw, widthRaw, posRaw float64) bool {
		a := math.Mod(aRaw, 10)
		width := math.Abs(math.Mod(widthRaw, 10))
		pos := math.Abs(math.Mod(posRaw, 1))
		b := a + width
		if width == 0 {
			return true
		}
		x := a + (b-a)*pos
		lo, hi := linearBoundsAt(k, a, b, x)
		fx := x * x * x
		tol := 1e-8 * (1 + math.Abs(fx) + math.Abs(lo) + math.Abs(hi))
		return lo <= fx+tol && hi >= fx-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScalarBoundsSigmoid: same for tanh.
func TestQuickScalarBoundsSigmoid(t *testing.T) {
	k := kernel.NewSigmoid(1, 0)
	f := func(aRaw, widthRaw, posRaw float64) bool {
		a := math.Mod(aRaw, 20)
		width := math.Abs(math.Mod(widthRaw, 20))
		pos := math.Abs(math.Mod(posRaw, 1))
		b := a + width
		if width == 0 {
			return true
		}
		x := a + (b-a)*pos
		lo, hi := linearBoundsAt(k, a, b, x)
		fx := math.Tanh(x)
		tol := 1e-8 * (1 + math.Abs(fx))
		return lo <= fx+tol && hi >= fx-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScalarBoundsTruncated: Epanechnikov and quartic across the
// support kink.
func TestQuickScalarBoundsTruncated(t *testing.T) {
	for _, k := range []kernel.Params{kernel.NewEpanechnikov(1), kernel.NewQuartic(1)} {
		f := func(aRaw, widthRaw, posRaw float64) bool {
			a := math.Abs(math.Mod(aRaw, 3))
			width := math.Abs(math.Mod(widthRaw, 3))
			pos := math.Abs(math.Mod(posRaw, 1))
			b := a + width
			if width == 0 {
				return true
			}
			x := a + (b-a)*pos
			lo, hi := linearBoundsAt(k, a, b, x)
			fx := k.Outer(x)
			tol := 1e-9 * (1 + fx)
			return lo <= fx+tol && hi >= fx-tol
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("%v: %v", k.Kind, err)
		}
	}
}
