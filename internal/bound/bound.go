// Package bound implements the lower/upper bound functions that drive
// kernel aggregation pruning: the state-of-the-art (SOTA) bounds of
// Gray & Moore / Gan & Bailis, which evaluate the kernel at the node's
// extreme distances, and KARL's linear bound functions (Section III of the
// paper), which bound the outer scalar function by straight lines over the
// node's scalar interval and aggregate them in O(d).
//
// The central observation that keeps every KARL bound O(d): a linear bound
// L(x) = m·x + c aggregates as Σ w_i·L(x_i) = W·L(x̄) where x̄ is the
// weighted mean of the scalar arguments, and x̄ is available from the
// precomputed node statistics of index.Agg (Lemmas 2 and 5). So each bound
// below reduces to evaluating one well-chosen linear function at x̄:
//
//   - Upper bound, convex region: the chord over [a,b] (Lemma 3, Figure 4).
//   - Lower bound, convex region: the optimal tangent — Theorems 1–2 show
//     the best tangency point is t = x̄, collapsing to W·f(x̄) (Jensen).
//   - Odd-degree polynomial and sigmoid kernels have one inflection point;
//     on an interval straddling it the bound line pivots on an endpoint and
//     rotates until tangent to the curved side (Section IV-B, Figure 8),
//     with the chord as the degenerate fallback.
package bound

import (
	"fmt"
	"math"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/vec"
)

// Method selects the bounding technique.
type Method int

const (
	// SOTA evaluates the kernel at the node's extreme scalar values
	// (Section II-B): lb = W·min f, ub = W·max f over the interval.
	SOTA Method = iota
	// KARL uses the linear bound functions of Section III.
	KARL
	// KARLLowerOnly is an ablation: KARL's optimal-tangent lower bound
	// paired with SOTA's upper bound. It isolates the contribution of the
	// paper's Theorem 1/2 tangent construction.
	KARLLowerOnly
	// KARLUpperOnly is an ablation: KARL's chord upper bound paired with
	// SOTA's lower bound. It isolates the contribution of the Lemma 3
	// chord construction.
	KARLUpperOnly
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SOTA:
		return "SOTA"
	case KARL:
		return "KARL"
	case KARLLowerOnly:
		return "KARL-LB-only"
	case KARLUpperOnly:
		return "KARL-UB-only"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// QueryCtx carries the per-query values shared by every node bound
// computation. Build one with NewQueryCtx, or embed a QueryCtx value in
// longer-lived state and re-arm it per query with Set — the engine does the
// latter so the query hot path performs no allocation.
type QueryCtx struct {
	Q     []float64
	Norm2 float64 // ‖q‖²
}

// NewQueryCtx precomputes the reusable query terms.
func NewQueryCtx(q []float64) *QueryCtx {
	qc := &QueryCtx{}
	qc.Set(q)
	return qc
}

// Set re-arms the context for a new query point, reusing the receiver.
func (qc *QueryCtx) Set(q []float64) {
	qc.Q = q
	qc.Norm2 = vec.Norm2(q)
}

// Interval returns the scalar interval [a,b] of x over the volume for the
// given kernel: γ·[mindist², maxdist²] for the Gaussian, γ·[IPmin,IPmax]+β
// for dot-product kernels (γ > 0 preserves order).
func Interval(k kernel.Params, qc *QueryCtx, vol geom.Volume) (a, b float64) {
	if k.DistanceBased() {
		return k.Gamma * vol.MinDist2(qc.Q), k.Gamma * vol.MaxDist2(qc.Q)
	}
	return k.Gamma*vol.IPMin(qc.Q) + k.Beta, k.Gamma*vol.IPMax(qc.Q) + k.Beta
}

// mean returns the weighted mean x̄ of the scalar arguments over one sign
// class, clamped into [a,b] to absorb floating-point drift. Returns
// (0,false) for an empty class.
func mean(k kernel.Params, qc *QueryCtx, agg *index.Agg, a, b float64) (float64, bool) {
	if agg.Count == 0 || agg.W <= 0 {
		return 0, false
	}
	var xbar float64
	if k.DistanceBased() {
		xbar = k.Gamma * agg.WeightedDist2Sum(qc.Q, qc.Norm2) / agg.W
	} else {
		xbar = k.Gamma*agg.WeightedDotSum(qc.Q)/agg.W + k.Beta
	}
	return math.Min(math.Max(xbar, a), b), true
}

// ClassBounds bounds the one-sign-class aggregation Σ |w_i|·K(q,p_i) over a
// node: lb ≤ Σ ≤ ub. The weights in agg are non-negative by construction.
func ClassBounds(m Method, k kernel.Params, qc *QueryCtx, vol geom.Volume, agg *index.Agg) (lb, ub float64) {
	if agg.Count == 0 {
		return 0, 0
	}
	a, b := Interval(k, qc, vol)
	switch m {
	case SOTA:
		lo, hi := outerRange(k, a, b)
		return agg.W * lo, agg.W * hi
	case KARLLowerOnly:
		kLB, _ := ClassBounds(KARL, k, qc, vol, agg)
		_, sUB := ClassBounds(SOTA, k, qc, vol, agg)
		return kLB, sUB
	case KARLUpperOnly:
		sLB, _ := ClassBounds(SOTA, k, qc, vol, agg)
		_, kUB := ClassBounds(KARL, k, qc, vol, agg)
		return sLB, kUB
	case KARL:
		xbar, ok := mean(k, qc, agg, a, b)
		if !ok {
			return 0, 0
		}
		lo, hi := linearBoundsAt(k, a, b, xbar)
		// The paper proves KARL tighter than SOTA for the Gaussian kernel
		// (Lemmas 3–4); for the pivot-rotation bounds of Section IV-B a
		// rotated line can locally dip outside the endpoint range, so clamp
		// against the (already computed endpoint) SOTA bounds to make
		// KARL's bounds never looser for any kernel.
		sLo, sHi := outerRange(k, a, b)
		lo = math.Max(lo, sLo)
		hi = math.Min(hi, sHi)
		return agg.W * lo, agg.W * hi
	default:
		panic("bound: unknown method")
	}
}

// NodeBounds bounds the full signed aggregation of a node, combining the
// positive and negative weight classes per Section IV-A:
// lb = lb⁺ − ub⁻, ub = ub⁺ − lb⁻.
func NodeBounds(m Method, k kernel.Params, qc *QueryCtx, n *index.Node) (lb, ub float64) {
	lbP, ubP := ClassBounds(m, k, qc, n.Vol, &n.Pos)
	if n.Neg.Count == 0 {
		return lbP, ubP
	}
	lbN, ubN := ClassBounds(m, k, qc, n.Vol, &n.Neg)
	return lbP - ubN, ubP - lbN
}

// outerRange returns the min and max of the outer kernel function over
// [a,b] — the SOTA bounds per unit weight.
func outerRange(k kernel.Params, a, b float64) (lo, hi float64) {
	switch k.Kind {
	case kernel.Gaussian, kernel.Epanechnikov, kernel.Quartic:
		// All three are decreasing in the scalar argument.
		return k.Outer(b), k.Outer(a)
	case kernel.Sigmoid:
		// tanh is increasing.
		return math.Tanh(a), math.Tanh(b)
	case kernel.Polynomial:
		fa, fb := k.Outer(a), k.Outer(b)
		if k.Degree%2 == 1 {
			// Odd degree is increasing.
			return fa, fb
		}
		// Even degree: minimum at 0 when the interval straddles it.
		hi = math.Max(fa, fb)
		if a <= 0 && 0 <= b {
			return 0, hi
		}
		return math.Min(fa, fb), hi
	default:
		panic("bound: unknown kernel")
	}
}

// linearBoundsAt returns the values at x̄ of KARL's tightest linear lower
// and upper bound functions for the outer function over [a,b]. Because
// every linear bound aggregates to W·L(x̄), these two numbers are all the
// caller needs.
func linearBoundsAt(k kernel.Params, a, b, xbar float64) (lo, hi float64) {
	f := k.Outer
	if b-a <= degenerateWidth*(1+math.Abs(a)+math.Abs(b)) {
		v := f(xbar)
		return v, v
	}
	switch k.Kind {
	case kernel.Gaussian, kernel.Epanechnikov, kernel.Quartic:
		// exp(−x), max(0,1−x) and max(0,1−x)² are convex everywhere.
		return jensenLo(f, xbar), chordAt(f, a, b, xbar)
	case kernel.Polynomial:
		if k.Degree%2 == 0 {
			// Even degree is convex everywhere.
			return jensenLo(f, xbar), chordAt(f, a, b, xbar)
		}
		return inflectBounds(k, a, b, xbar, true)
	case kernel.Sigmoid:
		return inflectBounds(k, a, b, xbar, false)
	default:
		panic("bound: unknown kernel")
	}
}

// degenerateWidth is the relative interval width below which the chord and
// tangent constructions become numerically meaningless; the interval is
// then treated as a point.
const degenerateWidth = 1e-12

// jensenLo is the optimal-tangent lower bound of a convex f evaluated at
// the tangency point x̄ itself: tangent-at-x̄ evaluated at x̄ is f(x̄)
// (Theorems 1 and 2).
func jensenLo(f func(float64) float64, xbar float64) float64 { return f(xbar) }

// chordAt evaluates the chord of f over [a,b] at x.
func chordAt(f func(float64) float64, a, b, x float64) float64 {
	fa, fb := f(a), f(b)
	return fa + (fb-fa)*(x-a)/(b-a)
}

// inflectBounds handles outer functions with a single inflection point at
// x = 0 and monotone increase: odd-degree polynomials (concave then convex,
// convexRight=true) and tanh (convex then concave, convexRight=false).
// Returns the lower and upper linear bound values at x̄.
func inflectBounds(k kernel.Params, a, b, xbar float64, convexRight bool) (lo, hi float64) {
	f, fp := k.Outer, k.OuterDeriv
	switch {
	case a >= 0:
		if convexRight {
			// Fully convex region.
			return jensenLo(f, xbar), chordAt(f, a, b, xbar)
		}
		// Fully concave region: mirror of the convex case.
		return chordAt(f, a, b, xbar), f(xbar)
	case b <= 0:
		if convexRight {
			// Fully concave region.
			return chordAt(f, a, b, xbar), f(xbar)
		}
		return jensenLo(f, xbar), chordAt(f, a, b, xbar)
	}
	// Mixed interval a < 0 < b: one bound comes from the convex-side rule
	// evaluated via a pivot-rotation line, the other likewise (Figure 8).
	if convexRight {
		// Upper bound: pivot at (b, f(b)), tangency on the concave side
		// [a, 0]; rotate-down construction.
		hi = pivotLineAt(f, fp, b, a, 0, a, b, xbar, true)
		// Lower bound: pivot at (a, f(a)), tangency on the convex side
		// [0, b]; rotate-up construction.
		lo = pivotLineAt(f, fp, a, 0, b, a, b, xbar, false)
		return lo, hi
	}
	// tanh: upper bound pivots at (a, f(a)) with tangency on the concave
	// side [0, b]; lower bound pivots at (b, f(b)) with tangency on the
	// convex side [a, 0].
	hi = pivotLineAt(f, fp, a, 0, b, a, b, xbar, true)
	lo = pivotLineAt(f, fp, b, a, 0, a, b, xbar, false)
	return lo, hi
}

// pivotLineAt constructs the line through (pivot, f(pivot)) that is tangent
// to f at some t in the curved search interval [searchLo, searchHi], and
// evaluates it at x. When no tangency exists inside the search interval the
// binding constraint is the opposite endpoint, so the chord over [a, b] is
// the correct (and valid) line. upper selects which side of the residual
// tangency error is safe: an upper-bound line must satisfy
// L_t(pivot) ≥ f(pivot), a lower-bound line the reverse, so after bisection
// the bracket endpoint with the correctly-signed residual is used.
func pivotLineAt(f, fp func(float64) float64, pivot, searchLo, searchHi, a, b, x float64, upper bool) float64 {
	// g(t) = L_t(pivot) − f(pivot) where L_t is the tangent of f at t.
	g := func(t float64) float64 { return f(t) + fp(t)*(pivot-t) - f(pivot) }
	lineAt := func(t float64) float64 { return f(t) + fp(t)*(x-t) }
	gLo, gHi := g(searchLo), g(searchHi)
	if gLo == 0 {
		return lineAt(searchLo)
	}
	if gHi == 0 {
		return lineAt(searchHi)
	}
	if (gLo > 0) == (gHi > 0) {
		// No tangency in the curved region: the binding slope constraint is
		// the far endpoint, so the chord over the full interval is both
		// valid and tightest.
		return chordAt(f, a, b, x)
	}
	lo, hi := searchLo, searchHi
	for i := 0; i < tangencyIters; i++ {
		mid := 0.5 * (lo + hi)
		if (g(mid) > 0) == (gLo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Land on the side whose residual keeps the line valid.
	t := lo
	if (g(t) >= 0) != upper {
		t = hi
	}
	return lineAt(t)
}

// tangencyIters bounds the bisection for the pivot-rotation tangency; 60
// halvings reach float64 resolution on any practical interval.
const tangencyIters = 60
