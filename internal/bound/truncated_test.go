package bound

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/kernel"
)

// truncatedKernels are the compact-support KDE kernels added beyond the
// paper's three.
var truncatedKernels = []kernel.Params{
	kernel.NewEpanechnikov(0.5),
	kernel.NewEpanechnikov(3),
	kernel.NewQuartic(0.5),
	kernel.NewQuartic(3),
}

// TestTruncatedKernelBoundValidity extends the central soundness property
// to the Epanechnikov and quartic kernels, whose kink at x = 1 is the
// interesting case.
func TestTruncatedKernelBoundValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(30)
		d := 1 + rng.Intn(5)
		spread := math.Pow(10, rng.Float64()*2-1)
		tc := makeCase(rng, n, d, spread)
		for _, k := range truncatedKernels {
			exact := tc.exact(k)
			tol := 1e-9 * (1 + math.Abs(exact))
			for _, vol := range []geom.Volume{tc.rect, tc.ball} {
				for _, m := range []Method{SOTA, KARL} {
					lb, ub := ClassBounds(m, k, tc.qc, vol, &tc.agg)
					if lb > exact+tol || ub < exact-tol {
						t.Fatalf("trial %d %v %v: [%v,%v] excludes %v",
							trial, m, k.Kind, lb, ub, exact)
					}
				}
				// KARL never looser than SOTA here either.
				sLB, sUB := ClassBounds(SOTA, k, tc.qc, vol, &tc.agg)
				kLB, kUB := ClassBounds(KARL, k, tc.qc, vol, &tc.agg)
				if kLB < sLB-tol || kUB > sUB+tol {
					t.Fatalf("trial %d %v: KARL [%v,%v] looser than SOTA [%v,%v]",
						trial, k.Kind, kLB, kUB, sLB, sUB)
				}
			}
		}
	}
}

// TestTruncatedKernelExactWhenOutOfSupport verifies the strongest pruning
// case: a node entirely outside the kernel support has bounds [0,0] under
// both methods.
func TestTruncatedKernelExactWhenOutOfSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	tc := makeCase(rng, 20, 3, 0.1)
	// Query far away: γ·mindist² > 1 for sure.
	for j := range tc.q {
		tc.q[j] = 100
	}
	tc.qc = NewQueryCtx(tc.q)
	for _, k := range truncatedKernels {
		for _, m := range []Method{SOTA, KARL} {
			lb, ub := ClassBounds(m, k, tc.qc, tc.rect, &tc.agg)
			if lb != 0 || ub != 0 {
				t.Fatalf("%v %v: out-of-support bounds [%v,%v], want [0,0]", m, k.Kind, lb, ub)
			}
		}
	}
}

// TestEpanechnikovExactInsideLinearRegion checks the special sharpness of
// the linear kernel: when the node interval stays inside the support
// (x_max < 1), the chord IS the function, so KARL's upper bound equals the
// exact aggregate, and so does the Jensen lower bound.
func TestEpanechnikovExactInsideLinearRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	for trial := 0; trial < 40; trial++ {
		tc := makeCase(rng, 1+rng.Intn(20), 1+rng.Intn(4), 0.05)
		// Query close to the cluster so all scalars stay below 1.
		copy(tc.q, tc.pts.Row(0))
		tc.qc = NewQueryCtx(tc.q)
		k := kernel.NewEpanechnikov(0.01) // tiny γ keeps x ≪ 1
		a, b := Interval(k, tc.qc, tc.rect)
		if b >= 1 {
			continue // geometry too wide this trial; the property needs x<1
		}
		_ = a
		exact := tc.exact(k)
		lb, ub := ClassBounds(KARL, k, tc.qc, tc.rect, &tc.agg)
		tol := 1e-9 * (1 + math.Abs(exact))
		if math.Abs(lb-exact) > tol || math.Abs(ub-exact) > tol {
			t.Fatalf("trial %d: linear-region bounds [%v,%v] not exact %v", trial, lb, ub, exact)
		}
	}
}
