package bound

import (
	"math"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kernel"
)

// Group bounds: the dual-tree batch executor certifies a whole rectangle of
// queries against a reference node at once. For every query q in the
// rectangle these bounds must satisfy lb ≤ Σ w_i·K(q,p_i) ≤ ub — they are
// the uniform (worst-case-over-the-group) analogue of ClassBounds.
//
// The construction lifts KARL's linear-bound algebra one level: the scalar
// interval [a,b] comes from pair-volume geometry (geom.Pair*) instead of
// point-volume geometry, and the single weighted mean x̄ becomes a range
// [x̄lo, x̄hi] of per-query means over the rectangle. For convex outer
// functions both the Jensen tangent and the chord remain valid uniformly:
//
//   - lower: Σ ≥ W·f(x̄(q)) ≥ W·min f over [x̄lo, x̄hi]  (Jensen per query)
//   - upper: every x_i(q) lies in the pair interval [a,b], so the chord of
//     f over [a,b] dominates f at each x_i; the aggregate is then at most
//     W·chord(x̄(q)) ≤ W·max(chord(x̄lo), chord(x̄hi)) (chord is linear).
//
// Kernels whose outer function has an inflection point (sigmoid, odd-degree
// polynomial) fall back to the SOTA endpoint range, which is uniform by
// construction — the pivot-rotation lines depend on the individual x̄ in a
// non-monotone way, so they do not lift cheaply.

// GroupInterval returns the scalar interval [a,b] of x over all (q, p) pairs
// with q in the query rectangle and p in the reference volume.
func GroupInterval(k kernel.Params, qrect *geom.Rect, vol geom.Volume) (a, b float64) {
	if k.DistanceBased() {
		return k.Gamma * geom.PairMinDist2(qrect, vol), k.Gamma * geom.PairMaxDist2(qrect, vol)
	}
	return k.Gamma*geom.PairIPMin(qrect, vol) + k.Beta, k.Gamma*geom.PairIPMax(qrect, vol) + k.Beta
}

// groupMeanRange bounds the per-query weighted mean x̄(q) over the query
// rectangle, clamped into the pair interval [a,b] (which contains every
// individual x̄(q) by construction, so clamping only absorbs float drift).
//
// For distance kernels x̄(q) = γ(‖q−ā‖² + B/W − ‖ā‖²) with ā = A/W the
// weighted centroid; ‖q−ā‖² decomposes per dimension, so its range over the
// rectangle is the sum of per-dimension interval ranges. For dot-product
// kernels x̄(q) = γ·q·ā + β, again separable.
func groupMeanRange(k kernel.Params, qrect *geom.Rect, agg *index.Agg, a, b float64) (xlo, xhi float64, ok bool) {
	if agg.Count == 0 || agg.W <= 0 {
		return 0, 0, false
	}
	w := agg.W
	if k.DistanceBased() {
		var dmin, dmax, abar2 float64
		for j := range qrect.Lo {
			abar := agg.A[j] / w
			abar2 += abar * abar
			lo := qrect.Lo[j] - abar
			hi := qrect.Hi[j] - abar
			lo2, hi2 := lo*lo, hi*hi
			if lo > 0 || hi < 0 {
				dmin += math.Min(lo2, hi2)
			}
			dmax += math.Max(lo2, hi2)
		}
		c := agg.B/w - abar2
		xlo = k.Gamma * (dmin + c)
		xhi = k.Gamma * (dmax + c)
	} else {
		var ipmin, ipmax float64
		for j := range qrect.Lo {
			abar := agg.A[j] / w
			p1, p2 := abar*qrect.Lo[j], abar*qrect.Hi[j]
			ipmin += math.Min(p1, p2)
			ipmax += math.Max(p1, p2)
		}
		xlo = k.Gamma*ipmin + k.Beta
		xhi = k.Gamma*ipmax + k.Beta
	}
	xlo = math.Min(math.Max(xlo, a), b)
	xhi = math.Min(math.Max(xhi, a), b)
	if xlo > xhi {
		xlo, xhi = xhi, xlo
	}
	return xlo, xhi, true
}

// convexKernel reports whether the kernel's outer function is convex on all
// of its domain, which is what makes the Jensen/chord pair lift uniformly.
func convexKernel(k kernel.Params) bool {
	switch k.Kind {
	case kernel.Gaussian, kernel.Epanechnikov, kernel.Quartic:
		return true
	case kernel.Polynomial:
		return k.Degree%2 == 0
	default:
		return false
	}
}

// minConvexOn returns min f over [xlo, xhi] for a convex outer function.
func minConvexOn(k kernel.Params, xlo, xhi float64) float64 {
	f := k.Outer
	switch k.Kind {
	case kernel.Gaussian, kernel.Epanechnikov, kernel.Quartic:
		// Decreasing in the scalar argument.
		return f(xhi)
	case kernel.Polynomial:
		// Even degree: minimum at 0 when the interval straddles it.
		if xlo <= 0 && 0 <= xhi {
			return f(0)
		}
		return math.Min(f(xlo), f(xhi))
	default:
		panic("bound: minConvexOn on non-convex kernel")
	}
}

// GroupClassBounds bounds the one-sign-class aggregation Σ |w_i|·K(q,p_i)
// uniformly over every q in the query rectangle.
func GroupClassBounds(m Method, k kernel.Params, qrect *geom.Rect, vol geom.Volume, agg *index.Agg) (lb, ub float64) {
	if agg.Count == 0 {
		return 0, 0
	}
	a, b := GroupInterval(k, qrect, vol)
	sLo, sHi := outerRange(k, a, b)
	if m == SOTA {
		return agg.W * sLo, agg.W * sHi
	}
	kLo, kHi := sLo, sHi
	if convexKernel(k) && b-a > degenerateWidth*(1+math.Abs(a)+math.Abs(b)) {
		if xlo, xhi, ok := groupMeanRange(k, qrect, agg, a, b); ok {
			f := k.Outer
			kLo = math.Max(minConvexOn(k, xlo, xhi), sLo)
			kHi = math.Min(math.Max(chordAt(f, a, b, xlo), chordAt(f, a, b, xhi)), sHi)
		}
	}
	switch m {
	case KARL:
		return agg.W * kLo, agg.W * kHi
	case KARLLowerOnly:
		return agg.W * kLo, agg.W * sHi
	case KARLUpperOnly:
		return agg.W * sLo, agg.W * kHi
	default:
		panic("bound: unknown method")
	}
}

// GroupNodeBounds bounds the full signed aggregation of a node uniformly
// over the query rectangle, combining the sign classes as NodeBounds does:
// lb = lb⁺ − ub⁻, ub = ub⁺ − lb⁻.
func GroupNodeBounds(m Method, k kernel.Params, qrect *geom.Rect, n *index.Node) (lb, ub float64) {
	lbP, ubP := GroupClassBounds(m, k, qrect, n.Vol, &n.Pos)
	if n.Neg.Count == 0 {
		return lbP, ubP
	}
	lbN, ubN := GroupClassBounds(m, k, qrect, n.Vol, &n.Neg)
	return lbP - ubN, ubP - lbN
}
