package bound

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/kernel"
)

func TestAblationMethodStrings(t *testing.T) {
	if KARLLowerOnly.String() != "KARL-LB-only" || KARLUpperOnly.String() != "KARL-UB-only" {
		t.Fatal("ablation Method.String mismatch")
	}
}

// TestAblationBoundsComposition verifies the hybrid methods compose exactly
// the advertised halves and remain valid.
func TestAblationBoundsComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	k := kernel.NewGaussian(1.5)
	for trial := 0; trial < 60; trial++ {
		tc := makeCase(rng, 1+rng.Intn(25), 1+rng.Intn(5), math.Pow(10, rng.Float64()*2-1))
		for _, vol := range []geom.Volume{tc.rect, tc.ball} {
			sLB, sUB := ClassBounds(SOTA, k, tc.qc, vol, &tc.agg)
			kLB, kUB := ClassBounds(KARL, k, tc.qc, vol, &tc.agg)
			loLB, loUB := ClassBounds(KARLLowerOnly, k, tc.qc, vol, &tc.agg)
			upLB, upUB := ClassBounds(KARLUpperOnly, k, tc.qc, vol, &tc.agg)
			if loLB != kLB || loUB != sUB {
				t.Fatalf("KARLLowerOnly = [%v,%v], want [%v,%v]", loLB, loUB, kLB, sUB)
			}
			if upLB != sLB || upUB != kUB {
				t.Fatalf("KARLUpperOnly = [%v,%v], want [%v,%v]", upLB, upUB, sLB, kUB)
			}
			exact := tc.exact(k)
			tol := 1e-9 * (1 + math.Abs(exact))
			for _, m := range []Method{KARLLowerOnly, KARLUpperOnly} {
				lb, ub := ClassBounds(m, k, tc.qc, vol, &tc.agg)
				if lb > exact+tol || ub < exact-tol {
					t.Fatalf("%v: [%v,%v] excludes %v", m, lb, ub, exact)
				}
			}
		}
	}
}
