// Package svm trains the support vector machine models whose decision
// functions the paper accelerates: 2-class C-SVM (Type III weighting) and
// 1-class ν-SVM (Type II weighting), plus a one-vs-one multi-class wrapper
// (one of the paper's stated future-work directions).
//
// The trainer is a sequential minimal optimization (SMO) solver with
// maximal-violating-pair working-set selection, the same family of
// algorithm LibSVM uses. Training yields the support vectors, the weights
// w_i (α_i·y_i for 2-class, α_i for 1-class), and the threshold ρ, so that
// prediction is exactly the paper's TKAQ: classify q as positive/inlier iff
// F_SV(q) = Σ w_i·K(q, sv_i) > ρ.
package svm

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// Config holds training parameters.
type Config struct {
	Kernel kernel.Params
	// C is the 2-class soft-margin parameter (default 1).
	C float64
	// Nu is the 1-class ν parameter in (0,1] (default 0.5).
	Nu float64
	// Tol is the KKT violation tolerance (default 1e-3, LibSVM's default).
	Tol float64
	// MaxIter caps SMO iterations (default 200·n, a generous safety net).
	MaxIter int
	// CacheRows bounds the kernel row cache for large problems (default 256).
	CacheRows int
}

func (c *Config) defaults(n int) {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Nu <= 0 || c.Nu > 1 {
		c.Nu = 0.5
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200 * n
		if c.MaxIter < 10000 {
			c.MaxIter = 10000
		}
	}
	if c.CacheRows <= 0 {
		c.CacheRows = 256
	}
}

// Model is a trained SVM in kernel aggregation form.
type Model struct {
	// SV holds the support vectors, one per row.
	SV *vec.Matrix
	// Weights holds w_i per support vector: α_i·y_i for 2-class models
	// (mixed signs, Type III), α_i for 1-class models (positive, Type II).
	Weights []float64
	// Rho is the decision threshold: predict positive iff Σ w_i·K(q,sv_i) > Rho.
	Rho float64
	// Kernel records the kernel the model was trained with.
	Kernel kernel.Params
	// Iters is the number of SMO iterations performed.
	Iters int
	// KernelEvals counts kernel evaluations during training.
	KernelEvals int
}

// Decision returns F_SV(q) − Rho.
func (m *Model) Decision(q []float64) float64 {
	return kernel.Aggregate(m.Kernel, q, m.SV, m.Weights) - m.Rho
}

// Predict returns +1 when the decision value is positive, −1 otherwise.
// For 1-class models +1 means inlier.
func (m *Model) Predict(q []float64) int {
	if m.Decision(q) > 0 {
		return 1
	}
	return -1
}

// TrainTwoClass trains a C-SVM on points x with labels y ∈ {−1,+1}.
func TrainTwoClass(x *vec.Matrix, y []float64, cfg Config) (*Model, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if len(y) != x.Rows {
		return nil, fmt.Errorf("svm: %d labels for %d points", len(y), x.Rows)
	}
	var pos, neg bool
	for _, yi := range y {
		switch yi {
		case 1:
			pos = true
		case -1:
			neg = true
		default:
			return nil, fmt.Errorf("svm: label %v not in {-1,+1}", yi)
		}
	}
	if !pos || !neg {
		return nil, errors.New("svm: training set must contain both classes")
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults(x.Rows)
	return solveTwoClass(x, y, cfg)
}

func solveTwoClass(x *vec.Matrix, y []float64, cfg Config) (*Model, error) {
	n := x.Rows
	cache := newKernelCache(x, cfg.Kernel, cfg.CacheRows)
	alpha := make([]float64, n)
	// G_i = ∂D/∂α_i with D(α) = ½·αᵀQα − eᵀα and Q_ij = y_i·y_j·K_ij;
	// at α = 0, G_i = −1 with no kernel evaluations.
	g := make([]float64, n)
	for i := range g {
		g[i] = -1
	}
	c := cfg.C
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Maximal violating pair (WSS1):
		// i maximizes −y_t·G_t over I_up, j minimizes it over I_low.
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			v := -y[t] * g[t]
			inUp := (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0)
			inLow := (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < c)
			if inUp && v > gmax {
				gmax, i = v, t
			}
			if inLow && v < gmin {
				gmin, j = v, t
			}
		}
		if i < 0 || j < 0 || gmax-gmin <= cfg.Tol {
			break
		}
		ki := cache.row(i)
		kj := cache.row(j)
		quad := ki[i] + kj[j] - 2*ki[j]
		if quad <= 0 {
			quad = 1e-12
		}
		// Move along the feasible direction α_i += y_i·s, α_j −= y_j·s.
		s := (gmax - gmin) / quad
		sLo, sHi := math.Inf(-1), math.Inf(1)
		clip := func(yv, a float64, plus bool) {
			// Constrain a + sign·s ∈ [0, c] where sign = yv for i (plus)
			// and −yv for j.
			sign := yv
			if !plus {
				sign = -yv
			}
			if sign > 0 {
				sHi = math.Min(sHi, c-a)
				sLo = math.Max(sLo, -a)
			} else {
				sHi = math.Min(sHi, a)
				sLo = math.Max(sLo, a-c)
			}
		}
		clip(y[i], alpha[i], true)
		clip(y[j], alpha[j], false)
		if s > sHi {
			s = sHi
		}
		if s < sLo {
			s = sLo
		}
		if s == 0 {
			break // numerically stuck; bounds already satisfied to tolerance
		}
		alpha[i] += y[i] * s
		alpha[j] -= y[j] * s
		for t := 0; t < n; t++ {
			g[t] += y[t] * s * (ki[t] - kj[t])
		}
	}
	// ρ = −b, averaged over free support vectors (KKT: b = −y_t·G_t there).
	var rhoSum float64
	var freeCount int
	for t := 0; t < n; t++ {
		if alpha[t] > 0 && alpha[t] < c {
			rhoSum += y[t] * g[t]
			freeCount++
		}
	}
	var rho float64
	if freeCount > 0 {
		rho = rhoSum / float64(freeCount)
	} else {
		// No free SVs: midpoint of the violating-pair interval.
		ub, lb := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			v := y[t] * g[t]
			inUp := (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0)
			inLow := (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < c)
			if inUp && v < ub {
				ub = v
			}
			if inLow && v > lb {
				lb = v
			}
		}
		rho = (ub + lb) / 2
	}
	return buildModel(x, alpha, y, rho, cfg, iters, cache.evals)
}

// TrainOneClass trains a ν-one-class SVM on points x (Schölkopf et al.).
func TrainOneClass(x *vec.Matrix, cfg Config) (*Model, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults(x.Rows)
	return solveOneClass(x, cfg)
}

func solveOneClass(x *vec.Matrix, cfg Config) (*Model, error) {
	n := x.Rows
	cache := newKernelCache(x, cfg.Kernel, cfg.CacheRows)
	// Dual: minimize ½·αᵀKα subject to 0 ≤ α_i ≤ 1/(νn), Σα = 1.
	upper := 1 / (cfg.Nu * float64(n))
	alpha := make([]float64, n)
	// LibSVM's initialization: fill the first ⌊νn⌋ points to the upper
	// bound and give the remainder fraction to the next point.
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := math.Min(upper, remaining)
		alpha[i] = a
		remaining -= a
	}
	// G_i = Σ_j α_j·K_ij.
	g := make([]float64, n)
	for j := 0; j < n; j++ {
		if alpha[j] == 0 {
			continue
		}
		kj := cache.row(j)
		for t := 0; t < n; t++ {
			g[t] += alpha[j] * kj[t]
		}
	}
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Violating pair: i with the smallest gradient among raisable α,
		// j with the largest gradient among lowerable α.
		i, j := -1, -1
		gmin, gmax := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			if alpha[t] < upper && g[t] < gmin {
				gmin, i = g[t], t
			}
			if alpha[t] > 0 && g[t] > gmax {
				gmax, j = g[t], t
			}
		}
		if i < 0 || j < 0 || gmax-gmin <= cfg.Tol {
			break
		}
		ki := cache.row(i)
		kj := cache.row(j)
		quad := ki[i] + kj[j] - 2*ki[j]
		if quad <= 0 {
			quad = 1e-12
		}
		s := (gmax - gmin) / quad
		s = math.Min(s, math.Min(upper-alpha[i], alpha[j]))
		if s <= 0 {
			break
		}
		alpha[i] += s
		alpha[j] -= s
		for t := 0; t < n; t++ {
			g[t] += s * (ki[t] - kj[t])
		}
	}
	// ρ: average gradient over free SVs; otherwise the feasibility interval
	// midpoint.
	var rhoSum float64
	var freeCount int
	for t := 0; t < n; t++ {
		if alpha[t] > 0 && alpha[t] < upper {
			rhoSum += g[t]
			freeCount++
		}
	}
	var rho float64
	if freeCount > 0 {
		rho = rhoSum / float64(freeCount)
	} else {
		lo, hi := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			if alpha[t] == 0 && g[t] < hi {
				hi = g[t]
			}
			if alpha[t] >= upper && g[t] > lo {
				lo = g[t]
			}
		}
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		rho = (lo + hi) / 2
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return buildModel(x, alpha, ones, rho, cfg, iters, cache.evals)
}

// buildModel extracts the support vectors (α_i > svEps) into a compact
// model with weights w_i = α_i·y_i.
func buildModel(x *vec.Matrix, alpha, y []float64, rho float64, cfg Config, iters, evals int) (*Model, error) {
	const svEps = 1e-12
	var count int
	for _, a := range alpha {
		if a > svEps {
			count++
		}
	}
	if count == 0 {
		return nil, errors.New("svm: training produced no support vectors")
	}
	sv := vec.NewMatrix(count, x.Cols)
	w := make([]float64, count)
	k := 0
	for i, a := range alpha {
		if a <= svEps {
			continue
		}
		copy(sv.Row(k), x.Row(i))
		w[k] = a * y[i]
		k++
	}
	return &Model{SV: sv, Weights: w, Rho: rho, Kernel: cfg.Kernel, Iters: iters, KernelEvals: evals}, nil
}
