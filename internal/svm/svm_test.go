package svm

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// twoBlobs generates a separable-ish 2-class problem: class +1 around
// (+off,…), class −1 around (−off,…).
func twoBlobs(rng *rand.Rand, n, d int, off, noise float64) (*vec.Matrix, []float64) {
	x := vec.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		y[i] = sign
		row := x.Row(i)
		for j := range row {
			row[j] = sign*off + rng.NormFloat64()*noise
		}
	}
	return x, y
}

func TestTrainTwoClassValidation(t *testing.T) {
	cfg := Config{Kernel: kernel.NewGaussian(1)}
	if _, err := TrainTwoClass(nil, nil, cfg); err == nil {
		t.Fatal("nil input accepted")
	}
	x := vec.FromRows([][]float64{{0}, {1}})
	if _, err := TrainTwoClass(x, []float64{1}, cfg); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := TrainTwoClass(x, []float64{1, 2}, cfg); err == nil {
		t.Fatal("non ±1 label accepted")
	}
	if _, err := TrainTwoClass(x, []float64{1, 1}, cfg); err == nil {
		t.Fatal("single-class input accepted")
	}
	bad := cfg
	bad.Kernel = kernel.NewGaussian(-1)
	if _, err := TrainTwoClass(x, []float64{1, -1}, bad); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestTwoClassSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	x, y := twoBlobs(rng, 200, 4, 1.0, 0.3)
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewGaussian(0.5), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Training accuracy should be near-perfect on well-separated blobs.
	var correct int
	for i := 0; i < x.Rows; i++ {
		if float64(m.Predict(x.Row(i))) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.97 {
		t.Fatalf("training accuracy %v < 0.97", acc)
	}
	// Weights must mix signs (Type III) and every |w| ≤ C.
	var hasPos, hasNeg bool
	for _, w := range m.Weights {
		if w > 0 {
			hasPos = true
		}
		if w < 0 {
			hasNeg = true
		}
		if math.Abs(w) > 1+1e-9 {
			t.Fatalf("|w| = %v exceeds C", math.Abs(w))
		}
	}
	if !hasPos || !hasNeg {
		t.Fatal("2-class weights should have both signs")
	}
	// Dual feasibility: Σ w_i = Σ α_i·y_i = 0.
	var sum float64
	for _, w := range m.Weights {
		sum += w
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("Σ α·y = %v, want 0", sum)
	}
}

func TestTwoClassGeneralization(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	x, y := twoBlobs(rng, 300, 3, 1.2, 0.35)
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewGaussian(0.8), C: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh test points from the same distribution.
	xt, yt := twoBlobs(rng, 200, 3, 1.2, 0.35)
	var correct int
	for i := 0; i < xt.Rows; i++ {
		if float64(m.Predict(xt.Row(i))) == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(xt.Rows); acc < 0.95 {
		t.Fatalf("test accuracy %v < 0.95", acc)
	}
}

func TestTwoClassXORNeedsKernel(t *testing.T) {
	// XOR is not linearly separable; the Gaussian kernel must solve it.
	x := vec.FromRows([][]float64{
		{0, 0}, {1, 1}, {0, 1}, {1, 0},
		{0.05, 0.05}, {0.95, 0.95}, {0.05, 0.95}, {0.95, 0.05},
	})
	y := []float64{1, 1, -1, -1, 1, 1, -1, -1}
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewGaussian(4), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if float64(m.Predict(x.Row(i))) != y[i] {
			t.Fatalf("XOR point %d misclassified", i)
		}
	}
}

func TestTwoClassPolynomialKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	x, y := twoBlobs(rng, 150, 3, 0.8, 0.25)
	// Normalize into [−1,1]³ as the paper does for polynomial kernels.
	x.NormalizeUnit(-1, 1)
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewPolynomial(1, 1, 3), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := 0; i < x.Rows; i++ {
		if float64(m.Predict(x.Row(i))) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.9 {
		t.Fatalf("poly-kernel training accuracy %v < 0.9", acc)
	}
}

func TestOneClassValidation(t *testing.T) {
	if _, err := TrainOneClass(nil, Config{Kernel: kernel.NewGaussian(1)}); err == nil {
		t.Fatal("nil input accepted")
	}
	x := vec.FromRows([][]float64{{0}})
	if _, err := TrainOneClass(x, Config{Kernel: kernel.NewGaussian(0)}); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestOneClassProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	n, d := 300, 4
	x := vec.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 0.2
	}
	nu := 0.1
	m, err := TrainOneClass(x, Config{Kernel: kernel.NewGaussian(1), Nu: nu})
	if err != nil {
		t.Fatal(err)
	}
	// Type II weighting: all positive, bounded by 1/(νn), summing to 1.
	var sum float64
	upper := 1 / (nu * float64(n))
	for _, w := range m.Weights {
		if w <= 0 {
			t.Fatalf("one-class weight %v not positive", w)
		}
		if w > upper+1e-9 {
			t.Fatalf("weight %v exceeds 1/(νn) = %v", w, upper)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σα = %v, want 1", sum)
	}
	// ν controls the outlier fraction: roughly ≤ ν of training points
	// should fall outside (decision < 0), allowing slack for tolerance.
	var outliers int
	for i := 0; i < n; i++ {
		if m.Predict(x.Row(i)) < 0 {
			outliers++
		}
	}
	if frac := float64(outliers) / float64(n); frac > 2.5*nu+0.05 {
		t.Fatalf("outlier fraction %v far exceeds ν = %v", frac, nu)
	}
	// A point far outside the cloud must be rejected.
	far := make([]float64, d)
	for j := range far {
		far[j] = 10
	}
	if m.Predict(far) != -1 {
		t.Fatal("distant point accepted as inlier")
	}
}

func TestOneClassDetectsInliersVsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	n, d := 400, 3
	x := vec.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 0.1
	}
	m, err := TrainOneClass(x, Config{Kernel: kernel.NewGaussian(5), Nu: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var inlierOK, outlierOK int
	const trials = 100
	for i := 0; i < trials; i++ {
		in := []float64{rng.NormFloat64() * 0.05, rng.NormFloat64() * 0.05, rng.NormFloat64() * 0.05}
		out := []float64{2 + rng.Float64(), 2 + rng.Float64(), 2 + rng.Float64()}
		if m.Predict(in) == 1 {
			inlierOK++
		}
		if m.Predict(out) == -1 {
			outlierOK++
		}
	}
	if inlierOK < 85 || outlierOK < 99 {
		t.Fatalf("inlier acc %d/100, outlier acc %d/100", inlierOK, outlierOK)
	}
}

func TestDecisionThresholdEquivalence(t *testing.T) {
	// Predict must equal the TKAQ formulation: F(q) > ρ.
	rng := rand.New(rand.NewSource(96))
	x, y := twoBlobs(rng, 100, 2, 1, 0.4)
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewGaussian(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		f := kernel.Aggregate(m.Kernel, q, m.SV, m.Weights)
		want := 1
		if f <= m.Rho {
			want = -1
		}
		if got := m.Predict(q); got != want {
			t.Fatalf("Predict = %d, TKAQ says %d", got, want)
		}
	}
}

func TestKernelCacheFullVsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	n, d := 60, 3
	x := vec.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	k := kernel.NewGaussian(0.7)
	full := newKernelCache(x, k, 8)
	if full.full == nil {
		t.Fatal("small problem should use the full matrix")
	}
	// Force the row-cache path by constructing directly.
	rowCache := &kernelCache{kern: k, x: x, n: n, maxRows: 4}
	rowCache.rows = make(map[int][]float64, 4)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(n)
		want := full.row(i)
		got := rowCache.row(i)
		for j := 0; j < n; j++ {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[j], want[j])
			}
		}
		if len(rowCache.rows) > 4 {
			t.Fatalf("cache grew to %d rows, cap 4", len(rowCache.rows))
		}
	}
	if d := rowCache.diag(5); math.Abs(d-full.diag(5)) > 1e-12 {
		t.Fatal("diag mismatch")
	}
}

func TestMaxIterCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	x, y := twoBlobs(rng, 100, 2, 0.1, 1.0) // heavily overlapping = slow convergence
	m, err := TrainTwoClass(x, y, Config{Kernel: kernel.NewGaussian(1), C: 100, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters > 5 {
		t.Fatalf("Iters = %d exceeds MaxIter 5", m.Iters)
	}
}
