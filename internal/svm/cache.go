package svm

import (
	"karl/internal/kernel"
	"karl/internal/vec"
)

// kernelCache serves rows of the training kernel matrix K_ij = K(x_i, x_j)
// to the SMO solver. Small problems keep the full matrix; larger ones use a
// bounded row cache with clock eviction, mirroring LibSVM's cache strategy
// in spirit.
type kernelCache struct {
	kern kernel.Params
	x    *vec.Matrix
	n    int

	full []float64 // n×n when small enough, nil otherwise

	rows    map[int][]float64
	order   []int // insertion ring for eviction
	ringPos int
	maxRows int

	// evals counts kernel evaluations, exposed for tests and tuning.
	evals int
}

// fullMatrixLimit is the training-set size up to which the whole kernel
// matrix is materialized (1500² float64 ≈ 18 MB).
const fullMatrixLimit = 1500

func newKernelCache(x *vec.Matrix, kern kernel.Params, maxRows int) *kernelCache {
	c := &kernelCache{kern: kern, x: x, n: x.Rows, maxRows: maxRows}
	if c.n <= fullMatrixLimit {
		c.full = make([]float64, c.n*c.n)
		for i := 0; i < c.n; i++ {
			for j := i; j < c.n; j++ {
				v := kern.Eval(x.Row(i), x.Row(j))
				c.evals++
				c.full[i*c.n+j] = v
				c.full[j*c.n+i] = v
			}
		}
		return c
	}
	if c.maxRows < 2 {
		c.maxRows = 2
	}
	c.rows = make(map[int][]float64, c.maxRows)
	return c
}

// row returns the i-th kernel matrix row. The returned slice must not be
// modified or retained across calls.
func (c *kernelCache) row(i int) []float64 {
	if c.full != nil {
		return c.full[i*c.n : (i+1)*c.n]
	}
	if r, ok := c.rows[i]; ok {
		return r
	}
	r := make([]float64, c.n)
	xi := c.x.Row(i)
	for j := 0; j < c.n; j++ {
		r[j] = c.kern.Eval(xi, c.x.Row(j))
		c.evals++
	}
	if len(c.rows) >= c.maxRows {
		// Evict the oldest inserted row (ring order).
		victim := c.order[c.ringPos]
		delete(c.rows, victim)
		c.order[c.ringPos] = i
		c.ringPos = (c.ringPos + 1) % c.maxRows
	} else {
		c.order = append(c.order, i)
	}
	c.rows[i] = r
	return r
}

// diag returns K(x_i, x_i) without materializing a row.
func (c *kernelCache) diag(i int) float64 {
	if c.full != nil {
		return c.full[i*c.n+i]
	}
	c.evals++
	return c.kern.Eval(c.x.Row(i), c.x.Row(i))
}
