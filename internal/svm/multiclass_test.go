package svm

import (
	"math/rand"
	"testing"

	"karl/internal/kernel"
	"karl/internal/vec"
)

func TestPairIndex(t *testing.T) {
	// For k classes the pairs (a,b), a<b must map to 0..k(k-1)/2-1 uniquely.
	for k := 2; k <= 6; k++ {
		seen := map[int]bool{}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				idx := pairIndex(a, b, k)
				if idx < 0 || idx >= k*(k-1)/2 {
					t.Fatalf("k=%d pair (%d,%d) → %d out of range", k, a, b, idx)
				}
				if seen[idx] {
					t.Fatalf("k=%d pair (%d,%d) collides at %d", k, a, b, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestTrainMultiValidation(t *testing.T) {
	cfg := Config{Kernel: kernel.NewGaussian(1)}
	if _, err := TrainMulti(nil, nil, cfg); err == nil {
		t.Fatal("nil input accepted")
	}
	x := vec.FromRows([][]float64{{0}, {1}})
	if _, err := TrainMulti(x, []int{1}, cfg); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := TrainMulti(x, []int{3, 3}, cfg); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestTrainMultiThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}}
	n := 240
	x := vec.NewMatrix(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c * 10 // non-contiguous labels exercise the mapping
		x.Row(i)[0] = centers[c][0] + rng.NormFloat64()*0.3
		x.Row(i)[1] = centers[c][1] + rng.NormFloat64()*0.3
	}
	mm, err := TrainMulti(x, labels, Config{Kernel: kernel.NewGaussian(1), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Classes) != 3 || len(mm.Models) != 3 {
		t.Fatalf("classes %v models %d", mm.Classes, len(mm.Models))
	}
	var correct int
	for i := 0; i < n; i++ {
		if mm.Predict(x.Row(i)) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.97 {
		t.Fatalf("multi-class training accuracy %v < 0.97", acc)
	}
	// Fresh points near each center must classify to that center's label.
	for c, ctr := range centers {
		q := []float64{ctr[0] + 0.05, ctr[1] - 0.05}
		if got := mm.Predict(q); got != c*10 {
			t.Fatalf("query near center %d classified as %d", c, got)
		}
	}
}
