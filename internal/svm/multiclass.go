package svm

import (
	"errors"
	"fmt"
	"sort"

	"karl/internal/vec"
)

// MultiClassModel is a one-vs-one ensemble of 2-class SVMs — the
// "multi-class kernel SVM" extension named in the paper's future-work
// section. Each pairwise model is a kernel aggregation query, so every
// binary vote can be served by KARL's TKAQ machinery.
type MultiClassModel struct {
	// Classes lists the distinct labels in ascending order.
	Classes []int
	// Models holds one binary model per unordered class pair, indexed by
	// pairIndex.
	Models []*Model
}

// pairIndex maps the pair (a,b), a<b over k classes to a flat index.
func pairIndex(a, b, k int) int {
	// Offset of row a in the strictly-upper-triangular enumeration.
	return a*(2*k-a-1)/2 + (b - a - 1)
}

// TrainMulti trains a one-vs-one multi-class SVM on integer labels.
func TrainMulti(x *vec.Matrix, labels []int, cfg Config) (*MultiClassModel, error) {
	if x == nil || x.Rows == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if len(labels) != x.Rows {
		return nil, fmt.Errorf("svm: %d labels for %d points", len(labels), x.Rows)
	}
	classSet := map[int]bool{}
	for _, l := range labels {
		classSet[l] = true
	}
	if len(classSet) < 2 {
		return nil, errors.New("svm: need at least two classes")
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	k := len(classes)
	mm := &MultiClassModel{Classes: classes, Models: make([]*Model, k*(k-1)/2)}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			// Gather the two classes' points; class a maps to +1.
			var rows [][]float64
			var y []float64
			for i, l := range labels {
				switch l {
				case classes[a]:
					rows = append(rows, x.Row(i))
					y = append(y, 1)
				case classes[b]:
					rows = append(rows, x.Row(i))
					y = append(y, -1)
				}
			}
			sub := vec.FromRows(rows)
			m, err := TrainTwoClass(sub, y, cfg)
			if err != nil {
				return nil, fmt.Errorf("svm: pair (%d,%d): %w", classes[a], classes[b], err)
			}
			mm.Models[pairIndex(a, b, k)] = m
		}
	}
	return mm, nil
}

// Predict returns the majority-vote class for q; ties break toward the
// smaller label, matching LibSVM.
func (mm *MultiClassModel) Predict(q []float64) int {
	k := len(mm.Classes)
	votes := make([]int, k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if mm.Models[pairIndex(a, b, k)].Predict(q) == 1 {
				votes[a]++
			} else {
				votes[b]++
			}
		}
	}
	best := 0
	for c := 1; c < k; c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return mm.Classes[best]
}
