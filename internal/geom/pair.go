package geom

import (
	"fmt"
	"math"
)

// Pair bounds: the dual-tree executor certifies a whole GROUP of queries
// (bounded by an axis-aligned rectangle, the natural volume of a kd-tree
// over the query batch) against a whole reference node at once. That needs
// the two-volume generalizations of the point-to-volume bounds above:
// ranges of dist(q,p)² and q·p over every q in the query rectangle and
// every p in the reference volume. Each bound reduces to the classic
// single-volume bound plus a triangle-inequality (or Cauchy–Schwarz)
// correction for the reference volume's extent.

// PairMinDist2 returns a lower bound on dist(q,p)² over all q in the query
// rectangle and all p in the reference volume.
func PairMinDist2(q *Rect, v Volume) float64 {
	switch r := v.(type) {
	case *Rect:
		var s float64
		for j := range q.Lo {
			// Per-dimension gap between the two intervals (0 when they
			// overlap); squared gaps sum because dimensions are independent.
			if d := r.Lo[j] - q.Hi[j]; d > 0 {
				s += d * d
			} else if d := q.Lo[j] - r.Hi[j]; d > 0 {
				s += d * d
			}
		}
		return s
	case *Ball:
		d := math.Sqrt(q.MinDist2(r.Center)) - r.Radius
		if d <= 0 {
			return 0
		}
		return d * d
	case *Shell:
		// The query-to-center distance ranges over [dMin,dMax]; the shell's
		// points sit at center distances [RMin,RMax]. If the two intervals
		// overlap some q can touch the annulus; otherwise the gap between
		// them is the closest approach (triangle inequality).
		dMin := math.Sqrt(q.MinDist2(r.Center))
		dMax := math.Sqrt(q.MaxDist2(r.Center))
		switch {
		case dMax < r.RMin:
			d := r.RMin - dMax
			return d * d
		case dMin > r.RMax:
			d := dMin - r.RMax
			return d * d
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("geom: cannot pair-bound volume %T", v))
	}
}

// PairMaxDist2 returns an upper bound on dist(q,p)² over all q in the query
// rectangle and all p in the reference volume.
func PairMaxDist2(q *Rect, v Volume) float64 {
	switch r := v.(type) {
	case *Rect:
		var s float64
		for j := range q.Lo {
			// Farthest pair of points from two intervals is always a pair of
			// opposite endpoints.
			d := math.Max(q.Hi[j]-r.Lo[j], r.Hi[j]-q.Lo[j])
			s += d * d
		}
		return s
	case *Ball:
		d := math.Sqrt(q.MaxDist2(r.Center)) + r.Radius
		return d * d
	case *Shell:
		d := math.Sqrt(q.MaxDist2(r.Center)) + r.RMax
		return d * d
	default:
		panic(fmt.Sprintf("geom: cannot pair-bound volume %T", v))
	}
}

// MaxNorm returns an upper bound on ‖q‖ over the rectangle: each coordinate
// independently attains the endpoint of larger magnitude.
func MaxNorm(q *Rect) float64 {
	var s float64
	for j := range q.Lo {
		m := math.Max(q.Lo[j]*q.Lo[j], q.Hi[j]*q.Hi[j])
		s += m
	}
	return math.Sqrt(s)
}

// PairIPMin returns a lower bound on q·p over all q in the query rectangle
// and all p in the reference volume.
func PairIPMin(q *Rect, v Volume) float64 {
	switch r := v.(type) {
	case *Rect:
		var s float64
		for j := range q.Lo {
			// x·y over two intervals is bilinear: extremes at corner pairs.
			s += math.Min(
				math.Min(q.Lo[j]*r.Lo[j], q.Lo[j]*r.Hi[j]),
				math.Min(q.Hi[j]*r.Lo[j], q.Hi[j]*r.Hi[j]),
			)
		}
		return s
	case *Ball:
		// q·p ≥ q·c − Radius·‖q‖ (Cauchy–Schwarz), minimized over the rect.
		return q.IPMin(r.Center) - r.Radius*MaxNorm(q)
	case *Shell:
		return q.IPMin(r.Center) - r.RMax*MaxNorm(q)
	default:
		panic(fmt.Sprintf("geom: cannot pair-bound volume %T", v))
	}
}

// PairIPMax returns an upper bound on q·p over all q in the query rectangle
// and all p in the reference volume.
func PairIPMax(q *Rect, v Volume) float64 {
	switch r := v.(type) {
	case *Rect:
		var s float64
		for j := range q.Lo {
			s += math.Max(
				math.Max(q.Lo[j]*r.Lo[j], q.Lo[j]*r.Hi[j]),
				math.Max(q.Hi[j]*r.Lo[j], q.Hi[j]*r.Hi[j]),
			)
		}
		return s
	case *Ball:
		return q.IPMax(r.Center) + r.Radius*MaxNorm(q)
	case *Shell:
		return q.IPMax(r.Center) + r.RMax*MaxNorm(q)
	default:
		panic(fmt.Sprintf("geom: cannot pair-bound volume %T", v))
	}
}
