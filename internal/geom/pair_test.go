package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randRect returns a random rectangle in [-1,1]^dim.
func randRect(rng *rand.Rand, dim int) *Rect {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		a := rng.Float64()*2 - 1
		b := a + rng.Float64()*0.8
		lo[j], hi[j] = a, b
	}
	return &Rect{Lo: lo, Hi: hi}
}

// samplePoint returns a point inside the volume (uniform-ish; exactness does
// not matter — any contained point is a valid witness).
func samplePoint(rng *rand.Rand, v Volume, dim int) []float64 {
	switch r := v.(type) {
	case *Rect:
		p := make([]float64, dim)
		for j := range p {
			p[j] = r.Lo[j] + rng.Float64()*(r.Hi[j]-r.Lo[j])
		}
		return p
	case *Ball:
		for {
			p := make([]float64, dim)
			var d2 float64
			for j := range p {
				d := (rng.Float64()*2 - 1) * r.Radius
				p[j] = r.Center[j] + d
				d2 += d * d
			}
			if d2 <= r.Radius*r.Radius {
				return p
			}
		}
	case *Shell:
		for {
			p := make([]float64, dim)
			var d2 float64
			for j := range p {
				d := (rng.Float64()*2 - 1) * r.RMax
				p[j] = r.Center[j] + d
				d2 += d * d
			}
			d := math.Sqrt(d2)
			if d >= r.RMin && d <= r.RMax {
				return p
			}
		}
	}
	panic("unknown volume")
}

func randVolume(rng *rand.Rand, dim int, kind int) Volume {
	switch kind {
	case 0:
		return randRect(rng, dim)
	case 1:
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()*2 - 1
		}
		return &Ball{Center: c, Radius: 0.1 + rng.Float64()*0.5}
	default:
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()*2 - 1
		}
		rmax := 0.2 + rng.Float64()*0.6
		return &Shell{Center: c, RMin: rmax * rng.Float64() * 0.8, RMax: rmax}
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

func dot(a, b []float64) float64 {
	var s float64
	for j := range a {
		s += a[j] * b[j]
	}
	return s
}

// TestPairBoundsContainSamples verifies that for random (query rect,
// reference volume) pairs, the pair bounds contain the distance² and inner
// product of every sampled point pair.
func TestPairBoundsContainSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-9
	for trial := 0; trial < 300; trial++ {
		dim := 1 + rng.Intn(5)
		q := randRect(rng, dim)
		v := randVolume(rng, dim, trial%3)

		dLo := PairMinDist2(q, v)
		dHi := PairMaxDist2(q, v)
		ipLo := PairIPMin(q, v)
		ipHi := PairIPMax(q, v)
		if dLo > dHi+tol {
			t.Fatalf("trial %d (%T): PairMinDist2 %v > PairMaxDist2 %v", trial, v, dLo, dHi)
		}
		if ipLo > ipHi+tol {
			t.Fatalf("trial %d (%T): PairIPMin %v > PairIPMax %v", trial, v, ipLo, ipHi)
		}

		for s := 0; s < 40; s++ {
			qp := samplePoint(rng, q, dim)
			rp := samplePoint(rng, v, dim)
			d2 := dist2(qp, rp)
			if d2 < dLo-tol || d2 > dHi+tol {
				t.Fatalf("trial %d (%T): dist² %v outside pair bound [%v, %v]", trial, v, d2, dLo, dHi)
			}
			ip := dot(qp, rp)
			if ip < ipLo-tol || ip > ipHi+tol {
				t.Fatalf("trial %d (%T): q·p %v outside pair bound [%v, %v]", trial, v, ip, ipLo, ipHi)
			}
		}
	}
}

// TestPairBoundsDegenerateRect checks the point-rect case reduces to the
// single-volume bounds.
func TestPairBoundsDegenerateRect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(4)
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()*2 - 1
		}
		q := &Rect{Lo: append([]float64(nil), p...), Hi: append([]float64(nil), p...)}
		v := randVolume(rng, dim, trial%3)

		const tol = 1e-9
		if got, want := PairMinDist2(q, v), v.MinDist2(p); math.Abs(got-want) > tol {
			t.Fatalf("point rect (%T): PairMinDist2 %v != MinDist2 %v", v, got, want)
		}
		if got, want := PairMaxDist2(q, v), v.MaxDist2(p); math.Abs(got-want) > tol {
			t.Fatalf("point rect (%T): PairMaxDist2 %v != MaxDist2 %v", v, got, want)
		}
		if got, want := PairIPMax(q, v), v.IPMax(p); got < want-tol {
			t.Fatalf("point rect (%T): PairIPMax %v < IPMax %v", v, got, want)
		}
		if got, want := PairIPMin(q, v), v.IPMin(p); got > want+tol {
			t.Fatalf("point rect (%T): PairIPMin %v > IPMin %v", v, got, want)
		}
	}
}

func TestMaxNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(5)
		q := randRect(rng, dim)
		mn := MaxNorm(q)
		for s := 0; s < 50; s++ {
			p := samplePoint(rng, q, dim)
			if n := math.Sqrt(dot(p, p)); n > mn+1e-9 {
				t.Fatalf("‖q‖ %v exceeds MaxNorm %v", n, mn)
			}
		}
	}
}
