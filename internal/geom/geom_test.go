package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"karl/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func identityIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestRectExtendContains(t *testing.T) {
	r := NewRect([]float64{1, 1})
	r.Extend([]float64{3, -1})
	if !r.Contains([]float64{2, 0}, 0) {
		t.Fatal("rect should contain interior point")
	}
	if r.Contains([]float64{4, 0}, 0) {
		t.Fatal("rect should not contain exterior point")
	}
	if r.Contains([]float64{3.05, 0}, 0.01) {
		t.Fatal("tolerance too generous")
	}
	if !r.Contains([]float64{3.005, 0}, 0.01) {
		t.Fatal("tolerance should admit near-boundary point")
	}
}

func TestRectWidestDim(t *testing.T) {
	r := &Rect{Lo: []float64{0, 0, 0}, Hi: []float64{1, 5, 2}}
	dim, w := r.WidestDim()
	if dim != 1 || w != 5 {
		t.Fatalf("WidestDim = %d,%v want 1,5", dim, w)
	}
}

func TestRectMinMaxDistKnown(t *testing.T) {
	r := &Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	// Query inside: min 0; farthest corner (1,1) from (0.25,0.25).
	q := []float64{0.25, 0.25}
	if got := r.MinDist2(q); got != 0 {
		t.Fatalf("MinDist2 inside = %v", got)
	}
	want := 0.75*0.75 + 0.75*0.75
	if got := r.MaxDist2(q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxDist2 = %v want %v", got, want)
	}
	// Query outside to the right.
	q = []float64{3, 0.5}
	if got := r.MinDist2(q); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MinDist2 outside = %v want 4", got)
	}
}

func TestRectIPKnown(t *testing.T) {
	r := &Rect{Lo: []float64{-1, 0}, Hi: []float64{2, 3}}
	q := []float64{1, -1}
	// dim0: q=1 → min(-1,2)=-1, max=2; dim1: q=-1 → min(-0,-3)=-3, max=0.
	if got := r.IPMin(q); got != -4 {
		t.Fatalf("IPMin = %v want -4", got)
	}
	if got := r.IPMax(q); got != 2 {
		t.Fatalf("IPMax = %v want 2", got)
	}
}

func TestBoundRowsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoundRows(vec.NewMatrix(1, 2), []int{0}, 0, 0)
}

// propVolume checks the fundamental soundness of a Volume over the points it
// was built from: containment, and that min/max dist and IP bounds actually
// bound every enclosed point for random queries.
func propVolume(t *testing.T, build func(m *vec.Matrix, idx []int, start, end int) Volume) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		d := 1 + rng.Intn(6)
		m := randMatrix(rng, n, d)
		v := build(m, identityIdx(n), 0, n)
		for i := 0; i < n; i++ {
			if !v.Contains(m.Row(i), 1e-9) {
				t.Fatalf("trial %d: volume does not contain its own point %d", trial, i)
			}
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64() * 2
		}
		lo2, hi2 := v.MinDist2(q), v.MaxDist2(q)
		ipLo, ipHi := v.IPMin(q), v.IPMax(q)
		if lo2 > hi2 {
			t.Fatalf("trial %d: MinDist2 %v > MaxDist2 %v", trial, lo2, hi2)
		}
		for i := 0; i < n; i++ {
			p := m.Row(i)
			d2 := vec.Dist2(q, p)
			if d2 < lo2-1e-9 || d2 > hi2+1e-9 {
				t.Fatalf("trial %d: dist² %v outside [%v,%v]", trial, d2, lo2, hi2)
			}
			ip := vec.Dot(q, p)
			if ip < ipLo-1e-9 || ip > ipHi+1e-9 {
				t.Fatalf("trial %d: ip %v outside [%v,%v]", trial, ip, ipLo, ipHi)
			}
		}
	}
}

func TestRectVolumeProperty(t *testing.T) {
	propVolume(t, func(m *vec.Matrix, idx []int, start, end int) Volume {
		return BoundRows(m, idx, start, end)
	})
}

func TestBallVolumeProperty(t *testing.T) {
	propVolume(t, func(m *vec.Matrix, idx []int, start, end int) Volume {
		return BoundRowsBall(m, idx, start, end)
	})
}

func TestShellVolumeProperty(t *testing.T) {
	propVolume(t, func(m *vec.Matrix, idx []int, start, end int) Volume {
		return BoundRowsShell(m.Row(idx[start]), m, idx, start, end)
	})
}

func TestShellKnownBounds(t *testing.T) {
	s := &Shell{Center: []float64{0, 0}, RMin: 1, RMax: 2}
	// Query inside the hole: nearest shell point is at RMin.
	q := []float64{0.5, 0}
	if got, want := s.MinDist2(q), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinDist2 in hole = %v want %v", got, want)
	}
	if got, want := s.MaxDist2(q), 6.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxDist2 = %v want %v", got, want)
	}
	// Query within the annulus: min distance zero.
	if got := s.MinDist2([]float64{1.5, 0}); got != 0 {
		t.Fatalf("MinDist2 in annulus = %v want 0", got)
	}
	// Query far outside.
	q = []float64{5, 0}
	if got, want := s.MinDist2(q), 9.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinDist2 outside = %v want %v", got, want)
	}
	if !s.Contains([]float64{0, 1.5}, 0) {
		t.Fatal("annulus point not contained")
	}
	if s.Contains([]float64{0, 0.5}, 0) {
		t.Fatal("hole point contained")
	}
}

func TestShellBoundRowsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoundRowsShell([]float64{0}, vec.NewMatrix(1, 1), []int{0}, 0, 0)
}

func TestBallMinMaxDistKnown(t *testing.T) {
	b := &Ball{Center: []float64{0, 0}, Radius: 1}
	q := []float64{3, 0}
	if got := b.MinDist2(q); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MinDist2 = %v want 4", got)
	}
	if got := b.MaxDist2(q); math.Abs(got-16) > 1e-12 {
		t.Fatalf("MaxDist2 = %v want 16", got)
	}
	// Query inside the ball → MinDist2 is 0.
	if got := b.MinDist2([]float64{0.5, 0}); got != 0 {
		t.Fatalf("MinDist2 inside = %v want 0", got)
	}
}

func TestBallIPKnown(t *testing.T) {
	b := &Ball{Center: []float64{1, 0}, Radius: 2}
	q := []float64{0, 3}
	// q·c = 0; r‖q‖ = 6.
	if got := b.IPMin(q); math.Abs(got+6) > 1e-12 {
		t.Fatalf("IPMin = %v want -6", got)
	}
	if got := b.IPMax(q); math.Abs(got-6) > 1e-12 {
		t.Fatalf("IPMax = %v want 6", got)
	}
}

func TestRectMinDist2QuickVsBruteCorner(t *testing.T) {
	// For a rectangle, MaxDist2 must equal the max over the 2^d corners;
	// check in low dimension by brute force.
	clamp := func(v float64) float64 {
		// testing/quick generates values up to ±MaxFloat64; squared
		// distances on those overflow, so fold into a modest range.
		return math.Mod(v, 100)
	}
	f := func(loRaw, hiRaw, qRaw [3]float64) bool {
		lo, hi, q := make([]float64, 3), make([]float64, 3), make([]float64, 3)
		for j := 0; j < 3; j++ {
			a, b := clamp(loRaw[j]), clamp(hiRaw[j])
			lo[j] = math.Min(a, b)
			hi[j] = math.Max(a, b)
			q[j] = clamp(qRaw[j])
		}
		r := &Rect{Lo: lo, Hi: hi}
		var brute float64
		for mask := 0; mask < 8; mask++ {
			corner := make([]float64, 3)
			for j := 0; j < 3; j++ {
				if mask&(1<<j) != 0 {
					corner[j] = hi[j]
				} else {
					corner[j] = lo[j]
				}
			}
			if d := vec.Dist2(q, corner); d > brute {
				brute = d
			}
		}
		return math.Abs(r.MaxDist2(q)-brute) <= 1e-9*(1+brute)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
