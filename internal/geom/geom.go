// Package geom provides the bounding volumes used by KARL's index
// structures: axis-aligned rectangles (kd-tree) and balls (ball-tree),
// together with the query-to-volume distance and inner-product bounds that
// drive both the SOTA bounds of Gan & Bailis / Gray & Moore and KARL's
// linear bounds (Sections II-B and IV-B of the paper).
package geom

import (
	"fmt"
	"math"

	"karl/internal/vec"
)

// Volume is a bounding volume for a set of points. MinDist2/MaxDist2 bound
// the squared Euclidean distance from a query to any enclosed point; IPMin/
// IPMax bound the inner product q·p over enclosed points p (used by the
// polynomial and sigmoid kernels).
type Volume interface {
	// Contains reports whether p lies inside the volume (within tol).
	Contains(p []float64, tol float64) bool
	// MinDist2 returns a lower bound on dist(q,p)² for enclosed p.
	MinDist2(q []float64) float64
	// MaxDist2 returns an upper bound on dist(q,p)² for enclosed p.
	MaxDist2(q []float64) float64
	// IPMin returns a lower bound on q·p for enclosed p.
	IPMin(q []float64) float64
	// IPMax returns an upper bound on q·p for enclosed p.
	IPMax(q []float64) float64
}

// Rect is an axis-aligned bounding rectangle (Definition 2 in the paper).
type Rect struct {
	Lo []float64
	Hi []float64
}

// NewRect returns the degenerate rectangle around a single point.
func NewRect(p []float64) *Rect {
	return &Rect{Lo: vec.Clone(p), Hi: vec.Clone(p)}
}

// BoundRows returns the bounding rectangle of rows[idx[i]] for i in
// [start,end) of the index permutation. It panics on an empty range.
func BoundRows(m *vec.Matrix, idx []int, start, end int) *Rect {
	if start >= end {
		panic(fmt.Sprintf("geom: empty row range [%d,%d)", start, end))
	}
	r := NewRect(m.Row(idx[start]))
	for i := start + 1; i < end; i++ {
		r.Extend(m.Row(idx[i]))
	}
	return r
}

// Extend grows the rectangle to cover p.
func (r *Rect) Extend(p []float64) {
	for j, v := range p {
		if v < r.Lo[j] {
			r.Lo[j] = v
		}
		if v > r.Hi[j] {
			r.Hi[j] = v
		}
	}
}

// Dims returns the dimensionality of the rectangle.
func (r *Rect) Dims() int { return len(r.Lo) }

// WidestDim returns the dimension with the largest extent and that extent.
func (r *Rect) WidestDim() (dim int, width float64) {
	width = -1
	for j := range r.Lo {
		if w := r.Hi[j] - r.Lo[j]; w > width {
			width, dim = w, j
		}
	}
	return dim, width
}

// Contains implements Volume.
func (r *Rect) Contains(p []float64, tol float64) bool {
	for j, v := range p {
		if v < r.Lo[j]-tol || v > r.Hi[j]+tol {
			return false
		}
	}
	return true
}

// MinDist2 implements Volume: squared distance from q to the nearest face,
// zero when q is inside.
func (r *Rect) MinDist2(q []float64) float64 {
	var s float64
	for j, v := range q {
		switch {
		case v < r.Lo[j]:
			d := r.Lo[j] - v
			s += d * d
		case v > r.Hi[j]:
			d := v - r.Hi[j]
			s += d * d
		}
	}
	return s
}

// MaxDist2 implements Volume: squared distance from q to the farthest
// corner.
func (r *Rect) MaxDist2(q []float64) float64 {
	var s float64
	for j, v := range q {
		dLo := v - r.Lo[j]
		dHi := r.Hi[j] - v
		if dLo < 0 {
			dLo = -dLo
		}
		if dHi < 0 {
			dHi = -dHi
		}
		d := math.Max(dLo, dHi)
		s += d * d
	}
	return s
}

// IPMin implements Volume: per-dimension minimum of q_j·lo_j and q_j·hi_j.
func (r *Rect) IPMin(q []float64) float64 {
	var s float64
	for j, v := range q {
		s += math.Min(v*r.Lo[j], v*r.Hi[j])
	}
	return s
}

// IPMax implements Volume: per-dimension maximum of q_j·lo_j and q_j·hi_j.
func (r *Rect) IPMax(q []float64) float64 {
	var s float64
	for j, v := range q {
		s += math.Max(v*r.Lo[j], v*r.Hi[j])
	}
	return s
}

// Shell is a bounding spherical annulus: all points p satisfy
// RMin ≤ dist(Center, p) ≤ RMax. It is the natural volume of a
// vantage-point tree node; distance bounds follow from the triangle
// inequality and are often tighter than a plain ball when RMin > 0.
type Shell struct {
	Center []float64
	RMin   float64
	RMax   float64
}

// BoundRowsShell returns the shell around center covering rows[idx[i]] for
// i in [start,end). It panics on an empty range.
func BoundRowsShell(center []float64, m *vec.Matrix, idx []int, start, end int) *Shell {
	if start >= end {
		panic(fmt.Sprintf("geom: empty row range [%d,%d)", start, end))
	}
	s := &Shell{Center: vec.Clone(center), RMin: math.Inf(1)}
	for i := start; i < end; i++ {
		d := vec.Dist(center, m.Row(idx[i]))
		if d < s.RMin {
			s.RMin = d
		}
		if d > s.RMax {
			s.RMax = d
		}
	}
	return s
}

// Contains implements Volume.
func (s *Shell) Contains(p []float64, tol float64) bool {
	d := vec.Dist(s.Center, p)
	return d >= s.RMin-tol && d <= s.RMax+tol
}

// MinDist2 implements Volume: by the triangle inequality, for p in the
// shell dist(q,p) ≥ max(0, dist(q,c) − RMax, RMin − dist(q,c)).
func (s *Shell) MinDist2(q []float64) float64 {
	dc := vec.Dist(q, s.Center)
	d := math.Max(dc-s.RMax, s.RMin-dc)
	if d <= 0 {
		return 0
	}
	return d * d
}

// MaxDist2 implements Volume: dist(q,p) ≤ dist(q,c) + RMax.
func (s *Shell) MaxDist2(q []float64) float64 {
	d := vec.Dist(q, s.Center) + s.RMax
	return d * d
}

// IPMin implements Volume via the enclosing ball (the annulus hole does
// not tighten an inner-product bound in general).
func (s *Shell) IPMin(q []float64) float64 {
	return vec.Dot(q, s.Center) - s.RMax*vec.Norm(q)
}

// IPMax implements Volume.
func (s *Shell) IPMax(q []float64) float64 {
	return vec.Dot(q, s.Center) + s.RMax*vec.Norm(q)
}

// Ball is a bounding hypersphere.
type Ball struct {
	Center []float64
	Radius float64
}

// BoundRowsBall returns the centroid ball of rows[idx[i]] for i in
// [start,end): center = mean, radius = max distance to the mean. It panics
// on an empty range.
func BoundRowsBall(m *vec.Matrix, idx []int, start, end int) *Ball {
	if start >= end {
		panic(fmt.Sprintf("geom: empty row range [%d,%d)", start, end))
	}
	c := make([]float64, m.Cols)
	for i := start; i < end; i++ {
		vec.AddTo(c, m.Row(idx[i]))
	}
	vec.ScaleTo(c, 1/float64(end-start))
	var r2 float64
	for i := start; i < end; i++ {
		if d := vec.Dist2(c, m.Row(idx[i])); d > r2 {
			r2 = d
		}
	}
	return &Ball{Center: c, Radius: math.Sqrt(r2)}
}

// Contains implements Volume.
func (b *Ball) Contains(p []float64, tol float64) bool {
	return vec.Dist(b.Center, p) <= b.Radius+tol
}

// MinDist2 implements Volume: (max(0, dist(q,c) − r))².
func (b *Ball) MinDist2(q []float64) float64 {
	d := vec.Dist(q, b.Center) - b.Radius
	if d <= 0 {
		return 0
	}
	return d * d
}

// MaxDist2 implements Volume: (dist(q,c) + r)².
func (b *Ball) MaxDist2(q []float64) float64 {
	d := vec.Dist(q, b.Center) + b.Radius
	return d * d
}

// IPMin implements Volume: q·c − r‖q‖ (Cauchy–Schwarz).
func (b *Ball) IPMin(q []float64) float64 {
	return vec.Dot(q, b.Center) - b.Radius*vec.Norm(q)
}

// IPMax implements Volume: q·c + r‖q‖.
func (b *Ball) IPMax(q []float64) float64 {
	return vec.Dot(q, b.Center) + b.Radius*vec.Norm(q)
}
