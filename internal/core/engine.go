// Package core implements KARL's query engine — the paper's primary
// contribution. It evaluates threshold kernel aggregation queries (TKAQ)
// and approximate kernel aggregation queries (eKAQ) by best-first
// refinement over a hierarchical index (the framework of Section II-B,
// Table V), parameterized by the bounding method: the state-of-the-art
// min/max-distance bounds or KARL's linear bound functions (Section III).
//
// All three weighting types are supported transparently: node aggregates
// carry separate positive and negative weight classes, and bound.NodeBounds
// performs the P⁺/P⁻ decomposition of Section IV-A, so a 2-class SVM model
// (Type III) runs through the same loop as kernel density estimation
// (Type I).
//
// The hot path is allocation-free in steady state: the engine re-arms an
// embedded bound.QueryCtx per query, the priority queue keeps its storage
// across Reset, termination tests are value-typed conditions rather than
// closures, and leaves are evaluated by a kernel evaluator cached at
// construction (one dispatch per engine, not per point) over the tree's
// leaf-contiguous rows.
package core

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/pqueue"
	"karl/internal/vec"
)

// Engine answers kernel aggregation queries over one indexed point set.
// Engines are cheap to construct; the expensive state (the index) is
// shared. An Engine is not safe for concurrent use — clone one per
// goroutine (the clones share the tree).
type Engine struct {
	tree   *index.Tree
	kern   kernel.Params
	method bound.Method

	// maxDepth, when positive, treats nodes at that depth as leaves. This
	// simulates the truncated tree T_i used by the in-situ online tuning of
	// Section III-C without rebuilding anything.
	maxDepth int

	// rows is the dispatch-free leaf evaluator specialized for kern.
	rows kernel.RowsFunc

	// Per-query scratch, reused across queries.
	qc    bound.QueryCtx
	queue pqueue.Queue[entry]
}

// entry is a queued node position together with the bound contribution it
// currently adds to the global bounds, so the pop path need not recompute
// them.
type entry struct {
	ni     int32
	lb, ub float64
}

// Option configures an Engine.
type Option func(*Engine)

// WithMethod selects the bounding technique (default bound.KARL).
func WithMethod(m bound.Method) Option { return func(e *Engine) { e.method = m } }

// WithMaxDepth truncates refinement at the given depth (0 = unlimited),
// simulating the top-i-level tree of the in-situ scenario.
func WithMaxDepth(depth int) Option { return func(e *Engine) { e.maxDepth = depth } }

// New creates an engine over a built index.
func New(tree *index.Tree, kern kernel.Params, opts ...Option) (*Engine, error) {
	if tree == nil || tree.NodeCount() == 0 {
		return nil, errors.New("core: nil or empty index")
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{tree: tree, kern: kern, method: bound.KARL, rows: kern.RowsEvaluator()}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Clone returns an engine sharing the same tree and configuration but with
// independent scratch state, for use from another goroutine.
func (e *Engine) Clone() *Engine {
	return &Engine{tree: e.tree, kern: e.kern, method: e.method, maxDepth: e.maxDepth, rows: e.rows}
}

// Tree exposes the underlying index (read-only by convention).
func (e *Engine) Tree() *index.Tree { return e.tree }

// Kernel returns the engine's kernel parameters.
func (e *Engine) Kernel() kernel.Params { return e.kern }

// Method returns the engine's bounding method.
func (e *Engine) Method() bound.Method { return e.method }

// Stats reports the work one query performed.
type Stats struct {
	// Iterations is the number of priority-queue pops (Table V steps).
	Iterations int
	// NodesExpanded counts internal nodes whose children were scored.
	NodesExpanded int
	// PointsScanned counts points evaluated exactly at leaves.
	PointsScanned int
	// LB and UB are the final global bounds when the query terminated.
	LB, UB float64
}

// checkQuery validates the query point dimensionality.
func (e *Engine) checkQuery(q []float64) error {
	if len(q) != e.tree.Dims() {
		return fmt.Errorf("core: query has %d dims, index has %d", len(q), e.tree.Dims())
	}
	return nil
}

// atFrontier reports whether refinement must stop at this node and evaluate
// it exactly: true for leaves and for nodes at the simulated depth limit.
func (e *Engine) atFrontier(n *index.Node) bool {
	return n.IsLeaf() || (e.maxDepth > 0 && int(n.Depth) >= e.maxDepth)
}

// exactNode computes the exact signed aggregation of a frontier node: a
// fused scan of the contiguous rows [Start,End) using the cached evaluator
// and the tree's squared-norm cache.
func (e *Engine) exactNode(n *index.Node) float64 {
	t := e.tree
	return e.rows(e.qc.Q, e.qc.Norm2, t.Points, t.Norms, t.Weights, int(n.Start), int(n.End))
}

// score bounds the node at position ni, queueing it for refinement unless
// it is a frontier node, in which case it is evaluated exactly.
func (e *Engine) score(ni int32, stats *Stats) (lb, ub float64) {
	n := e.tree.Node(ni)
	if e.atFrontier(n) {
		v := e.exactNode(n)
		stats.PointsScanned += n.Count()
		return v, v
	}
	lb, ub = bound.NodeBounds(e.method, e.kern, &e.qc, n)
	e.queue.Push(entry{ni, lb, ub}, ub-lb)
	return lb, ub
}

// condMode selects a termination rule.
type condMode int

const (
	condThreshold condMode = iota
	condApprox
)

// termCond is a value-typed termination test — the closure-free equivalent
// of the paper's per-variant stopping rules, kept as plain data so probing
// it costs no allocation.
type termCond struct {
	mode     condMode
	tau, eps float64
	maxIter  int // >0 caps the number of probes (bound traces)
	probes   int
}

// done reports whether refinement may stop at the current global bounds.
func (c *termCond) done(lb, ub float64) bool {
	if c.maxIter > 0 {
		c.probes++
		if c.probes >= c.maxIter {
			return true
		}
	}
	switch c.mode {
	case condThreshold:
		return lb > c.tau || ub <= c.tau
	default:
		if lb >= 0 {
			return ub <= (1+c.eps)*lb
		}
		mid := math.Abs(lb+ub) / 2
		return (ub-lb)*(1+c.eps) <= 2*c.eps*mid
	}
}

// refine runs the best-first loop until cond is satisfied or the bounds are
// exact. It returns the final bounds. cond is probed after initialization
// and after every iteration.
func (e *Engine) refine(q []float64, cond *termCond, stats *Stats, trace func(lb, ub float64)) (lb, ub float64) {
	e.qc.Set(q)
	e.queue.Reset()

	lb, ub = e.score(0, stats)
	if trace != nil {
		trace(lb, ub)
	}
	for !cond.done(lb, ub) {
		en, _, ok := e.queue.Pop()
		if !ok {
			return lb, ub // bounds are exact
		}
		stats.Iterations++
		stats.NodesExpanded++
		// Replace this node's contribution with its children's.
		right := e.tree.Node(en.ni).Right
		llb, lub := e.score(e.tree.Left(en.ni), stats)
		rlb, rub := e.score(right, stats)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
		if trace != nil {
			trace(lb, ub)
		}
	}
	return lb, ub
}

// Exact computes F_P(q) exactly through the index storage via the same
// contiguous range primitive leaf refinement uses (used for verification
// and as the refinement fallback).
func (e *Engine) Exact(q []float64) (float64, error) {
	if err := e.checkQuery(q); err != nil {
		return 0, err
	}
	t := e.tree
	return e.rows(q, vec.Norm2(q), t.Points, t.Norms, t.Weights, 0, t.Len()), nil
}

// Threshold answers the TKAQ: whether F_P(q) > tau (Problem 1).
func (e *Engine) Threshold(q []float64, tau float64) (bool, Stats, error) {
	var stats Stats
	if err := e.checkQuery(q); err != nil {
		return false, stats, err
	}
	cond := termCond{mode: condThreshold, tau: tau}
	lb, ub := e.refine(q, &cond, &stats, nil)
	stats.LB, stats.UB = lb, ub
	return lb > tau, stats, nil
}

// Approximate answers the eKAQ (Problem 2): a value within relative error
// eps of F_P(q). The paper's termination test ub ≤ (1+ε)·lb applies to
// non-negative aggregations (Types I and II); with mixed-sign weights the
// criterion generalizes to (ub−lb)(1+ε) ≤ 2ε·|mid|, which gives the same
// guarantee relative to the true value, and refinement falls back to the
// exact answer when neither triggers.
func (e *Engine) Approximate(q []float64, eps float64) (float64, Stats, error) {
	var stats Stats
	if err := e.checkQuery(q); err != nil {
		return 0, stats, err
	}
	if eps <= 0 {
		return 0, stats, fmt.Errorf("core: eps must be positive, got %v", eps)
	}
	cond := termCond{mode: condApprox, eps: eps}
	lb, ub := e.refine(q, &cond, &stats, nil)
	stats.LB, stats.UB = lb, ub
	return (lb + ub) / 2, stats, nil
}

// TracePoint is one refinement step of a bound trace.
type TracePoint struct {
	Iteration int
	LB, UB    float64
}

// TraceThreshold records the global lower/upper bounds after every
// refinement iteration of a TKAQ until it terminates (Figure 6 of the
// paper). maxIter caps the trace length (0 = unlimited).
func (e *Engine) TraceThreshold(q []float64, tau float64, maxIter int) ([]TracePoint, error) {
	if err := e.checkQuery(q); err != nil {
		return nil, err
	}
	var stats Stats
	var pts []TracePoint
	cond := termCond{mode: condThreshold, tau: tau, maxIter: maxIter}
	e.refine(q, &cond, &stats, func(lb, ub float64) {
		pts = append(pts, TracePoint{Iteration: len(pts), LB: lb, UB: ub})
	})
	return pts, nil
}
