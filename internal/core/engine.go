// Package core implements KARL's query engine — the paper's primary
// contribution. It evaluates threshold kernel aggregation queries (TKAQ)
// and approximate kernel aggregation queries (eKAQ) by best-first
// refinement over a hierarchical index (the framework of Section II-B,
// Table V), parameterized by the bounding method: the state-of-the-art
// min/max-distance bounds or KARL's linear bound functions (Section III).
//
// All three weighting types are supported transparently: node aggregates
// carry separate positive and negative weight classes, and bound.NodeBounds
// performs the P⁺/P⁻ decomposition of Section IV-A, so a 2-class SVM model
// (Type III) runs through the same loop as kernel density estimation
// (Type I).
package core

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/pqueue"
)

// Engine answers kernel aggregation queries over one indexed point set.
// Engines are cheap to construct; the expensive state (the index) is
// shared. An Engine is not safe for concurrent use — clone one per
// goroutine (the clones share the tree).
type Engine struct {
	tree   *index.Tree
	kern   kernel.Params
	method bound.Method

	// maxDepth, when positive, treats nodes at that depth as leaves. This
	// simulates the truncated tree T_i used by the in-situ online tuning of
	// Section III-C without rebuilding anything.
	maxDepth int

	queue pqueue.Queue[entry]
}

// entry is a queued index node together with the bound contribution it
// currently adds to the global bounds, so the pop path need not recompute
// them.
type entry struct {
	n      *index.Node
	lb, ub float64
}

// Option configures an Engine.
type Option func(*Engine)

// WithMethod selects the bounding technique (default bound.KARL).
func WithMethod(m bound.Method) Option { return func(e *Engine) { e.method = m } }

// WithMaxDepth truncates refinement at the given depth (0 = unlimited),
// simulating the top-i-level tree of the in-situ scenario.
func WithMaxDepth(depth int) Option { return func(e *Engine) { e.maxDepth = depth } }

// New creates an engine over a built index.
func New(tree *index.Tree, kern kernel.Params, opts ...Option) (*Engine, error) {
	if tree == nil || tree.Root == nil {
		return nil, errors.New("core: nil or empty index")
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{tree: tree, kern: kern, method: bound.KARL}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Clone returns an engine sharing the same tree and configuration but with
// independent scratch state, for use from another goroutine.
func (e *Engine) Clone() *Engine {
	return &Engine{tree: e.tree, kern: e.kern, method: e.method, maxDepth: e.maxDepth}
}

// Tree exposes the underlying index (read-only by convention).
func (e *Engine) Tree() *index.Tree { return e.tree }

// Kernel returns the engine's kernel parameters.
func (e *Engine) Kernel() kernel.Params { return e.kern }

// Method returns the engine's bounding method.
func (e *Engine) Method() bound.Method { return e.method }

// Stats reports the work one query performed.
type Stats struct {
	// Iterations is the number of priority-queue pops (Table V steps).
	Iterations int
	// NodesExpanded counts internal nodes whose children were scored.
	NodesExpanded int
	// PointsScanned counts points evaluated exactly at leaves.
	PointsScanned int
	// LB and UB are the final global bounds when the query terminated.
	LB, UB float64
}

// checkQuery validates the query point dimensionality.
func (e *Engine) checkQuery(q []float64) error {
	if len(q) != e.tree.Dims() {
		return fmt.Errorf("core: query has %d dims, index has %d", len(q), e.tree.Dims())
	}
	return nil
}

// atFrontier reports whether refinement must stop at this node and evaluate
// it exactly: true for leaves and for nodes at the simulated depth limit.
func (e *Engine) atFrontier(n *index.Node) bool {
	return n.IsLeaf() || (e.maxDepth > 0 && n.Depth >= e.maxDepth)
}

// exactNode computes the exact signed aggregation of a frontier node.
func (e *Engine) exactNode(q []float64, n *index.Node) float64 {
	t := e.tree
	return kernel.AggregateRange(e.kern, q, t.Points, t.Weights, t.Idx, n.Start, n.End)
}

// refine runs the best-first loop until done returns true or the bounds are
// exact. It returns the final bounds. done is probed after initialization
// and after every iteration.
func (e *Engine) refine(q []float64, done func(lb, ub float64) bool, stats *Stats, trace func(lb, ub float64)) (lb, ub float64) {
	qc := bound.NewQueryCtx(q)
	e.queue.Reset()

	push := func(n *index.Node) (nlb, nub float64) {
		if e.atFrontier(n) {
			v := e.exactNode(q, n)
			stats.PointsScanned += n.Count()
			return v, v
		}
		nlb, nub = bound.NodeBounds(e.method, e.kern, qc, n)
		e.queue.Push(entry{n, nlb, nub}, nub-nlb)
		return nlb, nub
	}

	lb, ub = push(e.tree.Root)
	if trace != nil {
		trace(lb, ub)
	}
	for !done(lb, ub) {
		en, _, ok := e.queue.Pop()
		if !ok {
			return lb, ub // bounds are exact
		}
		stats.Iterations++
		stats.NodesExpanded++
		// Replace this node's contribution with its children's.
		llb, lub := push(en.n.Left)
		rlb, rub := push(en.n.Right)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
		if trace != nil {
			trace(lb, ub)
		}
	}
	return lb, ub
}

// Exact computes F_P(q) exactly through the index storage (equivalent to a
// scan; used for verification and as the refinement fallback).
func (e *Engine) Exact(q []float64) (float64, error) {
	if err := e.checkQuery(q); err != nil {
		return 0, err
	}
	t := e.tree
	return kernel.AggregateRange(e.kern, q, t.Points, t.Weights, t.Idx, 0, t.Len()), nil
}

// Threshold answers the TKAQ: whether F_P(q) > tau (Problem 1).
func (e *Engine) Threshold(q []float64, tau float64) (bool, Stats, error) {
	var stats Stats
	if err := e.checkQuery(q); err != nil {
		return false, stats, err
	}
	lb, ub := e.refine(q, func(lb, ub float64) bool {
		return lb > tau || ub <= tau
	}, &stats, nil)
	stats.LB, stats.UB = lb, ub
	return lb > tau, stats, nil
}

// Approximate answers the eKAQ (Problem 2): a value within relative error
// eps of F_P(q). The paper's termination test ub ≤ (1+ε)·lb applies to
// non-negative aggregations (Types I and II); with mixed-sign weights the
// criterion generalizes to (ub−lb)(1+ε) ≤ 2ε·|mid|, which gives the same
// guarantee relative to the true value, and refinement falls back to the
// exact answer when neither triggers.
func (e *Engine) Approximate(q []float64, eps float64) (float64, Stats, error) {
	var stats Stats
	if err := e.checkQuery(q); err != nil {
		return 0, stats, err
	}
	if eps <= 0 {
		return 0, stats, fmt.Errorf("core: eps must be positive, got %v", eps)
	}
	lb, ub := e.refine(q, func(lb, ub float64) bool {
		if lb >= 0 {
			return ub <= (1+eps)*lb
		}
		mid := math.Abs(lb+ub) / 2
		return (ub-lb)*(1+eps) <= 2*eps*mid
	}, &stats, nil)
	stats.LB, stats.UB = lb, ub
	return (lb + ub) / 2, stats, nil
}

// TracePoint is one refinement step of a bound trace.
type TracePoint struct {
	Iteration int
	LB, UB    float64
}

// TraceThreshold records the global lower/upper bounds after every
// refinement iteration of a TKAQ until it terminates (Figure 6 of the
// paper). maxIter caps the trace length (0 = unlimited).
func (e *Engine) TraceThreshold(q []float64, tau float64, maxIter int) ([]TracePoint, error) {
	if err := e.checkQuery(q); err != nil {
		return nil, err
	}
	var stats Stats
	var pts []TracePoint
	e.refine(q, func(lb, ub float64) bool {
		if maxIter > 0 && len(pts) >= maxIter {
			return true
		}
		return lb > tau || ub <= tau
	}, &stats, func(lb, ub float64) {
		pts = append(pts, TracePoint{Iteration: len(pts), LB: lb, UB: ub})
	})
	return pts, nil
}
