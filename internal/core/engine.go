// Package core implements KARL's query engine — the paper's primary
// contribution. It evaluates threshold kernel aggregation queries (TKAQ)
// and approximate kernel aggregation queries (eKAQ) by best-first
// refinement over hierarchical indexes (the framework of Section II-B,
// Table V), parameterized by the bounding method: the state-of-the-art
// min/max-distance bounds or KARL's linear bound functions (Section III).
//
// Since the segmented-engine refactor the refinement loop lives in Forest,
// which refines over an ORDERED SET of immutable index segments sharing
// one global priority queue (the executor under karl.DynamicEngine's
// LSM-style manifest). Engine is the single-segment specialization: one
// tree, the same loop, the same zero-allocation steady state.
//
// All three weighting types are supported transparently: node aggregates
// carry separate positive and negative weight classes, and bound.NodeBounds
// performs the P⁺/P⁻ decomposition of Section IV-A, so a 2-class SVM model
// (Type III) runs through the same loop as kernel density estimation
// (Type I).
//
// The hot path is allocation-free in steady state: the executor re-arms an
// embedded bound.QueryCtx per query, the priority queue keeps its storage
// across Reset, termination tests are value-typed conditions rather than
// closures, and leaves are evaluated by a kernel evaluator cached at
// construction (one dispatch per engine, not per point) over each tree's
// leaf-contiguous rows.
package core

import (
	"fmt"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kernel"
)

// Engine answers kernel aggregation queries over one indexed point set: a
// single-segment Forest. Engines are cheap to construct; the expensive
// state (the index) is shared. An Engine is not safe for concurrent use —
// clone one per goroutine (the clones share the tree).
type Engine struct {
	f Forest
	// one is the fixed single-segment set the embedded forest runs over,
	// stored inline so construction needs no per-engine tree slice.
	one [1]*index.Tree
}

// Option configures an Engine.
type Option func(*Engine)

// WithMethod selects the bounding technique (default bound.KARL).
func WithMethod(m bound.Method) Option { return func(e *Engine) { e.f.method = m } }

// WithMaxDepth truncates refinement at the given depth (0 = unlimited),
// simulating the top-i-level tree of the in-situ scenario.
func WithMaxDepth(depth int) Option { return func(e *Engine) { e.f.maxDepth = depth } }

// WithWorkers enables intra-query parallel refinement with up to n
// concurrent expansions per round (n ≤ 1 keeps the sequential loop). See
// Forest.SetWorkers for the determinism contract.
func WithWorkers(n int) Option { return func(e *Engine) { e.f.workers = n } }

// New creates an engine over a built index.
func New(tree *index.Tree, kern kernel.Params, opts ...Option) (*Engine, error) {
	if tree == nil || tree.NodeCount() == 0 {
		return nil, errNoSegments
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{f: Forest{
		kern: kern, method: bound.KARL,
		rows: kern.RowsEvaluator(), rows32: kern.Rows32Evaluator(),
	}}
	for _, opt := range opts {
		opt(e)
	}
	e.one[0] = tree
	if err := e.f.SetTrees(e.one[:]); err != nil {
		return nil, err
	}
	return e, nil
}

// Clone returns an engine sharing the same tree and configuration but with
// independent scratch state, for use from another goroutine.
func (e *Engine) Clone() *Engine {
	c := &Engine{f: Forest{
		kern: e.f.kern, method: e.f.method, maxDepth: e.f.maxDepth,
		rows: e.f.rows, rows32: e.f.rows32, workers: e.f.workers,
	}}
	c.one = e.one
	// The tree is already validated; SetTrees only re-derives dims and
	// sizes the scratch.
	_ = c.f.SetTrees(c.one[:])
	return c
}

// SetWorkers overrides the intra-query parallel refinement width for this
// engine view (n ≤ 1 restores the sequential loop) — the post-construction
// form of WithWorkers, for pools that arm clones per request. See
// Forest.SetWorkers for the determinism contract.
func (e *Engine) SetWorkers(n int) { e.f.SetWorkers(n) }

// Tree exposes the underlying index (read-only by convention).
func (e *Engine) Tree() *index.Tree { return e.one[0] }

// Kernel returns the engine's kernel parameters.
func (e *Engine) Kernel() kernel.Params { return e.f.kern }

// Method returns the engine's bounding method.
func (e *Engine) Method() bound.Method { return e.f.method }

// MaxDepth returns the engine's refinement depth cap (0 = unlimited).
func (e *Engine) MaxDepth() int { return e.f.maxDepth }

// FastPathQueries returns the number of queries served by the
// single-segment fast path (for a static engine with sequential workers,
// every Threshold/Approximate call).
func (e *Engine) FastPathQueries() int64 { return e.f.fastHits }

// Stats reports the work one query performed.
type Stats struct {
	// Iterations is the number of priority-queue pops (Table V steps).
	Iterations int
	// NodesExpanded counts internal nodes whose children were scored.
	NodesExpanded int
	// PointsScanned counts points evaluated exactly at leaves.
	PointsScanned int
	// LB and UB are the final global bounds when the query terminated.
	LB, UB float64
}

// checkQuery validates the query point dimensionality.
func (e *Engine) checkQuery(q []float64) error {
	if len(q) != e.one[0].Dims() {
		return fmt.Errorf("core: query has %d dims, index has %d", len(q), e.one[0].Dims())
	}
	return nil
}

// Exact computes F_P(q) exactly through the index storage via the same
// contiguous range primitive leaf refinement uses (used for verification
// and as the refinement fallback).
func (e *Engine) Exact(q []float64) (float64, error) {
	if err := e.checkQuery(q); err != nil {
		return 0, err
	}
	v, _, err := e.f.Exact(q, 0)
	return v, err
}

// ExactStats is Exact plus the scan statistics; on the float32 leaf path
// the stats bounds carry the documented rounding slack around the value.
func (e *Engine) ExactStats(q []float64) (float64, Stats, error) {
	if err := e.checkQuery(q); err != nil {
		return 0, Stats{}, err
	}
	return e.f.Exact(q, 0)
}

// Threshold answers the TKAQ: whether F_P(q) > tau (Problem 1).
func (e *Engine) Threshold(q []float64, tau float64) (bool, Stats, error) {
	return e.f.Threshold(q, tau, 0)
}

// Approximate answers the eKAQ (Problem 2): a value within relative error
// eps of F_P(q). The paper's termination test ub ≤ (1+ε)·lb applies to
// non-negative aggregations (Types I and II); with mixed-sign weights the
// criterion generalizes to (ub−lb)(1+ε) ≤ 2ε·|mid|, which gives the same
// guarantee relative to the true value, and refinement falls back to the
// exact answer when neither triggers.
func (e *Engine) Approximate(q []float64, eps float64) (float64, Stats, error) {
	return e.f.Approximate(q, eps, 0)
}

// TracePoint is one refinement step of a bound trace.
type TracePoint struct {
	Iteration int
	LB, UB    float64
}

// TraceThreshold records the global lower/upper bounds after every
// refinement iteration of a TKAQ until it terminates (Figure 6 of the
// paper). maxIter caps the trace length (0 = unlimited).
func (e *Engine) TraceThreshold(q []float64, tau float64, maxIter int) ([]TracePoint, error) {
	return e.f.TraceThreshold(q, tau, 0, maxIter)
}
