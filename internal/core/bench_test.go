package core

import (
	"math/rand"
	"testing"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
)

// benchForest builds the leaf-heavy Gaussian workload the raw-speed
// benchmarks share, plus a query and borderline τ.
func benchForest(b *testing.B, leaf32 bool) (*Forest, *index.Tree, []float64, float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	n, d := 20000, 16
	m := makeClustered(rng, n, d, 4, 0.05)
	tr, err := kdtree.Build(m, nil, 40)
	if err != nil {
		b.Fatal(err)
	}
	if leaf32 {
		tr.BuildLeaf32()
	}
	k := kernel.NewGaussian(20)
	f, err := NewForest(k, bound.KARL, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.SetTrees([]*index.Tree{tr}); err != nil {
		b.Fatal(err)
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}
	exact, _, err := f.Exact(q, 0)
	if err != nil {
		b.Fatal(err)
	}
	return f, tr, q, exact * 1.05
}

// BenchmarkFastPathThreshold measures the single-segment fast path: the
// plain Forest dispatches straight into the single-tree loop.
func BenchmarkFastPathThreshold(b *testing.B) {
	f, _, q, tau := benchForest(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Threshold(q, tau, 0); err != nil {
			b.Fatal(err)
		}
	}
	if f.FastPathQueries() == 0 {
		b.Fatal("benchmark did not exercise the fast path")
	}
}

// BenchmarkGenericForestThreshold forces the generic multi-segment loop on
// the identical workload via a unit scale — the delta against
// BenchmarkFastPathThreshold is the dispatch tax the fast path reclaims.
func BenchmarkGenericForestThreshold(b *testing.B) {
	f, _, q, tau := benchForest(b, false)
	if err := f.SetScales([]float64{1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Threshold(q, tau, 0); err != nil {
			b.Fatal(err)
		}
	}
	if f.FastPathQueries() != 0 {
		b.Fatal("scaled forest must not take the fast path")
	}
}

// BenchmarkExactScan64 and BenchmarkExactScan32 compare the full-tree exact
// aggregate — pure leaf-scan throughput — across the two leaf precisions.
func BenchmarkExactScan64(b *testing.B) {
	f, _, q, _ := benchForest(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Exact(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactScan32(b *testing.B) {
	f, _, q, _ := benchForest(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Exact(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
