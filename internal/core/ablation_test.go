package core

import (
	"math/rand"
	"testing"

	"karl/internal/bound"
	"karl/internal/kdtree"
	"karl/internal/kernel"
)

// TestAblationIterationOrdering runs the same TKAQ workload under the four
// bounding methods and checks the expected dominance in total refinement
// work: full KARL needs no more iterations than either single-sided
// ablation, and every ablation needs no more than SOTA. (Per-query paths
// can diverge — priorities differ — so the assertion is on workload
// totals.)
func TestAblationIterationOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	n, d := 6000, 5
	m := makeClustered(rng, n, d, 5, 0.03)
	tr, err := kdtree.Build(m, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.NewGaussian(10)
	methods := []bound.Method{bound.SOTA, bound.KARL, bound.KARLLowerOnly, bound.KARLUpperOnly}
	totals := map[bound.Method]int{}
	engines := map[bound.Method]*Engine{}
	for _, method := range methods {
		e, err := New(tr, k, WithMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		engines[method] = e
	}
	exactEng := engines[bound.KARL]
	for qi := 0; qi < 30; qi++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		exact, _ := exactEng.Exact(q)
		tau := exact * 1.05
		var answers []bool
		for _, method := range methods {
			got, st, err := engines[method].Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			totals[method] += st.Iterations
			answers = append(answers, got)
		}
		for i := 1; i < len(answers); i++ {
			if answers[i] != answers[0] {
				t.Fatalf("q %d: methods disagree: %v", qi, answers)
			}
		}
	}
	if totals[bound.KARL] > totals[bound.KARLLowerOnly] || totals[bound.KARL] > totals[bound.KARLUpperOnly] {
		t.Fatalf("full KARL (%d iters) should not exceed ablations (LB-only %d, UB-only %d)",
			totals[bound.KARL], totals[bound.KARLLowerOnly], totals[bound.KARLUpperOnly])
	}
	if totals[bound.KARLLowerOnly] > totals[bound.SOTA] || totals[bound.KARLUpperOnly] > totals[bound.SOTA] {
		t.Fatalf("ablations (LB-only %d, UB-only %d) should not exceed SOTA (%d)",
			totals[bound.KARLLowerOnly], totals[bound.KARLUpperOnly], totals[bound.SOTA])
	}
	t.Logf("iterations: SOTA=%d LB-only=%d UB-only=%d KARL=%d",
		totals[bound.SOTA], totals[bound.KARLLowerOnly], totals[bound.KARLUpperOnly], totals[bound.KARL])
}
