package core

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// makeClustered builds a clustered dataset: k Gaussian blobs in [0,1]^d.
func makeClustered(rng *rand.Rand, n, d, clusters int, spread float64) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		row := m.Row(i)
		for j := range row {
			row[j] = c[j] + rng.NormFloat64()*spread
		}
	}
	return m
}

func buildBoth(t *testing.T, m *vec.Matrix, w []float64, leafCap int) []*index.Tree {
	t.Helper()
	kd, err := kdtree.Build(m, w, leafCap)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := balltree.Build(m.Clone(), w, leafCap)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := vptree.Build(m.Clone(), w, leafCap)
	if err != nil {
		t.Fatal(err)
	}
	return []*index.Tree{kd, bt, vt}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, kernel.NewGaussian(1)); err == nil {
		t.Fatal("nil tree accepted")
	}
	m := vec.FromRows([][]float64{{0}, {1}})
	tr, _ := kdtree.Build(m, nil, 2)
	if _, err := New(tr, kernel.NewGaussian(-1)); err == nil {
		t.Fatal("invalid kernel accepted")
	}
	if _, err := New(tr, kernel.NewGaussian(1)); err != nil {
		t.Fatalf("valid engine rejected: %v", err)
	}
}

func TestQueryDimensionMismatch(t *testing.T) {
	m := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	tr, _ := kdtree.Build(m, nil, 2)
	e, _ := New(tr, kernel.NewGaussian(1))
	if _, _, err := e.Threshold([]float64{1}, 0.5); err == nil {
		t.Fatal("dimension mismatch accepted by Threshold")
	}
	if _, _, err := e.Approximate([]float64{1, 2, 3}, 0.1); err == nil {
		t.Fatal("dimension mismatch accepted by Approximate")
	}
	if _, err := e.Exact([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted by Exact")
	}
}

func TestApproximateRejectsBadEps(t *testing.T) {
	m := vec.FromRows([][]float64{{0}, {1}})
	tr, _ := kdtree.Build(m, nil, 2)
	e, _ := New(tr, kernel.NewGaussian(1))
	if _, _, err := e.Approximate([]float64{0.5}, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, _, err := e.Approximate([]float64{0.5}, -0.1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

// TestThresholdMatchesExact is the engine's central correctness property:
// TKAQ answers must agree with the brute-force comparison for every
// combination of kernel, method, tree and weighting type.
func TestThresholdMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	kernels := []kernel.Params{
		kernel.NewGaussian(4),
		kernel.NewPolynomial(0.5, 1, 2),
		kernel.NewPolynomial(0.5, 0.5, 3),
		kernel.NewSigmoid(0.5, -0.2),
	}
	for trial := 0; trial < 12; trial++ {
		n := 50 + rng.Intn(400)
		d := 1 + rng.Intn(5)
		m := makeClustered(rng, n, d, 1+rng.Intn(4), 0.05)
		var w []float64
		switch trial % 3 {
		case 0: // Type I
		case 1: // Type II
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() + 0.01
			}
		case 2: // Type III
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		for _, tr := range buildBoth(t, m, w, 1+rng.Intn(30)) {
			for _, k := range kernels {
				exactEng, _ := New(tr, k)
				for _, method := range []bound.Method{bound.SOTA, bound.KARL} {
					e, err := New(tr, k, WithMethod(method))
					if err != nil {
						t.Fatal(err)
					}
					for qi := 0; qi < 6; qi++ {
						q := make([]float64, d)
						for j := range q {
							q[j] = rng.Float64()
						}
						exact, _ := exactEng.Exact(q)
						// Thresholds around the exact value stress the
						// decision boundary; far thresholds stress pruning.
						for _, tau := range []float64{exact * 0.5, exact * 0.99, exact * 1.01, exact * 2, exact + 1, exact - 1} {
							got, _, err := e.Threshold(q, tau)
							if err != nil {
								t.Fatal(err)
							}
							if want := exact > tau; got != want && math.Abs(exact-tau) > 1e-9*(1+math.Abs(exact)) {
								t.Fatalf("trial %d %v %v %v: Threshold(τ=%v) = %v, exact %v",
									trial, tr.Kind, method, k.Kind, tau, got, exact)
							}
						}
					}
				}
			}
		}
	}
}

// TestApproximateGuarantee verifies the eKAQ contract (Problem 2): the
// returned value is within relative error eps of the exact aggregate.
func TestApproximateGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(500)
		d := 1 + rng.Intn(4)
		m := makeClustered(rng, n, d, 3, 0.05)
		var w []float64
		if trial%2 == 1 {
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() + 0.01
			}
		}
		for _, tr := range buildBoth(t, m, w, 16) {
			k := kernel.NewGaussian(2 + rng.Float64()*10)
			for _, method := range []bound.Method{bound.SOTA, bound.KARL} {
				e, _ := New(tr, k, WithMethod(method))
				exactEng, _ := New(tr, k)
				for qi := 0; qi < 8; qi++ {
					q := make([]float64, d)
					for j := range q {
						q[j] = rng.Float64()
					}
					for _, eps := range []float64{0.05, 0.2, 0.5} {
						got, _, err := e.Approximate(q, eps)
						if err != nil {
							t.Fatal(err)
						}
						exact, _ := exactEng.Exact(q)
						if exact == 0 {
							if got != 0 {
								t.Fatalf("exact 0 but approx %v", got)
							}
							continue
						}
						rel := math.Abs(got-exact) / math.Abs(exact)
						if rel > eps+1e-9 {
							t.Fatalf("trial %d %v %v ε=%v: rel error %v (got %v exact %v)",
								trial, tr.Kind, method, eps, rel, got, exact)
						}
					}
				}
			}
		}
	}
}

// TestTypeIIIApproximate exercises the generalized mixed-sign eKAQ path.
func TestTypeIIIApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n, d := 300, 3
	m := makeClustered(rng, n, d, 2, 0.05)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	tr, _ := kdtree.Build(m, w, 8)
	k := kernel.NewGaussian(5)
	e, _ := New(tr, k)
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		got, _, err := e.Approximate(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := e.Exact(q)
		if exact == 0 {
			continue
		}
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > 0.2+1e-9 {
			t.Fatalf("q %d: rel error %v", qi, rel)
		}
	}
}

// TestKARLNeedsFewerIterations reproduces the mechanism behind every
// speedup table in the paper: with tighter bounds, KARL terminates TKAQ
// refinement in fewer iterations than SOTA.
func TestKARLNeedsFewerIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	n, d := 4000, 5
	m := makeClustered(rng, n, d, 5, 0.03)
	tr, _ := kdtree.Build(m, nil, 32)
	k := kernel.NewGaussian(8)
	karl, _ := New(tr, k, WithMethod(bound.KARL))
	sota, _ := New(tr, k, WithMethod(bound.SOTA))
	var karlIters, sotaIters int
	for qi := 0; qi < 40; qi++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		exact, _ := karl.Exact(q)
		tau := exact * 1.1
		_, ks, _ := karl.Threshold(q, tau)
		_, ss, _ := sota.Threshold(q, tau)
		karlIters += ks.Iterations
		sotaIters += ss.Iterations
	}
	if karlIters >= sotaIters {
		t.Fatalf("KARL used %d iterations, SOTA %d — expected strictly fewer", karlIters, sotaIters)
	}
}

// TestMaxDepthSimulation checks the in-situ T_i view: answers stay correct
// at every depth limit and depth 1 scans everything at the root's children.
func TestMaxDepthSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	n, d := 500, 3
	m := makeClustered(rng, n, d, 3, 0.05)
	tr, _ := kdtree.Build(m, nil, 4)
	k := kernel.NewGaussian(4)
	full, _ := New(tr, k)
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}
	exact, _ := full.Exact(q)
	tau := exact * 1.05
	want := exact > tau
	for depth := 1; depth <= tr.Height; depth++ {
		e, _ := New(tr, k, WithMaxDepth(depth))
		got, stats, err := e.Threshold(q, tau)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("depth %d: Threshold = %v want %v", depth, got, want)
		}
		if depth == 1 && stats.PointsScanned != 0 && stats.PointsScanned < n {
			// At depth 1 any refinement scans a full child subtree.
			if stats.Iterations > 1 {
				t.Fatalf("depth 1 should expand at most the root, did %d", stats.Iterations)
			}
		}
	}
}

func TestExactMatchesKernelAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	n, d := 200, 4
	m := makeClustered(rng, n, d, 2, 0.1)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	tr, _ := kdtree.Build(m, w, 8)
	k := kernel.NewGaussian(3)
	e, _ := New(tr, k)
	q := []float64{0.5, 0.5, 0.5, 0.5}
	got, err := e.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	want := kernel.Aggregate(k, q, m, w)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("Exact = %v want %v", got, want)
	}
}

// TestTraceThreshold validates the Figure 6 instrumentation: bounds must be
// monotonically tightening and bracket the exact value at every iteration.
func TestTraceThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n, d := 1000, 4
	m := makeClustered(rng, n, d, 3, 0.05)
	tr, _ := kdtree.Build(m, nil, 8)
	k := kernel.NewGaussian(6)
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}
	for _, method := range []bound.Method{bound.SOTA, bound.KARL} {
		e, _ := New(tr, k, WithMethod(method))
		exact, _ := e.Exact(q)
		trace, err := e.TraceThreshold(q, exact*1.02, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
		tol := 1e-7 * (1 + math.Abs(exact))
		for i, pt := range trace {
			if pt.LB > exact+tol || pt.UB < exact-tol {
				t.Fatalf("%v iter %d: [%v,%v] excludes exact %v", method, i, pt.LB, pt.UB, exact)
			}
			if i > 0 {
				prev := trace[i-1]
				if pt.LB < prev.LB-tol || pt.UB > prev.UB+tol {
					t.Fatalf("%v iter %d: bounds widened: [%v,%v] after [%v,%v]",
						method, i, pt.LB, pt.UB, prev.LB, prev.UB)
				}
			}
		}
	}
}

func TestTraceMaxIterCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	m := makeClustered(rng, 2000, 3, 2, 0.02)
	tr, _ := kdtree.Build(m, nil, 2)
	e, _ := New(tr, kernel.NewGaussian(100), WithMethod(bound.SOTA))
	q := []float64{0.5, 0.5, 0.5}
	exact, _ := e.Exact(q)
	trace, err := e.TraceThreshold(q, exact, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) > 5 {
		t.Fatalf("trace length %d exceeds cap 5", len(trace))
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := makeClustered(rng, 100, 2, 1, 0.1)
	tr, _ := kdtree.Build(m, nil, 8)
	e, _ := New(tr, kernel.NewGaussian(2), WithMethod(bound.SOTA), WithMaxDepth(3))
	c := e.Clone()
	if c.Tree() != e.Tree() || c.Method() != e.Method() || c.Kernel() != e.Kernel() {
		t.Fatal("Clone must preserve configuration and share the tree")
	}
	// Both engines answer identically.
	q := []float64{0.5, 0.5}
	g1, _, _ := e.Threshold(q, 1)
	g2, _, _ := c.Threshold(q, 1)
	if g1 != g2 {
		t.Fatal("clone disagrees with original")
	}
}

func TestSinglePointTree(t *testing.T) {
	m := vec.FromRows([][]float64{{0.5, 0.5}})
	tr, _ := kdtree.Build(m, nil, 4)
	e, _ := New(tr, kernel.NewGaussian(1))
	got, _, err := e.Threshold([]float64{0.5, 0.5}, 0.5)
	if err != nil || !got {
		t.Fatalf("Threshold on single point: %v %v", got, err)
	}
	v, _, err := e.Approximate([]float64{0.5, 0.5}, 0.1)
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("Approximate on single point = %v", v)
	}
}

func TestStatsAreReported(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := makeClustered(rng, 1000, 3, 2, 0.05)
	tr, _ := kdtree.Build(m, nil, 8)
	e, _ := New(tr, kernel.NewGaussian(50), WithMethod(bound.SOTA))
	q := []float64{0.5, 0.5, 0.5}
	exact, _ := e.Exact(q)
	_, stats, _ := e.Threshold(q, exact) // borderline τ forces deep refinement
	if stats.Iterations == 0 && stats.PointsScanned == 0 {
		t.Fatal("stats empty after refinement")
	}
	if stats.UB < stats.LB {
		t.Fatalf("final bounds inverted: [%v,%v]", stats.LB, stats.UB)
	}
}
