package core

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/pqueue"
	"karl/internal/vec"
)

// Forest is the segmented query executor: best-first refinement over an
// ordered set of immutable index segments that share ONE global priority
// queue. Every segment's root is scored into the global bounds, and each
// iteration pops the widest bound gap across all segments, so the pruning
// budget of a query flows to whichever segment has the most slack instead
// of each segment getting a private ε/τ split. A single-segment Forest is
// exactly the classic engine loop; Engine is a thin wrapper over it.
//
// A Forest additionally accepts a per-query exact base term: the caller's
// already-exact contribution (e.g. a dynamic engine's memtable scan), which
// is folded into the global lower AND upper bound before refinement starts.
// Termination criteria therefore hold relative to the true total — this is
// what repairs the mixed-sign ε guarantee for buffered inserts.
//
// Like Engine, a Forest is not safe for concurrent use: it owns per-query
// scratch (the queue, the query context, per-segment statistics). The
// segment set may be swapped between queries with SetTrees; the steady
// state (unchanged segment set) performs no allocation per query.
type Forest struct {
	kern     kernel.Params
	method   bound.Method
	maxDepth int

	// rows is the dispatch-free leaf evaluator specialized for kern.
	rows kernel.RowsFunc

	trees []*index.Tree
	dims  int

	// scales, when non-nil, multiplies every contribution of segment i —
	// leaf evaluations and node bounds alike — by scales[i]. This is the
	// lazy exponential-decay hook: a decayed weight set w_i·λ has node
	// aggregates (W,a,b)·λ, so one positive scalar per segment rescales
	// the whole tree without touching it. nil (the default) is the
	// dispatch-free fast path.
	scales []float64

	// Float32 blocked-leaf state. rows32 is the dispatch-free tiled
	// evaluator; any32/maxNorm2 are derived from the segment set by
	// SetTrees; q32 and slack32c are per-query scratch filled by prep32.
	rows32   kernel.Rows32Func
	any32    bool
	maxNorm2 float64
	q32      []float32
	slack32c float64

	// workers configures intra-query parallel refinement: when > 1 (and
	// the query carries no bound trace) refinement expands up to that many
	// frontier entries concurrently per round. 0 or 1 keeps the sequential
	// loop. See parallel.go for the merge protocol.
	workers  int
	parTasks []fentry
	parRes   []parResult

	// fastHits counts queries served by the single-segment fast path
	// (refineOne) — observability for tests and benchmarks.
	fastHits int64

	// Per-query scratch, reused across queries.
	qc       bound.QueryCtx
	queue    pqueue.Queue[fentry]
	fastQ    pqueue.Queue[sentry]
	segStats []Stats
}

// fentry is a queued node position — segment plus node within it —
// together with the bound contribution it currently adds to the global
// bounds, so the pop path need not recompute them.
type fentry struct {
	ti     int32
	ni     int32
	lb, ub float64
}

// sentry is the single-segment fast-path queue entry: fentry without the
// segment index, so the restored monolithic loop carries no per-pop
// segment indirection.
type sentry struct {
	ni     int32
	lb, ub float64
}

// NewForest creates a segmented executor for the given kernel and bounding
// method with no segments attached; call SetTrees before querying.
// maxDepth > 0 truncates refinement at that depth in every segment (the
// simulated tree of the in-situ scenario); 0 means unlimited.
func NewForest(kern kernel.Params, method bound.Method, maxDepth int) (*Forest, error) {
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	return &Forest{
		kern: kern, method: method, maxDepth: maxDepth,
		rows: kern.RowsEvaluator(), rows32: kern.Rows32Evaluator(),
	}, nil
}

// SetTrees installs the ordered segment set the next queries run over. The
// slice is retained (not copied): callers hand over an immutable snapshot.
// An empty set is valid — queries then return just their base term. When
// the segment count is unchanged the per-segment scratch is reused.
func (f *Forest) SetTrees(trees []*index.Tree) error {
	dims := 0
	for i, t := range trees {
		if t == nil || t.NodeCount() == 0 {
			return fmt.Errorf("core: nil or empty index at segment %d", i)
		}
		if i == 0 {
			dims = t.Dims()
		} else if t.Dims() != dims {
			return fmt.Errorf("core: segment %d has %d dims, segment 0 has %d", i, t.Dims(), dims)
		}
	}
	f.trees = trees
	f.dims = dims
	f.any32, f.maxNorm2 = false, 0
	for _, t := range trees {
		if t.Leaf32 != nil {
			f.any32 = true
			if t.Leaf32.MaxNorm2 > f.maxNorm2 {
				f.maxNorm2 = t.Leaf32.MaxNorm2
			}
		}
	}
	if f.scales != nil && len(f.scales) != len(trees) {
		// Stale scale set from a previous segment snapshot; the caller
		// re-installs fresh scales per query when decay is on.
		f.scales = nil
	}
	if cap(f.segStats) < len(trees) {
		f.segStats = make([]Stats, len(trees))
	} else {
		f.segStats = f.segStats[:len(trees)]
	}
	return nil
}

// Trees returns the current segment set (read-only by convention).
func (f *Forest) Trees() []*index.Tree { return f.trees }

// SetScales installs per-segment positive multipliers on every bound and
// leaf evaluation, index-aligned with the segment set — the decayed-weight
// view λ_i·F_i(q). The slice is retained, not copied, and is typically
// refilled by the caller before every query (the scale of a decaying
// segment changes with the clock). nil restores the unscaled fast path.
// Scales must be positive: a negative scale would flip the lower/upper
// bound order.
func (f *Forest) SetScales(s []float64) error {
	if s != nil && len(s) != len(f.trees) {
		return fmt.Errorf("core: %d scales for %d segments", len(s), len(f.trees))
	}
	f.scales = s
	return nil
}

// Kernel returns the forest's kernel parameters.
func (f *Forest) Kernel() kernel.Params { return f.kern }

// Method returns the forest's bounding method.
func (f *Forest) Method() bound.Method { return f.method }

// MaxDepth returns the forest's refinement depth cap (0 = unlimited).
func (f *Forest) MaxDepth() int { return f.maxDepth }

// SegmentStats returns the per-segment work statistics of the most recent
// query, index-aligned with the segment set. The slice is the forest's own
// scratch: it is valid until the next query and must not be retained.
func (f *Forest) SegmentStats() []Stats { return f.segStats }

// Len returns the total number of points across all segments.
func (f *Forest) Len() int {
	n := 0
	for _, t := range f.trees {
		n += t.Len()
	}
	return n
}

// checkQuery validates the query point dimensionality. A forest with no
// segments accepts any dimensionality (the base term is the whole answer).
func (f *Forest) checkQuery(q []float64) error {
	if len(f.trees) > 0 && len(q) != f.dims {
		return fmt.Errorf("core: query has %d dims, index has %d", len(q), f.dims)
	}
	return nil
}

// atFrontier reports whether refinement must stop at this node and evaluate
// it exactly: true for leaves and for nodes at the simulated depth limit.
func (f *Forest) atFrontier(n *index.Node) bool {
	return n.IsLeaf() || (f.maxDepth > 0 && int(n.Depth) >= f.maxDepth)
}

// prep32 arms the per-query float32 state: the converted query vector and
// the rounding-slack coefficient the frontier bounds fold in. Called once
// per query when any segment carries a float32 leaf block.
func (f *Forest) prep32(q []float64, qNorm2 float64) {
	if cap(f.q32) < len(q) {
		f.q32 = make([]float32, len(q))
	}
	f.q32 = f.q32[:len(q)]
	for i, v := range q {
		f.q32[i] = float32(v)
	}
	f.slack32c = f.kern.Bound32Slack(len(q), qNorm2, f.maxNorm2)
}

// frontierEval evaluates a frontier node of tree t exactly and returns its
// bound contribution. On the float64 path the contribution is a point
// [v, v]; on the float32 tiled path it is [v−slack, v+slack] where slack
// bounds the single-precision dot-product rounding via the node's (W, B)
// aggregates — so the global bounds stay valid for the exact float64
// answer and the ε/τ certificates are untouched.
func (f *Forest) frontierEval(t *index.Tree, n *index.Node, st *Stats) (lb, ub float64) {
	st.PointsScanned += n.Count()
	if blk := t.Leaf32; blk != nil {
		v := f.rows32(f.q32, f.qc.Norm2, blk, t.Norms, t.Weights, int(n.Start), int(n.End))
		slack := f.slack32c * ((n.Pos.W+n.Neg.W)*f.qc.Norm2 + n.Pos.B + n.Neg.B)
		return v - slack, v + slack
	}
	v := f.rows(f.qc.Q, f.qc.Norm2, t.Points, t.Norms, t.Weights, int(n.Start), int(n.End))
	return v, v
}

// boundEval bounds the node ni of segment ti without touching the shared
// queue: frontier nodes are evaluated exactly, internal nodes get their
// linear bounds. frontier reports which case ran (internal nodes must be
// queued by the caller). It only reads forest state, so parallel workers
// may call it concurrently with per-worker st.
func (f *Forest) boundEval(ti, ni int32, st *Stats) (lb, ub float64, frontier bool) {
	t := f.trees[ti]
	n := t.Node(ni)
	if f.atFrontier(n) {
		lb, ub = f.frontierEval(t, n, st)
		if f.scales != nil {
			s := f.scales[ti]
			lb *= s
			ub *= s
		}
		return lb, ub, true
	}
	lb, ub = bound.NodeBounds(f.method, f.kern, &f.qc, n)
	if f.scales != nil {
		// Positive scale: preserves bound order and exactness of the
		// lb ≤ λ·F_node ≤ ub sandwich.
		s := f.scales[ti]
		lb *= s
		ub *= s
	}
	return lb, ub, false
}

// score bounds the node ni of segment ti, queueing it for refinement
// unless it is a frontier node, in which case it is evaluated exactly.
func (f *Forest) score(ti, ni int32, st *Stats) (lb, ub float64) {
	lb, ub, frontier := f.boundEval(ti, ni, st)
	if !frontier {
		f.queue.Push(fentry{ti, ni, lb, ub}, ub-lb)
	}
	return lb, ub
}

// condMode selects a termination rule.
type condMode int

const (
	condThreshold condMode = iota
	condApprox
)

// termCond is a value-typed termination test — the closure-free equivalent
// of the paper's per-variant stopping rules, kept as plain data so probing
// it costs no allocation.
type termCond struct {
	mode     condMode
	tau, eps float64
	maxIter  int // >0 caps the number of probes (bound traces)
	probes   int
}

// done reports whether refinement may stop at the current global bounds.
func (c *termCond) done(lb, ub float64) bool {
	if c.maxIter > 0 {
		c.probes++
		if c.probes >= c.maxIter {
			return true
		}
	}
	if c.mode == condThreshold {
		return CondThreshold(lb, ub, c.tau)
	}
	return CondApprox(lb, ub, c.eps)
}

// CondThreshold is the TKAQ stopping rule: the bounds resolve the verdict
// as soon as the whole [lb, ub] interval falls on one side of tau. Exported
// so alternative executors (the dual-tree batch engine) certify against the
// exact same contract as sequential refinement.
func CondThreshold(lb, ub, tau float64) bool {
	return lb > tau || ub <= tau
}

// CondApprox is the ε-approximation stopping rule shared by every executor:
// for non-negative lower bounds the classic relative gap ub ≤ (1+ε)·lb, and
// for mixed-sign bounds a symmetric midpoint rule that guarantees the
// returned midpoint is within ε·|answer| of the true value.
func CondApprox(lb, ub, eps float64) bool {
	if lb >= 0 {
		return ub <= (1+eps)*lb
	}
	mid := math.Abs(lb+ub) / 2
	return (ub-lb)*(1+eps) <= 2*eps*mid
}

// refine runs the best-first loop over all segments until cond is
// satisfied or the bounds are exact. base is an exact contribution folded
// into both global bounds before the first termination probe. It returns
// the final global bounds. cond is probed after initialization and after
// every iteration.
func (f *Forest) refine(q []float64, base float64, cond *termCond, trace func(lb, ub float64)) (lb, ub float64) {
	f.qc.Set(q)
	if f.any32 {
		f.prep32(q, f.qc.Norm2)
	}
	for i := range f.segStats {
		f.segStats[i] = Stats{}
	}
	// Single-segment fast path: one tree, no decay scales, no exact base
	// term, no trace, no parallel pool — the restored monolithic loop.
	if len(f.trees) == 1 && f.scales == nil && base == 0 && trace == nil && f.workers <= 1 {
		return f.refineOne(cond)
	}
	f.queue.Reset()
	lb, ub = base, base
	for ti := range f.trees {
		l, u := f.score(int32(ti), 0, &f.segStats[ti])
		lb += l
		ub += u
	}
	if trace != nil {
		trace(lb, ub)
	}
	if f.workers > 1 && trace == nil {
		return f.refinePar(lb, ub, cond)
	}
	for !cond.done(lb, ub) {
		en, _, ok := f.queue.Pop()
		if !ok {
			return lb, ub // bounds are exact
		}
		st := &f.segStats[en.ti]
		st.Iterations++
		st.NodesExpanded++
		// Replace this node's contribution with its children's.
		t := f.trees[en.ti]
		right := t.Node(en.ni).Right
		llb, lub := f.score(en.ti, t.Left(en.ni), st)
		rlb, rub := f.score(en.ti, right, st)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
		if trace != nil {
			trace(lb, ub)
		}
	}
	return lb, ub
}

// scoreOne is score specialized for the single-segment fast path: no
// segment indirection, no scale branch, entries go to the lighter sentry
// queue.
func (f *Forest) scoreOne(t *index.Tree, ni int32, st *Stats) (lb, ub float64) {
	n := t.Node(ni)
	if f.atFrontier(n) {
		return f.frontierEval(t, n, st)
	}
	lb, ub = bound.NodeBounds(f.method, f.kern, &f.qc, n)
	f.fastQ.Push(sentry{ni, lb, ub}, ub-lb)
	return lb, ub
}

// refineOne is the single-segment refinement loop — the PR-3 zero-alloc
// engine loop, dispatched to by refine when a Forest holds exactly one
// tree and no memtable base, tombstones or decay scales apply. The only
// differences from the generic loop are the slimmer queue entry (no
// segment index) and the absence of the scale and base-term branches.
func (f *Forest) refineOne(cond *termCond) (lb, ub float64) {
	f.fastHits++
	t := f.trees[0]
	st := &f.segStats[0]
	f.fastQ.Reset()
	lb, ub = f.scoreOne(t, 0, st)
	for !cond.done(lb, ub) {
		en, _, ok := f.fastQ.Pop()
		if !ok {
			return lb, ub // bounds are exact
		}
		st.Iterations++
		st.NodesExpanded++
		right := t.Node(en.ni).Right
		llb, lub := f.scoreOne(t, t.Left(en.ni), st)
		rlb, rub := f.scoreOne(t, right, st)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
	}
	return lb, ub
}

// FastPathQueries returns the number of queries this forest served through
// the single-segment fast path since construction.
func (f *Forest) FastPathQueries() int64 { return f.fastHits }

// SetWorkers configures intra-query parallel refinement: n > 1 expands up
// to n frontier entries concurrently per refinement round; n ≤ 1 restores
// the sequential loop (the default). Answers are deterministic for a
// fixed n: the certification decision is taken at a single merge point
// and workers only tighten bounds. Exact/Aggregate never parallelizes, so
// aggregate answers are bitwise-identical across worker counts.
func (f *Forest) SetWorkers(n int) { f.workers = n }

// Workers returns the configured intra-query parallelism (≤ 1 means
// sequential).
func (f *Forest) Workers() int { return f.workers }

// total sums the per-segment work of the last query into one Stats (the
// LB/UB fields are left for the caller, which knows the global bounds).
func (f *Forest) total() Stats {
	var t Stats
	for i := range f.segStats {
		t.Iterations += f.segStats[i].Iterations
		t.NodesExpanded += f.segStats[i].NodesExpanded
		t.PointsScanned += f.segStats[i].PointsScanned
	}
	return t
}

// Exact computes the exact aggregate over every segment plus the base term
// through the same contiguous range primitive leaf refinement uses.
// Segments carrying a float32 leaf block are scanned through their tiles —
// the returned value is then the tiled sum (deterministic, identical
// across worker counts since Exact never parallelizes) and the stats
// bounds widen by the documented rounding slack.
func (f *Forest) Exact(q []float64, base float64) (float64, Stats, error) {
	var stats Stats
	if err := f.checkQuery(q); err != nil {
		return 0, stats, err
	}
	v := base
	n2 := vec.Norm2(q)
	slack := 0.0
	if f.any32 {
		f.prep32(q, n2)
	}
	for i, t := range f.trees {
		var seg, sl float64
		if t.Leaf32 != nil {
			seg = f.rows32(f.q32, n2, t.Leaf32, t.Norms, t.Weights, 0, t.Len())
			root := t.Root()
			sl = f.slack32c * ((root.Pos.W+root.Neg.W)*n2 + root.Pos.B + root.Neg.B)
		} else {
			seg = f.rows(q, n2, t.Points, t.Norms, t.Weights, 0, t.Len())
		}
		if f.scales != nil {
			seg *= f.scales[i]
			sl *= f.scales[i]
		}
		v += seg
		slack += sl
		stats.PointsScanned += t.Len()
	}
	stats.LB, stats.UB = v-slack, v+slack
	return v, stats, nil
}

// Threshold answers the TKAQ over all segments plus the base term: whether
// base + Σ_seg F_seg(q) > tau.
func (f *Forest) Threshold(q []float64, tau, base float64) (bool, Stats, error) {
	if err := f.checkQuery(q); err != nil {
		return false, Stats{}, err
	}
	cond := termCond{mode: condThreshold, tau: tau}
	lb, ub := f.refine(q, base, &cond, nil)
	stats := f.total()
	stats.LB, stats.UB = lb, ub
	return lb > tau, stats, nil
}

// Approximate answers the eKAQ over all segments plus the base term: a
// value within relative error eps of the TOTAL base + Σ_seg F_seg(q). The
// base term is exact and tightens both global bounds, so the guarantee is
// relative to the true total even when base and the indexed part nearly
// cancel (the mixed-sign criterion (ub−lb)(1+ε) ≤ 2ε·|mid| then forces
// refinement toward exactness).
func (f *Forest) Approximate(q []float64, eps, base float64) (float64, Stats, error) {
	if err := f.checkQuery(q); err != nil {
		return 0, Stats{}, err
	}
	if eps <= 0 {
		return 0, Stats{}, fmt.Errorf("core: eps must be positive, got %v", eps)
	}
	cond := termCond{mode: condApprox, eps: eps}
	lb, ub := f.refine(q, base, &cond, nil)
	stats := f.total()
	stats.LB, stats.UB = lb, ub
	return (lb + ub) / 2, stats, nil
}

// TraceThreshold records the global lower/upper bounds after every
// refinement iteration of a TKAQ until it terminates. maxIter caps the
// trace length (0 = unlimited).
func (f *Forest) TraceThreshold(q []float64, tau, base float64, maxIter int) ([]TracePoint, error) {
	if err := f.checkQuery(q); err != nil {
		return nil, err
	}
	var pts []TracePoint
	cond := termCond{mode: condThreshold, tau: tau, maxIter: maxIter}
	f.refine(q, base, &cond, func(lb, ub float64) {
		pts = append(pts, TracePoint{Iteration: len(pts), LB: lb, UB: ub})
	})
	return pts, nil
}

// errNoSegments is returned by Engine construction over a nil tree.
var errNoSegments = errors.New("core: nil or empty index")
