package core

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/pqueue"
	"karl/internal/vec"
)

// Forest is the segmented query executor: best-first refinement over an
// ordered set of immutable index segments that share ONE global priority
// queue. Every segment's root is scored into the global bounds, and each
// iteration pops the widest bound gap across all segments, so the pruning
// budget of a query flows to whichever segment has the most slack instead
// of each segment getting a private ε/τ split. A single-segment Forest is
// exactly the classic engine loop; Engine is a thin wrapper over it.
//
// A Forest additionally accepts a per-query exact base term: the caller's
// already-exact contribution (e.g. a dynamic engine's memtable scan), which
// is folded into the global lower AND upper bound before refinement starts.
// Termination criteria therefore hold relative to the true total — this is
// what repairs the mixed-sign ε guarantee for buffered inserts.
//
// Like Engine, a Forest is not safe for concurrent use: it owns per-query
// scratch (the queue, the query context, per-segment statistics). The
// segment set may be swapped between queries with SetTrees; the steady
// state (unchanged segment set) performs no allocation per query.
type Forest struct {
	kern     kernel.Params
	method   bound.Method
	maxDepth int

	// rows is the dispatch-free leaf evaluator specialized for kern.
	rows kernel.RowsFunc

	trees []*index.Tree
	dims  int

	// scales, when non-nil, multiplies every contribution of segment i —
	// leaf evaluations and node bounds alike — by scales[i]. This is the
	// lazy exponential-decay hook: a decayed weight set w_i·λ has node
	// aggregates (W,a,b)·λ, so one positive scalar per segment rescales
	// the whole tree without touching it. nil (the default) is the
	// dispatch-free fast path.
	scales []float64

	// Per-query scratch, reused across queries.
	qc       bound.QueryCtx
	queue    pqueue.Queue[fentry]
	segStats []Stats
}

// fentry is a queued node position — segment plus node within it —
// together with the bound contribution it currently adds to the global
// bounds, so the pop path need not recompute them.
type fentry struct {
	ti     int32
	ni     int32
	lb, ub float64
}

// NewForest creates a segmented executor for the given kernel and bounding
// method with no segments attached; call SetTrees before querying.
// maxDepth > 0 truncates refinement at that depth in every segment (the
// simulated tree of the in-situ scenario); 0 means unlimited.
func NewForest(kern kernel.Params, method bound.Method, maxDepth int) (*Forest, error) {
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	return &Forest{kern: kern, method: method, maxDepth: maxDepth, rows: kern.RowsEvaluator()}, nil
}

// SetTrees installs the ordered segment set the next queries run over. The
// slice is retained (not copied): callers hand over an immutable snapshot.
// An empty set is valid — queries then return just their base term. When
// the segment count is unchanged the per-segment scratch is reused.
func (f *Forest) SetTrees(trees []*index.Tree) error {
	dims := 0
	for i, t := range trees {
		if t == nil || t.NodeCount() == 0 {
			return fmt.Errorf("core: nil or empty index at segment %d", i)
		}
		if i == 0 {
			dims = t.Dims()
		} else if t.Dims() != dims {
			return fmt.Errorf("core: segment %d has %d dims, segment 0 has %d", i, t.Dims(), dims)
		}
	}
	f.trees = trees
	f.dims = dims
	if f.scales != nil && len(f.scales) != len(trees) {
		// Stale scale set from a previous segment snapshot; the caller
		// re-installs fresh scales per query when decay is on.
		f.scales = nil
	}
	if cap(f.segStats) < len(trees) {
		f.segStats = make([]Stats, len(trees))
	} else {
		f.segStats = f.segStats[:len(trees)]
	}
	return nil
}

// Trees returns the current segment set (read-only by convention).
func (f *Forest) Trees() []*index.Tree { return f.trees }

// SetScales installs per-segment positive multipliers on every bound and
// leaf evaluation, index-aligned with the segment set — the decayed-weight
// view λ_i·F_i(q). The slice is retained, not copied, and is typically
// refilled by the caller before every query (the scale of a decaying
// segment changes with the clock). nil restores the unscaled fast path.
// Scales must be positive: a negative scale would flip the lower/upper
// bound order.
func (f *Forest) SetScales(s []float64) error {
	if s != nil && len(s) != len(f.trees) {
		return fmt.Errorf("core: %d scales for %d segments", len(s), len(f.trees))
	}
	f.scales = s
	return nil
}

// Kernel returns the forest's kernel parameters.
func (f *Forest) Kernel() kernel.Params { return f.kern }

// Method returns the forest's bounding method.
func (f *Forest) Method() bound.Method { return f.method }

// MaxDepth returns the forest's refinement depth cap (0 = unlimited).
func (f *Forest) MaxDepth() int { return f.maxDepth }

// SegmentStats returns the per-segment work statistics of the most recent
// query, index-aligned with the segment set. The slice is the forest's own
// scratch: it is valid until the next query and must not be retained.
func (f *Forest) SegmentStats() []Stats { return f.segStats }

// Len returns the total number of points across all segments.
func (f *Forest) Len() int {
	n := 0
	for _, t := range f.trees {
		n += t.Len()
	}
	return n
}

// checkQuery validates the query point dimensionality. A forest with no
// segments accepts any dimensionality (the base term is the whole answer).
func (f *Forest) checkQuery(q []float64) error {
	if len(f.trees) > 0 && len(q) != f.dims {
		return fmt.Errorf("core: query has %d dims, index has %d", len(q), f.dims)
	}
	return nil
}

// atFrontier reports whether refinement must stop at this node and evaluate
// it exactly: true for leaves and for nodes at the simulated depth limit.
func (f *Forest) atFrontier(n *index.Node) bool {
	return n.IsLeaf() || (f.maxDepth > 0 && int(n.Depth) >= f.maxDepth)
}

// score bounds the node ni of segment ti, queueing it for refinement
// unless it is a frontier node, in which case it is evaluated exactly.
func (f *Forest) score(ti, ni int32, st *Stats) (lb, ub float64) {
	t := f.trees[ti]
	n := t.Node(ni)
	if f.atFrontier(n) {
		v := f.rows(f.qc.Q, f.qc.Norm2, t.Points, t.Norms, t.Weights, int(n.Start), int(n.End))
		if f.scales != nil {
			v *= f.scales[ti]
		}
		st.PointsScanned += n.Count()
		return v, v
	}
	lb, ub = bound.NodeBounds(f.method, f.kern, &f.qc, n)
	if f.scales != nil {
		// Positive scale: preserves bound order and exactness of the
		// lb ≤ λ·F_node ≤ ub sandwich.
		s := f.scales[ti]
		lb *= s
		ub *= s
	}
	f.queue.Push(fentry{ti, ni, lb, ub}, ub-lb)
	return lb, ub
}

// condMode selects a termination rule.
type condMode int

const (
	condThreshold condMode = iota
	condApprox
)

// termCond is a value-typed termination test — the closure-free equivalent
// of the paper's per-variant stopping rules, kept as plain data so probing
// it costs no allocation.
type termCond struct {
	mode     condMode
	tau, eps float64
	maxIter  int // >0 caps the number of probes (bound traces)
	probes   int
}

// done reports whether refinement may stop at the current global bounds.
func (c *termCond) done(lb, ub float64) bool {
	if c.maxIter > 0 {
		c.probes++
		if c.probes >= c.maxIter {
			return true
		}
	}
	if c.mode == condThreshold {
		return CondThreshold(lb, ub, c.tau)
	}
	return CondApprox(lb, ub, c.eps)
}

// CondThreshold is the TKAQ stopping rule: the bounds resolve the verdict
// as soon as the whole [lb, ub] interval falls on one side of tau. Exported
// so alternative executors (the dual-tree batch engine) certify against the
// exact same contract as sequential refinement.
func CondThreshold(lb, ub, tau float64) bool {
	return lb > tau || ub <= tau
}

// CondApprox is the ε-approximation stopping rule shared by every executor:
// for non-negative lower bounds the classic relative gap ub ≤ (1+ε)·lb, and
// for mixed-sign bounds a symmetric midpoint rule that guarantees the
// returned midpoint is within ε·|answer| of the true value.
func CondApprox(lb, ub, eps float64) bool {
	if lb >= 0 {
		return ub <= (1+eps)*lb
	}
	mid := math.Abs(lb+ub) / 2
	return (ub-lb)*(1+eps) <= 2*eps*mid
}

// refine runs the best-first loop over all segments until cond is
// satisfied or the bounds are exact. base is an exact contribution folded
// into both global bounds before the first termination probe. It returns
// the final global bounds. cond is probed after initialization and after
// every iteration.
func (f *Forest) refine(q []float64, base float64, cond *termCond, trace func(lb, ub float64)) (lb, ub float64) {
	f.qc.Set(q)
	f.queue.Reset()
	for i := range f.segStats {
		f.segStats[i] = Stats{}
	}
	lb, ub = base, base
	for ti := range f.trees {
		l, u := f.score(int32(ti), 0, &f.segStats[ti])
		lb += l
		ub += u
	}
	if trace != nil {
		trace(lb, ub)
	}
	for !cond.done(lb, ub) {
		en, _, ok := f.queue.Pop()
		if !ok {
			return lb, ub // bounds are exact
		}
		st := &f.segStats[en.ti]
		st.Iterations++
		st.NodesExpanded++
		// Replace this node's contribution with its children's.
		t := f.trees[en.ti]
		right := t.Node(en.ni).Right
		llb, lub := f.score(en.ti, t.Left(en.ni), st)
		rlb, rub := f.score(en.ti, right, st)
		lb += llb + rlb - en.lb
		ub += lub + rub - en.ub
		if trace != nil {
			trace(lb, ub)
		}
	}
	return lb, ub
}

// total sums the per-segment work of the last query into one Stats (the
// LB/UB fields are left for the caller, which knows the global bounds).
func (f *Forest) total() Stats {
	var t Stats
	for i := range f.segStats {
		t.Iterations += f.segStats[i].Iterations
		t.NodesExpanded += f.segStats[i].NodesExpanded
		t.PointsScanned += f.segStats[i].PointsScanned
	}
	return t
}

// Exact computes the exact aggregate over every segment plus the base term
// through the same contiguous range primitive leaf refinement uses.
func (f *Forest) Exact(q []float64, base float64) (float64, Stats, error) {
	var stats Stats
	if err := f.checkQuery(q); err != nil {
		return 0, stats, err
	}
	v := base
	n2 := vec.Norm2(q)
	for i, t := range f.trees {
		seg := f.rows(q, n2, t.Points, t.Norms, t.Weights, 0, t.Len())
		if f.scales != nil {
			seg *= f.scales[i]
		}
		v += seg
		stats.PointsScanned += t.Len()
	}
	stats.LB, stats.UB = v, v
	return v, stats, nil
}

// Threshold answers the TKAQ over all segments plus the base term: whether
// base + Σ_seg F_seg(q) > tau.
func (f *Forest) Threshold(q []float64, tau, base float64) (bool, Stats, error) {
	if err := f.checkQuery(q); err != nil {
		return false, Stats{}, err
	}
	cond := termCond{mode: condThreshold, tau: tau}
	lb, ub := f.refine(q, base, &cond, nil)
	stats := f.total()
	stats.LB, stats.UB = lb, ub
	return lb > tau, stats, nil
}

// Approximate answers the eKAQ over all segments plus the base term: a
// value within relative error eps of the TOTAL base + Σ_seg F_seg(q). The
// base term is exact and tightens both global bounds, so the guarantee is
// relative to the true total even when base and the indexed part nearly
// cancel (the mixed-sign criterion (ub−lb)(1+ε) ≤ 2ε·|mid| then forces
// refinement toward exactness).
func (f *Forest) Approximate(q []float64, eps, base float64) (float64, Stats, error) {
	if err := f.checkQuery(q); err != nil {
		return 0, Stats{}, err
	}
	if eps <= 0 {
		return 0, Stats{}, fmt.Errorf("core: eps must be positive, got %v", eps)
	}
	cond := termCond{mode: condApprox, eps: eps}
	lb, ub := f.refine(q, base, &cond, nil)
	stats := f.total()
	stats.LB, stats.UB = lb, ub
	return (lb + ub) / 2, stats, nil
}

// TraceThreshold records the global lower/upper bounds after every
// refinement iteration of a TKAQ until it terminates. maxIter caps the
// trace length (0 = unlimited).
func (f *Forest) TraceThreshold(q []float64, tau, base float64, maxIter int) ([]TracePoint, error) {
	if err := f.checkQuery(q); err != nil {
		return nil, err
	}
	var pts []TracePoint
	cond := termCond{mode: condThreshold, tau: tau, maxIter: maxIter}
	f.refine(q, base, &cond, func(lb, ub float64) {
		pts = append(pts, TracePoint{Iteration: len(pts), LB: lb, UB: ub})
	})
	return pts, nil
}

// errNoSegments is returned by Engine construction over a nil tree.
var errNoSegments = errors.New("core: nil or empty index")
