package core

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// totalSlack32 is the worst-case float32 rounding slack a whole tree can
// contribute to the global bounds: the Bound32Slack coefficient times the
// root's (W, B) aggregates — the same algebra frontierEval applies per
// node, summed over everything.
func totalSlack32(k kernel.Params, tr *index.Tree, q []float64) float64 {
	if tr.Leaf32 == nil {
		return 0
	}
	qn := vec.Norm2(q)
	root := tr.Root()
	return k.Bound32Slack(tr.Dims(), qn, tr.Leaf32.MaxNorm2) *
		((root.Pos.W+root.Neg.W)*qn + root.Pos.B + root.Neg.B)
}

// TestFloat32EquivalenceGate is the acceptance gate for the float32
// blocked-leaf path and intra-query parallel refinement together: for
// every index kind × weighting type (I/II/III) × kernel family × worker
// count, against the float64 scan oracle over the ORIGINAL matrix:
//
//   - the final [LB, UB] always brackets the oracle (the slack keeps the
//     certificates honest for the exact float64 answer);
//   - Threshold verdicts agree with the oracle except when τ falls inside
//     the rounding slack (where the bounds honestly cannot decide);
//   - Approximate lands within ε relative error plus the rounding slack;
//   - Exact (Aggregate) is bitwise identical across worker counts — it
//     never parallelizes.
func TestFloat32EquivalenceGate(t *testing.T) {
	rng := rand.New(rand.NewSource(815))
	kernels := []kernel.Params{
		kernel.NewGaussian(6),
		kernel.NewPolynomial(0.4, 0.8, 2),
		kernel.NewSigmoid(0.3, -0.1),
	}
	builders := []struct {
		name  string
		build func(*vec.Matrix, []float64, int) (*index.Tree, error)
	}{
		{"kd-tree", kdtree.Build},
		{"ball-tree", balltree.Build},
		{"vp-tree", vptree.Build},
	}
	for wt := 0; wt < 3; wt++ {
		n := 300 + rng.Intn(300)
		d := 2 + rng.Intn(4)
		m := makeClustered(rng, n, d, 2, 0.05)
		var w []float64
		switch wt {
		case 0: // Type I: unit weights
		case 1: // Type II: positive weights
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() + 0.01
			}
		case 2: // Type III: mixed signs
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		for _, b := range builders {
			tr, err := b.build(m.Clone(), w, 8)
			if err != nil {
				t.Fatal(err)
			}
			tr.BuildLeaf32()
			for _, k := range kernels {
				sc, err := scan.NewScanner(m, w, k)
				if err != nil {
					t.Fatal(err)
				}
				var exactByWorkers []float64
				for _, workers := range []int{1, 2, 4} {
					e, err := New(tr, k, WithMethod(bound.KARL), WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					for qi := 0; qi < 4; qi++ {
						q := make([]float64, d)
						for j := range q {
							q[j] = rng.Float64()
						}
						want := sc.Aggregate(q)
						slack := totalSlack32(k, tr, q)

						if workers == 1 && qi == 0 {
							ex, err := e.Exact(q)
							if err != nil {
								t.Fatal(err)
							}
							if math.Abs(ex-want) > slack {
								t.Fatalf("%s/%v/wt%d: Exact off by %v > slack %v",
									b.name, k.Kind, wt, ex-want, slack)
							}
						}

						for _, tau := range []float64{want * 0.7, want * 1.3, want + 0.5, want - 0.5} {
							gt, st, err := e.Threshold(q, tau)
							if err != nil {
								t.Fatal(err)
							}
							if st.LB > want || want > st.UB {
								t.Fatalf("%s/%v/wt%d w=%d: oracle %v outside final bounds [%v, %v]",
									b.name, k.Kind, wt, workers, want, st.LB, st.UB)
							}
							if gt != (want > tau) && math.Abs(want-tau) > slack {
								t.Fatalf("%s/%v/wt%d w=%d: Threshold(τ=%v) = %v, oracle %v (gap %v > slack %v)",
									b.name, k.Kind, wt, workers, tau, gt, want, math.Abs(want-tau), slack)
							}
						}

						approx, ast, err := e.Approximate(q, 0.1)
						if err != nil {
							t.Fatal(err)
						}
						if ast.LB > want+1e-12 || want > ast.UB+1e-12 {
							t.Fatalf("%s/%v/wt%d w=%d: oracle %v outside approx bounds [%v, %v]",
								b.name, k.Kind, wt, workers, want, ast.LB, ast.UB)
						}
						if math.Abs(approx-want) > 0.1*math.Abs(want)+slack+1e-12 {
							t.Fatalf("%s/%v/wt%d w=%d: Approximate = %v, oracle %v (slack %v)",
								b.name, k.Kind, wt, workers, approx, want, slack)
						}
					}
					// Aggregate determinism across worker counts: Exact never
					// parallelizes, so the tiled sum is bitwise stable.
					qfix := make([]float64, d)
					for j := range qfix {
						qfix[j] = 0.4 + 0.02*float64(j)
					}
					ex, err := e.Exact(qfix)
					if err != nil {
						t.Fatal(err)
					}
					exactByWorkers = append(exactByWorkers, ex)
				}
				for i := 1; i < len(exactByWorkers); i++ {
					if exactByWorkers[i] != exactByWorkers[0] {
						t.Fatalf("%s/%v/wt%d: Exact not bitwise-stable across worker counts: %v vs %v",
							b.name, k.Kind, wt, exactByWorkers[i], exactByWorkers[0])
					}
				}
			}
		}
	}
}

// TestFloat32ExactStatsSlack: the stats bounds of an exact aggregate over
// a float32 tree carry the documented slack around the value and still
// bracket the float64 oracle.
func TestFloat32ExactStatsSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(816))
	n, d := 500, 4
	m := makeClustered(rng, n, d, 3, 0.05)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	tr, err := kdtree.Build(m.Clone(), w, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr.BuildLeaf32()
	k := kernel.NewGaussian(4)
	sc, err := scan.NewScanner(m, w, k)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		v, st, err := e.ExactStats(q)
		if err != nil {
			t.Fatal(err)
		}
		want := sc.Aggregate(q)
		if st.LB > want || want > st.UB {
			t.Fatalf("oracle %v outside [%v, %v]", want, st.LB, st.UB)
		}
		if st.LB > v || v > st.UB {
			t.Fatalf("value %v outside its own bounds [%v, %v]", v, st.LB, st.UB)
		}
		if st.UB-st.LB > 2*totalSlack32(k, tr, q)+1e-15 {
			t.Fatalf("stats gap %v exceeds 2×slack %v", st.UB-st.LB, 2*totalSlack32(k, tr, q))
		}
	}
}

// TestFastPathCounter pins exactly when the single-segment fast path runs:
// a lone tree with no scales, base term, trace or parallel workers — and
// that the generic loop produces identical answers when it is bypassed.
func TestFastPathCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(817))
	n, d := 400, 3
	m := makeClustered(rng, n, d, 2, 0.05)
	tr, err := kdtree.Build(m.Clone(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.NewGaussian(5)
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}

	e, err := New(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := e.Exact(q)
	tau := exact * 1.1
	if e.FastPathQueries() != 0 {
		t.Fatal("counter must start at zero")
	}
	hot, st, err := e.Threshold(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Approximate(q, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := e.FastPathQueries(); got != 2 {
		t.Fatalf("static single-tree engine served %d fast-path queries, want 2", got)
	}
	if _, err := e.Exact(q); err != nil {
		t.Fatal(err)
	}
	if got := e.FastPathQueries(); got != 2 {
		t.Fatalf("Exact must not route through refinement (counter %d)", got)
	}

	// The generic loop (forced here via a unit scale) must agree with the
	// fast path bitwise: same arithmetic, same expansion order.
	f, err := NewForest(k, bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees([]*index.Tree{tr}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetScales([]float64{1}); err != nil {
		t.Fatal(err)
	}
	ghot, gst, err := f.Threshold(q, tau, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.FastPathQueries() != 0 {
		t.Fatal("scaled query must bypass the fast path")
	}
	if ghot != hot || gst.LB != st.LB || gst.UB != st.UB {
		t.Fatalf("generic loop diverged from fast path: %v [%v,%v] vs %v [%v,%v]",
			ghot, gst.LB, gst.UB, hot, st.LB, st.UB)
	}

	// Base term, parallel workers and traces all bypass too.
	if err := f.SetScales(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Threshold(q, tau, 0.5); err != nil {
		t.Fatal(err)
	}
	if f.FastPathQueries() != 0 {
		t.Fatal("base term must bypass the fast path")
	}
	f.SetWorkers(4)
	if _, _, err := f.Threshold(q, tau, 0); err != nil {
		t.Fatal(err)
	}
	if f.FastPathQueries() != 0 {
		t.Fatal("parallel refinement must bypass the fast path")
	}
	f.SetWorkers(1)
	if _, err := f.TraceThreshold(q, tau, 0, 0); err != nil {
		t.Fatal(err)
	}
	if f.FastPathQueries() != 0 {
		t.Fatal("bound traces must bypass the fast path")
	}
	if _, _, err := f.Threshold(q, tau, 0); err != nil {
		t.Fatal(err)
	}
	if f.FastPathQueries() != 1 {
		t.Fatal("plain single-segment query must take the fast path")
	}
}
