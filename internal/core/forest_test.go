package core

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// buildSegments splits the rows of m (and weights) into nseg contiguous
// chunks and builds one tree per chunk.
func buildSegments(t *testing.T, build func(*vec.Matrix, []float64, int) (*index.Tree, error),
	m *vec.Matrix, w []float64, nseg, leafCap int) []*index.Tree {
	t.Helper()
	var trees []*index.Tree
	per := m.Rows / nseg
	for s := 0; s < nseg; s++ {
		lo := s * per
		hi := lo + per
		if s == nseg-1 {
			hi = m.Rows
		}
		sub := vec.NewMatrix(hi-lo, m.Cols)
		copy(sub.Data, m.Data[lo*m.Cols:hi*m.Cols])
		var sw []float64
		if w != nil {
			sw = append(sw, w[lo:hi]...)
		}
		tr, err := build(sub, sw, leafCap)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	return trees
}

// TestForestEquivalence: refinement over a partition of the point set into
// segments sharing one global queue must agree with the scan oracle over
// the union, for every index kind × weighting type × kernel family.
func TestForestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	kernels := []kernel.Params{
		kernel.NewGaussian(6),
		kernel.NewPolynomial(0.4, 0.8, 3),
		kernel.NewSigmoid(0.3, -0.1),
	}
	builders := []struct {
		name  string
		build func(*vec.Matrix, []float64, int) (*index.Tree, error)
	}{
		{"kd-tree", kdtree.Build},
		{"ball-tree", balltree.Build},
		{"vp-tree", vptree.Build},
	}
	for trial := 0; trial < 6; trial++ {
		n := 300 + rng.Intn(500)
		d := 2 + rng.Intn(4)
		m := makeClustered(rng, n, d, 1+rng.Intn(3), 0.05)
		var w []float64
		switch trial % 3 {
		case 0: // Type I
		case 1: // Type II
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() + 0.01
			}
		case 2: // Type III
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		nseg := 2 + rng.Intn(4)
		for _, b := range builders {
			trees := buildSegments(t, b.build, m, w, nseg, 1+rng.Intn(24))
			for _, k := range kernels {
				sc, err := scan.NewScanner(m, w, k)
				if err != nil {
					t.Fatal(err)
				}
				f, err := NewForest(k, bound.KARL, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.SetTrees(trees); err != nil {
					t.Fatal(err)
				}
				if f.Len() != n {
					t.Fatalf("forest Len = %d want %d", f.Len(), n)
				}
				for qi := 0; qi < 5; qi++ {
					q := make([]float64, d)
					for j := range q {
						q[j] = rng.Float64()
					}
					want := sc.Aggregate(q)
					tol := 1e-9 * (1 + math.Abs(want))
					got, st, err := f.Exact(q, 0)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got-want) > tol {
						t.Fatalf("%s %v: Exact = %v, oracle %v", b.name, k.Kind, got, want)
					}
					if st.PointsScanned != n {
						t.Fatalf("Exact scanned %d points, want %d", st.PointsScanned, n)
					}
					for _, tau := range []float64{want * 0.7, want * 1.3, want + 0.5, want - 0.5} {
						if math.Abs(want-tau) <= tol {
							continue
						}
						gt, _, err := f.Threshold(q, tau, 0)
						if err != nil {
							t.Fatal(err)
						}
						if gt != (want > tau) {
							t.Fatalf("%s %v: Threshold(τ=%v) = %v, oracle %v", b.name, k.Kind, tau, gt, want)
						}
					}
					approx, _, err := f.Approximate(q, 0.1, 0)
					if err != nil {
						t.Fatal(err)
					}
					if want != 0 {
						if rel := math.Abs(approx-want) / math.Abs(want); rel > 0.1+1e-9 {
							t.Fatalf("%s %v: Approximate rel error %v", b.name, k.Kind, rel)
						}
					}
				}
			}
		}
	}
}

// TestForestBaseTerm: the exact base term must be folded into answers and
// guarantees. A base that pushes the total over/under the threshold must
// flip the decision, and the approximate guarantee is relative to the
// total including the base.
func TestForestBaseTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	n, d := 600, 3
	m := makeClustered(rng, n, d, 2, 0.05)
	k := kernel.NewGaussian(4)
	tr, err := kdtree.Build(m, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewForest(k, bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees([]*index.Tree{tr}); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.5, 0.6}
	exact, _, err := f.Exact(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := 7.5
	// Threshold between exact and exact+base: only the base pushes it over.
	tau := exact + base/2
	over, _, err := f.Threshold(q, tau, base)
	if err != nil {
		t.Fatal(err)
	}
	if !over {
		t.Fatalf("Threshold(τ=%v, base=%v) = false, total %v", tau, base, exact+base)
	}
	over, _, err = f.Threshold(q, tau, 0)
	if err != nil {
		t.Fatal(err)
	}
	if over {
		t.Fatal("Threshold without base should be under")
	}
	got, _, err := f.Approximate(q, 0.05, base)
	if err != nil {
		t.Fatal(err)
	}
	total := exact + base
	if rel := math.Abs(got-total) / total; rel > 0.05+1e-9 {
		t.Fatalf("Approximate with base: rel error %v", rel)
	}
	v, _, err := f.Exact(q, base)
	if err != nil {
		t.Fatal(err)
	}
	if v != exact+base {
		t.Fatalf("Exact with base = %v want %v", v, exact+base)
	}
}

// TestForestEmpty: a forest with no segments answers from the base term
// alone — the state of a dynamic engine before its first seal.
func TestForestEmpty(t *testing.T) {
	f, err := NewForest(kernel.NewGaussian(1), bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees(nil); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5}
	if v, _, err := f.Exact(q, 3.25); err != nil || v != 3.25 {
		t.Fatalf("Exact = %v, %v", v, err)
	}
	if over, _, err := f.Threshold(q, 3, 3.25); err != nil || !over {
		t.Fatalf("Threshold = %v, %v", over, err)
	}
	if v, _, err := f.Approximate(q, 0.1, 3.25); err != nil || v != 3.25 {
		t.Fatalf("Approximate = %v, %v", v, err)
	}
}

// TestForestSharedBudget: with a shared global queue, a segment whose
// contribution is already tight must not be refined while a loose segment
// has all the slack — the per-segment statistics expose where the work
// went.
func TestForestSharedBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	d := 3
	k := kernel.NewGaussian(8)
	// Segment 0: far from the query — its root bound is already tight.
	far := vec.NewMatrix(500, d)
	for i := 0; i < far.Rows; i++ {
		for j := 0; j < d; j++ {
			far.Row(i)[j] = 50 + rng.Float64()*0.01
		}
	}
	// Segment 1: clustered around the query — needs refinement.
	near := makeClustered(rng, 500, d, 3, 0.2)
	farTree, err := kdtree.Build(far, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	nearTree, err := kdtree.Build(near, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewForest(k, bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees([]*index.Tree{farTree, nearTree}); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = 0.5
	}
	exact, _, err := f.Exact(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Threshold(q, exact*1.02, 0); err != nil {
		t.Fatal(err)
	}
	seg := f.SegmentStats()
	if len(seg) != 2 {
		t.Fatalf("SegmentStats len = %d", len(seg))
	}
	// The far segment's root interval is tiny (all its mass is ~50 units
	// away, kernel ≈ 0 with a sharp slope bound), so virtually all pops
	// should land on the near segment.
	if seg[0].NodesExpanded > seg[1].NodesExpanded {
		t.Fatalf("budget misdirected: far segment expanded %d nodes, near %d",
			seg[0].NodesExpanded, seg[1].NodesExpanded)
	}
}

// TestForestZeroAllocSteadyState: the multi-segment hot path must stay
// allocation-free once the queue storage is warm, matching the
// single-segment gate.
func TestForestZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	d := 4
	m := makeClustered(rng, 4000, d, 3, 0.05)
	k := kernel.NewGaussian(10)
	trees := buildSegments(t, kdtree.Build, m, nil, 3, 32)
	f, err := NewForest(k, bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees(trees); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}
	exact, _, _ := f.Exact(q, 0)
	tau := exact * 1.05
	for i := 0; i < 3; i++ {
		if _, _, err := f.Threshold(q, tau, 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Approximate(q, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := f.Threshold(q, tau, 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("multi-segment Threshold allocates %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := f.Approximate(q, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("multi-segment Approximate allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestForestSetTreesValidation pins the dimension and emptiness checks.
func TestForestSetTreesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m2 := makeClustered(rng, 50, 2, 1, 0.1)
	m3 := makeClustered(rng, 50, 3, 1, 0.1)
	t2, err := kdtree.Build(m2, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := kdtree.Build(m3, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewForest(kernel.NewGaussian(1), bound.KARL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetTrees([]*index.Tree{t2, t3}); err == nil {
		t.Fatal("mixed-dims segment set accepted")
	}
	if err := f.SetTrees([]*index.Tree{t2, nil}); err == nil {
		t.Fatal("nil segment accepted")
	}
	if err := f.SetTrees([]*index.Tree{t2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Threshold([]float64{1, 2, 3}, 0, 0); err == nil {
		t.Fatal("wrong-dims query accepted")
	}
}
