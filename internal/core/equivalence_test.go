package core

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/balltree"
	"karl/internal/bound"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/scan"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// TestFlatIndexEquivalence is the layout-migration safety net: for every
// index kind × weighting type × kernel family, engine answers over the flat
// leaf-reordered storage must match the scan oracle evaluated over the
// ORIGINAL matrix and weights. The fused three-term distance form reorders
// floating-point arithmetic relative to the oracle's direct subtraction, so
// agreement is to tight relative tolerance rather than bitwise.
func TestFlatIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	kernels := []kernel.Params{
		kernel.NewGaussian(6),
		kernel.NewPolynomial(0.4, 0.8, 3),
		kernel.NewSigmoid(0.3, -0.1),
	}
	builders := []struct {
		name  string
		build func(*vec.Matrix, []float64, int) (*index.Tree, error)
	}{
		{"kd-tree", kdtree.Build},
		{"ball-tree", balltree.Build},
		{"vp-tree", vptree.Build},
	}
	for trial := 0; trial < 6; trial++ {
		n := 200 + rng.Intn(600)
		d := 2 + rng.Intn(5)
		m := makeClustered(rng, n, d, 1+rng.Intn(3), 0.05)
		var w []float64
		switch trial % 3 {
		case 0: // Type I: unit weights
		case 1: // Type II: positive weights
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() + 0.01
			}
		case 2: // Type III: mixed signs
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		for _, b := range builders {
			tr, err := b.build(m.Clone(), w, 1+rng.Intn(24))
			if err != nil {
				t.Fatal(err)
			}
			// The tree must not alias the input: its storage is a reordered
			// copy whose PointID maps back to the original rows.
			for i := 0; i < n; i++ {
				pid := int(tr.PointID[i])
				if !vec.Equal(tr.Points.Row(i), m.Row(pid), 0) {
					t.Fatalf("%s: storage row %d != original row %d", b.name, i, pid)
				}
				if w != nil && tr.Weights[i] != w[pid] {
					t.Fatalf("%s: weight not reordered with its point", b.name)
				}
			}
			for _, k := range kernels {
				sc, err := scan.NewScanner(m, w, k)
				if err != nil {
					t.Fatal(err)
				}
				e, err := New(tr, k, WithMethod(bound.KARL))
				if err != nil {
					t.Fatal(err)
				}
				for qi := 0; qi < 5; qi++ {
					q := make([]float64, d)
					for j := range q {
						q[j] = rng.Float64()
					}
					want := sc.Aggregate(q)
					tol := 1e-9 * (1 + math.Abs(want))
					got, err := e.Exact(q)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(got-want) > tol {
						t.Fatalf("%s %v: Exact = %v, oracle %v (Δ %v)",
							b.name, k.Kind, got, want, got-want)
					}
					for _, tau := range []float64{want * 0.7, want * 1.3, want + 0.5, want - 0.5} {
						if math.Abs(want-tau) <= tol {
							continue // undecidable at float precision
						}
						gt, _, err := e.Threshold(q, tau)
						if err != nil {
							t.Fatal(err)
						}
						if gt != (want > tau) {
							t.Fatalf("%s %v: Threshold(τ=%v) = %v, oracle %v",
								b.name, k.Kind, tau, gt, want)
						}
					}
					approx, _, err := e.Approximate(q, 0.1)
					if err != nil {
						t.Fatal(err)
					}
					if want != 0 {
						if rel := math.Abs(approx-want) / math.Abs(want); rel > 0.1+1e-9 {
							t.Fatalf("%s %v: Approximate rel error %v", b.name, k.Kind, rel)
						}
					}
				}
			}
		}
	}
}

// TestQueryHotPathZeroAlloc is the steady-state allocation gate the issue
// requires: after a warm-up query (which may grow the priority queue's
// backing array and the float32 query scratch once), Threshold, Approximate
// and Exact must run without a single heap allocation — on BOTH the float64
// and the float32 blocked-leaf paths. CI fails on regression.
func TestQueryHotPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n, d := 20000, 8
	m := makeClustered(rng, n, d, 4, 0.05)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64() + 0.01
	}
	for _, leaf32 := range []bool{false, true} {
		name := "float64"
		if leaf32 {
			name = "float32"
		}
		for _, k := range []kernel.Params{kernel.NewGaussian(12), kernel.NewPolynomial(0.4, 1, 3)} {
			tr, err := kdtree.Build(m, w, 40)
			if err != nil {
				t.Fatal(err)
			}
			if leaf32 {
				tr.BuildLeaf32()
			}
			e, err := New(tr, k, WithMethod(bound.KARL))
			if err != nil {
				t.Fatal(err)
			}
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64()
			}
			exact, _ := e.Exact(q)
			tau := exact * 1.05
			// Warm up: first queries may grow the queue storage.
			for i := 0; i < 3; i++ {
				if _, _, err := e.Threshold(q, tau); err != nil {
					t.Fatal(err)
				}
				if _, _, err := e.Approximate(q, 0.1); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, _, err := e.Threshold(q, tau); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s %v: Threshold allocates %.1f allocs/op in steady state, want 0", name, k.Kind, allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, _, err := e.Approximate(q, 0.1); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s %v: Approximate allocates %.1f allocs/op in steady state, want 0", name, k.Kind, allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, err := e.Exact(q); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%s %v: Exact allocates %.1f allocs/op in steady state, want 0", name, k.Kind, allocs)
			}
		}
	}
}
