package core

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"karl/internal/bound"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/scan"
)

// TestParallelDeterminism: for a fixed worker count, repeated runs of the
// same query return bit-identical bounds and verdicts — pop, merge and
// push order are functions of queue state alone, never of goroutine
// scheduling. Exercised at several worker counts, under the race detector
// in CI.
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(818))
	n, d := 8000, 6
	m := makeClustered(rng, n, d, 4, 0.03)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	tr, err := kdtree.Build(m.Clone(), w, 16)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.NewGaussian(8)
	sc, err := scan.NewScanner(m, w, k)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 6)
	for qi := range queries {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		queries[qi] = q
	}
	for _, workers := range []int{2, 3, 4, 8} {
		e, err := New(tr, k, WithMethod(bound.KARL), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := sc.Aggregate(q)
			tau := want * 0.9
			var first Stats
			var firstHot bool
			for rep := 0; rep < 3; rep++ {
				hot, st, err := e.Threshold(q, tau)
				if err != nil {
					t.Fatal(err)
				}
				if want < st.LB || want > st.UB {
					t.Fatalf("workers=%d: oracle %v outside [%v, %v]", workers, want, st.LB, st.UB)
				}
				if rep == 0 {
					first, firstHot = st, hot
					continue
				}
				if hot != firstHot || st.LB != first.LB || st.UB != first.UB ||
					st.Iterations != first.Iterations || st.NodesExpanded != first.NodesExpanded ||
					st.PointsScanned != first.PointsScanned {
					t.Fatalf("workers=%d: run %d diverged: %+v vs %+v", workers, rep, st, first)
				}
			}
			approx, _, err := e.Approximate(q, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if want != 0 {
				if rel := math.Abs(approx-want) / math.Abs(want); rel > 0.05+1e-9 {
					t.Fatalf("workers=%d: Approximate rel error %v", workers, rel)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialCertificates: parallel refinement may stop
// at different (tighter or equally valid) bounds than the sequential loop,
// but verdicts and approximations must satisfy the same contracts, and a
// drained queue must produce the exact answer regardless of worker count.
func TestParallelMatchesSequentialCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(819))
	n, d := 3000, 4
	m := makeClustered(rng, n, d, 3, 0.05)
	tr, err := kdtree.Build(m.Clone(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.NewGaussian(6)
	sc, err := scan.NewScanner(m, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(tr, k, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		want := sc.Aggregate(q)
		for _, tau := range []float64{want * 0.5, want * 0.99, want * 1.01, want * 2} {
			if math.Abs(want-tau) < 1e-9*(1+math.Abs(want)) {
				continue
			}
			sh, _, err := seq.Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			ph, _, err := par.Threshold(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			if sh != ph || sh != (want > tau) {
				t.Fatalf("verdicts diverged at τ=%v: seq %v par %v oracle %v", tau, sh, ph, want > tau)
			}
		}
	}
}

// TestParallelWorkersClones: cloned engines carry the worker setting and
// may run concurrently — each clone owns its scratch and pool.
func TestParallelWorkersClones(t *testing.T) {
	rng := rand.New(rand.NewSource(820))
	n, d := 4000, 5
	m := makeClustered(rng, n, d, 3, 0.04)
	tr, err := kdtree.Build(m.Clone(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tr, kernel.NewGaussian(7), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.Float64()
	}
	exact, _ := e.Exact(q)
	tau := exact * 1.05
	wantHot, wantSt, err := e.Threshold(q, tau)
	if err != nil {
		t.Fatal(err)
	}
	errClone := errors.New("clone diverged from parent")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.Clone()
			if c.f.Workers() != 4 {
				errs <- errClone
				return
			}
			for i := 0; i < 20; i++ {
				hot, st, err := c.Threshold(q, tau)
				if err != nil {
					errs <- err
					return
				}
				if hot != wantHot || st.LB != wantSt.LB || st.UB != wantSt.UB {
					errs <- errClone
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
