package core

import (
	"sync"
	"sync/atomic"
)

// Intra-query parallel refinement (Forest.SetWorkers / core.WithWorkers).
//
// The sequential loop pops ONE widest-gap entry per iteration and replaces
// its contribution with its children's. The parallel loop generalizes the
// iteration to a ROUND: the coordinator pops up to `workers` entries in
// deterministic (priority) order, hands them to a small work-stealing pool
// that expands each independently — node bounds and leaf evaluations only
// read forest state — and then merges the per-entry bound deltas back into
// the global bounds in slot order before pushing child entries, again in
// slot order. Consequences:
//
//   - Determinism: pop order, merge order and push order are all functions
//     of the queue state alone, not of goroutine scheduling, so for a
//     fixed worker count every query returns bit-identical bounds. (The
//     interleaving of pushes differs from the sequential loop's, so
//     answers can differ between worker counts within the certificate —
//     but never within one.)
//   - Single certification point: the termination condition is probed only
//     by the coordinator after a round's merge completes, never inside a
//     worker, so the certificate logic is exactly the sequential one.
//   - Workers only tighten: an expansion replaces a node's [lb,ub] with
//     the children's sum, which the bound functions guarantee is nested,
//     so every merge monotonically shrinks the global gap.
//
// The pool spawns workers-1 goroutines per refinement call (the
// coordinator steals alongside them); parallel refinement targets queries
// whose refinement runs long enough to amortize that, which is exactly
// when it is worth turning on.

// parResult carries one expansion's outcome back to the merge point.
type parResult struct {
	lb, ub float64   // summed children contributions
	push   [2]fentry // child entries to enqueue (first pushN valid)
	pushN  int
	stats  Stats // work counters, merged into the segment's stats
}

// expand replaces entry en's bound contribution with its children's,
// without touching shared mutable state: results land in res only.
func (f *Forest) expand(en fentry, res *parResult) {
	*res = parResult{}
	res.stats.Iterations = 1
	res.stats.NodesExpanded = 1
	t := f.trees[en.ti]
	right := t.Node(en.ni).Right
	left := t.Left(en.ni)
	llb, lub, lfront := f.boundEval(en.ti, left, &res.stats)
	rlb, rub, rfront := f.boundEval(en.ti, right, &res.stats)
	res.lb = llb + rlb - en.lb
	res.ub = lub + rub - en.ub
	if !lfront {
		res.push[res.pushN] = fentry{en.ti, left, llb, lub}
		res.pushN++
	}
	if !rfront {
		res.push[res.pushN] = fentry{en.ti, right, rlb, rub}
		res.pushN++
	}
}

// refinePar continues refinement from the scored roots using round-based
// parallel expansion. The queue and global bounds have been initialized by
// refine; rounds run until the termination condition holds or the queue
// drains (bounds exact).
func (f *Forest) refinePar(lb, ub float64, cond *termCond) (float64, float64) {
	if cap(f.parTasks) < f.workers {
		f.parTasks = make([]fentry, 0, f.workers)
		f.parRes = make([]parResult, f.workers)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		started bool
		roundCh chan struct{}
		doneCh  chan struct{}
	)
	drain := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= len(f.parTasks) {
				return
			}
			f.expand(f.parTasks[i], &f.parRes[i])
		}
	}
	defer func() {
		if started {
			close(roundCh)
			<-doneCh
		}
	}()
	for !cond.done(lb, ub) {
		// Pop this round's batch in priority order. A thin queue yields a
		// short round — still correct, just less parallel.
		f.parTasks = f.parTasks[:0]
		for len(f.parTasks) < f.workers {
			en, _, ok := f.queue.Pop()
			if !ok {
				break
			}
			f.parTasks = append(f.parTasks, en)
		}
		if len(f.parTasks) == 0 {
			return lb, ub // bounds are exact
		}
		next.Store(0)
		if len(f.parTasks) > 1 {
			if !started {
				// Lazy pool start: workers-1 helpers, each waking once per
				// round; the coordinator drains alongside them.
				started = true
				roundCh = make(chan struct{})
				doneCh = make(chan struct{})
				var alive sync.WaitGroup
				for w := 1; w < f.workers; w++ {
					alive.Add(1)
					go func() {
						defer alive.Done()
						for range roundCh {
							drain()
							wg.Done()
						}
					}()
				}
				go func() { alive.Wait(); close(doneCh) }()
			}
			wg.Add(f.workers - 1)
			for w := 1; w < f.workers; w++ {
				roundCh <- struct{}{}
			}
			drain()
			wg.Wait()
		} else {
			drain()
		}
		// Merge point: apply deltas and push children in slot order — the
		// only writer of bounds, queue and stats is this goroutine.
		for i := range f.parTasks {
			res := &f.parRes[i]
			lb += res.lb
			ub += res.ub
			st := &f.segStats[f.parTasks[i].ti]
			st.Iterations += res.stats.Iterations
			st.NodesExpanded += res.stats.NodesExpanded
			st.PointsScanned += res.stats.PointsScanned
			for p := 0; p < res.pushN; p++ {
				en := res.push[p]
				f.queue.Push(en, en.ub-en.lb)
			}
		}
	}
	return lb, ub
}
