// Package vptree builds a vantage-point tree (Yianilos/Uhlmann metric
// tree) as a third index structure beyond the paper's kd-tree and
// ball-tree pair. Each node picks a vantage point, splits its points at
// the median distance to it, and is bounded by the spherical annulus
// (geom.Shell) of its distance range — often tighter than a centroid ball
// on ring- or shell-shaped data such as SVM support vectors. Nodes are
// emitted directly into the flat DFS-preorder array of index.Tree; the
// point matrix is reordered into leaf order when the build finishes.
package vptree

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

// Build constructs a vp-tree over points with the given per-point weights
// (nil for unit weights) and leaf capacity. The input matrix is read during
// construction but not retained: the tree owns a leaf-ordered copy.
func Build(points *vec.Matrix, weights []float64, leafCap int) (*index.Tree, error) {
	if points == nil || points.Rows == 0 {
		return nil, fmt.Errorf("vptree: empty point set")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("vptree: leaf capacity must be >= 1, got %d", leafCap)
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("vptree: %d weights for %d points", len(weights), points.Rows)
	}
	t := &index.Tree{
		Kind:    index.VPTree,
		Points:  points,
		Weights: weights,
		LeafCap: leafCap,
	}
	b := builder{t: t, pts: points, idx: make([]int, points.Rows), dists: make([]float64, points.Rows)}
	for i := range b.idx {
		b.idx[i] = i
	}
	b.build(0, points.Rows, 0)
	t.Finish(b.idx)
	return t, nil
}

type builder struct {
	t     *index.Tree
	pts   *vec.Matrix
	idx   []int     // working permutation: position -> original row
	dists []float64 // scratch: distance of idx[i] to the current vantage
}

// build emits the subtree over idx[start:end) in DFS preorder and returns
// the position of its root node.
func (b *builder) build(start, end, depth int) int32 {
	// Vantage point: the first point of the range (ranges are reshuffled by
	// parent splits, so this is effectively arbitrary and deterministic).
	vp := b.pts.Row(b.idx[start])
	shell := geom.BoundRowsShell(vp, b.pts, b.idx, start, end)
	ni := b.t.AppendNode(shell, start, end, depth)
	if end-start <= b.t.LeafCap || shell.RMax == shell.RMin {
		// Leaf, or all points equidistant from the vantage (duplicates or a
		// perfect sphere) — the median split cannot separate them.
		return ni
	}
	for i := start; i < end; i++ {
		b.dists[i] = vec.Dist2(vp, b.pts.Row(b.idx[i]))
	}
	mid := (start + end) / 2
	b.selectNth(start, end, mid)
	if b.dists[mid-1] == b.dists[mid] {
		// Median ties: nudge the boundary so both sides are non-empty and
		// strictly partitioned by distance where possible.
		lo, hi := mid, mid
		for lo > start+1 && b.dists[lo-1] == b.dists[mid] {
			lo--
		}
		for hi < end-1 && b.dists[hi] == b.dists[mid] {
			hi++
		}
		if hi < end-1 {
			mid = hi
		} else if lo > start+1 {
			mid = lo
		} else {
			return ni // all distances equal; keep as oversized leaf
		}
	}
	b.build(start, mid, depth+1)
	right := b.build(mid, end, depth+1)
	b.t.SetRight(ni, right)
	return ni
}

// selectNth partially sorts idx[start:end) (and the parallel dists) so the
// element at nth is in sorted position by distance.
func (b *builder) selectNth(start, end, nth int) {
	idx, dists := b.idx, b.dists
	lo, hi := start, end-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if dists[mid] < dists[lo] {
			dists[mid], dists[lo] = dists[lo], dists[mid]
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if dists[hi] < dists[lo] {
			dists[hi], dists[lo] = dists[lo], dists[hi]
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if dists[hi] < dists[mid] {
			dists[hi], dists[mid] = dists[mid], dists[hi]
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		pivot := dists[mid]
		i, j := lo, hi
		for i <= j {
			for dists[i] < pivot {
				i++
			}
			for dists[j] > pivot {
				j--
			}
			if i <= j {
				dists[i], dists[j] = dists[j], dists[i]
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}
