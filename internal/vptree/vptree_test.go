package vptree

import (
	"math/rand"
	"testing"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, nil, 4); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Build(vec.NewMatrix(3, 2), nil, 0); err == nil {
		t.Fatal("leafCap=0 accepted")
	}
	if _, err := Build(vec.NewMatrix(3, 2), []float64{1}, 2); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	m := vec.FromRows([][]float64{{1, 2}})
	tr, err := Build(m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() || tr.Kind != index.VPTree {
		t.Fatal("unexpected single-point structure")
	}
	sh := tr.Root().Vol.(*geom.Shell)
	if sh.RMin != 0 || sh.RMax != 0 {
		t.Fatalf("degenerate shell = [%v,%v]", sh.RMin, sh.RMax)
	}
}

func TestBuildDuplicatesTerminate(t *testing.T) {
	m := vec.NewMatrix(64, 3)
	for i := 0; i < 64; i++ {
		copy(m.Row(i), []float64{2, 2, 2})
	}
	tr, err := Build(m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() {
		t.Fatal("duplicate points should form one oversized leaf")
	}
}

func TestBuildEquidistantSphere(t *testing.T) {
	// Points on a perfect circle around the first point's position cannot
	// be median-split by distance; construction must still terminate.
	m := vec.NewMatrix(33, 2)
	// First point at origin (becomes the vantage).
	for i := 1; i < 33; i++ {
		angle := float64(i) * 0.2
		m.Row(i)[0] = cos(angle)
		m.Row(i)[1] = sin(angle)
	}
	if _, err := Build(m, nil, 4); err != nil {
		t.Fatal(err)
	}
}

func cos(x float64) float64 { return 1 - x*x/2 + x*x*x*x/24 } // crude but fine for the test
func sin(x float64) float64 { return x - x*x*x/6 }

func TestBuildStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(400)
		d := 1 + rng.Intn(6)
		leafCap := 1 + rng.Intn(24)
		m := randMatrix(rng, n, d)
		var w []float64
		if trial%2 == 0 {
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		tr, err := Build(m, w, leafCap)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Root().Pos.Count+tr.Root().Neg.Count != n {
			t.Fatalf("trial %d: aggregates cover %d of %d",
				trial, tr.Root().Pos.Count+tr.Root().Neg.Count, n)
		}
	}
}

func TestShellsArePartitionedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m := randMatrix(rng, 512, 3)
	tr, err := Build(m, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	for ni := range tr.Nodes {
		n := tr.Node(int32(ni))
		if n.IsLeaf() {
			continue
		}
		// Relative to the parent's vantage point (its shell center), every
		// left-child point must be at least as close as every right-child
		// point — the median-split invariant, preserved under the
		// children's own reordering because it is a set property. Points are
		// stored leaf-contiguously, so child ranges index the matrix directly.
		vp := n.Vol.(*geom.Shell).Center
		left, right := tr.Node(tr.Left(int32(ni))), tr.Node(n.Right)
		var leftMax float64
		for i := int(left.Start); i < int(left.End); i++ {
			if d := vec.Dist(vp, tr.Points.Row(i)); d > leftMax {
				leftMax = d
			}
		}
		rightMin := vec.Dist(vp, tr.Points.Row(int(right.Start)))
		for i := int(right.Start); i < int(right.End); i++ {
			if d := vec.Dist(vp, tr.Points.Row(i)); d < rightMin {
				rightMin = d
			}
		}
		if leftMax > rightMin+1e-9 {
			t.Fatalf("split violated: left max %v > right min %v", leftMax, rightMin)
		}
	}
}
