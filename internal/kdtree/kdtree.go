// Package kdtree builds the kd-tree variant of KARL's hierarchical index
// (Section II-B, Figure 2): widest-dimension median splits, axis-aligned
// bounding rectangles recomputed from the actual points, and per-node
// weighted aggregates for O(d) bound evaluation.
package kdtree

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

// Build constructs a kd-tree over points with the given per-point weights
// (nil for unit weights) and leaf capacity. The matrix is referenced, not
// copied. leafCap < 1 is an error; weights, when present, must match the
// point count.
func Build(points *vec.Matrix, weights []float64, leafCap int) (*index.Tree, error) {
	if points == nil || points.Rows == 0 {
		return nil, fmt.Errorf("kdtree: empty point set")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("kdtree: leaf capacity must be >= 1, got %d", leafCap)
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("kdtree: %d weights for %d points", len(weights), points.Rows)
	}
	t := &index.Tree{
		Kind:    index.KDTree,
		Points:  points,
		Weights: weights,
		Idx:     make([]int, points.Rows),
		LeafCap: leafCap,
	}
	for i := range t.Idx {
		t.Idx[i] = i
	}
	b := builder{t: t}
	t.Root = b.build(0, points.Rows, 0)
	t.Height = b.height
	t.Nodes = b.nodes
	t.ComputeAggregates()
	return t, nil
}

type builder struct {
	t      *index.Tree
	height int
	nodes  int
}

func (b *builder) build(start, end, depth int) *index.Node {
	b.nodes++
	if depth+1 > b.height {
		b.height = depth + 1
	}
	t := b.t
	rect := geom.BoundRows(t.Points, t.Idx, start, end)
	n := &index.Node{Vol: rect, Start: start, End: end, Depth: depth}
	if end-start <= t.LeafCap {
		return n
	}
	dim, width := rect.WidestDim()
	if width == 0 {
		// All points identical in every dimension; splitting cannot make
		// progress, so keep an oversized leaf.
		return n
	}
	mid := (start + end) / 2
	b.selectNth(start, end, mid, dim)
	// Guard against a degenerate partition when many coordinates equal the
	// median: ensure both sides are non-empty (selectNth already guarantees
	// mid strictly inside (start,end)).
	n.Left = b.build(start, mid, depth+1)
	n.Right = b.build(mid, end, depth+1)
	return n
}

// selectNth partially sorts idx[start:end) by the given coordinate so that
// the element at position nth is in its sorted place (quickselect with
// median-of-three pivots).
func (b *builder) selectNth(start, end, nth, dim int) {
	t := b.t
	key := func(i int) float64 { return t.Points.Row(t.Idx[i])[dim] }
	lo, hi := start, end-1
	for lo < hi {
		// Median-of-three pivot selection for resilience to sorted inputs.
		mid := lo + (hi-lo)/2
		if key(mid) < key(lo) {
			t.Idx[mid], t.Idx[lo] = t.Idx[lo], t.Idx[mid]
		}
		if key(hi) < key(lo) {
			t.Idx[hi], t.Idx[lo] = t.Idx[lo], t.Idx[hi]
		}
		if key(hi) < key(mid) {
			t.Idx[hi], t.Idx[mid] = t.Idx[mid], t.Idx[hi]
		}
		pivot := key(mid)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				t.Idx[i], t.Idx[j] = t.Idx[j], t.Idx[i]
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}
