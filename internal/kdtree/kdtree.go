// Package kdtree builds the kd-tree variant of KARL's hierarchical index
// (Section II-B, Figure 2): widest-dimension median splits, axis-aligned
// bounding rectangles recomputed from the actual points, and per-node
// weighted aggregates for O(d) bound evaluation. Nodes are emitted directly
// into the flat DFS-preorder array of index.Tree; the point matrix is
// reordered into leaf order when the build finishes.
package kdtree

import (
	"fmt"

	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/vec"
)

// Build constructs a kd-tree over points with the given per-point weights
// (nil for unit weights) and leaf capacity. The input matrix is read during
// construction but not retained: the tree owns a leaf-ordered copy.
// leafCap < 1 is an error; weights, when present, must match the point
// count.
func Build(points *vec.Matrix, weights []float64, leafCap int) (*index.Tree, error) {
	if points == nil || points.Rows == 0 {
		return nil, fmt.Errorf("kdtree: empty point set")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("kdtree: leaf capacity must be >= 1, got %d", leafCap)
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("kdtree: %d weights for %d points", len(weights), points.Rows)
	}
	t := &index.Tree{
		Kind:    index.KDTree,
		Points:  points,
		Weights: weights,
		LeafCap: leafCap,
	}
	b := builder{t: t, pts: points, idx: make([]int, points.Rows)}
	for i := range b.idx {
		b.idx[i] = i
	}
	b.build(0, points.Rows, 0)
	t.Finish(b.idx)
	return t, nil
}

type builder struct {
	t   *index.Tree
	pts *vec.Matrix
	idx []int // working permutation: position -> original row
}

// build emits the subtree over idx[start:end) in DFS preorder and returns
// the position of its root node.
func (b *builder) build(start, end, depth int) int32 {
	rect := geom.BoundRows(b.pts, b.idx, start, end)
	ni := b.t.AppendNode(rect, start, end, depth)
	if end-start <= b.t.LeafCap {
		return ni
	}
	dim, width := rect.WidestDim()
	if width == 0 {
		// All points identical in every dimension; splitting cannot make
		// progress, so keep an oversized leaf.
		return ni
	}
	mid := (start + end) / 2
	b.selectNth(start, end, mid, dim)
	// Guard against a degenerate partition when many coordinates equal the
	// median: ensure both sides are non-empty (selectNth already guarantees
	// mid strictly inside (start,end)).
	b.build(start, mid, depth+1)
	right := b.build(mid, end, depth+1)
	b.t.SetRight(ni, right)
	return ni
}

// selectNth partially sorts idx[start:end) by the given coordinate so that
// the element at position nth is in its sorted place (quickselect with
// median-of-three pivots).
func (b *builder) selectNth(start, end, nth, dim int) {
	idx := b.idx
	key := func(i int) float64 { return b.pts.Row(idx[i])[dim] }
	lo, hi := start, end-1
	for lo < hi {
		// Median-of-three pivot selection for resilience to sorted inputs.
		mid := lo + (hi-lo)/2
		if key(mid) < key(lo) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if key(hi) < key(lo) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if key(hi) < key(mid) {
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		pivot := key(mid)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}
