package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/index"
	"karl/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, nil, 4); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Build(vec.NewMatrix(0, 3), nil, 4); err == nil {
		t.Fatal("empty matrix accepted")
	}
	m := vec.NewMatrix(5, 2)
	if _, err := Build(m, nil, 0); err == nil {
		t.Fatal("leafCap=0 accepted")
	}
	if _, err := Build(m, []float64{1, 2}, 4); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	m := vec.FromRows([][]float64{{1, 2, 3}})
	tr, err := Build(m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() || tr.Height != 1 || tr.NodeCount() != 1 {
		t.Fatalf("single point tree: height=%d nodes=%d", tr.Height, tr.NodeCount())
	}
	if err := tr.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAllDuplicates(t *testing.T) {
	m := vec.NewMatrix(100, 3)
	for i := 0; i < 100; i++ {
		copy(m.Row(i), []float64{1, 1, 1})
	}
	tr, err := Build(m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates cannot be split: one oversized leaf, no infinite recursion.
	if !tr.Root().IsLeaf() {
		t.Fatal("expected a single oversized leaf for duplicate points")
	}
	if err := tr.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestBuildStructureAndAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(400)
		d := 1 + rng.Intn(8)
		leafCap := 1 + rng.Intn(32)
		m := randMatrix(rng, n, d)
		var w []float64
		if trial%2 == 0 {
			w = make([]float64, n)
			for i := range w {
				w[i] = rng.NormFloat64() // mixed signs exercise Pos/Neg
			}
		}
		tr, err := Build(m, w, leafCap)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkLeafCaps(t, tr)
		checkRootAggregates(t, tr)
	}
}

// checkLeafCaps verifies every leaf holds at most LeafCap points unless it
// is a degenerate duplicate-point leaf.
func checkLeafCaps(t *testing.T, tr *index.Tree) {
	t.Helper()
	tr.Walk(func(n *index.Node) {
		if !n.IsLeaf() {
			return
		}
		if n.Count() > tr.LeafCap {
			// Permitted only when the node has zero width (duplicates).
			first := tr.Points.Row(int(n.Start))
			for i := int(n.Start) + 1; i < int(n.End); i++ {
				if !vec.Equal(first, tr.Points.Row(i), 0) {
					t.Fatalf("oversized leaf with %d distinct points (cap %d)", n.Count(), tr.LeafCap)
				}
			}
		}
	})
}

// checkRootAggregates verifies the root aggregates equal the brute-force
// sums over the full point set.
func checkRootAggregates(t *testing.T, tr *index.Tree) {
	t.Helper()
	var posW, posB, negW, negB float64
	posA := make([]float64, tr.Dims())
	negA := make([]float64, tr.Dims())
	var posCount, negCount int
	for i := 0; i < tr.Len(); i++ {
		w := tr.Weight(i)
		p := tr.Points.Row(i)
		if w >= 0 {
			posCount++
			posW += w
			vec.Axpy(posA, w, p)
			posB += w * vec.Norm2(p)
		} else {
			negCount++
			negW += -w
			vec.Axpy(negA, -w, p)
			negB += -w * vec.Norm2(p)
		}
	}
	r := tr.Root()
	if r.Pos.Count != posCount || r.Neg.Count != negCount {
		t.Fatalf("root counts %d/%d want %d/%d", r.Pos.Count, r.Neg.Count, posCount, negCount)
	}
	tol := 1e-9 * (1 + math.Abs(posB) + math.Abs(negB))
	if math.Abs(r.Pos.W-posW) > tol || math.Abs(r.Pos.B-posB) > tol {
		t.Fatalf("root Pos W/B mismatch")
	}
	if posCount > 0 && !vec.Equal(r.Pos.A, posA, tol) {
		t.Fatalf("root Pos.A mismatch: %v vs %v", r.Pos.A, posA)
	}
	if negCount > 0 && (math.Abs(r.Neg.W-negW) > tol || !vec.Equal(r.Neg.A, negA, tol)) {
		t.Fatalf("root Neg mismatch")
	}
}

func TestMedianSplitBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := randMatrix(rng, 1024, 4)
	tr, err := Build(m, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With n=1024 and leafCap=1, median splits give height exactly 11.
	if tr.Height != 11 {
		t.Fatalf("height = %d want 11", tr.Height)
	}
	// Every internal node splits exactly in half (even counts).
	for i := range tr.Nodes {
		n := tr.Node(int32(i))
		if n.IsLeaf() {
			continue
		}
		l, r := tr.Node(tr.Left(int32(i))).Count(), tr.Node(n.Right).Count()
		if l != r && l != r+1 && r != l+1 {
			t.Fatalf("unbalanced split %d/%d", l, r)
		}
	}
}

func TestHeightShrinksWithLeafCap(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := randMatrix(rng, 500, 3)
	t1, _ := Build(m.Clone(), nil, 1)
	t64, _ := Build(m.Clone(), nil, 64)
	if t64.Height >= t1.Height {
		t.Fatalf("leafCap=64 height %d should be < leafCap=1 height %d", t64.Height, t1.Height)
	}
}

func TestPointsCopiedLeafOrdered(t *testing.T) {
	m := vec.FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	orig := m.Clone()
	tr, err := Build(m, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Points == m {
		t.Fatal("Build must copy the matrix into leaf order, not alias it")
	}
	for i := 0; i < m.Rows; i++ {
		if !vec.Equal(m.Row(i), orig.Row(i), 0) {
			t.Fatal("Build mutated the input matrix")
		}
		if !vec.Equal(tr.Points.Row(i), m.Row(int(tr.PointID[i])), 0) {
			t.Fatalf("storage row %d does not match original row %d", i, tr.PointID[i])
		}
	}
}
