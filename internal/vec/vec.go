// Package vec provides the dense-vector primitives used throughout KARL:
// squared Euclidean distances, dot products, norms and a handful of in-place
// update helpers. All functions operate on []float64 slices of equal length
// and panic on dimension mismatch, mirroring the contract of the rest of the
// library (dimensions are fixed at dataset-build time).
package vec

import (
	"fmt"
	"math"
)

// checkLen panics when two vectors disagree in length. The engine validates
// query dimensionality once per query, so this is a programming-error guard,
// not an input-validation path.
func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// Dot returns the inner product a·b. The loop is 4-way unrolled with
// independent accumulators so the multiplies pipeline instead of serializing
// on one running sum — this is the innermost operation of every fused leaf
// scan and every O(d) bound evaluation.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the squared Euclidean norm ‖a‖².
func Norm2(a []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
		s2 += a[i+2] * a[i+2]
		s3 += a[i+3] * a[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * a[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean norm ‖a‖.
func Norm(a []float64) float64 { return math.Sqrt(Norm2(a)) }

// Dist2 returns the squared Euclidean distance ‖a−b‖², 4-way unrolled like
// Dot.
func Dist2(a, b []float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Dist returns the Euclidean distance ‖a−b‖.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// Add returns a new vector a+b.
func Add(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av + b[i]
	}
	return out
}

// Sub returns a new vector a−b.
func Sub(a, b []float64) []float64 {
	checkLen(a, b)
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av - b[i]
	}
	return out
}

// Scale returns a new vector s·a.
func Scale(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = s * av
	}
	return out
}

// AddTo accumulates src into dst in place: dst += src.
func AddTo(dst, src []float64) {
	checkLen(dst, src)
	for i, sv := range src {
		dst[i] += sv
	}
}

// Axpy computes dst += s·src in place, 4-way unrolled.
func Axpy(dst []float64, s float64, src []float64) {
	checkLen(dst, src)
	src = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += s * src[i]
		dst[i+1] += s * src[i+1]
		dst[i+2] += s * src[i+2]
		dst[i+3] += s * src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += s * src[i]
	}
}

// ScaleTo scales dst in place: dst *= s.
func ScaleTo(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Equal reports whether a and b are element-wise within tol of each other.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if math.Abs(av-b[i]) > tol {
			return false
		}
	}
	return true
}

// Mean returns the element-wise mean of the rows. It panics on an empty
// input.
func Mean(rows [][]float64) []float64 {
	if len(rows) == 0 {
		panic("vec: mean of empty set")
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		AddTo(out, r)
	}
	ScaleTo(out, 1/float64(len(rows)))
	return out
}

// Matrix is a dense row-major matrix backing a point set. Points are stored
// contiguously so tree nodes can refer to contiguous index ranges.
type Matrix struct {
	Data []float64 // len == Rows*Cols
	Rows int
	Cols int
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// FromRows copies a slice of rows into a new matrix. All rows must share one
// length; an empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("vec: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ColumnStats returns the per-column mean and standard deviation (population
// formula). Used by Scott's rule and by normalization.
func (m *Matrix) ColumnStats() (mean, std []float64) {
	mean = make([]float64, m.Cols)
	std = make([]float64, m.Cols)
	if m.Rows == 0 {
		return mean, std
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			mean[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range mean {
		mean[j] *= inv
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] * inv)
	}
	return mean, std
}

// NormalizeUnit rescales every column into [lo, hi] in place and reports the
// original per-column min/max. Constant columns map to lo.
func (m *Matrix) NormalizeUnit(lo, hi float64) (mins, maxs []float64) {
	mins = make([]float64, m.Cols)
	maxs = make([]float64, m.Cols)
	for j := range mins {
		mins[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			span := maxs[j] - mins[j]
			if span <= 0 {
				r[j] = lo
				continue
			}
			r[j] = lo + (hi-lo)*(v-mins[j])/span
		}
	}
	return mins, maxs
}
