package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refDot32 is the float64 reference for Dot32: the exact (to double
// precision) inner product of the float32 inputs. The unrolled float32
// sum may differ from it by at most the classic n·eps32 accumulation
// bound over the absolute sum.
func refDot32(a, b []float32) (v, absSum float64) {
	for i := range a {
		p := float64(a[i]) * float64(b[i])
		v += p
		absSum += math.Abs(p)
	}
	return v, absSum
}

// TestDot32Quick cross-checks the unrolled float32 dot product against a
// float64 reference over random vectors of random lengths: the error must
// stay within the (n+2)·2⁻²⁴ accumulation bound on the absolute sum —
// about one float32 ulp per accumulated term.
func TestDot32Quick(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(67)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		want, absSum := refDot32(a, b)
		got := float64(Dot32(a, b))
		tol := float64(n+2) * 0x1p-24 * (absSum + 1e-30)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: Dot32 = %v, reference %v (Δ %v > tol %v)", n, got, want, got-want, tol)
		}
	}
}

// TestNorm232Quick is the same cross-check for the squared norm, plus the
// invariant that a squared norm is never negative.
func TestNorm232Quick(t *testing.T) {
	f := func(raw []float64) bool {
		a := make([]float32, len(raw))
		for i, v := range raw {
			a[i] = float32(math.Remainder(v, 1e3)) // keep magnitudes sane
		}
		var want, absSum float64
		for _, v := range a {
			p := float64(v) * float64(v)
			want += p
			absSum += p
		}
		got := float64(Norm232(a))
		if got < 0 {
			return false
		}
		tol := float64(len(a)+2) * 0x1p-24 * (absSum + 1e-30)
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(809))}); err != nil {
		t.Fatal(err)
	}
}

// TestDot32MismatchPanics pins the dimension contract shared with Dot.
func TestDot32MismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot32(make([]float32, 3), make([]float32, 4))
}

// TestBlock32Layout verifies the tiled layout contract end to end: every
// (row, col) lands at Data[t·8·Cols + j·8 + l], pad lanes of the final
// partial tile are zero, the conversion is round-to-nearest (bitwise equal
// to float32(v)), and MaxNorm2 is the double-precision maximum row norm.
func TestBlock32Layout(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	for _, rows := range []int{1, 7, 8, 9, 16, 23, 64} {
		for _, cols := range []int{1, 3, 5} {
			m := NewMatrix(rows, cols)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64() * 3
			}
			b := NewBlock32(m)
			if b.Rows != rows || b.Cols != cols {
				t.Fatalf("%dx%d: block shape %dx%d", rows, cols, b.Rows, b.Cols)
			}
			tiles := (rows + TileRows - 1) / TileRows
			if len(b.Data) != tiles*TileRows*cols {
				t.Fatalf("%dx%d: data length %d, want %d", rows, cols, len(b.Data), tiles*TileRows*cols)
			}
			wantMax := 0.0
			for r := 0; r < rows; r++ {
				n2 := Norm2(m.Row(r))
				if n2 > wantMax {
					wantMax = n2
				}
				for j := 0; j < cols; j++ {
					if got, want := b.At(r, j), float32(m.Row(r)[j]); got != want {
						t.Fatalf("%dx%d: At(%d,%d) = %v, want %v", rows, cols, r, j, got, want)
					}
				}
			}
			if b.MaxNorm2 != wantMax {
				t.Fatalf("%dx%d: MaxNorm2 = %v, want %v", rows, cols, b.MaxNorm2, wantMax)
			}
			// Pad lanes: rows ≥ Rows inside the last tile must read zero in
			// every coordinate.
			for r := rows; r < tiles*TileRows; r++ {
				for j := 0; j < cols; j++ {
					if v := b.Data[(r/TileRows)*TileRows*cols+j*TileRows+r%TileRows]; v != 0 {
						t.Fatalf("%dx%d: pad lane (%d,%d) = %v, want 0", rows, cols, r, j, v)
					}
				}
			}
			// Determinism: rebuilding from the same matrix is bitwise equal.
			b2 := NewBlock32(m)
			for i := range b.Data {
				if b.Data[i] != b2.Data[i] {
					t.Fatalf("%dx%d: rebuild differs at %d", rows, cols, i)
				}
			}
		}
	}
}
