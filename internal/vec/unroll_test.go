package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The hot-path kernels (Dot, Norm2, Dist2, Axpy) are 4-way unrolled with
// independent accumulators, so their summation order differs from the naive
// loop. These property tests pin them to straightforward references across
// lengths that exercise every remainder branch: empty, d=1, d<4, d%4 ∈
// {0,1,2,3} and long vectors.

func naiveDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveNorm2(a []float64) float64 { return naiveDot(a, a) }

func naiveDist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// pairFromSeed derives two deterministic vectors of the given length; quick
// drives the (seed, length) space.
func pairFromSeed(seed int64, n int) (a, b []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64() * 10
		b[i] = rng.NormFloat64() * 10
	}
	return a, b
}

func relClose(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		a, b := pairFromSeed(seed, int(nRaw))
		return relClose(Dot(a, b), naiveDot(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2MatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		a, _ := pairFromSeed(seed, int(nRaw))
		return relClose(Norm2(a), naiveNorm2(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDist2MatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		a, b := pairFromSeed(seed, int(nRaw))
		return relClose(Dist2(a, b), naiveDist2(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8, alphaRaw float64) bool {
		alpha := math.Mod(alphaRaw, 100)
		x, dst := pairFromSeed(seed, int(nRaw))
		want := append([]float64(nil), dst...)
		for i := range want {
			want[i] += alpha * x[i]
		}
		Axpy(dst, alpha, x)
		for i := range dst {
			if !relClose(dst[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnrollRemainderLengths hits every remainder branch explicitly — the
// quick tests above cover them probabilistically, this pins them.
func TestUnrollRemainderLengths(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17} {
		a, b := pairFromSeed(int64(n)+1, n)
		if got, want := Dot(a, b), naiveDot(a, b); !relClose(got, want) {
			t.Fatalf("Dot len %d: %v want %v", n, got, want)
		}
		if got, want := Norm2(a), naiveNorm2(a); !relClose(got, want) {
			t.Fatalf("Norm2 len %d: %v want %v", n, got, want)
		}
		if got, want := Dist2(a, b), naiveDist2(a, b); !relClose(got, want) {
			t.Fatalf("Dist2 len %d: %v want %v", n, got, want)
		}
	}
}
