package vec

import "fmt"

// This file holds the float32 primitives behind the blocked-leaf fast
// path: 4-way unrolled dot/norm kernels mirroring their float64
// counterparts, and Block32, the tiled single-precision mirror of a
// row-major matrix that leaf scans stream through.

// checkLen32 panics when two float32 vectors disagree in length.
func checkLen32(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// Dot32 returns the inner product a·b in float32 arithmetic, 4-way
// unrolled with independent accumulators like Dot.
func Dot32(a, b []float32) float32 {
	checkLen32(a, b)
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm232 returns the squared Euclidean norm ‖a‖² in float32 arithmetic.
func Norm232(a []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
		s2 += a[i+2] * a[i+2]
		s3 += a[i+3] * a[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * a[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// TileRows is the row count of one Block32 tile. Eight float32 lanes fill
// two 16-byte SSE registers (one AVX register), and the lane-major layout
// below makes the tile inner loop a contiguous stream of independent
// multiply-adds.
const TileRows = 8

// Block32 is the tiled float32 mirror of a row-major float64 matrix.
// Rows are grouped into tiles of TileRows; within tile t, coordinate j of
// lane l (global row t·TileRows+l) lives at
//
//	Data[t·TileRows·Cols + j·TileRows + l]
//
// i.e. each tile is stored coordinate-major, so evaluating one query
// coordinate against all eight rows of a tile touches eight contiguous
// floats. Pad lanes of the final partial tile are zero-filled.
//
// MaxNorm2 is the maximum double-precision ‖p‖² over the source rows; the
// kernel layer uses it to bound the scalar range of dot-product kernels
// when computing the float32 rounding slack.
type Block32 struct {
	Data     []float32
	Rows     int
	Cols     int
	MaxNorm2 float64
}

// NewBlock32 converts a matrix into its tiled float32 mirror. The
// float64→float32 conversion is deterministic (round to nearest even), so
// rebuilding a block from the same matrix reproduces it bitwise.
func NewBlock32(m *Matrix) *Block32 {
	tiles := (m.Rows + TileRows - 1) / TileRows
	b := &Block32{
		Data: make([]float32, tiles*TileRows*m.Cols),
		Rows: m.Rows,
		Cols: m.Cols,
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		off := (r/TileRows)*TileRows*m.Cols + r%TileRows
		n2 := Norm2(row)
		if n2 > b.MaxNorm2 {
			b.MaxNorm2 = n2
		}
		for j, v := range row {
			b.Data[off+j*TileRows] = float32(v)
		}
	}
	return b
}

// At returns the float32 coordinate j of row r (test/verification helper;
// hot paths index Data directly).
func (b *Block32) At(r, j int) float32 {
	return b.Data[(r/TileRows)*TileRows*b.Cols+j*TileRows+r%TileRows]
}
