package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm2(v); got != 25 {
		t.Fatalf("Norm2 = %v, want 25", got)
	}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestDist(t *testing.T) {
	a := []float64{1, 1}
	b := []float64{4, 5}
	if got := Dist2(a, b); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestDist2ExpansionIdentity(t *testing.T) {
	// ‖a−b‖² == ‖a‖² − 2a·b + ‖b‖² — the identity behind Lemma 2's O(d)
	// bound evaluation, so it must hold to high precision.
	f := func(a, b [8]float64) bool {
		as, bs := make([]float64, 8), make([]float64, 8)
		for i := range as {
			// Fold quick's full-float64-range values into a modest range
			// so squares cannot overflow.
			as[i] = math.Mod(a[i], 1e3)
			bs[i] = math.Mod(b[i], 1e3)
		}
		lhs := Dist2(as, bs)
		rhs := Norm2(as) - 2*Dot(as, bs) + Norm2(bs)
		return almostEq(lhs, rhs, 1e-9*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); !Equal(got, []float64{4, 7}, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, []float64{2, 3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); !Equal(got, []float64{2, 4}, 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	dst := []float64{1, 1, 1}
	AddTo(dst, []float64{1, 2, 3})
	if !Equal(dst, []float64{2, 3, 4}, 0) {
		t.Fatalf("AddTo = %v", dst)
	}
	Axpy(dst, 2, []float64{1, 1, 1})
	if !Equal(dst, []float64{4, 5, 6}, 0) {
		t.Fatalf("Axpy = %v", dst)
	}
	ScaleTo(dst, 0.5)
	if !Equal(dst, []float64{2, 2.5, 3}, 0) {
		t.Fatalf("ScaleTo = %v", dst)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{0, 2}, {2, 4}})
	if !Equal(m, []float64{1, 3}, 0) {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(nil)
}

func TestMatrixRowsAndSwap(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	m.SwapRows(0, 2)
	if !Equal(m.Row(0), []float64{5, 6}, 0) || !Equal(m.Row(2), []float64{1, 2}, 0) {
		t.Fatalf("SwapRows failed: %v %v", m.Row(0), m.Row(2))
	}
	m.SwapRows(1, 1) // no-op must be safe
	if !Equal(m.Row(1), []float64{3, 4}, 0) {
		t.Fatalf("self-swap corrupted row: %v", m.Row(1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Row(0)[0] = 42
	if m.Row(0)[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestColumnStats(t *testing.T) {
	m := FromRows([][]float64{{0, 10}, {2, 10}, {4, 10}})
	mean, std := m.ColumnStats()
	if !Equal(mean, []float64{2, 10}, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	wantStd := math.Sqrt((4.0 + 0 + 4.0) / 3.0)
	if !almostEq(std[0], wantStd, 1e-12) || std[1] != 0 {
		t.Fatalf("std = %v", std)
	}
}

func TestNormalizeUnit(t *testing.T) {
	m := FromRows([][]float64{{0, 5}, {10, 5}})
	mins, maxs := m.NormalizeUnit(-1, 1)
	if mins[0] != 0 || maxs[0] != 10 {
		t.Fatalf("min/max = %v %v", mins, maxs)
	}
	if !Equal(m.Row(0), []float64{-1, -1}, 0) || !Equal(m.Row(1), []float64{1, -1}, 0) {
		t.Fatalf("normalized rows = %v %v", m.Row(0), m.Row(1))
	}
}

func TestNormalizeUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(50, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 100
	}
	m.NormalizeUnit(0, 1)
	for _, v := range m.Data {
		if v < 0 || v > 1 {
			t.Fatalf("value %v outside [0,1]", v)
		}
	}
}

func BenchmarkDist2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 64
	x := make([]float64, d)
	y := make([]float64, d)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dist2(x, y)
	}
	_ = sink
}
