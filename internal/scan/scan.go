// Package scan provides the two non-indexed baselines of the paper's
// evaluation (Section V-A2): SCAN, the dense sequential evaluator that
// computes F_P(q) with no pruning, and a LIBSVM-style evaluator that stores
// points in sparse format and exploits sparsity during the dot-product /
// distance computations, as LibSVM does for its decision function.
package scan

import (
	"errors"
	"fmt"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// Scanner evaluates kernel aggregation queries by a full pass over the
// point set — the reference implementation every indexed method is checked
// against.
type Scanner struct {
	kern    kernel.Params
	points  *vec.Matrix
	weights []float64
}

// NewScanner constructs a dense scanner. weights may be nil (unit weights).
func NewScanner(points *vec.Matrix, weights []float64, kern kernel.Params) (*Scanner, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("scan: empty point set")
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("scan: %d weights for %d points", len(weights), points.Rows)
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	return &Scanner{kern: kern, points: points, weights: weights}, nil
}

// Aggregate computes F_P(q) exactly.
func (s *Scanner) Aggregate(q []float64) float64 {
	return kernel.Aggregate(s.kern, q, s.points, s.weights)
}

// Threshold answers the TKAQ exactly.
func (s *Scanner) Threshold(q []float64, tau float64) bool {
	return s.Aggregate(q) > tau
}

// Approximate trivially satisfies the eKAQ by returning the exact value.
func (s *Scanner) Approximate(q []float64, _ float64) float64 {
	return s.Aggregate(q)
}

// SparseVector is a LibSVM-style sparse representation: parallel slices of
// strictly increasing feature indices and their values.
type SparseVector struct {
	Index []int32
	Value []float64
}

// FromDense converts a dense vector into sparse form, dropping zeros.
func FromDense(v []float64) SparseVector {
	var sv SparseVector
	for i, x := range v {
		if x != 0 {
			sv.Index = append(sv.Index, int32(i))
			sv.Value = append(sv.Value, x)
		}
	}
	return sv
}

// Dot returns the sparse-sparse inner product.
func (a SparseVector) Dot(b SparseVector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Index) && j < len(b.Index) {
		switch {
		case a.Index[i] == b.Index[j]:
			s += a.Value[i] * b.Value[j]
			i++
			j++
		case a.Index[i] < b.Index[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// Norm2 returns ‖a‖².
func (a SparseVector) Norm2() float64 {
	var s float64
	for _, v := range a.Value {
		s += v * v
	}
	return s
}

// LibSVM is the sparse exact evaluator modelled on LibSVM's prediction
// path: points live in sparse format, per-point squared norms are
// precomputed, and the Gaussian distance uses ‖q‖²−2q·p+‖p‖².
type LibSVM struct {
	kern    kernel.Params
	points  []SparseVector
	norms   []float64
	weights []float64
	dims    int
}

// NewLibSVM builds the sparse evaluator from a dense matrix. weights may be
// nil (unit weights).
func NewLibSVM(points *vec.Matrix, weights []float64, kern kernel.Params) (*LibSVM, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("scan: empty point set")
	}
	if weights != nil && len(weights) != points.Rows {
		return nil, fmt.Errorf("scan: %d weights for %d points", len(weights), points.Rows)
	}
	if err := kern.Validate(); err != nil {
		return nil, err
	}
	l := &LibSVM{kern: kern, weights: weights, dims: points.Cols}
	l.points = make([]SparseVector, points.Rows)
	l.norms = make([]float64, points.Rows)
	for i := 0; i < points.Rows; i++ {
		l.points[i] = FromDense(points.Row(i))
		l.norms[i] = l.points[i].Norm2()
	}
	return l, nil
}

// Aggregate computes F_P(q) exactly through the sparse representation.
func (l *LibSVM) Aggregate(q []float64) float64 {
	sq := FromDense(q)
	qNorm := sq.Norm2()
	var s float64
	for i, p := range l.points {
		var x float64
		if l.kern.DistanceBased() {
			d2 := qNorm - 2*sq.Dot(p) + l.norms[i]
			if d2 < 0 {
				d2 = 0 // guard cancellation
			}
			x = l.kern.Gamma * d2
		} else {
			x = l.kern.Gamma*sq.Dot(p) + l.kern.Beta
		}
		v := l.kern.Outer(x)
		if l.weights != nil {
			v *= l.weights[i]
		}
		s += v
	}
	return s
}

// Threshold answers the TKAQ exactly, mirroring LibSVM's decision function
// sign test.
func (l *LibSVM) Threshold(q []float64, tau float64) bool {
	return l.Aggregate(q) > tau
}

// Decision returns sign(F_P(q) − tau) as a class label in {−1, +1}, the
// 2-class SVM prediction.
func (l *LibSVM) Decision(q []float64, tau float64) int {
	if l.Threshold(q, tau) {
		return 1
	}
	return -1
}

// Sparsity reports the fraction of stored entries that are non-zero.
func (l *LibSVM) Sparsity() float64 {
	var nz int
	for _, p := range l.points {
		nz += len(p.Value)
	}
	total := len(l.points) * l.dims
	if total == 0 {
		return 0
	}
	return float64(nz) / float64(total)
}
