package scan

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/kernel"
	"karl/internal/vec"
)

func TestNewScannerValidation(t *testing.T) {
	if _, err := NewScanner(nil, nil, kernel.NewGaussian(1)); err == nil {
		t.Fatal("nil matrix accepted")
	}
	m := vec.FromRows([][]float64{{1}})
	if _, err := NewScanner(m, []float64{1, 2}, kernel.NewGaussian(1)); err == nil {
		t.Fatal("weight mismatch accepted")
	}
	if _, err := NewScanner(m, nil, kernel.NewGaussian(0)); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestScannerAggregate(t *testing.T) {
	m := vec.FromRows([][]float64{{0}, {1}})
	s, err := NewScanner(m, []float64{2, 3}, kernel.NewGaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0}
	want := 2*1.0 + 3*math.Exp(-1)
	if got := s.Aggregate(q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Aggregate = %v want %v", got, want)
	}
	if !s.Threshold(q, want-0.1) || s.Threshold(q, want+0.1) {
		t.Fatal("Threshold inconsistent with Aggregate")
	}
	if got := s.Approximate(q, 0.5); got != s.Aggregate(q) {
		t.Fatal("Approximate should be exact for the scanner")
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	v := []float64{0, 1.5, 0, 0, -2, 0}
	sv := FromDense(v)
	if len(sv.Index) != 2 || sv.Index[0] != 1 || sv.Index[1] != 4 {
		t.Fatalf("indices = %v", sv.Index)
	}
	if sv.Value[0] != 1.5 || sv.Value[1] != -2 {
		t.Fatalf("values = %v", sv.Value)
	}
	if got := FromDense(nil); len(got.Index) != 0 {
		t.Fatal("empty dense should give empty sparse")
	}
}

func TestSparseDotMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(30)
		a, b := make([]float64, d), make([]float64, d)
		for j := 0; j < d; j++ {
			// ~60% sparsity, like SVM feature vectors.
			if rng.Float64() < 0.4 {
				a[j] = rng.NormFloat64()
			}
			if rng.Float64() < 0.4 {
				b[j] = rng.NormFloat64()
			}
		}
		want := vec.Dot(a, b)
		got := FromDense(a).Dot(FromDense(b))
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("sparse dot = %v want %v", got, want)
		}
	}
}

func TestSparseNorm2(t *testing.T) {
	sv := FromDense([]float64{3, 0, 4})
	if got := sv.Norm2(); got != 25 {
		t.Fatalf("Norm2 = %v want 25", got)
	}
}

func TestLibSVMMatchesScannerAllKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	kernels := []kernel.Params{
		kernel.NewGaussian(2),
		kernel.NewPolynomial(0.5, 1, 3),
		kernel.NewSigmoid(0.3, 0.1),
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		d := 1 + rng.Intn(20)
		m := vec.NewMatrix(n, d)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i] = rng.NormFloat64()
			for j := 0; j < d; j++ {
				if rng.Float64() < 0.5 {
					m.Row(i)[j] = rng.NormFloat64()
				}
			}
		}
		q := make([]float64, d)
		for j := range q {
			if rng.Float64() < 0.5 {
				q[j] = rng.NormFloat64()
			}
		}
		for _, k := range kernels {
			s, err := NewScanner(m, w, k)
			if err != nil {
				t.Fatal(err)
			}
			l, err := NewLibSVM(m, w, k)
			if err != nil {
				t.Fatal(err)
			}
			want := s.Aggregate(q)
			got := l.Aggregate(q)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d %v: LibSVM %v vs Scanner %v", trial, k.Kind, got, want)
			}
		}
	}
}

func TestLibSVMDecision(t *testing.T) {
	m := vec.FromRows([][]float64{{0, 0}})
	l, err := NewLibSVM(m, []float64{1}, kernel.NewGaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	// F = exp(0) = 1 at the point itself.
	if l.Decision([]float64{0, 0}, 0.5) != 1 {
		t.Fatal("expected +1")
	}
	if l.Decision([]float64{0, 0}, 1.5) != -1 {
		t.Fatal("expected -1")
	}
}

func TestLibSVMSparsity(t *testing.T) {
	m := vec.FromRows([][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}})
	l, err := NewLibSVM(m, nil, kernel.NewGaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Sparsity(); got != 0.25 {
		t.Fatalf("Sparsity = %v want 0.25", got)
	}
}

func TestLibSVMValidation(t *testing.T) {
	if _, err := NewLibSVM(nil, nil, kernel.NewGaussian(1)); err == nil {
		t.Fatal("nil matrix accepted")
	}
	m := vec.FromRows([][]float64{{1}})
	if _, err := NewLibSVM(m, []float64{1, 2}, kernel.NewGaussian(1)); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}
