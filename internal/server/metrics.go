package server

import (
	"sync/atomic"

	"karl"
)

// endpointMetrics accumulates per-endpoint counters with atomics, so the
// lock-free request path never serializes on a stats mutex.
type endpointMetrics struct {
	requests      atomic.Int64
	errors        atomic.Int64
	queries       atomic.Int64 // individual queries (a batch counts each)
	iterations    atomic.Int64
	nodesExpanded atomic.Int64
	pointsScanned atomic.Int64
}

// record folds one query's work statistics into the endpoint totals.
func (m *endpointMetrics) record(n int, st karl.Stats) {
	m.queries.Add(int64(n))
	m.iterations.Add(int64(st.Iterations))
	m.nodesExpanded.Add(int64(st.NodesExpanded))
	m.pointsScanned.Add(int64(st.PointsScanned))
}

// snapshot returns a consistent-enough copy for /v1/stats (individual
// counters are read atomically; cross-counter skew under load is fine for
// monitoring).
func (m *endpointMetrics) snapshot() EndpointStats {
	return EndpointStats{
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		Queries:       m.queries.Load(),
		Iterations:    m.iterations.Load(),
		NodesExpanded: m.nodesExpanded.Load(),
		PointsScanned: m.pointsScanned.Load(),
	}
}

// metrics holds one counter block per query endpoint, plus the sketch-tier
// routing counters: each successfully served normalized-budget (eps_norm)
// approximate query counts once, as a tier hit when its budget let the
// coreset engine serve it, a miss otherwise. Relative-eps traffic and
// failed requests are not counted — the endpoint counters track those.
type metrics struct {
	aggregate   endpointMetrics
	threshold   endpointMetrics
	approximate endpointMetrics
	bounds      endpointMetrics
	batch       endpointMetrics
	insert      endpointMetrics
	del         endpointMetrics
	split       endpointMetrics

	tierHits   atomic.Int64
	tierMisses atomic.Int64

	// refineQueries counts single-query requests served by a clone armed
	// with parallel refinement (WithRefineWorkers > 1).
	refineQueries atomic.Int64
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests      int64 `json:"requests"`
	Errors        int64 `json:"errors"`
	Queries       int64 `json:"queries"`
	Iterations    int64 `json:"iterations"`
	NodesExpanded int64 `json:"nodes_expanded"`
	PointsScanned int64 `json:"points_scanned"`
}

// PoolStats describes the engine-clone pool.
type PoolStats struct {
	// Idle is the number of clones currently parked in the pool.
	Idle int `json:"idle"`
	// Capacity is the maximum number of parked clones.
	Capacity int `json:"capacity"`
	// Clones is the cumulative number of engine clones ever created.
	Clones int64 `json:"clones"`
}

// TierStats reports sketch-tier routing when WithSketchTier is enabled.
// Only normalized-budget (eps_norm) approximate queries are tier-eligible
// and counted; relative-eps traffic always uses the full index and shows
// up solely in the endpoint counters.
type TierStats struct {
	// SketchHits counts normalized-budget queries served by the coreset
	// engine.
	SketchHits int64 `json:"sketch_hits"`
	// FullServes counts normalized-budget queries whose eps_norm was
	// tighter than the sketch bound and fell through to the full index.
	FullServes int64 `json:"full_serves"`
	// SketchPoints is the coreset cardinality.
	SketchPoints int `json:"sketch_points"`
	// SketchEps is the sketch's advertised normalized error bound.
	SketchEps float64 `json:"sketch_eps"`
	// Pool describes the sketch-engine clone pool.
	Pool PoolStats `json:"pool"`
}

// MutableStats reports the segmented engine state behind a mutable
// server: manifest shape, background maintenance counters, and how the
// clone pool tracks the advancing manifest.
type MutableStats struct {
	// Epoch is the current manifest epoch (advances on seal/compaction).
	Epoch uint64 `json:"epoch"`
	// ServedEpoch is the highest epoch any pooled clone has queried — when
	// it trails Epoch, idle clones will re-arm on their next query.
	ServedEpoch uint64 `json:"served_epoch"`
	// Segments is the number of immutable segments in the manifest.
	Segments int `json:"segments"`
	// MemtableLen is the number of buffered (unsealed) points.
	MemtableLen int `json:"memtable_len"`
	// Seals and Compactions count completed maintenance operations.
	Seals       int `json:"seals"`
	Compactions int `json:"compactions"`
	// Points is the total dataset size.
	Points int `json:"points"`
	// Tombstones is the number of pending deletes not yet compacted away;
	// Deletes counts all deletions over the engine's lifetime.
	Tombstones int `json:"tombstones"`
	Deletes    int `json:"deletes"`
}

// DualTreeBatchStats reports how the engines behind /v1/batch executed
// their batches: a hit is a batch served by the dual-tree executor (one
// shared node-pair traversal for the whole batch), a miss one served by the
// sequential clone fan-out. The traversal counters cover hits only.
type DualTreeBatchStats struct {
	// Hits and Misses count non-empty batches by executor.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Queries counts queries inside dual-tree batches.
	Queries int64 `json:"queries"`
	// NodePairs counts (query node × reference node) group-bound
	// computations.
	NodePairs int64 `json:"node_pairs"`
	// GroupCertified counts queries answered purely by group certificates;
	// Fallbacks counts queries handed back to the sequential engine.
	GroupCertified int64 `json:"group_certified"`
	Fallbacks      int64 `json:"fallbacks"`
}

// RefineStats reports the WithRefineWorkers configuration and usage:
// present in /v1/stats only when the server arms its clones with
// intra-query parallel refinement.
type RefineStats struct {
	// Workers is the configured per-query refinement width.
	Workers int `json:"workers"`
	// Queries counts single-query requests served with it armed.
	Queries int64 `json:"queries"`
}

// StatsResponse is the GET /v1/stats body. Tier is present only when the
// sketch tier is enabled; Refine only when WithRefineWorkers is armed;
// Mutable only for dynamic serving.
type StatsResponse struct {
	Pool      PoolStats                `json:"pool"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	DualTree  *DualTreeBatchStats      `json:"dual_tree,omitempty"`
	Tier      *TierStats               `json:"tier,omitempty"`
	Refine    *RefineStats             `json:"refine,omitempty"`
	Mutable   *MutableStats            `json:"mutable,omitempty"`
}
