package server

import (
	"sync/atomic"

	"karl"
)

// endpointMetrics accumulates per-endpoint counters with atomics, so the
// lock-free request path never serializes on a stats mutex.
type endpointMetrics struct {
	requests      atomic.Int64
	errors        atomic.Int64
	queries       atomic.Int64 // individual queries (a batch counts each)
	iterations    atomic.Int64
	nodesExpanded atomic.Int64
	pointsScanned atomic.Int64
}

// record folds one query's work statistics into the endpoint totals.
func (m *endpointMetrics) record(n int, st karl.Stats) {
	m.queries.Add(int64(n))
	m.iterations.Add(int64(st.Iterations))
	m.nodesExpanded.Add(int64(st.NodesExpanded))
	m.pointsScanned.Add(int64(st.PointsScanned))
}

// snapshot returns a consistent-enough copy for /v1/stats (individual
// counters are read atomically; cross-counter skew under load is fine for
// monitoring).
func (m *endpointMetrics) snapshot() EndpointStats {
	return EndpointStats{
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		Queries:       m.queries.Load(),
		Iterations:    m.iterations.Load(),
		NodesExpanded: m.nodesExpanded.Load(),
		PointsScanned: m.pointsScanned.Load(),
	}
}

// metrics holds one counter block per query endpoint.
type metrics struct {
	aggregate   endpointMetrics
	threshold   endpointMetrics
	approximate endpointMetrics
	batch       endpointMetrics
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests      int64 `json:"requests"`
	Errors        int64 `json:"errors"`
	Queries       int64 `json:"queries"`
	Iterations    int64 `json:"iterations"`
	NodesExpanded int64 `json:"nodes_expanded"`
	PointsScanned int64 `json:"points_scanned"`
}

// PoolStats describes the engine-clone pool.
type PoolStats struct {
	// Idle is the number of clones currently parked in the pool.
	Idle int `json:"idle"`
	// Capacity is the maximum number of parked clones.
	Capacity int `json:"capacity"`
	// Clones is the cumulative number of engine clones ever created.
	Clones int64 `json:"clones"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Pool      PoolStats                `json:"pool"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}
