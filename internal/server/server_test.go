package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"karl"
)

func testEngine(t *testing.T) *karl.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	pts := make([][]float64, 500)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	eng, err := karl.Build(pts, karl.Gaussian(5))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, ts, path, raw)
}

func postRaw(t *testing.T, ts *httptest.Server, path string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestNewRejectsNil(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestNewRejectsBadPoolSize(t *testing.T) {
	if _, err := New(testEngine(t), WithPoolSize(0)); err == nil {
		t.Fatal("pool size 0 accepted")
	}
	if _, err := New(testEngine(t), WithPoolSize(-3)); err == nil {
		t.Fatal("negative pool size accepted")
	}
}

func TestInfo(t *testing.T) {
	s, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Points != 500 || info.Dims != 2 || info.Kernel != "gaussian" || info.Gamma != 5 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	resp, body := post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Aggregate(q)
	if math.Abs(v.Value-want) > 1e-12 {
		t.Fatalf("value %v want %v", v.Value, want)
	}
}

func TestThresholdEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/threshold", QueryRequest{Q: q, Tau: exact * 0.9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var b BoolResponse
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if !b.Over {
		t.Fatal("expected over=true below the exact value")
	}
}

func TestApproximateEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(v.Value-exact) / exact; rel > 0.1 {
		t.Fatalf("rel error %v", rel)
	}
}

// TestDecodeRejectsMalformed drives every expressible malformed input
// through the HTTP layer; each must come back 400 with a JSON error
// envelope.
func TestDecodeRejectsMalformed(t *testing.T) {
	s, _ := New(testEngine(t))
	ts := httptest.NewServer(s)
	defer ts.Close()
	cases := []struct {
		name, path, body string
	}{
		{"invalid json", "/v1/aggregate", `{`},
		{"unknown field", "/v1/aggregate", `{"q":[0.5,0.5],"bogus":1}`},
		{"missing q", "/v1/aggregate", `{}`},
		{"dim mismatch", "/v1/aggregate", `{"q":[1]}`},
		{"threshold dim mismatch", "/v1/threshold", `{"q":[1,2,3],"tau":1}`},
		{"eps zero", "/v1/approximate", `{"q":[0.5,0.5],"eps":0}`},
		{"eps negative", "/v1/approximate", `{"q":[0.5,0.5],"eps":-0.1}`},
		{"eps missing", "/v1/approximate", `{"q":[0.5,0.5]}`},
		{"batch invalid json", "/v1/batch", `[`},
		{"batch unknown kind", "/v1/batch", `{"kind":"exact","queries":[[0.5,0.5]]}`},
		{"batch missing kind", "/v1/batch", `{"queries":[[0.5,0.5]]}`},
		{"batch dim mismatch mid-batch", "/v1/batch", `{"kind":"aggregate","queries":[[0.5,0.5],[1],[0.1,0.2]]}`},
		{"batch eps zero", "/v1/batch", `{"kind":"approximate","queries":[[0.5,0.5]],"eps":0}`},
		{"batch unknown field", "/v1/batch", `{"kind":"aggregate","queries":[[0.5,0.5]],"bogus":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRaw(t, ts, tc.path, []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", body)
			}
		})
	}
}

// TestValidateNonFinite exercises the uniform NaN/Inf rejection directly:
// standard JSON cannot express non-finite numbers, but the validation
// layer must not rely on that.
func TestValidateNonFinite(t *testing.T) {
	s, _ := New(testEngine(t))
	nan, inf := math.NaN(), math.Inf(1)
	ok := []float64{0.5, 0.5}
	cases := []struct {
		name    string
		req     QueryRequest
		n       need
		wantErr bool
	}{
		{"valid aggregate", QueryRequest{Q: ok}, needNothing, false},
		{"valid threshold", QueryRequest{Q: ok, Tau: 1.5}, needTau, false},
		{"valid approximate", QueryRequest{Q: ok, Eps: 0.1}, needEps, false},
		{"nan in q", QueryRequest{Q: []float64{nan, 0.5}}, needNothing, true},
		{"+inf in q", QueryRequest{Q: []float64{0.5, inf}}, needNothing, true},
		{"-inf in q", QueryRequest{Q: []float64{0.5, -inf}}, needTau, true},
		{"nan tau", QueryRequest{Q: ok, Tau: nan}, needTau, true},
		{"inf tau", QueryRequest{Q: ok, Tau: inf}, needTau, true},
		{"nan tau ignored by aggregate", QueryRequest{Q: ok, Tau: nan}, needNothing, false},
		{"nan eps", QueryRequest{Q: ok, Eps: nan}, needEps, true},
		{"+inf eps", QueryRequest{Q: ok, Eps: inf}, needEps, true},
		{"-inf eps", QueryRequest{Q: ok, Eps: -inf}, needEps, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := s.validate(tc.req, tc.n)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validate(%+v) err = %v, want error %v", tc.req, err, tc.wantErr)
			}
		})
	}
	batchCases := []struct {
		name    string
		req     BatchRequest
		wantErr bool
	}{
		{"valid", BatchRequest{Kind: "threshold", Queries: [][]float64{ok}, Tau: 1}, false},
		{"nan tau", BatchRequest{Kind: "threshold", Queries: [][]float64{ok}, Tau: nan}, true},
		{"inf eps", BatchRequest{Kind: "approximate", Queries: [][]float64{ok}, Eps: inf}, true},
		{"nan in query 1", BatchRequest{Kind: "aggregate", Queries: [][]float64{ok, {nan, 0.5}}}, true},
	}
	for _, tc := range batchCases {
		t.Run("batch "+tc.name, func(t *testing.T) {
			err := s.validateBatch(tc.req)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateBatch(%+v) err = %v, want error %v", tc.req, err, tc.wantErr)
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := New(testEngine(t))
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint returned %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	queries := [][]float64{{0.2, 0.8}, {0.5, 0.5}, {0.9, 0.1}}
	resp, body := post(t, ts, "/v1/batch", BatchRequest{Kind: "aggregate", Queries: queries, Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Values) != len(queries) || br.Over != nil {
		t.Fatalf("batch response %+v", br)
	}
	for i, q := range queries {
		want, _ := eng.Aggregate(q)
		if br.Values[i] != want {
			t.Fatalf("query %d: %v want %v", i, br.Values[i], want)
		}
	}
	// Empty batch is fine and returns empty results.
	resp, body = post(t, ts, "/v1/batch", BatchRequest{Kind: "threshold", Queries: nil, Tau: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch status %d: %s", resp.StatusCode, body)
	}
}

// TestBatchEndpointMatchesSequential is the property test of the batch
// contract: for every weighting type (I/II/III) and every paper kernel
// (Gaussian, polynomial, sigmoid), /v1/batch results are index-aligned
// and bitwise-equal to the corresponding sequence of single-query
// endpoint calls.
func TestBatchEndpointMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, dim, nq = 300, 3, 16
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	weights := map[string][]float64{"typeI": nil}
	pos := make([]float64, n)
	mixed := make([]float64, n)
	for i := 0; i < n; i++ {
		pos[i] = 0.1 + rng.Float64()
		mixed[i] = rng.NormFloat64()
	}
	weights["typeII"] = pos
	weights["typeIII"] = mixed
	kernels := map[string]karl.Kernel{
		"gaussian":   karl.Gaussian(3),
		"polynomial": karl.Polynomial(0.5, 1, 2),
		"sigmoid":    karl.Sigmoid(0.5, 0.1),
	}
	queries := make([][]float64, nq)
	for i := range queries {
		queries[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for wname, w := range weights {
		for kname, kern := range kernels {
			t.Run(wname+"/"+kname, func(t *testing.T) {
				var opts []karl.Option
				if w != nil {
					opts = append(opts, karl.WithWeights(w))
				}
				eng, err := karl.Build(pts, kern, opts...)
				if err != nil {
					t.Fatal(err)
				}
				s, _ := New(eng)
				ts := httptest.NewServer(s)
				defer ts.Close()
				exact0, _ := eng.Aggregate(queries[0])
				tau := exact0 * 0.95
				for _, kind := range []string{"aggregate", "threshold", "approximate"} {
					breq := BatchRequest{Kind: kind, Queries: queries, Tau: tau, Eps: 0.1, Workers: 4}
					resp, body := post(t, ts, "/v1/batch", breq)
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("%s batch status %d: %s", kind, resp.StatusCode, body)
					}
					var br BatchResponse
					if err := json.Unmarshal(body, &br); err != nil {
						t.Fatal(err)
					}
					for i, q := range queries {
						sreq := QueryRequest{Q: q, Tau: tau, Eps: 0.1}
						resp, sbody := post(t, ts, "/v1/"+kind, sreq)
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("%s single status %d: %s", kind, resp.StatusCode, sbody)
						}
						if kind == "threshold" {
							var sb BoolResponse
							if err := json.Unmarshal(sbody, &sb); err != nil {
								t.Fatal(err)
							}
							if br.Over[i] != sb.Over {
								t.Fatalf("threshold query %d: batch %v single %v", i, br.Over[i], sb.Over)
							}
							continue
						}
						var sv ValueResponse
						if err := json.Unmarshal(sbody, &sv); err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(br.Values[i]) != math.Float64bits(sv.Value) {
							t.Fatalf("%s query %d: batch %x single %x", kind,
								i, math.Float64bits(br.Values[i]), math.Float64bits(sv.Value))
						}
					}
				}
			})
		}
	}
}

// TestServerConcurrentQueries hammers the pool from 32 goroutines mixing
// all four query endpoints, each result checked against an exact-scan
// oracle computed up front. Run with -race.
func TestServerConcurrentQueries(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng, WithPoolSize(4))
	ts := httptest.NewServer(s)
	defer ts.Close()
	rng := rand.New(rand.NewSource(7))
	const nq = 8
	queries := make([][]float64, nq)
	oracle := make([]float64, nq)
	for i := range queries {
		queries[i] = []float64{rng.Float64(), rng.Float64()}
		v, err := eng.Aggregate(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = v
	}
	// post calls t.Fatal, which must not run off the test goroutine; the
	// workers use this error-returning variant instead.
	doPost := func(path string, body any) (int, []byte, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, buf.Bytes(), nil
	}
	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				qi := (g + k) % nq
				q, want := queries[qi], oracle[qi]
				switch (g + k) % 4 {
				case 0: // exact aggregate, bitwise oracle match
					code, body, err := doPost("/v1/aggregate", QueryRequest{Q: q})
					var v ValueResponse
					if err == nil {
						err = json.Unmarshal(body, &v)
					}
					if err != nil || code != http.StatusOK {
						errs <- fmt.Errorf("aggregate status %d err %v: %s", code, err, body)
						continue
					}
					if math.Float64bits(v.Value) != math.Float64bits(want) {
						errs <- fmt.Errorf("aggregate %v want %v", v.Value, want)
					}
				case 1: // threshold below and above the exact value
					for _, tc := range []struct {
						tau  float64
						over bool
					}{{want * 0.9, true}, {want * 1.1, false}} {
						code, body, err := doPost("/v1/threshold", QueryRequest{Q: q, Tau: tc.tau})
						var b BoolResponse
						if err == nil {
							err = json.Unmarshal(body, &b)
						}
						if err != nil || code != http.StatusOK {
							errs <- fmt.Errorf("threshold status %d err %v: %s", code, err, body)
							continue
						}
						if b.Over != tc.over {
							errs <- fmt.Errorf("threshold(tau=%v) = %v, exact %v", tc.tau, b.Over, want)
						}
					}
				case 2: // approximate within eps of the oracle
					code, body, err := doPost("/v1/approximate", QueryRequest{Q: q, Eps: 0.05})
					var v ValueResponse
					if err == nil {
						err = json.Unmarshal(body, &v)
					}
					if err != nil || code != http.StatusOK {
						errs <- fmt.Errorf("approximate status %d err %v: %s", code, err, body)
						continue
					}
					if rel := math.Abs(v.Value-want) / want; rel > 0.05 {
						errs <- fmt.Errorf("approximate rel error %v", rel)
					}
				case 3: // batch aggregate, index-aligned bitwise oracle match
					code, body, err := doPost("/v1/batch", BatchRequest{Kind: "aggregate", Queries: queries, Workers: 3})
					var br BatchResponse
					if err == nil {
						err = json.Unmarshal(body, &br)
					}
					if err != nil || code != http.StatusOK {
						errs <- fmt.Errorf("batch status %d err %v: %s", code, err, body)
						continue
					}
					for i := range queries {
						if math.Float64bits(br.Values[i]) != math.Float64bits(oracle[i]) {
							errs <- fmt.Errorf("batch query %d: %v want %v", i, br.Values[i], oracle[i])
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng, WithPoolSize(3))
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
	post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
	post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.1})
	post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: -1}) // counted as error
	post(t, ts, "/v1/batch", BatchRequest{Kind: "threshold", Queries: [][]float64{q, q, q}, Tau: 1})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	agg := st.Endpoints["aggregate"]
	if agg.Requests != 2 || agg.Errors != 0 || agg.Queries != 2 {
		t.Fatalf("aggregate stats %+v", agg)
	}
	if want := int64(2 * eng.Len()); agg.PointsScanned != want {
		t.Fatalf("aggregate points scanned %d want %d", agg.PointsScanned, want)
	}
	app := st.Endpoints["approximate"]
	if app.Requests != 2 || app.Errors != 1 || app.Queries != 1 {
		t.Fatalf("approximate stats %+v", app)
	}
	bat := st.Endpoints["batch"]
	if bat.Requests != 1 || bat.Queries != 3 {
		t.Fatalf("batch stats %+v", bat)
	}
	if st.Pool.Capacity != 3 || st.Pool.Clones < 1 || st.Pool.Idle > st.Pool.Capacity {
		t.Fatalf("pool stats %+v", st.Pool)
	}
}

// TestPoolReusesClones checks that sequential requests are served by a
// bounded number of clones rather than one clone per request.
func TestPoolReusesClones(t *testing.T) {
	s, _ := New(testEngine(t), WithPoolSize(2))
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 20; i++ {
		post(t, ts, "/v1/aggregate", QueryRequest{Q: []float64{0.5, 0.5}})
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Sequential requests: the first acquires a fresh clone, releases it,
	// and everyone after reuses it.
	if st.Pool.Clones > 2 {
		t.Fatalf("%d clones for 20 sequential requests", st.Pool.Clones)
	}
}

func TestConcurrentRequests(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	want, _ := eng.Aggregate([]float64{0.5, 0.5})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(QueryRequest{Q: []float64{0.5, 0.5}})
			resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var v ValueResponse
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errs <- err
				return
			}
			if math.Abs(v.Value-want) > 1e-12 {
				errs <- fmt.Errorf("value %v want %v", v.Value, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent request failed: %v", err)
	}
}

func benchEngine(b *testing.B) *karl.Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(43))
	pts := make([][]float64, 20000)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	eng, err := karl.Build(pts, karl.Gaussian(0.5))
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func benchDrive(b *testing.B, h http.Handler) {
	body := `{"q":[0.1,-0.2,0.3],"eps":0.05}`
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := httptest.NewRequest(http.MethodPost, "/v1/approximate", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				b.Errorf("status %d: %s", w.Code, w.Body.Bytes())
				return
			}
		}
	})
}

// BenchmarkServerParallel measures eKAQ request throughput through the
// engine-clone pool. Compare against BenchmarkServerMutex (the old
// single-mutex serving path) with increasing -cpu to see the scaling the
// pool buys on multi-core hosts.
func BenchmarkServerParallel(b *testing.B) {
	s, err := New(benchEngine(b))
	if err != nil {
		b.Fatal(err)
	}
	benchDrive(b, s)
}

// BenchmarkServerMutex reproduces the pre-pool serving path — one engine
// behind one global mutex — as the scaling baseline.
func BenchmarkServerMutex(b *testing.B) {
	eng := benchEngine(b)
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		v, err := eng.Approximate(req.Q, req.Eps)
		mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, ValueResponse{v})
	})
	benchDrive(b, h)
}

// TestRefineWorkersStats pins the WithRefineWorkers wiring end to end:
// armed clones answer identically to the plain engine, /v1/stats grows a
// refine block counting single-query requests, and an unarmed server
// omits the block entirely.
func TestRefineWorkersStats(t *testing.T) {
	eng := testEngine(t)
	s, err := New(eng, WithRefineWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	want, _ := eng.Aggregate(q)
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var v ValueResponse
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("armed clone diverged: %v want %v", v.Value, want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Refine == nil {
		t.Fatal("stats missing the refine block with WithRefineWorkers armed")
	}
	if stats.Refine.Workers != 4 || stats.Refine.Queries != 3 {
		t.Fatalf("refine stats = %+v, want workers 4, queries 3", stats.Refine)
	}

	plain, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	tsPlain := httptest.NewServer(plain)
	defer tsPlain.Close()
	post(t, tsPlain, "/v1/aggregate", QueryRequest{Q: q})
	resp2, err := http.Get(tsPlain.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var plainStats StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&plainStats); err != nil {
		t.Fatal(err)
	}
	if plainStats.Refine != nil {
		t.Fatalf("unarmed server reports refine stats: %+v", plainStats.Refine)
	}
}
