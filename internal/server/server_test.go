package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"karl"
)

func testEngine(t *testing.T) *karl.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	pts := make([][]float64, 500)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	eng, err := karl.Build(pts, karl.Gaussian(5))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestNewRejectsNil(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestInfo(t *testing.T) {
	s, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Points != 500 || info.Dims != 2 || info.Kernel != "gaussian" || info.Gamma != 5 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	resp, body := post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Aggregate(q)
	if math.Abs(v.Value-want) > 1e-12 {
		t.Fatalf("value %v want %v", v.Value, want)
	}
}

func TestThresholdEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/threshold", QueryRequest{Q: q, Tau: exact * 0.9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var b BoolResponse
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if !b.Over {
		t.Fatal("expected over=true below the exact value")
	}
}

func TestApproximateEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(v.Value-exact) / exact; rel > 0.1 {
		t.Fatalf("rel error %v", rel)
	}
	// eps validation.
	resp, _ = post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("eps=0 returned status %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := New(testEngine(t))
	ts := httptest.NewServer(s)
	defer ts.Close()
	// Wrong dimensionality.
	resp, _ := post(t, ts, "/v1/aggregate", QueryRequest{Q: []float64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch returned %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json",
		bytes.NewReader([]byte(`{"q":[0.5,0.5],"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field returned %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST endpoint returned %d", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	want, _ := eng.Aggregate([]float64{0.5, 0.5})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(QueryRequest{Q: []float64{0.5, 0.5}})
			resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var v ValueResponse
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errs <- err
				return
			}
			if math.Abs(v.Value-want) > 1e-12 {
				errs <- nil
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent request failed: %v", err)
	}
}
