package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"karl"
)

func testMutableServer(t *testing.T, opts ...karl.Option) (*karl.DynamicEngine, *httptest.Server) {
	t.Helper()
	d, err := karl.NewDynamic(karl.Gaussian(5), opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMutable(d)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return d, ts
}

func TestNewMutableValidation(t *testing.T) {
	if _, err := NewMutable(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	d, _ := karl.NewDynamic(karl.Gaussian(1))
	if _, err := NewMutable(d, WithSketchTier(0.1)); err == nil {
		t.Fatal("sketch tier accepted for mutable serving")
	}
	if _, err := NewMutable(d, WithPoolSize(0)); err == nil {
		t.Fatal("pool size 0 accepted")
	}
}

func TestInsertEndpointSingleAndBulk(t *testing.T) {
	d, ts := testMutableServer(t)
	resp, body := post(t, ts, "/v1/insert", InsertRequest{P: []float64{0.1, 0.2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single insert: status %d: %s", resp.StatusCode, body)
	}
	var ir InsertResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Inserted != 1 || ir.Len != 1 {
		t.Fatalf("insert response %+v", ir)
	}
	w := 2.5
	resp, _ = post(t, ts, "/v1/insert", InsertRequest{P: []float64{0.3, 0.4}, W: &w})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("weighted single insert failed")
	}
	resp, body = post(t, ts, "/v1/insert", InsertRequest{
		Points:  [][]float64{{0.5, 0.6}, {0.7, 0.8}},
		Weights: []float64{1, 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk insert: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Inserted != 2 || ir.Len != 4 {
		t.Fatalf("bulk insert response %+v", ir)
	}
	if d.Len() != 4 {
		t.Fatalf("engine Len = %d", d.Len())
	}
	// Served answers match a direct computation.
	q := []float64{0.4, 0.4}
	resp, body = post(t, ts, "/v1/aggregate", QueryRequest{Q: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate after insert: %s", body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	want, _ := d.Aggregate(q)
	if math.Abs(v.Value-want) > 1e-12 {
		t.Fatalf("value %v want %v", v.Value, want)
	}
}

func TestInsertEndpointRejectsBadBodies(t *testing.T) {
	_, ts := testMutableServer(t)
	for name, body := range map[string]InsertRequest{
		"empty":              {},
		"both forms":         {P: []float64{1, 2}, Points: [][]float64{{3, 4}}},
		"w with bulk":        {Points: [][]float64{{1, 2}}, W: ptr(2.0)},
		"weights with p":     {P: []float64{1, 2}, Weights: []float64{1}},
		"weight count":       {Points: [][]float64{{1, 2}, {3, 4}}, Weights: []float64{1}},
		"dims change midway": {Points: [][]float64{{1, 2}, {3}}},
	} {
		resp, b := post(t, ts, "/v1/insert", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, b)
		}
	}
}

func TestInsertEndpointIsAllOrNothing(t *testing.T) {
	// A batch with a bad point mid-way is rejected wholesale: the valid
	// prefix must not land (the engine validates before mutating).
	d, ts := testMutableServer(t)
	before := d.Len()
	resp, b := post(t, ts, "/v1/insert", InsertRequest{Points: [][]float64{{9, 9}, {1}}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "point 1") {
		t.Fatalf("bad batch not rejected: %d %s", resp.StatusCode, b)
	}
	if got := d.Len(); got != before {
		t.Fatalf("rejected batch landed points: len %d want %d", got, before)
	}
}

func TestInsertOnStaticServerIs404(t *testing.T) {
	s, _ := New(testEngine(t))
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := post(t, ts, "/v1/insert", InsertRequest{P: []float64{0.1, 0.2}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("insert on static server: status %d", resp.StatusCode)
	}
}

func TestMutableInfoAndStats(t *testing.T) {
	// Auto-compaction off so the manifest epoch is deterministic once the
	// bulk insert returns (seals happen synchronously on the insert path).
	d, ts := testMutableServer(t, karl.WithSealSize(16), karl.WithAutoCompaction(false))
	rng := rand.New(rand.NewSource(43))
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	if resp, b := post(t, ts, "/v1/insert", InsertRequest{Points: pts}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk insert: %s", b)
	}
	// Run one query so the pool has served the current epoch.
	if resp, b := post(t, ts, "/v1/threshold", QueryRequest{Q: []float64{0.5, 0.5}, Tau: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("threshold: %s", b)
	}
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !info.Mutable || info.Points != 100 || info.Dims != 2 || info.Segments == 0 {
		t.Fatalf("info = %+v", info)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Mutable == nil {
		t.Fatal("stats has no mutable block")
	}
	ms := stats.Mutable
	if ms.Points != 100 || ms.Seals != d.Seals() || ms.Segments == 0 {
		t.Fatalf("mutable stats = %+v", ms)
	}
	if ms.ServedEpoch != d.Epoch() {
		t.Fatalf("served epoch %d, manifest epoch %d", ms.ServedEpoch, d.Epoch())
	}
	ins, ok := stats.Endpoints["insert"]
	if !ok || ins.Requests != 1 || ins.Queries != 100 {
		t.Fatalf("insert endpoint stats = %+v", ins)
	}
}

// TestMutableConcurrentInsertAndQuery hammers a mutable server with
// interleaved inserts and queries; every response must be well-formed and
// the final count exact. Run with -race in CI.
func TestMutableConcurrentInsertAndQuery(t *testing.T) {
	d, ts := testMutableServer(t, karl.WithSealSize(32), karl.WithCompactionFanout(2))
	// Prime one point so queries never see an empty engine.
	if resp, b := post(t, ts, "/v1/insert", InsertRequest{P: []float64{0.5, 0.5}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime insert: %s", b)
	}
	const (
		inserters = 4
		queriers  = 4
		perWorker = 150
	)
	var wg sync.WaitGroup
	errc := make(chan error, inserters+queriers)
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				resp, b := post(t, ts, "/v1/insert", InsertRequest{P: []float64{rng.Float64(), rng.Float64()}})
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("insert: %s", b)
					return
				}
			}
		}(int64(100 + g))
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				q := []float64{rng.Float64(), rng.Float64()}
				var resp *http.Response
				var b []byte
				if i%2 == 0 {
					resp, b = post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.2})
				} else {
					resp, b = post(t, ts, "/v1/threshold", QueryRequest{Q: q, Tau: 0.5})
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query: %s", b)
					return
				}
			}
		}(int64(200 + g))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if want := 1 + inserters*perWorker; d.Len() != want {
		t.Fatalf("Len = %d want %d", d.Len(), want)
	}
}

func ptr(v float64) *float64 { return &v }

// del issues a DELETE request with a JSON body.
func del(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func TestDeleteEndpoint(t *testing.T) {
	d, ts := testMutableServer(t, karl.WithSealSize(8), karl.WithAutoCompaction(false))
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{float64(i) / 20, 0.5}
	}
	resp, body := post(t, ts, "/v1/insert", InsertRequest{Points: pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %s", body)
	}
	var ir InsertResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.IDs) != 20 {
		t.Fatalf("got %d ids, want 20", len(ir.IDs))
	}

	// Single delete by returned ID: the point is sealed, so it becomes a
	// tombstone rather than shrinking a segment.
	resp, body = del(t, ts, "/v1/point", DeleteRequest{ID: ir.IDs[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	var dr DeleteResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Deleted != 1 || dr.Len != 19 {
		t.Fatalf("delete response %+v", dr)
	}
	if d.Len() != 19 {
		t.Fatalf("engine Len = %d, want 19", d.Len())
	}

	// Double delete and unknown IDs are 404.
	for name, id := range map[string]uint64{
		"double delete": ir.IDs[0],
		"never issued":  1 << 40,
	} {
		resp, body = del(t, ts, "/v1/point", DeleteRequest{ID: id})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}

	// Bulk delete; a mid-batch 404 reports the partial landing.
	resp, body = del(t, ts, "/v1/point", DeleteRequest{IDs: ir.IDs[1:4]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk delete: %d %s", resp.StatusCode, body)
	}
	resp, body = del(t, ts, "/v1/point", DeleteRequest{IDs: []uint64{ir.IDs[4], ir.IDs[4]}})
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "1 of 2 deleted") {
		t.Fatalf("partial bulk delete not reported: %d %s", resp.StatusCode, body)
	}

	// Malformed bodies.
	for name, body := range map[string]DeleteRequest{
		"empty":      {},
		"both forms": {ID: ir.IDs[5], IDs: []uint64{ir.IDs[6]}},
	} {
		resp, b := del(t, ts, "/v1/point", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, b)
		}
	}

	// Tombstones and lifetime deletes show up in /v1/stats and /v1/info.
	hresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if st.Mutable == nil || st.Mutable.Deletes != 5 || st.Mutable.Tombstones != d.Tombstones() {
		t.Fatalf("mutable stats %+v (engine tombstones %d)", st.Mutable, d.Tombstones())
	}
	if st.Endpoints["delete"].Requests == 0 || st.Endpoints["delete"].Errors == 0 {
		t.Fatalf("delete endpoint metrics %+v", st.Endpoints["delete"])
	}
	hresp, err = http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(hresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if info.Tombstones != d.Tombstones() || info.Points != 15 {
		t.Fatalf("info %+v (engine tombstones %d)", info, d.Tombstones())
	}
}

func TestDeleteOnStaticServerIs404(t *testing.T) {
	s, _ := New(testEngine(t))
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := del(t, ts, "/v1/point", DeleteRequest{ID: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete on static server: status %d", resp.StatusCode)
	}
}

func TestMutableInfoReportsWindowAndDecay(t *testing.T) {
	d, err := karl.NewDynamic(karl.Gaussian(5), karl.WithTTL(time.Minute), karl.WithDecayHalfLife(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMutable(d)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.WindowSeconds != 60 || info.HalfLifeSeconds != 30 {
		t.Fatalf("info window/decay %+v", info)
	}
}
