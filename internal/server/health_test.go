package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"karl"
)

func TestHealthzAndReadyz(t *testing.T) {
	s, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || !h.OK {
		t.Fatalf("healthz body: %+v err=%v", h, err)
	}

	resp, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	var r ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if !r.Ready || r.Points != 500 {
		t.Fatalf("readyz = %+v", r)
	}
	// Construction warms the pool, so a fresh server reports a parked clone.
	if !r.Warm {
		t.Fatalf("fresh server should be warm: %+v", r)
	}
}

func TestBoundsEndpoint(t *testing.T) {
	eng := testEngine(t)
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.5, 0.5}
	exact, _ := eng.Aggregate(q)

	// Exact request: no budget, lb = ub = value.
	resp, body := post(t, ts, "/v1/bounds", QueryRequest{Q: q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var b BoundsResponse
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if b.LB != b.UB || math.Abs(b.Value-exact) > 1e-12 {
		t.Fatalf("exact bounds = %+v, want lb=ub=value=%v", b, exact)
	}

	// Budgeted request: a certified interval containing the exact value,
	// tight to the relative budget.
	const eps = 0.1
	resp, body = post(t, ts, "/v1/bounds", QueryRequest{Q: q, Eps: eps})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	// FP tolerance: bounds from different summation orders can carry
	// ~1-ulp noise around the exact value once the gap has collapsed.
	tol := 1e-9 * (1 + math.Abs(exact))
	if b.LB-tol > exact || b.UB+tol < exact {
		t.Fatalf("exact %v outside certified [%v, %v]", exact, b.LB, b.UB)
	}
	if b.UB > (1+eps)*b.LB+tol {
		t.Fatalf("interval [%v, %v] looser than eps=%v", b.LB, b.UB, eps)
	}

	// Budget validation mirrors /v1/approximate.
	resp, _ = post(t, ts, "/v1/bounds", QueryRequest{Q: q, Eps: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative eps: status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/v1/bounds", QueryRequest{Q: q, Eps: 0.1, EpsNorm: 0.1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both budgets: status %d", resp.StatusCode)
	}

	// The bounds endpoint shows up in /v1/stats.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ep, ok := stats.Endpoints["bounds"]
	if !ok || ep.Requests < 2 {
		t.Fatalf("bounds endpoint stats missing or empty: %+v", stats.Endpoints)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	s, err := New(testEngine(t), WithMaxBodyBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Small request passes.
	resp, body := post(t, ts, "/v1/aggregate", QueryRequest{Q: []float64{0.5, 0.5}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body rejected: %d %s", resp.StatusCode, body)
	}

	// Oversized request is rejected with 413 and a descriptive error.
	big := bytes.Repeat([]byte("9"), 1024)
	raw := append([]byte(`{"q":[0.`), big...)
	raw = append(raw, []byte(`,0.5]}`)...)
	resp, body = postRaw(t, ts, "/v1/aggregate", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("exceeds")) {
		t.Fatalf("413 body not descriptive: %s", body)
	}

	if _, err := New(testEngine(t), WithMaxBodyBytes(0)); err == nil {
		t.Fatal("zero body cap accepted")
	}
}

func TestInfoReportsWeightMass(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	eng, err := karl.Build(pts, karl.Gaussian(1), karl.WithWeights([]float64{2, 3, -1, -0.5}))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(eng)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if math.Abs(info.WeightPos-5) > 1e-12 || math.Abs(info.WeightNeg-1.5) > 1e-12 {
		t.Fatalf("weight masses = %v/%v, want 5/1.5", info.WeightPos, info.WeightNeg)
	}
}
