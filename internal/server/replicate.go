package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"

	"karl"
	"karl/internal/replica"
)

// replicaSource is the optional leader-side replication surface a
// mutable engine exposes (provided by *karl.DynamicEngine): status
// counters, a full snapshot stream, and incremental batch export. A
// mutable engine without it simply has no /v1/replicate endpoints.
type replicaSource interface {
	NextSeq() uint64
	DeletePos() uint64
	PullBatch(fence, delPos uint64) (*karl.ReplicaBatch, error)
	WriteTo(w io.Writer) (int64, error)
}

// WithReplicaApplier marks the served engine as a replication follower
// driven by the given applier: /v1/replicate/status reports its
// catch-up state, POST /v1/replicate/promote turns it into a leader,
// and the write endpoints (insert, delete, split) answer 409 until
// promotion — a follower that accepted writes would silently fork from
// its leader.
func WithReplicaApplier(a *replica.Applier) Option {
	return func(c *config) { c.applier = a }
}

// replicateRoutes registers the replication endpoints. The export side
// (status, snapshot, tail) is served by leaders AND followers — a
// promoted follower feeds the next generation of followers, and chained
// catch-up reads from an unpromoted one are harmless because segments
// and rows are idempotent by seq.
func (s *Server) replicateRoutes() {
	s.mux.HandleFunc("GET /v1/replicate/status", s.handleReplicateStatus)
	s.mux.HandleFunc("GET /v1/replicate/snapshot", s.handleReplicateSnapshot)
	s.mux.HandleFunc("GET /v1/replicate/tail", s.handleReplicateTail)
	s.mux.HandleFunc("POST /v1/replicate/promote", s.handleReplicatePromote)
}

// writeAllowed gates the mutation endpoints on replication role: an
// unpromoted follower refuses writes with 409 so a misconfigured client
// cannot fork it from its leader.
func (s *Server) writeAllowed(w http.ResponseWriter) bool {
	if s.applier != nil && !s.applier.Promoted() {
		writeJSON(w, http.StatusConflict, errorResponse{
			"this shard is a replication follower; writes go to its leader (or POST /v1/replicate/promote)",
		})
		return false
	}
	return true
}

// handleReplicateStatus reports the engine's replication status: the
// applier's catch-up state for followers, export counters for leaders.
func (s *Server) handleReplicateStatus(w http.ResponseWriter, r *http.Request) {
	if s.applier != nil {
		writeJSON(w, http.StatusOK, s.applier.Status())
		return
	}
	writeJSON(w, http.StatusOK, replica.Status{
		Role:      "leader",
		NextSeq:   s.rsrc.NextSeq(),
		DeletePos: s.rsrc.DeletePos(),
		Points:    s.dyn.Len(),
		Epoch:     s.dyn.Epoch(),
	})
}

// handleReplicateSnapshot streams the engine's full state (a karl
// persistence stream) with the delete-log position captured BEFORE
// serialization in the X-Karl-Delete-Pos header — the fresh-follower
// bootstrap unit.
func (s *Server) handleReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	delPos := s.rsrc.DeletePos()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(replica.DeletePosHeader, strconv.FormatUint(delPos, 10))
	// An error mid-stream cannot change the status line; the client sees
	// a truncated gob, which ReadDynamic rejects loudly.
	_, _ = s.rsrc.WriteTo(w)
}

// handleReplicateTail answers one incremental pull: everything above
// the follower's fence and delete position as one consistent batch.
// HTTP 409 is the resync verdict (trimmed delete log, coreset history)
// — HTTPSource maps it back to karl.ErrReplicaResync.
func (s *Server) handleReplicateTail(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fence, err := strconv.ParseUint(q.Get("fence"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{`invalid "fence" query parameter`})
		return
	}
	delPos, err := strconv.ParseUint(q.Get("deletes"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{`invalid "deletes" query parameter`})
		return
	}
	b, err := s.rsrc.PullBatch(fence, delPos)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, karl.ErrReplicaResync) {
			status = http.StatusConflict
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// handleReplicatePromote turns a follower into a leader: the applier
// stops pulling and the write endpoints open up. Promoting a shard that
// was never a follower is a 409.
func (s *Server) handleReplicatePromote(w http.ResponseWriter, r *http.Request) {
	if s.applier == nil {
		writeJSON(w, http.StatusConflict, errorResponse{"this shard is not a replication follower"})
		return
	}
	s.applier.Promote()
	writeJSON(w, http.StatusOK, s.applier.Status())
}
