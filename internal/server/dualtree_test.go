package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"karl"
)

func randBatch(rng *rand.Rand, n, dim int) [][]float64 {
	qs := make([][]float64, n)
	for i := range qs {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		qs[i] = q
	}
	return qs
}

// TestBatchDualTreeStats checks that /v1/stats reports the dual_tree block:
// a large batch on a dual-forced engine counts as a hit with node-pair
// work, a batch on a sequential-forced engine counts as a miss.
func TestBatchDualTreeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randBatch(rng, 600, 3)
	for _, tc := range []struct {
		exec karl.BatchExecutor
		hit  bool
	}{
		{karl.BatchDualTree, true},
		{karl.BatchSequential, false},
	} {
		eng, err := karl.Build(pts, karl.Gaussian(3), karl.WithBatchExecutor(tc.exec))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(eng)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		resp, body := post(t, ts, "/v1/batch", BatchRequest{
			Kind: "approximate", Queries: randBatch(rng, 128, 3), Eps: 0.1, Workers: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
		}
		st := getStats(t, ts)
		ts.Close()
		if st.DualTree == nil {
			t.Fatal("stats response missing dual_tree block")
		}
		if tc.hit {
			if st.DualTree.Hits != 1 || st.DualTree.Misses != 0 {
				t.Fatalf("dual-forced: hits=%d misses=%d", st.DualTree.Hits, st.DualTree.Misses)
			}
			if st.DualTree.Queries != 128 || st.DualTree.NodePairs == 0 {
				t.Fatalf("dual-forced: queries=%d node_pairs=%d", st.DualTree.Queries, st.DualTree.NodePairs)
			}
		} else {
			if st.DualTree.Hits != 0 || st.DualTree.Misses != 1 {
				t.Fatalf("sequential-forced: hits=%d misses=%d", st.DualTree.Hits, st.DualTree.Misses)
			}
		}
	}
}

// TestConcurrentBatchStress races /v1/batch requests (forced through the
// dual-tree executor) against /v1/insert traffic on a mutable server: every
// batch must succeed against whatever snapshot it lands on, with seals and
// manifest swaps happening underneath.
func TestConcurrentBatchStress(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d, ts := testMutableServer(t,
		karl.WithSealSize(64),
		karl.WithBatchExecutor(karl.BatchDualTree),
	)
	if _, err := d.InsertBulk(randBatch(rng, 200, 2), nil); err != nil {
		t.Fatal(err)
	}

	const (
		inserters = 2
		queriers  = 4
		rounds    = 15
	)
	var wg sync.WaitGroup
	errs := make(chan string, inserters+queriers)
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				resp, body := post(t, ts, "/v1/insert", InsertRequest{Points: randBatch(rng, 40, 2)})
				if resp.StatusCode != http.StatusOK {
					errs <- "insert: " + string(body)
					return
				}
			}
		}(int64(100 + w))
	}
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				kind := [3]string{"approximate", "threshold", "aggregate"}[r%3]
				req := BatchRequest{Kind: kind, Queries: randBatch(rng, 80, 2), Workers: 2}
				switch kind {
				case "approximate":
					req.Eps = 0.1
				case "threshold":
					req.Tau = 1
				}
				resp, body := post(t, ts, "/v1/batch", req)
				if resp.StatusCode != http.StatusOK {
					errs <- "batch " + kind + ": " + string(body)
					return
				}
				var br BatchResponse
				if err := json.Unmarshal(body, &br); err != nil {
					errs <- "batch decode: " + err.Error()
					return
				}
				if kind == "threshold" {
					if len(br.Over) != 80 {
						errs <- "batch threshold: wrong result count"
						return
					}
				} else if len(br.Values) != 80 {
					errs <- "batch " + kind + ": wrong result count"
					return
				}
			}
		}(int64(200 + w))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := d.DualTreeStats()
	if st.DualBatches == 0 {
		t.Fatal("stress run recorded no dual-tree batches")
	}
}
