package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"karl"
)

// tierEngine builds a clustered Type I engine big enough that the sketch
// tier actually reduces it.
func tierEngine(t *testing.T) *karl.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	pts := make([][]float64, 3000)
	for i := range pts {
		base := float64(i%3) * 0.3
		pts[i] = []float64{base + rng.Float64()*0.2, base + rng.Float64()*0.2}
	}
	eng, err := karl.Build(pts, karl.Gaussian(20))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func tierServer(t *testing.T, eps float64) (*karl.Engine, *httptest.Server) {
	t.Helper()
	eng := tierEngine(t)
	s, err := New(eng, WithSketchTier(eps))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return eng, ts
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSketchTierValidation(t *testing.T) {
	eng := tierEngine(t)
	for _, eps := range []float64{-0.1, 1, 2, math.NaN(), math.Inf(1)} {
		if _, err := New(eng, WithSketchTier(eps)); err == nil {
			t.Fatalf("sketch eps %v accepted", eps)
		}
	}
	// Type III engines cannot be sketched: New must surface the error.
	rng := rand.New(rand.NewSource(72))
	pts := make([][]float64, 200)
	w := make([]float64, 200)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
		w[i] = rng.NormFloat64()
	}
	mixed, err := karl.Build(pts, karl.Gaussian(5), karl.WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mixed, WithSketchTier(0.1)); err == nil {
		t.Fatal("sketch tier over Type III accepted")
	}
}

// TestSketchTierRouting checks hit/miss accounting and that routed answers
// respect the combined normalized error bound. Only eps_norm requests are
// tier-eligible; relative-eps requests are served by the full index and do
// not touch the tier counters.
func TestSketchTierRouting(t *testing.T) {
	eng, ts := tierServer(t, 0.1)

	// eps_norm below the sketch bound: full index, a tier miss; the
	// normalized contract still holds (served at relative ε = eps_norm).
	q := []float64{0.35, 0.35}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, EpsNorm: 0.05})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var miss ValueResponse
	if err := json.Unmarshal(body, &miss); err != nil {
		t.Fatal(err)
	}
	if math.Abs(miss.Value-exact)/float64(eng.Len()) > 0.05 {
		t.Fatalf("tier-miss normalized error %v exceeds 0.05",
			math.Abs(miss.Value-exact)/float64(eng.Len()))
	}

	// eps_norm at and above the bound: coreset engine, tier hits.
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, EpsNorm: eps})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var v ValueResponse
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.Value-exact)/float64(eng.Len()) > eps {
			t.Fatalf("eps_norm=%v: normalized error %v exceeds budget", eps,
				math.Abs(v.Value-exact)/float64(eng.Len()))
		}
	}

	// A relative-eps request — even with a generous budget — is not
	// tier-eligible and must leave the counters alone.
	resp, body = post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	st := getStats(t, ts)
	if st.Tier == nil {
		t.Fatal("stats missing tier block")
	}
	if st.Tier.SketchHits != 3 || st.Tier.FullServes != 1 {
		t.Fatalf("tier counters hits=%d misses=%d, want 3/1", st.Tier.SketchHits, st.Tier.FullServes)
	}
	if st.Tier.SketchPoints <= 0 || st.Tier.SketchPoints >= eng.Len() {
		t.Fatalf("sketch points %d of %d", st.Tier.SketchPoints, eng.Len())
	}
	if st.Tier.SketchEps != 0.1 {
		t.Fatalf("sketch eps %v", st.Tier.SketchEps)
	}
}

// TestSketchTierRelativeContract is the regression test for the error-scale
// conflation bug: a query in a low-density region, where F_P(q) ≪ W, must
// keep the relative-error contract even when its eps is far above the
// sketch's normalized bound. The old router sent such queries to the
// coreset, whose normalized bound permits absolute error ε·W — unbounded
// relative error on a tiny aggregate.
func TestSketchTierRelativeContract(t *testing.T) {
	eng, ts := tierServer(t, 0.1)
	q := []float64{1.5, 1.5} // far from all three clusters: F_P(q) ≪ W
	exact, _ := eng.Aggregate(q)
	if exact > 1 { // the scenario needs a genuinely low-density query
		t.Fatalf("test query not low-density: F_P = %v", exact)
	}
	for _, eps := range []float64{0.2, 0.5} { // both ≥ sketchEps = 0.1
		resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: eps})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var v ValueResponse
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.Value-exact) > eps*exact {
			t.Fatalf("eps=%v: |%v - %v| exceeds relative budget %v",
				eps, v.Value, exact, eps*exact)
		}
	}
	// None of it was tier traffic.
	if st := getStats(t, ts); st.Tier.SketchHits != 0 || st.Tier.FullServes != 0 {
		t.Fatalf("relative traffic counted by the tier: hits=%d misses=%d",
			st.Tier.SketchHits, st.Tier.FullServes)
	}
}

// TestApproximateBudgetValidation pins the exactly-one-of contract between
// eps and eps_norm.
func TestApproximateBudgetValidation(t *testing.T) {
	_, ts := tierServer(t, 0.1)
	for name, req := range map[string]QueryRequest{
		"both set":          {Q: []float64{0.5, 0.5}, Eps: 0.1, EpsNorm: 0.1},
		"eps_norm negative": {Q: []float64{0.5, 0.5}, EpsNorm: -0.1},
		"eps_norm one":      {Q: []float64{0.5, 0.5}, EpsNorm: 1},
		"eps_norm above":    {Q: []float64{0.5, 0.5}, EpsNorm: 1.5},
		"neither":           {Q: []float64{0.5, 0.5}},
	} {
		resp, body := post(t, ts, "/v1/approximate", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts, "/v1/batch", BatchRequest{
		Kind: "approximate", Queries: [][]float64{{0.5, 0.5}}, Eps: 0.1, EpsNorm: 0.1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with both budgets: status %d: %s", resp.StatusCode, body)
	}
}

// TestEpsNormWithoutTier: the normalized error model is a request-level
// contract, valid with or without a sketch tier behind it.
func TestEpsNormWithoutTier(t *testing.T) {
	eng := tierEngine(t)
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	q := []float64{0.35, 0.35}
	exact, _ := eng.Aggregate(q)
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, EpsNorm: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Value-exact)/float64(eng.Len()) > 0.2 {
		t.Fatal("normalized bound violated without tier")
	}
}

// TestSketchTierBatch checks batch approximate requests route through the
// tier with per-query counting, and that other kinds — and relative-eps
// batches — never touch it.
func TestSketchTierBatch(t *testing.T) {
	eng, ts := tierServer(t, 0.1)
	queries := [][]float64{{0.3, 0.3}, {0.6, 0.6}, {0.9, 0.9}}

	resp, body := post(t, ts, "/v1/batch", BatchRequest{Kind: "approximate", Queries: queries, EpsNorm: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Values) != len(queries) {
		t.Fatalf("%d values for %d queries", len(br.Values), len(queries))
	}
	for i, q := range queries {
		exact, _ := eng.Aggregate(q)
		if math.Abs(br.Values[i]-exact)/float64(eng.Len()) > 0.25 {
			t.Fatalf("query %d: normalized error too large", i)
		}
	}

	// A tight normalized budget counts misses; relative-eps batches and
	// non-approximate kinds leave both counters alone.
	post(t, ts, "/v1/batch", BatchRequest{Kind: "approximate", Queries: queries, EpsNorm: 0.01})
	post(t, ts, "/v1/batch", BatchRequest{Kind: "approximate", Queries: queries, Eps: 0.25})
	post(t, ts, "/v1/batch", BatchRequest{Kind: "aggregate", Queries: queries})
	post(t, ts, "/v1/batch", BatchRequest{Kind: "threshold", Queries: queries, Tau: 1})

	st := getStats(t, ts)
	if st.Tier.SketchHits != 3 || st.Tier.FullServes != 3 {
		t.Fatalf("tier counters hits=%d misses=%d, want 3/3", st.Tier.SketchHits, st.Tier.FullServes)
	}
}

// TestSketchTierExactBudget: eps_norm exactly equal to the sketch bound
// leaves no refinement budget; the tier answers with the coreset's exact
// aggregate.
func TestSketchTierExactBudget(t *testing.T) {
	eng, ts := tierServer(t, 0.2)
	q := []float64{0.5, 0.5}
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, EpsNorm: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	if math.Abs(v.Value-exact)/float64(eng.Len()) > 0.2 {
		t.Fatal("exact-budget answer outside bound")
	}
}

// TestStatsWithoutTier pins the Tier block absent when the option is off.
func TestStatsWithoutTier(t *testing.T) {
	s, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if st := getStats(t, ts); st.Tier != nil {
		t.Fatalf("tier block present without WithSketchTier: %+v", st.Tier)
	}
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.SketchPoints != 0 || info.SketchEps != 0 {
		t.Fatalf("info advertises a sketch without the tier: %+v", info)
	}
}

// TestInfoWithTier checks /v1/info advertises the sketch.
func TestInfoWithTier(t *testing.T) {
	eng, ts := tierServer(t, 0.15)
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Points != eng.Len() {
		t.Fatalf("points %d want %d", info.Points, eng.Len())
	}
	if info.SketchPoints <= 0 || info.SketchPoints >= eng.Len() || info.SketchEps != 0.15 {
		t.Fatalf("sketch advertisement %+v", info)
	}
}
