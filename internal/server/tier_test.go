package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"karl"
)

// tierEngine builds a clustered Type I engine big enough that the sketch
// tier actually reduces it.
func tierEngine(t *testing.T) *karl.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	pts := make([][]float64, 3000)
	for i := range pts {
		base := float64(i%3) * 0.3
		pts[i] = []float64{base + rng.Float64()*0.2, base + rng.Float64()*0.2}
	}
	eng, err := karl.Build(pts, karl.Gaussian(20))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func tierServer(t *testing.T, eps float64) (*karl.Engine, *httptest.Server) {
	t.Helper()
	eng := tierEngine(t)
	s, err := New(eng, WithSketchTier(eps))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return eng, ts
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSketchTierValidation(t *testing.T) {
	eng := tierEngine(t)
	for _, eps := range []float64{-0.1, 1, 2, math.NaN(), math.Inf(1)} {
		if _, err := New(eng, WithSketchTier(eps)); err == nil {
			t.Fatalf("sketch eps %v accepted", eps)
		}
	}
	// Type III engines cannot be sketched: New must surface the error.
	rng := rand.New(rand.NewSource(72))
	pts := make([][]float64, 200)
	w := make([]float64, 200)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
		w[i] = rng.NormFloat64()
	}
	mixed, err := karl.Build(pts, karl.Gaussian(5), karl.WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mixed, WithSketchTier(0.1)); err == nil {
		t.Fatal("sketch tier over Type III accepted")
	}
}

// TestSketchTierRouting checks hit/miss accounting and that routed answers
// respect the combined normalized error bound.
func TestSketchTierRouting(t *testing.T) {
	eng, ts := tierServer(t, 0.1)

	// ε below the guarantee: full index, a tier miss, exact relative error.
	q := []float64{0.35, 0.35}
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.05})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// ε at and above the guarantee: coreset engine, tier hits.
	exact, _ := eng.Aggregate(q)
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: eps})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var v ValueResponse
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.Value-exact)/float64(eng.Len()) > eps {
			t.Fatalf("eps=%v: normalized error %v exceeds budget", eps,
				math.Abs(v.Value-exact)/float64(eng.Len()))
		}
	}

	st := getStats(t, ts)
	if st.Tier == nil {
		t.Fatal("stats missing tier block")
	}
	if st.Tier.SketchHits != 3 || st.Tier.FullServes != 1 {
		t.Fatalf("tier counters hits=%d misses=%d, want 3/1", st.Tier.SketchHits, st.Tier.FullServes)
	}
	if st.Tier.SketchPoints <= 0 || st.Tier.SketchPoints >= eng.Len() {
		t.Fatalf("sketch points %d of %d", st.Tier.SketchPoints, eng.Len())
	}
	if st.Tier.SketchEps != 0.1 {
		t.Fatalf("sketch eps %v", st.Tier.SketchEps)
	}
}

// TestSketchTierBatch checks batch approximate requests route through the
// tier with per-query counting, and that other kinds never touch it.
func TestSketchTierBatch(t *testing.T) {
	eng, ts := tierServer(t, 0.1)
	queries := [][]float64{{0.3, 0.3}, {0.6, 0.6}, {0.9, 0.9}}

	resp, body := post(t, ts, "/v1/batch", BatchRequest{Kind: "approximate", Queries: queries, Eps: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Values) != len(queries) {
		t.Fatalf("%d values for %d queries", len(br.Values), len(queries))
	}
	for i, q := range queries {
		exact, _ := eng.Aggregate(q)
		if math.Abs(br.Values[i]-exact)/float64(eng.Len()) > 0.25 {
			t.Fatalf("query %d: normalized error too large", i)
		}
	}

	// A tight-budget batch and non-approximate kinds leave the hit count.
	post(t, ts, "/v1/batch", BatchRequest{Kind: "approximate", Queries: queries, Eps: 0.01})
	post(t, ts, "/v1/batch", BatchRequest{Kind: "aggregate", Queries: queries})
	post(t, ts, "/v1/batch", BatchRequest{Kind: "threshold", Queries: queries, Tau: 1})

	st := getStats(t, ts)
	if st.Tier.SketchHits != 3 || st.Tier.FullServes != 3 {
		t.Fatalf("tier counters hits=%d misses=%d, want 3/3", st.Tier.SketchHits, st.Tier.FullServes)
	}
}

// TestSketchTierExactBudget: ε exactly equal to the guarantee leaves no
// refinement budget; the tier answers with the coreset's exact aggregate.
func TestSketchTierExactBudget(t *testing.T) {
	eng, ts := tierServer(t, 0.2)
	q := []float64{0.5, 0.5}
	resp, body := post(t, ts, "/v1/approximate", QueryRequest{Q: q, Eps: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v ValueResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	exact, _ := eng.Aggregate(q)
	if math.Abs(v.Value-exact)/float64(eng.Len()) > 0.2 {
		t.Fatal("exact-budget answer outside bound")
	}
}

// TestStatsWithoutTier pins the Tier block absent when the option is off.
func TestStatsWithoutTier(t *testing.T) {
	s, err := New(testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if st := getStats(t, ts); st.Tier != nil {
		t.Fatalf("tier block present without WithSketchTier: %+v", st.Tier)
	}
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.SketchPoints != 0 || info.SketchEps != 0 {
		t.Fatalf("info advertises a sketch without the tier: %+v", info)
	}
}

// TestInfoWithTier checks /v1/info advertises the sketch.
func TestInfoWithTier(t *testing.T) {
	eng, ts := tierServer(t, 0.15)
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Points != eng.Len() {
		t.Fatalf("points %d want %d", info.Points, eng.Len())
	}
	if info.SketchPoints <= 0 || info.SketchPoints >= eng.Len() || info.SketchEps != 0.15 {
		t.Fatalf("sketch advertisement %+v", info)
	}
}
