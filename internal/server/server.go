// Package server exposes a KARL engine over HTTP/JSON, so a trained model
// (e.g. an SVM's support vectors, or a KDE point set) can serve threshold
// and approximate kernel aggregation queries as a network service — the
// deployment mode of the paper's motivating applications (network
// intrusion detection, online classification).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"karl"
)

// Server wraps an engine with an HTTP handler. All endpoints accept and
// return JSON. The engine is guarded by a mutex (engines are not
// concurrency-safe); throughput-critical deployments should shard across
// processes or use per-connection clones.
type Server struct {
	mu  sync.Mutex
	eng *karl.Engine
	mux *http.ServeMux
}

// New builds a server around an engine.
func New(eng *karl.Engine) (*Server, error) {
	if eng == nil {
		return nil, errors.New("server: nil engine")
	}
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /v1/threshold", s.handleThreshold)
	s.mux.HandleFunc("POST /v1/approximate", s.handleApproximate)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InfoResponse describes the served model.
type InfoResponse struct {
	Points int     `json:"points"`
	Dims   int     `json:"dims"`
	Kernel string  `json:"kernel"`
	Gamma  float64 `json:"gamma"`
}

// QueryRequest is the shared request body; Tau is used by /threshold and
// Eps by /approximate.
type QueryRequest struct {
	Q   []float64 `json:"q"`
	Tau float64   `json:"tau"`
	Eps float64   `json:"eps"`
}

// ValueResponse carries a numeric result.
type ValueResponse struct {
	Value float64 `json:"value"`
}

// BoolResponse carries a decision result.
type BoolResponse struct {
	Over bool `json:"over"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	k := s.eng.Kernel()
	writeJSON(w, http.StatusOK, InfoResponse{
		Points: s.eng.Len(),
		Dims:   s.eng.Dims(),
		Kernel: k.Kind.String(),
		Gamma:  k.Gamma,
	})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v, err := s.eng.Aggregate(req.Q)
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ValueResponse{v})
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	over, err := s.eng.Threshold(req.Q, req.Tau)
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, BoolResponse{over})
}

func (s *Server) handleApproximate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if req.Eps <= 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"eps must be positive"})
		return
	}
	s.mu.Lock()
	v, err := s.eng.Approximate(req.Q, req.Eps)
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ValueResponse{v})
}

// decode parses the request body and validates the query vector.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (QueryRequest, bool) {
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("bad request: %v", err)})
		return req, false
	}
	if len(req.Q) != s.eng.Dims() {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			fmt.Sprintf("query has %d dims, model has %d", len(req.Q), s.eng.Dims())})
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
