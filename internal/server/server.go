// Package server exposes a KARL engine over HTTP/JSON, so a trained model
// (e.g. an SVM's support vectors, or a KDE point set) can serve threshold
// and approximate kernel aggregation queries as a network service — the
// deployment mode of the paper's motivating applications (network
// intrusion detection, online classification).
//
// Concurrency model: engines are per-request. Each request acquires an
// engine clone from a bounded pool (clones share the indexed data but own
// their refinement scratch state), so N in-flight requests refine on N
// independent engines with no global lock anywhere on the query path.
//
// Two dataset modes share the same endpoints. New serves a static
// *karl.Engine over an immutable index. NewMutable serves a
// *karl.DynamicEngine — its segmented LSM manifest grows through POST
// /v1/insert while queries keep flowing: pooled clones re-arm themselves
// against the latest manifest epoch on their next query (an atomic
// snapshot, never a lock held across refinement), and /v1/stats reports
// how the pool tracks the advancing epoch.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"karl"
	"karl/internal/replica"
	"karl/internal/shard"
)

// lsmStats is the optional deep-introspection surface a segmented engine
// exposes beyond karl.MutableEngine: manifest shape and maintenance
// counters for /v1/info and /v1/stats. *karl.DynamicEngine provides it;
// a mutable engine without it simply reports zeros there.
type lsmStats interface {
	Segments() []karl.SegmentInfo
	MemtableLen() int
	Seals() int
	Compactions() int
	Tombstones() int
	Deletes() int
	TTL() time.Duration
	DecayHalfLife() time.Duration
}

// Server wraps an engine with an HTTP handler. All endpoints accept and
// return JSON.
type Server struct {
	pool    *enginePool
	mux     *http.ServeMux
	met     metrics
	dims    int
	maxBody int64

	// refineWorkers > 1 arms every pooled clone with intra-query parallel
	// refinement of that width (karl.WithRefineWorkers wired into the
	// per-request path); single-query endpoints served this way count in
	// the /v1/stats refine block.
	refineWorkers int

	// dyn is set by NewMutable: the engine the write endpoints feed. lsm
	// is its optional introspection surface (nil when the engine lacks
	// it). Both nil for static serving.
	dyn karl.MutableEngine
	lsm lsmStats

	// rsrc is the engine's replication export surface (nil when the
	// engine is not a *karl.DynamicEngine); applier is set by
	// WithReplicaApplier when this server fronts a replication follower,
	// and gates the write endpoints until promotion.
	rsrc    replicaSource
	applier *replica.Applier

	// Sketch tier (nil pools when disabled): a coreset engine with
	// normalized error bound sketchEps serves /v1/approximate requests
	// that opt into the normalized error model (eps_norm) with a budget
	// covering the bound; everything else — tighter normalized budgets and
	// all relative-eps traffic — falls through to the full index.
	sketch    *enginePool
	sketchEps float64
	sketchLen int
}

// Option configures New.
type Option func(*config)

type config struct {
	poolSize      int
	sketchEps     float64
	maxBody       int64
	refineWorkers int
	applier       *replica.Applier
}

// defaultMaxBody bounds POST request bodies when WithMaxBodyBytes is not
// given: generous enough for large bulk inserts and batches, small enough
// that one oversized body cannot exhaust memory.
const defaultMaxBody int64 = 32 << 20

// WithPoolSize bounds the number of idle engine clones kept for reuse
// (default 2·GOMAXPROCS). Bursts beyond the bound still get a fresh clone
// each — the pool caps retained memory, never concurrency.
func WithPoolSize(n int) Option { return func(c *config) { c.poolSize = n } }

// WithMaxBodyBytes bounds every POST request body (default 32 MiB).
// Oversized bodies are rejected with 413 before they can exhaust memory.
func WithMaxBodyBytes(n int64) Option { return func(c *config) { c.maxBody = n } }

// WithRefineWorkers arms every pooled clone with intra-query parallel
// refinement of width n (n ≤ 1 keeps the sequential loop) — the serving
// form of karl.WithRefineWorkers, applied on the per-request path since
// each request refines on its own clone. Single-query endpoints served
// with parallel refinement are counted in the /v1/stats refine block.
func WithRefineWorkers(n int) Option { return func(c *config) { c.refineWorkers = n } }

// WithSketchTier enables tiered serving: at construction the engine is
// sketched down to a coreset (karl.Engine.Sketch) with normalized error
// bound eps, and /v1/approximate queries that opt into the normalized
// error model (the "eps_norm" request field) with a budget at or above
// that bound are answered from the small coreset engine — the leftover
// budget eps_norm−eps drives its refinement, so the combined normalized
// error stays within the request. Tighter normalized budgets fall through
// to the full index, and relative-error ("eps") traffic never touches the
// sketch: the coreset bound is on the normalized scale and implies no
// useful relative bound for queries where F_P(q) ≪ W. Routing of
// normalized-budget queries is reported by GET /v1/stats.
func WithSketchTier(eps float64) Option { return func(c *config) { c.sketchEps = eps } }

// New builds a server around a static engine. The engine itself is never
// queried: it is the template the clone pool grows from, so the caller
// may keep using it from one other goroutine.
func New(eng *karl.Engine, opts ...Option) (*Server, error) {
	if eng == nil {
		return nil, errors.New("server: nil engine")
	}
	cfg := config{poolSize: 2 * runtime.GOMAXPROCS(0), maxBody: defaultMaxBody}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.poolSize < 1 {
		return nil, fmt.Errorf("server: pool size %d out of range", cfg.poolSize)
	}
	if cfg.maxBody < 1 {
		return nil, fmt.Errorf("server: max body bytes %d out of range", cfg.maxBody)
	}
	s := &Server{
		pool:          newEnginePool(eng, cloneFunc(eng, cfg.refineWorkers), cfg.poolSize),
		mux:           http.NewServeMux(),
		dims:          eng.Dims(),
		maxBody:       cfg.maxBody,
		refineWorkers: cfg.refineWorkers,
	}
	if cfg.sketchEps != 0 {
		if !isFinite(cfg.sketchEps) || cfg.sketchEps <= 0 || cfg.sketchEps >= 1 {
			return nil, fmt.Errorf("server: sketch tier eps must be in (0,1), got %v", cfg.sketchEps)
		}
		skEng, err := eng.Sketch(cfg.sketchEps)
		if err != nil {
			return nil, fmt.Errorf("server: sketch tier: %w", err)
		}
		info, _ := skEng.SketchInfo()
		s.sketch = newEnginePool(skEng, cloneFunc(skEng, cfg.refineWorkers), cfg.poolSize)
		s.sketchEps = info.Eps
		s.sketchLen = skEng.Len()
	}
	s.routes()
	s.warm()
	return s, nil
}

// NewMutable builds a server around a mutable (segmented) engine: the
// query endpoints of New plus POST /v1/insert, DELETE /v1/point and POST
// /v1/split, with segment and manifest epoch introspection in /v1/info
// and /v1/stats when the engine exposes it. The sketch tier is not
// supported — a static coreset cannot track a growing dataset.
func NewMutable(d karl.MutableEngine, opts ...Option) (*Server, error) {
	if d == nil {
		return nil, errors.New("server: nil engine")
	}
	cfg := config{poolSize: 2 * runtime.GOMAXPROCS(0), maxBody: defaultMaxBody}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.poolSize < 1 {
		return nil, fmt.Errorf("server: pool size %d out of range", cfg.poolSize)
	}
	if cfg.maxBody < 1 {
		return nil, fmt.Errorf("server: max body bytes %d out of range", cfg.maxBody)
	}
	if cfg.sketchEps != 0 {
		return nil, errors.New("server: sketch tier requires a static engine")
	}
	s := &Server{
		pool:          newEnginePool(d, cloneFunc(d, cfg.refineWorkers), cfg.poolSize),
		mux:           http.NewServeMux(),
		dims:          d.Dims(),
		dyn:           d,
		maxBody:       cfg.maxBody,
		refineWorkers: cfg.refineWorkers,
	}
	s.lsm, _ = d.(lsmStats)
	s.applier = cfg.applier
	s.rsrc, _ = d.(replicaSource)
	if s.applier != nil && s.rsrc == nil {
		return nil, errors.New("server: replica applier requires a replicating engine")
	}
	s.routes()
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("DELETE /v1/point", s.handleDelete)
	s.mux.HandleFunc("POST /v1/split", s.handleSplit)
	if s.rsrc != nil {
		s.replicateRoutes()
	}
	s.warm()
	return s, nil
}

// cloneFunc builds the pool's clone factory: a fresh query view of the
// template, armed with the server's refine-worker override when one is
// configured.
func cloneFunc(template karl.QueryEngine, workers int) func() karl.QueryEngine {
	return func() karl.QueryEngine {
		c := template.CloneQuery()
		if workers > 1 {
			if rw, ok := c.(interface{ SetRefineWorkers(int) }); ok {
				rw.SetRefineWorkers(workers)
			}
		}
		return c
	}
}

// warm seeds the clone pools with one ready clone each, so the first
// request never pays the clone cost and GET /v1/readyz reflects a pool
// that can actually serve.
func (s *Server) warm() {
	s.pool.release(s.pool.acquire())
	if s.sketch != nil {
		s.sketch.release(s.sketch.acquire())
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /v1/threshold", s.handleThreshold)
	s.mux.HandleFunc("POST /v1/approximate", s.handleApproximate)
	s.mux.HandleFunc("POST /v1/bounds", s.handleBounds)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// enginePool recycles engine clones over a shared dataset. Acquire never
// blocks: an empty pool clones the template, a full pool drops the
// returned clone for the GC. The channel doubles as the free list and the
// bound. For mutable engines the pool additionally tracks the highest
// manifest epoch any released clone had armed — how current the pool's
// executors are relative to the advancing dataset.
type enginePool struct {
	template    karl.QueryEngine
	clone       func() karl.QueryEngine
	idle        chan karl.QueryEngine
	clones      atomic.Int64
	servedEpoch atomic.Uint64
}

func newEnginePool(template karl.QueryEngine, clone func() karl.QueryEngine, size int) *enginePool {
	return &enginePool{template: template, clone: clone, idle: make(chan karl.QueryEngine, size)}
}

func (p *enginePool) acquire() karl.QueryEngine {
	select {
	case e := <-p.idle:
		return e
	default:
		p.clones.Add(1)
		return p.clone()
	}
}

func (p *enginePool) release(e karl.QueryEngine) {
	if d, ok := e.(interface{ ArmedEpoch() (uint64, bool) }); ok {
		if epoch, armed := d.ArmedEpoch(); armed {
			for {
				cur := p.servedEpoch.Load()
				if epoch <= cur || p.servedEpoch.CompareAndSwap(cur, epoch) {
					break
				}
			}
		}
	}
	select {
	case p.idle <- e:
	default:
	}
}

func (p *enginePool) stats() PoolStats {
	return PoolStats{Idle: len(p.idle), Capacity: cap(p.idle), Clones: p.clones.Load()}
}

// InfoResponse describes the served model. SketchPoints/SketchEps are set
// only when the sketch tier is enabled; Mutable/Segments only for dynamic
// serving.
type InfoResponse struct {
	Points int     `json:"points"`
	Dims   int     `json:"dims"`
	Kernel string  `json:"kernel"`
	Gamma  float64 `json:"gamma"`
	// WeightPos and WeightNeg are the dataset's per-sign weight masses
	// (Σ w_i over w_i ≥ 0 and Σ |w_i| over w_i < 0). Their sum W is the
	// shard's mass W_S that a cluster coordinator uses for ε-budget
	// allocation and degraded-mode accounting.
	WeightPos    float64 `json:"weight_pos"`
	WeightNeg    float64 `json:"weight_neg,omitempty"`
	SketchPoints int     `json:"sketch_points,omitempty"`
	SketchEps    float64 `json:"sketch_eps,omitempty"`
	Mutable      bool    `json:"mutable,omitempty"`
	Segments     int     `json:"segments,omitempty"`
	// WindowSeconds is the sliding-window TTL (0 = points never expire) and
	// HalfLifeSeconds the exponential weight-decay half-life (0 = no decay);
	// both only for dynamic serving. Tombstones is the number of pending
	// (not yet compacted-away) deletes.
	WindowSeconds   float64 `json:"window_seconds,omitempty"`
	HalfLifeSeconds float64 `json:"halflife_seconds,omitempty"`
	Tombstones      int     `json:"tombstones,omitempty"`
}

// InsertRequest is the POST /v1/insert body: either one point ("p" with
// optional weight "w", default 1) or a bulk load ("points" with optional
// parallel "weights", default all 1). Exactly one form is required.
type InsertRequest struct {
	P       []float64   `json:"p,omitempty"`
	W       *float64    `json:"w,omitempty"`
	Points  [][]float64 `json:"points,omitempty"`
	Weights []float64   `json:"weights,omitempty"`
}

// InsertResponse reports a successful insert: the assigned point IDs (in
// input order, usable with DELETE /v1/point), the dataset size afterwards,
// and the manifest epoch (which advances when the insert triggered a seal
// or compaction). Inserts are all-or-nothing: a rejected request lands no
// points.
type InsertResponse struct {
	Inserted int      `json:"inserted"`
	IDs      []uint64 `json:"ids"`
	Len      int      `json:"len"`
	Epoch    uint64   `json:"epoch"`
}

// DeleteRequest is the DELETE /v1/point body: either one point ID ("id")
// or a bulk form ("ids"). Exactly one form is required. IDs are the
// sequence numbers InsertResponse returned.
type DeleteRequest struct {
	ID  uint64   `json:"id,omitempty"`
	IDs []uint64 `json:"ids,omitempty"`
}

// DeleteResponse reports how many points were removed, the live dataset
// size afterwards, and how many tombstones are pending compaction. Bulk
// deletes are sequential, not transactional: on error the response names
// the failing ID and how many earlier IDs already landed.
type DeleteResponse struct {
	Deleted    int    `json:"deleted"`
	Len        int    `json:"len"`
	Tombstones int    `json:"tombstones"`
	Epoch      uint64 `json:"epoch"`
}

// QueryRequest is the shared request body; Tau is used by /threshold, and
// Eps / EpsNorm by /approximate.
//
// /v1/approximate supports two distinct error models, selected by which
// budget field is set (exactly one is required):
//
//   - "eps" — relative error: the response v satisfies
//     |v − F_P(q)| ≤ eps·F_P(q). Always served by the full index; the
//     sketch tier is never used for relative budgets, because the
//     coreset's bound is on the normalized scale and implies no useful
//     relative bound for queries where F_P(q) ≪ W.
//   - "eps_norm" — normalized absolute error: the response v satisfies
//     |v − F_P(q)| ≤ eps_norm·W, where W is the total weight. Must lie in
//     (0,1). When the sketch tier is enabled and eps_norm covers the
//     sketch's bound, the query is served from the coreset with the
//     leftover budget; otherwise the full index serves it at relative
//     ε = eps_norm, which is conservative since F_P(q) ≤ W.
type QueryRequest struct {
	Q       []float64 `json:"q"`
	Tau     float64   `json:"tau"`
	Eps     float64   `json:"eps"`
	EpsNorm float64   `json:"eps_norm"`
}

// BatchRequest is the POST /v1/batch body. Kind selects the query type
// ("aggregate", "threshold" or "approximate"); Tau and Eps/EpsNorm apply
// to the whole batch (see QueryRequest for the two approximate error
// models); Workers bounds the fan-out (≤ 0 selects GOMAXPROCS).
type BatchRequest struct {
	Kind    string      `json:"kind"`
	Queries [][]float64 `json:"queries"`
	Tau     float64     `json:"tau"`
	Eps     float64     `json:"eps"`
	EpsNorm float64     `json:"eps_norm"`
	Workers int         `json:"workers"`
}

// BatchResponse carries index-aligned batch results: Values for
// aggregate/approximate, Over for threshold.
type BatchResponse struct {
	Values []float64 `json:"values,omitempty"`
	Over   []bool    `json:"over,omitempty"`
}

// ValueResponse carries a numeric result.
type ValueResponse struct {
	Value float64 `json:"value"`
}

// BoolResponse carries a decision result.
type BoolResponse struct {
	Over bool `json:"over"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	k := s.pool.template.Kernel()
	wpos, wneg := s.pool.template.WeightMass()
	resp := InfoResponse{
		Points:    s.pool.template.Len(),
		Dims:      s.curDims(),
		Kernel:    k.Kind.String(),
		Gamma:     k.Gamma,
		WeightPos: wpos,
		WeightNeg: wneg,
	}
	if s.sketch != nil {
		resp.SketchPoints = s.sketchLen
		resp.SketchEps = s.sketchEps
	}
	if s.dyn != nil {
		resp.Mutable = true
		if s.lsm != nil {
			resp.Segments = len(s.lsm.Segments())
			resp.WindowSeconds = s.lsm.TTL().Seconds()
			resp.HalfLifeSeconds = s.lsm.DecayHalfLife().Seconds()
			resp.Tombstones = s.lsm.Tombstones()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Pool: s.pool.stats(),
		Endpoints: map[string]EndpointStats{
			"aggregate":   s.met.aggregate.snapshot(),
			"threshold":   s.met.threshold.snapshot(),
			"approximate": s.met.approximate.snapshot(),
			"bounds":      s.met.bounds.snapshot(),
			"batch":       s.met.batch.snapshot(),
		},
		DualTree: s.dualTreeStats(),
	}
	if s.sketch != nil {
		resp.Tier = &TierStats{
			SketchHits:   s.met.tierHits.Load(),
			FullServes:   s.met.tierMisses.Load(),
			SketchPoints: s.sketchLen,
			SketchEps:    s.sketchEps,
			Pool:         s.sketch.stats(),
		}
	}
	if s.refineWorkers > 1 {
		resp.Refine = &RefineStats{
			Workers: s.refineWorkers,
			Queries: s.met.refineQueries.Load(),
		}
	}
	if s.dyn != nil {
		resp.Endpoints["insert"] = s.met.insert.snapshot()
		resp.Endpoints["delete"] = s.met.del.snapshot()
		resp.Endpoints["split"] = s.met.split.snapshot()
		ms := &MutableStats{
			Epoch:       s.dyn.Epoch(),
			ServedEpoch: s.pool.servedEpoch.Load(),
			Points:      s.dyn.Len(),
		}
		if s.lsm != nil {
			ms.Segments = len(s.lsm.Segments())
			ms.MemtableLen = s.lsm.MemtableLen()
			ms.Seals = s.lsm.Seals()
			ms.Compactions = s.lsm.Compactions()
			ms.Tombstones = s.lsm.Tombstones()
			ms.Deletes = s.lsm.Deletes()
		}
		resp.Mutable = ms
	}
	writeJSON(w, http.StatusOK, resp)
}

// dualTreeStats folds the engines' batch-executor telemetry into the
// /v1/stats block: the serving pool's counters (shared by every clone, so
// the template reads the whole pool's history) plus, when the sketch tier
// is enabled, the coreset engine's — its batches route independently.
func (s *Server) dualTreeStats() *DualTreeBatchStats {
	st := s.pool.template.DualTreeStats()
	if s.sketch != nil {
		sk := s.sketch.template.DualTreeStats()
		st.DualBatches += sk.DualBatches
		st.SequentialBatches += sk.SequentialBatches
		st.Queries += sk.Queries
		st.NodePairs += sk.NodePairs
		st.GroupCertified += sk.GroupCertified
		st.Fallbacks += sk.Fallbacks
	}
	return &DualTreeBatchStats{
		Hits:           int64(st.DualBatches),
		Misses:         int64(st.SequentialBatches),
		Queries:        int64(st.Queries),
		NodePairs:      int64(st.NodePairs),
		GroupCertified: int64(st.GroupCertified),
		Fallbacks:      int64(st.Fallbacks),
	}
}

// HealthResponse is the GET /v1/healthz body: pure liveness.
type HealthResponse struct {
	OK bool `json:"ok"`
}

// ReadyResponse is the GET /v1/readyz body: the index is loaded and the
// clone pool holds at least one warmed executor.
type ReadyResponse struct {
	Ready  bool `json:"ready"`
	Points int  `json:"points"`
	// Warm reports whether an idle clone is parked right now. Construction
	// warms the pool, so false only means every clone is currently serving
	// a request — the server is still ready.
	Warm bool `json:"warm"`
}

// handleHealthz is the liveness probe: the process is up and the handler
// chain works. It never touches an engine.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{OK: true})
}

// handleReadyz is the readiness probe the cluster coordinator (and any
// load balancer) polls before routing traffic: construction has loaded the
// index and warmed the clone pool, so a 200 here means queries will be
// served, not queued behind a build.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ReadyResponse{
		Ready:  true,
		Points: s.pool.template.Len(),
		Warm:   len(s.pool.idle) > 0 || s.pool.clones.Load() > 0,
	})
}

// BoundsResponse is the POST /v1/bounds body: the answer together with the
// final refinement bounds it terminated at. This is the bound-exchange
// wire unit of the cluster coordinator — per-shard [lb,ub] intervals sum
// to a global interval because F_P(q) = Σ_S F_S(q).
type BoundsResponse struct {
	Value float64 `json:"value"`
	LB    float64 `json:"lb"`
	UB    float64 `json:"ub"`
}

// handleBounds serves one query's value plus its lower/upper bounds. The
// budget semantics extend /v1/approximate: "eps" (relative) or "eps_norm"
// (normalized) drives refinement, and a request with NEITHER budget asks
// for the exact value (lb = ub = value) — the coordinator's final
// bound-exchange round.
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	m := &s.met.bounds
	m.requests.Add(1)
	var req QueryRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return
	}
	if err := s.validateBounds(req); err != nil {
		fail(w, m, err)
		return
	}
	eng := s.pool.acquire()
	var v float64
	var st karl.Stats
	var err error
	if budget := relativeBudget(req.Eps, req.EpsNorm); budget > 0 {
		v, st, err = eng.ApproximateStats(req.Q, budget)
	} else {
		v, st, err = eng.AggregateStats(req.Q)
	}
	s.pool.release(eng)
	if err != nil {
		fail(w, m, err)
		return
	}
	m.record(1, st)
	s.countRefine()
	writeJSON(w, http.StatusOK, BoundsResponse{Value: v, LB: st.LB, UB: st.UB})
}

// countRefine counts one single-query request served by a clone armed
// with parallel refinement, for the /v1/stats refine block.
func (s *Server) countRefine() {
	if s.refineWorkers > 1 {
		s.met.refineQueries.Add(1)
	}
}

// validateBounds checks a /v1/bounds request: like an approximate budget,
// except that omitting both budgets is allowed and means exact.
func (s *Server) validateBounds(req QueryRequest) error {
	if err := s.checkQuery(req.Q); err != nil {
		return err
	}
	if req.Eps == 0 && req.EpsNorm == 0 {
		return nil // exact round
	}
	return validateBudget(req.Eps, req.EpsNorm)
}

// handleInsert feeds points into the dynamic engine. Seals and compactions
// triggered by an insert happen off the query path; concurrent queries on
// pooled clones keep serving from their manifest snapshot.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	m := &s.met.insert
	m.requests.Add(1)
	if !s.writeAllowed(w) {
		m.errors.Add(1)
		return
	}
	var req InsertRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return
	}
	var points [][]float64
	var weights []float64
	switch {
	case req.P != nil && req.Points != nil:
		fail(w, m, errors.New(`"p" and "points" are mutually exclusive`))
		return
	case req.P != nil:
		if req.Weights != nil {
			fail(w, m, errors.New(`"weights" belongs to the bulk form; use "w" with "p"`))
			return
		}
		wt := 1.0
		if req.W != nil {
			wt = *req.W
		}
		points, weights = [][]float64{req.P}, []float64{wt}
	case req.Points != nil:
		if req.W != nil {
			fail(w, m, errors.New(`"w" belongs to the single form; use "weights" with "points"`))
			return
		}
		if req.Weights != nil && len(req.Weights) != len(req.Points) {
			fail(w, m, fmt.Errorf("%d weights for %d points", len(req.Weights), len(req.Points)))
			return
		}
		points, weights = req.Points, req.Weights
	default:
		fail(w, m, errors.New(`provide "p" (single point) or "points" (bulk)`))
		return
	}
	// InsertBulk validates the whole batch before touching the engine, so a
	// rejected request lands no points — no partial-batch state to report.
	ids, err := s.dyn.InsertBulk(points, weights)
	if err != nil {
		fail(w, m, err)
		return
	}
	m.record(len(ids), karl.Stats{})
	writeJSON(w, http.StatusOK, InsertResponse{
		Inserted: len(ids),
		IDs:      ids,
		Len:      s.dyn.Len(),
		Epoch:    s.dyn.Epoch(),
	})
}

// handleDelete removes points by ID. Memtable points vanish physically;
// sealed points become tombstones that queries subtract exactly until a
// compaction drops the dead rows. An unknown, already-deleted, or
// coreset-compressed ID is a 404.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	m := &s.met.del
	m.requests.Add(1)
	if !s.writeAllowed(w) {
		m.errors.Add(1)
		return
	}
	var req DeleteRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return
	}
	var ids []uint64
	switch {
	case req.ID != 0 && req.IDs != nil:
		fail(w, m, errors.New(`"id" and "ids" are mutually exclusive`))
		return
	case req.ID != 0:
		ids = []uint64{req.ID}
	case len(req.IDs) != 0:
		ids = req.IDs
	default:
		fail(w, m, errors.New(`provide "id" (single) or "ids" (bulk)`))
		return
	}
	for i, id := range ids {
		if err := s.dyn.Delete(id); err != nil {
			m.errors.Add(1)
			status := errStatus(err)
			if errors.Is(err, karl.ErrPointNotFound) {
				status = http.StatusNotFound
			}
			// IDs before i are already gone; report the partial landing.
			writeJSON(w, status, errorResponse{
				fmt.Sprintf("id %d: %v (%d of %d deleted)", id, err, i, len(ids)),
			})
			return
		}
	}
	m.record(len(ids), karl.Stats{})
	resp := DeleteResponse{
		Deleted: len(ids),
		Len:     s.dyn.Len(),
		Epoch:   s.dyn.Epoch(),
	}
	if s.lsm != nil {
		resp.Tombstones = s.lsm.Tombstones()
	}
	writeJSON(w, http.StatusOK, resp)
}

// SplitRequest is the POST /v1/split body: the routing rule whose
// matching half should leave this shard. Kind "hash" moves the listed
// slots of an FNV slot space ("num_slots", "slots"); kind "kd" moves the
// p[dim] ≥ cut half — give "dim" and "cut" together, or omit both to let
// the engine choose a balanced plane (the median of its widest
// dimension).
type SplitRequest struct {
	Kind     string   `json:"kind"`
	Dim      *int     `json:"dim,omitempty"`
	Cut      *float64 `json:"cut,omitempty"`
	NumSlots int      `json:"num_slots,omitempty"`
	Slots    []uint64 `json:"slots,omitempty"`
}

// SplitResponse reports a completed split: the rule actually applied
// (with an engine-chosen kd plane filled in), the moved half as a
// standard engine persistence stream (base64 in JSON — segment shipping),
// and the shard afterwards. NextSeq is the id fence at the split instant:
// ids below it may live on either side, ids the two engines assign later
// never collide.
type SplitResponse struct {
	Kind        string   `json:"kind"`
	Dim         int      `json:"dim,omitempty"`
	Cut         float64  `json:"cut,omitempty"`
	NumSlots    int      `json:"num_slots,omitempty"`
	Slots       []uint64 `json:"slots,omitempty"`
	Moved       []byte   `json:"moved"`
	MovedPoints int      `json:"moved_points"`
	MovedWPos   float64  `json:"moved_wpos"`
	MovedWNeg   float64  `json:"moved_wneg,omitempty"`
	Len         int      `json:"len"`
	NextSeq     uint64   `json:"next_seq"`
	Epoch       uint64   `json:"epoch"`
}

// handleSplit extracts the half of this shard matching the posted rule
// into a serialized engine the caller installs elsewhere — the shard side
// of a coordinator-driven split. Writes block for the duration; queries
// keep serving the pre-split snapshot and switch atomically.
func (s *Server) handleSplit(w http.ResponseWriter, r *http.Request) {
	m := &s.met.split
	m.requests.Add(1)
	if !s.writeAllowed(w) {
		m.errors.Add(1)
		return
	}
	var req SplitRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return
	}
	kind, err := shard.ParseKind(req.Kind)
	if err != nil {
		fail(w, m, err)
		return
	}
	rule := shard.SplitRule{Kind: kind}
	switch kind {
	case shard.Hash:
		if req.Dim != nil || req.Cut != nil {
			fail(w, m, errors.New(`"dim"/"cut" belong to kind "kd"`))
			return
		}
		if req.NumSlots <= 0 || len(req.Slots) == 0 {
			fail(w, m, errors.New(`kind "hash" requires "num_slots" and a non-empty "slots"`))
			return
		}
		rule.NumSlots, rule.Slots = req.NumSlots, req.Slots
	case shard.KDSplit:
		if req.NumSlots != 0 || req.Slots != nil {
			fail(w, m, errors.New(`"num_slots"/"slots" belong to kind "hash"`))
			return
		}
		switch {
		case req.Dim != nil && req.Cut != nil:
			if !isFinite(*req.Cut) {
				fail(w, m, fmt.Errorf("cut must be finite, got %v", *req.Cut))
				return
			}
			rule.Dim, rule.Cut = *req.Dim, *req.Cut
		case req.Dim == nil && req.Cut == nil:
			dim, cut, err := s.dyn.SplitPlane()
			if err != nil {
				// No separating plane exists (empty, single-point or
				// degenerate data): the shard cannot split right now.
				fail(w, m, &requestError{status: http.StatusConflict, msg: err.Error()})
				return
			}
			rule.Dim, rule.Cut = dim, cut
		default:
			fail(w, m, errors.New(`give "dim" and "cut" together, or neither`))
			return
		}
	}
	pred, err := rule.Pred()
	if err != nil {
		fail(w, m, err)
		return
	}
	moved, err := s.dyn.Split(pred)
	if err != nil {
		fail(w, m, &requestError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	var buf bytes.Buffer
	if _, err := moved.WriteTo(&buf); err != nil {
		fail(w, m, &requestError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	m.record(moved.Len(), karl.Stats{})
	wpos, wneg := moved.WeightMass()
	writeJSON(w, http.StatusOK, SplitResponse{
		Kind:        kind.String(),
		Dim:         rule.Dim,
		Cut:         rule.Cut,
		NumSlots:    rule.NumSlots,
		Slots:       rule.Slots,
		Moved:       buf.Bytes(),
		MovedPoints: moved.Len(),
		MovedWPos:   wpos,
		MovedWNeg:   wneg,
		Len:         s.dyn.Len(),
		NextSeq:     moved.NextSeq(),
		Epoch:       s.dyn.Epoch(),
	})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	m := &s.met.aggregate
	req, ok := s.decode(w, r, m, needNothing)
	if !ok {
		return
	}
	eng := s.pool.acquire()
	v, st, err := eng.AggregateStats(req.Q)
	s.pool.release(eng)
	if err != nil {
		m.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	m.record(1, st)
	s.countRefine()
	writeJSON(w, http.StatusOK, ValueResponse{v})
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	m := &s.met.threshold
	req, ok := s.decode(w, r, m, needTau)
	if !ok {
		return
	}
	eng := s.pool.acquire()
	over, st, err := eng.ThresholdStats(req.Q, req.Tau)
	s.pool.release(eng)
	if err != nil {
		m.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	m.record(1, st)
	s.countRefine()
	writeJSON(w, http.StatusOK, BoolResponse{over})
}

func (s *Server) handleApproximate(w http.ResponseWriter, r *http.Request) {
	m := &s.met.approximate
	req, ok := s.decode(w, r, m, needEps)
	if !ok {
		return
	}
	var v float64
	var st karl.Stats
	var err error
	sketched := s.sketchServes(req.EpsNorm)
	if sketched {
		eng := s.sketch.acquire()
		v, st, err = approximateSketch(eng, req.Q, req.EpsNorm-s.sketchEps)
		s.sketch.release(eng)
	} else {
		eng := s.pool.acquire()
		v, st, err = eng.ApproximateStats(req.Q, relativeBudget(req.Eps, req.EpsNorm))
		s.pool.release(eng)
	}
	if err != nil {
		m.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.countTier(req.EpsNorm, sketched, 1)
	m.record(1, st)
	s.countRefine()
	writeJSON(w, http.StatusOK, ValueResponse{v})
}

// sketchServes reports whether a query is served by the sketch tier: only
// normalized-budget (eps_norm) requests are eligible, and only when the
// budget covers the sketch's own bound. Relative-eps requests never route
// to the sketch — its bound is |F_P−F_S| ≤ ε·W, which for queries with
// F_P(q) ≪ W permits unbounded relative error.
func (s *Server) sketchServes(epsNorm float64) bool {
	return s.sketch != nil && epsNorm != 0 && epsNorm >= s.sketchEps
}

// relativeBudget maps a request's budget onto the full engine's relative-ε
// contract. A normalized budget is served at relative ε = eps_norm: since
// F_P(q) ≤ W, the relative bound eps_norm·F_P ≤ eps_norm·W also meets the
// normalized one (conservatively).
func relativeBudget(eps, epsNorm float64) float64 {
	if epsNorm != 0 {
		return epsNorm
	}
	return eps
}

// countTier folds n served approximate queries into the tier routing
// counters. It runs only after a successful engine call — failed requests
// are tracked by the endpoint error counters, not here — and only for
// normalized-budget queries; relative-eps traffic is never tier-eligible.
func (s *Server) countTier(epsNorm float64, sketched bool, n int) {
	if s.sketch == nil || epsNorm == 0 {
		return
	}
	if sketched {
		s.met.tierHits.Add(int64(n))
	} else {
		s.met.tierMisses.Add(int64(n))
	}
}

// approximateSketch serves one query from the coreset engine with the
// leftover budget rem = ε_norm − ε_sketch. A zero leftover degrades to the
// exact aggregate over the coreset — still a tiny scan.
func approximateSketch(eng karl.QueryEngine, q []float64, rem float64) (float64, karl.Stats, error) {
	if rem > 0 {
		return eng.ApproximateStats(q, rem)
	}
	return eng.AggregateStats(q)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	m := &s.met.batch
	m.requests.Add(1)
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return
	}
	if err := s.validateBatch(req); err != nil {
		fail(w, m, err)
		return
	}
	var resp BatchResponse
	var st karl.Stats
	var err error
	sketched := false
	switch req.Kind {
	case "aggregate":
		eng := s.pool.acquire()
		resp.Values, st, err = eng.BatchAggregateStats(req.Queries, req.Workers)
		s.pool.release(eng)
	case "threshold":
		eng := s.pool.acquire()
		resp.Over, st, err = eng.BatchThresholdStats(req.Queries, req.Tau, req.Workers)
		s.pool.release(eng)
	case "approximate":
		sketched = s.sketchServes(req.EpsNorm)
		if sketched {
			eng := s.sketch.acquire()
			if rem := req.EpsNorm - s.sketchEps; rem > 0 {
				resp.Values, st, err = eng.BatchApproximateStats(req.Queries, rem, req.Workers)
			} else {
				resp.Values, st, err = eng.BatchAggregateStats(req.Queries, req.Workers)
			}
			s.sketch.release(eng)
		} else {
			eng := s.pool.acquire()
			resp.Values, st, err = eng.BatchApproximateStats(req.Queries, relativeBudget(req.Eps, req.EpsNorm), req.Workers)
			s.pool.release(eng)
		}
	}
	if err != nil {
		m.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if req.Kind == "approximate" {
		s.countTier(req.EpsNorm, sketched, len(req.Queries))
	}
	m.record(len(req.Queries), st)
	writeJSON(w, http.StatusOK, resp)
}

// need flags which scalar parameters an endpoint consumes, so validation
// is uniform across endpoints instead of scattered through handlers.
type need int

const (
	needNothing need = iota
	needTau
	needEps
)

// decode parses and validates a single-query request body. It counts the
// request and any validation error against m.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, m *endpointMetrics, n need) (QueryRequest, bool) {
	m.requests.Add(1)
	var req QueryRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		fail(w, m, err)
		return req, false
	}
	if err := s.validate(req, n); err != nil {
		fail(w, m, err)
		return req, false
	}
	return req, true
}

// decodeBody parses a JSON request body with the server's size bound
// applied: an oversized body fails decoding with a 413-mapped error
// instead of being buffered into memory.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &requestError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return fmt.Errorf("bad request: %v", err)
	}
	return nil
}

// requestError carries a non-default HTTP status through the error path.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

// errStatus maps a handler error to its HTTP status (400 by default).
func errStatus(err error) int {
	var re *requestError
	if errors.As(err, &re) {
		return re.status
	}
	return http.StatusBadRequest
}

// fail counts err against m and writes the JSON error envelope.
func fail(w http.ResponseWriter, m *endpointMetrics, err error) {
	m.errors.Add(1)
	writeJSON(w, errStatus(err), errorResponse{err.Error()})
}

// validate applies the uniform request checks: the query vector must match
// the model dimensionality and be finite, and whichever of Tau/Eps/EpsNorm
// the endpoint consumes must be finite and in range. NaN/Inf cannot arrive
// through standard JSON, but the server does not assume its only callers
// are JSON decoders.
func (s *Server) validate(req QueryRequest, n need) error {
	if err := s.checkQuery(req.Q); err != nil {
		return err
	}
	switch n {
	case needTau:
		if !isFinite(req.Tau) {
			return fmt.Errorf("tau must be finite, got %v", req.Tau)
		}
	case needEps:
		return validateBudget(req.Eps, req.EpsNorm)
	}
	return nil
}

// validateBudget checks an approximate query's error budget: exactly one
// of eps (relative error) and eps_norm (normalized absolute error) must be
// supplied — they are distinct contracts, not interchangeable scales.
func validateBudget(eps, epsNorm float64) error {
	switch {
	case !isFinite(eps):
		return fmt.Errorf("eps must be finite, got %v", eps)
	case !isFinite(epsNorm):
		return fmt.Errorf("eps_norm must be finite, got %v", epsNorm)
	case eps != 0 && epsNorm != 0:
		return errors.New("eps and eps_norm are mutually exclusive: pick the relative or the normalized error model")
	case epsNorm != 0:
		if epsNorm <= 0 || epsNorm >= 1 {
			return fmt.Errorf("eps_norm must be in (0,1), got %v", epsNorm)
		}
	case eps <= 0:
		return errors.New("eps must be positive (or set eps_norm for the normalized error model)")
	}
	return nil
}

// validateBatch applies the same checks to every query of a batch plus the
// batch-specific fields.
func (s *Server) validateBatch(req BatchRequest) error {
	switch req.Kind {
	case "aggregate":
	case "threshold":
		if !isFinite(req.Tau) {
			return fmt.Errorf("tau must be finite, got %v", req.Tau)
		}
	case "approximate":
		if err := validateBudget(req.Eps, req.EpsNorm); err != nil {
			return err
		}
	default:
		return fmt.Errorf("kind must be aggregate, threshold or approximate, got %q", req.Kind)
	}
	for i, q := range req.Queries {
		if err := s.checkQuery(q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// curDims is the dataset dimensionality right now: fixed for a static
// engine, set by the first insert for a mutable one (0 while empty).
func (s *Server) curDims() int {
	if s.dyn != nil {
		return s.dyn.Dims()
	}
	return s.dims
}

func (s *Server) checkQuery(q []float64) error {
	// An empty mutable engine has no dimensionality yet; let the engine
	// itself report emptiness.
	if dims := s.curDims(); dims != 0 && len(q) != dims {
		return fmt.Errorf("query has %d dims, model has %d", len(q), dims)
	}
	for j, v := range q {
		if !isFinite(v) {
			return fmt.Errorf("q[%d] must be finite, got %v", j, v)
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
