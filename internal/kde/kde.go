// Package kde provides the kernel density estimation layer on top of
// kernel aggregation: Scott's-rule bandwidth selection (the rule the paper
// uses for its Type I experiments, Section V-A1), density-grid rendering
// (Figure 1), and Nadaraya–Watson kernel regression (a future-work
// extension named in the paper's conclusion).
package kde

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/kernel"
	"karl/internal/vec"
)

// ScottGamma derives the Gaussian-kernel γ from Scott's bandwidth rule:
// h = n^{−1/(d+4)}·σ̄ with σ̄ the mean per-dimension standard deviation,
// and γ = 1/(2h²).
func ScottGamma(points *vec.Matrix) (float64, error) {
	if points == nil {
		return 0, errors.New("kde: empty point set")
	}
	return ScottGammaN(points, points.Rows)
}

// ScottGammaN is ScottGamma with an explicit cardinality n in the
// bandwidth formula. Subsampled stand-ins for a larger dataset pass the
// original cardinality here so the kernel is as sharp as it would be on
// the full data.
func ScottGammaN(points *vec.Matrix, n int) (float64, error) {
	if points == nil || points.Rows == 0 {
		return 0, errors.New("kde: empty point set")
	}
	if n < 1 {
		return 0, errors.New("kde: non-positive cardinality")
	}
	_, std := points.ColumnStats()
	var mean float64
	for _, s := range std {
		mean += s
	}
	mean /= float64(len(std))
	if mean <= 0 {
		return 0, fmt.Errorf("kde: data has zero variance in every dimension (%d identical point(s)); Scott's rule cannot pick a bandwidth — set gamma explicitly via NewKDEWithGamma or NewEstimator", points.Rows)
	}
	h := math.Pow(float64(n), -1/(float64(points.Cols)+4)) * mean
	return 1 / (2 * h * h), nil
}

// Estimator evaluates Gaussian kernel densities at query points:
// KDE(q) = 1/n · Σ exp(−γ·dist(q,p_i)²), i.e. Type I weighting with
// w = 1/n. (The constant normalization factor of the true Gaussian density
// is omitted, as in the paper's F_P(q); thresholds scale accordingly.)
type Estimator struct {
	points *vec.Matrix
	gamma  float64
	weight float64
}

// NewEstimator builds a KDE with the given γ (pass the result of
// ScottGamma for the paper's setting).
func NewEstimator(points *vec.Matrix, gamma float64) (*Estimator, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("kde: empty point set")
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("kde: gamma must be positive, got %v", gamma)
	}
	return &Estimator{points: points, gamma: gamma, weight: 1 / float64(points.Rows)}, nil
}

// Gamma returns the estimator's smoothing parameter.
func (e *Estimator) Gamma() float64 { return e.gamma }

// Weight returns the Type I common weight (1/n).
func (e *Estimator) Weight() float64 { return e.weight }

// Density evaluates the density estimate at q by direct summation.
func (e *Estimator) Density(q []float64) float64 {
	return e.weight * kernel.Aggregate(kernel.NewGaussian(e.gamma), q, e.points, nil)
}

// Grid2D renders the density over a uniform res×res grid spanning
// [loX,hiX]×[loY,hiY] in the two given dimensions, holding all other
// dimensions at the dataset mean — the Figure 1 visualization. The result
// is row-major: out[iy*res+ix].
func (e *Estimator) Grid2D(dimX, dimY, res int, loX, hiX, loY, hiY float64) ([]float64, error) {
	d := e.points.Cols
	if dimX < 0 || dimX >= d || dimY < 0 || dimY >= d || dimX == dimY {
		return nil, fmt.Errorf("kde: bad grid dims %d,%d for %d-dimensional data", dimX, dimY, d)
	}
	if res < 2 {
		return nil, fmt.Errorf("kde: grid resolution must be >= 2, got %d", res)
	}
	mean, _ := e.points.ColumnStats()
	out := make([]float64, res*res)
	q := vec.Clone(mean)
	for iy := 0; iy < res; iy++ {
		q[dimY] = loY + (hiY-loY)*float64(iy)/float64(res-1)
		for ix := 0; ix < res; ix++ {
			q[dimX] = loX + (hiX-loX)*float64(ix)/float64(res-1)
			out[iy*res+ix] = e.Density(q)
		}
	}
	return out, nil
}

// Regressor is a Nadaraya–Watson kernel regressor: two kernel aggregations
// (value-weighted over plain) whose ratio estimates E[y|q].
type Regressor struct {
	points *vec.Matrix
	y      []float64
	gamma  float64
}

// NewRegressor builds a kernel regressor over (points, y) with smoothing γ.
func NewRegressor(points *vec.Matrix, y []float64, gamma float64) (*Regressor, error) {
	if points == nil || points.Rows == 0 {
		return nil, errors.New("kde: empty point set")
	}
	if len(y) != points.Rows {
		return nil, fmt.Errorf("kde: %d targets for %d points", len(y), points.Rows)
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("kde: gamma must be positive, got %v", gamma)
	}
	return &Regressor{points: points, y: y, gamma: gamma}, nil
}

// Predict returns Σ y_i·K(q,p_i) / Σ K(q,p_i). When the denominator
// underflows to zero (query far from all data) it returns the mean of y,
// the regressor's prior.
func (r *Regressor) Predict(q []float64) float64 {
	k := kernel.NewGaussian(r.gamma)
	num := kernel.Aggregate(k, q, r.points, r.y)
	den := kernel.Aggregate(k, q, r.points, nil)
	if den == 0 {
		var mean float64
		for _, v := range r.y {
			mean += v
		}
		return mean / float64(len(r.y))
	}
	return num / den
}
