package kde

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/vec"
)

func TestScottGammaValidation(t *testing.T) {
	if _, err := ScottGamma(nil); err == nil {
		t.Fatal("nil accepted")
	}
	constant := vec.FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := ScottGamma(constant); err == nil {
		t.Fatal("zero-variance data accepted")
	}
}

func TestScottGammaKnown(t *testing.T) {
	// 1-d data with σ=2, n=16: h = 16^(−1/5)·2, γ = 1/(2h²).
	rows := make([][]float64, 16)
	for i := range rows {
		if i%2 == 0 {
			rows[i] = []float64{-2}
		} else {
			rows[i] = []float64{2}
		}
	}
	m := vec.FromRows(rows)
	got, err := ScottGamma(m)
	if err != nil {
		t.Fatal(err)
	}
	h := math.Pow(16, -0.2) * 2
	want := 1 / (2 * h * h)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ScottGamma = %v want %v", got, want)
	}
}

func TestScottGammaShrinksWithN(t *testing.T) {
	// More data → smaller bandwidth → larger γ.
	rng := rand.New(rand.NewSource(61))
	small := vec.NewMatrix(100, 3)
	large := vec.NewMatrix(10000, 3)
	for i := range small.Data {
		small.Data[i] = rng.NormFloat64()
	}
	for i := range large.Data {
		large.Data[i] = rng.NormFloat64()
	}
	gs, _ := ScottGamma(small)
	gl, _ := ScottGamma(large)
	if gl <= gs {
		t.Fatalf("γ(10000) = %v should exceed γ(100) = %v", gl, gs)
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(nil, 1); err == nil {
		t.Fatal("nil accepted")
	}
	m := vec.FromRows([][]float64{{0}})
	if _, err := NewEstimator(m, 0); err == nil {
		t.Fatal("gamma=0 accepted")
	}
}

func TestDensityPeaksAtData(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	n := 500
	m := vec.NewMatrix(n, 2)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 0.2
	}
	e, err := NewEstimator(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	center := e.Density([]float64{0, 0})
	edge := e.Density([]float64{3, 3})
	if center <= edge*10 {
		t.Fatalf("density at center %v should dwarf edge %v", center, edge)
	}
	if e.Weight() != 1.0/float64(n) {
		t.Fatalf("Weight = %v", e.Weight())
	}
	if e.Gamma() != 5 {
		t.Fatalf("Gamma = %v", e.Gamma())
	}
}

func TestGrid2D(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m := vec.NewMatrix(200, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 0.3
	}
	e, _ := NewEstimator(m, 3)
	grid, err := e.Grid2D(0, 1, 8, -1, 1, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 64 {
		t.Fatalf("grid size %d want 64", len(grid))
	}
	// Center of the grid should have higher density than the corners.
	center := grid[4*8+4]
	corner := grid[0]
	if center <= corner {
		t.Fatalf("center %v should exceed corner %v", center, corner)
	}
	// Bad dims are rejected.
	if _, err := e.Grid2D(0, 0, 8, -1, 1, -1, 1); err == nil {
		t.Fatal("equal dims accepted")
	}
	if _, err := e.Grid2D(0, 9, 8, -1, 1, -1, 1); err == nil {
		t.Fatal("out-of-range dim accepted")
	}
	if _, err := e.Grid2D(0, 1, 1, -1, 1, -1, 1); err == nil {
		t.Fatal("res=1 accepted")
	}
}

func TestRegressorValidation(t *testing.T) {
	m := vec.FromRows([][]float64{{0}, {1}})
	if _, err := NewRegressor(nil, nil, 1); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := NewRegressor(m, []float64{1}, 1); err == nil {
		t.Fatal("target mismatch accepted")
	}
	if _, err := NewRegressor(m, []float64{1, 2}, -1); err == nil {
		t.Fatal("bad gamma accepted")
	}
}

func TestRegressorRecoversSmoothFunction(t *testing.T) {
	// Learn y = sin(2x) on [0,π]; predictions at held-out points should be
	// close for a smooth target with enough data.
	rng := rand.New(rand.NewSource(64))
	n := 2000
	m := vec.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * math.Pi
		m.Row(i)[0] = x
		y[i] = math.Sin(2*x) + rng.NormFloat64()*0.05
	}
	r, err := NewRegressor(m, y, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.3, 1.0, 1.8, 2.5} {
		got := r.Predict([]float64{x})
		want := math.Sin(2 * x)
		if math.Abs(got-want) > 0.1 {
			t.Fatalf("Predict(%v) = %v want ≈ %v", x, got, want)
		}
	}
}

func TestRegressorFarQueryFallsBackToMean(t *testing.T) {
	m := vec.FromRows([][]float64{{0}, {1}})
	y := []float64{2, 4}
	r, _ := NewRegressor(m, y, 1e8)
	got := r.Predict([]float64{1e6})
	if got != 3 {
		t.Fatalf("far query = %v want mean 3", got)
	}
}
