// Package dualtree implements the batch query executor: a Gray–Moore style
// node-pair traversal that certifies whole groups of queries against whole
// reference nodes at once, sharing KARL's bound work across the batch.
//
// Sequential batch execution answers n queries with n independent best-first
// refinements; nearby queries (a KDE heatmap grid, a window of user
// positions) repeat nearly identical bound computations. The dual-tree
// executor instead builds a kd-tree over the query batch (reusing the flat
// DFS-preorder layout of internal/index) and recursively descends it,
// carrying for each query node a working set of reference-node entries
// whose GROUP bounds (bound.GroupNodeBounds) hold uniformly for every query
// in the node's rectangle:
//
//   - certify: if the accumulated group bounds already satisfy the ε or τ
//     stopping rule for every query in the group, one node-pair computation
//     answers them all (Stats.GroupCertified).
//   - tighten: otherwise a bounded amount of shared refinement replaces the
//     widest reference entries with their children — work both query
//     subtrees inherit — before descending.
//   - freeze (ε-queries only): entries whose bound gap is small relative to
//     their share of the total weight mass are folded into the inherited
//     accumulator and never rescored below this node; the total frozen gap
//     stays within the group's ε budget by construction of the shares.
//   - leaves: remaining entries are resolved best-first per leaf, switching
//     to the exact fused-row scan at reference frontier nodes, with
//     per-query early exit as individual queries certify.
//
// Every recorded answer is checked against the exact same stopping rules as
// sequential execution (core.CondApprox / core.CondThreshold) with bound
// intervals that are valid at record time, so the per-query ε/τ contract is
// identical. If a leaf exhausts its entries while a query is still
// uncertified (possible only when frozen gap remains), that query falls
// back to the embedded sequential Forest (Stats.Fallbacks) — correctness
// never depends on the grouping heuristics.
package dualtree

import (
	"fmt"
	"math"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/geom"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/pqueue"
	"karl/internal/vec"
)

// DefaultLeafCap is the query-tree leaf capacity: small enough that leaf
// groups stay spatially tight, large enough to amortize per-leaf queue
// setup across queries.
const DefaultLeafCap = 16

// Config fixes the executor's kernel, bounding method, and tree knobs. They
// must match the sequential engine the batch would otherwise run on, so the
// two paths answer under the same contract.
type Config struct {
	Kernel   kernel.Params
	Method   bound.Method
	MaxDepth int // reference refinement depth cap (0 = unlimited)
	LeafCap  int // query-tree leaf capacity (0 = DefaultLeafCap)
}

// Stats reports the work one batch performed.
type Stats struct {
	// Queries is the batch size.
	Queries int
	// NodePairs counts (query node × reference node) bound computations.
	NodePairs int
	// GroupCertified counts queries answered purely by group bound
	// certificates — no exact per-query row scan contributed to their
	// answer interval.
	GroupCertified int
	// Fallbacks counts queries resolved by the sequential per-query engine
	// after the group traversal could not certify them.
	Fallbacks int
	// Iterations, NodesExpanded and PointsScanned mirror core.Stats.
	Iterations    int
	NodesExpanded int
	PointsScanned int
}

// entry is one reference-node position in a query node's working set,
// with its current (scaled) group bound contribution.
type entry struct {
	ti, ni int32
	lb, ub float64
}

// Executor runs batches against a fixed reference segment set. Like
// core.Forest it owns per-batch scratch and is not safe for concurrent use;
// run one Executor per worker.
type Executor struct {
	cfg       Config
	rows      kernel.RowsFunc
	fb        *core.Forest // sequential fallback, shares trees and scales
	trees     []*index.Tree
	scales    []float64
	totalMass float64

	// Per-leaf scratch, reused across leaves and batches.
	leafE    []float64
	leafDone []bool
	leafScan []bool
	leafQ    pqueue.Queue[entry]
}

// New creates an executor over the ordered reference segments. The segment
// slice is retained, not copied.
func New(cfg Config, trees []*index.Tree) (*Executor, error) {
	if cfg.LeafCap <= 0 {
		cfg.LeafCap = DefaultLeafCap
	}
	fb, err := core.NewForest(cfg.Kernel, cfg.Method, cfg.MaxDepth)
	if err != nil {
		return nil, err
	}
	if err := fb.SetTrees(trees); err != nil {
		return nil, err
	}
	e := &Executor{cfg: cfg, rows: cfg.Kernel.RowsEvaluator(), fb: fb, trees: trees}
	e.computeMass()
	return e, nil
}

// SetScales installs per-segment positive multipliers, index-aligned with
// the segment set (the decayed-weight view). The slice is retained.
func (e *Executor) SetScales(s []float64) error {
	if err := e.fb.SetScales(s); err != nil {
		return err
	}
	e.scales = s
	e.computeMass()
	return nil
}

func (e *Executor) computeMass() {
	m := 0.0
	for i, t := range e.trees {
		r := t.Root()
		w := r.Pos.W + r.Neg.W
		if e.scales != nil {
			w *= e.scales[i]
		}
		m += w
	}
	e.totalMass = m
}

// Aggregate answers exact kernel aggregation for every query: out[i] =
// base[i] + Σ_seg scale·F_seg(q_i), computed through the identical
// contiguous-range primitive as the sequential path (bitwise-equal results).
// Exact queries scan every point regardless of grouping, so no query tree
// is built.
func (e *Executor) Aggregate(queries *vec.Matrix, base []float64, out []float64) (Stats, error) {
	st := Stats{Queries: queries.Rows}
	for i := 0; i < queries.Rows; i++ {
		b := 0.0
		if base != nil {
			b = base[i]
		}
		v, qs, err := e.fb.Exact(queries.Row(i), b)
		if err != nil {
			return st, err
		}
		out[i] = v
		st.PointsScanned += qs.PointsScanned
	}
	return st, nil
}

// Approximate answers out[i] within relative error eps of the true total
// base[i] + Σ_seg scale·F_seg(q_i) — the same guarantee as sequential
// core.Forest.Approximate for each query.
func (e *Executor) Approximate(queries *vec.Matrix, eps float64, base []float64, out []float64) (Stats, error) {
	if eps <= 0 {
		return Stats{}, fmt.Errorf("dualtree: eps must be positive, got %v", eps)
	}
	return e.run(queries, modeApprox, eps, 0, base, out, nil)
}

// Threshold answers out[i] = (base[i] + Σ_seg scale·F_seg(q_i)) > tau for
// every query, matching the sequential verdict away from bound ties.
func (e *Executor) Threshold(queries *vec.Matrix, tau float64, base []float64, out []bool) (Stats, error) {
	return e.run(queries, modeThreshold, 0, tau, base, nil, out)
}

const (
	modeApprox = iota
	modeThreshold
)

func (e *Executor) run(queries *vec.Matrix, mode int, eps, tau float64, base []float64, outV []float64, outB []bool) (Stats, error) {
	st := Stats{Queries: queries.Rows}
	if queries.Rows == 0 {
		return st, nil
	}
	if len(e.trees) > 0 && queries.Cols != e.trees[0].Dims() {
		return st, fmt.Errorf("dualtree: query has %d dims, index has %d", queries.Cols, e.trees[0].Dims())
	}
	if len(e.trees) == 0 {
		// The base term is the entire (exact) answer.
		for i := 0; i < queries.Rows; i++ {
			b := 0.0
			if base != nil {
				b = base[i]
			}
			if mode == modeThreshold {
				outB[i] = b > tau
			} else {
				outV[i] = b
			}
		}
		return st, nil
	}
	qt, err := kdtree.Build(queries, nil, e.cfg.LeafCap)
	if err != nil {
		return st, fmt.Errorf("dualtree: building query tree: %w", err)
	}
	s := &run{x: e, qt: qt, mode: mode, eps: eps, tau: tau, base: base, outV: outV, outB: outB, st: &st}
	refs := make([]entry, len(e.trees))
	for i := range refs {
		refs[i] = entry{ti: int32(i)}
	}
	s.visit(0, refs, 0, 0)
	return st, s.err
}

// scorePair computes the scaled group bounds of reference node (ti, ni)
// over the query rectangle.
func (e *Executor) scorePair(rect *geom.Rect, ti, ni int32, st *Stats) entry {
	n := e.trees[ti].Node(ni)
	lb, ub := bound.GroupNodeBounds(e.cfg.Method, e.cfg.Kernel, rect, n)
	if e.scales != nil {
		sc := e.scales[ti]
		lb *= sc
		ub *= sc
	}
	st.NodePairs++
	return entry{ti: ti, ni: ni, lb: lb, ub: ub}
}

// frontierEntry mirrors core's atFrontier: refinement of the reference node
// must stop here and switch to exact row scans.
func (e *Executor) frontierEntry(en *entry) bool {
	n := e.trees[en.ti].Node(en.ni)
	return n.IsLeaf() || (e.cfg.MaxDepth > 0 && int(n.Depth) >= e.cfg.MaxDepth)
}

// entryMass is the scaled absolute weight mass under the entry's node — the
// freezing heuristic hands each entry a gap share proportional to it.
func (e *Executor) entryMass(en *entry) float64 {
	n := e.trees[en.ti].Node(en.ni)
	m := n.Pos.W + n.Neg.W
	if e.scales != nil {
		m *= e.scales[en.ti]
	}
	return m
}

// run carries one batch's traversal state.
type run struct {
	x        *Executor
	qt       *index.Tree // kd-tree over the query batch
	mode     int
	eps, tau float64
	base     []float64 // per ORIGINAL query index; nil = all zero
	outV     []float64
	outB     []bool
	st       *Stats
	err      error
}

// cond is the per-query stopping rule — exactly the sequential one.
func (s *run) cond(lb, ub float64) bool {
	if s.mode == modeThreshold {
		return core.CondThreshold(lb, ub, s.tau)
	}
	return core.CondApprox(lb, ub, s.eps)
}

// record writes the answer for storage row r given its final valid bounds.
func (s *run) record(r int32, lb, ub float64) {
	orig := s.qt.PointID[r]
	if s.mode == modeThreshold {
		s.outB[orig] = lb > s.tau
	} else {
		s.outV[orig] = (lb + ub) / 2
	}
}

// targetGap is the bound-gap budget under which the whole group certifies:
// for ε-queries with a non-negative lower bound, gap ≤ ε·lb; elsewhere 0
// (mixed-sign ε and threshold groups certify only through tryCertify).
func (s *run) targetGap(lbAll, ubAll float64) float64 {
	if s.mode == modeThreshold {
		return math.Max(math.Max(lbAll-s.tau, s.tau-ubAll), 0)
	}
	if lbAll <= 0 {
		return 0
	}
	return s.eps * lbAll
}

// baseRange returns the min and max per-query base over the node's rows.
func (s *run) baseRange(qn *index.Node) (lo, hi float64) {
	if s.base == nil {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for r := qn.Start; r < qn.End; r++ {
		b := s.base[s.qt.PointID[r]]
		lo = math.Min(lo, b)
		hi = math.Max(hi, b)
	}
	return lo, hi
}

// tryCertify answers every query in the node at once if the current group
// bounds satisfy each query's stopping rule (bases shift the interval
// per query; without bases one check covers the group).
func (s *run) tryCertify(qn *index.Node, L, U, accL, accU float64) bool {
	lbAll, ubAll := accL+L, accU+U
	if s.base == nil {
		if !s.cond(lbAll, ubAll) {
			return false
		}
		for r := qn.Start; r < qn.End; r++ {
			s.record(r, lbAll, ubAll)
		}
	} else {
		for r := qn.Start; r < qn.End; r++ {
			b := s.base[s.qt.PointID[r]]
			if !s.cond(lbAll+b, ubAll+b) {
				return false
			}
		}
		for r := qn.Start; r < qn.End; r++ {
			b := s.base[s.qt.PointID[r]]
			s.record(r, lbAll+b, ubAll+b)
		}
	}
	s.st.GroupCertified += qn.Count()
	return true
}

// visit resolves every query under query node qi. refs is the parent's
// working set (read-only, rescored lazily against this node's tighter
// rectangle); accL/accU accumulate entries frozen by ancestors, whose
// bounds remain valid on this sub-rectangle.
func (s *run) visit(qi int32, refs []entry, accL, accU float64) {
	if s.err != nil {
		return
	}
	qn := s.qt.Node(qi)
	rect := qn.Vol.(*geom.Rect)

	// Lazy push-down: rescore the inherited reference set against this
	// node's rectangle.
	work := make([]entry, 0, len(refs)+8)
	var L, U float64
	for i := range refs {
		en := s.x.scorePair(rect, refs[i].ti, refs[i].ni, s.st)
		L += en.lb
		U += en.ub
		work = append(work, en)
	}
	if s.tryCertify(qn, L, U, accL, accU) {
		return
	}
	if qn.IsLeaf() {
		s.leafResolve(qn, rect, work, L, U, accL, accU)
		return
	}

	baseLo, baseHi := s.baseRange(qn)

	// Shared tightening: expand the widest reference entries at the group
	// level — both query subtrees inherit the refined set, so this work is
	// paid once instead of once per subtree. The budget keeps the working
	// set growing geometrically along the descent rather than exploding at
	// the root.
	budget := 2*len(work) + 8
	tried := false
	for budget > 0 {
		wi := -1
		var wgap float64
		for i := range work {
			if g := work[i].ub - work[i].lb; g > wgap && !s.x.frontierEntry(&work[i]) {
				wgap, wi = g, i
			}
		}
		if wi < 0 {
			break
		}
		en := work[wi]
		t := s.x.trees[en.ti]
		right := t.Node(en.ni).Right
		c1 := s.x.scorePair(rect, en.ti, t.Left(en.ni), s.st)
		c2 := s.x.scorePair(rect, en.ti, right, s.st)
		work[wi] = c1
		work = append(work, c2)
		L += c1.lb + c2.lb - en.lb
		U += c1.ub + c2.ub - en.ub
		s.st.Iterations++
		s.st.NodesExpanded++
		budget--
		if !tried && U-L <= s.targetGap(accL+L+baseLo, accU+U+baseHi) {
			tried = true
			if s.tryCertify(qn, L, U, accL, accU) {
				return
			}
		}
	}

	// Freeze entries whose gap is within their mass-proportional share of
	// the group's certifiable budget: their bounds stay valid on every
	// descendant rectangle, so descendants skip rescoring them. Reference
	// masses are disjoint across entries, so the total frozen gap along any
	// root-to-leaf path stays within one budget.
	if target := s.targetGap(accL+L+baseLo, accU+U+baseHi); target > 0 && s.x.totalMass > 0 {
		kept := work[:0]
		for _, en := range work {
			share := target * s.x.entryMass(&en) / s.x.totalMass
			if en.ub-en.lb <= share {
				accL += en.lb
				accU += en.ub
				L -= en.lb
				U -= en.ub
			} else {
				kept = append(kept, en)
			}
		}
		work = kept
	}
	if s.tryCertify(qn, L, U, accL, accU) {
		return
	}
	s.visit(s.qt.Left(qi), work, accL, accU)
	s.visit(qn.Right, work, accL, accU)
}

// leafResolve finishes a query-tree leaf: best-first refinement of the
// remaining reference entries shared by the leaf's queries, with per-query
// exact accumulators and early exit as individual queries certify.
func (s *run) leafResolve(qn *index.Node, rect *geom.Rect, work []entry, L, U, accL, accU float64) {
	x := s.x
	qt := s.qt
	rows := qn.Count()
	if cap(x.leafE) < rows {
		x.leafE = make([]float64, rows)
		x.leafDone = make([]bool, rows)
		x.leafScan = make([]bool, rows)
	}
	E := x.leafE[:rows]
	done := x.leafDone[:rows]
	scanned := x.leafScan[:rows]
	for i := 0; i < rows; i++ {
		done[i] = false
		scanned[i] = false
		E[i] = 0
		if s.base != nil {
			E[i] = s.base[qt.PointID[int(qn.Start)+i]]
		}
	}
	pending := rows

	finalize := func() {
		for i := 0; i < rows; i++ {
			if done[i] {
				continue
			}
			lb := accL + L + E[i]
			ub := accU + U + E[i]
			if s.cond(lb, ub) {
				s.record(int32(int(qn.Start)+i), lb, ub)
				done[i] = true
				pending--
				if !scanned[i] {
					s.st.GroupCertified++
				}
			}
		}
	}

	q := &x.leafQ
	q.Reset()
	for _, en := range work {
		q.Push(en, en.ub-en.lb)
	}
	finalize()
	for pending > 0 {
		en, _, ok := q.Pop()
		if !ok {
			break
		}
		s.st.Iterations++
		t := x.trees[en.ti]
		n := t.Node(en.ni)
		if x.frontierEntry(&en) {
			// Exact evaluation, per still-pending query, through the same
			// fused-row primitive as the sequential path.
			sc := 1.0
			if x.scales != nil {
				sc = x.scales[en.ti]
			}
			for i := 0; i < rows; i++ {
				if done[i] {
					continue
				}
				r := int(qn.Start) + i
				v := x.rows(qt.Points.Row(r), qt.Norms[r], t.Points, t.Norms, t.Weights, int(n.Start), int(n.End))
				E[i] += v * sc
				scanned[i] = true
				s.st.PointsScanned += n.Count()
			}
			L -= en.lb
			U -= en.ub
		} else {
			s.st.NodesExpanded++
			c1 := x.scorePair(rect, en.ti, t.Left(en.ni), s.st)
			c2 := x.scorePair(rect, en.ti, n.Right, s.st)
			L += c1.lb + c2.lb - en.lb
			U += c1.ub + c2.ub - en.ub
			q.Push(c1, c1.ub-c1.lb)
			q.Push(c2, c2.ub-c2.lb)
		}
		finalize()
	}
	if pending == 0 {
		return
	}
	// Entries exhausted with queries still open: only reachable when frozen
	// gap from ancestors exceeds a query's residual budget. Resolve those
	// queries sequentially — the contract never depends on grouping.
	for i := 0; i < rows && s.err == nil; i++ {
		if done[i] {
			continue
		}
		r := int(qn.Start) + i
		orig := qt.PointID[r]
		b := 0.0
		if s.base != nil {
			b = s.base[orig]
		}
		s.st.Fallbacks++
		qrow := qt.Points.Row(r)
		if s.mode == modeThreshold {
			v, fst, err := x.fb.Threshold(qrow, s.tau, b)
			if err != nil {
				s.err = err
				return
			}
			s.outB[orig] = v
			s.addCoreStats(fst)
		} else {
			v, fst, err := x.fb.Approximate(qrow, s.eps, b)
			if err != nil {
				s.err = err
				return
			}
			s.outV[orig] = v
			s.addCoreStats(fst)
		}
	}
}

func (s *run) addCoreStats(cs core.Stats) {
	s.st.Iterations += cs.Iterations
	s.st.NodesExpanded += cs.NodesExpanded
	s.st.PointsScanned += cs.PointsScanned
}
