package dualtree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"karl/internal/bound"
	"karl/internal/core"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
)

// buildSegments builds nseg kd-tree segments over clustered points with the
// given weight signs mix.
func buildSegments(t *testing.T, rng *rand.Rand, nseg, perSeg, dim int, signed bool) []*index.Tree {
	t.Helper()
	trees := make([]*index.Tree, nseg)
	for s := 0; s < nseg; s++ {
		pts := make([][]float64, perSeg)
		ws := make([]float64, perSeg)
		for i := range pts {
			p := make([]float64, dim)
			c := float64(i%4) * 0.3
			for j := range p {
				p[j] = c + rng.NormFloat64()*0.1
			}
			pts[i] = p
			ws[i] = 0.2 + rng.Float64()
			if signed && rng.Intn(4) == 0 {
				ws[i] = -ws[i]
			}
		}
		tree, err := kdtree.Build(vec.FromRows(pts), ws, 8)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		trees[s] = tree
	}
	return trees
}

func testQueries(rng *rand.Rand, n, dim int) *vec.Matrix {
	rows := make([][]float64, n)
	for i := range rows {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64() * 1.2
		}
		rows[i] = q
	}
	return vec.FromRows(rows)
}

func testKernelsDT() []kernel.Params {
	return []kernel.Params{
		{Kind: kernel.Gaussian, Gamma: 2},
		{Kind: kernel.Polynomial, Gamma: 0.5, Beta: 0.3, Degree: 2},
		{Kind: kernel.Sigmoid, Gamma: 0.4, Beta: 0.1},
	}
}

// TestDualMatchesSequentialContracts is the package-level equivalence gate:
// for segment sets with scales and per-query bases, the dual-tree answers
// must satisfy the exact sequential contracts — Aggregate bitwise, a
// certified ε interval for Approximate, identical verdicts for Threshold.
func TestDualMatchesSequentialContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for ki, k := range testKernelsDT() {
		for _, signed := range []bool{false, true} {
			for _, withBase := range []bool{false, true} {
				dim := 3
				trees := buildSegments(t, rng, 3, 120, dim, signed)
				scales := []float64{1, 0.7, 0.45}
				queries := testQueries(rng, 200, dim)
				var base []float64
				if withBase {
					base = make([]float64, queries.Rows)
					for i := range base {
						base[i] = rng.Float64() * 0.3
					}
				}

				cfg := Config{Kernel: k, Method: bound.KARL, LeafCap: 8}
				x, err := New(cfg, trees)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := x.SetScales(scales); err != nil {
					t.Fatalf("SetScales: %v", err)
				}
				seq, err := core.NewForest(k, bound.KARL, 0)
				if err != nil {
					t.Fatalf("NewForest: %v", err)
				}
				if err := seq.SetTrees(trees); err != nil {
					t.Fatalf("SetTrees: %v", err)
				}
				if err := seq.SetScales(scales); err != nil {
					t.Fatalf("SetScales: %v", err)
				}

				// Aggregate: bitwise.
				outA := make([]float64, queries.Rows)
				if _, err := x.Aggregate(queries, base, outA); err != nil {
					t.Fatalf("Aggregate: %v", err)
				}
				exact := make([]float64, queries.Rows)
				for i := 0; i < queries.Rows; i++ {
					b := 0.0
					if base != nil {
						b = base[i]
					}
					v, _, err := seq.Exact(queries.Row(i), b)
					if err != nil {
						t.Fatalf("Exact: %v", err)
					}
					exact[i] = v
					if outA[i] != v {
						t.Fatalf("kernel %d signed=%v base=%v: Aggregate[%d] = %v, sequential %v (not bitwise)",
							ki, signed, withBase, i, outA[i], v)
					}
				}

				// Approximate: within eps of the exact value (same contract
				// the sequential midpoint satisfies).
				const eps = 0.05
				outV := make([]float64, queries.Rows)
				st, err := x.Approximate(queries, eps, base, outV)
				if err != nil {
					t.Fatalf("Approximate: %v", err)
				}
				if st.Queries != queries.Rows {
					t.Fatalf("stats queries %d != %d", st.Queries, queries.Rows)
				}
				for i := range outV {
					if err := checkEps(outV[i], exact[i], eps); err != nil {
						t.Fatalf("kernel %d signed=%v base=%v: query %d: %v", ki, signed, withBase, i, err)
					}
				}

				// Threshold: identical verdict away from ties.
				tau := median(exact)
				outB := make([]bool, queries.Rows)
				if _, err := x.Threshold(queries, tau, base, outB); err != nil {
					t.Fatalf("Threshold: %v", err)
				}
				for i := range outB {
					if near(exact[i], tau) {
						continue // a bound tie may legitimately differ
					}
					if outB[i] != (exact[i] > tau) {
						t.Fatalf("kernel %d signed=%v base=%v: Threshold[%d] = %v, exact %v vs tau %v",
							ki, signed, withBase, i, outB[i], exact[i], tau)
					}
				}
			}
		}
	}
}

// checkEps verifies the ε-approximation contract |got − exact| ≤ ε·|exact|.
func checkEps(got, exact, eps float64) error {
	tol := eps*math.Abs(exact) + 1e-12
	if d := math.Abs(got - exact); d > tol {
		return fmt.Errorf("approx %v vs exact %v: error %v exceeds eps %v", got, exact, d, eps)
	}
	return nil
}

func median(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestDuplicateQueryBatch: all queries identical means the query tree is one
// degenerate leaf whose rectangle is a point — group bounds match per-query
// bounds, so a single certification pass answers every copy identically.
func TestDuplicateQueryBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dim := 4
	trees := buildSegments(t, rng, 2, 150, dim, false)
	q := make([]float64, dim)
	for j := range q {
		q[j] = 0.4
	}
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = q
	}
	m := vec.FromRows(rows)

	x, err := New(Config{Kernel: kernel.Params{Kind: kernel.Gaussian, Gamma: 2}, Method: bound.KARL}, trees)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := make([]float64, m.Rows)
	st, err := x.Approximate(m, 0.05, nil, out)
	if err != nil {
		t.Fatalf("Approximate: %v", err)
	}
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Fatalf("duplicate queries got different answers: out[%d]=%v out[0]=%v", i, out[i], out[0])
		}
	}
	seq, _ := core.NewForest(kernel.Params{Kind: kernel.Gaussian, Gamma: 2}, bound.KARL, 0)
	if err := seq.SetTrees(trees); err != nil {
		t.Fatalf("SetTrees: %v", err)
	}
	exact, _, err := seq.Exact(q, 0)
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if err := checkEps(out[0], exact, 0.05); err != nil {
		t.Fatalf("duplicate batch: %v", err)
	}
	// All queries fall in one leaf (width-0 split): the whole batch should
	// resolve without any per-query fallback.
	if st.Fallbacks != 0 {
		t.Fatalf("duplicate batch used %d fallbacks", st.Fallbacks)
	}
	// With a looser budget the group bounds certify before any exact scan:
	// one certification pass answers every copy.
	st, err = x.Approximate(m, 0.25, nil, out)
	if err != nil {
		t.Fatalf("Approximate: %v", err)
	}
	if st.GroupCertified != m.Rows {
		t.Fatalf("duplicate batch: GroupCertified = %d, want %d (one certificate for all)", st.GroupCertified, m.Rows)
	}
	if st.PointsScanned != 0 {
		t.Fatalf("duplicate batch scanned %d points; group bounds should certify alone", st.PointsScanned)
	}
}

// TestDualEmptySegments: with no segments the answers are just the base
// term, exactly.
func TestDualEmptySegments(t *testing.T) {
	x, err := New(Config{Kernel: kernel.Params{Kind: kernel.Gaussian, Gamma: 1}, Method: bound.KARL}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := vec.FromRows([][]float64{{1, 2}, {3, 4}})
	base := []float64{0.5, -0.5}
	out := make([]float64, 2)
	if _, err := x.Approximate(m, 0.1, base, out); err != nil {
		t.Fatalf("Approximate: %v", err)
	}
	if out[0] != 0.5 || out[1] != -0.5 {
		t.Fatalf("empty-segment answers %v, want bases", out)
	}
	outB := make([]bool, 2)
	if _, err := x.Threshold(m, 0, base, outB); err != nil {
		t.Fatalf("Threshold: %v", err)
	}
	if !outB[0] || outB[1] {
		t.Fatalf("empty-segment verdicts %v", outB)
	}
}

// TestDualAblationMethods exercises the KARL ablation bounding methods
// through the group path.
func TestDualAblationMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dim := 2
	trees := buildSegments(t, rng, 1, 100, dim, true)
	queries := testQueries(rng, 60, dim)
	k := kernel.Params{Kind: kernel.Gaussian, Gamma: 3}
	seq, _ := core.NewForest(k, bound.KARL, 0)
	if err := seq.SetTrees(trees); err != nil {
		t.Fatalf("SetTrees: %v", err)
	}
	for _, m := range []bound.Method{bound.SOTA, bound.KARL, bound.KARLLowerOnly, bound.KARLUpperOnly} {
		x, err := New(Config{Kernel: k, Method: m}, trees)
		if err != nil {
			t.Fatalf("New(%v): %v", m, err)
		}
		out := make([]float64, queries.Rows)
		if _, err := x.Approximate(queries, 0.1, nil, out); err != nil {
			t.Fatalf("Approximate(%v): %v", m, err)
		}
		for i := range out {
			exact, _, err := seq.Exact(queries.Row(i), 0)
			if err != nil {
				t.Fatalf("Exact: %v", err)
			}
			if err := checkEps(out[i], exact, 0.1); err != nil {
				t.Fatalf("%v query %d: %v", m, i, err)
			}
		}
	}
}
