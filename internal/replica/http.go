package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"karl"
)

// DeletePosHeader carries the leader's delete-log position (captured
// before serialization) on the snapshot response.
const DeletePosHeader = "X-Karl-Delete-Pos"

// HTTPSource pulls replication state from a remote leader's
// /v1/replicate/* endpoints (a karl-serve -mutable process).
type HTTPSource struct {
	base string
	hc   *http.Client
}

// NewHTTPSource builds a source for a karl-serve base URL. Snapshot
// streams can be large, so the client has no overall timeout; per-call
// contexts bound each request.
func NewHTTPSource(baseURL string) *HTTPSource {
	return &HTTPSource{base: baseURL, hc: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        8,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// NewHTTPSourceClient builds a source with a caller-supplied
// http.Client (test instrumentation, custom transports).
func NewHTTPSourceClient(baseURL string, hc *http.Client) *HTTPSource {
	return &HTTPSource{base: baseURL, hc: hc}
}

// Status implements Source via GET /v1/replicate/status.
func (s *HTTPSource) Status(ctx context.Context) (Status, error) {
	var st Status
	if err := s.getJSON(ctx, "/v1/replicate/status", &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Snapshot implements Source via GET /v1/replicate/snapshot. The caller
// must Close the returned body.
func (s *HTTPSource) Snapshot(ctx context.Context) (io.ReadCloser, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/replicate/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("replica: leader %s: %w", s.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, 0, s.statusError(resp)
	}
	pos, err := strconv.ParseUint(resp.Header.Get(DeletePosHeader), 10, 64)
	if err != nil {
		resp.Body.Close()
		return nil, 0, fmt.Errorf("replica: leader %s: snapshot response missing %s header", s.base, DeletePosHeader)
	}
	return resp.Body, pos, nil
}

// Pull implements Source via GET /v1/replicate/tail. The server answers
// HTTP 409 when incremental catch-up from the given position is
// impossible; that maps back to karl.ErrReplicaResync so the applier
// falls back to a snapshot.
func (s *HTTPSource) Pull(ctx context.Context, fence, delPos uint64) (*karl.ReplicaBatch, error) {
	var b karl.ReplicaBatch
	path := fmt.Sprintf("/v1/replicate/tail?fence=%d&deletes=%d", fence, delPos)
	if err := s.getJSON(ctx, path, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

func (s *HTTPSource) getJSON(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return fmt.Errorf("replica: leader %s: %w", s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s.statusError(resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	if err != nil {
		return fmt.Errorf("replica: leader %s: read response: %w", s.base, err)
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("replica: leader %s: decode response: %w", s.base, err)
	}
	return nil
}

// statusError turns a non-200 response into an error, mapping the
// server's 409 resync verdict back to the karl.ErrReplicaResync
// sentinel the Applier branches on.
func (s *HTTPSource) statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		msg = fmt.Sprintf("%s (HTTP %d)", envelope.Error, resp.StatusCode)
	}
	if resp.StatusCode == http.StatusConflict {
		return fmt.Errorf("replica: leader %s: %s: %w", s.base, msg, karl.ErrReplicaResync)
	}
	return fmt.Errorf("replica: leader %s: %s", s.base, msg)
}
