// Package replica is the replication subsystem: it keeps a follower
// DynamicEngine converged to a leader's live state with bounded lag, so
// the cluster layer can fail reads over to followers and promote one to
// leader when its member dies.
//
// The mechanism falls out of the engine's LSM shape. Sealed segments are
// immutable and self-describing, so the leader ships each one the
// follower is missing as a standalone persistence-v7 stream (exactly the
// wire unit shard splits use), followed by the memtable tail above the
// follower's fence sequence number and the seqs deleted since the
// follower's delete-log position. Kernel aggregation is additively
// decomposable and every row carries its cluster-visible seq, so a
// follower that has applied everything up to the fence holds exactly the
// leader's live mass — the ε/τ certificate contracts survive promotion
// verbatim.
//
// The protocol is pull-based and idempotent. A fresh follower records
// the leader's delete position, installs a full snapshot, and then polls
// Pull(fence, deletePos); redelivered segments and rows are skipped by
// seq, and replayed deletes of unknown ids are ignored. When the leader
// reports karl.ErrReplicaResync — its bounded delete log trimmed past
// the follower's position, or a compaction collapsed needed history into
// a coreset — the follower falls back to a full snapshot.
package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"karl"
)

// State is the follower's position in the catch-up state machine:
// snapshot (nothing applied yet), catching-up (snapshot installed,
// incremental pulls not yet through), live (at least one full pull
// cycle completed — eligible for read failover and promotion).
type State int32

const (
	StateSnapshot State = iota
	StateCatchingUp
	StateLive
)

// String implements fmt.Stringer; the strings are the wire values of
// Status.State.
func (s State) String() string {
	switch s {
	case StateSnapshot:
		return "snapshot"
	case StateCatchingUp:
		return "catching-up"
	case StateLive:
		return "live"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Status is the replication status of one engine, leader or follower —
// the JSON unit of GET /v1/replicate/status and the coordinator's
// lag accounting.
type Status struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// State is the follower catch-up state ("snapshot", "catching-up",
	// "live"); empty for leaders.
	State string `json:"state,omitempty"`
	// NextSeq is the engine's next sequence number: for a leader the next
	// insert id, for a follower one past the highest applied seq.
	NextSeq uint64 `json:"next_seq"`
	// Fence is the follower's replication watermark (highest leader seq
	// covered); 0 for leaders.
	Fence uint64 `json:"fence,omitempty"`
	// DeletePos is the delete-log position: total deletes applied
	// (leader) or replayed (follower).
	DeletePos uint64 `json:"delete_pos"`
	// LeaderSeq is the leader's NextSeq as of the follower's last
	// completed pull; 0 for leaders. LeaderSeq − NextSeq is the
	// follower's replication lag in sequence numbers.
	LeaderSeq uint64 `json:"leader_seq,omitempty"`
	// Points is the engine's live point count.
	Points int `json:"points"`
	// Epoch is the engine's manifest epoch.
	Epoch uint64 `json:"epoch"`
	// LastError is the most recent sync failure, cleared by the next
	// successful round — how an operator polling the status endpoint
	// sees a follower that is wedged rather than merely behind; empty
	// for leaders and healthy followers.
	LastError string `json:"last_error,omitempty"`
}

// Lag returns the follower's replication lag in sequence numbers as of
// its last completed pull (0 for leaders and caught-up followers).
func (s Status) Lag() uint64 {
	if s.LeaderSeq > s.NextSeq {
		return s.LeaderSeq - s.NextSeq
	}
	return 0
}

// Source is the follower's view of its leader: status, a full snapshot,
// and incremental pulls. EngineSource serves an in-process leader,
// HTTPSource a remote one over /v1/replicate/*.
type Source interface {
	// Status reports the leader's replication counters.
	Status(ctx context.Context) (Status, error)
	// Snapshot streams the leader's full state (a karl.WriteTo stream)
	// and returns the delete-log position captured BEFORE serialization —
	// deletes racing the snapshot are covered twice (in the stream and in
	// the log) rather than lost, and replay is idempotent.
	Snapshot(ctx context.Context) (io.ReadCloser, uint64, error)
	// Pull returns everything above (fence, delPos) as one consistent
	// batch; karl.ErrReplicaResync (possibly wrapped) demands a snapshot.
	Pull(ctx context.Context, fence, delPos uint64) (*karl.ReplicaBatch, error)
}

// EngineSource feeds a follower from an in-process leader engine — the
// Feeder half of the subsystem for single-process clusters and tests.
type EngineSource struct {
	Eng *karl.DynamicEngine
}

// Status implements Source.
func (s EngineSource) Status(ctx context.Context) (Status, error) {
	if err := ctx.Err(); err != nil {
		return Status{}, err
	}
	return Status{
		Role:      "leader",
		NextSeq:   s.Eng.NextSeq(),
		DeletePos: s.Eng.DeletePos(),
		Points:    s.Eng.Len(),
		Epoch:     s.Eng.Epoch(),
	}, nil
}

// Snapshot implements Source.
func (s EngineSource) Snapshot(ctx context.Context) (io.ReadCloser, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	delPos := s.Eng.DeletePos()
	var buf bytes.Buffer
	if _, err := s.Eng.WriteTo(&buf); err != nil {
		return nil, 0, err
	}
	return io.NopCloser(&buf), delPos, nil
}

// Pull implements Source.
func (s EngineSource) Pull(ctx context.Context, fence, delPos uint64) (*karl.ReplicaBatch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Eng.PullBatch(fence, delPos)
}

// ErrPromoted reports a sync attempt against an applier that has been
// promoted: it owns the engine as a leader now and must not apply
// anything from the old one.
var ErrPromoted = errors.New("replica: applier was promoted and no longer pulls")

// Applier owns a follower engine and converges it to a Source: the
// follower half of the subsystem. All applies serialize on the applier;
// the engine stays fully queryable throughout (reads see a consistent
// snapshot per the engine's own locking), which is what makes followers
// usable as read-failover targets while catching up.
type Applier struct {
	eng *karl.DynamicEngine
	src Source

	mu        sync.Mutex
	fence     uint64
	delPos    uint64
	leaderSeq uint64
	state     State
	promoted  bool
	bootstrap bool
	lastErr   string

	syncs   atomic.Int64
	resyncs atomic.Int64
}

// NewApplier wraps an empty follower engine. The engine must share the
// leader's kernel; everything else (policy, dims, manifest) arrives with
// the first snapshot or segment stream.
func NewApplier(eng *karl.DynamicEngine, src Source) *Applier {
	return &Applier{eng: eng, src: src, state: StateSnapshot}
}

// Engine returns the follower engine (for serving reads).
func (a *Applier) Engine() *karl.DynamicEngine { return a.eng }

// BootstrapFromSnapshot makes the applier's first sync install a full
// leader snapshot before pulling the tail, instead of attempting an
// incremental catch-up from seq 0. The snapshot adopts the leader's
// kernel and maintenance configuration wholesale, so the local engine
// need not have been built to match — this is how a follower whose
// engine was configured independently of its leader (karl-serve
// -replica-of) avoids the contract NewApplier otherwise imposes. Must
// be called before the first Sync; the engine must be empty.
func (a *Applier) BootstrapFromSnapshot() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bootstrap = true
}

// Sync performs one pull/apply round: everything above the follower's
// (fence, delete-pos) lands in one batch. A leader resync demand
// (trimmed delete log, coreset history) falls back to a full snapshot
// when the follower is still empty and fails otherwise. After the first
// successful round the follower is live.
func (a *Applier) Sync(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.promoted {
		return ErrPromoted
	}
	err := a.syncLocked(ctx)
	if err != nil {
		a.lastErr = err.Error()
	} else {
		a.lastErr = ""
	}
	return err
}

func (a *Applier) syncLocked(ctx context.Context) error {
	if a.bootstrap {
		if err := a.resyncLocked(ctx); err != nil {
			return err
		}
		a.bootstrap = false
	}
	b, err := a.src.Pull(ctx, a.fence, a.delPos)
	if errors.Is(err, karl.ErrReplicaResync) {
		if err := a.resyncLocked(ctx); err != nil {
			return err
		}
		b, err = a.src.Pull(ctx, a.fence, a.delPos)
	}
	if err != nil {
		return err
	}
	fence, err := a.eng.ApplyBatch(b)
	if err != nil {
		return fmt.Errorf("replica: applying batch at fence %d: %w", a.fence, err)
	}
	a.fence, a.delPos, a.leaderSeq = fence, b.DeletePos, b.NextSeq
	a.state = StateLive
	a.syncs.Add(1)
	return nil
}

// resyncLocked bootstraps from a full snapshot. Called with a.mu held.
func (a *Applier) resyncLocked(ctx context.Context) error {
	rc, delPos, err := a.src.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	defer rc.Close()
	a.state = StateSnapshot
	if err := a.eng.InstallSnapshot(rc); err != nil {
		return fmt.Errorf("replica: installing snapshot: %w", err)
	}
	a.fence = a.eng.NextSeq() - 1
	a.delPos = delPos
	a.state = StateCatchingUp
	a.resyncs.Add(1)
	return nil
}

// CatchUp syncs until the follower is live AND a final round ships
// nothing new — bounded-lag convergence for a quiescent leader, a
// best-effort floor under a live write load.
func (a *Applier) CatchUp(ctx context.Context) error {
	for {
		before := a.Status()
		if err := a.Sync(ctx); err != nil {
			return err
		}
		after := a.Status()
		if after.State == StateLive.String() && after.NextSeq == before.NextSeq && after.DeletePos == before.DeletePos && before.State == StateLive.String() {
			return nil
		}
	}
}

// Run polls Sync on the given interval until the context ends or the
// applier is promoted. Transient sync errors do not stop the loop; the
// last one is returned alongside a context end for diagnosis.
func (a *Applier) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return fmt.Errorf("%w (last sync error: %w)", ctx.Err(), lastErr)
			}
			return ctx.Err()
		case <-t.C:
		}
		switch err := a.Sync(ctx); {
		case err == nil:
			lastErr = nil
		case errors.Is(err, ErrPromoted):
			return nil
		default:
			lastErr = err
		}
	}
}

// Promote ends replication and hands the engine over as a leader: the
// applier refuses further syncs, and the caller (the coordinator's
// failover, or the serve process's promote endpoint) starts routing
// writes to the engine. Idempotent.
func (a *Applier) Promote() *karl.DynamicEngine {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.promoted = true
	// A dead leader usually leaves a failed pull behind; the new leader's
	// status must not keep reporting it.
	a.lastErr = ""
	return a.eng
}

// Promoted reports whether Promote has been called.
func (a *Applier) Promoted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.promoted
}

// Syncs returns the number of completed sync rounds.
func (a *Applier) Syncs() int64 { return a.syncs.Load() }

// Resyncs returns the number of full-snapshot bootstraps taken.
func (a *Applier) Resyncs() int64 { return a.resyncs.Load() }

// Status reports the follower's replication status (Role flips to
// "leader" after promotion).
func (a *Applier) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{
		Role:      "follower",
		State:     a.state.String(),
		NextSeq:   a.eng.NextSeq(),
		Fence:     a.fence,
		DeletePos: a.delPos,
		LeaderSeq: a.leaderSeq,
		Points:    a.eng.Len(),
		Epoch:     a.eng.Epoch(),
		LastError: a.lastErr,
	}
	if a.promoted {
		st.Role = "leader"
		st.State = ""
	}
	return st
}
