package replica_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"karl"
	"karl/internal/replica"
)

// TestBootstrapFromSnapshotAdoptsConfig pins the -replica-of serving
// contract: a follower whose engine was configured independently of its
// leader (different kernel here) converges exactly once it bootstraps
// from the leader's snapshot — including through views and clones built
// before the install, which must not keep refining with the superseded
// kernel.
func TestBootstrapFromSnapshotAdoptsConfig(t *testing.T) {
	leader, err := karl.NewDynamic(karl.Gaussian(0.9), karl.WithSealSize(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var ids []uint64
	for i := 0; i < 300; i++ {
		id, err := leader.InsertID([]float64{rng.NormFloat64(), rng.NormFloat64()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		if i%9 == 2 {
			if err := leader.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	follower, err := karl.NewDynamic(karl.Gaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})
	a.BootstrapFromSnapshot()
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, -0.15}
	want, _ := leader.Aggregate(q)
	got, _ := follower.Aggregate(q)
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("follower %v leader %v", got, want)
	}
}
