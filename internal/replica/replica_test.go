package replica_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"karl"
	"karl/internal/replica"
	"karl/internal/server"
)

func mkEngine(t *testing.T) *karl.DynamicEngine {
	t.Helper()
	d, err := karl.NewDynamic(karl.Gaussian(1.5), karl.WithSealSize(32), karl.WithAutoCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// loadLeader fills an engine with a deterministic insert/delete mix and
// returns the surviving ids.
func loadLeader(t *testing.T, d *karl.DynamicEngine, n int, seed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, err := d.InsertID([]float64{rng.Float64(), rng.Float64()}, 0.5+rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	kept := ids[:0]
	for i, id := range ids {
		if i%9 == 4 {
			if err := d.Delete(id); err != nil {
				t.Fatal(err)
			}
			continue
		}
		kept = append(kept, id)
	}
	return kept
}

// checkConverged asserts the follower answers like the leader: exact
// point counts, masses and aggregates within float-summation-order
// tolerance (tombstone mass accumulates over a map, so even one engine
// is not bitwise-reproducible across calls).
func checkConverged(t *testing.T, leader, follower *karl.DynamicEngine) {
	t.Helper()
	close9 := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if lg, fg := leader.Len(), follower.Len(); lg != fg {
		t.Fatalf("len diverged: leader %d follower %d", lg, fg)
	}
	lp, ln := leader.WeightMass()
	fp, fn := follower.WeightMass()
	if !close9(lp, fp) || !close9(ln, fn) {
		t.Fatalf("mass diverged: leader %v/%v follower %v/%v", lp, ln, fp, fn)
	}
	for _, q := range [][]float64{{0.2, 0.7}, {0.8, 0.3}, {0.5, 0.5}} {
		want, err := leader.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := follower.Aggregate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !close9(want, got) {
			t.Fatalf("aggregate diverged at %v: leader %v follower %v", q, want, got)
		}
	}
}

// TestApplierCatchUp drives a fresh follower live through EngineSource,
// keeps it converged across further writes, and pins the Status surface.
func TestApplierCatchUp(t *testing.T) {
	leader, follower := mkEngine(t), mkEngine(t)
	ids := loadLeader(t, leader, 120, 81)
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})

	ctx := context.Background()
	if err := a.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, leader, follower)

	st := a.Status()
	if st.Role != "follower" || st.State != "live" {
		t.Fatalf("status after catch-up: %+v", st)
	}
	if st.Lag() != 0 {
		t.Fatalf("lag %d after catch-up", st.Lag())
	}
	if st.NextSeq != leader.NextSeq() {
		t.Fatalf("follower next_seq %d, leader %d", st.NextSeq, leader.NextSeq())
	}

	// Steady state: more writes, one more sync round each.
	for i := 0; i < 30; i++ {
		if _, err := leader.InsertID([]float64{0.1 * float64(i%10), 0.3}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Delete(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, leader, follower)
	if a.Resyncs() != 0 {
		t.Fatalf("resyncs %d on an incremental-only run", a.Resyncs())
	}
	if a.Syncs() == 0 {
		t.Fatal("no syncs counted")
	}
}

// TestApplierResyncFallback reloads the leader from a persistence stream
// (its pre-existing deletes are absent from the delete log), so the
// follower's first pull demands a snapshot; the applier must fall back
// and still converge.
func TestApplierResyncFallback(t *testing.T) {
	seedLeader := mkEngine(t)
	loadLeader(t, seedLeader, 100, 82)
	var buf strings.Builder
	if _, err := seedLeader.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	leader, err := karl.ReadDynamic(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	follower := mkEngine(t)
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Resyncs() != 1 {
		t.Fatalf("resyncs %d, want 1 (snapshot fallback)", a.Resyncs())
	}
	checkConverged(t, leader, follower)
}

// TestApplierPromote checks the handover: a promoted applier refuses
// further syncs, reports itself a leader, and its engine accepts writes.
func TestApplierPromote(t *testing.T) {
	leader, follower := mkEngine(t), mkEngine(t)
	loadLeader(t, leader, 60, 83)
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	if a.Promoted() {
		t.Fatal("promoted before Promote")
	}
	eng := a.Promote()
	if eng != follower {
		t.Fatal("Promote returned a different engine")
	}
	if !a.Promoted() {
		t.Fatal("not promoted after Promote")
	}
	if err := a.Sync(context.Background()); !errors.Is(err, replica.ErrPromoted) {
		t.Fatalf("sync after promotion: got %v, want ErrPromoted", err)
	}
	if st := a.Status(); st.Role != "leader" || st.State != "" {
		t.Fatalf("status after promotion: %+v", st)
	}
	// The promoted engine is a leader now: writes land, seqs continue the
	// leader's lineage.
	id, err := eng.InsertID([]float64{0.4, 0.4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id < leader.NextSeq()-1 {
		t.Fatalf("promoted engine reissued seq %d below leader lineage %d", id, leader.NextSeq())
	}
	// Run on a promoted applier returns immediately without error.
	if err := a.Run(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("run after promotion: %v", err)
	}
}

// TestApplierRunUnderWrites races Run against a sustained leader write
// load and concurrent follower reads — the -race gate for the applier's
// locking — then checks final convergence.
func TestApplierRunUnderWrites(t *testing.T) {
	leader, follower := mkEngine(t), mkEngine(t)
	loadLeader(t, leader, 50, 84)
	a := replica.NewApplier(follower, replica.EngineSource{Eng: leader})

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_ = a.Run(ctx, time.Millisecond)
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(85))
		var ids []uint64
		for i := 0; i < 400; i++ {
			id, err := leader.InsertID([]float64{rng.Float64(), rng.Float64()}, 1)
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, id)
			if i%11 == 5 {
				if err := leader.Delete(ids[rng.Intn(len(ids))]); err != nil && !errors.Is(err, karl.ErrPointNotFound) {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Concurrent reads on the follower while it catches up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// The follower may still be empty before its first apply; only
			// that error is acceptable mid-catch-up.
			if _, err := follower.Aggregate([]float64{0.5, 0.5}); err != nil && !strings.Contains(err.Error(), "empty") {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	cancel()
	<-runDone
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, leader, follower)
}

// TestHTTPSourceRoundTrip runs the full wire protocol: a leader behind
// server.NewMutable, a follower pulling through HTTPSource — snapshot
// bootstrap (the leader is a reloaded engine, forcing the 409 resync
// path), incremental tail, status, and follower-side write refusal until
// promotion over HTTP.
func TestHTTPSourceRoundTrip(t *testing.T) {
	seed := mkEngine(t)
	loadLeader(t, seed, 90, 86)
	var buf strings.Builder
	if _, err := seed.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	leader, err := karl.ReadDynamic(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv, err := server.NewMutable(leader)
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(leaderSrv)
	defer lts.Close()

	src := replica.NewHTTPSource(lts.URL)
	st, err := src.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "leader" || st.NextSeq != leader.NextSeq() {
		t.Fatalf("leader status over HTTP: %+v", st)
	}

	follower := mkEngine(t)
	a := replica.NewApplier(follower, src)
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Resyncs() != 1 {
		t.Fatalf("resyncs %d, want 1 (reloaded leader demands snapshot over HTTP 409)", a.Resyncs())
	}
	checkConverged(t, leader, follower)

	// Incremental over the wire.
	for i := 0; i < 40; i++ {
		if _, err := leader.InsertID([]float64{0.01 * float64(i), 0.6}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, leader, follower)

	// Follower-side server: writes refused with 409 until promotion.
	followerSrv, err := server.NewMutable(follower, server.WithReplicaApplier(a))
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(followerSrv)
	defer fts.Close()

	insertBody := `{"p":[0.5,0.5],"w":1}`
	resp, err := http.Post(fts.URL+"/v1/insert", "application/json", strings.NewReader(insertBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("insert on a follower: HTTP %d, want 409", resp.StatusCode)
	}

	// The follower serves its own replication status over HTTP.
	resp, err = http.Get(fts.URL + "/v1/replicate/status")
	if err != nil {
		t.Fatal(err)
	}
	var fst replica.Status
	if err := json.NewDecoder(resp.Body).Decode(&fst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fst.Role != "follower" || fst.State != "live" {
		t.Fatalf("follower status over HTTP: %+v", fst)
	}

	// Promote over HTTP; writes open up.
	resp, err = http.Post(fts.URL+"/v1/replicate/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: HTTP %d", resp.StatusCode)
	}
	if !a.Promoted() {
		t.Fatal("applier not promoted after POST /v1/replicate/promote")
	}
	resp, err = http.Post(fts.URL+"/v1/insert", "application/json", strings.NewReader(insertBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after promotion: HTTP %d, want 200", resp.StatusCode)
	}

	// Promoting a pure leader is a 409.
	resp, err = http.Post(lts.URL+"/v1/replicate/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on a leader: HTTP %d, want 409", resp.StatusCode)
	}
}
