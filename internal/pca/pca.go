// Package pca implements principal component analysis through a dense
// Jacobi eigensolver, used by the Figure 12 experiment to sweep
// dimensionality exactly as the paper does for mnist (PCA reduction).
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"karl/internal/vec"
)

// Model holds a fitted PCA basis.
type Model struct {
	// Mean is the per-column mean removed before projection.
	Mean []float64
	// Components holds the principal axes as rows, sorted by decreasing
	// eigenvalue.
	Components *vec.Matrix
	// Eigenvalues are the variances along each component, sorted
	// decreasingly.
	Eigenvalues []float64
}

// Fit computes the full PCA basis of the data (all min(n−1,d) meaningful
// components are retained; callers pick how many to use at Transform time).
func Fit(data *vec.Matrix) (*Model, error) {
	if data == nil || data.Rows < 2 {
		return nil, errors.New("pca: need at least two rows")
	}
	n, d := data.Rows, data.Cols
	mean, _ := data.ColumnStats()
	// Covariance matrix (population normalization; the basis is identical).
	cov := make([]float64, d*d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			for b := a; b < d; b++ {
				cov[a*d+b] += da * (row[b] - mean[b])
			}
		}
	}
	inv := 1 / float64(n)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a*d+b] *= inv
			cov[b*d+a] = cov[a*d+b]
		}
	}
	eigVals, eigVecs, err := jacobiEigen(cov, d)
	if err != nil {
		return nil, err
	}
	// Sort by decreasing eigenvalue.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return eigVals[order[i]] > eigVals[order[j]] })
	m := &Model{Mean: mean, Components: vec.NewMatrix(d, d), Eigenvalues: make([]float64, d)}
	for r, idx := range order {
		m.Eigenvalues[r] = eigVals[idx]
		comp := m.Components.Row(r)
		for c := 0; c < d; c++ {
			comp[c] = eigVecs[c*d+idx] // eigenvectors are columns of eigVecs
		}
	}
	return m, nil
}

// Transform projects data onto the first k components.
func (m *Model) Transform(data *vec.Matrix, k int) (*vec.Matrix, error) {
	d := len(m.Mean)
	if data == nil || data.Cols != d {
		return nil, fmt.Errorf("pca: data has wrong dimensionality")
	}
	if k < 1 || k > m.Components.Rows {
		return nil, fmt.Errorf("pca: k=%d outside [1,%d]", k, m.Components.Rows)
	}
	out := vec.NewMatrix(data.Rows, k)
	centered := make([]float64, d)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for j := 0; j < d; j++ {
			centered[j] = row[j] - m.Mean[j]
		}
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			dst[c] = vec.Dot(centered, m.Components.Row(c))
		}
	}
	return out, nil
}

// ExplainedVariance returns the fraction of total variance captured by the
// first k components.
func (m *Model) ExplainedVariance(k int) float64 {
	var top, total float64
	for i, v := range m.Eigenvalues {
		if v > 0 {
			total += v
			if i < k {
				top += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// jacobiEigen diagonalizes a symmetric d×d matrix with cyclic Jacobi
// rotations. Returns eigenvalues and the eigenvector matrix (eigenvectors
// in columns).
func jacobiEigen(a []float64, d int) (vals []float64, vecs []float64, err error) {
	// Work on a copy; accumulate rotations in v (starts as identity).
	m := append([]float64(nil), a...)
	v := make([]float64, d*d)
	for i := 0; i < d; i++ {
		v[i*d+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				off += m[p*d+q] * m[p*d+q]
			}
		}
		if off < 1e-22*float64(d*d) {
			vals = make([]float64, d)
			for i := 0; i < d; i++ {
				vals[i] = m[i*d+i]
			}
			return vals, v, nil
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				apq := m[p*d+q]
				if apq == 0 {
					continue
				}
				app, aqq := m[p*d+p], m[q*d+q]
				theta := (aqq - app) / (2 * apq)
				// Stable tangent of the rotation angle.
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to rows/cols p and q of m.
				for k := 0; k < d; k++ {
					mkp, mkq := m[k*d+p], m[k*d+q]
					m[k*d+p] = c*mkp - s*mkq
					m[k*d+q] = s*mkp + c*mkq
				}
				for k := 0; k < d; k++ {
					mpk, mqk := m[p*d+k], m[q*d+k]
					m[p*d+k] = c*mpk - s*mqk
					m[q*d+k] = s*mpk + c*mqk
				}
				// Accumulate into the eigenvector matrix.
				for k := 0; k < d; k++ {
					vkp, vkq := v[k*d+p], v[k*d+q]
					v[k*d+p] = c*vkp - s*vkq
					v[k*d+q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, errors.New("pca: Jacobi iteration did not converge")
}
