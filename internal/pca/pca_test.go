package pca

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/vec"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Fit(vec.FromRows([][]float64{{1, 2}})); err == nil {
		t.Fatal("single row accepted")
	}
}

func TestKnownAxis(t *testing.T) {
	// Points along the direction (1,1)/√2 with tiny orthogonal noise: the
	// first component must align with that direction.
	rng := rand.New(rand.NewSource(41))
	n := 500
	m := vec.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 3
		noise := rng.NormFloat64() * 0.01
		m.Row(i)[0] = tv + noise
		m.Row(i)[1] = tv - noise
	}
	model, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	c0 := model.Components.Row(0)
	// Alignment with (1,1)/√2, up to sign.
	align := math.Abs(c0[0]+c0[1]) / math.Sqrt2
	if align < 0.999 {
		t.Fatalf("first component %v not aligned with (1,1): %v", c0, align)
	}
	if model.Eigenvalues[0] < 100*model.Eigenvalues[1] {
		t.Fatalf("eigenvalue gap too small: %v", model.Eigenvalues)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := vec.NewMatrix(200, 6)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	model, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	d := 6
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			dot := vec.Dot(model.Components.Row(a), model.Components.Row(b))
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("components %d·%d = %v want %v", a, b, dot, want)
			}
		}
	}
}

func TestEigenvaluesSortedAndVariancePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, d := 300, 5
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	model, err := Fit(m)
	if err != nil {
		t.Fatal(err)
	}
	var eigSum float64
	for i, v := range model.Eigenvalues {
		eigSum += v
		if i > 0 && v > model.Eigenvalues[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", model.Eigenvalues)
		}
	}
	// Trace preservation: Σλ = Σ per-column variance.
	_, std := m.ColumnStats()
	var trace float64
	for _, s := range std {
		trace += s * s
	}
	if math.Abs(eigSum-trace) > 1e-9*(1+trace) {
		t.Fatalf("Σλ = %v, trace = %v", eigSum, trace)
	}
}

func TestTransformPreservesDistancesFullRank(t *testing.T) {
	// With k = d the projection is a rotation: pairwise distances survive.
	rng := rand.New(rand.NewSource(44))
	n, d := 60, 4
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	model, _ := Fit(m)
	proj, err := model.Transform(m, d)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		want := vec.Dist2(m.Row(i), m.Row(j))
		got := vec.Dist2(proj.Row(i), proj.Row(j))
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("distance %d-%d changed: %v vs %v", i, j, got, want)
		}
	}
}

func TestTransformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := vec.NewMatrix(10, 3)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	model, _ := Fit(m)
	if _, err := model.Transform(nil, 2); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := model.Transform(vec.NewMatrix(5, 2), 2); err == nil {
		t.Fatal("wrong dims accepted")
	}
	if _, err := model.Transform(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := model.Transform(m, 4); err == nil {
		t.Fatal("k>d accepted")
	}
}

func TestExplainedVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n := 400
	m := vec.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		m.Row(i)[0] = rng.NormFloat64() * 10 // dominant axis
		m.Row(i)[1] = rng.NormFloat64()
		m.Row(i)[2] = rng.NormFloat64() * 0.1
	}
	model, _ := Fit(m)
	ev1 := model.ExplainedVariance(1)
	if ev1 < 0.95 {
		t.Fatalf("first component explains %v, want > 0.95", ev1)
	}
	if full := model.ExplainedVariance(3); math.Abs(full-1) > 1e-12 {
		t.Fatalf("full basis explains %v, want 1", full)
	}
	if model.ExplainedVariance(2) < ev1 {
		t.Fatal("explained variance must be monotone in k")
	}
}

func TestReconstructionFromProjection(t *testing.T) {
	// Projecting and re-embedding with the full basis must reconstruct the
	// centered data: x − mean = Σ_c proj_c · comp_c.
	rng := rand.New(rand.NewSource(47))
	n, d := 40, 4
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	model, _ := Fit(m)
	proj, _ := model.Transform(m, d)
	for i := 0; i < n; i++ {
		recon := vec.Clone(model.Mean)
		for c := 0; c < d; c++ {
			vec.Axpy(recon, proj.Row(i)[c], model.Components.Row(c))
		}
		if !vec.Equal(recon, m.Row(i), 1e-8) {
			t.Fatalf("row %d reconstruction failed: %v vs %v", i, recon, m.Row(i))
		}
	}
}
