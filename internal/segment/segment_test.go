package segment

import (
	"math"
	"math/rand"
	"testing"

	"karl/internal/index"
	"karl/internal/kernel"
	"karl/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func cfg() BuildConfig { return BuildConfig{Kind: index.KDTree, LeafCap: 8} }

// sealRun seals rows [start,end) of pts as one segment.
func sealRun(t *testing.T, pts *vec.Matrix, w []float64, start, end int, id uint64) *Segment {
	t.Helper()
	d := pts.Cols
	buf := vec.NewMatrix(end-start, d)
	copy(buf.Data, pts.Data[start*d:end*d])
	var bw []float64
	if w != nil {
		bw = append([]float64(nil), w[start:end]...)
	}
	seg, err := Seal(MemRun{M: buf, W: bw, N: end - start}, 0, cfg(), id)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return seg
}

// TestSealDoesNotMutateBuffer pins the invariant the memtable protocol
// depends on: sealing reads the buffer but never reorders or writes it.
func TestSealDoesNotMutateBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := randMatrix(rng, 100, 3)
	snap := append([]float64(nil), buf.Data...)
	if _, err := Seal(MemRun{M: buf, N: 64}, 0, cfg(), 1); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	for i, v := range buf.Data {
		if v != snap[i] {
			t.Fatalf("Seal mutated buffer at %d: %v != %v", i, v, snap[i])
		}
	}
}

// TestMergeBitwiseEqualsMonolithic is the heart of the equivalence gate:
// restoring per-segment insertion order and concatenating oldest-first
// must reproduce the exact tree a monolithic build over the full
// insertion stream would produce.
func TestMergeBitwiseEqualsMonolithic(t *testing.T) {
	for _, kind := range []index.Kind{index.KDTree, index.BallTree, index.VPTree} {
		for _, weighted := range []bool{false, true} {
			rng := rand.New(rand.NewSource(7))
			n, d := 300, 4
			pts := randMatrix(rng, n, d)
			var w []float64
			if weighted {
				w = make([]float64, n)
				for i := range w {
					w[i] = rng.Float64()*2 - 1
				}
			}
			c := BuildConfig{Kind: kind, LeafCap: 8}
			// Three segments with uneven cuts.
			cuts := []int{0, 97, 211, n}
			var segs []*Segment
			for s := 0; s+1 < len(cuts); s++ {
				d0 := pts.Cols
				buf := vec.NewMatrix(cuts[s+1]-cuts[s], d0)
				copy(buf.Data, pts.Data[cuts[s]*d0:cuts[s+1]*d0])
				var bw []float64
				if w != nil {
					bw = append([]float64(nil), w[cuts[s]:cuts[s+1]]...)
				}
				seg, err := Seal(MemRun{M: buf, W: bw, N: cuts[s+1] - cuts[s]}, 0, c, uint64(s))
				if err != nil {
					t.Fatalf("Seal: %v", err)
				}
				segs = append(segs, seg)
			}
			merged, err := Merge(segs, MemRun{}, MergeOpts{}, c, 99)
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			mono, err := c.Build(pts, w)
			if err != nil {
				t.Fatalf("monolithic build: %v", err)
			}
			mt, bt := merged.Tree, mono
			if mt.Len() != bt.Len() || len(mt.Nodes) != len(bt.Nodes) {
				t.Fatalf("kind %v weighted %v: shape mismatch: %d/%d points, %d/%d nodes",
					kind, weighted, mt.Len(), bt.Len(), len(mt.Nodes), len(bt.Nodes))
			}
			for i := range mt.Points.Data {
				if mt.Points.Data[i] != bt.Points.Data[i] {
					t.Fatalf("kind %v weighted %v: point data differs at %d", kind, weighted, i)
				}
			}
			if (mt.Weights == nil) != (bt.Weights == nil) {
				t.Fatalf("kind %v weighted %v: weights nil-ness differs", kind, weighted)
			}
			for i := range mt.Weights {
				if mt.Weights[i] != bt.Weights[i] {
					t.Fatalf("kind %v weighted %v: weight differs at %d", kind, weighted, i)
				}
			}
			for i := range mt.PointID {
				if mt.PointID[i] != bt.PointID[i] {
					t.Fatalf("kind %v weighted %v: PointID differs at %d", kind, weighted, i)
				}
			}
		}
	}
}

// TestMergeWithMemtableRun covers the full-compaction path: segments plus
// a trailing memtable run equal a monolithic build over the whole stream.
func TestMergeWithMemtableRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, d := 200, 3
	pts := randMatrix(rng, n, d)
	segA := sealRun(t, pts, nil, 0, 80, 1)
	segB := sealRun(t, pts, nil, 80, 150, 2)
	mem := vec.NewMatrix(64, d)
	copy(mem.Data, pts.Data[150*d:n*d])
	merged, err := Merge([]*Segment{segA, segB}, MemRun{M: mem, N: n - 150}, MergeOpts{}, cfg(), 3)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	mono, err := cfg().Build(pts, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if merged.Tree.Len() != mono.Len() {
		t.Fatalf("len %d != %d", merged.Tree.Len(), mono.Len())
	}
	for i := range merged.Tree.Points.Data {
		if merged.Tree.Points.Data[i] != mono.Points.Data[i] {
			t.Fatalf("point data differs at %d", i)
		}
	}
	if merged.Tree.Weights != nil {
		t.Fatalf("unit-weight merge materialized weights")
	}
}

func TestManifestOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randMatrix(rng, 90, 2)
	m := &Manifest{}
	if m.Len() != 0 || len(m.Trees()) != 0 {
		t.Fatalf("empty manifest not empty")
	}
	s1 := sealRun(t, pts, nil, 0, 30, 1)
	s2 := sealRun(t, pts, nil, 30, 60, 2)
	s3 := sealRun(t, pts, nil, 60, 90, 3)
	m1 := m.WithSealed(s1).WithSealed(s2).WithSealed(s3)
	if m1.Epoch != 3 || m1.Len() != 90 || len(m1.Segs) != 3 {
		t.Fatalf("manifest after seals: epoch %d len %d segs %d", m1.Epoch, m1.Len(), len(m1.Segs))
	}
	// Original snapshots untouched.
	if len(m.Segs) != 0 {
		t.Fatalf("WithSealed mutated receiver")
	}
	merged, err := Merge(m1.Select([]uint64{1, 2}), MemRun{}, MergeOpts{}, cfg(), 4)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	m2 := m1.WithReplaced([]uint64{1, 2}, merged)
	if m2.Epoch != 4 || len(m2.Segs) != 2 || m2.Len() != 90 {
		t.Fatalf("manifest after replace: epoch %d segs %d len %d", m2.Epoch, len(m2.Segs), m2.Len())
	}
	if m2.Segs[0].ID != 4 || m2.Segs[1].ID != 3 {
		t.Fatalf("replace misplaced merged segment: ids %d,%d", m2.Segs[0].ID, m2.Segs[1].ID)
	}
	// m1 untouched by WithReplaced.
	if len(m1.Segs) != 3 {
		t.Fatalf("WithReplaced mutated receiver")
	}
}

func TestPolicyTierAndPlan(t *testing.T) {
	p := Policy{SealSize: 100, Fanout: 4}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, tc := range []struct{ n, tier int }{
		{1, 0}, {100, 0}, {399, 0}, {400, 1}, {1599, 1}, {1600, 2},
	} {
		if got := p.Tier(tc.n); got != tc.tier {
			t.Fatalf("Tier(%d) = %d, want %d", tc.n, got, tc.tier)
		}
	}
	// Fake segments via tiny real trees are overkill here; use real seals
	// of varying sizes to exercise Plan end-to-end.
	rng := rand.New(rand.NewSource(5))
	pts := randMatrix(rng, 2000, 2)
	p2 := Policy{SealSize: 50, Fanout: 3}
	man := &Manifest{}
	// Three tier-0 segments (50 points each) → plan triggers.
	for i := 0; i < 3; i++ {
		man = man.WithSealed(sealRun(t, pts, nil, i*50, (i+1)*50, uint64(i+1)))
	}
	ids := p2.Plan(man)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("Plan = %v, want [1 2 3]", ids)
	}
	// Two tier-0 segments only → no plan.
	man2 := &Manifest{Segs: man.Segs[:2]}
	if got := p2.Plan(man2); got != nil {
		t.Fatalf("Plan on 2 segments = %v, want nil", got)
	}
	// A large tier-1 segment plus three tier-0s → plan picks the tier-0s.
	big := sealRun(t, pts, nil, 200, 400, 9) // 200 points ≥ 150 → tier 1
	man3 := (&Manifest{}).WithSealed(big)
	for i := 0; i < 3; i++ {
		man3 = man3.WithSealed(sealRun(t, pts, nil, i*50, (i+1)*50, uint64(i+1)))
	}
	ids = p2.Plan(man3)
	if len(ids) != 3 || ids[0] != 1 {
		t.Fatalf("Plan = %v, want tier-0 ids [1 2 3]", ids)
	}
}

func TestPolicyValidate(t *testing.T) {
	for _, p := range []Policy{
		{SealSize: 0, Fanout: 4},
		{SealSize: 512, Fanout: 1},
		{SealSize: 512, Fanout: 4, ColdEps: 1.5},
		{SealSize: 512, Fanout: 4, ColdEps: -0.1},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Policy{SealSize: 1, Fanout: 2, ColdEps: 0.2, ColdMin: 100}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

// TestCompress checks the cold tier: a compressed segment is smaller,
// flagged as a coreset, and its KDE stays within the advertised
// normalized error of the original.
func TestCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, d := 4000, 2
	pts := randMatrix(rng, n, d)
	seg := sealRun(t, pts, nil, 0, n, 1)
	kern := kernel.Params{Kind: kernel.Gaussian, Gamma: 0.5}
	cold, err := Compress(seg, kern, 0.05, 1, cfg(), 2)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if !cold.Coreset || cold.Eps <= 0 {
		t.Fatalf("compressed segment not flagged: coreset=%v eps=%v", cold.Coreset, cold.Eps)
	}
	if cold.Len() >= seg.Len() {
		t.Fatalf("compression did not reduce: %d >= %d", cold.Len(), seg.Len())
	}
	// Spot-check normalized error at a few queries.
	exact := func(tr *index.Tree, q []float64) float64 {
		s := 0.0
		for i := 0; i < tr.Len(); i++ {
			w := 1.0
			if tr.Weights != nil {
				w = tr.Weights[i]
			}
			s += w * kern.Eval(q, tr.Points.Row(i))
		}
		return s
	}
	for trial := 0; trial < 5; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64()}
		f0 := exact(seg.Tree, q)
		f1 := exact(cold.Tree, q)
		if math.Abs(f0-f1) > 3*cold.Eps*float64(n) {
			t.Fatalf("cold segment error %v exceeds bound %v", math.Abs(f0-f1), cold.Eps*float64(n))
		}
	}
	// Mixed-sign weights must be rejected, not silently mangled.
	w := make([]float64, 100)
	for i := range w {
		w[i] = float64(i%2*2 - 1)
	}
	mseg := sealRun(t, pts, w, 0, 100, 3)
	if _, err := Compress(mseg, kern, 0.1, 1, cfg(), 4); err == nil {
		t.Fatalf("Compress accepted mixed-sign weights")
	}
}
