// Package segment implements the LSM-style storage layer under
// karl.DynamicEngine: an ordered manifest of immutable index segments plus
// the operations that evolve it — sealing a memtable into a small segment,
// merging segments under a geometric tiering policy, and optionally
// compacting cold merged segments into provable-error coresets (the
// Phillips & Tai direction from PAPERS.md).
//
// Manifests are immutable snapshots: every mutation returns a new Manifest
// with a bumped Epoch, so query executors can keep refining over an old
// snapshot while a background compaction installs a new one — no query
// ever waits on a rebuild.
//
// Two invariants matter for exactness:
//
//   - Each segment's tree was built from its points in INSERTION order
//     (the build input order; the tree's PointID maps leaf-storage rows
//     back to it). Merging reconstructs that order per segment and
//     concatenates oldest-first, so a full merge reproduces the exact
//     point sequence the user inserted — and therefore the exact tree a
//     monolithic build over that sequence would produce, making answers
//     bitwise-identical after full compaction.
//   - Segments in a manifest are ordered oldest-first and cover disjoint,
//     time-contiguous runs of the insert stream.
package segment

import (
	"errors"
	"fmt"
	"math"

	"karl/internal/balltree"
	"karl/internal/coreset"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// BuildConfig fixes the index family every segment of an engine is built
// with, so merged segments answer bitwise like a monolithic build. Leaf32
// additionally equips every built segment with the tiled float32 leaf
// mirror (see index.Tree.BuildLeaf32), so sealed and compacted segments
// inherit the engine's WithLeafFloat32 setting.
type BuildConfig struct {
	Kind    index.Kind
	LeafCap int
	Leaf32  bool
}

// Build constructs one tree with the configured builder.
func (c BuildConfig) Build(m *vec.Matrix, w []float64) (*index.Tree, error) {
	var t *index.Tree
	var err error
	switch c.Kind {
	case index.KDTree:
		t, err = kdtree.Build(m, w, c.LeafCap)
	case index.BallTree:
		t, err = balltree.Build(m, w, c.LeafCap)
	case index.VPTree:
		t, err = vptree.Build(m, w, c.LeafCap)
	default:
		return nil, fmt.Errorf("segment: unknown index kind %d", int(c.Kind))
	}
	if err == nil && c.Leaf32 {
		t.BuildLeaf32()
	}
	return t, err
}

// Segment is one immutable sorted run: a flat index over a contiguous
// slice of the insert stream. Coreset marks a lossy compacted segment
// whose points are a provable-error sketch of the originals; Eps is the
// accumulated normalized-error bound of every compression it went through.
//
// Seqs, when non-nil, carries the global point sequence numbers of the
// segment's rows in INSERTION order (ascending — segments cover contiguous
// runs of the insert stream), which is what makes individual points
// addressable for deletion. Coreset segments drop Seqs: their rows no
// longer correspond 1:1 to inserts. Times (parallel to Seqs, UnixNano)
// records insert timestamps for TTL expiry; nil on untimed engines.
// TimeRef is the instant the stored weights are scaled to under
// exponential decay (0 when decay is off): the live weight of row i at
// query time T is Weights[i]·2^(−(T−TimeRef)/halflife).
type Segment struct {
	Tree    *index.Tree
	ID      uint64
	Coreset bool
	Eps     float64

	Seqs    []uint64
	Times   []int64
	TimeRef int64

	// inv maps insertion-order position -> leaf-storage row (the inverse
	// of Tree.PointID), built by New when Seqs is present so Find can
	// binary-search Seqs and land on the stored row.
	inv []int32
}

// New assembles a segment from an already-built tree and its provenance.
// seqs and times are retained, not copied; callers hand over slices they
// will not mutate. It is the single construction path shared by Seal,
// Merge, Compress and the persistence loader.
func New(tree *index.Tree, id uint64, coreset bool, eps float64, seqs []uint64, times []int64, timeRef int64) *Segment {
	s := &Segment{Tree: tree, ID: id, Coreset: coreset, Eps: eps, Seqs: seqs, Times: times, TimeRef: timeRef}
	if seqs != nil {
		s.inv = make([]int32, tree.Len())
		for storage, input := range tree.PointID {
			s.inv[input] = int32(storage)
		}
	}
	return s
}

// Len returns the number of points the segment stores.
func (s *Segment) Len() int { return s.Tree.Len() }

// Find returns the leaf-storage row holding the point with the given
// sequence number, or false when the segment does not track sequence
// numbers (coresets, legacy loads) or does not contain it.
func (s *Segment) Find(seq uint64) (int, bool) {
	if len(s.Seqs) == 0 {
		return 0, false
	}
	lo, hi := 0, len(s.Seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Seqs[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s.Seqs) || s.Seqs[lo] != seq {
		return 0, false
	}
	return int(s.inv[lo]), true
}

// Manifest is an immutable snapshot of the segment set, ordered
// oldest-first. Epoch increases with every swap, so executors can detect
// staleness with one comparison.
type Manifest struct {
	Epoch uint64
	Segs  []*Segment
}

// Len returns the total number of stored points across all segments.
func (m *Manifest) Len() int {
	n := 0
	for _, s := range m.Segs {
		n += s.Len()
	}
	return n
}

// Trees returns a fresh slice of the segments' trees in manifest order,
// ready for core.Forest.SetTrees.
func (m *Manifest) Trees() []*index.Tree {
	trees := make([]*index.Tree, len(m.Segs))
	for i, s := range m.Segs {
		trees[i] = s.Tree
	}
	return trees
}

// WithSealed returns a new manifest with seg appended as the newest
// segment.
func (m *Manifest) WithSealed(seg *Segment) *Manifest {
	segs := make([]*Segment, 0, len(m.Segs)+1)
	segs = append(segs, m.Segs...)
	segs = append(segs, seg)
	return &Manifest{Epoch: m.Epoch + 1, Segs: segs}
}

// WithReplaced returns a new manifest where the segments whose IDs appear
// in ids are removed and merged takes the position of the oldest of them.
// Segments sealed after the compaction snapshot are untouched. A nil
// merged segment removes the inputs without a replacement — the case
// where every input row was tombstoned or expired away.
func (m *Manifest) WithReplaced(ids []uint64, merged *Segment) *Manifest {
	replace := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		replace[id] = true
	}
	segs := make([]*Segment, 0, len(m.Segs))
	placed := merged == nil
	for _, s := range m.Segs {
		if replace[s.ID] {
			if !placed {
				segs = append(segs, merged)
				placed = true
			}
			continue
		}
		segs = append(segs, s)
	}
	if !placed {
		segs = append(segs, merged)
	}
	return &Manifest{Epoch: m.Epoch + 1, Segs: segs}
}

// MemRun names the first N rows of a memtable buffer: points, parallel
// weights (nil = unit), and the optional per-row sequence numbers and
// insert timestamps that make the rows deletable and expirable.
type MemRun struct {
	M     *vec.Matrix
	W     []float64
	N     int
	Seqs  []uint64
	Times []int64
}

// Seal builds a small immutable segment from a memtable run (insertion
// order). The buffers are only read — the builders reorder through a
// permutation array and the tree keeps its own leaf-ordered copy, and the
// Seqs/Times prefixes are copied — so the caller may let concurrent
// queries scan the same rows while the seal runs, and may recycle the
// buffers once Seal returns. timeRef stamps the decay reference instant
// the run's weights are scaled to (0 when decay is off).
func Seal(mem MemRun, timeRef int64, cfg BuildConfig, id uint64) (*Segment, error) {
	n := mem.N
	if n <= 0 {
		return nil, errors.New("segment: sealing an empty memtable")
	}
	view := &vec.Matrix{Data: mem.M.Data[:n*mem.M.Cols], Rows: n, Cols: mem.M.Cols}
	var wv []float64
	if mem.W != nil {
		wv = mem.W[:n]
	}
	tree, err := cfg.Build(view, wv)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	if mem.Seqs != nil {
		seqs = append([]uint64(nil), mem.Seqs[:n]...)
	}
	var times []int64
	if mem.Times != nil {
		times = append([]int64(nil), mem.Times[:n]...)
	}
	return New(tree, id, false, 0, seqs, times, timeRef), nil
}

// restoreOrder appends the segment's points and weights to dst/dw in the
// segment's original build-input (insertion) order, inverting the tree's
// leaf-order permutation. row is the next free row of dst; the new next
// free row is returned. dw must be non-nil (unit weights materialize as 1).
func restoreOrder(s *Segment, dst *vec.Matrix, dw []float64, row int) int {
	t := s.Tree
	n := t.Len()
	for storage := 0; storage < n; storage++ {
		input := int(t.PointID[storage])
		copy(dst.Row(row+input), t.Points.Row(storage))
		if t.Weights != nil {
			dw[row+input] = t.Weights[storage]
		} else {
			dw[row+input] = 1
		}
	}
	return row + n
}

// MergeOpts carries the mutations a merge applies while rewriting its
// inputs — the only place dead points are physically removed.
type MergeOpts struct {
	// Drop removes points whose sequence numbers appear here (tombstone
	// consumption). Rows of segments without Seqs cannot be dropped.
	Drop map[uint64]bool
	// ExpireBefore removes rows whose insert time is before this instant
	// (TTL expiry); 0 disables. Rows without timestamps never expire.
	ExpireBefore int64
	// HalfLife (nanoseconds) and NewRef rescale every surviving weight
	// from its input's decay reference to NewRef:
	// w' = w·2^(−(NewRef−ref)/HalfLife). HalfLife 0 disables and the
	// output keeps TimeRef 0.
	HalfLife float64
	NewRef   int64
}

// scaleTo returns the decay factor rebasing a weight from ref to NewRef.
func (o MergeOpts) scaleTo(ref int64) float64 {
	if o.HalfLife <= 0 {
		return 1
	}
	return math.Exp2(-float64(o.NewRef-ref) / o.HalfLife)
}

// keep reports whether the row with the given identity survives the merge.
func (o MergeOpts) keep(seq uint64, hasSeq bool, t int64, hasTime bool) bool {
	if hasSeq && o.Drop[seq] {
		return false
	}
	if o.ExpireBefore != 0 && hasTime && t < o.ExpireBefore {
		return false
	}
	return true
}

// gathered is the flat row image a merge or divide collects before
// building: every surviving input row restored to insertion order
// (segments oldest-first, then the memtable run), weights rescaled onto
// the shared decay reference, plus the provenance the output segment(s)
// inherit.
type gathered struct {
	m     *vec.Matrix
	w     []float64 // nil when every input was unweighted and no decay ran
	seqs  []uint64  // nil when any input lost sequence tracking
	times []int64
	rows  int

	isCoreset bool
	eps       float64
	ref       int64 // the output decay reference (0 when decay is off)
}

// gather restores and filters the inputs of a merge or divide into one
// flat insertion-ordered row image. A result with rows == 0 means every
// input row was tombstoned or expired.
func gather(segs []*Segment, mem MemRun, opts MergeOpts) (*gathered, error) {
	total := mem.N
	for _, s := range segs {
		total += s.Len()
	}
	if total == 0 {
		return nil, errors.New("segment: merging zero points")
	}
	dims := 0
	if len(segs) > 0 {
		dims = segs[0].Tree.Dims()
	} else {
		dims = mem.M.Cols
	}
	tracked := mem.N == 0 || mem.Seqs != nil
	timed := mem.N == 0 || mem.Times != nil
	isCoreset := false
	eps := 0.0
	hasWeights := mem.N > 0 && mem.W != nil
	for _, s := range segs {
		if s.Seqs == nil {
			tracked = false
		}
		if s.Times == nil {
			timed = false
		}
		if s.Coreset {
			isCoreset = true
			eps += s.Eps
		}
		if s.Tree.Weights != nil {
			hasWeights = true
		}
	}
	if opts.HalfLife > 0 {
		// Rescaled weights are no longer unit even for Type I inputs.
		hasWeights = true
	}
	m := vec.NewMatrix(total, dims)
	w := make([]float64, total)
	var seqs []uint64
	if tracked {
		seqs = make([]uint64, total)
	}
	var times []int64
	if tracked && timed {
		times = make([]int64, total)
	}
	row := 0
	for _, s := range segs {
		row = mergeAppend(s, opts, m, w, seqs, times, row)
	}
	memScaleTimed := opts.HalfLife > 0 && mem.Times != nil
	for i := 0; i < mem.N; i++ {
		var seq uint64
		if mem.Seqs != nil {
			seq = mem.Seqs[i]
		}
		var ts int64
		if mem.Times != nil {
			ts = mem.Times[i]
		}
		if !opts.keep(seq, mem.Seqs != nil, ts, mem.Times != nil) {
			continue
		}
		copy(m.Row(row), mem.M.Row(i))
		wv := 1.0
		if mem.W != nil {
			wv = mem.W[i]
		}
		if memScaleTimed {
			// Memtable weights are raw (as inserted); each row decays from
			// its own insert instant.
			wv *= opts.scaleTo(ts)
		}
		w[row] = wv
		if seqs != nil {
			seqs[row] = seq
		}
		if times != nil {
			times[row] = ts
		}
		row++
	}
	g := &gathered{rows: row, isCoreset: isCoreset, eps: eps}
	if opts.HalfLife > 0 {
		g.ref = opts.NewRef
	}
	if row == 0 {
		return g, nil
	}
	g.m = &vec.Matrix{Data: m.Data[:row*dims], Rows: row, Cols: dims}
	// Drop the materialized unit weights when every input was unweighted,
	// so a full merge reproduces a monolithic unit-weight build exactly.
	if hasWeights {
		g.w = w[:row]
	}
	if seqs != nil {
		g.seqs = seqs[:row]
	}
	if times != nil {
		g.times = times[:row]
	}
	return g, nil
}

// build indexes the gathered rows selected by sel (nil = all) as one
// segment with the given id, preserving their relative order.
func (g *gathered) build(sel []int, cfg BuildConfig, id uint64) (*Segment, error) {
	m, w, seqs, times := g.m, g.w, g.seqs, g.times
	if sel != nil {
		m = vec.NewMatrix(len(sel), g.m.Cols)
		if g.w != nil {
			w = make([]float64, len(sel))
		}
		if g.seqs != nil {
			seqs = make([]uint64, len(sel))
		}
		if g.times != nil {
			times = make([]int64, len(sel))
		}
		for i, r := range sel {
			copy(m.Row(i), g.m.Row(r))
			if w != nil {
				w[i] = g.w[r]
			}
			if seqs != nil {
				seqs[i] = g.seqs[r]
			}
			if times != nil {
				times[i] = g.times[r]
			}
		}
	}
	tree, err := cfg.Build(m, w)
	if err != nil {
		return nil, err
	}
	return New(tree, id, g.isCoreset, g.eps, seqs, times, g.ref), nil
}

// Merge concatenates the segments' points oldest-first, each restored to
// its insertion order, drops the rows opts tombstones or expires, and
// builds one segment over the survivors. mem optionally appends a trailing
// memtable run (the full-compaction path); pass a zero MemRun for pure
// segment merges. The merged segment carries the provenance of its
// inputs: it is a coreset iff any input was, with the accumulated Eps,
// and it tracks sequence numbers iff every input did. A merge whose every
// row is dropped returns (nil, nil): the inputs simply disappear.
func Merge(segs []*Segment, mem MemRun, opts MergeOpts, cfg BuildConfig, id uint64) (*Segment, error) {
	g, err := gather(segs, mem, opts)
	if err != nil {
		return nil, err
	}
	if g.rows == 0 {
		return nil, nil // every row tombstoned or expired
	}
	return g.build(nil, cfg, id)
}

// Divide is the splitting counterpart of Merge — the segment-shipping
// primitive behind cluster shard splits. It gathers the inputs exactly
// like Merge (insertion order restored, tombstoned and expired rows
// dropped, weights rebased onto the shared decay reference), then routes
// every surviving row by pred over its coordinates: rows with pred false
// build the KEEP segment (id keepID), rows with pred true the MOVE
// segment (id moveID). Either side may come back nil when pred sent
// nothing its way. Relative insertion order is preserved within each
// side, so both halves remain valid sealed segments whose sequence
// numbers keep resolving.
func Divide(segs []*Segment, mem MemRun, opts MergeOpts, pred func(p []float64) bool, cfg BuildConfig, keepID, moveID uint64) (keep, move *Segment, err error) {
	g, err := gather(segs, mem, opts)
	if err != nil {
		return nil, nil, err
	}
	if g.rows == 0 {
		return nil, nil, nil
	}
	var keepSel, moveSel []int
	for r := 0; r < g.rows; r++ {
		if pred(g.m.Row(r)) {
			moveSel = append(moveSel, r)
		} else {
			keepSel = append(keepSel, r)
		}
	}
	if len(keepSel) > 0 {
		if keep, err = g.build(keepSel, cfg, keepID); err != nil {
			return nil, nil, err
		}
	}
	if len(moveSel) > 0 {
		if move, err = g.build(moveSel, cfg, moveID); err != nil {
			return nil, nil, err
		}
	}
	return keep, move, nil
}

// mergeAppend restores one segment to insertion order, filters it through
// opts, rescales its weights to the merge's decay reference, and appends
// the survivors at dst row `row`, returning the next free row.
func mergeAppend(s *Segment, opts MergeOpts, dst *vec.Matrix, dw []float64, dseqs []uint64, dtimes []int64, row int) int {
	t := s.Tree
	n := t.Len()
	scale := opts.scaleTo(s.TimeRef)
	// pos[input] is the output slot of each surviving insertion-order
	// position, so the leaf-order scatter below lands rows directly.
	pos := make([]int32, n)
	kept := 0
	for input := 0; input < n; input++ {
		var seq uint64
		if s.Seqs != nil {
			seq = s.Seqs[input]
		}
		var ts int64
		if s.Times != nil {
			ts = s.Times[input]
		}
		if opts.keep(seq, s.Seqs != nil, ts, s.Times != nil) {
			pos[input] = int32(kept)
			kept++
		} else {
			pos[input] = -1
		}
	}
	for storage := 0; storage < n; storage++ {
		input := int(t.PointID[storage])
		p := pos[input]
		if p < 0 {
			continue
		}
		r := row + int(p)
		copy(dst.Row(r), t.Points.Row(storage))
		wv := 1.0
		if t.Weights != nil {
			wv = t.Weights[storage]
		}
		dw[r] = wv * scale
		if dseqs != nil {
			dseqs[r] = s.Seqs[input]
		}
		if dtimes != nil {
			dtimes[r] = s.Times[input]
		}
	}
	return row + kept
}

// Compress reduces a segment to a provable-error coreset with normalized
// error bound eps and rebuilds its index — the cold tier of compaction.
// It fails for mixed-sign weights (the coreset layer rejects Type III);
// callers fall back to keeping the merged segment as-is.
func Compress(s *Segment, kern kernel.Params, eps float64, seed int64, cfg BuildConfig, id uint64) (*Segment, error) {
	t := s.Tree
	n := t.Len()
	// Reconstruct insertion order so repeated compressions stay
	// deterministic with respect to the original stream.
	m := vec.NewMatrix(n, t.Dims())
	w := make([]float64, n)
	restoreOrder(s, m, w, 0)
	if t.Weights == nil {
		w = nil
	}
	sk, err := coreset.Build(m, w, kern, eps, coreset.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	tree, err := cfg.Build(sk.Points, sk.Weights)
	if err != nil {
		return nil, err
	}
	// Coreset rows no longer correspond 1:1 to inserts: sequence numbers
	// and timestamps are dropped (the rows become undeletable and
	// unexpirable), but the decay reference carries over — the sketch's
	// weights approximate the input's, which were scaled to TimeRef.
	return New(tree, id, true, s.Eps+sk.Eps, nil, nil, s.TimeRef), nil
}

// Policy is the geometric tiering compaction policy. Segments are binned
// into tiers by size — tier t holds segments with
// SealSize·Fanout^t ≤ Len < SealSize·Fanout^(t+1) — and whenever a tier
// accumulates Fanout segments, its oldest Fanout members merge into one
// segment of the next tier. Write amplification is O(Fanout·log_Fanout N)
// per point overall, and no merge is ever larger than geometric growth
// requires, so the engine never performs the old stop-the-world O(N)
// rebuild on the insert path.
type Policy struct {
	// SealSize is the memtable row count that triggers a seal (tier 0
	// segment size).
	SealSize int
	// Fanout is both the per-tier segment budget and the size ratio
	// between consecutive tiers.
	Fanout int
	// ColdEps, when positive, coreset-compresses merged segments of at
	// least ColdMin points down to a provable normalized-error sketch —
	// a lossy cold tier, off by default.
	ColdEps float64
	// ColdMin is the smallest merged segment ColdEps applies to.
	ColdMin int
}

// DefaultPolicy returns the tiering defaults: seal at 512 rows, merge
// every 4 same-tier segments, no lossy cold tier.
func DefaultPolicy() Policy { return Policy{SealSize: 512, Fanout: 4} }

// Validate checks the policy parameters.
func (p Policy) Validate() error {
	if p.SealSize < 1 {
		return fmt.Errorf("segment: seal size %d out of range", p.SealSize)
	}
	if p.Fanout < 2 {
		return fmt.Errorf("segment: compaction fanout %d out of range (need >= 2)", p.Fanout)
	}
	if p.ColdEps != 0 && (p.ColdEps <= 0 || p.ColdEps >= 1) {
		return fmt.Errorf("segment: cold-compaction eps must be in (0,1), got %v", p.ColdEps)
	}
	return nil
}

// Tier returns the size tier of a segment with n points.
func (p Policy) Tier(n int) int {
	t := 0
	bound := p.SealSize * p.Fanout
	for n >= bound {
		t++
		// Guard against overflow on absurd sizes.
		if bound > (1<<62)/p.Fanout {
			break
		}
		bound *= p.Fanout
	}
	return t
}

// Plan returns the IDs of the segments the next compaction should merge:
// the oldest Fanout members of the lowest tier holding at least Fanout
// segments. A nil result means the manifest is within policy.
func (p Policy) Plan(m *Manifest) []uint64 {
	if len(m.Segs) < p.Fanout {
		return nil
	}
	tiers := make(map[int][]uint64)
	lowest := -1
	for _, s := range m.Segs {
		t := p.Tier(s.Len())
		tiers[t] = append(tiers[t], s.ID) // manifest order = oldest first
		if len(tiers[t]) >= p.Fanout && (lowest < 0 || t < lowest) {
			lowest = t
		}
	}
	if lowest < 0 {
		return nil
	}
	return tiers[lowest][:p.Fanout]
}

// Select returns the manifest's segments with the given IDs, in manifest
// (oldest-first) order.
func (m *Manifest) Select(ids []uint64) []*Segment {
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]*Segment, 0, len(ids))
	for _, s := range m.Segs {
		if want[s.ID] {
			out = append(out, s)
		}
	}
	return out
}
