// Package segment implements the LSM-style storage layer under
// karl.DynamicEngine: an ordered manifest of immutable index segments plus
// the operations that evolve it — sealing a memtable into a small segment,
// merging segments under a geometric tiering policy, and optionally
// compacting cold merged segments into provable-error coresets (the
// Phillips & Tai direction from PAPERS.md).
//
// Manifests are immutable snapshots: every mutation returns a new Manifest
// with a bumped Epoch, so query executors can keep refining over an old
// snapshot while a background compaction installs a new one — no query
// ever waits on a rebuild.
//
// Two invariants matter for exactness:
//
//   - Each segment's tree was built from its points in INSERTION order
//     (the build input order; the tree's PointID maps leaf-storage rows
//     back to it). Merging reconstructs that order per segment and
//     concatenates oldest-first, so a full merge reproduces the exact
//     point sequence the user inserted — and therefore the exact tree a
//     monolithic build over that sequence would produce, making answers
//     bitwise-identical after full compaction.
//   - Segments in a manifest are ordered oldest-first and cover disjoint,
//     time-contiguous runs of the insert stream.
package segment

import (
	"errors"
	"fmt"

	"karl/internal/balltree"
	"karl/internal/coreset"
	"karl/internal/index"
	"karl/internal/kdtree"
	"karl/internal/kernel"
	"karl/internal/vec"
	"karl/internal/vptree"
)

// BuildConfig fixes the index family every segment of an engine is built
// with, so merged segments answer bitwise like a monolithic build.
type BuildConfig struct {
	Kind    index.Kind
	LeafCap int
}

// Build constructs one tree with the configured builder.
func (c BuildConfig) Build(m *vec.Matrix, w []float64) (*index.Tree, error) {
	switch c.Kind {
	case index.KDTree:
		return kdtree.Build(m, w, c.LeafCap)
	case index.BallTree:
		return balltree.Build(m, w, c.LeafCap)
	case index.VPTree:
		return vptree.Build(m, w, c.LeafCap)
	default:
		return nil, fmt.Errorf("segment: unknown index kind %d", int(c.Kind))
	}
}

// Segment is one immutable sorted run: a flat index over a contiguous
// slice of the insert stream. Coreset marks a lossy compacted segment
// whose points are a provable-error sketch of the originals; Eps is the
// accumulated normalized-error bound of every compression it went through.
type Segment struct {
	Tree    *index.Tree
	ID      uint64
	Coreset bool
	Eps     float64
}

// Len returns the number of points the segment stores.
func (s *Segment) Len() int { return s.Tree.Len() }

// Manifest is an immutable snapshot of the segment set, ordered
// oldest-first. Epoch increases with every swap, so executors can detect
// staleness with one comparison.
type Manifest struct {
	Epoch uint64
	Segs  []*Segment
}

// Len returns the total number of stored points across all segments.
func (m *Manifest) Len() int {
	n := 0
	for _, s := range m.Segs {
		n += s.Len()
	}
	return n
}

// Trees returns a fresh slice of the segments' trees in manifest order,
// ready for core.Forest.SetTrees.
func (m *Manifest) Trees() []*index.Tree {
	trees := make([]*index.Tree, len(m.Segs))
	for i, s := range m.Segs {
		trees[i] = s.Tree
	}
	return trees
}

// WithSealed returns a new manifest with seg appended as the newest
// segment.
func (m *Manifest) WithSealed(seg *Segment) *Manifest {
	segs := make([]*Segment, 0, len(m.Segs)+1)
	segs = append(segs, m.Segs...)
	segs = append(segs, seg)
	return &Manifest{Epoch: m.Epoch + 1, Segs: segs}
}

// WithReplaced returns a new manifest where the segments whose IDs appear
// in ids are removed and merged takes the position of the oldest of them.
// Segments sealed after the compaction snapshot are untouched.
func (m *Manifest) WithReplaced(ids []uint64, merged *Segment) *Manifest {
	replace := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		replace[id] = true
	}
	segs := make([]*Segment, 0, len(m.Segs))
	placed := false
	for _, s := range m.Segs {
		if replace[s.ID] {
			if !placed {
				segs = append(segs, merged)
				placed = true
			}
			continue
		}
		segs = append(segs, s)
	}
	if !placed {
		segs = append(segs, merged)
	}
	return &Manifest{Epoch: m.Epoch + 1, Segs: segs}
}

// Seal builds a small immutable segment from the first n rows of a
// memtable buffer (insertion order) and its parallel weights. The buffer
// is only read — the builders reorder through a permutation array and the
// tree keeps its own leaf-ordered copy — so the caller may let concurrent
// queries scan the same rows while the seal runs, and may recycle the
// buffer once Seal returns.
func Seal(buf *vec.Matrix, w []float64, n int, cfg BuildConfig, id uint64) (*Segment, error) {
	if n <= 0 {
		return nil, errors.New("segment: sealing an empty memtable")
	}
	view := &vec.Matrix{Data: buf.Data[:n*buf.Cols], Rows: n, Cols: buf.Cols}
	var wv []float64
	if w != nil {
		wv = w[:n]
	}
	tree, err := cfg.Build(view, wv)
	if err != nil {
		return nil, err
	}
	return &Segment{Tree: tree, ID: id}, nil
}

// restoreOrder appends the segment's points and weights to dst/dw in the
// segment's original build-input (insertion) order, inverting the tree's
// leaf-order permutation. row is the next free row of dst; the new next
// free row is returned. dw must be non-nil (unit weights materialize as 1).
func restoreOrder(s *Segment, dst *vec.Matrix, dw []float64, row int) int {
	t := s.Tree
	n := t.Len()
	for storage := 0; storage < n; storage++ {
		input := int(t.PointID[storage])
		copy(dst.Row(row+input), t.Points.Row(storage))
		if t.Weights != nil {
			dw[row+input] = t.Weights[storage]
		} else {
			dw[row+input] = 1
		}
	}
	return row + n
}

// Merge concatenates the segments' points oldest-first, each restored to
// its insertion order, and builds one segment over the union. mem, mw and
// memN optionally append a trailing memtable run (the full-compaction
// path); pass nil/0 for pure segment merges. The merged segment carries
// the provenance of its inputs: it is a coreset iff any input was, with
// the accumulated Eps.
func Merge(segs []*Segment, mem *vec.Matrix, mw []float64, memN int, cfg BuildConfig, id uint64) (*Segment, error) {
	total := memN
	for _, s := range segs {
		total += s.Len()
	}
	if total == 0 {
		return nil, errors.New("segment: merging zero points")
	}
	dims := 0
	if len(segs) > 0 {
		dims = segs[0].Tree.Dims()
	} else {
		dims = mem.Cols
	}
	m := vec.NewMatrix(total, dims)
	w := make([]float64, total)
	row := 0
	isCoreset := false
	eps := 0.0
	hasWeights := memN > 0 && mw != nil
	for _, s := range segs {
		row = restoreOrder(s, m, w, row)
		if s.Coreset {
			isCoreset = true
			eps += s.Eps
		}
		if s.Tree.Weights != nil {
			hasWeights = true
		}
	}
	for i := 0; i < memN; i++ {
		copy(m.Row(row), mem.Row(i))
		if mw != nil {
			w[row] = mw[i]
		} else {
			w[row] = 1
		}
		row++
	}
	// Drop the materialized unit weights when every input was unweighted,
	// so a full merge reproduces a monolithic unit-weight build exactly.
	if !hasWeights {
		w = nil
	}
	tree, err := cfg.Build(m, w)
	if err != nil {
		return nil, err
	}
	return &Segment{Tree: tree, ID: id, Coreset: isCoreset, Eps: eps}, nil
}

// Compress reduces a segment to a provable-error coreset with normalized
// error bound eps and rebuilds its index — the cold tier of compaction.
// It fails for mixed-sign weights (the coreset layer rejects Type III);
// callers fall back to keeping the merged segment as-is.
func Compress(s *Segment, kern kernel.Params, eps float64, seed int64, cfg BuildConfig, id uint64) (*Segment, error) {
	t := s.Tree
	n := t.Len()
	// Reconstruct insertion order so repeated compressions stay
	// deterministic with respect to the original stream.
	m := vec.NewMatrix(n, t.Dims())
	w := make([]float64, n)
	restoreOrder(s, m, w, 0)
	if t.Weights == nil {
		w = nil
	}
	sk, err := coreset.Build(m, w, kern, eps, coreset.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	tree, err := cfg.Build(sk.Points, sk.Weights)
	if err != nil {
		return nil, err
	}
	return &Segment{Tree: tree, ID: id, Coreset: true, Eps: s.Eps + sk.Eps}, nil
}

// Policy is the geometric tiering compaction policy. Segments are binned
// into tiers by size — tier t holds segments with
// SealSize·Fanout^t ≤ Len < SealSize·Fanout^(t+1) — and whenever a tier
// accumulates Fanout segments, its oldest Fanout members merge into one
// segment of the next tier. Write amplification is O(Fanout·log_Fanout N)
// per point overall, and no merge is ever larger than geometric growth
// requires, so the engine never performs the old stop-the-world O(N)
// rebuild on the insert path.
type Policy struct {
	// SealSize is the memtable row count that triggers a seal (tier 0
	// segment size).
	SealSize int
	// Fanout is both the per-tier segment budget and the size ratio
	// between consecutive tiers.
	Fanout int
	// ColdEps, when positive, coreset-compresses merged segments of at
	// least ColdMin points down to a provable normalized-error sketch —
	// a lossy cold tier, off by default.
	ColdEps float64
	// ColdMin is the smallest merged segment ColdEps applies to.
	ColdMin int
}

// DefaultPolicy returns the tiering defaults: seal at 512 rows, merge
// every 4 same-tier segments, no lossy cold tier.
func DefaultPolicy() Policy { return Policy{SealSize: 512, Fanout: 4} }

// Validate checks the policy parameters.
func (p Policy) Validate() error {
	if p.SealSize < 1 {
		return fmt.Errorf("segment: seal size %d out of range", p.SealSize)
	}
	if p.Fanout < 2 {
		return fmt.Errorf("segment: compaction fanout %d out of range (need >= 2)", p.Fanout)
	}
	if p.ColdEps != 0 && (p.ColdEps <= 0 || p.ColdEps >= 1) {
		return fmt.Errorf("segment: cold-compaction eps must be in (0,1), got %v", p.ColdEps)
	}
	return nil
}

// Tier returns the size tier of a segment with n points.
func (p Policy) Tier(n int) int {
	t := 0
	bound := p.SealSize * p.Fanout
	for n >= bound {
		t++
		// Guard against overflow on absurd sizes.
		if bound > (1<<62)/p.Fanout {
			break
		}
		bound *= p.Fanout
	}
	return t
}

// Plan returns the IDs of the segments the next compaction should merge:
// the oldest Fanout members of the lowest tier holding at least Fanout
// segments. A nil result means the manifest is within policy.
func (p Policy) Plan(m *Manifest) []uint64 {
	if len(m.Segs) < p.Fanout {
		return nil
	}
	tiers := make(map[int][]uint64)
	lowest := -1
	for _, s := range m.Segs {
		t := p.Tier(s.Len())
		tiers[t] = append(tiers[t], s.ID) // manifest order = oldest first
		if len(tiers[t]) >= p.Fanout && (lowest < 0 || t < lowest) {
			lowest = t
		}
	}
	if lowest < 0 {
		return nil
	}
	return tiers[lowest][:p.Fanout]
}

// Select returns the manifest's segments with the given IDs, in manifest
// (oldest-first) order.
func (m *Manifest) Select(ids []uint64) []*Segment {
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]*Segment, 0, len(ids))
	for _, s := range m.Segs {
		if want[s.ID] {
			out = append(out, s)
		}
	}
	return out
}
