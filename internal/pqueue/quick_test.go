package pqueue

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickDrainIsSorted: pushing any priority multiset and draining must
// yield the priorities in non-increasing order — the heap's defining
// property, checked on quick-generated inputs.
func TestQuickDrainIsSorted(t *testing.T) {
	f := func(prios []float64) bool {
		var q Queue[int]
		for i, p := range prios {
			q.Push(i, p)
		}
		if q.Len() != len(prios) {
			return false
		}
		drained := make([]float64, 0, len(prios))
		for {
			_, p, ok := q.Pop()
			if !ok {
				break
			}
			drained = append(drained, p)
		}
		if len(drained) != len(prios) {
			return false
		}
		want := append([]float64(nil), prios...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			// NaN priorities break any ordering invariant; quick can
			// generate them, and the queue's contract is float64
			// comparisons, so mirror the semantics by comparing bit-equal
			// positions only for non-NaN.
			if want[i] != want[i] || drained[i] != drained[i] {
				continue
			}
			if drained[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInterleavedOps: any interleaving of pushes and pops keeps the
// popped priority equal to the running maximum.
func TestQuickInterleavedOps(t *testing.T) {
	f := func(ops []int8, prios []float64) bool {
		var q Queue[int]
		var ref []float64
		pi := 0
		for _, op := range ops {
			if op >= 0 && pi < len(prios) {
				p := prios[pi]
				if p != p { // skip NaN; ordering is undefined
					pi++
					continue
				}
				pi++
				q.Push(0, p)
				ref = append(ref, p)
				continue
			}
			_, p, ok := q.Pop()
			if ok != (len(ref) > 0) {
				return false
			}
			if !ok {
				continue
			}
			maxIdx := 0
			for i, v := range ref {
				if v > ref[maxIdx] {
					maxIdx = i
				}
			}
			if p != ref[maxIdx] {
				return false
			}
			ref = append(ref[:maxIdx], ref[maxIdx+1:]...)
		}
		return q.Len() == len(ref)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
