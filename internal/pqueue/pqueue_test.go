package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[string]
	if q.Len() != 0 {
		t.Fatal("zero value should be empty")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty should report !ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty should report !ok")
	}
}

func TestMaxOrder(t *testing.T) {
	var q Queue[int]
	prios := []float64{3, 1, 4, 1.5, 9, 2.6, 5}
	for i, p := range prios {
		q.Push(i, p)
	}
	sorted := append([]float64(nil), prios...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for _, want := range sorted {
		_, p, ok := q.Pop()
		if !ok || p != want {
			t.Fatalf("Pop priority = %v want %v", p, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue should drain")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(7, 1)
	v, p, ok := q.Peek()
	if !ok || v != 7 || p != 1 {
		t.Fatalf("Peek = %v,%v,%v", v, p, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek removed an item")
	}
}

func TestReset(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i, float64(i))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset should empty the queue")
	}
	q.Push(1, 1)
	if v, _, _ := q.Pop(); v != 1 {
		t.Fatal("queue unusable after Reset")
	}
}

func TestRandomizedHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var q Queue[int]
	var reference []float64
	for op := 0; op < 5000; op++ {
		if rng.Float64() < 0.6 || len(reference) == 0 {
			p := rng.NormFloat64()
			q.Push(op, p)
			reference = append(reference, p)
		} else {
			_, p, ok := q.Pop()
			if !ok {
				t.Fatal("Pop failed with items present")
			}
			// p must equal the max of reference.
			maxIdx := 0
			for i, v := range reference {
				if v > reference[maxIdx] {
					maxIdx = i
				}
			}
			if p != reference[maxIdx] {
				t.Fatalf("op %d: popped %v want max %v", op, p, reference[maxIdx])
			}
			reference = append(reference[:maxIdx], reference[maxIdx+1:]...)
		}
	}
}

func TestDuplicatePriorities(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i, 1.0)
	}
	seen := make(map[int]bool)
	for q.Len() > 0 {
		v, p, _ := q.Pop()
		if p != 1.0 {
			t.Fatalf("priority corrupted: %v", p)
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("popped %d values, want 100", len(seen))
	}
}
