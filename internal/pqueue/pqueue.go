// Package pqueue provides the max-priority queue that drives KARL's
// best-first refinement (Table V of the paper): index entries are expanded
// in decreasing order of their bound gap ub−lb, so each iteration removes
// as much slack from the global bounds as possible.
package pqueue

// Queue is a binary max-heap of values with float64 priorities. The zero
// value is ready to use.
type Queue[T any] struct {
	items []item[T]
}

type item[T any] struct {
	value    T
	priority float64
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push inserts value with the given priority.
func (q *Queue[T]) Push(value T, priority float64) {
	q.items = append(q.items, item[T]{value, priority})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the highest priority. ok is false
// when the queue is empty.
func (q *Queue[T]) Pop() (value T, priority float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.value, top.priority, true
}

// Peek returns the highest-priority item without removing it.
func (q *Queue[T]) Peek() (value T, priority float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return q.items[0].value, q.items[0].priority, true
}

// Reset empties the queue but keeps the backing storage for reuse.
func (q *Queue[T]) Reset() { q.items = q.items[:0] }

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].priority >= q.items[i].priority {
			return
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && q.items[l].priority > q.items[largest].priority {
			largest = l
		}
		if r < n && q.items[r].priority > q.items[largest].priority {
			largest = r
		}
		if largest == i {
			return
		}
		q.items[i], q.items[largest] = q.items[largest], q.items[i]
		i = largest
	}
}
