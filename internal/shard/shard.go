// Package shard partitions a weighted point set across N shard engines —
// the data-placement half of the cluster layer. Kernel aggregation is
// additively decomposable, F_P(q) = Σ_S F_S(q), so ANY partition of the
// rows yields shards whose per-shard answers (and per-shard lower/upper
// bounds) sum to the global ones; the partitioner only affects balance and
// bound tightness, never correctness.
//
// Two partitioners are provided:
//
//   - Hash: FNV-1a over the point's coordinate bits. Content-addressed and
//     order-independent, so the same point lands on the same shard no
//     matter how the source index stored it. Shards receive statistically
//     even, spatially mixed slices — every shard sees the whole space, so
//     per-shard bound gaps shrink roughly uniformly.
//   - KDSplit: recursive median splits on the widest dimension, shares
//     divided proportionally. Shards own compact spatial regions, so for a
//     localized query most shards' root bounds are already tight and the
//     coordinator's adaptive refinement can leave them alone after the
//     first round.
//
// The resulting Plan records, per shard, the row list plus the point count
// and the positive/negative weight mass W_S⁺/W_S⁻ — the quantities the
// coordinator's ε-budget allocation and degraded-mode accounting need,
// and what cmd/karl-shard writes into the shard manifest.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"karl/internal/vec"
)

// Kind selects the partitioning strategy.
type Kind int

const (
	// Hash partitions by a content hash of the point coordinates.
	Hash Kind = iota
	// KDSplit partitions by recursive median splits on the widest
	// dimension (spatially compact shards).
	KDSplit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Hash:
		return "hash"
	case KDSplit:
		return "kd-split"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps the manifest/CLI names back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "hash":
		return Hash, nil
	case "kd-split", "kd":
		return KDSplit, nil
	default:
		return 0, fmt.Errorf("shard: unknown partitioner %q (want hash or kd)", s)
	}
}

// Meta summarizes one shard of a plan: its cardinality and the weight mass
// of each sign class (W⁺ = Σ w_i over w_i > 0, W⁻ = Σ |w_i| over w_i < 0).
// The coordinator splits ε-budgets proportional to W⁺+W⁻ and uses the
// per-class masses for worst-case bounds on a missing shard's
// contribution.
type Meta struct {
	Points int
	WPos   float64
	WNeg   float64
}

// Weight returns the shard's total weight mass W⁺+W⁻.
func (m Meta) Weight() float64 { return m.WPos + m.WNeg }

// Plan is a computed partition: per-shard row lists into the source matrix
// plus per-shard metadata, index-aligned.
type Plan struct {
	Kind Kind
	Rows [][]int
	Meta []Meta
}

// Partition splits the rows of m into n shards. weights may be nil (unit
// weights). Every shard is guaranteed non-empty; with the hash partitioner
// a pathological small dataset can leave a shard empty, which is reported
// as an error (the kd partitioner never produces empty shards when
// n ≤ rows).
func Partition(m *vec.Matrix, weights []float64, n int, kind Kind) (*Plan, error) {
	if m == nil || m.Rows == 0 {
		return nil, fmt.Errorf("shard: empty point set")
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d out of range", n)
	}
	if n > m.Rows {
		return nil, fmt.Errorf("shard: cannot split %d points into %d shards", m.Rows, n)
	}
	if weights != nil && len(weights) != m.Rows {
		return nil, fmt.Errorf("shard: %d weights for %d points", len(weights), m.Rows)
	}
	var rows [][]int
	switch kind {
	case Hash:
		rows = hashPartition(m, n)
	case KDSplit:
		all := make([]int, m.Rows)
		for i := range all {
			all[i] = i
		}
		rows = make([][]int, 0, n)
		kdPartition(m, all, n, &rows)
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %d", int(kind))
	}
	p := &Plan{Kind: kind, Rows: rows, Meta: make([]Meta, n)}
	for s, rs := range rows {
		if len(rs) == 0 {
			return nil, fmt.Errorf("shard: shard %d of %d is empty over %d points (try the kd partitioner)", s, n, m.Rows)
		}
		meta := Meta{Points: len(rs)}
		for _, r := range rs {
			w := 1.0
			if weights != nil {
				w = weights[r]
			}
			if w >= 0 {
				meta.WPos += w
			} else {
				meta.WNeg -= w
			}
		}
		p.Meta[s] = meta
	}
	return p, nil
}

// hashPartition assigns each row by an FNV-1a hash of its coordinate bits.
// Hashing content rather than row position makes the assignment stable
// across index rebuilds and storage reorderings: the same point always
// lands on the same shard.
func hashPartition(m *vec.Matrix, n int) [][]int {
	rows := make([][]int, n)
	var buf [8]byte
	for r := 0; r < m.Rows; r++ {
		h := fnv.New64a()
		for _, v := range m.Row(r) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		s := int(h.Sum64() % uint64(n))
		rows[s] = append(rows[s], r)
	}
	return rows
}

// kdPartition recursively splits rows into n spatially compact groups,
// appending them to out in order. Each split sorts the rows along the
// widest dimension and cuts at the position proportional to the left
// half's shard share, so shard sizes differ by at most ⌈rows/n⌉ vs
// ⌊rows/n⌋.
func kdPartition(m *vec.Matrix, rows []int, n int, out *[][]int) {
	if n == 1 {
		*out = append(*out, rows)
		return
	}
	dim := widestDim(m, rows)
	sort.Slice(rows, func(i, j int) bool {
		a, b := m.Row(rows[i])[dim], m.Row(rows[j])[dim]
		if a != b {
			return a < b
		}
		// Deterministic total order even with duplicate coordinates.
		return rows[i] < rows[j]
	})
	nl := n / 2
	cut := len(rows) * nl / n
	kdPartition(m, rows[:cut], nl, out)
	kdPartition(m, rows[cut:], n-nl, out)
}

// widestDim returns the dimension with the largest coordinate spread over
// the given rows.
func widestDim(m *vec.Matrix, rows []int) int {
	d := m.Cols
	best, bestSpread := 0, -1.0
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			v := m.Row(r)[j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			best, bestSpread = j, spread
		}
	}
	return best
}
